// Package main's bench_test provides one testing.B benchmark per paper
// table/figure, plus micro-benchmarks of the core kernels. The experiment
// benchmarks run the same code as `ugrapher-bench <id>` in quick mode and
// report the experiment's wall time per iteration; run the CLI for the full
// tables. Regenerate everything with:
//
//	go test -bench=. -benchmem ./...
package main

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/ops"
	"repro/internal/schedule"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// benchExperiment runs a registered experiment in quick mode.
func benchExperiment(b *testing.B, id string) {
	e, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	opts := bench.Options{Quick: true}
	for i := 0; i < b.N; i++ {
		tab, err := e.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		if err := tab.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1Heatmap(b *testing.B)            { benchExperiment(b, "fig1") }
func BenchmarkTable2OperatorCensus(b *testing.B)   { benchExperiment(b, "table2") }
func BenchmarkTable3Datasets(b *testing.B)         { benchExperiment(b, "table3") }
func BenchmarkFig3DGLLimitations(b *testing.B)     { benchExperiment(b, "fig3") }
func BenchmarkTable4Representation(b *testing.B)   { benchExperiment(b, "table4") }
func BenchmarkTable6Tradeoffs(b *testing.B)        { benchExperiment(b, "table6") }
func BenchmarkFig7OptimalVaries(b *testing.B)      { benchExperiment(b, "fig7") }
func BenchmarkFig12Predictor(b *testing.B)         { benchExperiment(b, "fig12") }
func BenchmarkFig13EndToEnd(b *testing.B)          { benchExperiment(b, "fig13") }
func BenchmarkFig14PerModelSpeedup(b *testing.B)   { benchExperiment(b, "fig14") }
func BenchmarkFig15PerDatasetSpeedup(b *testing.B) { benchExperiment(b, "fig15") }
func BenchmarkFig16Metrics(b *testing.B)           { benchExperiment(b, "fig16") }
func BenchmarkFig17BasicVsTuned(b *testing.B)      { benchExperiment(b, "fig17") }
func BenchmarkFig18GroupTileSweep(b *testing.B)    { benchExperiment(b, "fig18") }
func BenchmarkTable9OptimalSchedules(b *testing.B) { benchExperiment(b, "table9") }
func BenchmarkFig19Reordering(b *testing.B)        { benchExperiment(b, "fig19") }
func BenchmarkFig2Imbalance(b *testing.B)          { benchExperiment(b, "fig2") }
func BenchmarkTable8Setup(b *testing.B)            { benchExperiment(b, "table8") }
func BenchmarkAblationSpace(b *testing.B)          { benchExperiment(b, "ablation-space") }
func BenchmarkAblationSim(b *testing.B)            { benchExperiment(b, "ablation-sim") }
func BenchmarkAblationPredictor(b *testing.B)      { benchExperiment(b, "ablation-predictor") }

// --- micro-benchmarks of the library itself ---

func benchGraph(b *testing.B, n, m int) *graph.Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	bb := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		bb.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	g, err := bb.Build()
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkFunctionalExecute measures the functional executor across the
// four strategies (the kernel the examples and tests run).
func BenchmarkFunctionalExecute(b *testing.B) {
	g := benchGraph(b, 5000, 50000)
	x := tensor.NewDense(5000, 64)
	x.FillRandom(rand.New(rand.NewSource(2)), 1)
	out := tensor.NewDense(5000, 64)
	o := core.Operands{A: tensor.Src(x), B: tensor.NullTensor, C: tensor.Dst(out)}
	for _, s := range core.Strategies {
		s := s
		b.Run(s.Code(), func(b *testing.B) {
			p := core.MustCompile(ops.AggrSum, core.Schedule{Strategy: s, Group: 1, Tile: 1})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := p.Execute(g, o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulate measures one simulator invocation per strategy — the
// unit of work grid search multiplies.
func BenchmarkSimulate(b *testing.B) {
	g := benchGraph(b, 20000, 200000)
	dev := gpu.V100()
	for _, s := range core.Strategies {
		s := s
		b.Run(s.Code(), func(b *testing.B) {
			p := core.MustCompile(ops.AggrSum, core.Schedule{Strategy: s, Group: 1, Tile: 1})
			k := p.Kernel(g, 64, 64, 0, dev)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gpu.Simulate(dev, k)
			}
		})
	}
}

// BenchmarkGridSearch measures a full tuning pass on a mid-size graph.
func BenchmarkGridSearch(b *testing.B) {
	g := benchGraph(b, 20000, 200000)
	task := schedule.Task{Graph: g, Op: ops.AggrSum, Feat: 64, ACols: 64, Device: gpu.V100()}
	space := schedule.PrunedSpace(task)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := schedule.GridSearch(task, space, gpu.WithMaxSampledBlocks(48)); len(got) == 0 {
			b.Fatal("empty search")
		}
	}
}

// --- backend comparison: reference interpreter vs parallel host backend ---

// backendBenchGraphs lazily generates the two comparison datasets once: AR
// (artist, 1.6M edges, heavily skewed degrees) and PR (PROTEINS_full, 162k
// edges, regular degrees) from the paper's Table 3.
var backendBenchGraphs = struct {
	once sync.Once
	ar   *graph.Graph
	pr   *graph.Graph
}{}

func loadBackendBenchGraphs(b *testing.B) (skewed, regular *graph.Graph) {
	b.Helper()
	backendBenchGraphs.once.Do(func() {
		backendBenchGraphs.ar, _ = datasets.MustLoad("AR")
		backendBenchGraphs.pr, _ = datasets.MustLoad("PR")
	})
	return backendBenchGraphs.ar, backendBenchGraphs.pr
}

// BenchmarkBackendCompare pits the sequential reference interpreter
// against the parallel host backend on a skewed (AR) and a regular (PR)
// dataset, for one vertex-parallel and one edge-parallel strategy. This is
// the ISSUE-1 acceptance benchmark; CHANGES.md records measured speedups.
func BenchmarkBackendCompare(b *testing.B) {
	ar, pr := loadBackendBenchGraphs(b)
	graphs := []struct {
		name string
		g    *graph.Graph
	}{{"AR-skewed", ar}, {"PR-regular", pr}}
	backends := []struct {
		name string
		b    core.ExecBackend
	}{
		{"reference", core.ReferenceBackend()},
		{"parallel", core.NewParallelBackend(0)},
	}
	const feat = 32
	for _, gr := range graphs {
		for _, strat := range []core.Strategy{core.ThreadVertex, core.ThreadEdge} {
			x := tensor.NewDense(gr.g.NumVertices(), feat)
			x.FillRandom(rand.New(rand.NewSource(7)), 1)
			out := tensor.NewDense(gr.g.NumVertices(), feat)
			o := core.Operands{A: tensor.Src(x), B: tensor.NullTensor, C: tensor.Dst(out)}
			p := core.MustCompile(ops.AggrSum, core.Schedule{Strategy: strat, Group: 1, Tile: 1})
			for _, bk := range backends {
				bk := bk
				b.Run(gr.name+"/"+strat.Code()+"/"+bk.name, func(b *testing.B) {
					k, err := bk.b.Lower(p, gr.g, o)
					if err != nil {
						b.Fatal(err)
					}
					b.SetBytes(int64(gr.g.NumEdges()) * feat * 4)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if err := k.Run(); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// --- compiled model programs: compile-once steady state vs interpreter ---

// BenchmarkForwardCompiled compares the compiled model path (record ->
// fuse -> schedule -> buffer-plan once, then reuse kernels and arena)
// against the op-by-op interpreter for GCN and GAT on a skewed (AR) and a
// regular (PR) dataset. Run with -benchmem: the compiled steady state
// reports 0 allocs/op for intermediates; the interpreter re-lowers kernels
// and allocates per-stage tensors every iteration. This is the ISSUE-2
// acceptance benchmark; EXPERIMENTS.md records the measured numbers.
func BenchmarkForwardCompiled(b *testing.B) {
	ar, pr := loadBackendBenchGraphs(b)
	graphs := []struct {
		name string
		g    *graph.Graph
	}{{"AR-skewed", ar}, {"PR-regular", pr}}
	const feat, classes = 32, 16
	for _, gr := range graphs {
		for _, mn := range []string{"GCN", "GAT"} {
			m, err := models.ByName(mn)
			if err != nil {
				b.Fatal(err)
			}
			// A fixed engine keeps schedule choice out of the timing: both
			// paths run identical kernels, so the delta is host overhead.
			eng := &models.FixedEngine{
				EngineName:   "bench",
				Dev:          gpu.V100(),
				AggrSchedule: core.DefaultSchedule,
				MsgCSchedule: core.DefaultSchedule,
				Fuses:        true,
				Compute:      core.NewParallelBackend(0),
			}
			x := tensor.NewDense(gr.g.NumVertices(), feat)
			x.FillRandom(rand.New(rand.NewSource(7)), 1)

			b.Run(gr.name+"/"+mn+"/interpreted", func(b *testing.B) {
				if _, err := m.Forward(gr.g, x, classes, eng); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := m.Forward(gr.g, x, classes, eng); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(gr.name+"/"+mn+"/compiled", func(b *testing.B) {
				cp, err := models.CompileModel(m, gr.g, feat, classes, eng)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := cp.Run(x); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := cp.Run(x); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkForwardSharded sweeps the shard count for the compiled model
// path on a skewed (AR) and a regular (PR) dataset: shards=1 is the flat
// parallel lowering (the BenchmarkForwardCompiled baseline), higher counts
// exercise the partition-aware per-shard kernels with halo exchange. This is
// the sharded-execution acceptance benchmark; EXPERIMENTS.md records the
// measured table and BENCH_shard.json the machine-readable summary.
func BenchmarkForwardSharded(b *testing.B) {
	ar, pr := loadBackendBenchGraphs(b)
	graphs := []struct {
		name string
		g    *graph.Graph
	}{{"AR-skewed", ar}, {"PR-regular", pr}}
	const feat, classes = 32, 16
	for _, gr := range graphs {
		for _, mn := range []string{"GCN", "GAT"} {
			m, err := models.ByName(mn)
			if err != nil {
				b.Fatal(err)
			}
			x := tensor.NewDense(gr.g.NumVertices(), feat)
			x.FillRandom(rand.New(rand.NewSource(7)), 1)
			for _, shards := range []int{1, 4, 16} {
				shards := shards
				eng := &models.FixedEngine{
					EngineName:   "bench",
					Dev:          gpu.V100(),
					AggrSchedule: core.DefaultSchedule,
					MsgCSchedule: core.DefaultSchedule,
					Fuses:        true,
					Compute:      core.NewShardedParallelBackend(0, shards),
				}
				b.Run(fmt.Sprintf("%s/%s/shards=%d", gr.name, mn, shards), func(b *testing.B) {
					cp, err := models.CompileModel(m, gr.g, feat, classes, eng)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := cp.Run(x); err != nil {
						b.Fatal(err)
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := cp.Run(x); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkTelemetryOverhead measures the cost of the telemetry hooks around
// a copy_u.sum kernel on AR and PR: "disabled" is the default one-atomic-load
// path, "enabled" records spans, counters and kernel records per run. This is
// the observability-issue acceptance benchmark; EXPERIMENTS.md records the
// measured overhead (budget: <5% enabled).
func BenchmarkTelemetryOverhead(b *testing.B) {
	ar, pr := loadBackendBenchGraphs(b)
	graphs := []struct {
		name string
		g    *graph.Graph
	}{{"AR-skewed", ar}, {"PR-regular", pr}}
	const feat = 32
	entry, ok := ops.Lookup("copy_u.sum")
	if !ok {
		b.Fatal("copy_u.sum not in registry")
	}
	op := entry.Info
	for _, gr := range graphs {
		x := tensor.NewDense(gr.g.NumVertices(), feat)
		x.FillRandom(rand.New(rand.NewSource(7)), 1)
		out := tensor.NewDense(gr.g.NumVertices(), feat)
		o := core.Operands{A: tensor.Src(x), B: tensor.NullTensor, C: tensor.Dst(out)}
		p := core.MustCompile(op, core.Schedule{Strategy: core.ThreadVertex, Group: 1, Tile: 1})
		for _, mode := range []string{"disabled", "enabled"} {
			mode := mode
			b.Run(gr.name+"/"+mode, func(b *testing.B) {
				telemetry.Reset()
				defer telemetry.Reset()
				telemetry.SetEnabled(mode == "enabled")
				k, err := core.NewParallelBackend(0).Lower(p, gr.g, o)
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(int64(gr.g.NumEdges()) * feat * 4)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := k.Run(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTraceOverhead measures the causal-tracing cost around a full
// compiled forward pass, the unit the serving layer runs per batch:
// "disabled" is the one-atomic-load path, "enabled" records track-local
// spans, and "traced" additionally carries a request TraceState through the
// context so every span gets ids, parent links and a TraceState record —
// exactly what one /v1/infer costs inside RunCtx. This is the tracing-issue
// acceptance benchmark; EXPERIMENTS.md records the measured overhead
// (budget: <5% traced vs disabled).
func BenchmarkTraceOverhead(b *testing.B) {
	ar, pr := loadBackendBenchGraphs(b)
	graphs := []struct {
		name string
		g    *graph.Graph
	}{{"AR-skewed", ar}, {"PR-regular", pr}}
	const feat, classes = 32, 16
	m, err := models.ByName("GCN")
	if err != nil {
		b.Fatal(err)
	}
	for _, gr := range graphs {
		eng := &models.FixedEngine{
			EngineName:   "bench",
			Dev:          gpu.V100(),
			AggrSchedule: core.DefaultSchedule,
			MsgCSchedule: core.DefaultSchedule,
			Fuses:        true,
			Compute:      core.NewParallelBackend(0),
		}
		x := tensor.NewDense(gr.g.NumVertices(), feat)
		x.FillRandom(rand.New(rand.NewSource(7)), 1)
		for _, mode := range []string{"disabled", "enabled", "traced"} {
			mode := mode
			b.Run(gr.name+"/GCN/"+mode, func(b *testing.B) {
				telemetry.Reset()
				defer telemetry.Reset()
				telemetry.SetEnabled(mode != "disabled")
				cp, err := models.CompileModel(m, gr.g, feat, classes, eng)
				if err != nil {
					b.Fatal(err)
				}
				ctx := context.Background()
				if mode == "traced" {
					ctx = telemetry.ContextWithTrace(ctx, telemetry.NewTraceState(0, 0, 256))
				}
				if _, err := cp.RunCtx(ctx, x); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := cp.RunCtx(ctx, x); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkCacheAccess isolates the cache model's hot loop.
func BenchmarkCacheAccess(b *testing.B) {
	c := gpu.NewCache(6<<20, 128, 16)
	rng := rand.New(rand.NewSource(3))
	lines := make([]int64, 1<<16)
	for i := range lines {
		lines[i] = int64(rng.Intn(1 << 18))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(lines[i&(1<<16-1)])
	}
}
