// autotune explores the schedule space for one operator on one dataset the
// way uGrapher's tuner does, then trains a small predictor and shows it
// picking a near-optimal schedule without searching — the paper's §5.4 flow
// end to end.
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/datasets"
	"repro/internal/gpu"
	"repro/internal/ops"
	"repro/internal/predictor"
	"repro/internal/schedule"
)

func main() {
	g, spec, err := datasets.Load("PP") // ppi: 57K vertices, 819K edges, skewed
	if err != nil {
		log.Fatal(err)
	}
	dev := gpu.V100()
	task := schedule.Task{
		Graph: g, Op: ops.WeightedAggrSum, Feat: 64, Device: dev,
	}.Widths(true)
	fmt.Printf("tuning %s on %s (|V|=%d |E|=%d std=%.1f)\n\n",
		ops.WeightedAggrSum.Name, spec.Name, g.NumVertices(), g.NumEdges(), spec.Std)

	// 1. Exhaustive grid search over the pruned space.
	start := time.Now()
	cands := schedule.GridSearch(task, schedule.PrunedSpace(task))
	searchTime := time.Since(start)
	fmt.Printf("grid search: %d schedules in %v\n", len(cands), searchTime.Round(time.Millisecond))
	fmt.Println("rank schedule     cycles      occupancy l2_hit")
	for i := 0; i < 5 && i < len(cands); i++ {
		c := cands[i]
		fmt.Printf("#%-3d %-12s %-11.0f %-9.2f %.2f\n",
			i+1, c.Schedule, c.Metrics.Cycles, c.Metrics.Occupancy, c.Metrics.L2HitRate)
	}
	worst := cands[len(cands)-1]
	fmt.Printf("worst %-11s %.0f cycles (%.1fx best) — schedules matter\n\n",
		worst.Schedule, worst.Metrics.Cycles, worst.Metrics.Cycles/cands[0].Metrics.Cycles)

	// 2. Train a predictor on random graphs (a reduced version of the
	// paper's 128-graph offline run) and let it choose instead.
	fmt.Println("training predictor on 32 random graphs...")
	cfg := predictor.DefaultTrainConfig(dev)
	cfg.NumGraphs = 32
	cfg.MaxVertices = 20000
	p, stats, err := predictor.Train(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d rows (MSE %.3f)\n", stats.Rows, stats.TrainMSE)

	start = time.Now()
	pick := p.Pick(task, schedule.PrunedSpace(task))
	predTime := time.Since(start)
	picked, err := schedule.Evaluate(task, pick)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npredictor picked %s in %v: %.0f cycles (%.2fx the grid optimum)\n",
		pick, predTime.Round(time.Microsecond),
		picked.Metrics.Cycles, picked.Metrics.Cycles/cands[0].Metrics.Cycles)
	fmt.Printf("search was %.0fx slower than prediction\n",
		float64(searchTime)/float64(predTime))
}
