// custom_operator demonstrates the paper's scalability claim (Table 1):
// supporting a brand-new graph operator requires only its op_info — no
// handwritten kernel, no template. We define an operator that no model in
// this repo uses (edge-weighted feature difference, min-reduced: a
// nearest-discrepancy operator), get generated kernels for every strategy,
// verify them against the reference loop, and tune it.
//
//	go run ./examples/custom_operator
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/schedule"
	"repro/internal/tensor"
)

func main() {
	// The new operator, described entirely by op_info: for each edge,
	// subtract the destination's features from the source's, then keep the
	// per-feature minimum over each vertex's incoming edges.
	myOp := ops.OpInfo{
		Name:     "u_sub_v.min",
		EdgeOp:   ops.EdgeSub,
		GatherOp: ops.GatherMin,
		AKind:    tensor.SrcV,
		BKind:    tensor.DstV,
		CKind:    tensor.DstV,
	}
	if err := myOp.Validate(); err != nil {
		log.Fatal(err)
	}
	cls, _ := myOp.Class()
	fmt.Printf("new operator %s classified as: %s\n\n", myOp, cls)

	rng := rand.New(rand.NewSource(99))
	b := graph.NewBuilder(500)
	for i := 0; i < 4000; i++ {
		b.AddEdge(int32(rng.Intn(500)), int32(rng.Intn(500)))
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	const feat = 32
	x := tensor.NewDense(500, feat)
	x.FillRandom(rng, 1)

	// Reference result from the canonical nested loop.
	ref := tensor.NewDense(500, feat)
	if err := core.Reference(g, myOp, core.Operands{
		A: tensor.Src(x), B: tensor.Typed{Kind: tensor.DstV, T: x}, C: tensor.Dst(ref),
	}); err != nil {
		log.Fatal(err)
	}

	// Every strategy executes the new operator correctly, immediately.
	dev := gpu.V100()
	for _, strat := range core.Strategies {
		out := tensor.NewDense(500, feat)
		sched := core.Schedule{Strategy: strat, Group: 2, Tile: 1}
		res, err := core.Run(g, myOp, core.Operands{
			A: tensor.Src(x), B: tensor.Typed{Kind: tensor.DstV, T: x}, C: tensor.Dst(out),
		}, sched, dev)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s matches reference: %-5v  cycles=%.0f\n",
			sched, out.AllClose(ref, 1e-4, 1e-4), res.Metrics.Cycles)
	}

	// And it is tunable like any built-in.
	task := schedule.Task{Graph: g, Op: myOp, Feat: feat, ACols: feat, BCols: feat, Device: dev}
	best, ok := schedule.Best(task, schedule.PrunedSpace(task))
	if !ok {
		log.Fatal("tuning failed")
	}
	fmt.Printf("\ntuned schedule: %s (%.0f cycles)\n", best.Schedule, best.Metrics.Cycles)

	plan := core.MustCompile(myOp, best.Schedule)
	fmt.Printf("\ngenerated kernel (no handwritten CUDA needed):\n%s\n", plan.GenerateSource())
}
