// minibatch demonstrates the paper's §6 "Batchsize" point: mini-batch
// inference samples a neighbourhood subgraph and then runs the exact same
// uGrapher graph operators on it — sampling and scheduling compose, and the
// optimal schedule can differ between the full graph and the batch.
//
//	go run ./examples/minibatch
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/gpu"
	"repro/internal/ops"
	"repro/internal/sample"
	"repro/internal/schedule"
	"repro/internal/tensor"
)

func main() {
	g, _, err := datasets.Load("AM06") // amazon0601: 403K vertices
	if err != nil {
		log.Fatal(err)
	}
	dev := gpu.V100()
	rng := rand.New(rand.NewSource(11))

	// A 512-seed batch with 2-hop fanout-10 sampling (GraphSage style).
	seeds := make([]int32, 512)
	for i := range seeds {
		seeds[i] = int32(rng.Intn(g.NumVertices()))
	}
	sub, err := sample.NeighborSample(g, seeds, 2, 10, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full graph: |V|=%d |E|=%d\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("sampled batch: |V|=%d |E|=%d (seeds=512, hops=2, fanout=10)\n\n",
		sub.Graph.NumVertices(), sub.Graph.NumEdges())

	// Slice the parent features into batch order and run the aggregation on
	// the subgraph through the tuned uGrapher interface.
	feat := 64
	parentX := tensor.NewDense(g.NumVertices(), feat)
	parentX.FillRandom(rng, 1)
	batchX := tensor.FromSlice(sub.Graph.NumVertices(), feat,
		sample.GatherRows(parentX.Data, feat, sub.Vertices))
	out := tensor.NewDense(sub.Graph.NumVertices(), feat)

	batchTask := schedule.Task{Graph: sub.Graph, Op: ops.AggrMean, Feat: feat, ACols: feat, Device: dev}
	fullTask := schedule.Task{Graph: g, Op: ops.AggrMean, Feat: feat, ACols: feat, Device: dev}
	batchBest, _ := schedule.Best(batchTask, schedule.PrunedSpace(batchTask))
	fullBest, _ := schedule.Best(fullTask, schedule.PrunedSpace(fullTask))
	fmt.Printf("tuned schedule on the batch:      %s (%.0f cycles)\n",
		batchBest.Schedule, batchBest.Metrics.Cycles)
	fmt.Printf("tuned schedule on the full graph: %s (%.0f cycles)\n\n",
		fullBest.Schedule, fullBest.Metrics.Cycles)

	if _, err := core.Run(sub.Graph, ops.AggrMean, core.Operands{
		A: tensor.Src(batchX), B: tensor.NullTensor, C: tensor.Dst(out),
	}, batchBest.Schedule, dev); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch aggregation done; row 0 -> parent vertex %d, out[0][0..2] = %.3f %.3f %.3f\n",
		sub.ParentVertex(0), out.At(0, 0), out.At(0, 1), out.At(0, 2))
	if batchBest.Schedule != fullBest.Schedule {
		fmt.Println("\nthe batch's optimal schedule differs from the full graph's —")
		fmt.Println("adaptive selection matters in both regimes.")
	}
}
