// gat_attention runs the full GAT model — the paper's most operator-diverse
// benchmark — on a real (synthetic Table 3) dataset, comparing the DGL
// baseline against uGrapher's tuned engine and printing the per-operator
// schedule choices that make the difference.
//
//	go run ./examples/gat_attention
package main

import (
	"fmt"
	"log"

	"repro/internal/baselines"
	"repro/internal/datasets"
	"repro/internal/gpu"
	"repro/internal/models"
)

func main() {
	g, spec, err := datasets.Load("PU") // pubmed: 19.7K vertices, 99K edges
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: |V|=%d |E|=%d feat=%d classes=%d\n\n",
		spec.Name, g.NumVertices(), g.NumEdges(), spec.Feat, spec.Class)

	dev := gpu.V100()
	gat := models.NewGAT()

	for _, eng := range []models.Engine{baselines.NewDGL(dev), models.NewTunedEngine(dev)} {
		rep, err := gat.InferenceCost(g, spec.Feat, spec.Class, eng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s: total %.0f cycles (graph %.0f, dense %.0f) ===\n",
			eng.Name(), rep.Total, rep.Graph, rep.Dense)
		for _, op := range rep.PerOp {
			if op.Kind != "graph" {
				continue
			}
			fmt.Printf("  %-22s %-11s %10.0f cycles  occ=%.2f l2=%.2f\n",
				op.Name, op.Schedule, op.Cycles, op.Metrics.Occupancy, op.Metrics.L2HitRate)
		}
		fmt.Println()
	}

	fmt.Println("note how uGrapher picks a different schedule per operator:")
	fmt.Println("the tiny-width attention message creation and the wide weighted")
	fmt.Println("aggregation have opposite needs, which no static kernel serves.")
}
