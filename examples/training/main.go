// training demonstrates the beyond-the-paper extension: estimating a full
// GNN training step. Each backward graph operator is itself a graph
// operator on the REVERSED graph, so it flows through the same uGrapher
// abstraction and gets its own tuned schedule — often a different one than
// its forward twin, because transposing the graph transposes the degree
// distribution.
//
//	go run ./examples/training
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/datasets"
	"repro/internal/gpu"
	"repro/internal/models"
)

func main() {
	g, spec, err := datasets.Load("PP") // ppi: skewed, mid-size
	if err != nil {
		log.Fatal(err)
	}
	dev := gpu.V100()
	eng := models.NewTunedEngine(dev)
	m := models.NewGCN()

	fwd, err := m.InferenceCost(g, spec.Feat, spec.Class, eng)
	if err != nil {
		log.Fatal(err)
	}
	train, err := models.TrainingCost(m, g, spec.Feat, spec.Class, eng)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("GCN on %s (|V|=%d |E|=%d)\n", spec.Name, g.NumVertices(), g.NumEdges())
	fmt.Printf("inference: %12.0f cycles (graph %.0f%%)\n",
		fwd.Total, 100*fwd.Graph/fwd.Total)
	fmt.Printf("training:  %12.0f cycles (graph %.0f%%), %.2fx inference\n\n",
		train.Total, 100*train.Graph/train.Total, train.Total/fwd.Total)

	fmt.Println("graph operators in the training step (fwd and bwd tuned independently):")
	for _, op := range train.PerOp {
		if op.Kind != "graph" {
			continue
		}
		dir := "fwd"
		if strings.Contains(op.Name, "_bwd") {
			dir = "bwd"
		}
		fmt.Printf("  %-22s %s  %-11s %10.0f cycles\n", op.Name, dir, op.Schedule, op.Cycles)
	}
	fmt.Println("\nbackward aggregations run on the transposed graph; on skewed graphs")
	fmt.Println("the transpose has a different hot side, so schedules can differ.")
}
