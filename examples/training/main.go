// training demonstrates the beyond-the-paper extension: estimating a full
// GNN training step, served from ONE compile. models.NewTrainer records the
// model as a program, fuses and schedules it, and plans its buffers once;
// every epoch after that reuses the compiled kernels and arena. The backward
// pass is cost-modelled: each backward graph operator is itself a graph
// operator on the REVERSED graph, so it flows through the same uGrapher
// abstraction and gets its own tuned schedule — often a different one than
// its forward twin, because transposing the graph transposes the degree
// distribution.
//
//	go run ./examples/training
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	"repro/internal/datasets"
	"repro/internal/gpu"
	"repro/internal/models"
	"repro/internal/tensor"
)

func main() {
	g, spec, err := datasets.Load("PP") // ppi: skewed, mid-size
	if err != nil {
		log.Fatal(err)
	}
	dev := gpu.V100()
	eng := models.NewTunedEngine(dev)
	m := models.NewGCN()

	fwd, err := m.InferenceCost(g, spec.Feat, spec.Class, eng)
	if err != nil {
		log.Fatal(err)
	}

	// Compile once: record -> fuse -> assign schedules -> plan buffers.
	compileStart := time.Now()
	trainer, err := models.NewTrainer(m, g, spec.Feat, spec.Class, eng)
	if err != nil {
		log.Fatal(err)
	}
	compileTime := time.Since(compileStart)
	train := trainer.StepCost()

	// Epoch loop: every iteration reuses the compiled kernels and arena —
	// no retuning, no relowering, no per-stage tensor allocation.
	x := tensor.NewDense(g.NumVertices(), spec.Feat)
	x.FillRandom(rand.New(rand.NewSource(7)), 1)
	const epochs = 10
	epochStart := time.Now()
	var logits *tensor.Dense
	for e := 0; e < epochs; e++ {
		if logits, err = trainer.Epoch(x); err != nil {
			log.Fatal(err)
		}
	}
	perEpoch := time.Since(epochStart) / epochs
	st := trainer.Compiled().Stats()
	fmt.Printf("compiled program: %d graph kernels (%d pairs fused), %d buffer slots, arena %.1f MiB\n",
		st.GraphKernels, st.FusedPairs, st.BufferSlots, float64(st.ArenaFloats)*4/(1<<20))
	fmt.Printf("compile: %v once; epochs: %v each (%d run, logits %dx%d)\n\n",
		compileTime.Round(time.Millisecond), perEpoch.Round(time.Microsecond),
		trainer.Epochs(), logits.Rows, logits.Cols)

	fmt.Printf("GCN on %s (|V|=%d |E|=%d)\n", spec.Name, g.NumVertices(), g.NumEdges())
	fmt.Printf("inference: %12.0f cycles (graph %.0f%%)\n",
		fwd.Total, 100*fwd.Graph/fwd.Total)
	fmt.Printf("training:  %12.0f cycles (graph %.0f%%), %.2fx inference\n\n",
		train.Total, 100*train.Graph/train.Total, train.Total/fwd.Total)

	fmt.Println("graph operators in the training step (fwd and bwd tuned independently):")
	for _, op := range train.PerOp {
		if op.Kind != "graph" {
			continue
		}
		dir := "fwd"
		if strings.Contains(op.Name, "_bwd") {
			dir = "bwd"
		}
		fmt.Printf("  %-22s %s  %-11s %10.0f cycles\n", op.Name, dir, op.Schedule, op.Cycles)
	}
	fmt.Println("\nbackward aggregations run on the transposed graph; on skewed graphs")
	fmt.Println("the transpose has a different hot side, so schedules can differ.")
}
