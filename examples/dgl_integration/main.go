// dgl_integration mirrors the paper's Fig. 11: a GCN layer written against
// the DGL-style message-passing interface, with uGrapher silently replacing
// the static kernels underneath. Compare with Fig. 10 — user code keeps the
// same shape; only the backend changes.
//
//	go run ./examples/dgl_integration
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/datasets"
	"repro/internal/dglcompat"
	"repro/internal/tensor"
)

func main() {
	g, spec, err := datasets.Load("CI") // citeseer
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: |V|=%d |E|=%d\n\n", spec.Name, g.NumVertices(), g.NumEdges())

	// graph = dgl.graph(...); graph.srcdata['h'] = h
	wrapped := dglcompat.Wrap(g, nil)
	rng := rand.New(rand.NewSource(1))
	h := tensor.NewDense(g.NumVertices(), 16)
	h.FillRandom(rng, 1)
	if err := wrapped.SetNData("h", h); err != nil {
		log.Fatal(err)
	}
	// graph.edata['_edge_weight'] = edge_weight
	ew := tensor.NewDense(g.NumEdges(), 1)
	ew.Fill(0.5)
	if err := wrapped.SetEData("_edge_weight", ew); err != nil {
		log.Fatal(err)
	}

	// uGrapher.update_all(graph, fn.u_mul_e('h','_edge_weight','m'),
	//                            fn.sum(msg='m', out='rst'))
	msg, err := dglcompat.Binary("u_mul_e", "h", "_edge_weight", "m")
	if err != nil {
		log.Fatal(err)
	}
	reduce, err := dglcompat.Reduce("sum", "m", "rst")
	if err != nil {
		log.Fatal(err)
	}
	metrics, err := wrapped.UpdateAll(msg, reduce)
	if err != nil {
		log.Fatal(err)
	}

	rst, _ := wrapped.NData("rst")
	fmt.Printf("update_all(u_mul_e, sum) ran in %.0f simulated cycles\n", metrics.Cycles)
	fmt.Printf("  occupancy=%.2f sm_eff=%.2f l2_hit=%.2f\n",
		metrics.Occupancy, metrics.SMEfficiency, metrics.L2HitRate)
	fmt.Printf("  rst shape: %dx%d; rst[0][0..2] = %.3f %.3f %.3f\n\n",
		rst.Rows, rst.Cols, rst.At(0, 0), rst.At(0, 1), rst.At(0, 2))

	// apply_edges(u_add_v) — GAT's attention message creation.
	if err := wrapped.SetNData("el", hSlice(h, 8)); err != nil {
		log.Fatal(err)
	}
	attn, err := dglcompat.Binary("u_add_v", "el", "el", "logits")
	if err != nil {
		log.Fatal(err)
	}
	metrics, err = wrapped.ApplyEdges(attn)
	if err != nil {
		log.Fatal(err)
	}
	logits, _ := wrapped.EData("logits")
	fmt.Printf("apply_edges(u_add_v) ran in %.0f simulated cycles; logits shape %dx%d\n",
		metrics.Cycles, logits.Rows, logits.Cols)
	fmt.Println("\nuser code kept DGL's update_all/apply_edges shape throughout;")
	fmt.Println("the schedule of each operator was tuned automatically underneath.")
}

// hSlice takes the first cols columns of t as a new tensor.
func hSlice(t *tensor.Dense, cols int) *tensor.Dense {
	out := tensor.NewDense(t.Rows, cols)
	for r := 0; r < t.Rows; r++ {
		copy(out.Row(r), t.Row(r)[:cols])
	}
	return out
}
