// Quickstart: build a graph, describe a graph operator with op_info, run it
// through the uGrapher interface under two different schedules, and compare
// results and simulated performance.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tensor"
)

func main() {
	// A small random graph: 1000 vertices, 8000 edges, mildly skewed.
	rng := rand.New(rand.NewSource(7))
	b := graph.NewBuilder(1000)
	for i := 0; i < 8000; i++ {
		dst := int32(rng.Intn(1000))
		if rng.Float64() < 0.3 {
			dst = int32(rng.Intn(100)) // hub vertices
		}
		b.AddEdge(int32(rng.Intn(1000)), dst)
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Vertex features: 1000 x 64.
	const feat = 64
	x := tensor.NewDense(g.NumVertices(), feat)
	x.FillRandom(rng, 1)
	out := tensor.NewDense(g.NumVertices(), feat)

	// The operator, described purely by op_info (paper Fig. 5/9):
	// aggregation-sum — copy each source's features, reduce by sum.
	op := ops.AggrSum
	operands := core.Operands{
		A: tensor.Src(x),
		B: tensor.NullTensor,
		C: tensor.Dst(out),
	}

	dev := gpu.V100()
	for _, sched := range []core.Schedule{
		{Strategy: core.ThreadVertex, Group: 1, Tile: 1},
		{Strategy: core.WarpEdge, Group: 4, Tile: 2},
	} {
		out.Zero()
		res, err := core.Run(g, op, operands, sched, dev)
		if err != nil {
			log.Fatal(err)
		}
		m := res.Metrics
		fmt.Printf("schedule %-10s cycles=%8.0f occupancy=%.2f sm_eff=%.2f l2_hit=%.2f atomics=%v\n",
			sched, m.Cycles, m.Occupancy, m.SMEfficiency, m.L2HitRate, m.AtomicTransactions > 0)
		fmt.Printf("  vertex 42 aggregated features [0..3]: %.3f %.3f %.3f %.3f\n",
			out.At(42, 0), out.At(42, 1), out.At(42, 2), out.At(42, 3))
	}

	// The generated kernel for the second schedule, as uGrapher's code
	// generator would emit it.
	plan := core.MustCompile(op, core.Schedule{Strategy: core.WarpEdge, Group: 4, Tile: 2})
	fmt.Printf("\n%s\n", plan.GenerateSource())
}
