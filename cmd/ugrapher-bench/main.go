// Command ugrapher-bench regenerates the paper's tables and figures on the
// simulator substrate.
//
// Usage:
//
//	ugrapher-bench list                 # show available experiment ids
//	ugrapher-bench fig13               # run one experiment
//	ugrapher-bench all                 # run every experiment in paper order
//	ugrapher-bench -quick -datasets CO,PR,AR fig1
//	ugrapher-bench -quick -json out.json all
//
// Output is aligned text, one table per experiment; EXPERIMENTS.md discusses
// the expected shapes. -json additionally writes one machine-readable summary
// record per experiment (id, datasets, backend, workers, wall time).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/program"
	"repro/internal/shard"
	"repro/internal/telemetry"
)

func main() {
	quick := flag.Bool("quick", false, "reduced sweeps (fewer datasets, coarser simulation)")
	datasets := flag.String("datasets", "", "comma-separated dataset codes to restrict to (e.g. CO,PR,AR)")
	sample := flag.Int("sample", 0, "simulator sampled blocks per kernel (0 = default)")
	csvOut := flag.Bool("csv", false, "emit CSV instead of aligned text")
	jsonOut := flag.String("json", "", "write per-experiment JSON summary records to this file")
	backend := flag.String("backend", "", "host compute backend for functional passes: reference, parallel, resilient or sim (empty = parallel / $UGRAPHER_BACKEND)")
	shards := flag.Int("shards", -1, "graph shards for the parallel backend: 0 = auto-size, 1 = unsharded, N = fixed count (-1 = $UGRAPHER_SHARDS / 1)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget, checked between experiments (0 = none); exceeding it exits with code 3")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON file (open in chrome://tracing or Perfetto)")
	metricsPath := flag.String("metrics", "", "write a Prometheus text-format metrics snapshot")
	profile := flag.Bool("profile", false, "print a per-kernel profile table at exit")
	parallelSteps := flag.Bool("parallel-steps", false, "execute provably independent compiled steps concurrently (verified wave schedule)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ugrapher-bench [flags] <experiment|all|list>\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	cmd := flag.Arg(0)

	// Exit codes: 1 = experiment error, 2 = usage (bad flags/environment),
	// 3 = -timeout exceeded.
	if err := core.ValidateEnvBackend(); err != nil {
		fmt.Fprintf(os.Stderr, "ugrapher-bench: %v\n", err)
		os.Exit(2)
	}
	if err := core.ValidateEnvShards(); err != nil {
		fmt.Fprintf(os.Stderr, "ugrapher-bench: %v\n", err)
		os.Exit(2)
	}
	if err := core.ValidateEnvWorkers(); err != nil {
		fmt.Fprintf(os.Stderr, "ugrapher-bench: %v\n", err)
		os.Exit(2)
	}
	if *shards >= 0 {
		if err := core.SetDefaultShards(*shards); err != nil {
			fmt.Fprintf(os.Stderr, "ugrapher-bench: %v\n", err)
			os.Exit(2)
		}
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opts := bench.Options{Quick: *quick, SampleBlocks: *sample, Backend: *backend}
	if _, err := opts.ComputeBackend(); err != nil {
		fmt.Fprintf(os.Stderr, "ugrapher-bench: %v\n", err)
		os.Exit(2)
	}
	if *backend != "" {
		// Functional passes outside enginesFor (examples, helpers) follow
		// the same selection.
		if err := core.SetDefaultBackend(*backend); err != nil {
			fmt.Fprintf(os.Stderr, "ugrapher-bench: %v\n", err)
			os.Exit(2)
		}
	}
	program.SetParallelSteps(*parallelSteps)
	if *datasets != "" {
		opts.Datasets = strings.Split(*datasets, ",")
	}

	if cmd == "list" {
		for _, e := range bench.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	obs := telemetry.CLIOptions{TracePath: *tracePath, MetricsPath: *metricsPath, Profile: *profile}
	obs.Begin()

	var summaries []experimentSummary
	err := runCmd(ctx, cmd, opts, *csvOut, &summaries)

	// The JSON summaries and telemetry outputs are written even when a later
	// experiment failed, so completed results are never lost.
	if *jsonOut != "" {
		if jerr := writeSummaries(*jsonOut, summaries); jerr != nil {
			fmt.Fprintf(os.Stderr, "ugrapher-bench: json: %v\n", jerr)
			if err == nil {
				err = jerr
			}
		}
	}
	if ferr := obs.Finish(os.Stdout); ferr != nil {
		fmt.Fprintf(os.Stderr, "ugrapher-bench: telemetry: %v\n", ferr)
		if err == nil {
			err = ferr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ugrapher-bench: %v\n", err)
		if errors.Is(err, context.DeadlineExceeded) {
			os.Exit(3)
		}
		var ue usageError
		if errors.As(err, &ue) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// usageError marks errors that should exit with the usage code (2).
type usageError struct{ err error }

func (e usageError) Error() string { return e.err.Error() }
func (e usageError) Unwrap() error { return e.err }

// runCmd dispatches "all" or a single experiment id, appending one summary
// record per completed experiment.
func runCmd(ctx context.Context, cmd string, opts bench.Options, csvOut bool, summaries *[]experimentSummary) error {
	if cmd == "all" {
		for _, e := range bench.All() {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("%w before %s", err, e.ID)
			}
			if err := runOne(e, opts, csvOut, summaries); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
		}
		return nil
	}
	e, err := bench.ByID(cmd)
	if err != nil {
		return usageError{err}
	}
	if err := runOne(e, opts, csvOut, summaries); err != nil {
		return fmt.Errorf("%s: %w", e.ID, err)
	}
	return nil
}

// experimentSummary is the machine-readable record -json emits per
// experiment.
type experimentSummary struct {
	Experiment string   `json:"experiment"`
	Title      string   `json:"title"`
	Datasets   []string `json:"datasets,omitempty"`
	Backend    string   `json:"backend"`
	Workers    int      `json:"workers"`
	// Shards is the configured shard count for the parallel backend (1 =
	// unsharded); EdgeCut is the cross-shard edge fraction of the most recent
	// partition built during the experiment (0 when nothing was partitioned).
	Shards  int     `json:"shards"`
	EdgeCut float64 `json:"edgecut"`
	Quick   bool    `json:"quick"`
	WallMs  float64 `json:"wall_ms"`
	Rows    int     `json:"rows"`
	// FusedRegions and GemmBlocked count fusion regions grown and GEMM steps
	// lowered through the packed blocked path while the experiment ran
	// (process-wide compile counters diffed around the run).
	FusedRegions int64 `json:"fused_regions"`
	GemmBlocked  int64 `json:"gemm_blocked"`
	// Waves counts the verified wave-schedule levels compiled while the
	// experiment ran (process-wide counter diffed around the run), and
	// WavesVerified the wave-schedule verification passes behind them.
	Waves         int64 `json:"waves"`
	WavesVerified int64 `json:"waves_verified"`
	// Verified reports whether the static analysis ran over the experiment's
	// compiled artifacts and found no violations. False means no plan or
	// program was compiled during the run (nothing was verified) — a clean
	// run can never carry violations, since verification failures abort
	// compilation.
	Verified bool `json:"verified"`
}

func writeSummaries(path string, summaries []experimentSummary) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(summaries); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func runOne(e bench.Experiment, opts bench.Options, csvOut bool, summaries *[]experimentSummary) error {
	start := time.Now()
	vsBefore := analysis.Stats()
	spBefore := shard.Stats()
	gcBefore := program.GlobalStats()
	tab, err := e.Run(opts)
	if err != nil {
		return err
	}
	vsAfter := analysis.Stats()
	spAfter := shard.Stats()
	gcAfter := program.GlobalStats()
	var edgeCut float64
	if spAfter.Partitions > spBefore.Partitions {
		edgeCut = spAfter.LastEdgeCut
	}
	wall := time.Since(start)
	render := tab.Render
	if csvOut {
		render = tab.RenderCSV
	}
	if err := render(os.Stdout); err != nil {
		return err
	}
	// Two explicitly separate numbers: table cells are *simulated GPU
	// cycles* (the schedule-cost model); the line below is *measured host
	// wall-clock* of producing the experiment on the selected backend.
	b, _ := opts.ComputeBackend()
	fmt.Printf("(%s: simulated cycles in table; host wall-clock %v, backend=%s)\n\n",
		e.ID, wall.Round(time.Millisecond), b.Name())
	*summaries = append(*summaries, experimentSummary{
		Experiment:    e.ID,
		Title:         e.Title,
		Datasets:      opts.Datasets,
		Backend:       b.Name(),
		Workers:       core.Workers(b),
		Shards:        core.DefaultShards(),
		EdgeCut:       edgeCut,
		Quick:         opts.Quick,
		WallMs:        float64(wall.Microseconds()) / 1e3,
		Rows:          len(tab.Rows),
		FusedRegions:  gcAfter.FusedRegions - gcBefore.FusedRegions,
		GemmBlocked:   gcAfter.GemmBlocked - gcBefore.GemmBlocked,
		Waves:         gcAfter.WavesScheduled - gcBefore.WavesScheduled,
		WavesVerified: vsAfter.Waves - vsBefore.Waves,
		Verified: (vsAfter.Plans > vsBefore.Plans || vsAfter.Programs > vsBefore.Programs) &&
			vsAfter.Violations == vsBefore.Violations,
	})
	return nil
}
