// Command ugrapher-bench regenerates the paper's tables and figures on the
// simulator substrate.
//
// Usage:
//
//	ugrapher-bench list                 # show available experiment ids
//	ugrapher-bench fig13               # run one experiment
//	ugrapher-bench all                 # run every experiment in paper order
//	ugrapher-bench -quick -datasets CO,PR,AR fig1
//
// Output is aligned text, one table per experiment; EXPERIMENTS.md discusses
// the expected shapes.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
)

func main() {
	quick := flag.Bool("quick", false, "reduced sweeps (fewer datasets, coarser simulation)")
	datasets := flag.String("datasets", "", "comma-separated dataset codes to restrict to (e.g. CO,PR,AR)")
	sample := flag.Int("sample", 0, "simulator sampled blocks per kernel (0 = default)")
	csvOut := flag.Bool("csv", false, "emit CSV instead of aligned text")
	backend := flag.String("backend", "", "host compute backend for functional passes: reference, parallel, resilient or sim (empty = parallel / $UGRAPHER_BACKEND)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget, checked between experiments (0 = none); exceeding it exits with code 3")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ugrapher-bench [flags] <experiment|all|list>\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	cmd := flag.Arg(0)

	// Exit codes: 1 = experiment error, 2 = usage (bad flags/environment),
	// 3 = -timeout exceeded.
	if err := core.ValidateEnvBackend(); err != nil {
		fmt.Fprintf(os.Stderr, "ugrapher-bench: %v\n", err)
		os.Exit(2)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opts := bench.Options{Quick: *quick, SampleBlocks: *sample, Backend: *backend}
	if _, err := opts.ComputeBackend(); err != nil {
		fmt.Fprintf(os.Stderr, "ugrapher-bench: %v\n", err)
		os.Exit(2)
	}
	if *backend != "" {
		// Functional passes outside enginesFor (examples, helpers) follow
		// the same selection.
		if err := core.SetDefaultBackend(*backend); err != nil {
			fmt.Fprintf(os.Stderr, "ugrapher-bench: %v\n", err)
			os.Exit(2)
		}
	}
	if *datasets != "" {
		opts.Datasets = strings.Split(*datasets, ",")
	}

	switch cmd {
	case "list":
		for _, e := range bench.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	case "all":
		for _, e := range bench.All() {
			if ctx.Err() != nil {
				fmt.Fprintf(os.Stderr, "ugrapher-bench: %v before %s\n", ctx.Err(), e.ID)
				os.Exit(3)
			}
			if err := runOne(e, opts, *csvOut); err != nil {
				fmt.Fprintf(os.Stderr, "ugrapher-bench: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
		}
		return
	default:
		e, err := bench.ByID(cmd)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ugrapher-bench: %v\n", err)
			os.Exit(2)
		}
		if err := runOne(e, opts, *csvOut); err != nil {
			fmt.Fprintf(os.Stderr, "ugrapher-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
	}
}

func runOne(e bench.Experiment, opts bench.Options, csvOut bool) error {
	start := time.Now()
	tab, err := e.Run(opts)
	if err != nil {
		return err
	}
	render := tab.Render
	if csvOut {
		render = tab.RenderCSV
	}
	if err := render(os.Stdout); err != nil {
		return err
	}
	// Two explicitly separate numbers: table cells are *simulated GPU
	// cycles* (the schedule-cost model); the line below is *measured host
	// wall-clock* of producing the experiment on the selected backend.
	b, _ := opts.ComputeBackend()
	fmt.Printf("(%s: simulated cycles in table; host wall-clock %v, backend=%s)\n\n",
		e.ID, time.Since(start).Round(time.Millisecond), b.Name())
	return nil
}
