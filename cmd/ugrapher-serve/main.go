// Command ugrapher-serve is the inference daemon: it loads named models,
// compiles each once per (model × graph × backend × shards), and serves
// JSON inference over HTTP with admission control, request batching,
// per-model circuit breaking and graceful drain (DESIGN.md §13).
//
// Examples:
//
//	ugrapher-serve                                  # GCN on CO at :8080
//	ugrapher-serve -models GCN,GAT -dataset CO -addr 127.0.0.1:9090
//	curl -s localhost:8080/v1/infer -d '{"model":"GCN","vertices":[0,1,2]}'
//	curl -s localhost:8080/metrics
//
// Endpoints: POST /v1/infer, GET /v1/models, /healthz, /readyz, /metrics.
// SIGTERM (or SIGINT) starts a graceful drain: /readyz flips unready, new
// requests get 503, in-flight batches finish under -drain-timeout, then the
// process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	modelsFlag := flag.String("models", "GCN", "comma-separated model names to serve (GCN, GIN, GAT, SSum, SMax, SMean)")
	dataset := flag.String("dataset", "CO", "dataset code from Table 3 the models serve")
	feat := flag.Int("feat", 16, "input feature width")
	classes := flag.Int("classes", 8, "output classes")
	backend := flag.String("backend", "", "host compute backend: reference, parallel or sim (empty = parallel / $UGRAPHER_BACKEND)")
	shards := flag.Int("shards", -1, "graph shards for the parallel backend: 0 = auto-size, 1 = unsharded, N = fixed count (-1 = $UGRAPHER_SHARDS / 1)")
	queue := flag.Int("queue", 64, "per-model admission queue depth; full queue rejects with 429")
	batch := flag.Int("batch", 8, "max requests coalesced into one forward pass")
	reqTimeout := flag.Duration("timeout", 2*time.Second, "default per-request deadline when the request carries no timeout_ms")
	maxTimeout := flag.Duration("max-timeout", 30*time.Second, "upper bound on any request's deadline")
	breakerN := flag.Int("breaker-threshold", 3, "consecutive kernel failures that trip a model's circuit breaker")
	breakerCool := flag.Duration("breaker-cooldown", 2*time.Second, "open breaker cooldown before a half-open probe")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful drain budget after SIGTERM")
	faults := flag.String("faults", "", "arm fault-injection points, e.g. 'queue-stall:after=1,limit=1,delay=2s;kernel-panic-load:every=1' (testing)")
	flag.Parse()

	// Exit codes: 1 = startup/serve error, 2 = usage (bad flags or
	// environment). A drained SIGTERM exit is 0.
	if err := core.ValidateEnvBackend(); err != nil {
		fmt.Fprintf(os.Stderr, "ugrapher-serve: %v\n", err)
		os.Exit(2)
	}
	if err := core.ValidateEnvShards(); err != nil {
		fmt.Fprintf(os.Stderr, "ugrapher-serve: %v\n", err)
		os.Exit(2)
	}
	if err := core.ValidateEnvWorkers(); err != nil {
		fmt.Fprintf(os.Stderr, "ugrapher-serve: %v\n", err)
		os.Exit(2)
	}
	if *faults != "" {
		if err := faultinject.ParseAndArm(*faults); err != nil {
			fmt.Fprintf(os.Stderr, "ugrapher-serve: -faults: %v\n", err)
			os.Exit(2)
		}
	}
	// A daemon always collects: breaker transitions, batch spans and the
	// serving counters are the operator's only window into it.
	telemetry.SetEnabled(true)

	cfg := serve.Config{
		Dataset:          *dataset,
		Models:           strings.Split(*modelsFlag, ","),
		Feat:             *feat,
		Classes:          *classes,
		Backend:          *backend,
		Shards:           *shards,
		QueueDepth:       *queue,
		MaxBatch:         *batch,
		DefaultTimeout:   *reqTimeout,
		MaxTimeout:       *maxTimeout,
		BreakerThreshold: *breakerN,
		BreakerCooldown:  *breakerCool,
		DrainTimeout:     *drainTimeout,
	}
	if err := run(cfg, *addr); err != nil {
		fmt.Fprintf(os.Stderr, "ugrapher-serve: %v\n", err)
		os.Exit(1)
	}
}

func run(cfg serve.Config, addr string) error {
	compileStart := time.Now()
	s, err := serve.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("models compiled in %v\n", time.Since(compileStart).Round(time.Millisecond))
	// The "listening on" line is the readiness handshake scripts and the
	// e2e suite key on (port 0 resolves here).
	fmt.Printf("listening on %s\n", ln.Addr())

	srv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("received %v; draining (budget %v)\n", sig, cfg.DrainTimeout)
	}
	// Drain first — the listener stays open so /healthz and /readyz keep
	// answering while in-flight batches finish — then close the listener.
	drainErr := s.Drain(cfg.DrainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && drainErr == nil {
		drainErr = err
	}
	if drainErr != nil {
		return drainErr
	}
	fmt.Println("drained; exiting")
	return nil
}
