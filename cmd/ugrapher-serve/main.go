// Command ugrapher-serve is the inference daemon: it loads named models,
// compiles each once per (model × graph × backend × shards), and serves
// JSON inference over HTTP with admission control, request batching,
// per-model circuit breaking and graceful drain (DESIGN.md §13).
//
// Examples:
//
//	ugrapher-serve                                  # GCN on CO at :8080
//	ugrapher-serve -models GCN,GAT -dataset CO -addr 127.0.0.1:9090
//	curl -s localhost:8080/v1/infer -d '{"model":"GCN","vertices":[0,1,2]}'
//	curl -s localhost:8080/metrics
//
// Endpoints: POST /v1/infer, GET /v1/models, /healthz, /readyz, /metrics,
// /debug/requests (tail-sampled slow/error span trees). -debug-addr opens a
// second, operator-only listener carrying net/http/pprof — never the serving
// port, so profiling cannot be reached from the service's exposure surface.
// SIGTERM (or SIGINT) starts a graceful drain: /readyz flips unready, new
// requests get 503, in-flight batches finish under -drain-timeout, then the
// process exits 0. With -trace, the collected causal trace (one span tree
// per request; see DESIGN.md §8) is written as Chrome trace-event JSON after
// the drain, openable in Perfetto.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/program"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

// version identifies the build in ugrapher_build_info (no VCS stamping in
// this build pipeline; bump by hand with releases).
const version = "0.9.0"

// maxQueueDepth and maxBatchSize bound the -queue and -batch flags: a queue
// channel and batch slice of these sizes are preallocated per model, so the
// caps keep a fat-fingered flag from pinning gigabytes at startup.
const (
	maxQueueDepth = 1 << 16
	maxBatchSize  = 1024
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	modelsFlag := flag.String("models", "GCN", "comma-separated model names to serve (GCN, GIN, GAT, SSum, SMax, SMean)")
	dataset := flag.String("dataset", "CO", "dataset code from Table 3 the models serve")
	feat := flag.Int("feat", 16, "input feature width")
	classes := flag.Int("classes", 8, "output classes")
	backend := flag.String("backend", "", "host compute backend: reference, parallel or sim (empty = parallel / $UGRAPHER_BACKEND)")
	shards := flag.Int("shards", -1, "graph shards for the parallel backend: 0 = auto-size, 1 = unsharded, N = fixed count (-1 = $UGRAPHER_SHARDS / 1)")
	queue := flag.Int("queue", 64, "per-model admission queue depth; full queue rejects with 429")
	batch := flag.Int("batch", 8, "max requests coalesced into one forward pass")
	reqTimeout := flag.Duration("timeout", 2*time.Second, "default per-request deadline when the request carries no timeout_ms")
	maxTimeout := flag.Duration("max-timeout", 30*time.Second, "upper bound on any request's deadline")
	breakerN := flag.Int("breaker-threshold", 3, "consecutive kernel failures that trip a model's circuit breaker")
	breakerCool := flag.Duration("breaker-cooldown", 2*time.Second, "open breaker cooldown before a half-open probe")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful drain budget after SIGTERM")
	parallelSteps := flag.Bool("parallel-steps", false, "execute provably independent compiled steps concurrently (verified wave schedule)")
	faults := flag.String("faults", "", "arm fault-injection points, e.g. 'queue-stall:after=1,limit=1,delay=2s;kernel-panic-load:every=1' (testing)")
	debugAddr := flag.String("debug-addr", "", "operator-only debug listener with net/http/pprof (host:port; empty = off; never the serving port)")
	tracePath := flag.String("trace", "", "write the collected Chrome trace-event JSON here after drain (openable in Perfetto)")
	flag.Parse()

	// Exit codes: 1 = startup/serve error, 2 = usage (bad flags or
	// environment). A drained SIGTERM exit is 0.
	if err := core.ValidateEnvBackend(); err != nil {
		fmt.Fprintf(os.Stderr, "ugrapher-serve: %v\n", err)
		os.Exit(2)
	}
	if err := core.ValidateEnvShards(); err != nil {
		fmt.Fprintf(os.Stderr, "ugrapher-serve: %v\n", err)
		os.Exit(2)
	}
	if err := core.ValidateEnvWorkers(); err != nil {
		fmt.Fprintf(os.Stderr, "ugrapher-serve: %v\n", err)
		os.Exit(2)
	}
	// serve.New silently substitutes defaults for non-positive queue/batch
	// values; the CLI rejects them instead so a typo'd unit file fails loud
	// at startup rather than running with a surprise configuration.
	if *queue < 1 || *queue > maxQueueDepth {
		fmt.Fprintf(os.Stderr, "ugrapher-serve: invalid -queue %d (valid: 1 through %d)\n", *queue, maxQueueDepth)
		os.Exit(2)
	}
	if *batch < 1 || *batch > maxBatchSize {
		fmt.Fprintf(os.Stderr, "ugrapher-serve: invalid -batch %d (valid: 1 through %d)\n", *batch, maxBatchSize)
		os.Exit(2)
	}
	program.SetParallelSteps(*parallelSteps)
	if *faults != "" {
		if err := faultinject.ParseAndArm(*faults); err != nil {
			fmt.Fprintf(os.Stderr, "ugrapher-serve: -faults: %v\n", err)
			os.Exit(2)
		}
	}
	// A daemon always collects: breaker transitions, batch spans and the
	// serving counters are the operator's only window into it.
	telemetry.SetEnabled(true)
	telemetry.Default().SetBuildInfo(version, serveBackendLabel(*backend))

	cfg := serve.Config{
		Dataset:          *dataset,
		Models:           strings.Split(*modelsFlag, ","),
		Feat:             *feat,
		Classes:          *classes,
		Backend:          *backend,
		Shards:           *shards,
		QueueDepth:       *queue,
		MaxBatch:         *batch,
		DefaultTimeout:   *reqTimeout,
		MaxTimeout:       *maxTimeout,
		BreakerThreshold: *breakerN,
		BreakerCooldown:  *breakerCool,
		DrainTimeout:     *drainTimeout,
	}
	if err := run(cfg, *addr, *debugAddr, *tracePath); err != nil {
		fmt.Fprintf(os.Stderr, "ugrapher-serve: %v\n", err)
		os.Exit(1)
	}
}

// serveBackendLabel is the build_info backend label: the effective backend
// name for the default empty flag.
func serveBackendLabel(backend string) string {
	if backend == "" {
		return "parallel"
	}
	return backend
}

// debugMux builds the operator-only pprof mux. The handlers are registered
// on a private mux — not http.DefaultServeMux — so nothing else can
// accidentally expose them, and they exist only on the -debug-addr listener.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func run(cfg serve.Config, addr, debugAddr, tracePath string) error {
	compileStart := time.Now()
	s, err := serve.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("models compiled in %v\n", time.Since(compileStart).Round(time.Millisecond))
	// The "listening on" line is the readiness handshake scripts and the
	// e2e suite key on (port 0 resolves here).
	fmt.Printf("listening on %s\n", ln.Addr())

	srv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	// The debug listener is strictly separate from the serving port: pprof
	// never rides the mux that admission control and the load balancer see.
	var debugSrv *http.Server
	if debugAddr != "" {
		dln, err := net.Listen("tcp", debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		fmt.Printf("debug listening on %s\n", dln.Addr())
		debugSrv = &http.Server{Handler: debugMux()}
		go func() {
			if err := debugSrv.Serve(dln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "ugrapher-serve: debug listener: %v\n", err)
			}
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("received %v; draining (budget %v)\n", sig, cfg.DrainTimeout)
	}
	// Drain first — the listener stays open so /healthz and /readyz keep
	// answering while in-flight batches finish — then close the listener.
	drainErr := s.Drain(cfg.DrainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && drainErr == nil {
		drainErr = err
	}
	if debugSrv != nil {
		_ = debugSrv.Shutdown(ctx)
	}
	// The trace is written after the drain so in-flight requests' span
	// trees are complete; a failed drain still writes what was collected.
	if tracePath != "" {
		opts := telemetry.CLIOptions{TracePath: tracePath}
		if err := opts.Finish(os.Stdout); err != nil && drainErr == nil {
			drainErr = err
		}
		fmt.Printf("trace written to %s\n", tracePath)
	}
	if drainErr != nil {
		return drainErr
	}
	fmt.Println("drained; exiting")
	return nil
}
