// Command ugrapher-train runs the offline predictor pipeline of the paper's
// §5.4: sample random graphs, measure schedule costs on the simulator, fit
// the gradient-boosted model, validate it against grid search, and
// optionally persist it.
//
// Examples:
//
//	ugrapher-train                       # default 128-graph training run
//	ugrapher-train -graphs 32 -out model.json
//	ugrapher-train -load model.json -validate CO,PR,AR
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/gpu"
	"repro/internal/ops"
	"repro/internal/predictor"
	"repro/internal/schedule"
	"repro/internal/telemetry"
)

func main() {
	graphs := flag.Int("graphs", 128, "number of random training graphs (paper: 128)")
	maxV := flag.Int("maxv", 60000, "cap on training graph vertices")
	out := flag.String("out", "", "write the trained model to this file")
	load := flag.String("load", "", "skip training; load a model from this file")
	validate := flag.String("validate", "CO,PR,AR,DD", "datasets for the Fig. 12-style validation")
	gpuName := flag.String("gpu", "V100", "device: V100 or A100")
	shards := flag.Int("shards", -1, "graph shards for the parallel backend: 0 = auto-size, 1 = unsharded, N = fixed count (-1 = $UGRAPHER_SHARDS / 1)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget, checked at phase boundaries (0 = none); exceeding it exits with code 3")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON file (open in chrome://tracing or Perfetto)")
	metricsPath := flag.String("metrics", "", "write a Prometheus text-format metrics snapshot")
	profile := flag.Bool("profile", false, "print a per-kernel profile table at exit")
	flag.Parse()

	// Exit codes: 1 = execution error, 2 = usage (bad environment), 3 =
	// -timeout exceeded.
	if err := core.ValidateEnvBackend(); err != nil {
		fmt.Fprintf(os.Stderr, "ugrapher-train: %v\n", err)
		os.Exit(2)
	}
	if err := core.ValidateEnvShards(); err != nil {
		fmt.Fprintf(os.Stderr, "ugrapher-train: %v\n", err)
		os.Exit(2)
	}
	if err := core.ValidateEnvWorkers(); err != nil {
		fmt.Fprintf(os.Stderr, "ugrapher-train: %v\n", err)
		os.Exit(2)
	}
	if *shards >= 0 {
		if err := core.SetDefaultShards(*shards); err != nil {
			fmt.Fprintf(os.Stderr, "ugrapher-train: %v\n", err)
			os.Exit(2)
		}
	}
	obs := telemetry.CLIOptions{TracePath: *tracePath, MetricsPath: *metricsPath, Profile: *profile}
	obs.Begin()
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	err := run(ctx, *graphs, *maxV, *out, *load, *validate, *gpuName)
	// Telemetry outputs are written even when the run failed, so a trace of
	// the failure is never lost.
	if ferr := obs.Finish(os.Stdout); ferr != nil {
		fmt.Fprintf(os.Stderr, "ugrapher-train: telemetry: %v\n", ferr)
		if err == nil {
			err = ferr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ugrapher-train: %v\n", err)
		if errors.Is(err, context.DeadlineExceeded) {
			os.Exit(3)
		}
		os.Exit(1)
	}
}

func run(ctx context.Context, graphs, maxV int, out, load, validate, gpuName string) error {
	dev := gpu.V100()
	if gpuName == "A100" {
		dev = gpu.A100()
	}

	var p *predictor.Predictor
	if load != "" {
		f, err := os.Open(load)
		if err != nil {
			return err
		}
		defer f.Close()
		p, err = predictor.LoadPredictor(f)
		if err != nil {
			return err
		}
		fmt.Printf("loaded model from %s\n", load)
	} else {
		cfg := predictor.DefaultTrainConfig(dev)
		cfg.NumGraphs = graphs
		cfg.MaxVertices = maxV
		fmt.Printf("training on %d random graphs (Table 7 features)...\n", graphs)
		start := time.Now()
		trained, stats, err := predictor.Train(cfg)
		if err != nil {
			return err
		}
		p = trained
		fmt.Printf("trained on %d (schedule, cost) rows in %v; train MSE(log-cycles) = %.4f\n",
			stats.Rows, time.Since(start).Round(time.Millisecond), stats.TrainMSE)
		order := p.Model.SortedImportance(predictor.NumFeatures)
		fmt.Printf("top features: ")
		for i := 0; i < 5 && i < len(order); i++ {
			fmt.Printf("%s ", predictor.FeatureNames[order[i]])
		}
		fmt.Println()
	}

	if err := ctx.Err(); err != nil {
		return err
	}
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := p.Save(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("model written to %s\n", out)
	}

	if validate == "" {
		return nil
	}
	fmt.Printf("\nvalidation vs grid search (GCN L1 aggregation, %s):\n", dev.Name)
	fmt.Printf("%-8s %-14s %-14s %s\n", "dataset", "grid-best", "predicted", "pred/grid")
	for _, code := range strings.Split(validate, ",") {
		if err := ctx.Err(); err != nil {
			return err
		}
		g, _, err := datasets.Load(code)
		if err != nil {
			return err
		}
		task := schedule.Task{Graph: g, Op: ops.WeightedAggrSum, Feat: 16, Device: dev}.Widths(true)
		cands := schedule.GridSearch(task, schedule.PrunedSpace(task))
		if len(cands) == 0 {
			return fmt.Errorf("no schedules for %s", code)
		}
		start := time.Now()
		pick := p.Pick(task, schedule.PrunedSpace(task))
		predLatency := time.Since(start)
		picked, err := schedule.Evaluate(task, pick)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %-14s %-14s %.2f (prediction took %v)\n",
			code, cands[0].Schedule, pick,
			picked.Metrics.Cycles/cands[0].Metrics.Cycles,
			predLatency.Round(time.Microsecond))
	}
	return nil
}
