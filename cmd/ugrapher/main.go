// Command ugrapher runs a single graph operator through the uGrapher
// interface: pick a dataset (or load an edge list), an operator, a feature
// width and optionally a schedule, and it reports the simulated metrics —
// and, with -tune, the grid-search winner and the ranking of the space.
//
// Examples:
//
//	ugrapher -dataset CO -op u_mul_e.sum -feat 32
//	ugrapher -dataset AR -op copy_u.max -feat 64 -schedule WE_G8_T1
//	ugrapher -dataset SB -op u_add_v -feat 8 -tune -top 10
//	ugrapher -graph edges.txt -op copy_u.sum -feat 16 -gpu A100 -source
//
// With -model it runs a whole GNN instead of one operator: the model's
// forward pass is recorded as a program, fused, scheduled and buffer-planned
// once (compile time reported separately from the steady-state run time).
// -no-compile forces the op-by-op interpreter path instead:
//
//	ugrapher -dataset CO -model GCN -feat 32 -classes 16
//	ugrapher -dataset CO -model GAT -feat 32 -no-compile
//
// -verify prints the static-analysis report for whatever was compiled (the
// whole program with -model, the single kernel plan otherwise) and exits
// nonzero on violations:
//
//	ugrapher -dataset CO -model GCN -feat 32 -verify
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/ops"
	"repro/internal/program"
	"repro/internal/schedule"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

func main() {
	dataset := flag.String("dataset", "", "dataset code from Table 3 (CO, CI, PU, ...)")
	graphFile := flag.String("graph", "", "edge-list file (header 'V E', then 'src dst' lines)")
	opName := flag.String("op", "u_mul_e.sum", "operator: a DGL-style name from the registry (copy_u, u_add_v, u_mul_e.sum, copy_e.max, ...)")
	feat := flag.Int("feat", 32, "feature width of the operator")
	gpuName := flag.String("gpu", "V100", "device: V100 or A100")
	schedText := flag.String("schedule", "", "schedule like WE_G8_T4 (empty = tune automatically)")
	tune := flag.Bool("tune", false, "grid-search the schedule space and report the ranking")
	top := flag.Int("top", 5, "with -tune: how many candidates to print")
	source := flag.Bool("source", false, "print the generated kernel source")
	backend := flag.String("backend", "", "host compute backend: reference, parallel or sim (empty = parallel / $UGRAPHER_BACKEND)")
	shards := flag.Int("shards", -1, "graph shards for the parallel backend: 0 = auto-size, 1 = unsharded, N = fixed count (-1 = $UGRAPHER_SHARDS / 1)")
	model := flag.String("model", "", "run a whole model instead of one operator: GCN, GIN, GAT, SSum, SMax or SMean")
	classes := flag.Int("classes", 16, "with -model: number of output classes")
	runs := flag.Int("runs", 5, "with -model: steady-state repetitions to time")
	noCompile := flag.Bool("no-compile", false, "with -model: skip program compilation and interpret op by op")
	verify := flag.Bool("verify", false, "print the static-analysis verification report (whole program with -model, compiled plan otherwise); violations exit nonzero")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the whole run (0 = none); exceeding it exits with code 3")
	checkNumerics := flag.Bool("check-numerics", false, "scan every graph operator's output for NaN/Inf and fail naming the op")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON file (open in chrome://tracing or Perfetto)")
	metricsPath := flag.String("metrics", "", "write a Prometheus text-format metrics snapshot")
	profile := flag.Bool("profile", false, "print a per-kernel profile table at exit")
	parallelSteps := flag.Bool("parallel-steps", false, "with -model: execute provably independent compiled steps concurrently (verified wave schedule)")
	flag.Parse()

	// Exit codes: 1 = execution error, 2 = usage (bad flags or environment),
	// 3 = -timeout exceeded.
	if err := core.ValidateEnvBackend(); err != nil {
		fmt.Fprintf(os.Stderr, "ugrapher: %v\n", err)
		os.Exit(2)
	}
	if err := core.ValidateEnvShards(); err != nil {
		fmt.Fprintf(os.Stderr, "ugrapher: %v\n", err)
		os.Exit(2)
	}
	if err := core.ValidateEnvWorkers(); err != nil {
		fmt.Fprintf(os.Stderr, "ugrapher: %v\n", err)
		os.Exit(2)
	}
	if *backend != "" {
		if err := core.SetDefaultBackend(*backend); err != nil {
			fmt.Fprintf(os.Stderr, "ugrapher: %v\n", err)
			os.Exit(2)
		}
	}
	if *shards >= 0 {
		if err := core.SetDefaultShards(*shards); err != nil {
			fmt.Fprintf(os.Stderr, "ugrapher: %v\n", err)
			os.Exit(2)
		}
	}
	core.SetCheckNumerics(*checkNumerics)
	program.SetParallelSteps(*parallelSteps)
	obs := telemetry.CLIOptions{TracePath: *tracePath, MetricsPath: *metricsPath, Profile: *profile}
	obs.Begin()
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var err error
	if *model != "" {
		err = runModel(ctx, *dataset, *graphFile, *model, *feat, *classes, *gpuName, *runs, *noCompile, *verify)
	} else {
		err = run(ctx, *dataset, *graphFile, *opName, *feat, *gpuName, *schedText, *tune, *top, *source, *verify)
	}
	// Telemetry outputs are written even when the run failed, so a trace of
	// the failure (failed spans, fallback events) is never lost.
	if ferr := obs.Finish(os.Stdout); ferr != nil {
		fmt.Fprintf(os.Stderr, "ugrapher: telemetry: %v\n", ferr)
		if err == nil {
			err = ferr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ugrapher: %v\n", err)
		if errors.Is(err, context.DeadlineExceeded) {
			os.Exit(3)
		}
		os.Exit(1)
	}
}

// runModel times a whole model, either compiled (record -> fuse -> schedule
// -> buffer-plan once, then repeated zero-allocation runs) or interpreted
// (the op-by-op path, rebuilt every run), printing the one-off compile cost
// and the steady-state per-run wall clock on separate lines.
func runModel(ctx context.Context, dataset, graphFile, name string, feat, classes int, gpuName string, runs int, noCompile, verify bool) error {
	g, err := loadGraph(dataset, graphFile)
	if err != nil {
		return err
	}
	m, err := models.ByName(name)
	if err != nil {
		return err
	}
	dev := gpu.V100()
	if gpuName == "A100" {
		dev = gpu.A100()
	}
	if runs < 1 {
		runs = 1
	}
	eng := models.NewTunedEngine(dev)
	st := g.ComputeStats()
	fmt.Printf("graph: |V|=%d |E|=%d mean-degree=%.1f std=%.1f\n",
		st.NumVertices, st.NumEdges, st.MeanInDegree, st.StdInDegree)

	x := tensor.NewDense(g.NumVertices(), feat)
	x.FillRandom(rand.New(rand.NewSource(42)), 1)

	if noCompile {
		if verify {
			return fmt.Errorf("-verify needs a compiled program; drop -no-compile")
		}
		// Interpreter path: every run re-resolves schedules and re-lowers
		// kernels through the stage executor.
		if _, err := models.ForwardCtx(ctx, m, g, x, classes, eng); err != nil { // warm-up
			return err
		}
		start := time.Now()
		for i := 0; i < runs; i++ {
			if _, err := models.ForwardCtx(ctx, m, g, x, classes, eng); err != nil {
				return err
			}
		}
		per := time.Since(start) / time.Duration(runs)
		fmt.Printf("model: %s feat=%d classes=%d path=interpreter backend=%s\n",
			m.Name(), feat, classes, core.DefaultBackend().Name())
		fmt.Printf("steady-state: %v/run over %d runs (interpreter rebuilds kernels every run)\n",
			per.Round(time.Microsecond), runs)
		return nil
	}

	compileStart := time.Now()
	cp, err := models.CompileModel(m, g, feat, classes, eng)
	if err != nil {
		return err
	}
	compileTime := time.Since(compileStart)
	if verify {
		rep := cp.Verify()
		printReport(rep)
		if !rep.OK() {
			return fmt.Errorf("verification failed: %d violations", len(rep.Diags))
		}
	}
	if _, err := cp.RunCtx(ctx, x); err != nil { // warm-up
		return err
	}
	start := time.Now()
	for i := 0; i < runs; i++ {
		if _, err := cp.RunCtx(ctx, x); err != nil {
			return err
		}
	}
	per := time.Since(start) / time.Duration(runs)
	s := cp.Stats()
	fmt.Printf("model: %s feat=%d classes=%d path=compiled backend=%s\n",
		m.Name(), feat, classes, core.DefaultBackend().Name())
	fmt.Printf("program: %d graph kernels (%d fused pairs, %d nodes eliminated), %d reusable buffer slots, arena=%.1f MiB\n",
		s.GraphKernels, s.FusedPairs, s.RemovedNodes, s.BufferSlots, float64(s.ArenaFloats)*4/(1<<20))
	if s.Shards > 1 {
		fmt.Printf("sharding: %d shards, edge-cut=%.3f, scratch=%.1f MiB\n",
			s.Shards, s.ShardEdgeCut, float64(s.ShardScratchFloats)*4/(1<<20))
	}
	fmt.Printf("fusion: %d regions grown, %d kernel launches, %.1f KiB traffic saved, %d blocked GEMMs\n",
		s.FusedRegions, s.Steps, float64(s.RegionSavedBytes)/(1<<10), s.GemmBlocked)
	mode := "sequential"
	if program.ParallelSteps() && s.MaxWaveWidth > 1 {
		mode = "parallel"
	}
	fmt.Printf("waves: %d waves over %d steps, max width %d, execution %s\n",
		s.Waves, s.Steps, s.MaxWaveWidth, mode)
	fmt.Printf("compile: %v (record + fuse + schedule + buffer-plan, paid once)\n", compileTime.Round(time.Microsecond))
	fmt.Printf("steady-state: %v/run over %d runs (zero allocations per run)\n", per.Round(time.Microsecond), runs)
	return nil
}

// loadGraph resolves the -dataset / -graph flags to a graph.
func loadGraph(dataset, graphFile string) (*graph.Graph, error) {
	switch {
	case dataset != "":
		g, _, err := datasets.Load(dataset)
		return g, err
	case graphFile != "":
		f, err := os.Open(graphFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadEdgeList(f)
	default:
		return nil, fmt.Errorf("need -dataset or -graph")
	}
}

func run(ctx context.Context, dataset, graphFile, opName string, feat int, gpuName, schedText string, tune bool, top int, source, verify bool) error {
	g, err := loadGraph(dataset, graphFile)
	if err != nil {
		return err
	}

	entry, ok := ops.Lookup(opName)
	if !ok {
		return fmt.Errorf("unknown operator %q (see ops registry; e.g. u_mul_e.sum)", opName)
	}
	dev := gpu.V100()
	if gpuName == "A100" {
		dev = gpu.A100()
	}
	st := g.ComputeStats()
	fmt.Printf("graph: |V|=%d |E|=%d mean-degree=%.1f std=%.1f\n",
		st.NumVertices, st.NumEdges, st.MeanInDegree, st.StdInDegree)
	fmt.Printf("operator: %s (%s)\n", entry.DGLName, entry.Info)

	task := schedule.Task{Graph: g, Op: entry.Info, Feat: feat, Device: dev}.Widths(false)

	report := func(label string, c schedule.Candidate) {
		m := c.Metrics
		fmt.Printf("%s %-12s cycles=%.0f occupancy=%.2f sm_eff=%.2f l1=%.2f l2=%.2f blocks=%d atomics=%.0f bound=%s\n",
			label, c.Schedule, m.Cycles, m.Occupancy, m.SMEfficiency,
			m.L1HitRate, m.L2HitRate, m.NumBlocks, m.AtomicTransactions, m.BoundBy)
	}

	if schedText != "" {
		sched, err := core.ParseSchedule(schedText)
		if err != nil {
			return err
		}
		c, err := schedule.Evaluate(task, sched)
		if err != nil {
			return err
		}
		report("run:", c)
		if verify {
			if err := verifyPlanReport(entry.Info, sched); err != nil {
				return err
			}
		}
		if err := timeFunctional(ctx, g, entry.Info, feat, sched); err != nil {
			return err
		}
		if source {
			printSource(entry.Info, sched)
		}
		if !tune {
			return nil
		}
	}

	cands := schedule.GridSearch(task, schedule.PrunedSpace(task))
	if len(cands) == 0 {
		return fmt.Errorf("no valid schedules for this operator")
	}
	fmt.Printf("\ntuned over %d schedules on %s:\n", len(cands), dev.Name)
	n := top
	if n > len(cands) {
		n = len(cands)
	}
	for i := 0; i < n; i++ {
		report(fmt.Sprintf("#%-2d", i+1), cands[i])
	}
	worst := cands[len(cands)-1]
	fmt.Printf("worst %-11s cycles=%.0f (%.1fx the best)\n",
		worst.Schedule, worst.Metrics.Cycles, worst.Metrics.Cycles/cands[0].Metrics.Cycles)
	if verify {
		if err := verifyPlanReport(entry.Info, cands[0].Schedule); err != nil {
			return err
		}
	}
	if err := timeFunctional(ctx, g, entry.Info, feat, cands[0].Schedule); err != nil {
		return err
	}
	if source {
		printSource(entry.Info, cands[0].Schedule)
	}
	return nil
}

// timeFunctional executes the operator for real on the selected host
// backend and reports measured wall-clock — explicitly distinct from the
// simulated cycles above, which are the GPU performance model.
func timeFunctional(ctx context.Context, g *graph.Graph, op ops.OpInfo, feat int, sched core.Schedule) error {
	backend := core.DefaultBackend()
	plan, err := core.Compile(op, sched)
	if err != nil {
		return err
	}
	o := randomOperands(g, op, feat)
	kern, err := backend.Lower(plan, g, o)
	if err != nil {
		return err
	}
	if err := kern.RunCtx(ctx); err != nil { // warm-up: page in operands, prime pools
		return err
	}
	const reps = 5
	start := time.Now()
	for i := 0; i < reps; i++ {
		if err := kern.RunCtx(ctx); err != nil {
			return err
		}
	}
	per := time.Since(start) / reps
	c := kern.Counters()
	fmt.Printf("functional: backend=%s workers=%d wall-clock=%v/run (host measurement; cycles above are simulated)\n",
		backend.Name(), c.Workers, per.Round(time.Microsecond))
	return nil
}

// printReport renders a program verification report: one line per rule
// checked, then the violations (if any) with their fix hints.
func printReport(rep analysis.Report) {
	fmt.Printf("verification: %s: %d rules checked, %d violations\n",
		rep.Subject, len(rep.RulesChecked), len(rep.Diags))
	for _, r := range rep.RulesChecked {
		fmt.Printf("  rule %s\n", r)
	}
	for _, d := range rep.Diags {
		fmt.Printf("  VIOLATION %s\n", d)
	}
}

// verifyPlanReport re-runs the plan-level verification for a single
// (operator, schedule) pair and prints the outcome. core.Compile already ran
// the same rules mandatorily; this surfaces them as an explicit report.
func verifyPlanReport(op ops.OpInfo, sched core.Schedule) error {
	plan, err := core.Compile(op, sched)
	if err != nil {
		var ve *analysis.VerifyError
		if errors.As(err, &ve) {
			for _, d := range ve.Diags {
				fmt.Printf("  VIOLATION %s\n", d)
			}
		}
		return err
	}
	err = analysis.VerifyPlan(analysis.PlanFacts{
		Op:             plan.Op,
		Schedule:       sched.Strategy.Code(),
		VertexParallel: sched.Strategy.VertexParallel(),
		NeedsAtomic:    plan.NeedsAtomic,
	})
	if err != nil {
		return err
	}
	fmt.Printf("verification: plan %s %s: rules %v ok (needs_atomic=%v)\n",
		op.Name, sched, analysis.PlanRules, plan.NeedsAtomic)
	return nil
}

// randomOperands fills deterministic random operands for op at width feat.
func randomOperands(g *graph.Graph, op ops.OpInfo, feat int) core.Operands {
	rng := rand.New(rand.NewSource(42))
	alloc := func(kind tensor.Kind) tensor.Typed {
		if kind == tensor.Null {
			return tensor.NullTensor
		}
		rows := g.NumVertices()
		if kind == tensor.EdgeK {
			rows = g.NumEdges()
		}
		d := tensor.NewDense(rows, feat)
		d.FillRandom(rng, 1)
		return tensor.Typed{Kind: kind, T: d}
	}
	o := core.Operands{A: alloc(op.AKind), B: alloc(op.BKind)}
	outRows := g.NumVertices()
	if op.CKind == tensor.EdgeK {
		outRows = g.NumEdges()
	}
	o.C = tensor.Typed{Kind: op.CKind, T: tensor.NewDense(outRows, feat)}
	return o
}

func printSource(op ops.OpInfo, sched core.Schedule) {
	plan, err := core.Compile(op, sched)
	if err != nil {
		return
	}
	fmt.Printf("\ngenerated kernel:\n%s\n", plan.GenerateSource())
}
