// Command ugrapher-lint runs the repo's static-analysis layer from the
// command line: the source linter (default) and the IR/plan verifier (-ir).
//
// Usage:
//
//	ugrapher-lint                      # lint ./internal/... and ./cmd/...
//	ugrapher-lint ./internal/core      # lint specific package dirs
//	ugrapher-lint -ir                  # verify compiled plans for every
//	                                   # model x strategy x backend
//
// The default source target set includes cmd/ugrapher-lint itself, so every
// run lints the linter as a self-test.
//
// Exit codes: 0 = clean, 1 = findings/violations, 2 = usage or internal
// error. Scripts (and make check) rely on this contract.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/models"
)

func main() {
	irMode := flag.Bool("ir", false, "verify compiled model programs (IR/plan rules) instead of linting source")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ugrapher-lint [flags] [package-dirs...]\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	var (
		clean bool
		err   error
	)
	if *irMode {
		if flag.NArg() != 0 {
			flag.Usage()
			os.Exit(2)
		}
		clean, err = verifyIR(os.Stdout)
	} else {
		clean, err = lintSource(os.Stdout, flag.Args())
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ugrapher-lint: %v\n", err)
		os.Exit(2)
	}
	if !clean {
		os.Exit(1)
	}
}

// lintSource runs the source linter over the given package patterns
// (default: the whole module's internal and cmd trees).
func lintSource(w *os.File, patterns []string) (clean bool, err error) {
	if len(patterns) == 0 {
		patterns = []string{"./internal/...", "./cmd/..."}
	}
	dirs, err := analysis.ExpandDirs(patterns)
	if err != nil {
		return false, err
	}
	findings, err := analysis.LintDirs(dirs)
	if err != nil {
		return false, err
	}
	for _, f := range findings {
		fmt.Fprintln(w, f)
	}
	fmt.Fprintf(w, "ugrapher-lint: %d packages, %d findings\n", len(dirs), len(findings))
	return len(findings) == 0, nil
}

// verifyIR compiles every model under every basic strategy on each host
// backend — reference, parallel, and the sharded parallel backend — in both
// fusion modes (cost-modeled regions and the classic pair-only rewrite)
// against a small synthetic graph, and reports the static verifier's result
// for each plan.
func verifyIR(w *os.File) (clean bool, err error) {
	rng := rand.New(rand.NewSource(7))
	const n, m = 300, 2500
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	g, err := b.Build()
	if err != nil {
		return false, err
	}

	backends := []core.ExecBackend{
		core.ReferenceBackend(),
		core.NewParallelBackend(0),
		core.NewShardedParallelBackend(0, 4),
	}
	fusionModes := []struct {
		name     string
		pairOnly bool
	}{
		{"regions", false},
		{"pair", true},
	}
	violations := 0
	checked := 0
	for _, mdl := range models.All() {
		for _, strat := range core.Strategies {
			for _, backend := range backends {
				for _, fm := range fusionModes {
					eng := &models.FixedEngine{
						EngineName:     "verify",
						Dev:            gpu.V100(),
						AggrSchedule:   core.Schedule{Strategy: strat, Group: 1, Tile: 1},
						MsgCSchedule:   core.Schedule{Strategy: strat, Group: 1, Tile: 1},
						Fuses:          true,
						PairFusionOnly: fm.pairOnly,
						Compute:        backend,
					}
					cp, cerr := models.CompileModel(mdl, g, 12, 5, eng)
					if cerr != nil {
						// Compilation itself rejects violating plans; count it as
						// a violation of this combination.
						fmt.Fprintf(w, "FAIL %-6s %-3s %-9s %-7s compile: %v\n", mdl.Name(), strat.Code(), backend.Name(), fm.name, cerr)
						violations++
						continue
					}
					rep := cp.Verify()
					checked++
					if rep.OK() {
						fmt.Fprintf(w, "ok   %-6s %-3s %-9s %-7s %d rules\n", mdl.Name(), strat.Code(), backend.Name(), fm.name, len(rep.RulesChecked))
						continue
					}
					violations += len(rep.Diags)
					for _, d := range rep.Diags {
						fmt.Fprintf(w, "FAIL %-6s %-3s %-9s %-7s %s\n", mdl.Name(), strat.Code(), backend.Name(), fm.name, d)
					}
				}
			}
		}
	}
	fmt.Fprintf(w, "ugrapher-lint: %d plans verified, %d violations\n", checked, violations)
	return violations == 0, nil
}
