GO ?= go

.PHONY: build test check bench bench-models race vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the concurrency-sensitive packages (the parallel host backend
# and its consumers, including the compiled-program runtime) under the race
# detector.
race:
	$(GO) test -race ./internal/core/... ./internal/models/... ./internal/program/...

# check is the pre-commit gate: static analysis plus the race-enabled
# tests of the backend-facing packages.
check: vet race

# bench regenerates the reference-vs-parallel backend comparison on the
# skewed (AR) and regular (PR) datasets.
bench:
	$(GO) test -run '^$$' -bench BenchmarkBackendCompare -benchmem .

# bench-models regenerates the compiled-vs-interpreted whole-model
# comparison (GCN and GAT on AR and PR); compiled rows must report
# 0 allocs/op.
bench-models:
	$(GO) test -run '^$$' -bench BenchmarkForwardCompiled -benchmem .
