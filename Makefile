GO ?= go

.PHONY: build test check bench bench-models bench-obs bench-shard bench-fusion bench-waves race vet faults obs lint verify serve e2e

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs the repo-invariant source linter (hook discipline, panic
# justification, no-alloc-in-Run, suppression hygiene) over the internal
# and cmd trees. Exit 1 on any unsuppressed finding.
lint:
	$(GO) run ./cmd/ugrapher-lint

# verify compiles every model under every strategy on both host backends
# and runs the IR/plan verifier over each result. Exit 1 on any violation.
verify:
	$(GO) run ./cmd/ugrapher-lint -ir

# race runs the concurrency-sensitive packages (the parallel host backend
# and its consumers, including the compiled-program runtime, the hardening
# layer's fault-injection points, and the graph loaders) under the race
# detector.
race:
	$(GO) test -race ./internal/core/... ./internal/models/... ./internal/program/... ./internal/faultinject/... ./internal/graph/... ./internal/telemetry/... ./internal/shard/... ./internal/reorder/... ./internal/tensor/... ./internal/analysis/... ./internal/serve/...

# serve runs the HTTP inference daemon (GCN on CO at :8080 by default;
# see cmd/ugrapher-serve for flags and README "Serving quick-start").
serve:
	$(GO) run ./cmd/ugrapher-serve

# e2e runs the black-box serving suite: it builds the real ugrapher-serve
# binary with -race, runs it as a child process, and proves fast 429
# backpressure, breaker-gated degradation with reference-correct outputs,
# and SIGTERM drain ordering from the outside.
e2e:
	$(GO) test -run 'TestE2E' -count=1 -v ./internal/serve/

# faults runs the fault-injection suite under the race detector: injected
# kernel panics, NaN pokes, slow chunks and lowering failures, each proven
# to be caught by the corresponding guard (KernelError recovery, numeric
# scan, deadlines, fallback ladder).
faults:
	$(GO) test -race ./internal/faultinject/...
	$(GO) test -race -run 'Fault|Inject|Resilient|Cancel|Deadline|Numeric|KernelPanic|Revalidate' ./internal/core/... ./internal/program/... ./internal/models/...

# check is the pre-commit gate: static analysis (go vet, the repo linter,
# the IR/plan verifier) plus the race-enabled tests of the backend-facing
# packages, including the fault suite.
check: vet lint verify race faults

# obs runs the observability suite under the race detector: the telemetry
# package (exporter contracts, bounded buffers, concurrent recording) plus
# the cross-layer tests (kernel-span count vs compiled-program stats,
# causal trace trees through RunCtx, traced zero-alloc, injected-fault
# spans, resilient-fallback surfacing) and the serving-side trace tests.
obs:
	$(GO) test -race ./internal/telemetry/...
	$(GO) test -race -run 'Telemetry|Trace' ./internal/models/...
	$(GO) test -race -run '^Test(Trace|Batch|Error|Untraced)' ./internal/serve/

# bench-obs measures the telemetry hooks' cost around a copy_u.sum kernel
# on AR and PR (enabled vs disabled) and the request-trace cost around a
# compiled GCN forward (disabled / enabled / traced); the budget is <5%.
bench-obs:
	$(GO) test -run '^$$' -bench 'BenchmarkTelemetryOverhead|BenchmarkTraceOverhead' .

# bench regenerates the reference-vs-parallel backend comparison on the
# skewed (AR) and regular (PR) datasets.
bench:
	$(GO) test -run '^$$' -bench BenchmarkBackendCompare -benchmem .

# bench-models regenerates the compiled-vs-interpreted whole-model
# comparison (GCN and GAT on AR and PR); compiled rows must report
# 0 allocs/op.
bench-models:
	$(GO) test -run '^$$' -bench BenchmarkForwardCompiled -benchmem .

# bench-shard sweeps the shard count (1 = flat baseline, 4, 16) for the
# compiled model path on AR and PR; EXPERIMENTS.md records the table and
# BENCH_shard.json the machine-readable summary.
bench-shard:
	$(GO) test -run '^$$' -bench BenchmarkForwardSharded -benchmem .

# bench-fusion compares cost-modeled fusion regions against classic pair
# fusion on all six models over AR and PR (kernel launches before/after,
# steady-state wall clock), writing BENCH_fusion.json as the committed
# machine-readable summary.
bench-fusion:
	$(GO) run ./cmd/ugrapher-bench -quick -datasets AR,PR -json BENCH_fusion.json ext-fusion

# bench-waves compares wave-parallel step execution (provably independent
# compiled steps dispatched concurrently under the verified wave schedule)
# against the sequential step loop on all six models over AR and PR, writing
# BENCH_waves.json as the committed machine-readable summary. Width-1
# schedules are the control: they take the sequential path in both arms.
bench-waves:
	$(GO) run ./cmd/ugrapher-bench -quick -datasets AR,PR -json BENCH_waves.json ext-waves
