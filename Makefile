GO ?= go

.PHONY: build test check bench bench-models race vet faults

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the concurrency-sensitive packages (the parallel host backend
# and its consumers, including the compiled-program runtime, the hardening
# layer's fault-injection points, and the graph loaders) under the race
# detector.
race:
	$(GO) test -race ./internal/core/... ./internal/models/... ./internal/program/... ./internal/faultinject/... ./internal/graph/...

# faults runs the fault-injection suite under the race detector: injected
# kernel panics, NaN pokes, slow chunks and lowering failures, each proven
# to be caught by the corresponding guard (KernelError recovery, numeric
# scan, deadlines, fallback ladder).
faults:
	$(GO) test -race ./internal/faultinject/...
	$(GO) test -race -run 'Fault|Inject|Resilient|Cancel|Deadline|Numeric|KernelPanic|Revalidate' ./internal/core/... ./internal/program/... ./internal/models/...

# check is the pre-commit gate: static analysis plus the race-enabled
# tests of the backend-facing packages, including the fault suite.
check: vet race faults

# bench regenerates the reference-vs-parallel backend comparison on the
# skewed (AR) and regular (PR) datasets.
bench:
	$(GO) test -run '^$$' -bench BenchmarkBackendCompare -benchmem .

# bench-models regenerates the compiled-vs-interpreted whole-model
# comparison (GCN and GAT on AR and PR); compiled rows must report
# 0 allocs/op.
bench-models:
	$(GO) test -run '^$$' -bench BenchmarkForwardCompiled -benchmem .
