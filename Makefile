GO ?= go

.PHONY: build test check bench race vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the concurrency-sensitive packages (the parallel host backend
# and its consumers) under the race detector.
race:
	$(GO) test -race ./internal/core/... ./internal/models/...

# check is the pre-commit gate: static analysis plus the race-enabled
# tests of the backend-facing packages.
check: vet race

# bench regenerates the reference-vs-parallel backend comparison on the
# skewed (AR) and regular (PR) datasets.
bench:
	$(GO) test -run '^$$' -bench BenchmarkBackendCompare -benchmem .
