package datasets

import (
	"math"
	"math/rand"
	"testing"
)

func TestByAbbr(t *testing.T) {
	s, err := ByAbbr("SB")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "soc-BlogCatalog" {
		t.Errorf("SB resolved to %s", s.Name)
	}
	if _, err := ByAbbr("cora"); err != nil {
		t.Error("full name lookup should work")
	}
	if _, err := ByAbbr("XX"); err == nil {
		t.Error("unknown code should fail")
	}
}

func TestAbbrsOrder(t *testing.T) {
	a := Abbrs()
	if len(a) != 15 {
		t.Fatalf("want 15 datasets, got %d", len(a))
	}
	if a[0] != "CO" || a[14] != "OV" {
		t.Errorf("order wrong: %v", a)
	}
}

// TestSmallDatasetsCalibration generates the small datasets fully and checks
// the synthetic graphs hit the Table 3 row targets: exact V and E, and a
// degree std within tolerance of the paper's "std of nnz".
func TestSmallDatasetsCalibration(t *testing.T) {
	for _, abbr := range []string{"CO", "CI", "PU", "PR", "AR", "PP", "SB"} {
		g, spec, err := Load(abbr)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumVertices() != spec.V {
			t.Errorf("%s: V = %d, want %d", abbr, g.NumVertices(), spec.V)
		}
		if g.NumEdges() != spec.E {
			t.Errorf("%s: E = %d, want %d", abbr, g.NumEdges(), spec.E)
		}
		st := g.ComputeStats()
		// Degree std should be within 40% of the target (sampling noise and
		// the tail cap make it inexact; the schedule-relevant property is the
		// order of magnitude of skew).
		lo, hi := spec.Std*0.6, spec.Std*1.6
		if st.StdInDegree < lo || st.StdInDegree > hi {
			t.Errorf("%s: std = %.2f, want within [%.2f, %.2f]", abbr, st.StdInDegree, lo, hi)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", abbr, err)
		}
	}
}

// TestSkewOrdering checks that the relative skew ordering the experiments
// rely on holds: SB and AR are far more imbalanced than PR and DD-style
// graphs.
func TestSkewOrdering(t *testing.T) {
	gAR, _, _ := Load("AR")
	gPR, _, _ := Load("PR")
	sAR := gAR.ComputeStats()
	sPR := gPR.ComputeStats()
	if sAR.StdInDegree < 10*sPR.StdInDegree {
		t.Errorf("AR std %.2f should dwarf PR std %.2f", sAR.StdInDegree, sPR.StdInDegree)
	}
	if sAR.GiniInDegree <= sPR.GiniInDegree {
		t.Errorf("AR gini %.2f should exceed PR gini %.2f", sAR.GiniInDegree, sPR.GiniInDegree)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s, _ := ByAbbr("CO")
	g1 := s.Generate()
	g2 := s.Generate()
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatal("non-deterministic edge count")
	}
	for e := int32(0); e < int32(g1.NumEdges()); e++ {
		s1, d1 := g1.EdgeEndpoints(e)
		s2, d2 := g2.EdgeEndpoints(e)
		if s1 != s2 || d1 != d2 {
			t.Fatalf("edge %d differs between generations", e)
		}
	}
}

func TestLoadMemoises(t *testing.T) {
	g1, _, _ := Load("CO")
	g2, _, _ := Load("CO")
	if g1 != g2 {
		t.Error("Load should return the cached graph")
	}
}

func TestMustLoadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustLoad("ZZ")
}

func TestSampleDegreesSumExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, c := range []struct {
		n, m int
		std  float64
	}{
		{1000, 5000, 1.0},
		{1000, 5000, 50.0},
		{10, 0, 1.0},
		{5, 100, 2.0},
	} {
		degs := sampleDegrees(rng, c.n, c.m, c.std)
		var sum int
		for _, d := range degs {
			if d < 0 {
				t.Fatalf("negative degree %d", d)
			}
			sum += int(d)
		}
		if sum != c.m {
			t.Errorf("n=%d m=%d: degree sum %d != %d", c.n, c.m, sum, c.m)
		}
	}
}

func TestSampleDegreesSkewRegimes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n, m := 20000, 200000
	mean := float64(m) / float64(n)

	std := func(degs []int32) float64 {
		var s, ss float64
		for _, d := range degs {
			s += float64(d)
		}
		mu := s / float64(len(degs))
		for _, d := range degs {
			ss += (float64(d) - mu) * (float64(d) - mu)
		}
		return math.Sqrt(ss / float64(len(degs)))
	}

	low := std(sampleDegrees(rng, n, m, mean*0.2))
	high := std(sampleDegrees(rng, n, m, mean*8))
	if low >= high/5 {
		t.Errorf("regimes not separated: low-skew std %.2f vs high-skew std %.2f", low, high)
	}
}

func TestRandomSpecRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		s := RandomSpec(rng, i)
		if s.V < 2000 || s.V > 300001 {
			t.Errorf("spec %d: V=%d out of range", i, s.V)
		}
		if s.E < s.V {
			t.Errorf("spec %d: E=%d < V=%d", i, s.E, s.V)
		}
		if s.Feat <= 0 || s.Class <= 0 {
			t.Errorf("spec %d: bad feat/class", i)
		}
	}
	// Small random specs must actually generate.
	s := RandomSpec(rand.New(rand.NewSource(4)), 999)
	s.V, s.E = 500, 2500
	g := s.Generate()
	if g.NumVertices() != 500 || g.NumEdges() != 2500 {
		t.Errorf("generated %d/%d", g.NumVertices(), g.NumEdges())
	}
}

func TestSortedByVertices(t *testing.T) {
	specs := SortedByVertices()
	for i := 1; i < len(specs); i++ {
		if specs[i-1].V > specs[i].V {
			t.Fatal("not sorted")
		}
	}
	if specs[0].Abbr != "CO" {
		t.Errorf("smallest should be CO, got %s", specs[0].Abbr)
	}
}
