// Package datasets provides deterministic synthetic stand-ins for the 15
// real-world graphs of the paper's Table 3, plus a random-graph sampler used
// to train the schedule predictor (paper §5.4).
//
// The paper characterises each dataset by exactly the properties that drive
// schedule choice: vertex count, edge count, degree skew ("std of nnz"),
// feature width, and class count. The generators here are calibrated to hit
// those five numbers per dataset; community structure is approximated with a
// locality parameter that biases edge endpoints to nearby vertex ids. What a
// generator cannot reproduce — the exact wiring of, say, the real artist
// graph — does not participate in any of the paper's mechanisms, which act
// through size, skew and feature width.
package datasets

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/graph"
)

// Spec describes one dataset row of Table 3 and how to synthesise it.
type Spec struct {
	Name  string  // full name, e.g. "soc-BlogCatalog"
	Abbr  string  // the paper's two-letter code, e.g. "SB"
	V     int     // #Vertex
	E     int     // #Edge
	Std   float64 // target "std of nnz" (in-degree standard deviation)
	Feat  int     // #Feature (input feature width)
	Class int     // #Class (output width)
	// Locality in [0,1]: probability that an edge's source is drawn from a
	// window near its destination (community structure proxy).
	Locality float64
	// Window is the half-width of the locality window in vertex ids.
	Window int
	seed   int64
}

// Table3 lists the fifteen datasets in the paper's order.
var Table3 = []Spec{
	{Name: "cora", Abbr: "CO", V: 2708, E: 10556, Std: 5.23, Feat: 1433, Class: 7, Locality: 0.5, Window: 64},
	{Name: "citeseer", Abbr: "CI", V: 3327, E: 9228, Std: 3.38, Feat: 3703, Class: 6, Locality: 0.5, Window: 64},
	{Name: "pubmed", Abbr: "PU", V: 19717, E: 99203, Std: 7.82, Feat: 500, Class: 3, Locality: 0.5, Window: 128},
	{Name: "PROTEINS_full", Abbr: "PR", V: 43466, E: 162088, Std: 1.15, Feat: 29, Class: 2, Locality: 0.95, Window: 16},
	{Name: "artist", Abbr: "AR", V: 50515, E: 1638396, Std: 63.47, Feat: 100, Class: 12, Locality: 0.3, Window: 256},
	{Name: "ppi", Abbr: "PP", V: 56944, E: 818716, Std: 23.29, Feat: 50, Class: 121, Locality: 0.4, Window: 256},
	{Name: "soc-BlogCatalog", Abbr: "SB", V: 88784, E: 2093195, Std: 206.81, Feat: 128, Class: 39, Locality: 0.2, Window: 512},
	{Name: "com-amazon", Abbr: "CA", V: 334863, E: 1851744, Std: 5.76, Feat: 96, Class: 22, Locality: 0.8, Window: 64},
	{Name: "DD", Abbr: "DD", V: 334925, E: 1686092, Std: 1.69, Feat: 89, Class: 2, Locality: 0.95, Window: 16},
	{Name: "amazon0601", Abbr: "AM06", V: 403394, E: 3387388, Std: 15.28, Feat: 96, Class: 22, Locality: 0.7, Window: 128},
	{Name: "amazon0505", Abbr: "AM05", V: 410236, E: 4878874, Std: 15.05, Feat: 96, Class: 22, Locality: 0.7, Window: 128},
	{Name: "TWITTER-Partial", Abbr: "TW", V: 580768, E: 1435116, Std: 1.52, Feat: 1323, Class: 2, Locality: 0.9, Window: 16},
	{Name: "Yeast", Abbr: "YE", V: 1710902, E: 3636546, Std: 0.75, Feat: 74, Class: 2, Locality: 0.95, Window: 8},
	{Name: "SW-620H", Abbr: "SW", V: 1888584, E: 3944206, Std: 1.16, Feat: 66, Class: 2, Locality: 0.95, Window: 8},
	{Name: "OVCAR-8H", Abbr: "OV", V: 1889542, E: 3946402, Std: 1.16, Feat: 66, Class: 2, Locality: 0.95, Window: 8},
}

// Abbrs returns the paper's dataset codes in Table 3 order.
func Abbrs() []string {
	out := make([]string, len(Table3))
	for i, s := range Table3 {
		out[i] = s.Abbr
	}
	return out
}

// ByAbbr finds a spec by its two-letter (or four-letter) code.
func ByAbbr(abbr string) (Spec, error) {
	for _, s := range Table3 {
		if s.Abbr == abbr || s.Name == abbr {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("datasets: unknown dataset %q", abbr)
}

// Generate synthesises the graph for a spec. The result is deterministic:
// the same spec always yields the same graph.
func (s Spec) Generate() *graph.Graph {
	seed := s.seed
	if seed == 0 {
		// Stable per-name seed so each dataset is distinct but reproducible.
		for _, c := range s.Name {
			seed = seed*131 + int64(c)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	degs := sampleDegrees(rng, s.V, s.E, s.Std)
	b := graph.NewBuilder(s.V)
	n32 := int32(s.V)
	for dst := 0; dst < s.V; dst++ {
		for k := int32(0); k < degs[dst]; k++ {
			var src int32
			if rng.Float64() < s.Locality && s.Window > 0 {
				off := int32(rng.Intn(2*s.Window+1) - s.Window)
				src = (int32(dst) + off + n32) % n32
			} else {
				src = int32(rng.Intn(s.V))
			}
			b.AddEdge(src, int32(dst))
		}
	}
	g, err := b.Build()
	if err != nil {
		// invariant: generator bugs only; every edge endpoint above is drawn
		// from [0, s.V), so Build cannot reject internal inputs.
		panic(fmt.Sprintf("datasets: generate %s: %v", s.Name, err))
	}
	return g
}

// sampleDegrees draws a degree sequence with the given total and an
// (approximate) target standard deviation, then repairs the sum to be exact.
//
// Two regimes: near-regular targets (std <= 1.2x mean) use a truncated
// Gaussian around the mean; skewed targets use a lognormal whose sigma is
// solved from the coefficient of variation (for lognormal, cv^2 = e^sigma^2 - 1).
func sampleDegrees(rng *rand.Rand, n, m int, targetStd float64) []int32 {
	degs := make([]int32, n)
	if n == 0 || m == 0 {
		return degs
	}
	mean := float64(m) / float64(n)
	cv := targetStd / mean
	if cv <= 1.2 {
		for i := range degs {
			d := mean + targetStd*rng.NormFloat64()
			if d < 0 {
				d = 0
			}
			degs[i] = int32(d + 0.5)
		}
	} else {
		sigma2 := math.Log(1 + cv*cv)
		sigma := math.Sqrt(sigma2)
		mu := math.Log(mean) - sigma2/2
		for i := range degs {
			d := math.Exp(mu + sigma*rng.NormFloat64())
			// Cap extreme tail draws: a single vertex should not swallow
			// more than ~1/4 of all edges (matches real social graphs and
			// keeps the sum repair stable).
			if d > float64(m)/4 {
				d = float64(m) / 4
			}
			degs[i] = int32(d + 0.5)
		}
	}
	repairSum(rng, degs, m)
	return degs
}

// repairSum adjusts entries of degs until they total exactly want, spreading
// the correction over random vertices.
func repairSum(rng *rand.Rand, degs []int32, want int) {
	var have int
	for _, d := range degs {
		have += int(d)
	}
	n := len(degs)
	for have != want {
		i := rng.Intn(n)
		if have < want {
			degs[i]++
			have++
		} else if degs[i] > 0 {
			degs[i]--
			have--
		}
	}
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*graph.Graph{}
)

// Load returns the (memoised) graph for the dataset code. Generating the
// largest dataset takes under a second; repeated loads are free.
func Load(abbr string) (*graph.Graph, Spec, error) {
	spec, err := ByAbbr(abbr)
	if err != nil {
		return nil, Spec{}, err
	}
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if g, ok := cache[spec.Name]; ok {
		return g, spec, nil
	}
	g := spec.Generate()
	cache[spec.Name] = g
	return g, spec, nil
}

// MustLoad is Load for known-good codes; it panics on error.
func MustLoad(abbr string) (*graph.Graph, Spec) {
	g, s, err := Load(abbr)
	if err != nil {
		// invariant: only for literal dataset codes in tests and examples;
		// user-supplied codes go through Load and handle the error.
		panic(err)
	}
	return g, s
}

// RandomSpec draws a random dataset spec for predictor training, spanning
// the size/skew/feature ranges of Table 3 (paper: 128 graphs from the
// network repository).
func RandomSpec(rng *rand.Rand, idx int) Spec {
	v := int(math.Exp(rng.Float64()*(math.Log(300000)-math.Log(2000)) + math.Log(2000)))
	meanDeg := 2 + rng.Float64()*28
	e := int(float64(v) * meanDeg)
	var std float64
	if rng.Float64() < 0.5 {
		std = meanDeg * (0.1 + rng.Float64()) // near-regular to mildly skewed
	} else {
		std = meanDeg * (1.5 + rng.Float64()*7) // heavy-tailed
	}
	feats := []int{16, 32, 64, 128, 256, 512}
	return Spec{
		Name:     fmt.Sprintf("rand-%d", idx),
		Abbr:     fmt.Sprintf("R%d", idx),
		V:        v,
		E:        e,
		Std:      std,
		Feat:     feats[rng.Intn(len(feats))],
		Class:    2 + rng.Intn(40),
		Locality: rng.Float64(),
		Window:   1 << (3 + rng.Intn(6)),
		seed:     int64(idx)*7919 + 13,
	}
}

// SortedByVertices returns Table 3 specs ordered by vertex count, used by
// experiments that contrast small and large graphs.
func SortedByVertices() []Spec {
	out := make([]Spec, len(Table3))
	copy(out, Table3)
	sort.Slice(out, func(i, j int) bool { return out[i].V < out[j].V })
	return out
}
