// Package sample provides the mini-batch preprocessing substrate of the
// paper's §6 "Batchsize" discussion: mini-batch GNN inference first samples
// a neighbourhood subgraph around the batch's seed vertices, then executes
// graph operators on that subgraph exactly as full-graph inference would —
// which is why the paper's evaluation "falls back to full-graph inference".
// This package implements the sampling step so the same uGrapher pipeline
// serves both regimes.
package sample

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// Subgraph is an induced subgraph with the mapping back to parent ids.
type Subgraph struct {
	Graph *graph.Graph
	// Vertices maps subgraph vertex id -> parent vertex id.
	Vertices []int32
	// EdgeIDs maps subgraph edge id -> parent edge id.
	EdgeIDs []int32
}

// ParentVertex translates a subgraph vertex id to the parent graph.
func (s *Subgraph) ParentVertex(v int32) int32 { return s.Vertices[v] }

// Induced builds the subgraph of g induced by the given parent vertex ids
// (duplicates are ignored). Edges are kept when both endpoints are in the
// set; subgraph edge order follows parent edge id order, so gathering
// parent-side edge features into subgraph order is a stable indexed copy.
func Induced(g *graph.Graph, vertices []int32) (*Subgraph, error) {
	n := g.NumVertices()
	inSet := make([]int32, n)
	for i := range inSet {
		inSet[i] = -1
	}
	var kept []int32
	for _, v := range vertices {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("sample: vertex %d out of range", v)
		}
		if inSet[v] < 0 {
			inSet[v] = 0 // mark; ids assigned after sort
			kept = append(kept, v)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i] < kept[j] })
	for i, v := range kept {
		inSet[v] = int32(i)
	}

	b := graph.NewBuilder(len(kept))
	var edgeIDs []int32
	for e := int32(0); e < int32(g.NumEdges()); e++ {
		src, dst := g.EdgeEndpoints(e)
		if inSet[src] >= 0 && inSet[dst] >= 0 {
			b.AddEdge(inSet[src], inSet[dst])
			edgeIDs = append(edgeIDs, e)
		}
	}
	sub, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Subgraph{Graph: sub, Vertices: kept, EdgeIDs: edgeIDs}, nil
}

// NeighborSample expands the seed vertices by hops rounds of incoming-
// neighbour sampling (GraphSage-style): each round keeps at most fanout
// randomly chosen in-neighbours per frontier vertex, then returns the
// subgraph induced by everything visited. Deterministic for a fixed rng.
func NeighborSample(g *graph.Graph, seeds []int32, hops, fanout int, rng *rand.Rand) (*Subgraph, error) {
	if hops < 0 || fanout < 1 {
		return nil, fmt.Errorf("sample: bad hops=%d fanout=%d", hops, fanout)
	}
	visited := map[int32]bool{}
	var frontier []int32
	for _, s := range seeds {
		if s < 0 || int(s) >= g.NumVertices() {
			return nil, fmt.Errorf("sample: seed %d out of range", s)
		}
		if !visited[s] {
			visited[s] = true
			frontier = append(frontier, s)
		}
	}
	scratch := make([]int32, 0, 256)
	for h := 0; h < hops; h++ {
		var next []int32
		for _, v := range frontier {
			srcs, _ := g.InEdges(v)
			scratch = scratch[:0]
			scratch = append(scratch, srcs...)
			// Partial Fisher-Yates up to fanout picks.
			picks := fanout
			if picks > len(scratch) {
				picks = len(scratch)
			}
			for i := 0; i < picks; i++ {
				j := i + rng.Intn(len(scratch)-i)
				scratch[i], scratch[j] = scratch[j], scratch[i]
				u := scratch[i]
				if !visited[u] {
					visited[u] = true
					next = append(next, u)
				}
			}
		}
		frontier = next
		if len(frontier) == 0 {
			break
		}
	}
	all := make([]int32, 0, len(visited))
	for v := range visited {
		all = append(all, v)
	}
	return Induced(g, all)
}

// GatherRows copies the parent rows named by ids into a dense row-major
// buffer of the same width — the feature-slicing step of mini-batch
// pipelines. data is the parent feature matrix (rows x cols flattened).
func GatherRows(data []float32, cols int, ids []int32) []float32 {
	out := make([]float32, len(ids)*cols)
	for i, id := range ids {
		copy(out[i*cols:(i+1)*cols], data[int(id)*cols:int(id+1)*cols])
	}
	return out
}
