package sample

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func lineGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(int32(v-1), int32(v)) // v-1 -> v
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestInducedBasics(t *testing.T) {
	g := lineGraph(t, 10)
	sub, err := Induced(g, []int32{2, 3, 4, 7})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Graph.NumVertices() != 4 {
		t.Fatalf("vertices = %d, want 4", sub.Graph.NumVertices())
	}
	// Kept edges: 2->3, 3->4 (7 is isolated in the set).
	if sub.Graph.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", sub.Graph.NumEdges())
	}
	if err := sub.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	// Vertex mapping is sorted parent ids.
	want := []int32{2, 3, 4, 7}
	for i, v := range want {
		if sub.ParentVertex(int32(i)) != v {
			t.Errorf("ParentVertex(%d) = %d, want %d", i, sub.Vertices[i], v)
		}
	}
	// Every kept edge maps to a parent edge with the same endpoints.
	for e := int32(0); e < int32(sub.Graph.NumEdges()); e++ {
		s, d := sub.Graph.EdgeEndpoints(e)
		ps, pd := g.EdgeEndpoints(sub.EdgeIDs[e])
		if sub.ParentVertex(s) != ps || sub.ParentVertex(d) != pd {
			t.Errorf("edge %d endpoint mapping broken", e)
		}
	}
}

func TestInducedDuplicatesAndErrors(t *testing.T) {
	g := lineGraph(t, 5)
	sub, err := Induced(g, []int32{1, 1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Graph.NumVertices() != 2 {
		t.Fatalf("duplicates should collapse: %d vertices", sub.Graph.NumVertices())
	}
	if _, err := Induced(g, []int32{5}); err == nil {
		t.Error("out-of-range vertex should fail")
	}
	if _, err := Induced(g, []int32{-1}); err == nil {
		t.Error("negative vertex should fail")
	}
}

func TestInducedEmpty(t *testing.T) {
	g := lineGraph(t, 5)
	sub, err := Induced(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Graph.NumVertices() != 0 || sub.Graph.NumEdges() != 0 {
		t.Error("empty selection should give empty subgraph")
	}
}

func TestNeighborSampleLine(t *testing.T) {
	g := lineGraph(t, 100)
	rng := rand.New(rand.NewSource(1))
	// Seeding at vertex 50 with 3 hops along a line reaches 47..50.
	sub, err := NeighborSample(g, []int32{50}, 3, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Graph.NumVertices() != 4 {
		t.Fatalf("line 3-hop sample has %d vertices, want 4", sub.Graph.NumVertices())
	}
	if sub.Graph.NumEdges() != 3 {
		t.Fatalf("line 3-hop sample has %d edges, want 3", sub.Graph.NumEdges())
	}
}

func TestNeighborSampleFanoutBounds(t *testing.T) {
	// Star: center 0 has 50 in-neighbours; fanout 5 with 1 hop keeps <= 6
	// vertices.
	b := graph.NewBuilder(51)
	for v := int32(1); v <= 50; v++ {
		b.AddEdge(v, 0)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	sub, err := NeighborSample(g, []int32{0}, 1, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got := sub.Graph.NumVertices(); got != 6 {
		t.Fatalf("fanout-5 star sample has %d vertices, want 6", got)
	}
}

func TestNeighborSampleErrors(t *testing.T) {
	g := lineGraph(t, 5)
	rng := rand.New(rand.NewSource(3))
	if _, err := NeighborSample(g, []int32{9}, 1, 2, rng); err == nil {
		t.Error("bad seed should fail")
	}
	if _, err := NeighborSample(g, []int32{0}, -1, 2, rng); err == nil {
		t.Error("negative hops should fail")
	}
	if _, err := NeighborSample(g, []int32{0}, 1, 0, rng); err == nil {
		t.Error("zero fanout should fail")
	}
}

func TestNeighborSampleDeterministic(t *testing.T) {
	rng1 := rand.New(rand.NewSource(7))
	rng2 := rand.New(rand.NewSource(7))
	b := graph.NewBuilder(200)
	mk := rand.New(rand.NewSource(8))
	for i := 0; i < 2000; i++ {
		b.AddEdge(int32(mk.Intn(200)), int32(mk.Intn(200)))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s1, err := NeighborSample(g, []int32{5, 9}, 2, 4, rng1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NeighborSample(g, []int32{5, 9}, 2, 4, rng2)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Graph.NumVertices() != s2.Graph.NumVertices() || s1.Graph.NumEdges() != s2.Graph.NumEdges() {
		t.Fatal("sampling not deterministic for fixed rng")
	}
	for i := range s1.Vertices {
		if s1.Vertices[i] != s2.Vertices[i] {
			t.Fatal("vertex sets differ")
		}
	}
}

func TestGatherRows(t *testing.T) {
	data := []float32{0, 1, 10, 11, 20, 21, 30, 31}
	got := GatherRows(data, 2, []int32{3, 1})
	want := []float32{30, 31, 10, 11}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("GatherRows = %v, want %v", got, want)
		}
	}
	if len(GatherRows(data, 2, nil)) != 0 {
		t.Error("empty ids should give empty slice")
	}
}
