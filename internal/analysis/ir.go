package analysis

import "repro/internal/ops"

// The verifier's view of a program: a minimal mirror of the internal/program
// IR carried in primitive types, so analysis can sit below program in the
// import graph. internal/program adapts its *Program into this form (see
// program/verify.go); corrupting passes mutate only this view, never the
// real compile artifacts.

// Rows mirrors program.RowsClass.
type Rows uint8

const (
	// VertexRows marks a per-vertex value (|V| rows).
	VertexRows Rows = iota
	// EdgeRows marks a per-edge value (|E| rows).
	EdgeRows
)

// String names the class.
func (r Rows) String() string {
	if r == EdgeRows {
		return "edge"
	}
	return "vertex"
}

// NodeKind mirrors program.NodeOp. The verifier only needs to distinguish
// the classes its rules treat differently; every other node kind maps to
// KindOther.
type NodeKind uint8

const (
	// KindOther is any dense/structural node (GEMM, concat, head-merge, ...).
	KindOther NodeKind = iota
	// KindInput is the program input node.
	KindInput
	// KindConst is a recorded constant (owns its storage; outside the plan).
	KindConst
	// KindUnary is an elementwise unary chain (legal in-place target).
	KindUnary
	// KindAddScaled is elementwise x + s*y (legal in-place target).
	KindAddScaled
	// KindGraph is a uGrapher graph operator.
	KindGraph
)

var nodeKindNames = [...]string{"other", "input", "const", "unary", "add_scaled", "graph"}

// String names the kind.
func (k NodeKind) String() string {
	if int(k) < len(nodeKindNames) {
		return nodeKindNames[k]
	}
	return "?"
}

// Elementwise reports whether the node kind computes element i of its output
// from element i of its operands only — the precondition for in-place
// aliasing.
func (k NodeKind) Elementwise() bool { return k == KindUnary || k == KindAddScaled }

// NoValue marks an absent operand reference.
const NoValue = -1

// IRValue is one SSA value's shape.
type IRValue struct {
	Rows  Rows
	Cols  int
	Const bool
}

// Elem is one elementwise unary op of a chain, mirrored from
// program.Unary in primitive form so the verifier can compare chains
// without importing program.
type Elem struct {
	Kind  uint8
	Alpha float32
}

// IRNode is one operation of the DAG. X and Y are operand value ids
// (NoValue when absent); Out is the defined value.
type IRNode struct {
	Name  string
	Kind  NodeKind
	X, Y  int
	Out   int
	// Op is the operator descriptor of KindGraph nodes.
	Op ops.OpInfo
	// Fused marks graph nodes the fusion pass created by merging a
	// materialise+scatter pair of the pre-fusion program.
	Fused bool
	// Chain is the elementwise op sequence of KindUnary nodes.
	Chain []Elem
	// HasRegion marks graph nodes the region-fusion pass extended beyond
	// the bare pair rewrite: PreX/PreY are elementwise chains absorbed into
	// the operand reads, Post is the epilogue chain applied to the output,
	// and RegionSavedBytes is the intermediate traffic the cost model
	// claims the region saves. The fusion-region rules re-derive all four
	// from the pre-fusion program.
	HasRegion        bool
	PreX, PreY, Post []Elem
	RegionSavedBytes int64
}

// ProgramIR is the verifier's view of one program: nodes in topological
// order over an SSA value table.
type ProgramIR struct {
	Values        []IRValue
	Nodes         []IRNode
	Input, Output int
}

// BufferFacts is the verifier's view of a buffer plan for one graph size.
type BufferFacts struct {
	// Assign maps each value id to its arena slot (NoSlot for constants and
	// values outside the plan).
	Assign []int
	// InPlace marks nodes that write into their X operand's slot.
	InPlace []bool
	// SlotFloats is each slot's capacity in float32 elements.
	SlotFloats []int
	// NumVertices and NumEdges size the planning graph.
	NumVertices, NumEdges int
}

// NoSlot marks values without an arena slot.
const NoSlot = -1

// ProgramCheck bundles everything VerifyProgram inspects: the pre-fusion
// program, the compiled (post-fusion, post-DCE) program, and the buffer
// plan. Pre may be nil (fusion/DCE rules are skipped); Plan may be nil
// (buffer rules are skipped).
type ProgramCheck struct {
	Subject string
	Pre     *ProgramIR
	Post    *ProgramIR
	Plan    *BufferFacts
	// NumVertices and NumEdges size the compilation graph; the
	// fusion-region cost rule needs them to bound claimed byte savings.
	// When both are zero the cost bound is skipped (sign checks still run).
	NumVertices, NumEdges int
}

// VerifyProgram runs every program-level rule over c and returns a
// *VerifyError listing all violations, or nil when the program verifies.
func VerifyProgram(c ProgramCheck) error {
	programsVerified.Add(1)
	var diags []Diagnostic
	if c.Post == nil {
		diags = append(diags, Diagnostic{
			Rule: RuleSSAForm, Msg: "no compiled program to verify",
			Hint: "pass the post-fusion program as Post",
		})
		return finish(diags)
	}
	diags = append(diags, checkSSA(c.Post)...)
	diags = append(diags, checkOperandTypes(c.Post)...)
	if c.Pre != nil {
		diags = append(diags, checkFusion(c.Pre, c.Post, c.NumVertices, c.NumEdges)...)
	}
	if c.Plan != nil {
		diags = append(diags, checkBuffers(c.Post, c.Plan)...)
	}
	return finish(diags)
}

// finish counts violations and wraps them; nil when clean.
func finish(diags []Diagnostic) error {
	if len(diags) == 0 {
		return nil
	}
	violationsFound.Add(int64(len(diags)))
	return &VerifyError{Diags: diags}
}
