package analysis

import "fmt"

// Wave-schedule rules. The compiler (program/waves.go) derives per-step
// read/write effect sets over arena storage, builds a step-dependence DAG
// and schedules provably independent steps into waves that may execute
// concurrently; these rules re-derive every hazard from the effect
// intervals alone and prove the DAG and the wave partition safe. The
// checker deliberately shares no code with the builder: a bug in the
// dependence construction cannot also hide here.

// Interval is one contiguous arena range a step reads or writes, in float32
// elements: [Off, Off+Len).
type Interval struct {
	Off, Len int
}

// intersects reports whether the two ranges share at least one element.
// Empty intervals intersect nothing.
func (iv Interval) intersects(o Interval) bool {
	return iv.Len > 0 && o.Len > 0 && iv.Off < o.Off+o.Len && o.Off < iv.Off+iv.Len
}

// StepEffects is the verifier's view of one compiled step's memory effects:
// which arena ranges it reads and writes, and which shared scratch block
// (if any) its kernel accumulates partials in. In-place steps carry the
// same interval in both Reads and Writes.
type StepEffects struct {
	// Name labels the step for diagnostics.
	Name string
	// Reads and Writes are the step's arena effect intervals.
	Reads, Writes []Interval
	// ScratchID is the shared sharded-scratch block the step's kernel is
	// bound to (-1 when the step uses no shared scratch).
	ScratchID int
}

// DepKind classifies one step-dependence edge.
type DepKind uint8

const (
	// DepTrue is a read-after-write dependence (producer -> consumer).
	DepTrue DepKind = iota
	// DepAnti is a write-after-read dependence (reader -> overwriter).
	DepAnti
	// DepOutput is a write-after-write dependence (same storage reused).
	DepOutput
	// DepScratch serializes two steps bound to the same scratch block.
	DepScratch
)

var depKindNames = [...]string{"true", "anti", "output", "scratch"}

// String names the dependence kind.
func (k DepKind) String() string {
	if int(k) < len(depKindNames) {
		return depKindNames[k]
	}
	return "?"
}

// DepEdge is one edge of the step-dependence DAG: step To must not start
// before step From finishes. Steps are identified by execution-order index,
// so a well-formed edge always points forward (From < To).
type DepEdge struct {
	From, To int
	Kind     DepKind
}

// WaveFacts bundles everything VerifyWaves inspects: the per-step effect
// sets, the dependence DAG the compiler built, and the wave schedule
// (topological levels of steps claimed independent).
type WaveFacts struct {
	Subject string
	Steps   []StepEffects
	Edges   []DepEdge
	// Waves lists step indices per wave, in execution order; steps within
	// one wave are claimed safe to run concurrently.
	Waves [][]int
}

// VerifyWaves runs the wave rules over f and returns a *VerifyError
// listing all violations, or nil when the schedule verifies.
func VerifyWaves(f WaveFacts) error {
	wavesVerified.Add(1)
	var diags []Diagnostic
	diags = append(diags, checkStepDeps(&f)...)
	diags = append(diags, checkWaveLegal(&f)...)
	return finish(diags)
}

// depKey identifies one (from, to, kind) hazard for set membership.
type depKey struct {
	from, to int
	kind     DepKind
}

// stepName labels step i for diagnostics.
func stepName(f *WaveFacts, i int) string {
	if i >= 0 && i < len(f.Steps) && f.Steps[i].Name != "" {
		return fmt.Sprintf("%d (%s)", i, f.Steps[i].Name)
	}
	return fmt.Sprintf("%d", i)
}

// anyIntersect reports whether any interval of a intersects any of b.
func anyIntersect(a, b []Interval) bool {
	for _, x := range a {
		for _, y := range b {
			if x.intersects(y) {
				return true
			}
		}
	}
	return false
}

// deriveHazards recomputes, from the effect sets alone, every dependence
// the DAG must carry between steps i < j.
func deriveHazards(a, b *StepEffects) []DepKind {
	var kinds []DepKind
	if anyIntersect(a.Writes, b.Reads) {
		kinds = append(kinds, DepTrue)
	}
	if anyIntersect(a.Reads, b.Writes) {
		kinds = append(kinds, DepAnti)
	}
	if anyIntersect(a.Writes, b.Writes) {
		kinds = append(kinds, DepOutput)
	}
	if a.ScratchID >= 0 && a.ScratchID == b.ScratchID {
		kinds = append(kinds, DepScratch)
	}
	return kinds
}

// checkStepDeps verifies step-deps-sound: the DAG is well-formed (forward,
// in-range edges) and contains every hazard independently re-derived from
// the slot intervals and scratch bindings.
func checkStepDeps(f *WaveFacts) []Diagnostic {
	var diags []Diagnostic
	n := len(f.Steps)
	have := make(map[depKey]bool, len(f.Edges))
	for _, e := range f.Edges {
		if e.From < 0 || e.To >= n || e.From >= e.To {
			diags = append(diags, Diagnostic{
				Rule: RuleStepDeps,
				Msg:  fmt.Sprintf("malformed %s edge %d -> %d (steps run 0..%d, edges must point forward)", e.Kind, e.From, e.To, n-1),
				Hint: "dependence edges follow execution order",
			})
			continue
		}
		have[depKey{e.From, e.To, e.Kind}] = true
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for _, kind := range deriveHazards(&f.Steps[i], &f.Steps[j]) {
				if have[depKey{i, j, kind}] {
					continue
				}
				diags = append(diags, Diagnostic{
					Rule: RuleStepDeps, Node: f.Steps[j].Name,
					Msg:  fmt.Sprintf("%s dependence between steps %s and %s is missing from the DAG", kind, stepName(f, i), stepName(f, j)),
					Hint: "every effect-derived hazard needs an edge, or the wave scheduler may overlap the pair",
				})
			}
		}
	}
	return diags
}

// checkWaveLegal verifies wave-legal: the waves partition the steps, every
// DAG edge crosses from an earlier wave to a later one, and no two steps
// sharing a wave carry a write-write hazard, a read-write alias, or the
// same scratch block.
func checkWaveLegal(f *WaveFacts) []Diagnostic {
	var diags []Diagnostic
	n := len(f.Steps)
	waveOf := make([]int, n)
	for i := range waveOf {
		waveOf[i] = -1
	}
	for w, wave := range f.Waves {
		for _, s := range wave {
			switch {
			case s < 0 || s >= n:
				diags = append(diags, Diagnostic{
					Rule: RuleWaveLegal,
					Msg:  fmt.Sprintf("wave %d schedules step %d, outside 0..%d", w, s, n-1),
					Hint: "waves must reference compiled steps",
				})
			case waveOf[s] >= 0:
				diags = append(diags, Diagnostic{
					Rule: RuleWaveLegal, Node: f.Steps[s].Name,
					Msg:  fmt.Sprintf("step %s scheduled in waves %d and %d", stepName(f, s), waveOf[s], w),
					Hint: "each step runs exactly once",
				})
			default:
				waveOf[s] = w
			}
		}
	}
	for s, w := range waveOf {
		if w < 0 {
			diags = append(diags, Diagnostic{
				Rule: RuleWaveLegal, Node: f.Steps[s].Name,
				Msg:  fmt.Sprintf("step %s is scheduled in no wave", stepName(f, s)),
				Hint: "the waves must partition every step",
			})
		}
	}
	for _, e := range f.Edges {
		if e.From < 0 || e.To >= n || e.From >= e.To {
			continue // already reported by step-deps-sound
		}
		if waveOf[e.From] >= 0 && waveOf[e.To] >= 0 && waveOf[e.From] >= waveOf[e.To] {
			diags = append(diags, Diagnostic{
				Rule: RuleWaveLegal, Node: f.Steps[e.To].Name,
				Msg: fmt.Sprintf("%s dependence %s -> %s not respected: waves %d -> %d",
					e.Kind, stepName(f, e.From), stepName(f, e.To), waveOf[e.From], waveOf[e.To]),
				Hint: "a dependent step must run in a strictly later wave",
			})
		}
	}
	for w, wave := range f.Waves {
		for i := 0; i < len(wave); i++ {
			for j := i + 1; j < len(wave); j++ {
				a, b := wave[i], wave[j]
				if a < 0 || a >= n || b < 0 || b >= n {
					continue
				}
				ea, eb := &f.Steps[a], &f.Steps[b]
				switch {
				case anyIntersect(ea.Writes, eb.Writes):
					diags = append(diags, Diagnostic{
						Rule: RuleWaveLegal, Node: eb.Name,
						Msg:  fmt.Sprintf("steps %s and %s share wave %d with a write-write hazard", stepName(f, a), stepName(f, b), w),
						Hint: "concurrent writers to one arena range race",
					})
				case anyIntersect(ea.Writes, eb.Reads) || anyIntersect(ea.Reads, eb.Writes):
					diags = append(diags, Diagnostic{
						Rule: RuleWaveLegal, Node: eb.Name,
						Msg:  fmt.Sprintf("steps %s and %s share wave %d with a read-write alias", stepName(f, a), stepName(f, b), w),
						Hint: "a reader and a writer of one arena range must be in different waves",
					})
				case ea.ScratchID >= 0 && ea.ScratchID == eb.ScratchID:
					diags = append(diags, Diagnostic{
						Rule: RuleWaveLegal, Node: eb.Name,
						Msg:  fmt.Sprintf("steps %s and %s share wave %d and scratch block %d", stepName(f, a), stepName(f, b), w, ea.ScratchID),
						Hint: "same-wave sharded kernels need distinct scratch blocks",
					})
				}
			}
		}
	}
	return diags
}
