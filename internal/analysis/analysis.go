// Package analysis is the static-analysis layer of the reproduction: an
// independent checker that proves each compiled program and plan safe
// *before* execution, plus a stdlib go/ast-based source linter that
// mechanically enforces the repo's hand-maintained invariants (hook
// discipline, panic justification, allocation-free Run paths).
//
// The verifier half re-derives the two code-generator analyses the paper's
// codegen relies on — the NULL-op fusion pass and the atomic-need analysis
// (§5.2, Table 4) — from first principles and cross-checks them against
// what internal/program and the backends actually produced. It deliberately
// shares no code with the passes it checks: a bug in fuse.go or in the
// buffer planner cannot also hide in the checker. The linter half
// (lint.go) parses the repo's own source and enforces the invariants
// DESIGN.md states in prose, so they cannot rot silently.
//
// The package sits below internal/core and internal/program in the import
// graph (it depends only on ops, tensor and the standard library), so both
// can call into it mandatorily at compile time.
package analysis

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Rule identifiers. Every Diagnostic carries exactly one of these, and the
// fault-injection suite proves each one fires on a corrupted artifact.
const (
	// RuleOperandType: a graph operator's operand typing violates Table 4 —
	// the tensor's row class does not match its addressing kind, an operand
	// is missing/extra for the edge op, the output kind is illegal for the
	// gather op, or an operand width neither matches the output nor
	// broadcasts.
	RuleOperandType = "operand-type"
	// RuleSSAForm: the program DAG is malformed — a value defined twice,
	// read before definition, or an out-of-range value reference.
	RuleSSAForm = "ssa-form"
	// RuleWriteConflict: the plan's atomic-need bit (or the backend's
	// declared conflict handling) disagrees with the independently
	// re-derived (gather_op x strategy) conflict analysis.
	RuleWriteConflict = "write-conflict"
	// RuleFusionPair: a node marked as fused does not correspond to a legal
	// materialise+scatter pair of the pre-fusion program.
	RuleFusionPair = "fusion-pair"
	// RuleFusionSingleConsumer: fusion merged across an intermediate edge
	// tensor that had more than one consumer (or was the program output).
	RuleFusionSingleConsumer = "fusion-single-consumer"
	// RuleDCESoundness: a node that is live in the pre-fusion program is
	// missing from the compiled program without being folded into a fused
	// pair, or a surviving node reads a value no surviving node defines.
	RuleDCESoundness = "dce-soundness"
	// RuleFusionRegion: a fusion region does not decompose back into the
	// pre-fusion program — its absorbed pre/post chains do not match
	// recorded elementwise nodes, an erased interior value had more than
	// one consumer (the read-after-scatter case generalised to regions), or
	// the region's base operator disagrees with the recorded graph node.
	RuleFusionRegion = "fusion-region"
	// RuleFusionRegionCost: a region's claimed saved-traffic bytes are
	// negative or exceed the independently recomputed upper bound for the
	// nodes it absorbed — the cost model's accounting is corrupt.
	RuleFusionRegionCost = "fusion-region-cost"
	// RuleBufferAlias: two values with overlapping live intervals share an
	// arena slot (read-while-write hazard), or a live value has no slot.
	RuleBufferAlias = "buffer-alias"
	// RuleBufferCapacity: a slot is smaller than a value it hosts.
	RuleBufferCapacity = "buffer-capacity"
	// RuleInPlace: a node writes into its operand's slot without being
	// elementwise, or while the operand is still live elsewhere.
	RuleInPlace = "inplace-elementwise"
	// RuleShardEdgeCover: a shard plan does not cover every edge exactly
	// once, files an edge under a shard that does not own its destination,
	// or mis-maps an edge's local source/destination ids.
	RuleShardEdgeCover = "shard-edge-cover"
	// RuleShardHaloCover: a shard's halo does not cover its cross-shard
	// reads — the local id map is inconsistent with Owned ++ Halo, a halo
	// vertex is owned by the shard itself, or a referenced local source id
	// falls outside the map.
	RuleShardHaloCover = "shard-halo-cover"
	// RuleShardNoAlias: two shards both own a vertex (their output regions
	// would alias one row), or a vertex is owned by no shard.
	RuleShardNoAlias = "shard-no-alias"
	// RuleShardMergeOrder: the plan's cross-shard merge order is not the
	// canonical ascending shard order, so the merge would not be
	// deterministic across runs.
	RuleShardMergeOrder = "shard-merge-order"
	// RuleStepDeps: a hazard between two compiled steps — a true, anti or
	// output dependence re-derived from their arena effect intervals, or a
	// shared scratch block — has no matching edge in the step-dependence
	// DAG, or the DAG carries a malformed (backward or out-of-range) edge.
	RuleStepDeps = "step-deps-sound"
	// RuleWaveLegal: the wave schedule is not a topologically ordered
	// partition of the steps, or two steps placed in the same wave share a
	// write-write hazard, a read-write alias, or a scratch block — running
	// them concurrently would race.
	RuleWaveLegal = "wave-legal"
)

// ProgramRules lists the rules VerifyProgram checks, in report order.
var ProgramRules = []string{
	RuleSSAForm, RuleOperandType,
	RuleFusionPair, RuleFusionSingleConsumer,
	RuleFusionRegion, RuleFusionRegionCost, RuleDCESoundness,
	RuleBufferAlias, RuleBufferCapacity, RuleInPlace,
}

// PlanRules lists the rules VerifyPlan / VerifyLowering check.
var PlanRules = []string{RuleOperandType, RuleWriteConflict}

// ShardRules lists the rules VerifyShardPlan checks, in report order.
var ShardRules = []string{
	RuleShardNoAlias, RuleShardEdgeCover, RuleShardHaloCover, RuleShardMergeOrder,
}

// WaveRules lists the rules VerifyWaves checks, in report order.
var WaveRules = []string{RuleStepDeps, RuleWaveLegal}

// Diagnostic is one verifier finding: which rule, where, and how to fix it.
type Diagnostic struct {
	// Rule is the violated rule id (one of the Rule* constants).
	Rule string
	// Node names the offending operation (step name or operator label).
	Node string
	// Values lists the SSA value ids involved (empty for plan-level rules).
	Values []int
	// Msg states the violation.
	Msg string
	// Hint suggests the likely fix.
	Hint string
}

// String renders "rule: node: msg (hint)".
func (d Diagnostic) String() string {
	var b strings.Builder
	b.WriteString(d.Rule)
	b.WriteString(": ")
	if d.Node != "" {
		b.WriteString(d.Node)
		b.WriteString(": ")
	}
	b.WriteString(d.Msg)
	if d.Hint != "" {
		b.WriteString(" (")
		b.WriteString(d.Hint)
		b.WriteString(")")
	}
	return b.String()
}

// VerifyError is the error program/plan compilation returns when the
// verifier found violations. It wraps the structured diagnostics so callers
// can inspect rule ids instead of parsing messages.
type VerifyError struct {
	Diags []Diagnostic
}

// Error implements error.
func (e *VerifyError) Error() string {
	if len(e.Diags) == 0 {
		return "analysis: verification failed"
	}
	if len(e.Diags) == 1 {
		return "analysis: " + e.Diags[0].String()
	}
	return fmt.Sprintf("analysis: %d violations, first: %s", len(e.Diags), e.Diags[0])
}

// HasRule reports whether any diagnostic violates the given rule.
func (e *VerifyError) HasRule(rule string) bool {
	for _, d := range e.Diags {
		if d.Rule == rule {
			return true
		}
	}
	return false
}

// Report summarises one verification pass for callers that present results
// (ugrapher -verify, ugrapher-lint -ir) rather than just failing.
type Report struct {
	// Subject labels what was verified ("GCN on AR, parallel", ...).
	Subject string
	// RulesChecked lists the rule ids that ran.
	RulesChecked []string
	// Diags holds the violations found (empty = verified).
	Diags []Diagnostic
}

// OK reports whether the pass found no violations.
func (r Report) OK() bool { return len(r.Diags) == 0 }

// Verification counters, surfaced so tooling (ugrapher-bench -json) can
// report whether the artifacts behind a result passed analysis.
var (
	programsVerified atomic.Int64
	plansVerified    atomic.Int64
	shardsVerified   atomic.Int64
	wavesVerified    atomic.Int64
	violationsFound  atomic.Int64
)

// VerifyStats is a snapshot of the process-wide verification counters.
type VerifyStats struct {
	// Programs is how many whole-program verifications ran.
	Programs int64
	// Plans is how many plan-level verifications ran.
	Plans int64
	// ShardPlans is how many shard-plan verifications ran.
	ShardPlans int64
	// Waves is how many wave-schedule verifications ran.
	Waves int64
	// Violations is how many diagnostics all verifications produced.
	Violations int64
}

// Stats snapshots the verification counters.
func Stats() VerifyStats {
	return VerifyStats{
		Programs:   programsVerified.Load(),
		Plans:      plansVerified.Load(),
		ShardPlans: shardsVerified.Load(),
		Waves:      wavesVerified.Load(),
		Violations: violationsFound.Load(),
	}
}
