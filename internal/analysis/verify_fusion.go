package analysis

import (
	"fmt"

	"repro/internal/ops"
	"repro/internal/tensor"
)

// Fusion-legality and DCE-soundness rules. The pass being checked
// (program/fuse.go) rewrites the recorded two-kernel aggregation form into
// fused single-kernel operators and then prunes dead nodes; these rules
// re-derive, from the pre- and post-fusion programs alone, that every
// rewrite was one the paper's §5.2 transformation permits and that nothing
// live was dropped.

// isMaterialise reports whether pre-program node n is the canonical
// message-materialise half of a decomposed aggregation: a non-reducing
// copy gather writing an edge tensor.
func isMaterialise(n *IRNode) bool {
	return n.Kind == KindGraph &&
		n.Op.CKind == tensor.EdgeK &&
		n.Op.GatherOp == ops.GatherCopyRHS
}

// isScatter reports whether pre-program node n is the canonical pure
// scatter: forward the edge tensor and reduce per destination vertex.
func isScatter(n *IRNode) bool {
	return n.Kind == KindGraph &&
		n.Op.EdgeOp == ops.CopyRHS &&
		n.Op.GatherOp.IsReduction() &&
		n.Op.AKind == tensor.Null &&
		n.Op.BKind == tensor.EdgeK &&
		n.Op.CKind == tensor.DstV
}

// checkFusion cross-checks the compiled program against the pre-fusion
// program: fused nodes must correspond to legal materialise+scatter pairs,
// unfused nodes must match their recorded originals, and every live
// recorded node must be accounted for.
func checkFusion(pre, post *ProgramIR) []Diagnostic {
	var diags []Diagnostic

	// Index the pre program: defining node per value, consumer counts, and
	// liveness (backwards from the output; the input node is always kept).
	preDef := make(map[int]int, len(pre.Nodes))
	uses := make(map[int]int)
	for i := range pre.Nodes {
		n := &pre.Nodes[i]
		preDef[n.Out] = i
		if n.X != NoValue {
			uses[n.X]++
		}
		if n.Y != NoValue {
			uses[n.Y]++
		}
	}
	liveVal := make(map[int]bool, len(pre.Values))
	liveVal[pre.Output] = true
	liveNode := make([]bool, len(pre.Nodes))
	for i := len(pre.Nodes) - 1; i >= 0; i-- {
		n := &pre.Nodes[i]
		if !liveVal[n.Out] && n.Kind != KindInput {
			continue
		}
		liveNode[i] = true
		if n.X != NoValue {
			liveVal[n.X] = true
		}
		if n.Y != NoValue {
			liveVal[n.Y] = true
		}
	}

	accounted := make([]bool, len(pre.Nodes))
	for pi := range post.Nodes {
		n := &post.Nodes[pi]
		if n.Fused {
			diags = append(diags, checkFusedPair(pre, n, preDef, uses, accounted)...)
			continue
		}
		// Unfused nodes must be byte-identical to the recorded node defining
		// the same value; anything else is a rewrite the fusion pass does not
		// perform (or a fused node that lost its marker).
		i, ok := preDef[n.Out]
		if !ok {
			diags = append(diags, Diagnostic{
				Rule: RuleDCESoundness, Node: n.Name, Values: []int{n.Out},
				Msg:  fmt.Sprintf("compiled node defines value %d that no recorded node defines", n.Out),
				Hint: "compilation must not invent values",
			})
			continue
		}
		o := &pre.Nodes[i]
		if o.Kind != n.Kind || o.X != n.X || o.Y != n.Y ||
			(n.Kind == KindGraph && o.Op != n.Op) {
			diags = append(diags, Diagnostic{
				Rule: RuleFusionPair, Node: n.Name, Values: []int{n.Out},
				Msg:  fmt.Sprintf("compiled node (%s %s) differs from recorded node (%s %s) without a fusion marker", n.Kind, n.Op, o.Kind, o.Op),
				Hint: "only marked materialise+scatter merges may rewrite a node",
			})
		}
		accounted[i] = true
	}

	// DCE soundness: every node live in the recorded program must survive,
	// either verbatim or folded into a fused pair.
	for i := range pre.Nodes {
		if liveNode[i] && !accounted[i] {
			n := &pre.Nodes[i]
			diags = append(diags, Diagnostic{
				Rule: RuleDCESoundness, Node: n.Name, Values: []int{n.Out},
				Msg:  fmt.Sprintf("recorded node is live (value %d reaches the output) but missing from the compiled program", n.Out),
				Hint: "dead-code elimination may only drop nodes the output cannot reach",
			})
		}
	}
	return diags
}

// checkFusedPair verifies one fused node against the recorded pair it
// claims to merge, marking both recorded nodes accounted.
func checkFusedPair(pre *ProgramIR, n *IRNode, preDef map[int]int, uses map[int]int, accounted []bool) []Diagnostic {
	var diags []Diagnostic
	pair := func(msg, hint string) {
		diags = append(diags, Diagnostic{Rule: RuleFusionPair, Node: n.Name, Values: []int{n.Out}, Msg: msg, Hint: hint})
	}
	si, ok := preDef[n.Out]
	if !ok {
		pair(fmt.Sprintf("fused node defines value %d that no recorded node defines", n.Out),
			"a fused node must take over a recorded scatter's output")
		return diags
	}
	scat := &pre.Nodes[si]
	accounted[si] = true
	if !isScatter(scat) {
		pair(fmt.Sprintf("recorded node defining value %d is not a canonical scatter (%s)", n.Out, scat.Op),
			"only copy_rhs->reduce->Dst_V scatters may be fused")
		return diags
	}
	mi, ok := preDef[scat.Y]
	if !ok {
		pair(fmt.Sprintf("scatter input value %d has no recorded definition", scat.Y),
			"the fused pair's intermediate must be a recorded value")
		return diags
	}
	mat := &pre.Nodes[mi]
	accounted[mi] = true
	if !isMaterialise(mat) {
		pair(fmt.Sprintf("scatter input is not a canonical materialise (%s)", mat.Op),
			"only edge-tensor copy-gather materialises may be fused")
		return diags
	}

	// Single-consumer rule: merging is only legal when the |E| x F
	// intermediate has exactly one reader and is not itself the program
	// output — otherwise the fused kernel erases a value something else
	// needs.
	if uses[mat.Out] != 1 || mat.Out == pre.Output {
		what := fmt.Sprintf("%d consumers", uses[mat.Out])
		if mat.Out == pre.Output {
			what = "the program output"
		}
		diags = append(diags, Diagnostic{
			Rule: RuleFusionSingleConsumer, Node: n.Name, Values: []int{mat.Out},
			Msg:  fmt.Sprintf("fusion erased intermediate value %d which is %s", mat.Out, what),
			Hint: "fuse only single-consumer materialise+scatter pairs",
		})
	}

	// Merge consistency: the fused operator must read the materialise's
	// operands and combine its edge op with the scatter's reduction.
	want := ops.OpInfo{
		EdgeOp:   mat.Op.EdgeOp,
		GatherOp: scat.Op.GatherOp,
		AKind:    mat.Op.AKind,
		BKind:    mat.Op.BKind,
		CKind:    tensor.DstV,
	}
	if n.Kind != KindGraph || n.Op != want || n.X != mat.X || n.Y != mat.Y {
		pair(fmt.Sprintf("fused operator %s over values (%d,%d) does not merge the pair %s + %s over (%d,%d)",
			n.Op, n.X, n.Y, mat.Op, scat.Op, mat.X, mat.Y),
			"the fused op must be edge_op(mat) + gather_op(scat) over the materialise's operands")
	}
	return diags
}
