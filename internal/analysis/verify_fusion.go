package analysis

import (
	"fmt"

	"repro/internal/ops"
	"repro/internal/tensor"
)

// Fusion-legality and DCE-soundness rules. The pass being checked
// (program/fuse.go) rewrites the recorded two-kernel aggregation form into
// fused single-kernel operators and then prunes dead nodes; these rules
// re-derive, from the pre- and post-fusion programs alone, that every
// rewrite was one the paper's §5.2 transformation permits and that nothing
// live was dropped.

// isMaterialise reports whether pre-program node n is the canonical
// message-materialise half of a decomposed aggregation: a non-reducing
// copy gather writing an edge tensor.
func isMaterialise(n *IRNode) bool {
	return n.Kind == KindGraph &&
		n.Op.CKind == tensor.EdgeK &&
		n.Op.GatherOp == ops.GatherCopyRHS
}

// isScatter reports whether pre-program node n is the canonical pure
// scatter: forward the edge tensor and reduce per destination vertex.
func isScatter(n *IRNode) bool {
	return n.Kind == KindGraph &&
		n.Op.EdgeOp == ops.CopyRHS &&
		n.Op.GatherOp.IsReduction() &&
		n.Op.AKind == tensor.Null &&
		n.Op.BKind == tensor.EdgeK &&
		n.Op.CKind == tensor.DstV
}

// elemsEqual reports element-wise equality of two unary chains.
func elemsEqual(a, b []Elem) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkFusion cross-checks the compiled program against the pre-fusion
// program: fused nodes must correspond to legal materialise+scatter pairs,
// region nodes must decompose back into recorded chains around a legal
// base, unfused nodes must match their recorded originals, and every live
// recorded node must be accounted for.
func checkFusion(pre, post *ProgramIR, numV, numE int) []Diagnostic {
	var diags []Diagnostic

	// Index the pre program: defining node per value, consumer counts, and
	// liveness (backwards from the output; the input node is always kept).
	preDef := make(map[int]int, len(pre.Nodes))
	uses := make(map[int]int)
	for i := range pre.Nodes {
		n := &pre.Nodes[i]
		preDef[n.Out] = i
		if n.X != NoValue {
			uses[n.X]++
		}
		if n.Y != NoValue {
			uses[n.Y]++
		}
	}
	liveVal := make(map[int]bool, len(pre.Values))
	liveVal[pre.Output] = true
	liveNode := make([]bool, len(pre.Nodes))
	for i := len(pre.Nodes) - 1; i >= 0; i-- {
		n := &pre.Nodes[i]
		if !liveVal[n.Out] && n.Kind != KindInput {
			continue
		}
		liveNode[i] = true
		if n.X != NoValue {
			liveVal[n.X] = true
		}
		if n.Y != NoValue {
			liveVal[n.Y] = true
		}
	}

	accounted := make([]bool, len(pre.Nodes))
	for pi := range post.Nodes {
		n := &post.Nodes[pi]
		if n.HasRegion {
			diags = append(diags, checkRegion(pre, n, preDef, uses, accounted, numV, numE)...)
			continue
		}
		if n.Fused {
			diags = append(diags, checkFusedPair(pre, n, preDef, uses, accounted)...)
			continue
		}
		// Unfused nodes must be byte-identical to the recorded node defining
		// the same value; anything else is a rewrite the fusion pass does not
		// perform (or a fused node that lost its marker).
		i, ok := preDef[n.Out]
		if !ok {
			diags = append(diags, Diagnostic{
				Rule: RuleDCESoundness, Node: n.Name, Values: []int{n.Out},
				Msg:  fmt.Sprintf("compiled node defines value %d that no recorded node defines", n.Out),
				Hint: "compilation must not invent values",
			})
			continue
		}
		o := &pre.Nodes[i]
		if o.Kind != n.Kind || o.X != n.X || o.Y != n.Y ||
			(n.Kind == KindGraph && o.Op != n.Op) ||
			(n.Kind == KindUnary && !elemsEqual(o.Chain, n.Chain)) {
			diags = append(diags, Diagnostic{
				Rule: RuleFusionPair, Node: n.Name, Values: []int{n.Out},
				Msg:  fmt.Sprintf("compiled node (%s %s) differs from recorded node (%s %s) without a fusion marker", n.Kind, n.Op, o.Kind, o.Op),
				Hint: "only marked materialise+scatter merges may rewrite a node",
			})
		}
		accounted[i] = true
	}

	// DCE soundness: every node live in the recorded program must survive,
	// either verbatim or folded into a fused pair.
	for i := range pre.Nodes {
		if liveNode[i] && !accounted[i] {
			n := &pre.Nodes[i]
			diags = append(diags, Diagnostic{
				Rule: RuleDCESoundness, Node: n.Name, Values: []int{n.Out},
				Msg:  fmt.Sprintf("recorded node is live (value %d reaches the output) but missing from the compiled program", n.Out),
				Hint: "dead-code elimination may only drop nodes the output cannot reach",
			})
		}
	}
	return diags
}

// checkFusedPair verifies one fused node against the recorded pair it
// claims to merge, marking both recorded nodes accounted.
func checkFusedPair(pre *ProgramIR, n *IRNode, preDef map[int]int, uses map[int]int, accounted []bool) []Diagnostic {
	var diags []Diagnostic
	pair := func(msg, hint string) {
		diags = append(diags, Diagnostic{Rule: RuleFusionPair, Node: n.Name, Values: []int{n.Out}, Msg: msg, Hint: hint})
	}
	si, ok := preDef[n.Out]
	if !ok {
		pair(fmt.Sprintf("fused node defines value %d that no recorded node defines", n.Out),
			"a fused node must take over a recorded scatter's output")
		return diags
	}
	scat := &pre.Nodes[si]
	accounted[si] = true
	if !isScatter(scat) {
		pair(fmt.Sprintf("recorded node defining value %d is not a canonical scatter (%s)", n.Out, scat.Op),
			"only copy_rhs->reduce->Dst_V scatters may be fused")
		return diags
	}
	mi, ok := preDef[scat.Y]
	if !ok {
		pair(fmt.Sprintf("scatter input value %d has no recorded definition", scat.Y),
			"the fused pair's intermediate must be a recorded value")
		return diags
	}
	mat := &pre.Nodes[mi]
	accounted[mi] = true
	if !isMaterialise(mat) {
		pair(fmt.Sprintf("scatter input is not a canonical materialise (%s)", mat.Op),
			"only edge-tensor copy-gather materialises may be fused")
		return diags
	}

	// Single-consumer rule: merging is only legal when the |E| x F
	// intermediate has exactly one reader and is not itself the program
	// output — otherwise the fused kernel erases a value something else
	// needs.
	if uses[mat.Out] != 1 || mat.Out == pre.Output {
		what := fmt.Sprintf("%d consumers", uses[mat.Out])
		if mat.Out == pre.Output {
			what = "the program output"
		}
		diags = append(diags, Diagnostic{
			Rule: RuleFusionSingleConsumer, Node: n.Name, Values: []int{mat.Out},
			Msg:  fmt.Sprintf("fusion erased intermediate value %d which is %s", mat.Out, what),
			Hint: "fuse only single-consumer materialise+scatter pairs",
		})
	}

	// Merge consistency: the fused operator must read the materialise's
	// operands and combine its edge op with the scatter's reduction.
	want := ops.OpInfo{
		EdgeOp:   mat.Op.EdgeOp,
		GatherOp: scat.Op.GatherOp,
		AKind:    mat.Op.AKind,
		BKind:    mat.Op.BKind,
		CKind:    tensor.DstV,
	}
	if n.Kind != KindGraph || n.Op != want || n.X != mat.X || n.Y != mat.Y {
		pair(fmt.Sprintf("fused operator %s over values (%d,%d) does not merge the pair %s + %s over (%d,%d)",
			n.Op, n.X, n.Y, mat.Op, scat.Op, mat.X, mat.Y),
			"the fused op must be edge_op(mat) + gather_op(scat) over the materialise's operands")
	}
	return diags
}

// regionOverheadBytes is the verifier's own per-absorbed-kernel launch
// allowance for the region cost bound. It is declared here, independent of
// program.DefaultCostModel, on purpose: the bound must not inherit a bug in
// the cost model it checks.
const regionOverheadBytes = 1 << 14

// checkRegion verifies one fusion-region node against the pre-fusion
// program it claims to absorb: the post/pre elementwise chains must
// decompose into recorded unary nodes, every erased interior value must
// have had exactly one consumer and not be the program output (no value may
// be read again after the region computes — the read-after-scatter rule
// generalised from pairs to regions), the region's base must be a recorded
// graph node or a legal fused pair, and the claimed byte savings must stay
// within an independently recomputed bound. All absorbed recorded nodes are
// marked accounted so DCE soundness sees them as surviving.
func checkRegion(pre *ProgramIR, n *IRNode, preDef map[int]int, uses map[int]int, accounted []bool, numV, numE int) []Diagnostic {
	var diags []Diagnostic
	region := func(msg, hint string, vals ...int) {
		diags = append(diags, Diagnostic{Rule: RuleFusionRegion, Node: n.Name, Values: vals, Msg: msg, Hint: hint})
	}
	bytesOf := func(val int) int64 {
		if val < 0 || val >= len(pre.Values) {
			return 0
		}
		v := pre.Values[val]
		rows := int64(numV)
		if v.Rows == EdgeRows {
			rows = int64(numE)
		}
		return 4 * rows * int64(v.Cols)
	}
	var maxSaved int64

	// interior checks that an erased in-region value was consumed exactly
	// once and is not the program output: anything else still needs the
	// value after the region runs.
	interior := func(val int) {
		if uses[val] != 1 || val == pre.Output {
			what := fmt.Sprintf("%d consumers", uses[val])
			if val == pre.Output {
				what = "the program output"
			}
			region(fmt.Sprintf("region erased interior value %d which has %s", val, what),
				"a region may only absorb values consumed exactly once inside it", val)
		}
	}

	// peel walks producer-wards from value `from`, matching recorded unary
	// nodes against the tail of chain until it is exhausted, and returns the
	// value the chain started from (or -1 on a mismatch, already diagnosed).
	//
	// Which value each step erases differs by direction. An epilogue peel
	// starts at the region output (live, legally multi-consumer) and erases
	// each peeled node's *input*; a prologue peel starts at the base
	// operator's erased operand and ends at the region's live operand, so it
	// erases the value it is *about to peel through*. The bound likewise: an
	// epilogue node saves at most one write+read round trip of its erased
	// input plus one launch; a prologue node saves at most the launch (its
	// source is still materialised for the staging copy).
	peel := func(chain []Elem, from int, what string, epilogue bool) int {
		rem := chain
		for len(rem) > 0 {
			if !epilogue {
				interior(from)
			}
			di, ok := preDef[from]
			if !ok {
				region(fmt.Sprintf("%s chain reaches value %d that no recorded node defines", what, from),
					"absorbed chains must decompose into recorded unary nodes", from)
				return -1
			}
			d := &pre.Nodes[di]
			if d.Kind != KindUnary || len(d.Chain) == 0 || len(d.Chain) > len(rem) ||
				!elemsEqual(d.Chain, rem[len(rem)-len(d.Chain):]) {
				region(fmt.Sprintf("%s chain tail does not match recorded node %q defining value %d", what, d.Name, from),
					"each absorbed chain segment must equal a recorded unary node's chain", from)
				return -1
			}
			accounted[di] = true
			rem = rem[:len(rem)-len(d.Chain)]
			if epilogue {
				interior(d.X)
				maxSaved += 2*bytesOf(d.X) + regionOverheadBytes
			} else {
				maxSaved += regionOverheadBytes
			}
			from = d.X
		}
		return from
	}

	// 1. Post epilogue: the region output must peel back through the
	// absorbed unary nodes to the base operator's output value.
	cur := peel(n.Post, n.Out, "post", true)
	if cur < 0 {
		return diags
	}

	// 2. The base operator.
	bi, ok := preDef[cur]
	if !ok {
		region(fmt.Sprintf("region base value %d has no recorded definition", cur),
			"the region must sit over a recorded graph operator", cur)
		return diags
	}
	var baseX, baseY int
	if n.Fused {
		scat := &pre.Nodes[bi]
		accounted[bi] = true
		if !isScatter(scat) {
			region(fmt.Sprintf("recorded node defining value %d is not a canonical scatter (%s)", cur, scat.Op),
				"a fused region base must be a copy_rhs->reduce->Dst_V scatter", cur)
			return diags
		}
		mi, ok := preDef[scat.Y]
		if !ok {
			region(fmt.Sprintf("scatter input value %d has no recorded definition", scat.Y),
				"the fused pair's intermediate must be a recorded value", scat.Y)
			return diags
		}
		mat := &pre.Nodes[mi]
		accounted[mi] = true
		if !isMaterialise(mat) {
			region(fmt.Sprintf("scatter input is not a canonical materialise (%s)", mat.Op),
				"only edge-tensor copy-gather materialises may anchor a fused region", scat.Y)
			return diags
		}
		if uses[mat.Out] != 1 || mat.Out == pre.Output {
			what := fmt.Sprintf("%d consumers", uses[mat.Out])
			if mat.Out == pre.Output {
				what = "the program output"
			}
			diags = append(diags, Diagnostic{
				Rule: RuleFusionSingleConsumer, Node: n.Name, Values: []int{mat.Out},
				Msg:  fmt.Sprintf("fusion erased intermediate value %d which is %s", mat.Out, what),
				Hint: "fuse only single-consumer materialise+scatter pairs",
			})
		}
		want := ops.OpInfo{
			EdgeOp:   mat.Op.EdgeOp,
			GatherOp: scat.Op.GatherOp,
			AKind:    mat.Op.AKind,
			BKind:    mat.Op.BKind,
			CKind:    tensor.DstV,
		}
		if n.Kind != KindGraph || n.Op != want {
			diags = append(diags, Diagnostic{
				Rule: RuleFusionPair, Node: n.Name, Values: []int{n.Out},
				Msg:  fmt.Sprintf("region base operator %s does not merge the pair %s + %s", n.Op, mat.Op, scat.Op),
				Hint: "the fused op must be edge_op(mat) + gather_op(scat)",
			})
		}
		baseX, baseY = mat.X, mat.Y
		maxSaved += 2*bytesOf(mat.Out) + regionOverheadBytes
	} else {
		base := &pre.Nodes[bi]
		accounted[bi] = true
		if base.Kind != KindGraph || base.Op != n.Op {
			region(fmt.Sprintf("region base (%s %s) disagrees with recorded node %q (%s %s)",
				n.Kind, n.Op, base.Name, base.Kind, base.Op),
				"an unfused region must keep the recorded graph operator verbatim", cur)
			return diags
		}
		baseX, baseY = base.X, base.Y
	}

	// 3. Operand prologues: the base's recorded operands must peel through
	// the absorbed chains down to the compiled node's operands.
	if got := peel(n.PreX, baseX, "preX", false); got >= 0 && got != n.X {
		region(fmt.Sprintf("preX chain starts at value %d but the region reads %d", got, n.X),
			"the absorbed operand chain must begin at the region's A operand", got, n.X)
	}
	if len(n.PreX) == 0 && baseX != n.X {
		region(fmt.Sprintf("region reads A operand %d but the recorded base read %d", n.X, baseX),
			"a region without a preX chain must keep the base operand", n.X, baseX)
	}
	if got := peel(n.PreY, baseY, "preY", false); got >= 0 && got != n.Y {
		region(fmt.Sprintf("preY chain starts at value %d but the region reads %d", got, n.Y),
			"the absorbed operand chain must begin at the region's B operand", got, n.Y)
	}
	if len(n.PreY) == 0 && baseY != n.Y {
		region(fmt.Sprintf("region reads B operand %d but the recorded base read %d", n.Y, baseY),
			"a region without a preY chain must keep the base operand", n.Y, baseY)
	}

	// 4. Cost sanity: the claimed saving must be non-negative and within
	// the recomputed bound (skipped when the check carries no graph sizes).
	if n.RegionSavedBytes < 0 {
		diags = append(diags, Diagnostic{
			Rule: RuleFusionRegionCost, Node: n.Name, Values: []int{n.Out},
			Msg:  fmt.Sprintf("region claims negative saved bytes (%d)", n.RegionSavedBytes),
			Hint: "the cost model must only accept regions with non-negative savings",
		})
	}
	if numV > 0 && numE > 0 && n.RegionSavedBytes > maxSaved {
		diags = append(diags, Diagnostic{
			Rule: RuleFusionRegionCost, Node: n.Name, Values: []int{n.Out},
			Msg:  fmt.Sprintf("region claims %d saved bytes, recomputed bound is %d", n.RegionSavedBytes, maxSaved),
			Hint: "claimed savings must not exceed the absorbed nodes' traffic plus launch overhead",
		})
	}
	return diags
}
