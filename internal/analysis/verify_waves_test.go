package analysis

import "testing"

// chainFacts is a minimal legal schedule: s0 writes [0,4), s1 reads it and
// writes [4,8), with the matching true edge and one step per wave.
func chainFacts() WaveFacts {
	return WaveFacts{
		Subject: "chain",
		Steps: []StepEffects{
			{Name: "s0", Writes: []Interval{{Off: 0, Len: 4}}, ScratchID: -1},
			{Name: "s1", Reads: []Interval{{Off: 0, Len: 4}}, Writes: []Interval{{Off: 4, Len: 4}}, ScratchID: -1},
		},
		Edges: []DepEdge{{From: 0, To: 1, Kind: DepTrue}},
		Waves: [][]int{{0}, {1}},
	}
}

func TestVerifyWavesClean(t *testing.T) {
	if err := VerifyWaves(chainFacts()); err != nil {
		t.Fatalf("legal schedule rejected: %v", err)
	}
	// Independent steps legally share a wave.
	f := WaveFacts{
		Steps: []StepEffects{
			{Name: "a", Reads: []Interval{{Off: 0, Len: 4}}, Writes: []Interval{{Off: 4, Len: 4}}, ScratchID: -1},
			{Name: "b", Reads: []Interval{{Off: 0, Len: 4}}, Writes: []Interval{{Off: 8, Len: 4}}, ScratchID: 1},
		},
		Waves: [][]int{{0, 1}},
	}
	if err := VerifyWaves(f); err != nil {
		t.Fatalf("independent same-wave steps rejected: %v", err)
	}
}

func TestVerifyWavesMissingEdge(t *testing.T) {
	f := chainFacts()
	f.Edges = nil
	wantRule(t, VerifyWaves(f), RuleStepDeps)
}

func TestVerifyWavesMalformedEdge(t *testing.T) {
	f := chainFacts()
	f.Edges = append(f.Edges, DepEdge{From: 1, To: 0, Kind: DepAnti})
	wantRule(t, VerifyWaves(f), RuleStepDeps)
}

func TestVerifyWavesMissingScratchEdge(t *testing.T) {
	f := chainFacts()
	f.Steps[0].ScratchID = 3
	f.Steps[1].ScratchID = 3
	wantRule(t, VerifyWaves(f), RuleStepDeps)
}

func TestVerifyWavesTopoViolation(t *testing.T) {
	f := chainFacts()
	f.Waves = [][]int{{1}, {0}}
	wantRule(t, VerifyWaves(f), RuleWaveLegal)
}

func TestVerifyWavesSameWaveHazards(t *testing.T) {
	// Read-write alias in one wave.
	f := chainFacts()
	f.Waves = [][]int{{0, 1}}
	wantRule(t, VerifyWaves(f), RuleWaveLegal)

	// Write-write hazard in one wave.
	f = WaveFacts{
		Steps: []StepEffects{
			{Name: "a", Writes: []Interval{{Off: 0, Len: 4}}, ScratchID: -1},
			{Name: "b", Writes: []Interval{{Off: 2, Len: 4}}, ScratchID: -1},
		},
		Edges: []DepEdge{{From: 0, To: 1, Kind: DepOutput}},
		Waves: [][]int{{0, 1}},
	}
	wantRule(t, VerifyWaves(f), RuleWaveLegal)

	// Shared scratch block in one wave.
	f = WaveFacts{
		Steps: []StepEffects{
			{Name: "a", Writes: []Interval{{Off: 0, Len: 4}}, ScratchID: 2},
			{Name: "b", Writes: []Interval{{Off: 8, Len: 4}}, ScratchID: 2},
		},
		Edges: []DepEdge{{From: 0, To: 1, Kind: DepScratch}},
		Waves: [][]int{{0, 1}},
	}
	wantRule(t, VerifyWaves(f), RuleWaveLegal)
}

func TestVerifyWavesPartition(t *testing.T) {
	// A step scheduled twice.
	f := chainFacts()
	f.Waves = [][]int{{0}, {1}, {1}}
	wantRule(t, VerifyWaves(f), RuleWaveLegal)

	// A step scheduled never.
	f = chainFacts()
	f.Waves = [][]int{{0}}
	wantRule(t, VerifyWaves(f), RuleWaveLegal)

	// An out-of-range step index.
	f = chainFacts()
	f.Waves = [][]int{{0}, {1, 9}}
	wantRule(t, VerifyWaves(f), RuleWaveLegal)
}
