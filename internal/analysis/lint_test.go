package analysis

import (
	"strings"
	"testing"
)

// lintOne lints src as a single file in dir and returns the findings.
func lintOne(t *testing.T, dir, src string) []Finding {
	t.Helper()
	fs, err := LintSource("test.go", src, dir)
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	return fs
}

// wantFinding asserts exactly one finding with the given rule.
func wantFinding(t *testing.T, fs []Finding, rule string) {
	t.Helper()
	var hits int
	for _, f := range fs {
		if f.Rule == rule {
			hits++
		}
	}
	if hits != 1 {
		t.Fatalf("want exactly one %s finding, got %d in %v", rule, hits, fs)
	}
}

func wantClean(t *testing.T, fs []Finding) {
	t.Helper()
	if len(fs) != 0 {
		t.Fatalf("want no findings, got %v", fs)
	}
}

func TestLintHookDiscipline(t *testing.T) {
	const hdr = `package core
import "repro/internal/telemetry"
`
	t.Run("unguarded call in audited dir", func(t *testing.T) {
		fs := lintOne(t, "internal/core", hdr+`
func f() { telemetry.RecordKernelRun() }
`)
		wantFinding(t, fs, LintHookDiscipline)
	})
	t.Run("same call outside audited dirs is fine", func(t *testing.T) {
		fs := lintOne(t, "internal/models", hdr+`
func f() { telemetry.RecordKernelRun() }
`)
		wantClean(t, fs)
	})
	t.Run("self-guarded hooks pass", func(t *testing.T) {
		fs := lintOne(t, "internal/core", hdr+`
func f() {
	telemetry.CountProgramRun()
	sp := telemetry.StartSpan("a", "b", "c")
	_ = sp
}
`)
		wantClean(t, fs)
	})
	t.Run("positive guard passes", func(t *testing.T) {
		fs := lintOne(t, "internal/core", hdr+`
func f() {
	if telemetry.Enabled() {
		telemetry.RecordKernelRun()
	}
}
`)
		wantClean(t, fs)
	})
	t.Run("early-exit guard passes", func(t *testing.T) {
		fs := lintOne(t, "internal/core", hdr+`
func f() {
	if !telemetry.Enabled() {
		return
	}
	telemetry.RecordKernelRun()
}
`)
		wantClean(t, fs)
	})
	t.Run("guard without return does not dominate", func(t *testing.T) {
		fs := lintOne(t, "internal/core", hdr+`
func f() {
	if !telemetry.Enabled() {
		_ = 0
	}
	telemetry.RecordKernelRun()
}
`)
		wantFinding(t, fs, LintHookDiscipline)
	})
	t.Run("renamed import still audited", func(t *testing.T) {
		fs := lintOne(t, "internal/program", `package program
import tel "repro/internal/telemetry"

func f() { tel.RecordKernelRun() }
`)
		wantFinding(t, fs, LintHookDiscipline)
	})
	t.Run("allow directive suppresses", func(t *testing.T) {
		fs := lintOne(t, "internal/core", hdr+`
func f() {
	//lint:allow hook-discipline -- registration happens once at compile time
	telemetry.RecordKernelRun()
}
`)
		wantClean(t, fs)
	})
}

func TestLintPanicJustification(t *testing.T) {
	t.Run("bare panic flagged", func(t *testing.T) {
		fs := lintOne(t, "internal/x", `package x

func f() { panic("boom") }
`)
		wantFinding(t, fs, LintPanicJustification)
	})
	t.Run("adjacent invariant comment passes", func(t *testing.T) {
		fs := lintOne(t, "internal/x", `package x

func f(ok bool) {
	if !ok {
		// invariant: callers validated ok upstream.
		panic("boom")
	}
}
`)
		wantClean(t, fs)
	})
	t.Run("function doc invariant passes", func(t *testing.T) {
		fs := lintOne(t, "internal/x", `package x

// f panics on invariant violations only.
func f() { panic("boom") }
`)
		wantClean(t, fs)
	})
	t.Run("comment too far above does not count", func(t *testing.T) {
		fs := lintOne(t, "internal/x", `package x

func f(a int) int {
	// invariant: placeholder far from the panic.
	a++
	a++
	a++
	a++
	a++
	a++
	a++
	a++
	a++
	panic("boom")
}
`)
		wantFinding(t, fs, LintPanicJustification)
	})
	t.Run("shadowed panic is not the builtin", func(t *testing.T) {
		fs := lintOne(t, "internal/x", `package x

func f() {
	panic := func(string) {}
	panic("fine")
}
`)
		wantClean(t, fs)
	})
	t.Run("allow directive suppresses", func(t *testing.T) {
		fs := lintOne(t, "internal/x", `package x

func f() {
	//lint:allow panic-justification -- deliberate test crash
	panic("boom")
}
`)
		wantClean(t, fs)
	})
}

func TestLintNoAllocInRun(t *testing.T) {
	t.Run("make in kernel Run flagged", func(t *testing.T) {
		fs := lintOne(t, "internal/x", `package x

type fastKernel struct{}

func (k *fastKernel) Run() {
	_ = make([]float32, 8)
}
`)
		wantFinding(t, fs, LintNoAllocInRun)
	})
	t.Run("append in RunCtx flagged", func(t *testing.T) {
		fs := lintOne(t, "internal/x", `package x

type fastKernel struct{ buf []int }

func (k *fastKernel) RunCtx() {
	k.buf = append(k.buf, 1)
}
`)
		wantFinding(t, fs, LintNoAllocInRun)
	})
	t.Run("closure in Run flagged", func(t *testing.T) {
		fs := lintOne(t, "internal/x", `package x

type fastKernel struct{}

func (k *fastKernel) Run(g func(func())) {
	g(func() {})
}
`)
		wantFinding(t, fs, LintNoAllocInRun)
	})
	t.Run("direct defer closure exempt", func(t *testing.T) {
		fs := lintOne(t, "internal/x", `package x

type fastKernel struct{ n int }

func (k *fastKernel) Run() {
	defer func() { k.n++ }()
	k.n++
}
`)
		wantClean(t, fs)
	})
	t.Run("non-kernel receivers not audited", func(t *testing.T) {
		fs := lintOne(t, "internal/x", `package x

type builder struct{}

func (b *builder) Run() {
	_ = make([]float32, 8)
}
`)
		wantClean(t, fs)
	})
	t.Run("other methods of kernels not audited", func(t *testing.T) {
		fs := lintOne(t, "internal/x", `package x

type fastKernel struct{}

func (k *fastKernel) Lower() {
	_ = make([]float32, 8)
}
`)
		wantClean(t, fs)
	})
}

func TestLintDirective(t *testing.T) {
	t.Run("directive without reason is a finding", func(t *testing.T) {
		fs := lintOne(t, "internal/x", `package x

func f() {
	//lint:allow panic-justification
	panic("boom")
}
`)
		// The reasonless directive does not suppress, so both findings appear.
		wantFinding(t, fs, LintDirective)
		wantFinding(t, fs, LintPanicJustification)
	})
	t.Run("directive covers its own and the next line", func(t *testing.T) {
		fs := lintOne(t, "internal/x", `package x

func f() {
	//lint:allow panic-justification -- reason here
	panic("boom")
}
`)
		wantClean(t, fs)
	})
	t.Run("directive does not leak further down", func(t *testing.T) {
		fs := lintOne(t, "internal/x", `package x

func f(a int) {
	//lint:allow panic-justification -- reason here
	a++
	a++
	panic("boom")
}
`)
		wantFinding(t, fs, LintPanicJustification)
	})
}

// TestLintSelfModule lints the repo's own packages: the tree must stay clean
// so make check can treat any finding as a regression.
func TestLintSelfModule(t *testing.T) {
	dirs, err := ExpandDirs([]string{"../../internal/...", "../../cmd/..."})
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	if len(dirs) < 10 {
		t.Fatalf("expected to find the repo's packages, got %d dirs", len(dirs))
	}
	fs, err := LintDirs(dirs)
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	for _, f := range fs {
		t.Errorf("%s", f)
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{File: "a.go", Line: 3, Rule: LintNoAllocInRun, Msg: "make allocates"}
	if got := f.String(); !strings.Contains(got, "a.go:3") || !strings.Contains(got, LintNoAllocInRun) {
		t.Errorf("String() = %q", got)
	}
}

func TestLintTracePropagation(t *testing.T) {
	const hdr = `package core
import (
	"context"
	"repro/internal/telemetry"
)
`
	t.Run("minting in a hook-disciplined dir is flagged", func(t *testing.T) {
		fs := lintOne(t, "internal/core", hdr+`
func f(ctx context.Context) {
	ts := telemetry.NewTraceState(0, 0, 8)
	_ = telemetry.ContextWithTrace(ctx, ts)
}
`)
		var hits int
		for _, f := range fs {
			if f.Rule == LintTracePropagation {
				hits++
			}
		}
		if hits != 2 {
			t.Fatalf("want two trace-propagation findings (mint + attach), got %d in %v", hits, fs)
		}
	})
	t.Run("an Enabled guard does not legitimise minting", func(t *testing.T) {
		fs := lintOne(t, "internal/program", hdr+`
func f() {
	if telemetry.Enabled() {
		_ = telemetry.MintTraceID()
	}
}
`)
		wantFinding(t, fs, LintTracePropagation)
	})
	t.Run("adopting the ctx trace is the sanctioned pattern", func(t *testing.T) {
		fs := lintOne(t, "internal/core", hdr+`
func f(ctx context.Context) {
	sp := telemetry.StartSpanCtx(ctx, "a", "b", "c")
	prev := sp.MakeCurrent()
	sp.RestoreCurrent(prev)
	sp.End()
	_ = telemetry.TraceOf(ctx)
}
`)
		wantClean(t, fs)
	})
	t.Run("minting outside the audited dirs is fine", func(t *testing.T) {
		fs := lintOne(t, "internal/serve", hdr+`
func f() { _ = telemetry.NewTraceState(0, 0, 8) }
`)
		wantClean(t, fs)
	})
}

func TestLintGoroutineAccounting(t *testing.T) {
	t.Run("unaccounted go statement is flagged", func(t *testing.T) {
		fs := lintOne(t, "internal/serve", `package serve
func f() {
	go func() {
		for {
		}
	}()
}
`)
		wantFinding(t, fs, LintGoroutineAccounting)
	})
	t.Run("waitgroup Add before the spawn is accounted", func(t *testing.T) {
		fs := lintOne(t, "internal/program", `package program
import "sync"
func f() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}
`)
		wantClean(t, fs)
	})
	t.Run("literal body with deferred Done is accounted", func(t *testing.T) {
		fs := lintOne(t, "internal/serve", `package serve
import "sync"
type s struct{ wg sync.WaitGroup }
func (x *s) f() {
	go func() {
		defer x.wg.Done()
	}()
}
`)
		wantClean(t, fs)
	})
	t.Run("literal body closing a channel is accounted", func(t *testing.T) {
		fs := lintOne(t, "internal/serve", `package serve
func f(done chan struct{}) {
	go func() {
		close(done)
	}()
}
`)
		wantClean(t, fs)
	})
	t.Run("named spawn target resolved through the package index", func(t *testing.T) {
		fs := lintOne(t, "internal/serve", `package serve
type host struct{ done chan struct{} }
func (h *host) run() {
	defer close(h.done)
}
func (h *host) start() {
	go h.run()
}
`)
		wantClean(t, fs)
	})
	t.Run("named spawn target without a signal is flagged", func(t *testing.T) {
		fs := lintOne(t, "internal/program", `package program
func worker() {
	for {
	}
}
func f() {
	go worker()
}
`)
		wantFinding(t, fs, LintGoroutineAccounting)
	})
	t.Run("allow directive suppresses with a reason", func(t *testing.T) {
		fs := lintOne(t, "internal/program", `package program
func worker() {}
func f() {
	//lint:allow goroutine-accounting -- process-lifetime pool worker
	go worker()
}
`)
		wantClean(t, fs)
	})
	t.Run("unscoped package is not audited", func(t *testing.T) {
		fs := lintOne(t, "internal/core", `package core
func f() {
	go func() {
		for {
		}
	}()
}
`)
		wantClean(t, fs)
	})
}
