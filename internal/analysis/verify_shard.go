package analysis

import (
	"fmt"
	"sort"
)

// Shard-plan rules: partition-granularity checks that run inside
// shard.Partition for every plan before any kernel is lowered onto it. Like
// the plan and program verifiers, the checks here re-derive the partition
// invariants from the raw COO edge list instead of trusting the partitioner's
// own bookkeeping — a bug in the shard builder cannot also hide in this file.

// ShardFacts is the verifier's view of one shard plan, carried in primitives
// so analysis needs no graph or shard types. Slices may alias the plan's
// storage; the verifier only reads them.
type ShardFacts struct {
	// NumVertices / NumEdges describe the partitioned graph.
	NumVertices int
	NumEdges    int
	// EdgeSrc / EdgeDst are the graph's COO endpoint arrays (indexed by
	// global edge id) — the ground truth shards are checked against.
	EdgeSrc []int32
	EdgeDst []int32
	// Owner maps each global vertex id to its owning shard.
	Owner []int32
	// Shards are the per-shard views, indexed by shard id.
	Shards []ShardView
	// MergeOrder is the order shard partials fold into the output.
	MergeOrder []int32
}

// ShardView is the verifier's view of one shard's sub-CSR.
type ShardView struct {
	// Owned lists the global vertex ids this shard owns, ascending.
	Owned []int32
	// Halo lists the global vertex ids this shard reads but does not own,
	// ascending and disjoint from Owned.
	Halo []int32
	// Ptr is the local incoming-CSR row pointer over Owned (len(Owned)+1).
	Ptr []int32
	// Src holds local source ids (indexes into the Owned ++ Halo map),
	// aligned with Edge.
	Src []int32
	// Edge holds global edge ids.
	Edge []int32
	// L2G is the local->global id map: Owned followed by Halo.
	L2G []int32
}

// VerifyShardPlan checks one shard plan against the ShardRules: single
// ownership of every vertex (no output aliasing), exact single coverage of
// every edge under its destination's owner, halo coverage of every
// cross-shard read, and canonical merge order. Returns a *VerifyError or
// nil.
func VerifyShardPlan(f ShardFacts) error {
	shardsVerified.Add(1)
	var diags []Diagnostic
	diags = append(diags, checkShardOwnership(f)...)
	diags = append(diags, checkShardEdges(f)...)
	diags = append(diags, checkShardHalos(f)...)
	diags = append(diags, checkShardMergeOrder(f)...)
	return finish(diags)
}

// checkShardOwnership enforces RuleShardNoAlias: the Owned lists partition
// the vertex set — every vertex in exactly one shard, consistent with Owner.
// Two shards owning one vertex would write the same output row.
func checkShardOwnership(f ShardFacts) []Diagnostic {
	var diags []Diagnostic
	bad := func(node, msg string) {
		diags = append(diags, Diagnostic{
			Rule: RuleShardNoAlias, Node: node, Msg: msg,
			Hint: "each output row needs exactly one owning shard",
		})
	}
	if len(f.Owner) != f.NumVertices {
		bad("plan", fmt.Sprintf("owner map covers %d of %d vertices", len(f.Owner), f.NumVertices))
		return diags
	}
	seen := make([]int32, f.NumVertices) // owning shard + 1, 0 = unowned
	for s := range f.Shards {
		node := fmt.Sprintf("shard %d", s)
		for _, v := range f.Shards[s].Owned {
			if v < 0 || int(v) >= f.NumVertices {
				bad(node, fmt.Sprintf("owned vertex %d out of range", v))
				continue
			}
			if prev := seen[v]; prev != 0 {
				bad(node, fmt.Sprintf("vertex %d owned by shard %d and shard %d", v, prev-1, s))
				continue
			}
			seen[v] = int32(s) + 1
			if f.Owner[v] != int32(s) {
				bad(node, fmt.Sprintf("vertex %d in shard %d's owned list but owner map says %d", v, s, f.Owner[v]))
			}
		}
	}
	for v, s := range seen {
		if s == 0 {
			bad("plan", fmt.Sprintf("vertex %d owned by no shard", v))
		}
	}
	return diags
}

// checkShardEdges enforces RuleShardEdgeCover: every global edge id appears
// in exactly one shard's edge list, filed under the shard that owns the
// edge's destination, in the local CSR bucket of that destination, with the
// local source resolving to the edge's global source.
func checkShardEdges(f ShardFacts) []Diagnostic {
	var diags []Diagnostic
	bad := func(node, msg string) {
		diags = append(diags, Diagnostic{
			Rule: RuleShardEdgeCover, Node: node, Msg: msg,
			Hint: "each edge belongs to exactly one shard: the owner of its destination",
		})
	}
	if len(f.EdgeSrc) != f.NumEdges || len(f.EdgeDst) != f.NumEdges {
		bad("plan", "COO arrays do not match the edge count")
		return diags
	}
	covered := make([]bool, f.NumEdges)
	for s := range f.Shards {
		sh := &f.Shards[s]
		node := fmt.Sprintf("shard %d", s)
		if len(sh.Ptr) != len(sh.Owned)+1 || len(sh.Src) != len(sh.Edge) {
			bad(node, fmt.Sprintf("sub-CSR shape inconsistent: %d ptr entries for %d owned, %d srcs for %d edges",
				len(sh.Ptr), len(sh.Owned), len(sh.Src), len(sh.Edge)))
			continue
		}
		if len(sh.Ptr) > 0 && (sh.Ptr[0] != 0 || int(sh.Ptr[len(sh.Ptr)-1]) != len(sh.Edge)) {
			bad(node, "sub-CSR pointer does not cover the shard's edge list")
			continue
		}
		for i := range sh.Owned {
			v := sh.Owned[i]
			lo, hi := sh.Ptr[i], sh.Ptr[i+1]
			if lo > hi {
				bad(node, fmt.Sprintf("sub-CSR pointer decreases at local vertex %d", i))
				break
			}
			for j := lo; j < hi; j++ {
				e := sh.Edge[j]
				if e < 0 || int(e) >= f.NumEdges {
					bad(node, fmt.Sprintf("edge id %d out of range", e))
					continue
				}
				if covered[e] {
					bad(node, fmt.Sprintf("edge %d covered twice", e))
					continue
				}
				covered[e] = true
				if f.EdgeDst[e] != v {
					bad(node, fmt.Sprintf("edge %d filed under vertex %d but its destination is %d", e, v, f.EdgeDst[e]))
				}
				if src := sh.Src[j]; src < 0 || int(src) >= len(sh.L2G) {
					// Range violations are the halo checker's finding.
					continue
				} else if sh.L2G[src] != f.EdgeSrc[e] {
					bad(node, fmt.Sprintf("edge %d local source resolves to vertex %d, COO says %d", e, sh.L2G[src], f.EdgeSrc[e]))
				}
			}
		}
	}
	for e, ok := range covered {
		if !ok {
			bad("plan", fmt.Sprintf("edge %d covered by no shard", e))
		}
	}
	return diags
}

// checkShardHalos enforces RuleShardHaloCover: each shard's local id map is
// exactly Owned followed by Halo, halo vertices are genuinely foreign
// (owned by another shard), and every local source id a shard's edges
// reference falls inside the map — so every cross-shard read has a halo
// entry backing it.
func checkShardHalos(f ShardFacts) []Diagnostic {
	var diags []Diagnostic
	bad := func(node, msg string) {
		diags = append(diags, Diagnostic{
			Rule: RuleShardHaloCover, Node: node, Msg: msg,
			Hint: "halo = sorted foreign vertices; L2G = Owned ++ Halo",
		})
	}
	for s := range f.Shards {
		sh := &f.Shards[s]
		node := fmt.Sprintf("shard %d", s)
		if len(sh.L2G) != len(sh.Owned)+len(sh.Halo) {
			bad(node, fmt.Sprintf("id map holds %d entries for %d owned + %d halo",
				len(sh.L2G), len(sh.Owned), len(sh.Halo)))
			continue
		}
		for i, v := range sh.Owned {
			if sh.L2G[i] != v {
				bad(node, fmt.Sprintf("id map slot %d is %d, owned list says %d", i, sh.L2G[i], v))
			}
		}
		for i, h := range sh.Halo {
			if sh.L2G[len(sh.Owned)+i] != h {
				bad(node, fmt.Sprintf("id map slot %d is %d, halo list says %d",
					len(sh.Owned)+i, sh.L2G[len(sh.Owned)+i], h))
			}
			if i > 0 && sh.Halo[i-1] >= h {
				bad(node, fmt.Sprintf("halo not strictly ascending at index %d", i))
			}
			if h < 0 || int(h) >= len(f.Owner) {
				bad(node, fmt.Sprintf("halo vertex %d out of range", h))
				continue
			}
			if f.Owner[h] == int32(s) {
				bad(node, fmt.Sprintf("halo vertex %d is owned by this shard", h))
			}
		}
		for j, src := range sh.Src {
			if src < 0 || int(src) >= len(sh.L2G) {
				bad(node, fmt.Sprintf("edge slot %d references local source %d outside the %d-entry id map",
					j, src, len(sh.L2G)))
			}
		}
	}
	return diags
}

// checkShardMergeOrder enforces RuleShardMergeOrder: the merge order is the
// canonical ascending shard sequence 0..K-1, so per-run partial folding is
// reproducible by construction.
func checkShardMergeOrder(f ShardFacts) []Diagnostic {
	k := len(f.Shards)
	if len(f.MergeOrder) != k || !sort.SliceIsSorted(f.MergeOrder, func(a, b int) bool {
		return f.MergeOrder[a] < f.MergeOrder[b]
	}) || (k > 0 && (f.MergeOrder[0] != 0 || int(f.MergeOrder[k-1]) != k-1)) || !isPermutation(f.MergeOrder, k) {
		return []Diagnostic{{
			Rule: RuleShardMergeOrder, Node: "plan",
			Msg:  fmt.Sprintf("merge order %v is not the ascending shard sequence over %d shards", f.MergeOrder, k),
			Hint: "fold partials in shard-id order so merges replay identically",
		}}
	}
	return nil
}

// isPermutation reports whether xs is a permutation of 0..k-1.
func isPermutation(xs []int32, k int) bool {
	if len(xs) != k {
		return false
	}
	seen := make([]bool, k)
	for _, x := range xs {
		if x < 0 || int(x) >= k || seen[x] {
			return false
		}
		seen[x] = true
	}
	return true
}
