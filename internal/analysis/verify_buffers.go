package analysis

import "fmt"

// Buffer-plan rules. The planner (program/buffers.go) maps intermediates
// onto a small pool of reusable arena slots; these rules recompute liveness
// intervals from the compiled IR alone and prove the assignment safe: no two
// simultaneously-live values share storage, every slot fits its values, and
// in-place writes happen only where element i of the output depends on
// element i of the input alone.

// interval is a value's live range in node indices: [def, last]. last is
// def itself for values nothing reads, and len(nodes) for the output (which
// must survive the whole run).
type interval struct{ def, last int }

func (iv interval) overlaps(other interval) bool {
	return iv.def <= other.last && other.def <= iv.last
}

// checkBuffers verifies the buffer plan b against program p.
func checkBuffers(p *ProgramIR, b *BufferFacts) []Diagnostic {
	var diags []Diagnostic
	if len(b.Assign) != len(p.Values) || len(b.InPlace) != len(p.Nodes) {
		return []Diagnostic{{
			Rule: RuleBufferAlias,
			Msg: fmt.Sprintf("plan shape mismatch: %d assignments for %d values, %d in-place marks for %d nodes",
				len(b.Assign), len(p.Values), len(b.InPlace), len(p.Nodes)),
			Hint: "the plan must cover exactly the compiled program",
		}}
	}

	// Recompute live intervals. Constants own their recorded storage and are
	// exempt from the plan.
	ivs := make([]interval, len(p.Values))
	for v := range ivs {
		ivs[v] = interval{def: -1, last: -1}
	}
	for i := range p.Nodes {
		n := &p.Nodes[i]
		if n.Kind != KindConst && n.Out >= 0 && n.Out < len(p.Values) {
			ivs[n.Out].def = i
		}
		for _, v := range [2]int{n.X, n.Y} {
			if v != NoValue && v >= 0 && v < len(p.Values) && !p.Values[v].Const {
				ivs[v].last = i
			}
		}
	}
	if p.Output >= 0 && p.Output < len(p.Values) {
		ivs[p.Output].last = len(p.Nodes)
	}
	for v := range ivs {
		if ivs[v].last < ivs[v].def {
			ivs[v].last = ivs[v].def // written but never read: live at def only
		}
	}

	// Per-value checks: every planned value needs a slot, and the slot must
	// fit the value's footprint on this graph.
	planned := func(v int) bool {
		return ivs[v].def >= 0 && !p.Values[v].Const
	}
	bySlot := make(map[int][]int)
	for v := range p.Values {
		if !planned(v) {
			continue
		}
		s := b.Assign[v]
		if s < 0 || s >= len(b.SlotFloats) {
			diags = append(diags, Diagnostic{
				Rule: RuleBufferAlias, Values: []int{v},
				Msg:  fmt.Sprintf("live value %d has no arena slot (assigned %d of %d)", v, s, len(b.SlotFloats)),
				Hint: "every non-constant defined value needs storage",
			})
			continue
		}
		rows := b.NumVertices
		if p.Values[v].Rows == EdgeRows {
			rows = b.NumEdges
		}
		if need := rows * p.Values[v].Cols; need > b.SlotFloats[s] {
			diags = append(diags, Diagnostic{
				Rule: RuleBufferCapacity, Values: []int{v},
				Msg:  fmt.Sprintf("value %d needs %d floats but slot %d holds %d", v, need, s, b.SlotFloats[s]),
				Hint: "slot capacity must cover the largest hosted value",
			})
		}
		bySlot[s] = append(bySlot[s], v)
	}

	// In-place claims: a node may write into its X operand's slot only when
	// it is elementwise, X dies at the node, X and Y differ, and the slots
	// actually coincide (a stale mark makes Run skip the operand copy).
	inPlacePair := make(map[[2]int]bool) // {x, out} pairs excused below
	for i := range p.Nodes {
		if !b.InPlace[i] {
			continue
		}
		n := &p.Nodes[i]
		bad := func(msg string) {
			diags = append(diags, Diagnostic{
				Rule: RuleInPlace, Node: n.Name, Values: []int{n.Out},
				Msg:  msg,
				Hint: "in-place writes need an elementwise node over a dying operand",
			})
		}
		switch {
		case !n.Kind.Elementwise():
			bad(fmt.Sprintf("%s node marked in-place; only elementwise nodes may alias their operand", n.Kind))
		case n.X == NoValue || n.X == n.Y:
			bad("in-place node lacks a distinct X operand")
		case b.Assign[n.X] != b.Assign[n.Out]:
			bad(fmt.Sprintf("in-place node's operand (slot %d) and output (slot %d) do not share storage", b.Assign[n.X], b.Assign[n.Out]))
		case ivs[n.X].last != i:
			bad(fmt.Sprintf("in-place node overwrites value %d which is still read at node %d", n.X, ivs[n.X].last))
		default:
			inPlacePair[[2]int{n.X, n.Out}] = true
		}
	}

	// Alias rule: two values sharing a slot must have disjoint live
	// intervals, except the verified in-place pairs (which overlap at
	// exactly their defining node, by construction element-safe).
	for s, vals := range bySlot {
		for i := 0; i < len(vals); i++ {
			for j := i + 1; j < len(vals); j++ {
				a, c := vals[i], vals[j]
				if !ivs[a].overlaps(ivs[c]) {
					continue
				}
				if inPlacePair[[2]int{a, c}] || inPlacePair[[2]int{c, a}] {
					continue
				}
				diags = append(diags, Diagnostic{
					Rule: RuleBufferAlias, Values: []int{a, c},
					Msg: fmt.Sprintf("values %d (live [%d,%d]) and %d (live [%d,%d]) share slot %d while both live",
						a, ivs[a].def, ivs[a].last, c, ivs[c].def, ivs[c].last, s),
					Hint: "overlapping live ranges need distinct slots",
				})
			}
		}
	}
	return diags
}
