package analysis

import (
	"errors"
	"testing"

	"repro/internal/ops"
	"repro/internal/tensor"
)

// Hand-built IR fixtures. Each test corrupts one aspect of a known-legal
// program and asserts the matching rule — and only that rule — fires.

// aggrSum is the canonical fused aggregation copy_lhs->sum->Dst_V.
var aggrSum = ops.OpInfo{Name: "aggr_sum", EdgeOp: ops.CopyLHS, GatherOp: ops.GatherSum,
	AKind: tensor.SrcV, BKind: tensor.Null, CKind: tensor.DstV}

// legalPost is a minimal legal compiled program: input -> fused aggregation.
func legalPost() *ProgramIR {
	return &ProgramIR{
		Values: []IRValue{
			{Rows: VertexRows, Cols: 4},
			{Rows: VertexRows, Cols: 4},
		},
		Nodes: []IRNode{
			{Name: "input", Kind: KindInput, X: NoValue, Y: NoValue, Out: 0},
			{Name: "aggr", Kind: KindGraph, X: 0, Y: NoValue, Out: 1, Op: aggrSum},
		},
		Input: 0, Output: 1,
	}
}

// wantRule asserts err is a *VerifyError containing rule.
func wantRule(t *testing.T, err error, rule string) {
	t.Helper()
	if err == nil {
		t.Fatalf("want %s violation, verifier was silent", rule)
	}
	var ve *VerifyError
	if !errors.As(err, &ve) {
		t.Fatalf("want *VerifyError, got %T: %v", err, err)
	}
	if !ve.HasRule(rule) {
		t.Fatalf("want rule %s, got: %v", rule, ve.Diags)
	}
}

func TestVerifyProgramLegal(t *testing.T) {
	if err := VerifyProgram(ProgramCheck{Post: legalPost()}); err != nil {
		t.Fatalf("legal program rejected: %v", err)
	}
}

func TestSSAFormRules(t *testing.T) {
	t.Run("operand out of range", func(t *testing.T) {
		p := legalPost()
		p.Nodes[1].X = 99
		wantRule(t, VerifyProgram(ProgramCheck{Post: p}), RuleSSAForm)
	})
	t.Run("read before definition", func(t *testing.T) {
		p := legalPost()
		p.Nodes[0], p.Nodes[1] = p.Nodes[1], p.Nodes[0]
		wantRule(t, VerifyProgram(ProgramCheck{Post: p}), RuleSSAForm)
	})
	t.Run("double definition", func(t *testing.T) {
		p := legalPost()
		p.Nodes[1].Out = 0
		wantRule(t, VerifyProgram(ProgramCheck{Post: p}), RuleSSAForm)
	})
	t.Run("undefined output boundary", func(t *testing.T) {
		p := legalPost()
		p.Output = 5
		wantRule(t, VerifyProgram(ProgramCheck{Post: p}), RuleSSAForm)
	})
}

func TestOperandTypeRules(t *testing.T) {
	t.Run("reducing gather with edge output", func(t *testing.T) {
		p := legalPost()
		p.Nodes[1].Op.CKind = tensor.EdgeK
		p.Values[1].Rows = EdgeRows
		wantRule(t, VerifyProgram(ProgramCheck{Post: p}), RuleOperandType)
	})
	t.Run("output kind not addressable", func(t *testing.T) {
		p := legalPost()
		p.Nodes[1].Op.CKind = tensor.SrcV
		wantRule(t, VerifyProgram(ProgramCheck{Post: p}), RuleOperandType)
	})
	t.Run("binary op missing operand", func(t *testing.T) {
		p := legalPost()
		p.Nodes[1].Op.EdgeOp = ops.EdgeMul // binary, but BKind stays Null
		wantRule(t, VerifyProgram(ProgramCheck{Post: p}), RuleOperandType)
	})
	t.Run("operand row class mismatch", func(t *testing.T) {
		p := legalPost()
		p.Values[0].Rows = EdgeRows // SrcV operand bound to an edge tensor
		wantRule(t, VerifyProgram(ProgramCheck{Post: p}), RuleOperandType)
	})
	t.Run("operand width does not broadcast", func(t *testing.T) {
		p := legalPost()
		p.Values[0].Cols = 3 // neither 4 (output width) nor 1
		wantRule(t, VerifyProgram(ProgramCheck{Post: p}), RuleOperandType)
	})
	t.Run("width one broadcasts", func(t *testing.T) {
		p := &ProgramIR{
			Values: []IRValue{
				{Rows: VertexRows, Cols: 4},
				{Rows: EdgeRows, Cols: 1}, // scalar edge weights
				{Rows: VertexRows, Cols: 4},
			},
			Nodes: []IRNode{
				{Name: "input", Kind: KindInput, X: NoValue, Y: NoValue, Out: 0},
				{Name: "weights", Kind: KindConst, X: NoValue, Y: NoValue, Out: 1},
				{Name: "waggr", Kind: KindGraph, X: 0, Y: 1, Out: 2, Op: ops.WeightedAggrSum},
			},
			Input: 0, Output: 2,
		}
		if err := VerifyProgram(ProgramCheck{Post: p}); err != nil {
			t.Fatalf("broadcast operand rejected: %v", err)
		}
	})
}

// fusionPre is the recorded two-kernel form: input -> materialise copy_u
// (edge intermediate) -> scatter copy_e.sum (vertex output).
func fusionPre() *ProgramIR {
	return &ProgramIR{
		Values: []IRValue{
			{Rows: VertexRows, Cols: 4},
			{Rows: EdgeRows, Cols: 4},
			{Rows: VertexRows, Cols: 4},
		},
		Nodes: []IRNode{
			{Name: "input", Kind: KindInput, X: NoValue, Y: NoValue, Out: 0},
			{Name: "mat", Kind: KindGraph, X: 0, Y: NoValue, Out: 1, Op: ops.CopyU},
			{Name: "scat", Kind: KindGraph, X: NoValue, Y: 1, Out: 2, Op: ops.CopyESum},
		},
		Input: 0, Output: 2,
	}
}

// fusionPost is the legally fused form of fusionPre.
func fusionPost() *ProgramIR {
	return &ProgramIR{
		Values: []IRValue{
			{Rows: VertexRows, Cols: 4},
			{Rows: EdgeRows, Cols: 4}, // dead after fusion but still in the table
			{Rows: VertexRows, Cols: 4},
		},
		Nodes: []IRNode{
			{Name: "input", Kind: KindInput, X: NoValue, Y: NoValue, Out: 0},
			{Name: "fused", Kind: KindGraph, X: 0, Y: NoValue, Out: 2, Fused: true,
				Op: ops.OpInfo{EdgeOp: ops.CopyLHS, GatherOp: ops.GatherSum,
					AKind: tensor.SrcV, BKind: tensor.Null, CKind: tensor.DstV}},
		},
		Input: 0, Output: 2,
	}
}

func TestFusionRules(t *testing.T) {
	t.Run("legal fusion", func(t *testing.T) {
		if err := VerifyProgram(ProgramCheck{Pre: fusionPre(), Post: fusionPost()}); err != nil {
			t.Fatalf("legal fusion rejected: %v", err)
		}
	})
	t.Run("lost fusion marker", func(t *testing.T) {
		post := fusionPost()
		post.Nodes[1].Fused = false // now claims to be the recorded scatter, but differs
		wantRule(t, VerifyProgram(ProgramCheck{Pre: fusionPre(), Post: post}), RuleFusionPair)
	})
	t.Run("wrong merged operator", func(t *testing.T) {
		post := fusionPost()
		post.Nodes[1].Op.GatherOp = ops.GatherMax // scatter reduced by sum
		wantRule(t, VerifyProgram(ProgramCheck{Pre: fusionPre(), Post: post}), RuleFusionPair)
	})
	t.Run("multi-consumer intermediate", func(t *testing.T) {
		pre := fusionPre()
		// A second reader of the |E| x F intermediate makes the merge illegal.
		pre.Values = append(pre.Values, IRValue{Rows: VertexRows, Cols: 4})
		pre.Nodes = append(pre.Nodes, IRNode{
			Name: "scat2", Kind: KindGraph, X: NoValue, Y: 1, Out: 3, Op: ops.CopyESum})
		post := fusionPost()
		post.Values = append(post.Values, IRValue{Rows: VertexRows, Cols: 4})
		wantRule(t, VerifyProgram(ProgramCheck{Pre: pre, Post: post}), RuleFusionSingleConsumer)
	})
	t.Run("intermediate is program output", func(t *testing.T) {
		pre := fusionPre()
		pre.Output = 1
		post := fusionPost()
		wantRule(t, VerifyProgram(ProgramCheck{Pre: pre, Post: post}), RuleFusionSingleConsumer)
	})
	t.Run("live node dropped", func(t *testing.T) {
		pre := fusionPre()
		post := fusionPost()
		post.Nodes = post.Nodes[:1] // drop the fused node: scatter+mat now unaccounted
		post.Output = 0
		wantRule(t, VerifyProgram(ProgramCheck{Pre: pre, Post: post}), RuleDCESoundness)
	})
	t.Run("invented value", func(t *testing.T) {
		pre := fusionPre()
		post := fusionPost()
		post.Values = append(post.Values, IRValue{Rows: VertexRows, Cols: 4})
		post.Nodes = append(post.Nodes, IRNode{
			Name: "ghost", Kind: KindUnary, X: 2, Y: NoValue, Out: 3})
		wantRule(t, VerifyProgram(ProgramCheck{Pre: pre, Post: post}), RuleDCESoundness)
	})
}

// regionPre is the recorded four-kernel form behind a fused region with an
// epilogue: input -> materialise copy_u -> scatter copy_e.sum -> relu.
func regionPre() *ProgramIR {
	return &ProgramIR{
		Values: []IRValue{
			{Rows: VertexRows, Cols: 4},
			{Rows: EdgeRows, Cols: 4},
			{Rows: VertexRows, Cols: 4},
			{Rows: VertexRows, Cols: 4},
		},
		Nodes: []IRNode{
			{Name: "input", Kind: KindInput, X: NoValue, Y: NoValue, Out: 0},
			{Name: "mat", Kind: KindGraph, X: 0, Y: NoValue, Out: 1, Op: ops.CopyU},
			{Name: "scat", Kind: KindGraph, X: NoValue, Y: 1, Out: 2, Op: ops.CopyESum},
			{Name: "relu", Kind: KindUnary, X: 2, Y: NoValue, Out: 3, Chain: []Elem{{Kind: 1}}},
		},
		Input: 0, Output: 3,
	}
}

// regionPost is the legally regioned form of regionPre: one graph node that
// merges the pair and absorbs the relu epilogue.
func regionPost() *ProgramIR {
	return &ProgramIR{
		Values: []IRValue{
			{Rows: VertexRows, Cols: 4},
			{Rows: EdgeRows, Cols: 4},   // dead after fusion
			{Rows: VertexRows, Cols: 4}, // dead after absorption
			{Rows: VertexRows, Cols: 4},
		},
		Nodes: []IRNode{
			{Name: "input", Kind: KindInput, X: NoValue, Y: NoValue, Out: 0},
			{Name: "aggr_region0", Kind: KindGraph, X: 0, Y: NoValue, Out: 3, Fused: true,
				Op: ops.OpInfo{EdgeOp: ops.CopyLHS, GatherOp: ops.GatherSum,
					AKind: tensor.SrcV, BKind: tensor.Null, CKind: tensor.DstV},
				HasRegion: true, Post: []Elem{{Kind: 1}}, RegionSavedBytes: 960},
		},
		Input: 0, Output: 3,
	}
}

func TestFusionRegionRules(t *testing.T) {
	sizes := func(c ProgramCheck) ProgramCheck { c.NumVertices, c.NumEdges = 10, 30; return c }
	t.Run("legal region with epilogue", func(t *testing.T) {
		err := VerifyProgram(sizes(ProgramCheck{Pre: regionPre(), Post: regionPost()}))
		if err != nil {
			t.Fatalf("legal region rejected: %v", err)
		}
	})
	t.Run("legal pair-degenerate region", func(t *testing.T) {
		// A bare fused pair carrying region metadata (the trivial region).
		pre := fusionPre()
		post := fusionPost()
		post.Nodes[1].HasRegion = true
		post.Nodes[1].RegionSavedBytes = 960
		if err := VerifyProgram(sizes(ProgramCheck{Pre: pre, Post: post})); err != nil {
			t.Fatalf("pair-degenerate region rejected: %v", err)
		}
	})
	t.Run("post chain mismatch", func(t *testing.T) {
		post := regionPost()
		post.Nodes[1].Post = []Elem{{Kind: 9}} // not what the recorded relu computes
		wantRule(t, VerifyProgram(sizes(ProgramCheck{Pre: regionPre(), Post: post})), RuleFusionRegion)
	})
	t.Run("phantom extra post element", func(t *testing.T) {
		post := regionPost()
		post.Nodes[1].Post = append(post.Nodes[1].Post, Elem{Kind: 1})
		wantRule(t, VerifyProgram(sizes(ProgramCheck{Pre: regionPre(), Post: post})), RuleFusionRegion)
	})
	t.Run("multi-consumer interior", func(t *testing.T) {
		pre := regionPre()
		// A second reader of the scatter output makes absorbing the relu illegal.
		pre.Values = append(pre.Values, IRValue{Rows: VertexRows, Cols: 4})
		pre.Nodes = append(pre.Nodes, IRNode{
			Name: "relu2", Kind: KindUnary, X: 2, Y: NoValue, Out: 4, Chain: []Elem{{Kind: 1}}})
		post := regionPost()
		post.Values = append(post.Values, IRValue{Rows: VertexRows, Cols: 4})
		wantRule(t, VerifyProgram(sizes(ProgramCheck{Pre: pre, Post: post})), RuleFusionRegion)
	})
	t.Run("interior is program output", func(t *testing.T) {
		pre := regionPre()
		pre.Output = 2 // the scatter output must stay materialised
		post := regionPost()
		post.Output = 2
		wantRule(t, VerifyProgram(sizes(ProgramCheck{Pre: pre, Post: post})), RuleFusionRegion)
	})
	t.Run("negative claimed savings", func(t *testing.T) {
		post := regionPost()
		post.Nodes[1].RegionSavedBytes = -1
		wantRule(t, VerifyProgram(sizes(ProgramCheck{Pre: regionPre(), Post: post})), RuleFusionRegionCost)
	})
	t.Run("inflated claimed savings", func(t *testing.T) {
		post := regionPost()
		post.Nodes[1].RegionSavedBytes = 1 << 50
		wantRule(t, VerifyProgram(sizes(ProgramCheck{Pre: regionPre(), Post: post})), RuleFusionRegionCost)
	})
	t.Run("cost bound skipped without graph sizes", func(t *testing.T) {
		post := regionPost()
		post.Nodes[1].RegionSavedBytes = 1 << 50
		if err := VerifyProgram(ProgramCheck{Pre: regionPre(), Post: post}); err != nil {
			t.Fatalf("sizeless check should skip the bound: %v", err)
		}
	})
	t.Run("unfused region over a plain graph base", func(t *testing.T) {
		// input -> aggr -> relu absorbed as aggr+epilogue without pair fusion.
		pre := &ProgramIR{
			Values: []IRValue{
				{Rows: VertexRows, Cols: 4},
				{Rows: VertexRows, Cols: 4},
				{Rows: VertexRows, Cols: 4},
			},
			Nodes: []IRNode{
				{Name: "input", Kind: KindInput, X: NoValue, Y: NoValue, Out: 0},
				{Name: "aggr", Kind: KindGraph, X: 0, Y: NoValue, Out: 1, Op: aggrSum},
				{Name: "relu", Kind: KindUnary, X: 1, Y: NoValue, Out: 2, Chain: []Elem{{Kind: 1}}},
			},
			Input: 0, Output: 2,
		}
		post := &ProgramIR{
			Values: []IRValue{
				{Rows: VertexRows, Cols: 4},
				{Rows: VertexRows, Cols: 4},
				{Rows: VertexRows, Cols: 4},
			},
			Nodes: []IRNode{
				{Name: "input", Kind: KindInput, X: NoValue, Y: NoValue, Out: 0},
				{Name: "aggr_region0", Kind: KindGraph, X: 0, Y: NoValue, Out: 2, Op: aggrSum,
					HasRegion: true, Post: []Elem{{Kind: 1}}, RegionSavedBytes: 320},
			},
			Input: 0, Output: 2,
		}
		if err := VerifyProgram(sizes(ProgramCheck{Pre: pre, Post: post})); err != nil {
			t.Fatalf("legal unfused region rejected: %v", err)
		}
		// Corrupting the base operator must fire the region rule.
		bad := post.Nodes[1]
		bad.Op.GatherOp = ops.GatherMax
		post.Nodes[1] = bad
		wantRule(t, VerifyProgram(sizes(ProgramCheck{Pre: pre, Post: post})), RuleFusionRegion)
	})
	t.Run("prologue region stages an absorbed operand chain", func(t *testing.T) {
		// input -> relu -> materialise -> scatter, with the relu staged into
		// the region's A operand read.
		pre := &ProgramIR{
			Values: []IRValue{
				{Rows: VertexRows, Cols: 4},
				{Rows: VertexRows, Cols: 4},
				{Rows: EdgeRows, Cols: 4},
				{Rows: VertexRows, Cols: 4},
			},
			Nodes: []IRNode{
				{Name: "input", Kind: KindInput, X: NoValue, Y: NoValue, Out: 0},
				{Name: "relu", Kind: KindUnary, X: 0, Y: NoValue, Out: 1, Chain: []Elem{{Kind: 1}}},
				{Name: "mat", Kind: KindGraph, X: 1, Y: NoValue, Out: 2, Op: ops.CopyU},
				{Name: "scat", Kind: KindGraph, X: NoValue, Y: 2, Out: 3, Op: ops.CopyESum},
			},
			Input: 0, Output: 3,
		}
		post := &ProgramIR{
			Values: []IRValue{
				{Rows: VertexRows, Cols: 4},
				{Rows: VertexRows, Cols: 4},
				{Rows: EdgeRows, Cols: 4},
				{Rows: VertexRows, Cols: 4},
			},
			Nodes: []IRNode{
				{Name: "input", Kind: KindInput, X: NoValue, Y: NoValue, Out: 0},
				{Name: "aggr_region0", Kind: KindGraph, X: 0, Y: NoValue, Out: 3, Fused: true,
					Op: ops.OpInfo{EdgeOp: ops.CopyLHS, GatherOp: ops.GatherSum,
						AKind: tensor.SrcV, BKind: tensor.Null, CKind: tensor.DstV},
					HasRegion: true, PreX: []Elem{{Kind: 1}}, RegionSavedBytes: 100},
			},
			Input: 0, Output: 3,
		}
		if err := VerifyProgram(sizes(ProgramCheck{Pre: pre, Post: post})); err != nil {
			t.Fatalf("legal prologue region rejected: %v", err)
		}
		// The chain must land exactly on the region's operand.
		bad := post.Nodes[1]
		bad.PreX = nil
		post.Nodes[1] = bad
		wantRule(t, VerifyProgram(sizes(ProgramCheck{Pre: pre, Post: post})), RuleFusionRegion)
	})
}

// bufferProgram is an elementwise chain input -> relu -> relu whose plan the
// buffer tests corrupt: values 0,1,2 all vertex-rows, 4 columns.
func bufferProgram() *ProgramIR {
	return &ProgramIR{
		Values: []IRValue{
			{Rows: VertexRows, Cols: 4},
			{Rows: VertexRows, Cols: 4},
			{Rows: VertexRows, Cols: 4},
		},
		Nodes: []IRNode{
			{Name: "input", Kind: KindInput, X: NoValue, Y: NoValue, Out: 0},
			{Name: "relu1", Kind: KindUnary, X: 0, Y: NoValue, Out: 1},
			{Name: "relu2", Kind: KindUnary, X: 1, Y: NoValue, Out: 2},
		},
		Input: 0, Output: 2,
	}
}

func bufferPlan() *BufferFacts {
	const v = 10
	return &BufferFacts{
		Assign:      []int{0, 1, 0}, // v0 [0,1] and v2 [2,3] share slot 0 disjointly
		InPlace:     []bool{false, false, false},
		SlotFloats:  []int{v * 4, v * 4},
		NumVertices: v, NumEdges: 30,
	}
}

func TestBufferRules(t *testing.T) {
	t.Run("legal plan", func(t *testing.T) {
		if err := VerifyProgram(ProgramCheck{Post: bufferProgram(), Plan: bufferPlan()}); err != nil {
			t.Fatalf("legal plan rejected: %v", err)
		}
	})
	t.Run("overlapping values share a slot", func(t *testing.T) {
		plan := bufferPlan()
		plan.Assign = []int{0, 0, 1} // v0 [0,1] and v1 [1,2] overlap on slot 0
		wantRule(t, VerifyProgram(ProgramCheck{Post: bufferProgram(), Plan: plan}), RuleBufferAlias)
	})
	t.Run("live value without slot", func(t *testing.T) {
		plan := bufferPlan()
		plan.Assign[1] = NoSlot
		wantRule(t, VerifyProgram(ProgramCheck{Post: bufferProgram(), Plan: plan}), RuleBufferAlias)
	})
	t.Run("slot too small", func(t *testing.T) {
		plan := bufferPlan()
		plan.SlotFloats[1] = 4 // value 1 needs 10*4 floats
		wantRule(t, VerifyProgram(ProgramCheck{Post: bufferProgram(), Plan: plan}), RuleBufferCapacity)
	})
	t.Run("legal in-place chain", func(t *testing.T) {
		plan := bufferPlan()
		plan.Assign = []int{0, 1, 1}
		plan.InPlace = []bool{false, false, true} // relu2 overwrites v1 as it dies
		if err := VerifyProgram(ProgramCheck{Post: bufferProgram(), Plan: plan}); err != nil {
			t.Fatalf("legal in-place plan rejected: %v", err)
		}
	})
	t.Run("in-place on non-elementwise node", func(t *testing.T) {
		p := bufferProgram()
		p.Nodes[2].Kind = KindOther
		plan := bufferPlan()
		plan.Assign = []int{0, 1, 1}
		plan.InPlace = []bool{false, false, true}
		wantRule(t, VerifyProgram(ProgramCheck{Post: p, Plan: plan}), RuleInPlace)
	})
	t.Run("in-place without shared storage", func(t *testing.T) {
		plan := bufferPlan()
		plan.InPlace = []bool{false, false, true} // claims aliasing, slots differ
		wantRule(t, VerifyProgram(ProgramCheck{Post: bufferProgram(), Plan: plan}), RuleInPlace)
	})
	t.Run("in-place over still-live operand", func(t *testing.T) {
		p := bufferProgram()
		// A second reader keeps v1 alive past relu2.
		p.Values = append(p.Values, IRValue{Rows: VertexRows, Cols: 4})
		p.Nodes = append(p.Nodes, IRNode{Name: "relu3", Kind: KindUnary, X: 1, Y: NoValue, Out: 3})
		plan := bufferPlan()
		plan.Assign = []int{0, 1, 1, 2}
		plan.InPlace = []bool{false, false, true, false}
		plan.SlotFloats = []int{40, 40, 40}
		wantRule(t, VerifyProgram(ProgramCheck{Post: p, Plan: plan}), RuleInPlace)
	})
}

func TestVerifyPlan(t *testing.T) {
	t.Run("vertex-parallel aggregation needs no atomics", func(t *testing.T) {
		err := VerifyPlan(PlanFacts{Op: aggrSum, Schedule: "TV", VertexParallel: true, NeedsAtomic: false})
		if err != nil {
			t.Fatalf("legal plan rejected: %v", err)
		}
	})
	t.Run("edge-parallel aggregation needs atomics", func(t *testing.T) {
		err := VerifyPlan(PlanFacts{Op: aggrSum, Schedule: "TE", VertexParallel: false, NeedsAtomic: true})
		if err != nil {
			t.Fatalf("legal plan rejected: %v", err)
		}
	})
	t.Run("missing atomic bit", func(t *testing.T) {
		err := VerifyPlan(PlanFacts{Op: aggrSum, Schedule: "TE", VertexParallel: false, NeedsAtomic: false})
		wantRule(t, err, RuleWriteConflict)
	})
	t.Run("spurious atomic bit", func(t *testing.T) {
		err := VerifyPlan(PlanFacts{Op: aggrSum, Schedule: "TV", VertexParallel: true, NeedsAtomic: true})
		wantRule(t, err, RuleWriteConflict)
	})
	t.Run("illegal descriptor", func(t *testing.T) {
		op := aggrSum
		op.CKind = tensor.SrcV
		err := VerifyPlan(PlanFacts{Op: op, Schedule: "TV", VertexParallel: true, NeedsAtomic: false})
		wantRule(t, err, RuleOperandType)
	})
}

func TestVerifyLowering(t *testing.T) {
	cases := []struct {
		name     string
		op       ops.OpInfo
		vp       bool
		handling string
		ok       bool
	}{
		{"sequential always safe", aggrSum, false, ConflictSequential, true},
		{"per-edge-rows for edge output", ops.CopyU, false, ConflictPerEdgeRows, true},
		{"per-edge-rows for vertex output races", aggrSum, false, ConflictPerEdgeRows, false},
		{"owner-per-row under vertex-parallel", aggrSum, true, ConflictOwnerPerRow, true},
		{"owner-per-row under edge-parallel races", aggrSum, false, ConflictOwnerPerRow, false},
		{"private partials for aggregation", aggrSum, false, ConflictPrivatePartials, true},
		{"atomic for aggregation", aggrSum, false, ConflictAtomic, true},
		{"unknown discipline rejected", aggrSum, false, "wishful-thinking", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := VerifyLowering(PlanFacts{Op: tc.op, Schedule: "s", VertexParallel: tc.vp}, tc.handling)
			if tc.ok && err != nil {
				t.Fatalf("safe lowering rejected: %v", err)
			}
			if !tc.ok {
				wantRule(t, err, RuleWriteConflict)
			}
		})
	}
}

func TestStatsCount(t *testing.T) {
	before := Stats()
	if err := VerifyProgram(ProgramCheck{Post: legalPost()}); err != nil {
		t.Fatal(err)
	}
	p := legalPost()
	p.Nodes[1].X = 99
	if err := VerifyProgram(ProgramCheck{Post: p}); err == nil {
		t.Fatal("corrupted program verified")
	}
	after := Stats()
	if after.Programs-before.Programs != 2 {
		t.Errorf("programs counter moved by %d, want 2", after.Programs-before.Programs)
	}
	if after.Violations <= before.Violations {
		t.Errorf("violations counter did not move")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Rule: RuleBufferAlias, Node: "relu", Msg: "overlap", Hint: "split slots"}
	if got, want := d.String(), "buffer-alias: relu: overlap (split slots)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	e := &VerifyError{Diags: []Diagnostic{d}}
	if !e.HasRule(RuleBufferAlias) || e.HasRule(RuleInPlace) {
		t.Errorf("HasRule misreports")
	}
}
