package analysis

import (
	"fmt"

	"repro/internal/ops"
	"repro/internal/tensor"
)

// SSA-form and operand-type rules. The Table-4 legality conditions are
// restated here from the paper, independently of ops.OpInfo.Validate, so a
// bug in the ops-layer validation cannot hide from the verifier.

// checkSSA verifies the DAG's well-formedness: every operand reference in
// range, every value defined at most once, every read after its definition,
// and the program boundaries defined.
func checkSSA(p *ProgramIR) []Diagnostic {
	var diags []Diagnostic
	def := make([]int, len(p.Values))
	for i := range def {
		def[i] = -1
	}
	inRange := func(v int) bool { return v >= 0 && v < len(p.Values) }
	for i := range p.Nodes {
		n := &p.Nodes[i]
		for _, v := range [2]int{n.X, n.Y} {
			if v == NoValue {
				continue
			}
			if !inRange(v) {
				diags = append(diags, Diagnostic{
					Rule: RuleSSAForm, Node: n.Name, Values: []int{v},
					Msg:  fmt.Sprintf("operand references value %d outside the value table (len %d)", v, len(p.Values)),
					Hint: "node operands must name recorded values",
				})
				continue
			}
			if def[v] < 0 {
				diags = append(diags, Diagnostic{
					Rule: RuleSSAForm, Node: n.Name, Values: []int{v},
					Msg:  fmt.Sprintf("value %d read at node %d before any definition", v, i),
					Hint: "nodes must stay in topological order",
				})
			}
		}
		if !inRange(n.Out) {
			diags = append(diags, Diagnostic{
				Rule: RuleSSAForm, Node: n.Name, Values: []int{n.Out},
				Msg:  fmt.Sprintf("node defines value %d outside the value table (len %d)", n.Out, len(p.Values)),
				Hint: "node outputs must name recorded values",
			})
			continue
		}
		if def[n.Out] >= 0 {
			diags = append(diags, Diagnostic{
				Rule: RuleSSAForm, Node: n.Name, Values: []int{n.Out},
				Msg:  fmt.Sprintf("value %d defined twice (nodes %d and %d)", n.Out, def[n.Out], i),
				Hint: "SSA values have exactly one definition",
			})
			continue
		}
		def[n.Out] = i
	}
	for _, b := range [2]struct {
		what string
		v    int
	}{{"input", p.Input}, {"output", p.Output}} {
		if !inRange(b.v) || def[b.v] < 0 {
			diags = append(diags, Diagnostic{
				Rule: RuleSSAForm, Values: []int{b.v},
				Msg:  fmt.Sprintf("program %s value %d has no defining node", b.what, b.v),
				Hint: "programs must define their boundary values",
			})
		}
	}
	return diags
}

// rowsForKind is the addressing rule: Src_V/Dst_V operands read vertex
// tensors, Edge operands read edge tensors.
func rowsForKind(k tensor.Kind) Rows {
	if k == tensor.EdgeK {
		return EdgeRows
	}
	return VertexRows
}

// checkOperandTypes re-derives the Table-4 legality of every graph operator
// and checks each bound operand against its declared addressing kind.
func checkOperandTypes(p *ProgramIR) []Diagnostic {
	var diags []Diagnostic
	for i := range p.Nodes {
		n := &p.Nodes[i]
		if n.Kind != KindGraph {
			continue
		}
		diags = append(diags, checkGraphOp(p, n)...)
	}
	return diags
}

// checkGraphOp checks one graph operator node.
func checkGraphOp(p *ProgramIR, n *IRNode) []Diagnostic {
	var diags []Diagnostic
	bad := func(values []int, msg, hint string) {
		diags = append(diags, Diagnostic{Rule: RuleOperandType, Node: n.Name, Values: values, Msg: msg, Hint: hint})
	}
	op := n.Op

	// Output-kind rules (Table 4): message creation writes an edge tensor
	// with no reduction; aggregation reduces into a Dst_V tensor. Src_V and
	// Null outputs are never legal.
	switch op.CKind {
	case tensor.EdgeK:
		if op.GatherOp.IsReduction() {
			bad(nil, fmt.Sprintf("edge-tensor output with reducing gather %s", op.GatherOp),
				"message creation must not reduce; use a Dst_V output")
		}
	case tensor.DstV:
		if !op.GatherOp.IsReduction() {
			bad(nil, fmt.Sprintf("vertex-tensor output with non-reducing gather %s", op.GatherOp),
				"aggregation needs sum/max/min/mean")
		}
	default:
		bad(nil, fmt.Sprintf("output kind %s is not addressable", op.CKind),
			"outputs must be Edge or Dst_V")
	}

	// Operand-arity rules: binary edge ops read both operands, copies read
	// exactly the copied one.
	wantA := op.EdgeOp.IsBinary() || op.EdgeOp == ops.CopyLHS
	wantB := op.EdgeOp.IsBinary() || op.EdgeOp == ops.CopyRHS || op.EdgeOp == ops.EdgeNull
	if wantA && op.AKind == tensor.Null {
		bad(nil, fmt.Sprintf("edge op %s reads operand A but its kind is Null", op.EdgeOp),
			"bind a Src_V/Dst_V/Edge tensor to A")
	}
	if !wantA && op.AKind != tensor.Null {
		bad(nil, fmt.Sprintf("edge op %s ignores operand A but its kind is %s", op.EdgeOp, op.AKind),
			"drop the unused operand")
	}
	if wantB && op.BKind == tensor.Null {
		bad(nil, fmt.Sprintf("edge op %s reads operand B but its kind is Null", op.EdgeOp),
			"bind a Src_V/Dst_V/Edge tensor to B")
	}
	if !wantB && op.BKind != tensor.Null {
		bad(nil, fmt.Sprintf("edge op %s ignores operand B but its kind is %s", op.EdgeOp, op.BKind),
			"drop the unused operand")
	}

	// Operand-binding rules: each non-Null operand must reference a value
	// whose row class matches the addressing kind, and whose width matches
	// the output width or broadcasts (width 1).
	outCols := 0
	if n.Out >= 0 && n.Out < len(p.Values) {
		ov := p.Values[n.Out]
		outCols = ov.Cols
		if want := rowsForKind(op.CKind); ov.Rows != want && op.CKind != tensor.Null {
			bad([]int{n.Out}, fmt.Sprintf("output value is %s-rows but kind %s addresses %s-rows", ov.Rows, op.CKind, want),
				"store the output in a tensor of the addressed class")
		}
	}
	checkBinding := func(what string, v int, kind tensor.Kind) {
		if kind == tensor.Null {
			if v != NoValue {
				bad([]int{v}, fmt.Sprintf("operand %s bound but kind is Null", what),
					"unbind the operand or give it a kind")
			}
			return
		}
		if v == NoValue {
			bad(nil, fmt.Sprintf("operand %s has kind %s but no bound value", what, kind),
				"bind the operand")
			return
		}
		if v < 0 || v >= len(p.Values) {
			return // ssa-form already reported
		}
		val := p.Values[v]
		if want := rowsForKind(kind); val.Rows != want {
			bad([]int{v}, fmt.Sprintf("operand %s is %s-rows but kind %s addresses %s-rows", what, val.Rows, kind, want),
				"operand row class must match its addressing kind")
		}
		if outCols > 0 && val.Cols != outCols && val.Cols != 1 {
			bad([]int{v}, fmt.Sprintf("operand %s width %d neither matches output width %d nor broadcasts", what, val.Cols, outCols),
				"operand widths must equal the feature width or be 1")
		}
	}
	checkBinding("A", n.X, op.AKind)
	checkBinding("B", n.Y, op.BKind)
	return diags
}
