package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// The source linter: a stdlib go/ast + go/types checker that mechanically
// enforces the repo invariants DESIGN.md states in prose. Three rules:
//
//   - hook-discipline: internal/core and internal/program may call into
//     telemetry/faultinject only through functions that are themselves a
//     single armed-bit load when disabled, or under an explicit
//     Enabled()/Armed() guard. Anything else would put work on the
//     disabled hot path.
//   - panic-justification: every panic() in non-test code must carry an
//     adjacent comment containing the word "invariant" explaining why the
//     condition is a bug, not an input (reachable conditions must be
//     errors).
//   - no-alloc-in-run: Run/RunCtx bodies of kernel types must not
//     lexically allocate (make/new/append, non-deferred closures) — the
//     zero-steady-state contract TestCompiledRunZeroAllocs asserts.
//   - trace-propagation: internal/core and internal/program adopt the
//     request trace from ctx (StartSpanCtx, EndCtx) but never mint or
//     attach one — NewTraceState/ContextWithTrace/MintTraceID belong to
//     the admission layer (DESIGN.md §8); a layer that mints breaks the
//     one-tree-per-request invariant and allocates on the hot path.
//   - goroutine-accounting: every `go` statement in internal/serve and
//     internal/program must be visibly tracked — a WaitGroup Add before
//     the spawn, a body that signals completion via a deferred Done() or
//     by closing a channel — or carry an explicit allow directive. An
//     unaccounted goroutine is a leak the drain/cancellation machinery
//     cannot see.
//
// Exemptions are explicit: `//lint:allow <rule> -- <reason>` on the
// offending line or the line above. A directive without a reason is itself
// a finding, so every suppression is justified in place.

// Lint rule identifiers.
const (
	LintHookDiscipline      = "hook-discipline"
	LintPanicJustification  = "panic-justification"
	LintNoAllocInRun        = "no-alloc-in-run"
	LintTracePropagation    = "trace-propagation"
	LintGoroutineAccounting = "goroutine-accounting"
	LintDirective           = "lint-directive"
)

// LintRules lists the linter's rules.
var LintRules = []string{LintHookDiscipline, LintPanicJustification, LintNoAllocInRun, LintTracePropagation, LintGoroutineAccounting, LintDirective}

// Finding is one linter hit.
type Finding struct {
	// File and Line locate the finding.
	File string
	Line int
	// Rule is the violated rule id.
	Rule string
	// Msg states the violation and the fix.
	Msg string
}

// String renders "file:line: rule: msg".
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.File, f.Line, f.Rule, f.Msg)
}

// hookPackages are the packages whose call sites hook-discipline audits,
// mapping import path to the functions that are safe to call unguarded
// (each is a single atomic load while disabled).
var hookPackages = map[string]map[string]bool{
	"repro/internal/telemetry": {
		"Enabled":              true,
		"StartSpan":            true,
		"StartSpanCtx":         true,
		"StartTraceSpan":       true,
		"TraceOf":              true,
		"RecordSpan":           true,
		"FlowLink":             true,
		"RecordScheduleChoice": true,
		"CountProgramRun":      true,
		"CountTrainerEpoch":    true,
	},
	"repro/internal/faultinject": {
		"Enabled":    true,
		"Armed":      true,
		"Fire":       true,
		"Fires":      true,
		"Calls":      true,
		"SpecOf":     true,
		"MaybePanic": true,
		"MaybeSleep": true,
		"ErrIf":      true,
	},
}

// hookDisciplinedDirs are the package directories (by path suffix) whose
// hot paths the hook-discipline rule protects.
var hookDisciplinedDirs = []string{"internal/core", "internal/program"}

// goroutineScopedDirs are the package directories (by path suffix) whose go
// statements the goroutine-accounting rule audits.
var goroutineScopedDirs = []string{"internal/serve", "internal/program"}

// traceMintFuncs are the telemetry functions that create or attach a trace
// context. Only the admission layer (internal/serve) may call them; the
// hook-disciplined execution layers adopt the trace from ctx instead.
var traceMintFuncs = map[string]bool{
	"NewTraceState":    true,
	"ContextWithTrace": true,
	"MintTraceID":      true,
}

// kernelReceiver matches the receiver type names whose Run/RunCtx methods
// the no-alloc rule audits.
var kernelReceiver = regexp.MustCompile(`(?i)kernel$`)

// allowDirective parses `//lint:allow <rule> -- <reason>`.
var allowDirective = regexp.MustCompile(`^//lint:allow\s+([a-z-]+)\s*(?:--\s*(.*))?$`)

// ExpandDirs resolves lint targets: a plain path names one package
// directory; a path ending in /... walks for every directory containing
// non-test .go files. Vendor, testdata and hidden directories are skipped.
func ExpandDirs(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		root, recursive := pat, false
		if strings.HasSuffix(pat, "/...") {
			root, recursive = strings.TrimSuffix(pat, "/..."), true
		}
		if !recursive {
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || name == "vendor" || name == "testdata") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains a non-test .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// LintDirs lints every directory as one package and returns all findings,
// sorted by file and line.
func LintDirs(dirs []string) ([]Finding, error) {
	var all []Finding
	for _, d := range dirs {
		fs, err := LintDir(d)
		if err != nil {
			return nil, err
		}
		all = append(all, fs...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].File != all[j].File {
			return all[i].File < all[j].File
		}
		return all[i].Line < all[j].Line
	})
	return all, nil
}

// LintDir parses the non-test .go files of one package directory and lints
// them.
func LintDir(dir string) ([]Finding, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	return lintFiles(fset, files, dir), nil
}

// LintSource lints a single in-memory file (test hook).
func LintSource(filename, src, dir string) ([]Finding, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	return lintFiles(fset, []*ast.File{f}, dir), nil
}

// stubImporter satisfies go/types imports with empty marker packages: the
// member lookups fail (and are ignored), but qualified identifiers still
// resolve to *types.PkgName carrying the real import path, and builtins
// like panic/make/append resolve shadow-safely.
type stubImporter struct{ pkgs map[string]*types.Package }

func (im *stubImporter) Import(path string) (*types.Package, error) {
	if p, ok := im.pkgs[path]; ok {
		return p, nil
	}
	name := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		name = path[i+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	im.pkgs[path] = p
	return p, nil
}

// lintFiles runs every rule over one package's files.
func lintFiles(fset *token.FileSet, files []*ast.File, dir string) []Finding {
	info := &types.Info{Uses: make(map[*ast.Ident]types.Object)}
	conf := types.Config{
		Importer:                 &stubImporter{pkgs: make(map[string]*types.Package)},
		Error:                    func(error) {}, // stub imports cannot fully typecheck
		DisableUnusedImportCheck: true,
	}
	// The (expected) errors from stub-package member lookups are discarded;
	// Uses is still populated for package names and builtins.
	_, _ = conf.Check(dir, fset, files, info)

	hookScoped, goScoped := false, false
	cleanDir := filepath.ToSlash(filepath.Clean(dir))
	for _, suffix := range hookDisciplinedDirs {
		if strings.HasSuffix(cleanDir, suffix) {
			hookScoped = true
		}
	}
	for _, suffix := range goroutineScopedDirs {
		if strings.HasSuffix(cleanDir, suffix) {
			goScoped = true
		}
	}

	// Cross-file function index, so a `go f()` / `go h.run()` spawn can be
	// checked against its target's body wherever in the package it lives.
	pkgFuncs := make(map[string]*ast.FuncDecl)
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				pkgFuncs[fd.Name.Name] = fd
			}
		}
	}

	var findings []Finding
	for _, f := range files {
		lf := &fileLinter{fset: fset, file: f, info: info, hookScoped: hookScoped, goScoped: goScoped, pkgFuncs: pkgFuncs}
		lf.collectComments()
		lf.run()
		findings = append(findings, lf.findings...)
	}
	return findings
}

// fileLinter holds per-file lint state.
type fileLinter struct {
	fset       *token.FileSet
	file       *ast.File
	info       *types.Info
	hookScoped bool
	goScoped   bool
	// pkgFuncs indexes the package's function/method declarations by name
	// (all files), for resolving `go f()` spawn targets.
	pkgFuncs map[string]*ast.FuncDecl

	// allow maps "line:rule" to true for every //lint:allow directive
	// (covering the directive's own line and the next).
	allow map[string]bool
	// comments maps each line to the comment text ending on it.
	comments map[int]string
	findings []Finding
}

func (lf *fileLinter) posLine(p token.Pos) int { return lf.fset.Position(p).Line }

func (lf *fileLinter) report(p token.Pos, rule, msg string) {
	pos := lf.fset.Position(p)
	if lf.allow[fmt.Sprintf("%d:%s", pos.Line, rule)] {
		return
	}
	lf.findings = append(lf.findings, Finding{File: pos.Filename, Line: pos.Line, Rule: rule, Msg: msg})
}

// collectComments indexes comment lines and //lint:allow directives.
func (lf *fileLinter) collectComments() {
	lf.allow = make(map[string]bool)
	lf.comments = make(map[int]string)
	for _, cg := range lf.file.Comments {
		for _, c := range cg.List {
			line := lf.posLine(c.End())
			lf.comments[line] = c.Text
			m := allowDirective.FindStringSubmatch(strings.TrimSpace(c.Text))
			if m == nil {
				continue
			}
			rule, reason := m[1], strings.TrimSpace(m[2])
			if reason == "" {
				lf.findings = append(lf.findings, Finding{
					File: lf.fset.Position(c.Pos()).Filename, Line: lf.posLine(c.Pos()),
					Rule: LintDirective,
					Msg:  fmt.Sprintf("lint:allow %s needs a reason: write `//lint:allow %s -- <why>`", rule, rule),
				})
				continue
			}
			lf.allow[fmt.Sprintf("%d:%s", line, rule)] = true
			lf.allow[fmt.Sprintf("%d:%s", line+1, rule)] = true
		}
	}
}

// run walks the file with an explicit ancestor path.
func (lf *fileLinter) run() {
	var path []ast.Node
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil {
			return
		}
		path = append(path, n)
		lf.checkNode(n, path)
		ast.Inspect(n, func(child ast.Node) bool {
			if child == nil || child == n {
				return child == n
			}
			walk(child)
			return false
		})
		path = path[:len(path)-1]
	}
	walk(lf.file)
}

// checkNode dispatches the per-node rules.
func (lf *fileLinter) checkNode(n ast.Node, path []ast.Node) {
	switch node := n.(type) {
	case *ast.CallExpr:
		lf.checkHookCall(node, path)
		lf.checkTraceMint(node)
		lf.checkPanic(node, path)
	case *ast.FuncDecl:
		lf.checkRunBody(node)
	case *ast.GoStmt:
		lf.checkGoroutine(node, path)
	}
}

// checkGoroutine enforces goroutine-accounting: a go statement in a scoped
// package must be visibly tracked.
func (lf *fileLinter) checkGoroutine(g *ast.GoStmt, path []ast.Node) {
	if !lf.goScoped || lf.goAccounted(g, path) {
		return
	}
	lf.report(g.Pos(), LintGoroutineAccounting,
		"unaccounted goroutine: track it with a WaitGroup (Add before the spawn, deferred Done inside), signal completion by closing a channel, or justify with `//lint:allow goroutine-accounting -- <why>`")
}

// goAccounted reports whether the spawned goroutine is visibly tracked:
// the enclosing function claims it on a WaitGroup (an Add call before the
// spawn), or the spawned body — a function literal, or a same-package
// function/method resolved through pkgFuncs — signals completion via a
// deferred Done() or by closing a channel.
func (lf *fileLinter) goAccounted(g *ast.GoStmt, path []ast.Node) bool {
	for _, anc := range path {
		fd, ok := anc.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		claimed := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && call.Pos() < g.Pos() {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Add" {
					claimed = true
				}
			}
			return !claimed
		})
		if claimed {
			return true
		}
	}
	var body *ast.BlockStmt
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		body = fun.Body
	case *ast.Ident:
		if fd := lf.pkgFuncs[fun.Name]; fd != nil {
			body = fd.Body
		}
	case *ast.SelectorExpr:
		if fd := lf.pkgFuncs[fun.Sel.Name]; fd != nil {
			body = fd.Body
		}
	}
	if body == nil {
		return false
	}
	signalled := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.DeferStmt:
			if sel, ok := node.Call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				signalled = true
			}
		case *ast.CallExpr:
			if id, ok := node.Fun.(*ast.Ident); ok && lf.isBuiltin(id, "close") {
				signalled = true
			}
		}
		return !signalled
	})
	return signalled
}

// pkgPathOf resolves a selector qualifier to its import path, or "".
func (lf *fileLinter) pkgPathOf(id *ast.Ident) string {
	if obj, ok := lf.info.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported().Path()
		}
		return "" // resolved to a non-package object (shadowed)
	}
	// Fallback when typechecking failed: match the file's import names.
	for _, imp := range lf.file.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := p
		if i := strings.LastIndex(p, "/"); i >= 0 {
			name = p[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == id.Name {
			return p
		}
	}
	return ""
}

// isBuiltin reports whether id resolves to the named builtin.
func (lf *fileLinter) isBuiltin(id *ast.Ident, name string) bool {
	if id.Name != name {
		return false
	}
	if obj, ok := lf.info.Uses[id]; ok {
		_, builtin := obj.(*types.Builtin)
		return builtin
	}
	return true // unresolved: assume the builtin
}

// checkHookCall enforces hook-discipline on qualified calls into the
// telemetry/faultinject packages.
func (lf *fileLinter) checkHookCall(call *ast.CallExpr, path []ast.Node) {
	if !lf.hookScoped {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	qual, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgPath := lf.pkgPathOf(qual)
	guarded, audited := hookPackages[pkgPath]
	if !audited {
		return
	}
	if guarded[sel.Sel.Name] {
		return
	}
	if lf.underEnabledGuard(call, path) {
		return
	}
	lf.report(call.Pos(), LintHookDiscipline,
		fmt.Sprintf("%s.%s is not disarmed by a single atomic load; guard it with `if %s.Enabled()` or use a self-guarded hook",
			qual.Name, sel.Sel.Name, qual.Name))
}

// checkTraceMint enforces trace-propagation: the hook-disciplined layers
// never mint or attach a trace context, guarded or not — an Enabled() guard
// does not make minting legitimate, it only hides the broken tree.
func (lf *fileLinter) checkTraceMint(call *ast.CallExpr) {
	if !lf.hookScoped {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	qual, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	if lf.pkgPathOf(qual) != "repro/internal/telemetry" || !traceMintFuncs[sel.Sel.Name] {
		return
	}
	lf.report(call.Pos(), LintTracePropagation,
		fmt.Sprintf("%s.%s mints/attaches a trace context inside a hook-disciplined layer; adopt the request trace from ctx (StartSpanCtx, EndCtx) — traces are minted at admission only",
			qual.Name, sel.Sel.Name))
}

// isGuardCall reports whether e is a call to pkg.Enabled() or pkg.Armed(..)
// for an audited hook package.
func (lf *fileLinter) isGuardCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	qual, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	if _, audited := hookPackages[lf.pkgPathOf(qual)]; !audited {
		return false
	}
	return sel.Sel.Name == "Enabled" || sel.Sel.Name == "Armed"
}

// underEnabledGuard reports whether the call site is dominated by an
// armed-bit guard: inside `if pkg.Enabled() { ... }` (positive form), or
// preceded in its block by `if !pkg.Enabled() { return ... }` (early-exit
// form).
func (lf *fileLinter) underEnabledGuard(call *ast.CallExpr, path []ast.Node) bool {
	for i := len(path) - 1; i >= 0; i-- {
		ifStmt, ok := path[i].(*ast.IfStmt)
		if ok && lf.isGuardCall(ifStmt.Cond) && i+1 < len(path) && path[i+1] == ifStmt.Body {
			return true
		}
		block, ok := path[i].(*ast.BlockStmt)
		if !ok {
			continue
		}
		// Which child of the block contains the call?
		var idx = -1
		if i+1 < len(path) {
			for j, st := range block.List {
				if st == path[i+1] {
					idx = j
					break
				}
			}
		}
		for j := 0; j < idx; j++ {
			prior, ok := block.List[j].(*ast.IfStmt)
			if !ok {
				continue
			}
			neg, ok := prior.Cond.(*ast.UnaryExpr)
			if !ok || neg.Op != token.NOT || !lf.isGuardCall(neg.X) {
				continue
			}
			if len(prior.Body.List) > 0 {
				if _, ret := prior.Body.List[len(prior.Body.List)-1].(*ast.ReturnStmt); ret {
					return true
				}
			}
		}
	}
	return false
}

// checkPanic enforces panic-justification: the call must have a comment
// containing "invariant" within the eight preceding lines (or on its own
// line), or an enclosing function whose doc comment states the invariant.
func (lf *fileLinter) checkPanic(call *ast.CallExpr, path []ast.Node) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || !lf.isBuiltin(id, "panic") {
		return
	}
	line := lf.posLine(call.Pos())
	for l := line - 8; l <= line; l++ {
		if c, ok := lf.comments[l]; ok && strings.Contains(strings.ToLower(c), "invariant") {
			return
		}
	}
	for _, anc := range path {
		fd, ok := anc.(*ast.FuncDecl)
		if ok && fd.Doc != nil && strings.Contains(strings.ToLower(fd.Doc.Text()), "invariant") {
			return
		}
	}
	lf.report(call.Pos(), LintPanicJustification,
		"panic without an adjacent `// invariant:` comment; justify why this is unreachable from input, or return an error")
}

// checkRunBody enforces no-alloc-in-run over Run/RunCtx methods of kernel
// types: no make/new/append and no closures outside direct defer/go
// statements, lexically, in the method body (callees are covered by their
// own declarations or by the runtime zero-alloc test).
func (lf *fileLinter) checkRunBody(fd *ast.FuncDecl) {
	if fd.Body == nil || fd.Recv == nil || (fd.Name.Name != "Run" && fd.Name.Name != "RunCtx") {
		return
	}
	recv := receiverTypeName(fd.Recv)
	if !kernelReceiver.MatchString(recv) {
		return
	}
	var path []ast.Node
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil {
			return
		}
		path = append(path, n)
		switch node := n.(type) {
		case *ast.CallExpr:
			if id, ok := node.Fun.(*ast.Ident); ok {
				for _, b := range [...]string{"make", "new", "append"} {
					if lf.isBuiltin(id, b) {
						lf.report(node.Pos(), LintNoAllocInRun,
							fmt.Sprintf("%s in %s.%s allocates on the hot path; hoist it to Lower time", b, recv, fd.Name.Name))
					}
				}
			}
		case *ast.FuncLit:
			if !directDeferOrGo(path) {
				lf.report(node.Pos(), LintNoAllocInRun,
					fmt.Sprintf("closure in %s.%s may capture and allocate per call; bind it at Lower time", recv, fd.Name.Name))
			}
		}
		ast.Inspect(n, func(child ast.Node) bool {
			if child == nil || child == n {
				return child == n
			}
			walk(child)
			return false
		})
		path = path[:len(path)-1]
	}
	walk(fd.Body)
}

// directDeferOrGo reports whether the path ends [... DeferStmt/GoStmt,
// CallExpr, FuncLit]: a function literal invoked directly by defer or go,
// which the compiler open-codes without a heap closure.
func directDeferOrGo(path []ast.Node) bool {
	n := len(path)
	if n < 3 {
		return false
	}
	call, ok := path[n-2].(*ast.CallExpr)
	if !ok || call.Fun != path[n-1] {
		return false
	}
	switch parent := path[n-3].(type) {
	case *ast.DeferStmt:
		return parent.Call == call
	case *ast.GoStmt:
		return parent.Call == call
	}
	return false
}

// receiverTypeName extracts the receiver's base type name.
func receiverTypeName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
