package analysis

import (
	"fmt"

	"repro/internal/ops"
	"repro/internal/tensor"
)

// Plan-level rules: kernel-granularity checks that run inside core.Compile
// for every (operator, schedule) pair — including each candidate the tuner
// grid-searches — and again per lowered kernel to cross-check how the
// backend actually resolved the write conflict.

// PlanFacts is the verifier's view of one compiled kernel plan, carried in
// primitives so analysis needs no core types.
type PlanFacts struct {
	// Op is the operator descriptor.
	Op ops.OpInfo
	// Schedule is the display form of the chosen schedule (diagnostics only).
	Schedule string
	// VertexParallel reports whether the strategy assigns each destination
	// vertex a single owner (thread_vertex / warp_vertex).
	VertexParallel bool
	// NeedsAtomic is the atomic-need bit the plan compiler derived.
	NeedsAtomic bool
}

// Conflict-handling disciplines a lowered kernel can declare (the
// core.ConflictReporter vocabulary).
const (
	// ConflictSequential: a single writer executes every edge in order.
	ConflictSequential = "sequential"
	// ConflictPerEdgeRows: each edge writes only its own output row.
	ConflictPerEdgeRows = "per-edge-rows"
	// ConflictOwnerPerRow: each output row has exactly one owning worker.
	ConflictOwnerPerRow = "owner-per-row"
	// ConflictPrivatePartials: workers reduce into private buffers merged
	// deterministically afterwards.
	ConflictPrivatePartials = "private-partials"
	// ConflictAtomic: racing writers serialise via atomic read-modify-write.
	ConflictAtomic = "atomic"
)

// needsConflictHandling re-derives the paper's atomic-need analysis: racing
// writers exist exactly when a reduction targets a destination-vertex
// tensor under a strategy whose work items are edges, so two workers can
// hold edges sharing a destination.
func needsConflictHandling(op ops.OpInfo, vertexParallel bool) bool {
	return op.CKind == tensor.DstV && !vertexParallel
}

// VerifyPlan checks one compiled kernel plan: operand typing per Table 4
// and the write-conflict bit against the re-derived analysis. Returns a
// *VerifyError or nil.
func VerifyPlan(f PlanFacts) error {
	plansVerified.Add(1)
	diags := checkOpTable(f.Op)
	if want := needsConflictHandling(f.Op, f.VertexParallel); f.NeedsAtomic != want {
		par := "edge-parallel"
		if f.VertexParallel {
			par = "vertex-parallel"
		}
		diags = append(diags, Diagnostic{
			Rule: RuleWriteConflict, Node: f.Op.Name,
			Msg: fmt.Sprintf("plan says needs_atomic=%v but %s with %s output under %s requires %v",
				f.NeedsAtomic, f.Op.GatherOp, f.Op.CKind, par, want),
			Hint: "atomic need = reducing into Dst_V under an edge-parallel strategy",
		})
	}
	return finish(diags)
}

// VerifyLowering cross-checks the conflict-handling discipline a lowered
// kernel declared against what the (operator, strategy) pair requires.
// handling is one of the Conflict* constants; unknown values are rejected.
func VerifyLowering(f PlanFacts, handling string) error {
	plansVerified.Add(1)
	safe := false
	switch handling {
	case ConflictSequential:
		safe = true // one writer can never race
	case ConflictPerEdgeRows:
		safe = f.Op.CKind == tensor.EdgeK
	case ConflictOwnerPerRow:
		safe = f.Op.CKind == tensor.DstV && f.VertexParallel
	case ConflictPrivatePartials, ConflictAtomic:
		safe = f.Op.CKind == tensor.DstV
	}
	if safe {
		return finish(nil)
	}
	return finish([]Diagnostic{{
		Rule: RuleWriteConflict, Node: f.Op.Name,
		Msg: fmt.Sprintf("backend lowered %q write handling for %s output under schedule %s",
			handling, f.Op.CKind, f.Schedule),
		Hint: "the lowered discipline must make concurrent writes to one element impossible",
	}})
}

// checkOpTable re-derives the Table-4 legality of a standalone operator
// descriptor (the plan-level twin of checkGraphOp, which additionally sees
// operand bindings).
func checkOpTable(op ops.OpInfo) []Diagnostic {
	var diags []Diagnostic
	bad := func(msg, hint string) {
		diags = append(diags, Diagnostic{Rule: RuleOperandType, Node: op.Name, Msg: msg, Hint: hint})
	}
	if !op.EdgeOp.Valid() {
		bad(fmt.Sprintf("unknown edge op %d", op.EdgeOp), "use a Table-4 edge op")
	}
	if !op.GatherOp.Valid() {
		bad(fmt.Sprintf("unknown gather op %d", op.GatherOp), "use a Table-4 gather op")
	}
	if len(diags) > 0 {
		return diags
	}
	switch op.CKind {
	case tensor.EdgeK:
		if op.GatherOp.IsReduction() {
			bad(fmt.Sprintf("edge-tensor output with reducing gather %s", op.GatherOp),
				"message creation must not reduce")
		}
	case tensor.DstV:
		if !op.GatherOp.IsReduction() {
			bad(fmt.Sprintf("vertex-tensor output with non-reducing gather %s", op.GatherOp),
				"aggregation needs sum/max/min/mean")
		}
	default:
		bad(fmt.Sprintf("output kind %s is not addressable", op.CKind), "outputs must be Edge or Dst_V")
	}
	wantA := op.EdgeOp.IsBinary() || op.EdgeOp == ops.CopyLHS
	wantB := op.EdgeOp.IsBinary() || op.EdgeOp == ops.CopyRHS || op.EdgeOp == ops.EdgeNull
	if wantA != (op.AKind != tensor.Null) {
		bad(fmt.Sprintf("edge op %s with operand A kind %s", op.EdgeOp, op.AKind),
			"operand presence must match the edge op's arity")
	}
	if wantB != (op.BKind != tensor.Null) {
		bad(fmt.Sprintf("edge op %s with operand B kind %s", op.EdgeOp, op.BKind),
			"operand presence must match the edge op's arity")
	}
	return diags
}
