package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// Causal-trace contracts (DESIGN.md §8): span ids are unique and parent links
// form one connected tree per trace; MakeCurrent/RestoreCurrent swap the
// causal parent correctly; flow links come in bound pairs; the exemplar store
// retains exactly the slowest and most recent errored requests; and the
// Chrome exporter stays valid JSON with the three new phases present.

func TestTraceSpanTreeParentLinks(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	SetEnabled(true)

	ts := NewTraceState(0, 0, 16)
	if ts.TraceID() == 0 {
		t.Fatal("minted trace id is zero")
	}

	root := StartTraceSpan(ts, "serve", "request", "infer")
	if root.SpanID() == 0 || root.TraceID() != ts.TraceID() {
		t.Fatalf("root span identity wrong: span=%d trace=%d", root.SpanID(), root.TraceID())
	}
	if root.parentID != 0 {
		t.Fatalf("locally minted root has parent %d, want 0", root.parentID)
	}
	prevRoot := root.MakeCurrent()
	if prevRoot != 0 || ts.Current() != root.SpanID() {
		t.Fatalf("MakeCurrent: prev=%d cur=%d, want 0 and %d", prevRoot, ts.Current(), root.SpanID())
	}

	// Two sequential children under the root, each briefly current — the
	// shape a program run with two steps produces.
	var stepIDs []uint64
	for _, name := range []string{"step-a", "step-b"} {
		sp := StartTraceSpan(ts, "program", "step", name)
		if sp.parentID != root.SpanID() {
			t.Errorf("%s parents onto %d, want root %d", name, sp.parentID, root.SpanID())
		}
		prev := sp.MakeCurrent()
		grand := StartTraceSpan(ts, "parallel", "kernel", name+"-kernel")
		if grand.parentID != sp.SpanID() {
			t.Errorf("%s kernel parents onto %d, want step %d", name, grand.parentID, sp.SpanID())
		}
		grand.End()
		sp.RestoreCurrent(prev)
		sp.End()
		stepIDs = append(stepIDs, sp.SpanID())
	}
	if ts.Current() != root.SpanID() {
		t.Fatalf("RestoreCurrent left cur=%d, want root %d", ts.Current(), root.SpanID())
	}
	root.RestoreCurrent(prevRoot)
	root.End()

	spans, truncated := ts.Snapshot()
	if truncated != 0 {
		t.Fatalf("unexpected truncation: %d", truncated)
	}
	if len(spans) != 5 { // 2 kernels + 2 steps + root
		t.Fatalf("got %d span records, want 5", len(spans))
	}
	// Every non-root span's parent must resolve inside the snapshot, and ids
	// must be unique: the connected-tree invariant.
	ids := map[uint64]bool{}
	for _, sp := range spans {
		if ids[sp.SpanID] {
			t.Errorf("duplicate span id %d", sp.SpanID)
		}
		ids[sp.SpanID] = true
	}
	for _, sp := range spans {
		if sp.ParentID != 0 && !ids[sp.ParentID] {
			t.Errorf("span %q parent %d not in snapshot", sp.Name, sp.ParentID)
		}
	}
	if stepIDs[0] == stepIDs[1] {
		t.Error("sequential steps share a span id")
	}
}

func TestTraceStateAdoptedParentAndTruncation(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	SetEnabled(true)

	// Adopted remote parent (traceparent): the root span parents onto it.
	ts := NewTraceState(0xabc, 0x99, 2)
	if ts.TraceID() != 0xabc {
		t.Fatalf("adopted trace id %x, want abc", ts.TraceID())
	}
	root := StartTraceSpan(ts, "serve", "request", "infer")
	if root.parentID != 0x99 {
		t.Fatalf("root parent %x, want adopted 99", root.parentID)
	}
	root.End()

	// The pre-sized buffer truncates past cap rather than growing.
	for i := 0; i < 4; i++ {
		StartTraceSpan(ts, "serve", "stage", fmt.Sprintf("s%d", i)).End()
	}
	spans, truncated := ts.Snapshot()
	if len(spans) != 2 || truncated != 3 {
		t.Fatalf("got %d spans, %d truncated; want 2 and 3", len(spans), truncated)
	}
}

func TestRecordSpanAndFlowLink(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	SetEnabled(true)

	ts := NewTraceState(0, 0, 8)
	root := StartTraceSpan(ts, "serve", "request", "infer")
	root.MakeCurrent()

	// Explicit parent, and end < start clamps to a zero-length span.
	id := RecordSpan(ts, "serve", "stage", "queue_wait", 100, 50, root.SpanID())
	if id == 0 {
		t.Fatal("RecordSpan returned 0 while enabled")
	}
	// Parent 0 adopts the current causal parent.
	RecordSpan(ts, "serve", "stage", "respond", 200, 300, 0)
	root.End()

	spans, _ := ts.Snapshot()
	byName := map[string]SpanRecord{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	if got := byName["queue_wait"]; got.Dur != 0 || got.ParentID != root.SpanID() {
		t.Errorf("queue_wait dur=%d parent=%d, want 0 and %d", got.Dur, got.ParentID, root.SpanID())
	}
	if got := byName["respond"]; got.Dur != 100 || got.ParentID != root.SpanID() {
		t.Errorf("respond dur=%d parent=%d, want 100 and %d", got.Dur, got.ParentID, root.SpanID())
	}

	FlowLink("batch", "coalesced",
		FlowPoint{Track: "serve", Ts: 10, Trace: ts.TraceID(), Span: root.SpanID()},
		FlowPoint{Track: "serve", Ts: 20, Trace: 0xbeef, Span: 7})

	var starts, finishes []TraceEvent
	for _, ev := range Default().Events() {
		if ev.FlowID == 0 {
			continue
		}
		if ev.FlowEnd {
			finishes = append(finishes, ev)
		} else {
			starts = append(starts, ev)
		}
	}
	if len(starts) != 1 || len(finishes) != 1 {
		t.Fatalf("got %d flow starts, %d finishes; want 1 and 1", len(starts), len(finishes))
	}
	if starts[0].FlowID != finishes[0].FlowID {
		t.Error("flow pair ids differ — viewers cannot bind the arrow")
	}
	if starts[0].TraceID != ts.TraceID() || finishes[0].TraceID != 0xbeef {
		t.Error("flow endpoints lost their trace identity")
	}
}

func TestTraceDisabledPathsAreInert(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	// Telemetry stays disabled: every constructor returns inert values and
	// records nothing.
	ts := NewTraceState(0, 0, 4)
	sp := StartTraceSpan(ts, "serve", "request", "infer")
	if sp.SpanID() != 0 {
		t.Error("disabled StartTraceSpan returned a live span")
	}
	sp.MakeCurrent()
	sp.End()
	if RecordSpan(ts, "serve", "stage", "x", 0, 1, 0) != 0 {
		t.Error("disabled RecordSpan recorded")
	}
	FlowLink("batch", "x", FlowPoint{}, FlowPoint{})
	ctx := ContextWithTrace(context.Background(), ts)
	StartSpanCtx(ctx, "serve", "request", "x").End()
	if n := len(Default().Events()); n != 0 {
		t.Fatalf("disabled paths emitted %d events", n)
	}
	if spans, _ := ts.Snapshot(); len(spans) != 0 {
		t.Fatalf("disabled paths recorded %d spans", len(spans))
	}
}

func TestExemplarStoreRetention(t *testing.T) {
	s := NewExemplarStore(3, 2)

	// Offer ok requests with distinct wall times; only the 3 slowest survive.
	for _, ns := range []int64{50, 10, 90, 30, 70} {
		s.Offer(RequestExemplar{TraceID: uint64(ns), Model: "GCN", Status: "ok", WallNs: ns})
	}
	slow, errs := s.Snapshot()
	if len(errs) != 0 {
		t.Fatalf("ok-only offers landed %d errors", len(errs))
	}
	var got []int64
	for _, ex := range slow {
		got = append(got, ex.WallNs)
	}
	if len(got) != 3 || got[0] != 90 || got[1] != 70 || got[2] != 50 {
		t.Fatalf("slow set %v, want [90 70 50]", got)
	}
	// The floor gate rejects sub-floor offers without changing the set.
	s.Offer(RequestExemplar{Status: "ok", WallNs: 20})
	if slow, _ = s.Snapshot(); len(slow) != 3 || slow[2].WallNs != 50 {
		t.Fatalf("sub-floor offer mutated the slow set: %+v", slow)
	}

	// Errors go to the ring, most recent first, capped at maxErr.
	for i, status := range []string{"error", "timeout", "rejected"} {
		s.Offer(RequestExemplar{TraceID: uint64(1000 + i), Status: status, WallNs: 1})
	}
	_, errs = s.Snapshot()
	if len(errs) != 2 || errs[0].Status != "rejected" || errs[1].Status != "timeout" {
		t.Fatalf("error ring %+v, want [rejected timeout]", errs)
	}
	if s.Seen() != 9 {
		t.Fatalf("seen %d, want 9", s.Seen())
	}

	// A nil store absorbs everything quietly (serving layer passes one
	// through unconditionally).
	var nilStore *ExemplarStore
	nilStore.Offer(RequestExemplar{})
	if nilStore.Seen() != 0 {
		t.Fatal("nil store counted")
	}
}

func TestPrometheusLabelEscapingRoundTrip(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	SetEnabled(true)

	// Label values containing every character the text format escapes: the
	// exporter must emit \" \\ \n so a spec-conforming parser recovers the
	// original value.
	hostile := `quote " back \ slash` + "\nnewline"
	r := Default()
	r.Counter(Series1("escape_total", "model", hostile)).Add(5)
	r.Counter(Series2("escape2_total", "a", `x\`, "b", `y"`)).Add(7)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if strings.Count(text, "\x00") != 0 {
		t.Fatal("control bytes in exposition")
	}

	unescape := func(v string) string {
		var out strings.Builder
		for i := 0; i < len(v); i++ {
			if v[i] == '\\' && i+1 < len(v) {
				i++
				switch v[i] {
				case 'n':
					out.WriteByte('\n')
				default:
					out.WriteByte(v[i])
				}
				continue
			}
			out.WriteByte(v[i])
		}
		return out.String()
	}

	// Each physical exposition line is one sample; the hostile newline must
	// be escaped into the label value, never breaking the line apart.
	found := false
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, `escape_total{model="`) {
			continue
		}
		found = true
		start := strings.Index(line, `"`) + 1
		end := strings.LastIndex(line, `"`)
		if got := unescape(line[start:end]); got != hostile {
			t.Errorf("label round-tripped to %q, want %q", got, hostile)
		}
		if !strings.HasSuffix(line, "} 5") {
			t.Errorf("sample value lost: %q", line)
		}
	}
	if !found {
		t.Fatalf("escaped series missing from exposition:\n%s", text)
	}
	if !strings.Contains(text, `escape2_total{a="x\\",b="y\""} 7`) {
		t.Errorf("two-label escaping wrong:\n%s", text)
	}
}

func TestPrometheusLabeledHistogramRendering(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	SetEnabled(true)

	r := Default()
	h := r.Histogram(Series1("stage_seconds", "model", "GCN"), []float64{0.001, 0.01})
	h.Observe(500_000) // 0.5ms → first bucket
	h.Observe(5_000_000)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	// The le label merges into the existing label set on the family name —
	// never name{model=...}_bucket.
	for _, frag := range []string{
		"# TYPE stage_seconds histogram",
		`stage_seconds_bucket{model="GCN",le="0.001"} 1`,
		`stage_seconds_bucket{model="GCN",le="0.01"} 2`,
		`stage_seconds_bucket{model="GCN",le="+Inf"} 2`,
		`stage_seconds_count{model="GCN"} 2`,
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("exposition missing %q:\n%s", frag, text)
		}
	}
	if strings.Contains(text, `"}_bucket`) || strings.Contains(text, `"}_sum`) || strings.Contains(text, `"}_count`) {
		t.Fatalf("suffix appended after label braces:\n%s", text)
	}
}

func TestPrometheusBuildInfoAndDroppedCounter(t *testing.T) {
	r := NewRegistry()
	r.SetBuildInfo("1.2.3", "parallel")
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.Contains(text, `ugrapher_build_info{version="1.2.3",go_version="go`) ||
		!strings.Contains(text, `backend="parallel"} 1`) {
		t.Errorf("build_info missing or malformed:\n%s", text)
	}
	// The drop counter exports at zero from a fresh registry: dashboards can
	// alert on it without waiting for the first drop.
	if !strings.Contains(text, MetricDroppedEvents+" 0") {
		t.Errorf("exposition missing %s at zero:\n%s", MetricDroppedEvents, text)
	}
}

func TestChromeTraceWithFlowAndAsyncEventsIsValidJSON(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	SetEnabled(true)

	ts := NewTraceState(0, 0, 8)
	root := StartTraceSpan(ts, "serve", "request", "infer")
	prev := root.MakeCurrent()
	StartTraceSpan(ts, "program", "run", "forward").End()
	root.RestoreCurrent(prev)
	root.End()
	other := NewTraceState(0, 0, 4)
	FlowLink("batch", "coalesced",
		FlowPoint{Track: "serve", Ts: root.Start(), Trace: other.TraceID(), Span: 1},
		FlowPoint{Track: "serve", Ts: root.Start() + 1, Trace: ts.TraceID(), Span: root.SpanID()})

	var sb strings.Builder
	if err := Default().WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Cat  string            `json:"cat"`
			Ph   string            `json:"ph"`
			ID   string            `json:"id"`
			Bp   string            `json:"bp"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	phases := map[string]int{}
	var flowStartID, flowFinishID, asyncBegin, asyncEnd string
	for _, ev := range trace.TraceEvents {
		phases[ev.Ph]++
		switch ev.Ph {
		case "s":
			flowStartID = ev.ID
		case "f":
			flowFinishID = ev.ID
			if ev.Bp != "e" {
				t.Errorf("flow finish bp=%q, want e (bind to enclosing slice)", ev.Bp)
			}
		case "b":
			if ev.Cat == "request" {
				asyncBegin = ev.ID
			}
		case "e":
			if ev.Cat == "request" {
				asyncEnd = ev.ID
			}
		}
		if ev.Ph == "X" && ev.Args["trace_id"] == "" {
			t.Errorf("traced span %q exported without trace_id arg", ev.Name)
		}
	}
	if phases["X"] != 2 || phases["s"] != 1 || phases["f"] != 1 {
		t.Fatalf("phase counts %v, want 2 X, 1 s, 1 f", phases)
	}
	if phases["b"] != 2 || phases["e"] != 2 {
		t.Fatalf("async shadow pairs %v, want 2 b and 2 e", phases)
	}
	if flowStartID == "" || flowStartID != flowFinishID {
		t.Errorf("flow pair ids %q vs %q — must match", flowStartID, flowFinishID)
	}
	if asyncBegin == "" || asyncBegin != asyncEnd {
		t.Errorf("async pair ids %q vs %q — must match", asyncBegin, asyncEnd)
	}
	if asyncBegin != hexID(ts.TraceID()) {
		t.Errorf("async id %q, want trace id %q", asyncBegin, hexID(ts.TraceID()))
	}
}

func TestEventBufferDropCounting(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	SetEnabled(true)

	r := Default()
	r.SetMaxEvents(2)
	for i := 0; i < 5; i++ {
		r.Instant("serve", "x", "e", nil)
	}
	if n := len(r.Events()); n != 2 {
		t.Fatalf("buffer holds %d events, want 2", n)
	}
	if got := r.Counter(MetricDroppedEvents).Value(); got != 3 {
		t.Fatalf("dropped counter %d, want 3", got)
	}
}
