package telemetry

import (
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// CLI plumbing shared by the three commands: each wires -trace, -metrics
// and -profile into a CLIOptions, calls Begin before doing work (arming
// telemetry only when any output was requested, so unobserved runs keep the
// disarmed fast path), and Finish afterwards — on the error path too, so a
// failed run still leaves a trace with its failed spans.

// CLIOptions carries the observability flags of one command invocation.
type CLIOptions struct {
	// TracePath receives Chrome trace-event JSON ("" = off).
	TracePath string
	// MetricsPath receives a Prometheus text-format snapshot ("" = off).
	MetricsPath string
	// Profile prints an end-of-run per-kernel summary table.
	Profile bool
}

// Active reports whether any telemetry output was requested.
func (o CLIOptions) Active() bool {
	return o.TracePath != "" || o.MetricsPath != "" || o.Profile
}

// Begin arms telemetry if any output was requested.
func (o CLIOptions) Begin() {
	if o.Active() {
		SetEnabled(true)
	}
}

// Finish writes the requested outputs from the default registry: the trace
// file, the metrics snapshot, and the profile table (to profileW, normally
// stdout). Returns the first error; later outputs are still attempted.
func (o CLIOptions) Finish(profileW io.Writer) error {
	if !o.Active() {
		return nil
	}
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if o.TracePath != "" {
		keep(writeFile(o.TracePath, defaultReg.WriteChromeTrace))
	}
	if o.MetricsPath != "" {
		keep(writeFile(o.MetricsPath, defaultReg.WritePrometheus))
	}
	if o.Profile {
		keep(defaultReg.WriteProfile(profileW))
	}
	return firstErr
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteProfile renders the end-of-run summary: one row per distinct
// (op, schedule, backend) kernel site, sorted by total wall time, plus a
// header with the run-wide counts the satellite metrics track.
func (r *Registry) WriteProfile(w io.Writer) error {
	stats := r.SiteStats()

	// Merge sites that share identity (a kernel recompiled per phase, or
	// one op lowered by several tests) into one row.
	type key struct{ op, sched, backend string }
	merged := map[key]*SiteStats{}
	order := []key{}
	var totalRuns, totalFails int64
	for _, s := range stats {
		if s.Runs == 0 && s.Failures == 0 {
			continue
		}
		k := key{s.Op, s.Schedule, s.Backend}
		m, ok := merged[k]
		if !ok {
			c := s
			merged[k] = &c
			order = append(order, k)
			continue
		}
		m.Runs += s.Runs
		m.Failures += s.Failures
		m.TotalNs += s.TotalNs
	}
	rows := make([]*SiteStats, 0, len(merged))
	for _, k := range order {
		m := merged[k]
		rows = append(rows, m)
		totalRuns += m.Runs
		totalFails += m.Failures
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].TotalNs > rows[j].TotalNs })

	if _, err := fmt.Fprintf(w, "profile: %d kernel sites, %d runs, %d failures, %d fallbacks\n",
		len(rows), totalRuns, totalFails, r.fallbacks.Value()); err != nil {
		return err
	}
	if len(rows) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "%-28s %-12s %-10s %6s %5s %12s %12s\n",
		"op", "schedule", "backend", "runs", "fail", "total", "mean"); err != nil {
		return err
	}
	for _, s := range rows {
		total := time.Duration(s.TotalNs)
		mean := time.Duration(0)
		if s.Runs > 0 {
			mean = total / time.Duration(s.Runs)
		}
		if _, err := fmt.Fprintf(w, "%-28s %-12s %-10s %6d %5d %12v %12v\n",
			s.Op, s.Schedule, s.Backend, s.Runs, s.Failures,
			total.Round(time.Microsecond), mean.Round(time.Microsecond)); err != nil {
			return err
		}
	}
	return nil
}
