package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	if r.Counter("test_total") != c {
		t.Error("Counter is not idempotent per name")
	}

	g := r.Gauge("test_gauge")
	g.Set(0.25)
	if got := g.Value(); got != 0.25 {
		t.Errorf("gauge = %v, want 0.25", got)
	}

	h := r.Histogram("test_seconds", DefaultLatencyBuckets)
	h.Observe(5_000)          // 5µs -> first bucket (le 1e-5)
	h.Observe(500_000)        // 500µs -> le 1e-3
	h.Observe(20_000_000_000) // 20s -> +Inf bucket
	if got := h.Count(); got != 3 {
		t.Errorf("histogram count = %d, want 3", got)
	}
	wantSum := (5_000 + 500_000 + 20_000_000_000) / 1e9
	if got := h.SumSeconds(); got != wantSum {
		t.Errorf("histogram sum = %v, want %v", got, wantSum)
	}
	if got := h.counts[0].Load(); got != 1 {
		t.Errorf("first bucket = %d, want 1", got)
	}
	if got := h.counts[len(h.bounds)].Load(); got != 1 {
		t.Errorf("+Inf bucket = %d, want 1", got)
	}
}

func TestSeriesLabelEscaping(t *testing.T) {
	got := Series1("m_total", "op", `a"b\c`+"\n")
	want := `m_total{op="a\"b\\c\n"}`
	if got != want {
		t.Errorf("Series1 = %q, want %q", got, want)
	}
	if got := Series2("m_total", "a", "x", "b", "y"); got != `m_total{a="x",b="y"}` {
		t.Errorf("Series2 = %q", got)
	}
	if f := family(`m_total{a="x"}`); f != "m_total" {
		t.Errorf("family = %q", f)
	}
}

func TestSpansRequireEnabled(t *testing.T) {
	Reset()
	t.Cleanup(Reset)

	sp := StartSpan("track", "cat", "off")
	sp.End() // must be inert, not panic
	if evs := Default().Events(); len(evs) != 0 {
		t.Fatalf("disabled StartSpan recorded %d events", len(evs))
	}

	SetEnabled(true)
	sp = StartSpan("track", "cat", "on")
	sp.End()
	Default().Instant("track", "cat", "instant", nil)
	evs := Default().Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Name != "on" || evs[0].Instant {
		t.Errorf("span event wrong: %+v", evs[0])
	}
	if !evs[1].Instant {
		t.Errorf("instant event wrong: %+v", evs[1])
	}
}

func TestKernelSiteRecordsRunsAndFailures(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	SetEnabled(true)

	s := NewKernelSite("op.sum", "WE", "WE_G8_T4", "parallel", 100, 400)
	start := s.Begin()
	s.End(start, OutcomeOK, "", nil)
	start = s.Begin()
	s.End(start, OutcomeKernelError, "boom", nil)

	vals := Default().CounterValues()
	if got := vals[`ugrapher_kernel_runs_total{backend="parallel",strategy="WE"}`]; got != 2 {
		t.Errorf("runs counter = %d, want 2", got)
	}
	if got := vals[`ugrapher_kernel_edges_processed_total{backend="parallel"}`]; got != 800 {
		t.Errorf("edges counter = %d, want 800", got)
	}
	if got := vals[`ugrapher_kernel_failures_total{backend="parallel",outcome="kernel_error"}`]; got != 1 {
		t.Errorf("failures counter = %d, want 1", got)
	}

	recs := Default().Records()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[1].Outcome != OutcomeKernelError || recs[1].Err != "boom" {
		t.Errorf("failure record wrong: %+v", recs[1])
	}
	if recs[0].Op != "op.sum" || recs[0].Strategy != "WE" || recs[0].Schedule != "WE_G8_T4" {
		t.Errorf("record identity wrong: %+v", recs[0])
	}

	stats := Default().SiteStats()
	if len(stats) != 1 || stats[0].Runs != 2 || stats[0].Failures != 1 {
		t.Errorf("site stats wrong: %+v", stats)
	}
}

func TestKernelSiteDisabledIsInert(t *testing.T) {
	Reset()
	t.Cleanup(Reset)

	s := NewKernelSite("op", "TV", "TV_G1_T1", "reference", 10, 20)
	if start := s.Begin(); start != 0 {
		t.Errorf("disabled Begin = %d, want 0", start)
	}
	s.End(0, OutcomeOK, "", nil)
	var nilSite *KernelSite
	if nilSite.Begin() != 0 {
		t.Error("nil site Begin != 0")
	}
	nilSite.End(0, OutcomeOK, "", nil) // must not panic
	if recs := Default().Records(); len(recs) != 0 {
		t.Errorf("disabled site recorded %d records", len(recs))
	}
}

func TestSimSamplePublishesGauges(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	SetEnabled(true)

	s := NewKernelSite("op", "WV", "WV_G2_T1", "sim", 10, 20)
	s.End(s.Begin(), OutcomeOK, "", &SimSample{Cycles: 123, L1HitRate: 0.5, L2HitRate: 0.75})

	gs := Default().GaugeValues()
	if gs["ugrapher_sim_l1_hit_rate"] != 0.5 || gs["ugrapher_sim_l2_hit_rate"] != 0.75 {
		t.Errorf("sim gauges wrong: %+v", gs)
	}
	recs := Default().Records()
	if len(recs) != 1 || !recs[0].HasSim || recs[0].SimCycles != 123 {
		t.Errorf("sim record wrong: %+v", recs)
	}
}

func TestRecordFallbackCountsEvenWhenDisabled(t *testing.T) {
	Reset()
	t.Cleanup(Reset)

	RecordFallback("op", "parallel", "reference")
	if got := Fallbacks(); got != 1 {
		t.Errorf("Fallbacks = %d, want 1 (the counter must survive a disabled phase)", got)
	}
	if evs := Default().Events(); len(evs) != 0 {
		t.Errorf("disabled fallback emitted %d events", len(evs))
	}
	SetEnabled(true)
	RecordFallback("op", "parallel", "reference")
	if got := Fallbacks(); got != 2 {
		t.Errorf("Fallbacks = %d, want 2", got)
	}
	if evs := Default().Events(); len(evs) != 1 {
		t.Errorf("enabled fallback emitted %d events, want 1", len(evs))
	}
}

func TestRecordRingBounded(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	SetEnabled(true)

	s := NewKernelSite("op", "TE", "TE_G1_T1", "parallel", 1, 1)
	n := defaultMaxRecords + 10
	for i := 0; i < n; i++ {
		s.End(s.Begin(), OutcomeOK, "", nil)
	}
	recs := Default().Records()
	if len(recs) != defaultMaxRecords {
		t.Fatalf("ring holds %d records, want %d", len(recs), defaultMaxRecords)
	}
	if got := Default().Counter(Series2("ugrapher_kernel_runs_total", "backend", "parallel", "strategy", "TE")).Value(); got != int64(n) {
		t.Errorf("runs counter = %d, want %d (counters must not be bounded)", got, n)
	}
}

func TestEventBufferDropsAndCounts(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	SetEnabled(true)

	r := Default()
	r.mu.Lock()
	r.maxEvents = 4
	r.mu.Unlock()
	for i := 0; i < 10; i++ {
		r.Instant("t", "c", "e", nil)
	}
	if evs := r.Events(); len(evs) != 4 {
		t.Errorf("kept %d events, want 4", len(evs))
	}
	if got := r.CounterValues()[MetricDroppedEvents]; got != 6 {
		t.Errorf("dropped counter = %d, want 6", got)
	}
}

// TestConcurrentRecording drives counters, spans and a kernel site from many
// goroutines; run under -race this pins the lock discipline.
func TestConcurrentRecording(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	SetEnabled(true)

	const workers, iters = 8, 200
	site := NewKernelSite("op", "WE", "WE_G4_T2", "parallel", 50, 100)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				Default().Counter("concurrent_total").Inc()
				sp := StartSpan("worker", "test", "span")
				site.End(site.Begin(), OutcomeOK, "", nil)
				sp.End()
				if w == 0 && i%50 == 0 {
					Default().Gauge("concurrent_gauge").Set(float64(i))
				}
			}
		}()
	}
	wg.Wait()
	if got := Default().CounterValues()["concurrent_total"]; got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	if got := Default().SiteStats()[0].Runs; got != workers*iters {
		t.Errorf("site runs = %d, want %d", got, workers*iters)
	}
}

func TestResetClearsState(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	SetEnabled(true)
	Default().Counter("x_total").Inc()
	Default().Instant("t", "c", "e", nil)
	Reset()
	if Enabled() {
		t.Error("Reset left telemetry enabled")
	}
	vals := Default().CounterValues()
	if vals["x_total"] != 0 {
		t.Error("Reset kept counter value")
	}
	// Well-known series must be re-registered so snapshots always carry them.
	if _, ok := vals[MetricFallbacks]; !ok {
		t.Errorf("Reset dropped %s from the registry", MetricFallbacks)
	}
	if evs := Default().Events(); len(evs) != 0 {
		t.Error("Reset kept events")
	}
}

func TestWriteProfileMergesSites(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	SetEnabled(true)

	a := NewKernelSite("aggr", "WV", "WV_G2_T1", "parallel", 10, 40)
	b := NewKernelSite("aggr", "WV", "WV_G2_T1", "parallel", 10, 40) // same identity, second lowering
	a.End(a.Begin(), OutcomeOK, "", nil)
	b.End(b.Begin(), OutcomeKernelError, "x", nil)

	var sb strings.Builder
	if err := Default().WriteProfile(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "1 kernel sites, 2 runs, 1 failures") {
		t.Errorf("profile header did not merge identical sites:\n%s", out)
	}
	if strings.Count(out, "aggr") != 1 {
		t.Errorf("profile shows duplicate rows for one identity:\n%s", out)
	}
}
