package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// Chrome trace-event exporter: the collected spans render as one row per
// track in chrome://tracing or https://ui.perfetto.dev. The format is the
// "JSON object" flavour of the trace-event spec: a traceEvents array of
// complete ("X") and instant ("i") events plus thread_name metadata ("M")
// naming each track. Causal traces add three phases (DESIGN.md §8):
//
//   - "s"/"f"  flow arrows — the batching fan-in links from each member
//     request's root span to the batch span that executed it;
//   - "b"/"e"  async nestable events — every traced span is shadowed as an
//     async pair under id = trace id and cat "request", so Perfetto groups
//     one tree per request regardless of which track the work ran on.

// chromeEvent is one trace-event record. Ts and Dur are microseconds (the
// unit the spec fixes); fractional microseconds keep nanosecond ordering.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	S    string            `json:"s,omitempty"`
	ID   string            `json:"id,omitempty"`
	Bp   string            `json:"bp,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func hexID(v uint64) string { return strconv.FormatUint(v, 16) }

// traceArgs extends args with the causal identity. The source map may be
// shared (KernelSite.okArgs), so it is copied, never mutated.
func traceArgs(ev TraceEvent) map[string]string {
	out := make(map[string]string, len(ev.Args)+3)
	for k, v := range ev.Args {
		out[k] = v
	}
	out["trace_id"] = hexID(ev.TraceID)
	if ev.SpanID != 0 {
		out["span_id"] = hexID(ev.SpanID)
	}
	if ev.ParentID != 0 {
		out["parent_id"] = hexID(ev.ParentID)
	}
	return out
}

// WriteChromeTrace renders the registry's events as Chrome trace-event
// JSON. Events are sorted by (track, start), so timestamps are monotonically
// non-decreasing within each track — the invariant the exporter tests pin.
func (r *Registry) WriteChromeTrace(w io.Writer) error {
	events := r.Events()
	tracks := r.TrackNames()

	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Track != events[j].Track {
			return events[i].Track < events[j].Track
		}
		return events[i].Start < events[j].Start
	})

	out := chromeTrace{
		TraceEvents:     make([]chromeEvent, 0, len(events)+len(tracks)+1),
		DisplayTimeUnit: "ms",
	}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]string{"name": "ugrapher"},
	})
	for id, name := range tracks {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: id,
			Args: map[string]string{"name": name},
		})
	}
	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.Name, Cat: ev.Cat, Pid: 1, Tid: ev.Track,
			Ts: float64(ev.Start) / 1e3, Args: ev.Args,
		}
		if ev.TraceID != 0 {
			ce.Args = traceArgs(ev)
		}
		switch {
		case ev.FlowID != 0:
			ce.ID = hexID(ev.FlowID)
			if ev.FlowEnd {
				ce.Ph = "f"
				ce.Bp = "e" // bind to the enclosing slice, not the next one
			} else {
				ce.Ph = "s"
			}
		case ev.Instant:
			ce.Ph = "i"
			ce.S = "t"
		default:
			ce.Ph = "X"
			ce.Dur = float64(ev.Dur) / 1e3
		}
		out.TraceEvents = append(out.TraceEvents, ce)

		// Shadow every traced span as an async nestable pair keyed by the
		// trace id: Perfetto renders the request's spans as one tree.
		if ev.TraceID != 0 && ev.FlowID == 0 && !ev.Instant {
			id := hexID(ev.TraceID)
			out.TraceEvents = append(out.TraceEvents,
				chromeEvent{
					Name: ev.Name, Cat: "request", Ph: "b", Pid: 1, Tid: ev.Track,
					Ts: float64(ev.Start) / 1e3, ID: id, Args: ce.Args,
				},
				chromeEvent{
					Name: ev.Name, Cat: "request", Ph: "e", Pid: 1, Tid: ev.Track,
					Ts: float64(ev.Start+ev.Dur) / 1e3, ID: id,
				},
			)
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
