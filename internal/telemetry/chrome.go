package telemetry

import (
	"encoding/json"
	"io"
	"sort"
)

// Chrome trace-event exporter: the collected spans render as one row per
// track in chrome://tracing or https://ui.perfetto.dev. The format is the
// "JSON object" flavour of the trace-event spec: a traceEvents array of
// complete ("X") and instant ("i") events plus thread_name metadata ("M")
// naming each track.

// chromeEvent is one trace-event record. Ts and Dur are microseconds (the
// unit the spec fixes); fractional microseconds keep nanosecond ordering.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders the registry's events as Chrome trace-event
// JSON. Events are sorted by (track, start), so timestamps are monotonically
// non-decreasing within each track — the invariant the exporter tests pin.
func (r *Registry) WriteChromeTrace(w io.Writer) error {
	events := r.Events()
	tracks := r.TrackNames()

	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Track != events[j].Track {
			return events[i].Track < events[j].Track
		}
		return events[i].Start < events[j].Start
	})

	out := chromeTrace{
		TraceEvents:     make([]chromeEvent, 0, len(events)+len(tracks)+1),
		DisplayTimeUnit: "ms",
	}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]string{"name": "ugrapher"},
	})
	for id, name := range tracks {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: id,
			Args: map[string]string{"name": name},
		})
	}
	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.Name, Cat: ev.Cat, Pid: 1, Tid: ev.Track,
			Ts: float64(ev.Start) / 1e3, Args: ev.Args,
		}
		if ev.Instant {
			ce.Ph = "i"
			ce.S = "t"
		} else {
			ce.Ph = "X"
			ce.Dur = float64(ev.Dur) / 1e3
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
