package telemetry

// Tail-sampled request exemplars: a bounded store that retains the full span
// tree of the slowest requests plus a ring of the most recent errored ones.
// Aggregate histograms answer "how slow is p99"; exemplars answer "what did
// the p99 request actually spend its time on". The store is sampling policy,
// not collection: every request still records into its TraceState; Offer
// merely decides which trees survive.

import (
	"sort"
	"sync"
	"sync/atomic"
)

// StagePoint is one entry of a request's stage breakdown.
type StagePoint struct {
	Stage string `json:"stage"`
	Ns    int64  `json:"ns"`
}

// RequestExemplar is one retained request: identity, outcome, the per-stage
// latency breakdown and the full causal span tree.
type RequestExemplar struct {
	TraceID   uint64       `json:"trace_id"`
	Model     string       `json:"model"`
	Status    string       `json:"status"` // ok | error | timeout | degraded
	Start     int64        `json:"start_ns"`
	WallNs    int64        `json:"wall_ns"`
	Err       string       `json:"error,omitempty"`
	Stages    []StagePoint `json:"stages,omitempty"`
	Spans     []SpanRecord `json:"spans,omitempty"`
	Truncated int          `json:"truncated_spans,omitempty"`
}

// ExemplarStore holds the slowest maxSlow requests (by wall time) and a ring
// of the last maxErr errored requests. Offer is cheap in the common case: a
// request faster than the slowest retained one is rejected on one atomic
// load once the store is full.
type ExemplarStore struct {
	maxSlow int
	maxErr  int

	// floor is the smallest retained WallNs once slow is full — the
	// fast-reject gate read without the lock.
	floor atomic.Int64

	mu     sync.Mutex
	slow   []RequestExemplar // sorted descending by WallNs
	errs   []RequestExemplar // ring, most recent errPos-1
	errPos int
	seen   atomic.Int64
}

// NewExemplarStore builds a store retaining the maxSlow slowest and maxErr
// most recent errored requests.
func NewExemplarStore(maxSlow, maxErr int) *ExemplarStore {
	if maxSlow < 1 {
		maxSlow = 1
	}
	if maxErr < 1 {
		maxErr = 1
	}
	return &ExemplarStore{maxSlow: maxSlow, maxErr: maxErr}
}

// Offer submits a completed request. Errored requests (Status != "ok") go to
// the error ring; every request competes for the slow set.
func (s *ExemplarStore) Offer(ex RequestExemplar) {
	if s == nil {
		return
	}
	s.seen.Add(1)
	if ex.Status != "ok" {
		s.mu.Lock()
		if len(s.errs) < s.maxErr {
			s.errs = append(s.errs, ex)
		} else {
			s.errs[s.errPos] = ex
			s.errPos = (s.errPos + 1) % s.maxErr
		}
		s.mu.Unlock()
		return
	}
	if f := s.floor.Load(); f > 0 && ex.WallNs <= f {
		return // full and strictly faster than everything retained
	}
	s.mu.Lock()
	s.slow = append(s.slow, ex)
	sort.SliceStable(s.slow, func(i, j int) bool { return s.slow[i].WallNs > s.slow[j].WallNs })
	if len(s.slow) > s.maxSlow {
		s.slow = s.slow[:s.maxSlow]
	}
	if len(s.slow) == s.maxSlow {
		s.floor.Store(s.slow[len(s.slow)-1].WallNs)
	}
	s.mu.Unlock()
}

// Seen reports how many requests were offered in total.
func (s *ExemplarStore) Seen() int64 {
	if s == nil {
		return 0
	}
	return s.seen.Load()
}

// Snapshot copies the retained exemplars: slowest first, then errors most
// recent first.
func (s *ExemplarStore) Snapshot() (slow, errs []RequestExemplar) {
	if s == nil {
		return nil, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	slow = make([]RequestExemplar, len(s.slow))
	copy(slow, s.slow)
	errs = make([]RequestExemplar, 0, len(s.errs))
	for i := 0; i < len(s.errs); i++ {
		idx := (s.errPos - 1 - i + 2*len(s.errs)) % len(s.errs)
		errs = append(errs, s.errs[idx])
	}
	return slow, errs
}
