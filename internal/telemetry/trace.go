package telemetry

// Causal traces (DESIGN.md §8): a TraceState is minted once per request at
// HTTP admission (or adopted from an incoming traceparent / X-Request-ID
// header) and rides through context.Context across every layer. Spans opened
// under a trace carry a 64-bit span id and a parent link; the Chrome exporter
// renders each trace as one async-event tree plus flow arrows across the
// batching fan-in, so Perfetto shows one connected tree per request.
//
// Allocation discipline: the enabled steady-state Run path stays zero-alloc.
// A TraceState is one allocation at admission (span records live in a
// pre-sized slice); propagation mutates TraceState.cur (an atomic) instead of
// deriving child contexts, because program steps execute sequentially within
// a run. The disabled path everywhere remains one atomic load.

import (
	"context"
	"sync"
	"sync/atomic"
)

// spanSeq allocates process-unique span and flow ids. Sequential ids are
// fine: uniqueness within the process is all the exporters need.
var spanSeq atomic.Uint64

func nextSpanID() uint64 { return spanSeq.Add(1) }

// traceSalt decorrelates trace ids across process restarts so two runs'
// traces do not collide when merged in one viewer.
var traceSalt = uint64(epoch.UnixNano()) | 1

// MintTraceID returns a new non-zero 64-bit trace id (splitmix64 over a
// process-unique sequence, salted per process).
func MintTraceID() uint64 {
	x := spanSeq.Add(1) + traceSalt
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// SpanRecord is one completed span inside a TraceState: the request-local
// copy of the trace event, retained so exemplars can reconstruct the full
// tree after the global event buffer has moved on.
type SpanRecord struct {
	Name     string `json:"name"`
	Cat      string `json:"cat"`
	Track    int    `json:"track"`
	Start    int64  `json:"start_ns"`
	Dur      int64  `json:"dur_ns"`
	SpanID   uint64 `json:"span_id"`
	ParentID uint64 `json:"parent_id,omitempty"`
	Err      string `json:"error,omitempty"`
}

// TraceState is the per-request trace context: the trace id, the current
// causal parent, and a bounded pre-sized buffer of completed spans. One
// TraceState is shared by every layer a request touches; the span buffer is
// mutex-guarded because batch delivery and the admission goroutine both
// append.
type TraceState struct {
	traceID uint64
	// root is the adopted remote parent span id (from traceparent), 0 when
	// the trace was minted locally. Root spans parent onto it.
	root uint64
	// cur is the span id of the current causal parent. Spans opened via
	// StartSpanCtx/StartTraceSpan parent onto cur; MakeCurrent swaps it.
	cur atomic.Uint64

	mu        sync.Mutex
	spans     []SpanRecord
	truncated int
}

// NewTraceState builds a trace context. traceID 0 mints a fresh id;
// parentSpan is the adopted remote parent (0 when none). maxSpans bounds the
// retained span records; the buffer is pre-sized so recording stays
// allocation-free.
func NewTraceState(traceID, parentSpan uint64, maxSpans int) *TraceState {
	if traceID == 0 {
		traceID = MintTraceID()
	}
	if maxSpans <= 0 {
		maxSpans = 1
	}
	ts := &TraceState{
		traceID: traceID,
		root:    parentSpan,
		spans:   make([]SpanRecord, 0, maxSpans),
	}
	ts.cur.Store(parentSpan)
	return ts
}

// TraceID returns the 64-bit trace id.
func (ts *TraceState) TraceID() uint64 { return ts.traceID }

// Current returns the span id of the current causal parent (0 at the root).
func (ts *TraceState) Current() uint64 { return ts.cur.Load() }

// record appends one completed span, dropping (and counting) past the
// pre-sized capacity so a pathological request cannot grow without bound.
func (ts *TraceState) record(rec SpanRecord) {
	ts.mu.Lock()
	if len(ts.spans) < cap(ts.spans) {
		ts.spans = append(ts.spans, rec)
	} else {
		ts.truncated++
	}
	ts.mu.Unlock()
}

// Snapshot copies the retained span records and the truncation count.
func (ts *TraceState) Snapshot() ([]SpanRecord, int) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]SpanRecord, len(ts.spans))
	copy(out, ts.spans)
	return out, ts.truncated
}

// traceKey is the context key for the TraceState. A zero-size struct key
// makes ctx.Value lookups allocation-free.
type traceKey struct{}

// ContextWithTrace attaches ts to ctx. Called once per request at admission
// (and once per batch at fan-in) — never on the per-span path, so the one
// context allocation amortises over the whole request.
func ContextWithTrace(ctx context.Context, ts *TraceState) context.Context {
	return context.WithValue(ctx, traceKey{}, ts)
}

// TraceOf extracts the TraceState from ctx, nil when the request is
// untraced. Zero-alloc.
func TraceOf(ctx context.Context) *TraceState {
	if ctx == nil {
		return nil
	}
	ts, _ := ctx.Value(traceKey{}).(*TraceState)
	return ts
}

// StartSpanCtx opens a span that parents onto the trace in ctx (plain
// track-local span when ctx carries no trace). One atomic load when
// disabled.
func StartSpanCtx(ctx context.Context, track, cat, name string) Span {
	if !Enabled() {
		return Span{}
	}
	return defaultReg.startTraceSpan(TraceOf(ctx), track, cat, name)
}

// StartTraceSpan opens a span under an explicit trace state (nil behaves
// like StartSpan). One atomic load when disabled.
func StartTraceSpan(ts *TraceState, track, cat, name string) Span {
	if !Enabled() {
		return Span{}
	}
	return defaultReg.startTraceSpan(ts, track, cat, name)
}

func (r *Registry) startTraceSpan(ts *TraceState, track, cat, name string) Span {
	s := Span{reg: r, name: name, cat: cat, track: r.Track(track), start: now()}
	if ts != nil {
		s.ts = ts
		s.traceID = ts.traceID
		s.spanID = nextSpanID()
		s.parentID = ts.cur.Load()
	}
	return s
}

// MakeCurrent installs this span as the causal parent for spans opened
// after it on the same trace, returning the previous parent for
// RestoreCurrent. Valid because the layers below a request execute
// sequentially (program steps run one at a time within a Run).
func (s Span) MakeCurrent() uint64 {
	if s.ts == nil {
		return 0
	}
	return s.ts.cur.Swap(s.spanID)
}

// RestoreCurrent undoes MakeCurrent.
func (s Span) RestoreCurrent(prev uint64) {
	if s.ts == nil {
		return
	}
	s.ts.cur.Store(prev)
}

// SpanID returns the span's id (0 when untraced or inert).
func (s Span) SpanID() uint64 { return s.spanID }

// TraceID returns the trace id the span belongs to (0 when untraced).
func (s Span) TraceID() uint64 { return s.traceID }

// Start returns the span's opening timestamp (span-clock nanoseconds).
func (s Span) Start() int64 { return s.start }

// RecordSpan records an already-measured interval as a completed span on the
// trace: the serving layer uses it for stage attribution (queue_wait,
// batch_wait, respond) where begin and end were stamped earlier with Now().
// parent 0 adopts the trace's current parent. Returns the new span id.
func RecordSpan(ts *TraceState, track, cat, name string, start, end int64, parent uint64) uint64 {
	if !Enabled() {
		return 0
	}
	return defaultReg.RecordSpan(ts, track, cat, name, start, end, parent)
}

// RecordSpan is the registry form of the package-level RecordSpan.
func (r *Registry) RecordSpan(ts *TraceState, track, cat, name string, start, end int64, parent uint64) uint64 {
	if !Enabled() {
		return 0
	}
	if end < start {
		end = start
	}
	ev := TraceEvent{
		Name: name, Cat: cat, Track: r.Track(track),
		Start: start, Dur: end - start,
	}
	if ts != nil {
		if parent == 0 {
			parent = ts.cur.Load()
		}
		ev.TraceID = ts.traceID
		ev.SpanID = nextSpanID()
		ev.ParentID = parent
		ts.record(SpanRecord{
			Name: name, Cat: cat, Track: ev.Track,
			Start: start, Dur: ev.Dur,
			SpanID: ev.SpanID, ParentID: parent,
		})
	}
	r.addEvent(ev)
	return ev.SpanID
}

// FlowPoint names one end of a flow arrow: a position (track, timestamp)
// inside an already-recorded span of some trace.
type FlowPoint struct {
	Track string
	Ts    int64
	Trace uint64
	Span  uint64
}

// FlowLink records a flow arrow from one span to another — the batching
// fan-in link from each member request's root span to the batch span that
// executed it. Renders as Chrome flow ("s"/"f") events; the from/to
// timestamps must fall inside the respective spans for viewers to bind them.
func FlowLink(cat, name string, from, to FlowPoint) {
	if !Enabled() {
		return
	}
	id := nextSpanID()
	defaultReg.addEvent(TraceEvent{
		Name: name, Cat: cat, Track: defaultReg.Track(from.Track),
		Start: from.Ts, FlowID: id, TraceID: from.Trace, SpanID: from.Span,
	})
	defaultReg.addEvent(TraceEvent{
		Name: name, Cat: cat, Track: defaultReg.Track(to.Track),
		Start: to.Ts, FlowID: id, FlowEnd: true, TraceID: to.Trace, SpanID: to.Span,
	})
}
