package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format exporter (exposition format version 0.0.4): one
// snapshot of every counter, gauge and histogram in the registry. Counters
// render their exact int64 value so a parse of the output round-trips
// losslessly (pinned by the exporter tests). Series are sorted by family
// then label set, so diffs between snapshots are stable.

// family returns the metric family of a full series name (the part before
// any label braces).
func family(series string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i]
	}
	return series
}

// splitSeries splits a full series name into family and label body (the
// text between the braces, "" when unlabelled). Histogram rendering needs
// both: the family takes the _bucket/_sum/_count suffix and the labels merge
// with le, e.g. ugrapher_serve_request_seconds{model="GCN"} renders as
// ugrapher_serve_request_seconds_bucket{model="GCN",le="0.001"}.
func splitSeries(series string) (fam, labels string) {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i], strings.TrimSuffix(series[i+1:], "}")
	}
	return series, ""
}

// WritePrometheus renders the metrics snapshot in the Prometheus text
// format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	counters := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]float64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	type histSnap struct {
		name   string
		bounds []float64
		counts []int64
		sum    float64
		count  int64
	}
	hists := make([]histSnap, 0, len(r.hists))
	for name, h := range r.hists {
		hs := histSnap{name: name, bounds: h.bounds, sum: h.SumSeconds(), count: h.Count()}
		hs.counts = make([]int64, len(h.counts))
		for i := range h.counts {
			hs.counts[i] = h.counts[i].Load()
		}
		hists = append(hists, hs)
	}
	r.mu.Unlock()

	// Counters and gauges, grouped by family with one TYPE line each.
	emit := func(kind string, series []string, value func(string) string) error {
		sort.Strings(series)
		lastFamily := ""
		for _, s := range series {
			if f := family(s); f != lastFamily {
				if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f, kind); err != nil {
					return err
				}
				lastFamily = f
			}
			if _, err := fmt.Fprintf(w, "%s %s\n", s, value(s)); err != nil {
				return err
			}
		}
		return nil
	}

	cs := make([]string, 0, len(counters))
	for s := range counters {
		cs = append(cs, s)
	}
	if err := emit("counter", cs, func(s string) string {
		return strconv.FormatInt(counters[s], 10)
	}); err != nil {
		return err
	}

	gs := make([]string, 0, len(gauges))
	for s := range gauges {
		gs = append(gs, s)
	}
	if err := emit("gauge", gs, func(s string) string {
		return formatFloat(gauges[s])
	}); err != nil {
		return err
	}

	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })
	lastFamily := ""
	for _, h := range hists {
		fam, labels := splitSeries(h.name)
		if fam != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", fam); err != nil {
				return err
			}
			lastFamily = fam
		}
		bucket := func(le string) string {
			if labels == "" {
				return fam + "_bucket{le=\"" + le + "\"}"
			}
			return fam + "_bucket{" + labels + ",le=\"" + le + "\"}"
		}
		suffixed := func(suffix string) string {
			if labels == "" {
				return fam + suffix
			}
			return fam + suffix + "{" + labels + "}"
		}
		cum := int64(0)
		for i, b := range h.bounds {
			cum += h.counts[i]
			if _, err := fmt.Fprintf(w, "%s %d\n", bucket(formatFloat(b)), cum); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.bounds)]
		if _, err := fmt.Fprintf(w, "%s %d\n", bucket("+Inf"), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", suffixed("_sum"), formatFloat(h.sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", suffixed("_count"), h.count); err != nil {
			return err
		}
	}
	return nil
}
