package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format exporter (exposition format version 0.0.4): one
// snapshot of every counter, gauge and histogram in the registry. Counters
// render their exact int64 value so a parse of the output round-trips
// losslessly (pinned by the exporter tests). Series are sorted by family
// then label set, so diffs between snapshots are stable.

// family returns the metric family of a full series name (the part before
// any label braces).
func family(series string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i]
	}
	return series
}

// WritePrometheus renders the metrics snapshot in the Prometheus text
// format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	counters := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]float64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	type histSnap struct {
		name   string
		bounds []float64
		counts []int64
		sum    float64
		count  int64
	}
	hists := make([]histSnap, 0, len(r.hists))
	for name, h := range r.hists {
		hs := histSnap{name: name, bounds: h.bounds, sum: h.SumSeconds(), count: h.Count()}
		hs.counts = make([]int64, len(h.counts))
		for i := range h.counts {
			hs.counts[i] = h.counts[i].Load()
		}
		hists = append(hists, hs)
	}
	r.mu.Unlock()

	// Counters and gauges, grouped by family with one TYPE line each.
	emit := func(kind string, series []string, value func(string) string) error {
		sort.Strings(series)
		lastFamily := ""
		for _, s := range series {
			if f := family(s); f != lastFamily {
				if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f, kind); err != nil {
					return err
				}
				lastFamily = f
			}
			if _, err := fmt.Fprintf(w, "%s %s\n", s, value(s)); err != nil {
				return err
			}
		}
		return nil
	}

	cs := make([]string, 0, len(counters))
	for s := range counters {
		cs = append(cs, s)
	}
	if err := emit("counter", cs, func(s string) string {
		return strconv.FormatInt(counters[s], 10)
	}); err != nil {
		return err
	}

	gs := make([]string, 0, len(gauges))
	for s := range gauges {
		gs = append(gs, s)
	}
	if err := emit("gauge", gs, func(s string) string {
		return formatFloat(gauges[s])
	}); err != nil {
		return err
	}

	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })
	for _, h := range hists {
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", h.name); err != nil {
			return err
		}
		cum := int64(0)
		for i, b := range h.bounds {
			cum += h.counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", h.name, formatFloat(b), cum); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.bounds)]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n", h.name, formatFloat(h.sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count %d\n", h.name, h.count); err != nil {
			return err
		}
	}
	return nil
}
