package telemetry

import (
	"bufio"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

// The exporter contracts the ISSUE pins: Chrome traces are valid JSON with
// monotonically non-decreasing timestamps per track, and the Prometheus
// snapshot round-trips counter values exactly (integers, no float loss).

func TestChromeTraceValidJSONMonotonicPerTrack(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	SetEnabled(true)

	r := Default()
	// Interleave spans across tracks, deliberately out of per-track order in
	// the event buffer (track B's early event arrives after track A's late
	// one), so the exporter's sort is what establishes monotonicity.
	r.addEvent(TraceEvent{Name: "a1", Cat: "k", Track: r.Track("A"), Start: 100, Dur: 50})
	r.addEvent(TraceEvent{Name: "a2", Cat: "k", Track: r.Track("A"), Start: 400, Dur: 20})
	r.addEvent(TraceEvent{Name: "b1", Cat: "k", Track: r.Track("B"), Start: 50, Dur: 10})
	r.addEvent(TraceEvent{Name: "a0", Cat: "k", Track: r.Track("A"), Start: 10, Dur: 5})
	r.Instant("B", "k", "i1", map[string]string{"k": "v"})

	var sb strings.Builder
	if err := r.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}

	var trace struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Tid  int               `json:"tid"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	lastTs := map[int]float64{}
	var spans, instants, meta int
	for _, ev := range trace.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			continue
		case "X":
			spans++
		case "i":
			instants++
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
		if last, ok := lastTs[ev.Tid]; ok && ev.Ts < last {
			t.Errorf("track %d: ts %v < previous %v — not monotonically non-decreasing", ev.Tid, ev.Ts, last)
		}
		lastTs[ev.Tid] = ev.Ts
	}
	if spans != 4 || instants != 1 {
		t.Errorf("got %d spans and %d instants, want 4 and 1", spans, instants)
	}
	if meta < 3 { // process_name + 2 thread_names
		t.Errorf("got %d metadata events, want >= 3", meta)
	}
	// Ts must be microseconds: the 400ns span lands at 0.4µs.
	found := false
	for _, ev := range trace.TraceEvents {
		if ev.Name == "a2" && ev.Ts == 0.4 {
			found = true
		}
	}
	if !found {
		t.Error("span timestamps are not in microseconds")
	}
}

// parsePromCounters reads counter series (exact int64) back out of the text
// format.
func parsePromCounters(t *testing.T, text string) map[string]int64 {
	t.Helper()
	out := map[string]int64{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable line %q", line)
		}
		v, err := strconv.ParseInt(line[sp+1:], 10, 64)
		if err != nil {
			continue // gauges/histogram sums are floats; skip
		}
		out[line[:sp]] = v
	}
	return out
}

func TestPrometheusCounterRoundTripExact(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	SetEnabled(true)

	r := Default()
	// Values chosen to break float64 round-tripping if the exporter ever
	// formats counters as floats: 2^53+1 is not representable as float64.
	want := map[string]int64{
		"big_total": (1 << 53) + 1,
		Series2("ugrapher_kernel_runs_total", "backend", "parallel", "strategy", "WE"): 12345,
		MetricFallbacks: 7,
	}
	for name, v := range want {
		r.Counter(name).Add(v)
	}
	r.Gauge("some_gauge").Set(0.5)
	r.Histogram(MetricKernelWall, DefaultLatencyBuckets).Observe(250_000)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	got := parsePromCounters(t, text)
	for name, v := range want {
		if got[name] != v {
			t.Errorf("counter %s round-tripped to %d, want %d", name, got[name], v)
		}
	}
	for _, frag := range []string{
		"# TYPE ugrapher_fallbacks_total counter",
		"# TYPE some_gauge gauge",
		"# TYPE ugrapher_kernel_wall_seconds histogram",
		`ugrapher_kernel_wall_seconds_bucket{le="+Inf"} 1`,
		"ugrapher_kernel_wall_seconds_count 1",
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("snapshot missing %q:\n%s", frag, text)
		}
	}
	// The cumulative bucket for le=0.001 must include the 250µs observation.
	if !strings.Contains(text, `ugrapher_kernel_wall_seconds_bucket{le="0.001"} 1`) {
		t.Errorf("histogram buckets not cumulative:\n%s", text)
	}
}

// TestPrometheusAlwaysCarriesWellKnownSeries: even a fresh registry exports
// fallbacks/numeric-failure counters at zero, so dashboards never see gaps.
func TestPrometheusAlwaysCarriesWellKnownSeries(t *testing.T) {
	r := NewRegistry()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{MetricFallbacks, MetricNumericFailures, MetricProgramRuns, MetricTrainerEpochs} {
		if !strings.Contains(sb.String(), name+" 0") {
			t.Errorf("fresh snapshot missing %s:\n%s", name, sb.String())
		}
	}
}
