package telemetry_test

// Composition test for the fault-injection satellite: an injected kernel
// panic must surface in telemetry as a failed kernel record/span whose
// identity (op, strategy) matches the *core.KernelError the caller sees —
// the trace tells the same story as the error.

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

func composeGraph(t *testing.T) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	b := graph.NewBuilder(64)
	for i := 0; i < 256; i++ {
		b.AddEdge(int32(rng.Intn(64)), int32(rng.Intn(64)))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestInjectedKernelPanicRecordedAsFailedSpan(t *testing.T) {
	telemetry.Reset()
	t.Cleanup(telemetry.Reset)
	t.Cleanup(faultinject.Reset)
	telemetry.SetEnabled(true)

	g := composeGraph(t)
	const feat = 4 // 256 edges x 4 feats is far below smallWork => 1 worker
	x := tensor.NewDense(g.NumVertices(), feat)
	x.FillRandom(rand.New(rand.NewSource(6)), 1)
	out := tensor.NewDense(g.NumVertices(), feat)
	o := core.Operands{A: tensor.Src(x), B: tensor.NullTensor, C: tensor.Dst(out)}
	p := core.MustCompile(ops.AggrSum, core.Schedule{Strategy: core.ThreadEdge, Group: 1, Tile: 1})
	k, err := core.NewParallelBackend(1).Lower(p, g, o)
	if err != nil {
		t.Fatal(err)
	}

	faultinject.Arm(faultinject.KernelPanic, faultinject.Spec{After: 1})
	err = k.Run()
	var ke *core.KernelError
	if !errors.As(err, &ke) {
		t.Fatalf("Run with injected panic returned %v (%T), want *core.KernelError", err, err)
	}

	recs := telemetry.Default().Records()
	if len(recs) != 1 {
		t.Fatalf("got %d kernel records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Outcome != telemetry.OutcomeKernelError {
		t.Errorf("record outcome = %q, want %q", rec.Outcome, telemetry.OutcomeKernelError)
	}
	if rec.Op != ke.Op {
		t.Errorf("record op %q != KernelError op %q", rec.Op, ke.Op)
	}
	if rec.Schedule != ke.Strategy {
		t.Errorf("record schedule %q != KernelError strategy %q", rec.Schedule, ke.Strategy)
	}
	if rec.Backend != "parallel" {
		t.Errorf("record backend = %q, want parallel", rec.Backend)
	}
	if rec.Err == "" {
		t.Error("failed record carries no error text")
	}

	// The trace holds a failed kernel span on the parallel track with the
	// same identity.
	var span *telemetry.TraceEvent
	tracks := telemetry.Default().TrackNames()
	for _, ev := range telemetry.Default().Events() {
		if ev.Cat == "kernel" {
			ev := ev
			span = &ev
			break
		}
	}
	if span == nil {
		t.Fatal("no kernel span in the trace")
	}
	if tracks[span.Track] != "parallel" {
		t.Errorf("kernel span on track %q, want parallel", tracks[span.Track])
	}
	if span.Args["outcome"] != string(telemetry.OutcomeKernelError) {
		t.Errorf("span outcome arg = %q, want kernel_error", span.Args["outcome"])
	}
	if span.Args["op"] != ke.Op {
		t.Errorf("span op arg = %q, want %q", span.Args["op"], ke.Op)
	}
	if got := telemetry.Default().CounterValues()[`ugrapher_kernel_failures_total{backend="parallel",outcome="kernel_error"}`]; got != 1 {
		t.Errorf("failure counter = %d, want 1", got)
	}

	// After disarming, the same kernel runs clean and records an ok outcome.
	faultinject.Reset()
	if err := k.Run(); err != nil {
		t.Fatalf("rerun after recovered panic: %v", err)
	}
	recs = telemetry.Default().Records()
	if len(recs) != 2 || recs[1].Outcome != telemetry.OutcomeOK {
		t.Errorf("recovery run not recorded as ok: %+v", recs)
	}
}

// TestResilientFallbackSurfacesInTelemetry: the fallback ladder increments
// ugrapher_fallbacks_total and emits a resilient-track instant event, and the
// per-backend records show the failed primary run followed by the secondary
// run.
func TestResilientFallbackSurfacesInTelemetry(t *testing.T) {
	telemetry.Reset()
	t.Cleanup(telemetry.Reset)
	t.Cleanup(faultinject.Reset)
	telemetry.SetEnabled(true)

	g := composeGraph(t)
	const feat = 4
	x := tensor.NewDense(g.NumVertices(), feat)
	x.FillRandom(rand.New(rand.NewSource(7)), 1)
	out := tensor.NewDense(g.NumVertices(), feat)
	o := core.Operands{A: tensor.Src(x), B: tensor.NullTensor, C: tensor.Dst(out)}
	p := core.MustCompile(ops.AggrSum, core.Schedule{Strategy: core.ThreadEdge, Group: 1, Tile: 1})

	rb := core.NewResilientBackend(core.NewParallelBackend(1), nil)
	rb.SetLogger(nil)
	k, err := rb.Lower(p, g, o)
	if err != nil {
		t.Fatal(err)
	}

	// Fail the first (primary) kernel execution only (Every 0 = fire once):
	// the fallback's rerun on the reference backend must succeed.
	faultinject.Arm(faultinject.KernelPanic, faultinject.Spec{After: 1})
	if err := k.Run(); err != nil {
		t.Fatalf("resilient Run should recover via fallback, got %v", err)
	}
	if got := rb.Fallbacks(); got != 1 {
		t.Fatalf("backend fallbacks = %d, want 1", got)
	}
	if got := telemetry.Fallbacks(); got != 1 {
		t.Errorf("telemetry fallbacks = %d, want 1", got)
	}
	if got := telemetry.Default().CounterValues()[telemetry.MetricFallbacks]; got != 1 {
		t.Errorf("%s = %d, want 1", telemetry.MetricFallbacks, got)
	}

	recs := telemetry.Default().Records()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2 (failed primary + successful secondary): %+v", len(recs), recs)
	}
	if recs[0].Backend != "parallel" || recs[0].Outcome != telemetry.OutcomeKernelError {
		t.Errorf("primary record wrong: %+v", recs[0])
	}
	if recs[1].Backend != "reference" || recs[1].Outcome != telemetry.OutcomeOK {
		t.Errorf("secondary record wrong: %+v", recs[1])
	}

	// The resilient track carries the fallback instant event.
	tracks := telemetry.Default().TrackNames()
	found := false
	for _, ev := range telemetry.Default().Events() {
		if ev.Instant && ev.Cat == "fallback" && tracks[ev.Track] == "resilient" {
			found = true
			if ev.Args["from"] != "parallel" || ev.Args["to"] != "reference" {
				t.Errorf("fallback event args wrong: %+v", ev.Args)
			}
		}
	}
	if !found {
		t.Error("no fallback instant event on the resilient track")
	}
}
