// Package telemetry is the execution layer's observability subsystem: named
// atomic counters and gauges, fixed-bucket latency histograms, a per-kernel
// run record stream, and span-based tracing with two exporters (Chrome
// trace-event JSON and Prometheus text format).
//
// The package follows the one-atomic-load disarmed-hook pattern proven in
// internal/faultinject: every instrumentation site first checks Enabled(),
// which is a single atomic load, and does nothing else while telemetry is
// off. That keeps the zero-allocation steady state of compiled model
// programs intact — the sites are compiled into release binaries and cost
// one predictable branch when disarmed. When enabled, sites pay a mutex
// acquisition and (for trace events) an amortised slice append; the budget
// is <5% wall clock on kernel-scale work (EXPERIMENTS.md records measured
// numbers).
//
// The package depends only on the standard library so every layer — core
// backends, the program runtime, models, dglcompat, the CLIs — can import it
// without cycles.
package telemetry

import (
	"math"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// enabled is the process-wide master switch. All hot-path hooks collapse to
// one load of it while off.
var enabled atomic.Bool

// SetEnabled arms (true) or disarms (false) every instrumentation site.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether telemetry is collecting. One atomic load.
func Enabled() bool { return enabled.Load() }

// epoch anchors the monotonic clock all timestamps are relative to, so trace
// timestamps start near zero and survive wall-clock adjustments.
var epoch = time.Now()

// now returns monotonic nanoseconds since process start.
func now() int64 { return int64(time.Since(epoch)) }

// Now exposes the span clock for callers that bracket work manually.
func Now() int64 { return now() }

// Counter is a named monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reads the counter.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a named atomic float64 last-value gauge.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value reads the gauge.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefaultLatencyBuckets are the fixed histogram bounds for kernel wall
// time, in seconds: 10us .. 10s, one decade apart (kernels on the datasets
// of Table 3 span roughly 50us-100ms on the host backends).
var DefaultLatencyBuckets = []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

// BatchSizeBuckets are the bounds for the serve batch-size histogram
// (observed with ObserveValue): powers of two up to the plausible -batch
// range.
var BatchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// Histogram is a fixed-bucket latency histogram with atomic buckets. Bounds
// are upper-inclusive in seconds (Prometheus "le" semantics); observations
// arrive in nanoseconds.
type Histogram struct {
	bounds []float64 // seconds, ascending; an implicit +Inf bucket follows
	counts []atomic.Int64
	sumNs  atomic.Int64
	count  atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one latency in nanoseconds.
func (h *Histogram) Observe(ns int64) {
	s := float64(ns) / 1e9
	i := sort.SearchFloat64s(h.bounds, s)
	h.counts[i].Add(1)
	h.sumNs.Add(ns)
	h.count.Add(1)
}

// ObserveValue records one unitless observation (e.g. a batch size) against
// bounds interpreted in the same unit. The sum is stored scaled so
// SumSeconds — really "sum in the bound unit" for such histograms — stays
// exact for small integers.
func (h *Histogram) ObserveValue(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sumNs.Add(int64(v * 1e9))
	h.count.Add(1)
}

// Count reports how many observations the histogram holds.
func (h *Histogram) Count() int64 { return h.count.Load() }

// SumSeconds reports the observation total in seconds.
func (h *Histogram) SumSeconds() float64 { return float64(h.sumNs.Load()) / 1e9 }

// Registry holds a metric namespace plus the trace-event and kernel-record
// streams. The package-level Default registry is what the instrumentation
// hooks write to; tests may build private registries.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	tracks     map[string]int
	trackNames []string
	events     []TraceEvent
	maxEvents  int

	sites   []*KernelSite
	records []KernelRecord // ring buffer, maxRecords capacity
	recPos  int
	recFull bool

	// Pre-registered series, resolved once so hot paths skip the map.
	fallbacks     *Counter
	numericFails  *Counter
	dropped       *Counter
	programRuns   *Counter
	trainerEpochs *Counter
}

// Well-known series names. Counters end in _total per Prometheus convention.
const (
	MetricFallbacks       = "ugrapher_fallbacks_total"
	MetricNumericFailures = "ugrapher_numeric_check_failures_total"
	MetricDroppedEvents   = "ugrapher_trace_events_dropped_total"
	MetricProgramRuns     = "ugrapher_program_runs_total"
	MetricTrainerEpochs   = "ugrapher_trainer_epochs_total"
	MetricKernelWall      = "ugrapher_kernel_wall_seconds"
)

const (
	defaultMaxEvents  = 1 << 19
	defaultMaxRecords = 1 << 13
)

// NewRegistry builds an empty registry with the well-known series
// pre-registered (so snapshots always carry fallbacks_total etc., even at
// zero).
func NewRegistry() *Registry {
	r := &Registry{}
	r.init()
	return r
}

func (r *Registry) init() {
	r.counters = map[string]*Counter{}
	r.gauges = map[string]*Gauge{}
	r.hists = map[string]*Histogram{}
	r.tracks = map[string]int{}
	r.trackNames = nil
	r.events = nil
	r.maxEvents = defaultMaxEvents
	r.sites = nil
	r.records = make([]KernelRecord, 0, defaultMaxRecords)
	r.recPos = 0
	r.recFull = false
	r.fallbacks = r.counterLocked(MetricFallbacks)
	r.numericFails = r.counterLocked(MetricNumericFailures)
	r.dropped = r.counterLocked(MetricDroppedEvents)
	r.programRuns = r.counterLocked(MetricProgramRuns)
	r.trainerEpochs = r.counterLocked(MetricTrainerEpochs)
}

// SetMaxEvents bounds the trace-event buffer at n events and pre-allocates
// its backing array, so enabled-path appends never grow the slice — the
// zero-alloc guarantee for traced steady-state runs. Events beyond the bound
// are dropped and counted (ugrapher_trace_events_dropped_total).
func (r *Registry) SetMaxEvents(n int) {
	if n < 1 {
		n = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.maxEvents = n
	if cap(r.events) < n {
		grown := make([]TraceEvent, len(r.events), n)
		copy(grown, r.events)
		r.events = grown
	}
}

// SetBuildInfo publishes the conventional ugrapher_build_info gauge (value
// fixed at 1; the interesting data is in the labels). The Go toolchain
// version label is filled in automatically.
func (r *Registry) SetBuildInfo(version, backend string) {
	r.Gauge(Series3("ugrapher_build_info",
		"version", version,
		"go_version", runtime.Version(),
		"backend", backend)).Set(1)
}

// Reset clears every metric, track, event, record and site, restoring the
// registry to its freshly constructed state. Sites created before Reset keep
// functioning but stop being exported.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.init()
}

// defaultReg is the process-wide registry the hooks write to.
var defaultReg = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultReg }

// Reset disarms telemetry and clears the default registry. Tests use it to
// isolate from each other.
func Reset() {
	SetEnabled(false)
	defaultReg.Reset()
}

func (r *Registry) counterLocked(name string) *Counter {
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Counter returns the named counter, creating it on first use. The name is
// the full Prometheus series including any labels, e.g.
// `ugrapher_kernel_runs_total{backend="parallel",strategy="TE"}`.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counterLocked(name)
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with bounds on first
// use (later calls keep the original bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// CounterValues snapshots every counter series (tests and exporter
// round-trip checks).
func (r *Registry) CounterValues() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	return out
}

// GaugeValues snapshots every gauge series.
func (r *Registry) GaugeValues() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.gauges))
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	return out
}

// Series1 renders name{key="value"} — the label form the exporters and
// sites agree on. Values are escaped per the Prometheus text format.
func Series1(name, key, value string) string {
	return name + "{" + key + "=\"" + escapeLabel(value) + "\"}"
}

// Series2 renders name{k1="v1",k2="v2"} with keys in the given order.
func Series2(name, k1, v1, k2, v2 string) string {
	return name + "{" + k1 + "=\"" + escapeLabel(v1) + "\"," + k2 + "=\"" + escapeLabel(v2) + "\"}"
}

// Series3 renders name{k1="v1",k2="v2",k3="v3"} with keys in the given
// order.
func Series3(name, k1, v1, k2, v2, k3, v3 string) string {
	return name + "{" + k1 + "=\"" + escapeLabel(v1) + "\"," +
		k2 + "=\"" + escapeLabel(v2) + "\"," +
		k3 + "=\"" + escapeLabel(v3) + "\"}"
}

func escapeLabel(v string) string {
	needs := false
	for i := 0; i < len(v); i++ {
		if v[i] == '\\' || v[i] == '"' || v[i] == '\n' {
			needs = true
			break
		}
	}
	if !needs {
		return v
	}
	out := make([]byte, 0, len(v)+4)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, v[i])
		}
	}
	return string(out)
}

// formatFloat renders a float the way the Prometheus exporter does.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

