package telemetry

import "context"

// Spans, trace events, kernel sites and the kernel-run record stream.
//
// The span hierarchy (DESIGN.md §8):
//
//	track "program"    compile, run, one span per program step
//	track "trainer"    one span per Trainer epoch
//	track "dglcompat"  one span per update_all / apply_edges call
//	track <backend>    lower spans and one kernel span per CompiledKernel.Run
//	track "scheduler"  instant events for per-op strategy choices
//	track "resilient"  instant events for fallback-ladder activations
//
// Tracks render as separate rows ("threads") in chrome://tracing / Perfetto.

// TraceEvent is one completed span or instant event, timestamped in
// monotonic nanoseconds since process start.
type TraceEvent struct {
	Name  string
	Cat   string
	Track int
	Start int64 // ns
	Dur   int64 // ns; 0 with Instant true means a point event
	// Instant marks a point event (Chrome ph "i") rather than a span.
	Instant bool
	Args    map[string]string

	// Causal-trace identity (DESIGN.md §8). Zero values mean the event is
	// track-local (pre-trace behaviour).
	TraceID  uint64
	SpanID   uint64
	ParentID uint64
	// FlowID marks a flow-arrow endpoint (Chrome ph "s"/"f"); FlowEnd
	// distinguishes the finish end.
	FlowID  uint64
	FlowEnd bool
}

// Track interns a track name to a stable id (the Chrome "tid").
func (r *Registry) Track(name string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.trackLocked(name)
}

func (r *Registry) trackLocked(name string) int {
	if id, ok := r.tracks[name]; ok {
		return id
	}
	id := len(r.trackNames)
	r.tracks[name] = id
	r.trackNames = append(r.trackNames, name)
	return id
}

// TrackNames lists the interned track names, index == track id.
func (r *Registry) TrackNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.trackNames))
	copy(out, r.trackNames)
	return out
}

// addEvent appends ev, dropping (and counting) when the buffer is full so a
// long-running process cannot grow without bound.
func (r *Registry) addEvent(ev TraceEvent) {
	r.mu.Lock()
	if len(r.events) >= r.maxEvents {
		r.mu.Unlock()
		r.dropped.Inc()
		return
	}
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// Events snapshots the collected trace events in arrival order.
func (r *Registry) Events() []TraceEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceEvent, len(r.events))
	copy(out, r.events)
	return out
}

// Span is an open interval on one track. The zero Span (telemetry disabled
// at StartSpan time) is inert: End and its variants are no-ops, so call
// sites need no second Enabled() check.
type Span struct {
	reg   *Registry
	name  string
	cat   string
	track int
	start int64

	// Trace identity; zero when the span was opened without a TraceState.
	ts       *TraceState
	traceID  uint64
	spanID   uint64
	parentID uint64
}

// StartSpan opens a span on the default registry; see Registry.StartSpan.
func StartSpan(track, cat, name string) Span {
	if !Enabled() {
		return Span{}
	}
	return defaultReg.StartSpan(track, cat, name)
}

// StartSpan opens a span named name on the given track. Returns the zero
// (inert) Span while telemetry is disabled.
func (r *Registry) StartSpan(track, cat, name string) Span {
	if !Enabled() {
		return Span{}
	}
	return Span{reg: r, name: name, cat: cat, track: r.Track(track), start: now()}
}

// End closes the span successfully.
func (s Span) End() { s.end(nil) }

// EndErr closes the span as failed, attaching the error text.
func (s Span) EndErr(errText string) {
	if s.reg == nil {
		return
	}
	s.end(map[string]string{"outcome": "error", "error": errText})
}

// EndArgs closes the span with explicit args.
func (s Span) EndArgs(args map[string]string) { s.end(args) }

func (s Span) end(args map[string]string) {
	if s.reg == nil {
		return
	}
	dur := now() - s.start
	s.reg.addEvent(TraceEvent{
		Name: s.name, Cat: s.cat, Track: s.track,
		Start: s.start, Dur: dur, Args: args,
		TraceID: s.traceID, SpanID: s.spanID, ParentID: s.parentID,
	})
	if s.ts != nil {
		s.ts.record(SpanRecord{
			Name: s.name, Cat: s.cat, Track: s.track,
			Start: s.start, Dur: dur,
			SpanID: s.spanID, ParentID: s.parentID,
			Err: args["error"], // nil-map lookup is free on the OK path
		})
	}
}

// Instant records a point event on a track (fallbacks, schedule choices).
func (r *Registry) Instant(track, cat, name string, args map[string]string) {
	if !Enabled() {
		return
	}
	r.addEvent(TraceEvent{
		Name: name, Cat: cat, Track: r.Track(track),
		Start: now(), Instant: true, Args: args,
	})
}

// Outcome classifies how a kernel run ended. The execution layer maps its
// error taxonomy (DESIGN.md §7) onto these values.
type Outcome string

const (
	OutcomeOK           Outcome = "ok"
	OutcomeKernelError  Outcome = "kernel_error"
	OutcomeNumericError Outcome = "numeric_error"
	OutcomeCancelled    Outcome = "cancelled"
	OutcomeError        Outcome = "error"
)

// SimSample carries the simulator metrics of one sim-backend run.
type SimSample struct {
	Cycles    float64
	L1HitRate float64
	L2HitRate float64
}

// KernelRecord is one entry of the per-kernel-run record stream.
type KernelRecord struct {
	Op       string
	Strategy string // basic strategy code: TV, TE, WV, WE
	Schedule string // full schedule, e.g. WE_G8_T4
	Backend  string
	Vertices int64
	Edges    int64
	WallNs   int64
	Outcome  Outcome
	Err      string
	// HasSim marks records produced by the sim backend; the three fields
	// below are only meaningful when it is set.
	HasSim    bool
	SimCycles float64
	L1HitRate float64
	L2HitRate float64
}

// addRecord appends to the bounded ring (oldest entries overwritten).
func (r *Registry) addRecord(rec KernelRecord) {
	r.mu.Lock()
	if len(r.records) < cap(r.records) {
		r.records = append(r.records, rec)
	} else {
		r.records[r.recPos] = rec
		r.recPos = (r.recPos + 1) % cap(r.records)
		r.recFull = true
	}
	r.mu.Unlock()
}

// Records snapshots the record stream, oldest first.
func (r *Registry) Records() []KernelRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.recFull {
		out := make([]KernelRecord, len(r.records))
		copy(out, r.records)
		return out
	}
	out := make([]KernelRecord, 0, len(r.records))
	out = append(out, r.records[r.recPos:]...)
	out = append(out, r.records[:r.recPos]...)
	return out
}

// KernelSite is the per-lowered-kernel instrumentation handle. Backends
// create one at Lower time (compile-time cost only) so each Run records
// through pre-resolved counters with no map lookups. A nil *KernelSite is
// inert — backends that wrap other backends' kernels null the inner site to
// avoid double-counting.
type KernelSite struct {
	reg      *Registry
	Op       string
	Strategy string
	Schedule string
	Backend  string
	Vertices int64
	Edges    int64

	track int
	runs  *Counter
	edges *Counter
	wall  *Histogram
	// okArgs is the span-args map for successful runs, built once at Lower
	// time so the steady-state End path allocates nothing.
	okArgs map[string]string

	nRuns   Counter
	nFails  Counter
	totalNs Counter
}

// NewKernelSite registers a site on the default registry.
func NewKernelSite(op, strategy, schedule, backend string, vertices, edges int64) *KernelSite {
	return defaultReg.NewKernelSite(op, strategy, schedule, backend, vertices, edges)
}

// NewKernelSite builds and registers the instrumentation handle for one
// lowered kernel. Safe to call with telemetry disabled; the site arms itself
// automatically when telemetry is enabled later.
func (r *Registry) NewKernelSite(op, strategy, schedule, backend string, vertices, edges int64) *KernelSite {
	s := &KernelSite{
		reg: r, Op: op, Strategy: strategy, Schedule: schedule, Backend: backend,
		Vertices: vertices, Edges: edges,
		track: r.Track(backend),
		runs:  r.Counter(Series2("ugrapher_kernel_runs_total", "backend", backend, "strategy", strategy)),
		edges: r.Counter(Series1("ugrapher_kernel_edges_processed_total", "backend", backend)),
		wall:  r.Histogram(MetricKernelWall, DefaultLatencyBuckets),
		okArgs: map[string]string{
			"op":       op,
			"strategy": strategy,
			"schedule": schedule,
			"outcome":  string(OutcomeOK),
		},
	}
	r.mu.Lock()
	r.sites = append(r.sites, s)
	r.mu.Unlock()
	return s
}

// Begin opens a kernel run. Returns 0 (and does nothing else) while
// telemetry is disabled or the site is nil — one atomic load.
func (s *KernelSite) Begin() int64 {
	if s == nil || !Enabled() {
		return 0
	}
	return now()
}

// End closes a kernel run begun at start: bumps the per-strategy counters,
// observes the latency histogram, appends the trace span and the kernel
// record, and — for sim-backend runs — publishes the cache-hit gauges.
// Inert while disabled or on a nil site.
func (s *KernelSite) End(start int64, outcome Outcome, errText string, sim *SimSample) {
	if s == nil || !Enabled() {
		return
	}
	s.endTrace(nil, start, outcome, errText, sim)
}

// EndCtx is End under the request trace carried by ctx: the kernel span
// parents onto the trace's current causal parent (the program step that ran
// it). Inert while disabled or on a nil site; identical to End when ctx
// carries no trace. The OK path allocates nothing — span args are the
// precomputed okArgs, ids ride in the pre-sized structs.
func (s *KernelSite) EndCtx(ctx context.Context, start int64, outcome Outcome, errText string, sim *SimSample) {
	if s == nil || !Enabled() {
		return
	}
	s.endTrace(TraceOf(ctx), start, outcome, errText, sim)
}

func (s *KernelSite) endTrace(ts *TraceState, start int64, outcome Outcome, errText string, sim *SimSample) {
	end := now()
	if start == 0 {
		start = end // enabled mid-run: report a zero-length span, not garbage
	}
	dur := end - start
	s.runs.Inc()
	s.edges.Add(s.Edges)
	s.wall.Observe(dur)
	s.nRuns.Inc()
	s.totalNs.Add(dur)

	rec := KernelRecord{
		Op: s.Op, Strategy: s.Strategy, Schedule: s.Schedule, Backend: s.Backend,
		Vertices: s.Vertices, Edges: s.Edges,
		WallNs: dur, Outcome: outcome, Err: errText,
	}
	// Steady state (ok, no sim) reuses the precomputed args map; failures
	// and sim runs are cold and may allocate a fresh one.
	args := s.okArgs
	if outcome != OutcomeOK || sim != nil {
		args = map[string]string{
			"op":       s.Op,
			"strategy": s.Strategy,
			"schedule": s.Schedule,
			"outcome":  string(outcome),
		}
	}
	if outcome != OutcomeOK {
		s.nFails.Inc()
		s.reg.Counter(Series2("ugrapher_kernel_failures_total", "backend", s.Backend, "outcome", string(outcome))).Inc()
		if outcome == OutcomeNumericError {
			s.reg.numericFails.Inc()
		}
		if errText != "" {
			args["error"] = errText
		}
	}
	if sim != nil {
		rec.HasSim = true
		rec.SimCycles, rec.L1HitRate, rec.L2HitRate = sim.Cycles, sim.L1HitRate, sim.L2HitRate
		s.reg.Gauge("ugrapher_sim_l1_hit_rate").Set(sim.L1HitRate)
		s.reg.Gauge("ugrapher_sim_l2_hit_rate").Set(sim.L2HitRate)
		s.reg.Gauge("ugrapher_sim_cycles_last").Set(sim.Cycles)
		s.reg.Counter("ugrapher_sim_runs_total").Inc()
		args["sim_cycles"] = formatFloat(sim.Cycles)
	}
	s.reg.addRecord(rec)
	ev := TraceEvent{
		Name: s.Op, Cat: "kernel", Track: s.track,
		Start: start, Dur: dur, Args: args,
	}
	if ts != nil {
		ev.TraceID = ts.traceID
		ev.SpanID = nextSpanID()
		ev.ParentID = ts.cur.Load()
		ts.record(SpanRecord{
			Name: s.Op, Cat: "kernel", Track: s.track,
			Start: start, Dur: dur,
			SpanID: ev.SpanID, ParentID: ev.ParentID,
			Err: errText,
		})
	}
	s.reg.addEvent(ev)
}

// SiteStats is the aggregate view of one kernel site (profile tables).
type SiteStats struct {
	Op       string
	Strategy string
	Schedule string
	Backend  string
	Runs     int64
	Failures int64
	TotalNs  int64
}

// SiteStats snapshots every registered site's aggregates.
func (r *Registry) SiteStats() []SiteStats {
	r.mu.Lock()
	sites := make([]*KernelSite, len(r.sites))
	copy(sites, r.sites)
	r.mu.Unlock()
	out := make([]SiteStats, 0, len(sites))
	for _, s := range sites {
		out = append(out, SiteStats{
			Op: s.Op, Strategy: s.Strategy, Schedule: s.Schedule, Backend: s.Backend,
			Runs: s.nRuns.Value(), Failures: s.nFails.Value(), TotalNs: s.totalNs.Value(),
		})
	}
	return out
}

// RecordScheduleChoice audits one scheduler decision: which schedule the
// engine picked for op. Counted per basic strategy and emitted as an instant
// event on the "scheduler" track. No-op while telemetry is disabled.
func RecordScheduleChoice(op, strategy, schedule string) {
	if !Enabled() {
		return
	}
	defaultReg.Counter(Series1("ugrapher_schedule_choices_total", "strategy", strategy)).Inc()
	defaultReg.Instant("scheduler", "schedule", op, map[string]string{
		"op": op, "schedule": schedule, "strategy": strategy,
	})
}

// RecordFallback counts one fallback-ladder activation. The counter always
// increments (the fallback path is cold and the count must survive a later
// enable); the instant event is only emitted while telemetry is enabled.
func RecordFallback(op, from, to string) {
	defaultReg.fallbacks.Inc()
	if Enabled() {
		defaultReg.Instant("resilient", "fallback", op, map[string]string{
			"op": op, "from": from, "to": to,
		})
	}
}

// Fallbacks reports the process-wide fallback count.
func Fallbacks() int64 { return defaultReg.fallbacks.Value() }

// CountProgramRun counts one compiled-program Run completion.
func CountProgramRun() {
	if !Enabled() {
		return
	}
	defaultReg.programRuns.Inc()
}

// CountTrainerEpoch counts one Trainer epoch completion.
func CountTrainerEpoch() {
	if !Enabled() {
		return
	}
	defaultReg.trainerEpochs.Inc()
}
