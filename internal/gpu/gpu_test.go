package gpu

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCacheBasic(t *testing.T) {
	c := NewCache(4*128, 128, 2) // 4 lines, 2-way: 2 sets
	if c.Access(0) {
		t.Fatal("cold access should miss")
	}
	if !c.Access(0) {
		t.Fatal("repeat access should hit")
	}
	acc, hits := c.Stats()
	if acc != 2 || hits != 1 {
		t.Fatalf("stats = (%d,%d)", acc, hits)
	}
	if c.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", c.HitRate())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2 sets x 2 ways. Lines 0,2,4 map to set 0.
	c := NewCache(4*128, 128, 2)
	c.Access(0)
	c.Access(2)
	c.Access(0) // 0 is now MRU
	c.Access(4) // evicts LRU (2)
	if !c.Access(0) {
		t.Fatal("0 should still be cached")
	}
	if c.Access(2) {
		t.Fatal("2 should have been evicted")
	}
}

func TestCacheTinyCapacity(t *testing.T) {
	c := NewCache(10, 128, 4) // less than one line: degrades to 1 line
	c.Access(1)
	if !c.Access(1) {
		t.Fatal("single-line cache should hold one line")
	}
	if c.Access(2) {
		t.Fatal("different line must miss in single-line cache")
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache(1024, 128, 2)
	c.Access(1)
	c.Reset()
	if acc, _ := c.Stats(); acc != 0 {
		t.Fatal("reset should clear counters")
	}
	if c.Access(1) {
		t.Fatal("reset should clear contents")
	}
	if c.HitRate() != 0 {
		t.Fatal("hit rate of empty cache should be 0")
	}
}

// Property: hit rate is always within [0,1] and hits <= accesses.
func TestQuickCacheInvariant(t *testing.T) {
	f := func(lines []uint8) bool {
		c := NewCache(2048, 128, 4)
		for _, l := range lines {
			c.Access(int64(l))
		}
		acc, hits := c.Stats()
		return hits <= acc && c.HitRate() >= 0 && c.HitRate() <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheWorkingSetTransition(t *testing.T) {
	// Working set smaller than capacity: near-perfect reuse hit rate.
	// Working set 4x capacity with cyclic access: near-zero hit rate (LRU
	// pathological pattern).
	c := NewCache(64*128, 128, 4)
	for pass := 0; pass < 10; pass++ {
		for l := int64(0); l < 32; l++ {
			c.Access(l)
		}
	}
	if c.HitRate() < 0.85 {
		t.Errorf("small working set hit rate = %v, want high", c.HitRate())
	}
	c2 := NewCache(64*128, 128, 4)
	for pass := 0; pass < 10; pass++ {
		for l := int64(0); l < 256; l++ {
			c2.Access(l)
		}
	}
	if c2.HitRate() > 0.2 {
		t.Errorf("oversized cyclic working set hit rate = %v, want low", c2.HitRate())
	}
}

// fakeKernel is a uniform synthetic kernel for simulator tests.
type fakeKernel struct {
	blocks      int
	warps       int
	work        BlockWork
	lineSpread  int64 // lines per block trace
	linesShared bool  // all blocks touch the same lines
}

func (f fakeKernel) NumBlocks() int            { return f.blocks }
func (f fakeKernel) WarpsPerBlock() int        { return f.warps }
func (f fakeKernel) BlockWork(b int) BlockWork { return f.work }
func (f fakeKernel) Footprint() int64 {
	if f.linesShared {
		return f.lineSpread * 128
	}
	return int64(f.blocks) * f.lineSpread * 128
}
func (f fakeKernel) TraceBlock(b int, visit func(WarpAccess)) {
	base := int64(0)
	if !f.linesShared {
		base = int64(b) * f.lineSpread
	}
	for i := int64(0); i < f.lineSpread; i++ {
		visit(WarpAccess{Lines: []int64{base + i}})
	}
}

func TestSimulateEmptyKernel(t *testing.T) {
	d := V100()
	m := Simulate(d, fakeKernel{blocks: 0, warps: 8})
	if m.Cycles != d.LaunchOverheadCycles {
		t.Fatalf("empty kernel cycles = %v", m.Cycles)
	}
}

func TestSimulateMoreBlocksTakeLonger(t *testing.T) {
	d := V100()
	w := BlockWork{Insts: 1000, Transactions: 100, ActiveWarps: 8}
	small := Simulate(d, fakeKernel{blocks: 100, warps: 8, work: w, lineSpread: 64})
	large := Simulate(d, fakeKernel{blocks: 10000, warps: 8, work: w, lineSpread: 64})
	if large.Cycles <= small.Cycles {
		t.Fatalf("100x work should cost more: %v vs %v", small.Cycles, large.Cycles)
	}
}

func TestSimulateSharedLinesHitInCache(t *testing.T) {
	d := V100()
	w := BlockWork{Insts: 100, Transactions: 32, ActiveWarps: 8}
	shared := Simulate(d, fakeKernel{blocks: 2000, warps: 8, work: w, lineSpread: 32, linesShared: true})
	scattered := Simulate(d, fakeKernel{blocks: 2000, warps: 8, work: w, lineSpread: 32})
	if shared.L2HitRate <= scattered.L2HitRate {
		t.Fatalf("shared lines should hit more: %v vs %v", shared.L2HitRate, scattered.L2HitRate)
	}
	if shared.Cycles > scattered.Cycles {
		t.Fatalf("better locality should not be slower: %v vs %v", shared.Cycles, scattered.Cycles)
	}
}

func TestSimulateMetricsRanges(t *testing.T) {
	d := A100()
	w := BlockWork{Insts: 500, Transactions: 50, AtomicTransactions: 10, SerialRounds: 5, ActiveWarps: 8}
	m := Simulate(d, fakeKernel{blocks: 5000, warps: 8, work: w, lineSpread: 40})
	if m.Occupancy < 0 || m.Occupancy > 1 {
		t.Errorf("occupancy out of range: %v", m.Occupancy)
	}
	if m.SMEfficiency < 0 || m.SMEfficiency > 1 {
		t.Errorf("sm efficiency out of range: %v", m.SMEfficiency)
	}
	if m.L1HitRate < 0 || m.L1HitRate > 1 || m.L2HitRate < 0 || m.L2HitRate > 1 {
		t.Errorf("hit rates out of range: %v %v", m.L1HitRate, m.L2HitRate)
	}
	if m.Cycles <= 0 {
		t.Errorf("cycles = %v", m.Cycles)
	}
	if m.Insts != 500*5000 {
		t.Errorf("insts = %v", m.Insts)
	}
}

// imbalancedKernel gives all work to a handful of blocks.
type imbalancedKernel struct {
	fakeKernel
	heavyEvery int
	heavyScale float64
}

func (k imbalancedKernel) BlockWork(b int) BlockWork {
	w := k.work
	if b%k.heavyEvery == 0 {
		w.Insts *= k.heavyScale
		w.Transactions *= k.heavyScale
	}
	return w
}

func TestSimulateImbalanceLowersEfficiency(t *testing.T) {
	d := V100()
	w := BlockWork{Insts: 200, Transactions: 20, ActiveWarps: 8}
	balanced := Simulate(d, fakeKernel{blocks: 800, warps: 8, work: w, lineSpread: 16})
	imbalanced := Simulate(d, imbalancedKernel{
		fakeKernel: fakeKernel{blocks: 800, warps: 8, work: w, lineSpread: 16},
		heavyEvery: 400, heavyScale: 200,
	})
	if imbalanced.SMEfficiency >= balanced.SMEfficiency {
		t.Fatalf("imbalance should lower SM efficiency: %v vs %v",
			imbalanced.SMEfficiency, balanced.SMEfficiency)
	}
	if imbalanced.Occupancy >= balanced.Occupancy {
		t.Fatalf("imbalance should lower achieved occupancy: %v vs %v",
			imbalanced.Occupancy, balanced.Occupancy)
	}
}

func TestSimulateFewBlocksLowOccupancy(t *testing.T) {
	d := V100()
	w := BlockWork{Insts: 1000, Transactions: 100, ActiveWarps: 8}
	few := Simulate(d, fakeKernel{blocks: 10, warps: 8, work: w, lineSpread: 32})
	many := Simulate(d, fakeKernel{blocks: 100000, warps: 8, work: w, lineSpread: 32})
	if few.Occupancy >= many.Occupancy {
		t.Fatalf("tiny launch should achieve lower occupancy: %v vs %v",
			few.Occupancy, many.Occupancy)
	}
}

func TestSimulateAtomicsCost(t *testing.T) {
	d := V100()
	base := BlockWork{Insts: 100, Transactions: 100, ActiveWarps: 8}
	atom := base
	atom.AtomicTransactions = 100
	atom.SerialRounds = 300
	noAtomics := Simulate(d, fakeKernel{blocks: 3000, warps: 8, work: base, lineSpread: 32})
	withAtomics := Simulate(d, fakeKernel{blocks: 3000, warps: 8, work: atom, lineSpread: 32})
	if withAtomics.Cycles <= noAtomics.Cycles {
		t.Fatalf("atomics should cost cycles: %v vs %v", noAtomics.Cycles, withAtomics.Cycles)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	d := V100()
	w := BlockWork{Insts: 300, Transactions: 30, ActiveWarps: 8}
	k := fakeKernel{blocks: 1234, warps: 8, work: w, lineSpread: 20}
	a := Simulate(d, k)
	b := Simulate(d, k)
	if a != b {
		t.Fatal("simulation must be deterministic")
	}
}

func TestWithMaxSampledBlocks(t *testing.T) {
	d := V100()
	w := BlockWork{Insts: 300, Transactions: 30, ActiveWarps: 8}
	k := fakeKernel{blocks: 5000, warps: 8, work: w, lineSpread: 20}
	m := Simulate(d, k, WithMaxSampledBlocks(16))
	if m.SampledBlocks != 16 {
		t.Fatalf("SampledBlocks = %d, want 16", m.SampledBlocks)
	}
	m2 := Simulate(d, k, WithMaxSampledBlocks(0)) // ignored
	if m2.SampledBlocks == 0 {
		t.Fatal("zero sample option should be ignored")
	}
}

func TestDeviceSpecs(t *testing.T) {
	v, a := V100(), A100()
	if v.NumSMs != 80 || a.NumSMs != 108 {
		t.Fatal("SM counts must match Table 8")
	}
	if v.WarpsPerBlock() != 8 {
		t.Fatalf("warps per block = %d", v.WarpsPerBlock())
	}
	if a.TensorCoreSpeedup <= v.TensorCoreSpeedup {
		t.Fatal("A100 must have tensor-core GEMM advantage")
	}
	if a.L2Bytes <= v.L2Bytes {
		t.Fatal("A100 L2 should be larger")
	}
}

func TestGEMMCycles(t *testing.T) {
	v, a := V100(), A100()
	big := GEMMCycles(v, 100000, 256, 256)
	small := GEMMCycles(v, 1000, 256, 256)
	if big <= small {
		t.Fatal("bigger GEMM should cost more")
	}
	if GEMMCycles(a, 100000, 256, 256) >= big {
		t.Fatal("A100 GEMM should be faster than V100")
	}
}

func TestElementwiseCycles(t *testing.T) {
	v := V100()
	if ElementwiseCycles(v, 1000000, 2) <= ElementwiseCycles(v, 1000, 2) {
		t.Fatal("more elements should cost more")
	}
}

func TestSimulateRandomisedInvariants(t *testing.T) {
	d := V100()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		w := BlockWork{
			Insts:        float64(rng.Intn(10000)),
			Transactions: float64(rng.Intn(1000)),
			ActiveWarps:  1 + rng.Intn(8),
		}
		k := fakeKernel{blocks: 1 + rng.Intn(3000), warps: 8, work: w, lineSpread: 1 + int64(rng.Intn(64))}
		m := Simulate(d, k)
		if m.Cycles < d.LaunchOverheadCycles {
			t.Fatalf("trial %d: cycles below launch overhead", trial)
		}
		if m.Occupancy < 0 || m.Occupancy > 1 || m.SMEfficiency < 0 || m.SMEfficiency > 1 {
			t.Fatalf("trial %d: metric out of range: %+v", trial, m)
		}
	}
}

func TestBoundByAttribution(t *testing.T) {
	d := V100()
	// Empty kernel: launch-bound.
	if m := Simulate(d, fakeKernel{blocks: 1, warps: 8, work: BlockWork{Insts: 1, ActiveWarps: 1}, lineSpread: 1}); m.BoundBy != "launch" {
		t.Errorf("tiny kernel bound = %q, want launch", m.BoundBy)
	}
	// Compute-heavy kernel: sm-makespan.
	heavy := BlockWork{Insts: 1e6, Transactions: 10, ActiveWarps: 8}
	if m := Simulate(d, fakeKernel{blocks: 500, warps: 8, work: heavy, lineSpread: 4}); m.BoundBy != "sm-makespan" {
		t.Errorf("compute kernel bound = %q, want sm-makespan", m.BoundBy)
	}
	// Atomic-storm kernel.
	atomic := BlockWork{Insts: 10, Transactions: 5000, AtomicTransactions: 5000, ActiveWarps: 8}
	m := Simulate(d, fakeKernel{blocks: 5000, warps: 8, work: atomic, lineSpread: 2, linesShared: true})
	if m.BoundBy != "atomic-bw" {
		t.Errorf("atomic kernel bound = %q, want atomic-bw", m.BoundBy)
	}
}
