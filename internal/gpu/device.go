// Package gpu is a deterministic GPU execution-model simulator.
//
// The paper evaluates uGrapher on real NVIDIA V100 and A100 GPUs; this
// package is the substitution (see DESIGN.md): it models the mechanisms that
// the paper's schedule trade-offs act through —
//
//   - parallelism: blocks/warps vs SM count and per-SM warp capacity
//     (occupancy, latency hiding),
//   - locality: per-SM L1 and shared L2 set-associative LRU caches fed by
//     coalesced warp-level access traces,
//   - work-efficiency: instruction overhead of grouping/tiling and
//     serialised atomic read-modify-write traffic,
//   - load balance: per-block work summaries scheduled onto SMs (skewed
//     degree distributions make some blocks heavy, idling other SMs).
//
// Times are reported in device cycles; they are not calibrated to wall-clock
// microseconds, but ratios between schedules are meaningful, which is what
// every experiment in the paper compares.
package gpu

// Device describes a simulated GPU. All throughputs are per device cycle.
type Device struct {
	Name            string
	NumSMs          int
	WarpSize        int
	MaxWarpsPerSM   int // resident-warp capacity (occupancy denominator)
	MaxBlocksPerSM  int
	ThreadsPerBlock int // launch configuration used by all kernels

	L1Bytes   int // per-SM L1/shared-memory carveout used as cache
	L2Bytes   int // device-wide L2
	LineBytes int // cache line granularity for coalescing and caching

	// Latencies in cycles.
	L1Latency   float64
	L2Latency   float64
	DRAMLatency float64

	// Throughputs.
	IssuePerSM        float64 // warp-instructions issued per cycle per SM
	L1PerSM           float64 // L1 transactions served per cycle per SM
	L2BytesPerCycle   float64 // device-wide L2 bandwidth
	DRAMBytesPerCycle float64 // device-wide DRAM bandwidth
	// AtomicBytesPerCycle is the device-wide throughput of atomic
	// read-modify-write traffic at the L2 (atomics resolve there).
	AtomicBytesPerCycle float64
	// FP32PerCycle is device-wide peak fused multiply-add lanes (dense ops).
	FP32PerCycle float64
	// TensorCoreSpeedup multiplies dense GEMM throughput (A100 TF32 cores;
	// the paper notes A100's faster GEMM shrinks the dense share and raises
	// uGrapher's end-to-end speedup there).
	TensorCoreSpeedup float64
	// HidingWarps is the number of resident warps per SM needed to fully
	// hide memory latency; below it, exposed latency inflates SM time.
	HidingWarps float64
	// LaunchOverheadCycles models the fixed kernel-launch cost.
	LaunchOverheadCycles float64
}

// V100 models the Tesla V100 (80 SMs) used in the paper's Table 8.
func V100() *Device {
	return &Device{
		Name:            "V100",
		NumSMs:          80,
		WarpSize:        32,
		MaxWarpsPerSM:   64,
		MaxBlocksPerSM:  32,
		ThreadsPerBlock: 256,

		L1Bytes:   128 << 10,
		L2Bytes:   6 << 20,
		LineBytes: 128,

		L1Latency:   28,
		L2Latency:   193,
		DRAMLatency: 400,

		IssuePerSM:           2,
		L1PerSM:              1,
		L2BytesPerCycle:      1700, // ~2.4 TB/s at 1.38 GHz
		DRAMBytesPerCycle:    650,  // ~0.9 TB/s
		AtomicBytesPerCycle:  256,
		FP32PerCycle:         10240, // 80 SM x 64 lanes x 2 (FMA)
		TensorCoreSpeedup:    1,
		HidingWarps:          16,
		LaunchOverheadCycles: 2000,
	}
}

// A100 models the Ampere A100 (108 SMs).
func A100() *Device {
	return &Device{
		Name:            "A100",
		NumSMs:          108,
		WarpSize:        32,
		MaxWarpsPerSM:   64,
		MaxBlocksPerSM:  32,
		ThreadsPerBlock: 256,

		L1Bytes:   192 << 10,
		L2Bytes:   40 << 20,
		LineBytes: 128,

		L1Latency:   30,
		L2Latency:   200,
		DRAMLatency: 380,

		IssuePerSM:           2,
		L1PerSM:              1,
		L2BytesPerCycle:      3500, // ~5 TB/s at 1.41 GHz
		DRAMBytesPerCycle:    1100, // ~1.55 TB/s
		AtomicBytesPerCycle:  512,
		FP32PerCycle:         13824, // 108 SM x 64 lanes x 2
		TensorCoreSpeedup:    4,     // TF32 tensor cores accelerate GEMM
		HidingWarps:          16,
		LaunchOverheadCycles: 2000,
	}
}

// WarpsPerBlock derives the warps in one thread block.
func (d *Device) WarpsPerBlock() int { return d.ThreadsPerBlock / d.WarpSize }
