package gpu

import (
	"math/rand"
	"testing"
)

func TestLineSetBasics(t *testing.T) {
	s := newLineSet(4)
	if !s.Add(10) {
		t.Fatal("first insert should be new")
	}
	if s.Add(10) {
		t.Fatal("second insert should not be new")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.Add(0) {
		t.Fatal("zero must be storable")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestLineSetGrowth(t *testing.T) {
	s := newLineSet(1)
	const n = 10000
	for i := int64(0); i < n; i++ {
		if !s.Add(i * 131) {
			t.Fatalf("value %d reported duplicate", i)
		}
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	// All values still present after growth.
	for i := int64(0); i < n; i++ {
		if s.Add(i * 131) {
			t.Fatalf("value %d lost during growth", i)
		}
	}
}

func TestLineSetMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := newLineSet(16)
	ref := map[int64]bool{}
	for i := 0; i < 20000; i++ {
		v := int64(rng.Intn(5000))
		wantNew := !ref[v]
		ref[v] = true
		if got := s.Add(v); got != wantNew {
			t.Fatalf("Add(%d) = %v, want %v", v, got, wantNew)
		}
	}
	if s.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(ref))
	}
}

func TestWithMaxWorkBlocksSampling(t *testing.T) {
	d := V100()
	w := BlockWork{Insts: 100, Transactions: 10, ActiveWarps: 8}
	k := fakeKernel{blocks: 100000, warps: 8, work: w, lineSpread: 8}
	exact := Simulate(d, k, WithMaxWorkBlocks(200000)) // full accounting
	sampled := Simulate(d, k, WithMaxWorkBlocks(1000)) // 1% work sample
	// Uniform blocks: sampling must reproduce totals within rounding.
	if ratio := sampled.Insts / exact.Insts; ratio < 0.99 || ratio > 1.01 {
		t.Errorf("sampled insts ratio %v", ratio)
	}
	if ratio := sampled.Cycles / exact.Cycles; ratio < 0.9 || ratio > 1.1 {
		t.Errorf("sampled cycles ratio %v", ratio)
	}
}

func TestTraceLineBudget(t *testing.T) {
	d := V100()
	w := BlockWork{Insts: 100, Transactions: 1000, ActiveWarps: 8}
	// Each block traces 100k lines; the 1M default budget stops after ~10
	// blocks instead of 192.
	k := fakeKernel{blocks: 500, warps: 8, work: w, lineSpread: 100000}
	m := Simulate(d, k)
	if m.SampledBlocks >= 192 {
		t.Errorf("budget should cap sampled blocks, got %d", m.SampledBlocks)
	}
	if m.SampledBlocks == 0 {
		t.Error("at least one block must be traced")
	}
	if m.L2HitRate < 0 || m.L2HitRate > 1 {
		t.Errorf("hit rate broken under budget: %v", m.L2HitRate)
	}
}

func TestGEMMEfficiencyBranch(t *testing.T) {
	d := V100()
	// Small shapes get the lower-efficiency branch: per-flop cost is higher.
	bigPerFlop := GEMMCycles(d, 100000, 512, 512) / (2 * 100000 * 512 * 512)
	smallPerFlop := GEMMCycles(d, 256, 512, 32) / (2 * 256 * 512 * 32)
	if smallPerFlop <= bigPerFlop {
		t.Errorf("small GEMM per-flop cost %v should exceed large %v", smallPerFlop, bigPerFlop)
	}
}
