package gpu

// Kernel is the simulator-facing view of a compiled graph-operator kernel.
// Implementations live in internal/core (one per parallelization strategy);
// the simulator never sees strategy details, only this interface — mirroring
// how the paper's CUDA templates present uniform launches to the GPU.
//
// Two granularities are exposed:
//
//   - BlockWork(b): exact scalar work summary for every block. Cheap
//     (O(block's edges)) and computed for all blocks, so SM scheduling and
//     load imbalance are exact.
//   - TraceBlock(b): the warp-level coalesced memory trace of one block,
//     replayed only for a deterministic sample of blocks to drive the cache
//     model.
type Kernel interface {
	// NumBlocks is the launch grid size.
	NumBlocks() int
	// WarpsPerBlock is the block shape (threads-per-block / warp size).
	WarpsPerBlock() int
	// BlockWork summarises the work of block b.
	BlockWork(b int) BlockWork
	// TraceBlock replays block b's warp-level memory accesses in program
	// order. Each visit receives one warp access: the set of distinct cache
	// lines touched (post-coalescing) and whether it is an atomic RMW.
	TraceBlock(b int, visit func(WarpAccess))
	// Footprint is the total bytes of memory the whole kernel touches
	// (operand tensors plus graph index arrays). The simulator scales the
	// L2 capacity seen by the sampled trace to the sample's share of this
	// working set.
	Footprint() int64
}

// BlockWork is the exact per-block work summary.
type BlockWork struct {
	// Insts is the number of warp-instructions the block issues (a warp
	// instruction covers all 32 lanes; divergent lanes still consume it).
	Insts float64
	// Transactions is the number of global-memory transactions at cache-line
	// granularity after coalescing and intra-warp reuse — the traffic the
	// cache hierarchy sees.
	Transactions float64
	// L1Requests is the load/store-unit request count including the
	// replayed, uncoalesced per-element accesses of thread-mapped
	// strategies. Always >= Transactions; the surplus hits the L1 but
	// occupies its port (the locality penalty of Table 6's thread mapping).
	L1Requests float64
	// AtomicTransactions is the subset of Transactions that are atomic
	// read-modify-write operations (resolved at the L2).
	AtomicTransactions float64
	// MemInsts counts warp-level LOAD instructions. A load's exposed
	// latency is charged once per instruction — a scattered 32-line load is
	// one instruction whose misses overlap — while its replay cost is in
	// L1Requests and its traffic in Transactions. Stores and atomics are
	// fire-and-forget and charge no latency.
	MemInsts float64
	// SerialRounds counts extra serialised replay rounds caused by
	// intra-warp atomic address conflicts (lanes updating the same word).
	SerialRounds float64
	// ActiveWarps is the number of warps in the block that have any work.
	ActiveWarps int
	// MaxWarpCycles lower-bounds the block's duration by its longest warp's
	// serial instruction stream (a single warp issues at most one
	// instruction per cycle). Degree skew makes one warp's stream much
	// longer than its siblings' — the divergence tail behind the paper's
	// Fig. 2b/Fig. 3 occupancy collapse.
	MaxWarpCycles float64
	// BusyWarpCycles sums each warp's own busy duration; the gap between
	// BusyWarpCycles and ActiveWarps x block duration is idle warp time,
	// which depresses achieved occupancy.
	BusyWarpCycles float64
}

// Add accumulates other into w.
func (w *BlockWork) Add(other BlockWork) {
	w.Insts += other.Insts
	w.Transactions += other.Transactions
	w.L1Requests += other.L1Requests
	w.MemInsts += other.MemInsts
	w.AtomicTransactions += other.AtomicTransactions
	w.SerialRounds += other.SerialRounds
	w.ActiveWarps += other.ActiveWarps
	if other.MaxWarpCycles > w.MaxWarpCycles {
		w.MaxWarpCycles = other.MaxWarpCycles
	}
	w.BusyWarpCycles += other.BusyWarpCycles
}

// WarpAccess is one warp-level memory operation in a trace: the distinct
// line addresses the 32 lanes touch after coalescing.
type WarpAccess struct {
	Lines  []int64
	Atomic bool
}
