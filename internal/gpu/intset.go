package gpu

// lineSet is a grow-on-demand open-addressing hash set of int64 line
// addresses. The simulator inserts every sampled trace line once per run to
// measure the sample's working set; Go's built-in map costs ~3x more per
// operation for this access pattern.
type lineSet struct {
	slots []int64
	used  int
}

const lineSetEmpty = int64(-1)

func newLineSet(capacityHint int) *lineSet {
	size := 1 << 10
	for size < capacityHint*2 {
		size <<= 1
	}
	s := &lineSet{slots: make([]int64, size)}
	for i := range s.slots {
		s.slots[i] = lineSetEmpty
	}
	return s
}

// Add inserts v (must be >= 0) and reports whether it was new.
func (s *lineSet) Add(v int64) bool {
	if s.used*2 >= len(s.slots) {
		s.grow()
	}
	mask := uint64(len(s.slots) - 1)
	h := uint64(v) * 0x9e3779b97f4a7c15
	for i := h & mask; ; i = (i + 1) & mask {
		switch s.slots[i] {
		case v:
			return false
		case lineSetEmpty:
			s.slots[i] = v
			s.used++
			return true
		}
	}
}

// Len returns the number of distinct values inserted.
func (s *lineSet) Len() int { return s.used }

func (s *lineSet) grow() {
	old := s.slots
	s.slots = make([]int64, len(old)*2)
	for i := range s.slots {
		s.slots[i] = lineSetEmpty
	}
	s.used = 0
	for _, v := range old {
		if v != lineSetEmpty {
			s.Add(v)
		}
	}
}
