package gpu

import (
	"container/heap"
	"math"
)

// Metrics reports what the paper collects with nvprof (Figs. 3 and 16) plus
// the raw quantities behind them. Cycles is the primary figure of merit.
type Metrics struct {
	Cycles float64

	// Achieved occupancy: time-weighted active warps per SM over the warp
	// capacity, in [0, 1].
	Occupancy float64
	// SMEfficiency: fraction of SM-time spent busy (load balance), in [0, 1].
	SMEfficiency float64
	// L1HitRate and L2HitRate come from the sampled cache simulation.
	L1HitRate float64
	L2HitRate float64

	Insts              float64
	Transactions       float64
	L1Requests         float64
	AtomicTransactions float64
	L2Accesses         float64
	DRAMBytes          float64

	NumBlocks     int
	WarpsPerBlock int
	SampledBlocks int

	// BoundBy names the resource that determined Cycles: "sm-makespan"
	// (per-SM issue/LSU/latency work, including load imbalance), "l2-bw",
	// "dram-bw", "atomic-bw" or "launch".
	BoundBy string
}

// InstLatencyCycles is the dependent-issue latency charged per warp
// instruction when estimating exposed latency.
const InstLatencyCycles = 4

// simConfig tunes the simulation fidelity / cost trade-off.
type simConfig struct {
	maxSampledBlocks int
	maxWorkBlocks    int
	maxTraceLines    int
	l1Ways           int
	l2Ways           int
}

// Option adjusts simulator fidelity.
type Option func(*simConfig)

// WithMaxSampledBlocks overrides how many blocks feed the cache model.
func WithMaxSampledBlocks(n int) Option {
	return func(c *simConfig) {
		if n > 0 {
			c.maxSampledBlocks = n
		}
	}
}

// WithMaxWorkBlocks overrides the threshold above which per-block work
// accounting switches to stride sampling with scaling. Launches that large
// have thousands of blocks per SM, so per-block variance averages out and
// sampling loses almost no load-balance fidelity.
func WithMaxWorkBlocks(n int) Option {
	return func(c *simConfig) {
		if n > 0 {
			c.maxWorkBlocks = n
		}
	}
}

// Simulate runs kernel k on device d and returns its metrics.
//
// The model (DESIGN.md §4):
//  1. A deterministic stride-sample of blocks is traced through per-SM L1
//     caches and a shared L2 whose capacity is scaled to the sample's share
//     of the kernel's working set, yielding hit rates.
//  2. Every block's exact BlockWork is converted to a block cost in cycles —
//     the max of its issue demand, L1 throughput demand and exposed-latency
//     demand given the resident-warp count — and blocks are greedily
//     list-scheduled onto SMs.
//  3. Kernel time is the makespan, floored by device-wide L2, DRAM and
//     atomic bandwidth demands.
func Simulate(d *Device, k Kernel, opts ...Option) Metrics {
	cfg := simConfig{maxSampledBlocks: 192, maxWorkBlocks: 16384, maxTraceLines: 1 << 20, l1Ways: 4, l2Ways: 16}
	for _, o := range opts {
		o(&cfg)
	}

	numBlocks := k.NumBlocks()
	warpsPerBlock := k.WarpsPerBlock()
	m := Metrics{NumBlocks: numBlocks, WarpsPerBlock: warpsPerBlock}
	if numBlocks == 0 {
		m.Cycles = d.LaunchOverheadCycles
		return m
	}

	// --- Pass 1: sampled cache simulation. ---
	sampled := numBlocks
	if sampled > cfg.maxSampledBlocks {
		sampled = cfg.maxSampledBlocks
	}
	stride := numBlocks / sampled
	if stride < 1 {
		stride = 1
	}
	// The sampled trace exercises only part of the kernel's working set, so
	// it must also see only a proportional share of the L2: first measure
	// the sample's distinct lines, then size the simulated L2 to
	// L2Bytes x (sample working set / kernel footprint). Compulsory misses
	// then occur at the same rate as in the full kernel, with no warmup
	// pass needed.
	// The trace is generated once and recorded, because generating it is
	// the expensive part: the first walk measures the working set (to size
	// the L2), the replay feeds the caches. Each access is one traceBounds
	// entry holding its line count, negated for atomics; blockEnds marks
	// access boundaries between blocks so the replay keeps each block on
	// one L1.
	distinct := newLineSet(1 << 12)
	var traceLines []int64
	var traceBounds []int32
	blockEnds := make([]int, 0, sampled)
	for i := 0; i < sampled && len(traceLines) < cfg.maxTraceLines; i++ {
		k.TraceBlock(i*stride, func(a WarpAccess) {
			for _, line := range a.Lines {
				distinct.Add(line)
			}
			traceLines = append(traceLines, a.Lines...)
			n := int32(len(a.Lines))
			if a.Atomic {
				n = -n
			}
			traceBounds = append(traceBounds, n)
		})
		blockEnds = append(blockEnds, len(traceBounds))
	}
	sampled = len(blockEnds) // blocks actually traced within the line budget
	sampleWS := float64(distinct.Len()) * float64(d.LineBytes)
	footprint := float64(k.Footprint())
	share := 1.0
	if footprint > 0 && sampleWS < footprint {
		share = sampleWS / footprint
	}
	l2 := NewCache(int(float64(d.L2Bytes)*share), d.LineBytes, cfg.l2Ways)
	// Sampled blocks round-robin over a pool of simulated SM L1s. The pool is
	// sized to the lesser of the SM count and the sample so each simulated L1
	// sees a realistic (not over-diluted) share of blocks.
	l1Pool := d.NumSMs
	if l1Pool > sampled {
		l1Pool = sampled
	}
	l1s := make([]*Cache, l1Pool)
	for i := range l1s {
		l1s[i] = NewCache(d.L1Bytes, d.LineBytes, cfg.l1Ways)
	}
	// Replay the recorded trace block by block, each block pinned to one
	// simulated L1.
	var l1Acc, l1Hit, l2Acc, l2Hit int64
	pos := 0
	access := 0
	for i := 0; i < len(blockEnds); i++ {
		l1 := l1s[i%l1Pool]
		for ; access < blockEnds[i]; access++ {
			n := traceBounds[access]
			atomic := n < 0
			if atomic {
				n = -n
			}
			for _, line := range traceLines[pos : pos+int(n)] {
				l1Acc++
				if atomic {
					// Atomics bypass L1 and resolve at L2.
					l2Acc++
					if l2.Access(line) {
						l2Hit++
					}
					continue
				}
				if l1.Access(line) {
					l1Hit++
					continue
				}
				l2Acc++
				if l2.Access(line) {
					l2Hit++
				}
			}
			pos += int(n)
		}
	}
	m.SampledBlocks = sampled
	l1HitRate := 0.0
	if l1Acc > 0 {
		l1HitRate = float64(l1Hit) / float64(l1Acc)
	}
	l2HitRate := 0.0
	if l2Acc > 0 {
		l2HitRate = float64(l2Hit) / float64(l2Acc)
	}
	m.L1HitRate = l1HitRate
	m.L2HitRate = l2HitRate

	// --- Pass 2: exact work accounting and SM scheduling. ---

	// Collect (sampled) per-block work first: residency and latency hiding
	// must be computed from blocks that actually have work — an over-tiled
	// launch's empty blocks retire immediately and hide nothing.
	workBlocks := numBlocks
	workStride := 1
	if numBlocks > cfg.maxWorkBlocks {
		workBlocks = cfg.maxWorkBlocks
		workStride = numBlocks / workBlocks
	}
	workScale := float64(numBlocks) / float64(workBlocks)

	works := make([]BlockWork, workBlocks)
	activeBlocks := 0
	var total BlockWork
	for i := 0; i < workBlocks; i++ {
		works[i] = k.BlockWork(i * workStride)
		total.Add(works[i])
		if works[i].ActiveWarps > 0 {
			activeBlocks++
		}
	}
	launchedActive := int(float64(activeBlocks) * workScale)
	if launchedActive < 1 {
		launchedActive = 1
	}

	// Resident blocks per SM: limited by the block slots and the warp budget;
	// cannot exceed the active blocks that exist per SM on average.
	residentBlocks := d.MaxBlocksPerSM
	if byWarps := d.MaxWarpsPerSM / warpsPerBlock; byWarps < residentBlocks {
		residentBlocks = byWarps
	}
	if residentBlocks < 1 {
		residentBlocks = 1
	}
	avgBlocksPerSM := (launchedActive + d.NumSMs - 1) / d.NumSMs
	if avgBlocksPerSM < residentBlocks {
		residentBlocks = avgBlocksPerSM
	}
	residentWarps := float64(residentBlocks * warpsPerBlock)
	hiding := residentWarps
	if hiding > d.HidingWarps {
		hiding = d.HidingWarps
	}
	if hiding < 1 {
		hiding = 1
	}

	missL1 := 1 - l1HitRate
	missL2 := 1 - l2HitRate
	avgAccessLatency := l1HitRate*d.L1Latency +
		missL1*l2HitRate*d.L2Latency +
		missL1*missL2*d.DRAMLatency

	// Greedy list scheduling onto SMs (least-loaded first). Very large
	// launches were stride-sampled above and are scaled back afterwards:
	// with thousands of blocks per SM, aggregate loads dominate any single
	// block's contribution.
	sms := makeSMHeap(d.NumSMs)
	var busyWeighted float64 // sum over blocks of cost x effective warps
	for i := 0; i < workBlocks; i++ {
		w := works[i]

		l1req := w.L1Requests
		if l1req < w.Transactions {
			l1req = w.Transactions
		}
		issue := w.Insts / d.IssuePerSM
		l1t := l1req / d.L1PerSM
		// Exposed latency is charged per load instruction — the misses of
		// one warp load overlap with each other — with replay throughput in
		// the l1t term. Kernels that do not report MemInsts fall back to
		// per-transaction charging.
		memInsts := w.MemInsts
		if memInsts == 0 {
			memInsts = w.Transactions
		}
		latency := (w.Insts*InstLatencyCycles +
			memInsts*avgAccessLatency +
			w.SerialRounds*d.L2Latency) / hiding
		cost := issue
		if l1t > cost {
			cost = l1t
		}
		if latency > cost {
			cost = latency
		}
		// Divergence tail: the block cannot finish before its longest warp's
		// serial instruction stream drains.
		if w.MaxWarpCycles > cost {
			cost = w.MaxWarpCycles
		}
		// The SM runs residentBlocks concurrently sharing its pipelines, so a
		// block's own cost is its resource demand; queuing onto the same SM
		// serialises demands, which the heap accumulation models.
		sm := &sms[0]
		sm.load += cost
		heap.Fix(&sms, 0)
		// Time-weighted warp activity. A warp stays active for the share of
		// the block's duration proportional to its stream length, so the
		// effective concurrently-active warp count is the ratio of total to
		// longest warp streams — 8 for a balanced block, approaching 1 when
		// one hot warp dominates (the divergence tail).
		effWarps := float64(w.ActiveWarps)
		if w.MaxWarpCycles > 0 {
			if r := w.BusyWarpCycles / w.MaxWarpCycles; r < effWarps {
				effWarps = r
			}
		}
		busyWeighted += cost * effWarps
	}

	// Scale the sampled aggregates back to the full launch.
	total.Insts *= workScale
	total.Transactions *= workScale
	total.L1Requests *= workScale
	total.AtomicTransactions *= workScale
	busyWeighted *= workScale
	for i := range sms {
		sms[i].load *= workScale
	}

	m.Insts = total.Insts
	m.Transactions = total.Transactions
	m.L1Requests = total.L1Requests
	if m.L1Requests < m.Transactions {
		m.L1Requests = m.Transactions
	}
	m.AtomicTransactions = total.AtomicTransactions

	// Blend the replayed (guaranteed-hit) requests into the reported L1 hit
	// rate; the trace-measured rate applies to the line-level traffic only.
	if m.L1Requests > 0 {
		m.L1HitRate = (l1HitRate*total.Transactions + (m.L1Requests - total.Transactions)) / m.L1Requests
	}

	var maxLoad, sumLoad float64
	for _, sm := range sms {
		if sm.load > maxLoad {
			maxLoad = sm.load
		}
		sumLoad += sm.load
	}

	// Device-wide bandwidth floors.
	l2Accesses := total.Transactions * missL1
	dramBytes := l2Accesses * missL2 * float64(d.LineBytes)
	m.L2Accesses = l2Accesses
	m.DRAMBytes = dramBytes
	l2Floor := l2Accesses * float64(d.LineBytes) / d.L2BytesPerCycle
	dramFloor := dramBytes / d.DRAMBytesPerCycle
	// Atomics move 32-byte sectors through the L2's read-modify-write path.
	atomicFloor := total.AtomicTransactions * float64(d.LineBytes) / 4 / d.AtomicBytesPerCycle

	cycles := maxLoad
	m.BoundBy = "sm-makespan"
	if l2Floor > cycles {
		cycles = l2Floor
		m.BoundBy = "l2-bw"
	}
	if dramFloor > cycles {
		cycles = dramFloor
		m.BoundBy = "dram-bw"
	}
	if atomicFloor > cycles {
		cycles = atomicFloor
		m.BoundBy = "atomic-bw"
	}
	if cycles < d.LaunchOverheadCycles {
		m.BoundBy = "launch"
	}
	cycles += d.LaunchOverheadCycles
	m.Cycles = cycles

	// SM efficiency: busy SM-time over total SM-time.
	m.SMEfficiency = sumLoad / (float64(d.NumSMs) * cycles)
	if m.SMEfficiency > 1 {
		m.SMEfficiency = 1
	}

	// Achieved occupancy: time-weighted active warps per SM over capacity.
	// The block-cost accounting serialises co-resident blocks, so scale by
	// the residency factor (R blocks share the SM concurrently), then cap by
	// the residency limit.
	occ := busyWeighted * float64(residentBlocks) /
		(cycles * float64(d.NumSMs) * float64(d.MaxWarpsPerSM))
	residencyCap := residentWarps / float64(d.MaxWarpsPerSM)
	occ = math.Min(occ, residencyCap)
	m.Occupancy = math.Min(occ, 1)
	return m
}

// smHeap is a min-heap of SM loads for greedy list scheduling.
type smHeap []smLoad

type smLoad struct {
	id   int
	load float64
}

func makeSMHeap(n int) smHeap {
	h := make(smHeap, n)
	for i := range h {
		h[i].id = i
	}
	return h
}

func (h smHeap) Len() int            { return len(h) }
func (h smHeap) Less(i, j int) bool  { return h[i].load < h[j].load }
func (h smHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *smHeap) Push(x interface{}) { *h = append(*h, x.(smLoad)) }
func (h *smHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
