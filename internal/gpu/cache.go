package gpu

// Cache is a set-associative LRU cache over line addresses. It tracks only
// presence (no data), which is all the performance model needs.
type Cache struct {
	sets int
	ways int
	// tags[set*ways+way] holds the line address or -1 if invalid.
	tags []int64
	// stamps[set*ways+way] is the last-access tick for LRU replacement.
	stamps []int64
	tick   int64

	accesses int64
	hits     int64
}

// NewCache builds a cache of capacityBytes with the given line size and
// associativity. Capacity is rounded down to a whole number of sets; a
// capacity smaller than one way per set still yields a functional (tiny)
// cache.
func NewCache(capacityBytes, lineBytes, ways int) *Cache {
	lines := capacityBytes / lineBytes
	if lines < 1 {
		lines = 1
	}
	if ways < 1 {
		ways = 1
	}
	sets := lines / ways
	if sets < 1 {
		sets = 1
		if ways > lines {
			ways = lines
		}
	}
	c := &Cache{
		sets:   sets,
		ways:   ways,
		tags:   make([]int64, sets*ways),
		stamps: make([]int64, sets*ways),
	}
	for i := range c.tags {
		c.tags[i] = -1
	}
	return c
}

// Access touches a line address and reports whether it hit. A miss installs
// the line, evicting the set's LRU way.
func (c *Cache) Access(line int64) bool {
	c.tick++
	c.accesses++
	set := int(uint64(line) % uint64(c.sets))
	base := set * c.ways
	var lruIdx int
	lruStamp := int64(1) << 62
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.tags[i] == line {
			c.stamps[i] = c.tick
			c.hits++
			return true
		}
		if c.stamps[i] < lruStamp {
			lruStamp = c.stamps[i]
			lruIdx = i
		}
	}
	c.tags[lruIdx] = line
	c.stamps[lruIdx] = c.tick
	return false
}

// Stats returns (accesses, hits) so far.
func (c *Cache) Stats() (accesses, hits int64) { return c.accesses, c.hits }

// HitRate returns hits/accesses, or 0 before any access.
func (c *Cache) HitRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.hits) / float64(c.accesses)
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = -1
		c.stamps[i] = 0
	}
	c.tick, c.accesses, c.hits = 0, 0, 0
}
