package gpu

// Dense-operator cost model. GNN models interleave graph operators with
// dense DNN operators (GEMM for feature transforms, element-wise epilogues).
// uGrapher does not optimise these — it targets graph operators only — but
// the end-to-end experiments (Figs. 13-15) need their cost: the paper
// explains per-model speedup differences by the share of time spent in GEMM
// (e.g. SageMax is GEMM-heavy, so its overall speedup is smaller, and A100's
// tensor cores shrink the GEMM share, raising uGrapher's relative gain).

// GEMMCycles estimates the cycles of an m x k by k x n GEMM on d, assuming a
// well-tuned vendor kernel: peak FP32 (or tensor core) throughput floored by
// DRAM traffic for the operands and output.
func GEMMCycles(d *Device, m, k, n int) float64 {
	flops := 2 * float64(m) * float64(k) * float64(n)
	peak := d.FP32PerCycle * d.TensorCoreSpeedup
	// Real GEMMs sustain a fraction of peak; small/skinny shapes less.
	eff := 0.75
	if m < 1024 || n < 64 {
		eff = 0.45
	}
	compute := flops / (peak * eff)
	bytes := 4 * (float64(m)*float64(k) + float64(k)*float64(n) + float64(m)*float64(n))
	mem := bytes / d.DRAMBytesPerCycle
	c := compute
	if mem > c {
		c = mem
	}
	return c + d.LaunchOverheadCycles
}

// ElementwiseCycles estimates a streaming element-wise op over count
// elements reading reads arrays and writing one (bias add, ReLU, ...).
// These are bandwidth-bound.
func ElementwiseCycles(d *Device, count int, reads int) float64 {
	bytes := 4 * float64(count) * float64(reads+1)
	return bytes/d.DRAMBytesPerCycle + d.LaunchOverheadCycles
}
