// Package predictor implements uGrapher's adaptive strategy selection
// (paper §5.4): a gradient-boosted model trained offline on randomly
// sampled graphs predicts, from graph and operator features (Table 7) plus
// schedule parameters, the cost of each candidate schedule; at run time the
// argmin over the schedule space replaces grid search, making selection
// effectively free (the paper reports < 0.2 ms per prediction).
package predictor

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/gbdt"
	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/schedule"
)

// NumFeatures is the width of the feature vector: the Table 7 features
// (graph info: #vertex, #edge, std_nnz; operator info: edge_op, gather_op,
// A/B/C types) plus the candidate schedule's parameters and derived launch
// geometry.
const NumFeatures = 16

// FeatureNames documents each feature index (useful with
// gbdt.FeatureImportance).
var FeatureNames = [NumFeatures]string{
	"log_vertices", "log_edges", "mean_degree", "degree_cv",
	"edge_op", "gather_op", "a_kind", "b_kind", "c_kind",
	"log_feat", "feat_chunks",
	"strategy", "log_group", "log_tile",
	"log_units", "units_per_sm",
}

// Features builds the model input for one (task, schedule) pair. Graph
// statistics are passed in so callers can cache them per graph.
func Features(st graph.Stats, t schedule.Task, s core.Schedule) []float64 {
	items := st.NumVertices
	if !s.Strategy.VertexParallel() {
		items = st.NumEdges
	}
	groups := (items + s.Group - 1) / s.Group
	units := groups * s.Tile
	meanDeg := st.MeanInDegree
	cv := 0.0
	if meanDeg > 0 {
		cv = st.StdInDegree / meanDeg
	}
	chunks := (t.Feat + 31) / 32
	return []float64{
		math.Log1p(float64(st.NumVertices)),
		math.Log1p(float64(st.NumEdges)),
		meanDeg,
		cv,
		float64(t.Op.EdgeOp),
		float64(t.Op.GatherOp),
		float64(t.Op.AKind),
		float64(t.Op.BKind),
		float64(t.Op.CKind),
		math.Log1p(float64(t.Feat)),
		float64(chunks),
		float64(s.Strategy),
		math.Log2(float64(s.Group)),
		math.Log2(float64(s.Tile)),
		math.Log1p(float64(units)),
		float64(units) / float64(t.Device.NumSMs),
	}
}

// Predictor ranks schedules by predicted cost.
type Predictor struct {
	Model *gbdt.Model

	// statsMu guards statsCache: graph statistics are O(|V|) to compute and
	// immutable per graph, so they are computed once — keeping repeated
	// predictions at model-inference cost (the paper's < 0.2 ms).
	statsMu    sync.Mutex
	statsCache map[*graph.Graph]graph.Stats
}

// stats returns (and caches) the Table 7 graph statistics.
func (p *Predictor) stats(g *graph.Graph) graph.Stats {
	p.statsMu.Lock()
	defer p.statsMu.Unlock()
	if p.statsCache == nil {
		p.statsCache = map[*graph.Graph]graph.Stats{}
	}
	if st, ok := p.statsCache[g]; ok {
		return st
	}
	st := g.ComputeStats()
	p.statsCache[g] = st
	return st
}

// Rank returns the candidate schedules ordered by ascending predicted
// cycles. Graph stats are cached per graph.
func (p *Predictor) Rank(t schedule.Task, space []core.Schedule) []core.Schedule {
	if space == nil {
		space = schedule.PrunedSpace(t)
	}
	st := p.stats(t.Graph)
	type scored struct {
		s core.Schedule
		c float64
	}
	out := make([]scored, 0, len(space))
	for _, s := range space {
		if _, err := core.Compile(t.Op, s); err != nil {
			continue
		}
		out = append(out, scored{s, p.Model.Predict(Features(st, t, s))})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].c < out[j].c })
	res := make([]core.Schedule, len(out))
	for i, sc := range out {
		res[i] = sc.s
	}
	return res
}

// Pick returns the predicted-best schedule, falling back to the default when
// the space is empty.
func (p *Predictor) Pick(t schedule.Task, space []core.Schedule) core.Schedule {
	ranked := p.Rank(t, space)
	if len(ranked) == 0 {
		return core.DefaultSchedule
	}
	return ranked[0]
}

// Save serialises the underlying model.
func (p *Predictor) Save(w io.Writer) error { return p.Model.Save(w) }

// LoadPredictor reads a model written by Save.
func LoadPredictor(r io.Reader) (*Predictor, error) {
	m, err := gbdt.Load(r)
	if err != nil {
		return nil, err
	}
	return &Predictor{Model: m}, nil
}

// TrainConfig controls the offline training sweep. The paper samples 128
// random graphs from the network repository; the defaults mirror that at a
// size that trains in seconds on the simulator.
type TrainConfig struct {
	NumGraphs int
	// MaxVertices caps sampled graph size to bound training cost.
	MaxVertices int
	// Ops are the operators swept per graph; nil uses a representative set
	// covering all operator classes.
	Ops []TrainOp
	// Feats are the feature widths swept; nil uses {8, 32, 128}.
	Feats []int
	// SchedulesPerTask bounds how many schedules are measured per task
	// (selected deterministically from the pruned space).
	SchedulesPerTask int
	Device           *gpu.Device
	Seed             int64
	GBDT             gbdt.Params
	// SampleBlocks tunes simulation fidelity during label generation.
	SampleBlocks int
}

// DefaultTrainConfig mirrors the paper's setup at simulator scale.
func DefaultTrainConfig(dev *gpu.Device) TrainConfig {
	return TrainConfig{
		NumGraphs:        128,
		MaxVertices:      60000,
		Feats:            []int{8, 32, 128},
		SchedulesPerTask: 24,
		Device:           dev,
		Seed:             1,
		GBDT:             gbdt.DefaultParams(),
		SampleBlocks:     48,
	}
}

// TrainOp pairs an operator with its operand-width convention.
type TrainOp struct {
	Op        ops.OpInfo
	WidthOneB bool
}

// DefaultTrainOps cover message creation, pure aggregation and fused
// aggregation with both light and heavy computation.
func DefaultTrainOps() []TrainOp {
	return []TrainOp{
		{Op: ops.AggrSum},
		{Op: ops.AggrMax},
		{Op: ops.WeightedAggrSum, WidthOneB: true},
		{Op: ops.UAddV},
		{Op: ops.CopyESum},
	}
}

// TrainStats summarises a training run.
type TrainStats struct {
	Rows     int
	TrainMSE float64
}

// Train runs the offline pipeline: sample graphs, measure schedules on the
// simulator, fit the model on log-cycles.
func Train(cfg TrainConfig) (*Predictor, TrainStats, error) {
	if cfg.Device == nil {
		return nil, TrainStats{}, fmt.Errorf("predictor: device required")
	}
	if cfg.NumGraphs <= 0 {
		return nil, TrainStats{}, fmt.Errorf("predictor: NumGraphs must be positive")
	}
	trainOps := cfg.Ops
	if trainOps == nil {
		trainOps = DefaultTrainOps()
	}
	feats := cfg.Feats
	if len(feats) == 0 {
		feats = []int{8, 32, 128}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	var X [][]float64
	var y []float64
	for gi := 0; gi < cfg.NumGraphs; gi++ {
		spec := datasets.RandomSpec(rng, gi)
		if cfg.MaxVertices > 0 && spec.V > cfg.MaxVertices {
			scale := float64(cfg.MaxVertices) / float64(spec.V)
			spec.V = cfg.MaxVertices
			spec.E = int(float64(spec.E) * scale)
		}
		g := spec.Generate()
		st := g.ComputeStats()
		top := trainOps[gi%len(trainOps)]
		feat := feats[gi%len(feats)]
		task := schedule.Task{Graph: g, Op: top.Op, Feat: feat, Device: cfg.Device}.Widths(top.WidthOneB)

		space := schedule.PrunedSpace(task)
		if cfg.SchedulesPerTask > 0 && len(space) > cfg.SchedulesPerTask {
			// Deterministic spread over the space.
			stride := len(space) / cfg.SchedulesPerTask
			trimmed := make([]core.Schedule, 0, cfg.SchedulesPerTask)
			for i := 0; i < cfg.SchedulesPerTask; i++ {
				trimmed = append(trimmed, space[i*stride])
			}
			space = trimmed
		}
		for _, s := range space {
			cand, err := schedule.Evaluate(task, s, gpu.WithMaxSampledBlocks(cfg.SampleBlocks))
			if err != nil {
				continue
			}
			X = append(X, Features(st, task, s))
			y = append(y, math.Log(cand.Metrics.Cycles))
		}
	}
	model, err := gbdt.Fit(X, y, cfg.GBDT)
	if err != nil {
		return nil, TrainStats{}, err
	}
	return &Predictor{Model: model}, TrainStats{Rows: len(X), TrainMSE: model.MSE(X, y)}, nil
}
