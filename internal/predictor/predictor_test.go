package predictor

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/schedule"
)

var (
	trainOnce  sync.Once
	trainedP   *Predictor
	trainStats TrainStats
	trainErr   error
)

// trainSmall trains a reduced predictor once, shared across tests.
func trainSmall(t *testing.T) *Predictor {
	t.Helper()
	trainOnce.Do(func() {
		cfg := DefaultTrainConfig(gpu.V100())
		cfg.NumGraphs = 24
		cfg.MaxVertices = 8000
		cfg.SchedulesPerTask = 12
		cfg.GBDT.Rounds = 60
		trainedP, trainStats, trainErr = Train(cfg)
	})
	if trainErr != nil {
		t.Fatal(trainErr)
	}
	if trainStats.Rows < 100 {
		t.Fatalf("too few training rows: %d", trainStats.Rows)
	}
	return trainedP
}

func testTask(t *testing.T, seed int64) schedule.Task {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := 3000
	b := graph.NewBuilder(n)
	for i := 0; i < 30000; i++ {
		dst := int32(rng.Intn(n))
		if rng.Float64() < 0.5 {
			dst = int32(rng.Intn(n / 8))
		}
		b.AddEdge(int32(rng.Intn(n)), dst)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return schedule.Task{Graph: g, Op: ops.AggrSum, Feat: 32, Device: gpu.V100()}.Widths(false)
}

func TestFeaturesShape(t *testing.T) {
	task := testTask(t, 1)
	st := task.Graph.ComputeStats()
	f := Features(st, task, core.DefaultSchedule)
	if len(f) != NumFeatures {
		t.Fatalf("feature vector has %d entries, want %d", len(f), NumFeatures)
	}
	for i, v := range f {
		if v != v || v < -1e12 || v > 1e12 {
			t.Errorf("feature %s = %v is not finite/sane", FeatureNames[i], v)
		}
	}
	// Edge-parallel schedules see edge-scaled launch geometry.
	fv := Features(st, task, core.Schedule{Strategy: core.ThreadVertex, Group: 1, Tile: 1})
	fe := Features(st, task, core.Schedule{Strategy: core.WarpEdge, Group: 1, Tile: 1})
	if fe[14] <= fv[14] {
		t.Error("warp-edge should launch more units than thread-vertex (log_units)")
	}
}

func TestTrainAndPredictQuality(t *testing.T) {
	p := trainSmall(t)
	task := testTask(t, 2)

	// The predicted-best schedule should be competitive with grid search:
	// within a small factor of the true winner, and much better than the
	// worst schedule (the paper's Fig. 12 claim at simulator scale).
	space := schedule.PrunedSpace(task)
	cands := schedule.GridSearch(task, space, gpu.WithMaxSampledBlocks(48))
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	bestTrue := cands[0].Metrics.Cycles
	worst := cands[len(cands)-1].Metrics.Cycles

	pick := p.Pick(task, space)
	picked, err := schedule.Evaluate(task, pick, gpu.WithMaxSampledBlocks(48))
	if err != nil {
		t.Fatal(err)
	}
	if picked.Metrics.Cycles > bestTrue*2.5 {
		t.Errorf("predictor pick %v costs %v, grid best %v (ratio %.2f)",
			pick, picked.Metrics.Cycles, bestTrue, picked.Metrics.Cycles/bestTrue)
	}
	if picked.Metrics.Cycles > worst*0.8 {
		t.Errorf("predictor pick is nearly the worst schedule")
	}
}

func TestPredictorBeatsRandomChoice(t *testing.T) {
	p := trainSmall(t)
	rng := rand.New(rand.NewSource(9))
	var predTotal, randTotal float64
	for seed := int64(3); seed < 7; seed++ {
		task := testTask(t, seed)
		space := schedule.PrunedSpace(task)
		pick := p.Pick(task, space)
		pc, err := schedule.Evaluate(task, pick, gpu.WithMaxSampledBlocks(48))
		if err != nil {
			t.Fatal(err)
		}
		predTotal += pc.Metrics.Cycles
		rc, err := schedule.Evaluate(task, space[rng.Intn(len(space))], gpu.WithMaxSampledBlocks(48))
		if err != nil {
			t.Fatal(err)
		}
		randTotal += rc.Metrics.Cycles
	}
	if predTotal >= randTotal {
		t.Errorf("predictor total %v should beat random total %v", predTotal, randTotal)
	}
}

func TestRankSkipsInvalid(t *testing.T) {
	p := trainSmall(t)
	task := testTask(t, 4)
	space := []core.Schedule{
		{Strategy: core.Strategy(9), Group: 1, Tile: 1},
		core.DefaultSchedule,
	}
	ranked := p.Rank(task, space)
	if len(ranked) != 1 {
		t.Fatalf("invalid schedule should be skipped, got %d", len(ranked))
	}
	if pick := p.Pick(task, []core.Schedule{{Strategy: core.Strategy(9), Group: 1, Tile: 1}}); pick != core.DefaultSchedule {
		t.Error("empty ranking should fall back to default")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	p := trainSmall(t)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	p2, err := LoadPredictor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	task := testTask(t, 5)
	st := task.Graph.ComputeStats()
	f := Features(st, task, core.DefaultSchedule)
	if p.Model.Predict(f) != p2.Model.Predict(f) {
		t.Fatal("loaded model predicts differently")
	}
}

func TestLoadPredictorErrors(t *testing.T) {
	if _, err := LoadPredictor(bytes.NewBufferString("not json")); err == nil {
		t.Error("garbage should fail to load")
	}
	if _, err := LoadPredictor(bytes.NewBufferString(`{"base":1,"lr":0.1,"trees":[{"nodes":[]}]}`)); err == nil {
		t.Error("empty tree should fail to load")
	}
	if _, err := LoadPredictor(bytes.NewBufferString(`{"base":1,"lr":0.1,"trees":[{"nodes":[{"f":0,"t":0,"l":5,"r":6,"v":0}]}]}`)); err == nil {
		t.Error("out-of-range children should fail to load")
	}
}

func TestTrainConfigValidation(t *testing.T) {
	if _, _, err := Train(TrainConfig{}); err == nil {
		t.Error("missing device should fail")
	}
	cfg := DefaultTrainConfig(gpu.V100())
	cfg.NumGraphs = 0
	if _, _, err := Train(cfg); err == nil {
		t.Error("zero graphs should fail")
	}
}
