package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/program"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// The model host: one goroutine per model owns that model's two compiled
// programs (primary and degraded) and is the only goroutine that ever runs
// them. A CompiledProgram shares one arena across runs and is not safe for
// concurrent use (program.ErrConcurrentRun makes that loud); serializing
// through a single worker is what makes the rest of the layer — batching,
// breaker bookkeeping, fault handling — free of locks on the execution
// path. Throughput under concurrency comes from batching: requests that
// arrive while a batch is running coalesce into the next one, so N queued
// requests cost one forward pass, not N.

// request is one admitted inference request, queued for the host worker.
type request struct {
	vertices []int
	features *tensor.Dense // optional caller-supplied input; runs as a solo batch
	deadline time.Time     // server-enforced; the batch ctx carries the max over members
	resp     chan response // buffered(1): the worker never blocks on a slow client

	// Trace identity and stage stamps (span-clock ns), set at admission
	// while telemetry is enabled; ts nil means untraced. dequeued is
	// written by the worker and read by the handler only after the
	// response channel receive (the channel is the happens-before edge).
	ts       *telemetry.TraceState
	rootSpan uint64
	enqueued int64
	dequeued int64
}

// response is what the worker delivers back to the handler.
type response struct {
	logits   [][]float32
	batched  int  // members in the batch that served this request
	degraded bool // served by the degraded (resilient) program
	err      error
	// Forward-pass stamps (span-clock ns) for stage attribution; zero when
	// untraced.
	runStart int64
	runEnd   int64
}

// modelHost owns one model's queue, programs and breaker.
type modelHost struct {
	name    string
	queue   chan *request
	pending *request // feature-bearing request deferred by collect; worker-only

	primary   *program.CompiledProgram
	fallback  *program.CompiledProgram
	resilient *core.ResilientBackend // the fallback program's backend, for window rates

	features *tensor.Dense // stored feature matrix (seed 42, as cmd/ugrapher)
	classes  int
	maxBatch int

	br   *breaker
	m    hostMetrics
	done chan struct{} // closed when the worker exits
}

// run is the worker loop: take one request, coalesce what else is queued,
// execute the batch, deliver. Exits when the queue is closed and drained.
func (h *modelHost) run() {
	defer close(h.done)
	for {
		first := h.pending
		h.pending = nil
		if first == nil {
			var ok bool
			first, ok = <-h.queue
			if !ok {
				return
			}
		}
		// QueueStall models a stalled worker (e.g. a scheduling hiccup
		// before batch collection); armed only by tests and -faults.
		faultinject.MaybeSleep(faultinject.QueueStall)
		h.runBatch(h.collect(first))
	}
}

// collect coalesces queued requests behind first into one batch, up to
// maxBatch. Requests carrying their own feature matrix cannot share a
// forward pass with anyone else, so they always run as a batch of one; if
// one shows up mid-collection it is parked in h.pending for the next
// iteration rather than dropped back into the (contended) queue.
func (h *modelHost) collect(first *request) []*request {
	stampDequeue(first)
	batch := []*request{first}
	if first.features != nil {
		return batch
	}
	for len(batch) < h.maxBatch {
		select {
		case r, ok := <-h.queue:
			if !ok {
				return batch
			}
			stampDequeue(r)
			if r.features != nil {
				h.pending = r
				return batch
			}
			batch = append(batch, r)
		default:
			return batch
		}
	}
	return batch
}

// stampDequeue marks the end of a request's queue_wait stage: the moment the
// worker pulled it off the queue. Traced requests only (ts is set iff the
// request was admitted with telemetry enabled).
func stampDequeue(r *request) {
	if r.ts != nil {
		r.dequeued = telemetry.Now()
	}
}

// runBatch executes one coalesced forward pass and distributes the rows.
//
// Deadline propagation: the batch context carries the latest member
// deadline, so the kernels themselves are cut off once nobody is left
// waiting; members with earlier deadlines are answered 504 by their own
// handler (each watches its own timer) without cancelling the batch for
// the rest. Delivery never blocks: response channels are buffered, so one
// slow or departed client cannot wedge the worker.
func (h *modelHost) runBatch(batch []*request) {
	now := time.Now()
	deadline := batch[0].deadline
	for _, r := range batch[1:] {
		if r.deadline.After(deadline) {
			deadline = r.deadline
		}
	}
	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()

	usePrimary, probe := h.br.route(now)
	cp, label := h.primary, "primary"
	if !usePrimary {
		cp, label = h.fallback, "degraded"
		h.m.degraded.Inc()
	}
	x := h.features
	if batch[0].features != nil {
		x = batch[0].features
	}

	h.m.batches.Inc()
	h.m.batchSize.ObserveValue(float64(len(batch)))

	// Fan-in linking: the batch span (and the program run, steps and
	// kernels below it) joins the *lead* trace — the first traced member's
	// tree — so one member always owns a fully connected tree. Every other
	// member is linked to the batch span by a flow arrow, so its tree stays
	// navigable across the N-requests-to-1-forward coalescing.
	var lead *telemetry.TraceState
	for _, r := range batch {
		if r.ts != nil {
			lead = r.ts
			break
		}
	}
	sp := telemetry.StartTraceSpan(lead, "serve", "batch", h.name+"/"+label)
	prev := sp.MakeCurrent()
	var runStart, runEnd int64
	if lead != nil {
		for _, r := range batch {
			if r.ts != nil && r.ts != lead {
				telemetry.FlowLink("batch", "coalesced",
					telemetry.FlowPoint{Track: "serve", Ts: r.dequeued, Trace: r.ts.TraceID(), Span: r.rootSpan},
					telemetry.FlowPoint{Track: "serve", Ts: sp.Start(), Trace: lead.TraceID(), Span: sp.SpanID()})
			}
		}
		if !usePrimary {
			// The breaker's routing decision as a zero-length span on the
			// tree: *why* this batch ran degraded.
			telemetry.RecordSpan(lead, "serve", "breaker", "degraded-route", sp.Start(), sp.Start(), sp.SpanID())
		}
		ctx = telemetry.ContextWithTrace(ctx, lead)
		runStart = telemetry.Now()
	}
	out, err := cp.RunCtx(ctx, x)
	if lead != nil {
		runEnd = telemetry.Now()
	}
	sp.RestoreCurrent(prev)
	if err != nil {
		sp.EndErr(err.Error())
	} else {
		sp.End()
	}

	if usePrimary {
		var ke *core.KernelError
		switch {
		case err == nil:
			h.br.onSuccess(probe)
		case errors.As(err, &ke):
			h.br.onFailure(probe, time.Now())
		default:
			// Deadline/cancellation: says nothing about the primary's health.
			h.br.onInconclusive(time.Now())
		}
	}

	degraded := !usePrimary
	for _, r := range batch {
		if r.ts != nil {
			// Per-member stage attribution: each member's own tree carries
			// its queue_wait / batch_wait and the shared kernel interval,
			// parented onto that member's root span.
			telemetry.RecordSpan(r.ts, "serve", "stage", "queue_wait", r.enqueued, r.dequeued, r.rootSpan)
			telemetry.RecordSpan(r.ts, "serve", "stage", "batch_wait", r.dequeued, runStart, r.rootSpan)
			telemetry.RecordSpan(r.ts, "serve", "stage", "kernel", runStart, runEnd, r.rootSpan)
			h.m.stageQueueWait.Observe(r.dequeued - r.enqueued)
			h.m.stageBatchWait.Observe(runStart - r.dequeued)
			h.m.stageKernel.Observe(runEnd - runStart)
		}
		if err != nil {
			r.resp <- response{err: err, batched: len(batch), degraded: degraded, runStart: runStart, runEnd: runEnd}
			continue
		}
		r.resp <- response{
			logits:   extractRows(out, r.vertices),
			batched:  len(batch),
			degraded: degraded,
			runStart: runStart,
			runEnd:   runEnd,
		}
	}
}

// extractRows copies the requested vertex rows out of the arena-resident
// output, which the next batch overwrites.
func extractRows(out *tensor.Dense, vertices []int) [][]float32 {
	rows := make([][]float32, len(vertices))
	for i, v := range vertices {
		row := make([]float32, out.Cols)
		copy(row, out.Data[v*out.Cols:(v+1)*out.Cols])
		rows[i] = row
	}
	return rows
}

// validate checks a request's vertices against the graph.
func (h *modelHost) validate(vertices []int, numVertices int) error {
	if len(vertices) == 0 {
		return fmt.Errorf("request needs at least one vertex id")
	}
	for _, v := range vertices {
		if v < 0 || v >= numVertices {
			return fmt.Errorf("vertex %d out of range [0, %d)", v, numVertices)
		}
	}
	return nil
}
