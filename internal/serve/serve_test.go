package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/faultinject"
	"repro/internal/gpu"
	"repro/internal/models"
	"repro/internal/program"
	"repro/internal/tensor"
)

// newTestServer builds a server plus an httptest front end. Tests share the
// process-global faultinject and telemetry state, so the suite runs
// serially (no t.Parallel) and every fault-arming test defers Reset.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := s.Drain(5 * time.Second); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return s, ts
}

// postInfer sends one inference request and decodes the response. Failures
// report via Errorf (safe from spawned goroutines) and return status 0.
func postInfer(t *testing.T, url string, req inferRequest) (int, inferResponse, errorResponse) {
	t.Helper()
	var ok inferResponse
	var bad errorResponse
	body, err := json.Marshal(req)
	if err != nil {
		t.Errorf("marshal: %v", err)
		return 0, ok, bad
	}
	resp, err := http.Post(url+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Errorf("post: %v", err)
		return 0, ok, bad
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Errorf("read body: %v", err)
		return 0, ok, bad
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &ok); err != nil {
			t.Errorf("bad 200 body %q: %v", raw, err)
			return 0, ok, bad
		}
	} else if err := json.Unmarshal(raw, &bad); err != nil {
		t.Errorf("bad error body (status %d) %q: %v", resp.StatusCode, raw, err)
		return 0, ok, bad
	}
	return resp.StatusCode, ok, bad
}

// referenceLogits computes the oracle output the served model must match:
// the interpreter's Forward on the reference backend, with the same seeds
// the server uses (features 42, weights 1234).
func referenceLogits(t *testing.T, model, dataset string, feat, classes int) *tensor.Dense {
	t.Helper()
	g, _, err := datasets.Load(dataset)
	if err != nil {
		t.Fatal(err)
	}
	m, err := models.ByName(model)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewDense(g.NumVertices(), feat)
	x.FillRandom(rand.New(rand.NewSource(42)), 1)
	eng := models.NewTunedEngine(gpu.V100())
	eng.Compute = core.ReferenceBackend()
	want, err := m.Forward(g, x, classes, eng)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

func maxAbsDiff(got []float32, want []float32) float64 {
	d := 0.0
	for i := range got {
		if v := math.Abs(float64(got[i]) - float64(want[i])); v > d {
			d = v
		}
	}
	return d
}

// TestInferMatchesReference: a served vertex query returns the same logits
// the reference interpreter computes for those vertices.
func TestInferMatchesReference(t *testing.T) {
	_, ts := newTestServer(t, Config{Models: []string{"GCN"}})
	want := referenceLogits(t, "GCN", "CO", 16, 8)

	vertices := []int{0, 7, 100, 2707}
	code, resp, _ := postInfer(t, ts.URL, inferRequest{Model: "gcn", Vertices: vertices})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.Degraded {
		t.Error("healthy server answered degraded")
	}
	if len(resp.Logits) != len(vertices) {
		t.Fatalf("got %d rows, want %d", len(resp.Logits), len(vertices))
	}
	for i, v := range vertices {
		row := want.Data[v*want.Cols : (v+1)*want.Cols]
		if d := maxAbsDiff(resp.Logits[i], row); d > 1e-4 {
			t.Errorf("vertex %d: maxdiff %g vs reference", v, d)
		}
	}
}

// TestInferValidation: unknown models 404, bad vertices and bad feature
// shapes 400 — all without touching a worker.
func TestInferValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Models: []string{"GCN"}})

	code, _, e := postInfer(t, ts.URL, inferRequest{Model: "nope", Vertices: []int{0}})
	if code != http.StatusNotFound {
		t.Errorf("unknown model: status %d (%s)", code, e.Error)
	}
	code, _, _ = postInfer(t, ts.URL, inferRequest{Model: "GCN", Vertices: []int{999999}})
	if code != http.StatusBadRequest {
		t.Errorf("out-of-range vertex: status %d", code)
	}
	code, _, _ = postInfer(t, ts.URL, inferRequest{Model: "GCN"})
	if code != http.StatusBadRequest {
		t.Errorf("no vertices: status %d", code)
	}
	code, _, _ = postInfer(t, ts.URL, inferRequest{
		Model: "GCN", Vertices: []int{0}, Features: [][]float32{{1, 2}},
	})
	if code != http.StatusBadRequest {
		t.Errorf("bad feature shape: status %d", code)
	}
}

// TestQueueFullRejectsFast: with the worker stalled and the bounded queue
// full, further requests are rejected immediately with 429 + Retry-After
// instead of queuing without bound.
func TestQueueFullRejectsFast(t *testing.T) {
	defer faultinject.Reset()
	s, ts := newTestServer(t, Config{Models: []string{"GCN"}, QueueDepth: 2})

	// The first batch's worker stalls 400ms before collecting; everything
	// sent during the stall sits in (or overflows) the queue.
	faultinject.Arm(faultinject.QueueStall, faultinject.Spec{After: 1, Limit: 1, Delay: 400 * time.Millisecond})
	var wg sync.WaitGroup
	codes := make(chan int, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, _, _ := postInfer(t, ts.URL, inferRequest{Model: "GCN", Vertices: []int{1}})
			codes <- code
		}()
	}
	wg.Wait()
	close(codes)
	var ok, rejected int
	for c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			rejected++
		default:
			t.Errorf("unexpected status %d", c)
		}
	}
	// 1 picked by the worker + 2 queued can succeed; with 8 concurrent
	// sends at least some must overflow the depth-2 queue.
	if rejected == 0 {
		t.Fatalf("no 429s from an overflowing queue (ok=%d)", ok)
	}
	if ok == 0 {
		t.Fatal("every request rejected; admitted ones should complete")
	}
	// A rejection while the queue is full is a non-blocking channel send:
	// it must return fast even though the worker is stalled.
	faultinject.Reset()
	faultinject.Arm(faultinject.QueueStall, faultinject.Spec{After: 1, Limit: 1, Delay: 400 * time.Millisecond})
	go postInfer(t, ts.URL, inferRequest{Model: "GCN", Vertices: []int{1}}) // stalls the worker
	time.Sleep(100 * time.Millisecond)
	// Fill the queue.
	for len(s.hosts["gcn"].queue) < 2 {
		go postInfer(t, ts.URL, inferRequest{Model: "GCN", Vertices: []int{1}})
		time.Sleep(5 * time.Millisecond)
	}
	start := time.Now()
	code, _, _ := postInfer(t, ts.URL, inferRequest{Model: "GCN", Vertices: []int{1}})
	elapsed := time.Since(start)
	if code != http.StatusTooManyRequests {
		t.Fatalf("status %d with a full queue, want 429", code)
	}
	if elapsed > 100*time.Millisecond {
		t.Errorf("429 took %v; reject-fast should not wait on the worker", elapsed)
	}
}

// TestBatchingCoalesces: requests arriving while the worker is busy merge
// into one forward pass, and every member sees the batch size.
func TestBatchingCoalesces(t *testing.T) {
	defer faultinject.Reset()
	s, ts := newTestServer(t, Config{Models: []string{"GCN"}, MaxBatch: 16, QueueDepth: 16})
	h := s.hosts["gcn"]
	batchesBefore := h.m.batches.Value()

	// Stall the worker once so all concurrent sends are queued when it
	// collects its batch.
	faultinject.Arm(faultinject.QueueStall, faultinject.Spec{After: 1, Limit: 1, Delay: 300 * time.Millisecond})
	const n = 6
	var wg sync.WaitGroup
	sizes := make(chan int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			code, resp, _ := postInfer(t, ts.URL, inferRequest{Model: "GCN", Vertices: []int{v}})
			if code != http.StatusOK {
				t.Errorf("status %d", code)
				return
			}
			sizes <- resp.Batched
		}(i)
	}
	wg.Wait()
	close(sizes)
	maxBatched := 0
	for b := range sizes {
		if b > maxBatched {
			maxBatched = b
		}
	}
	if maxBatched < 2 {
		t.Errorf("no coalescing observed (max batched = %d)", maxBatched)
	}
	if got := h.m.batches.Value() - batchesBefore; got >= n {
		t.Errorf("%d batches for %d requests; batching saved nothing", got, n)
	}
}

// TestMemberTimeoutDoesNotWedgeWorker: a request whose own deadline lapses
// mid-batch gets its 504 immediately, the batch finishes for the others,
// and the worker keeps serving.
func TestMemberTimeoutDoesNotWedgeWorker(t *testing.T) {
	defer faultinject.Reset()
	_, ts := newTestServer(t, Config{Models: []string{"GCN"}})

	faultinject.Arm(faultinject.QueueStall, faultinject.Spec{After: 1, Limit: 1, Delay: 300 * time.Millisecond})
	start := time.Now()
	code, _, _ := postInfer(t, ts.URL, inferRequest{Model: "GCN", Vertices: []int{0}, TimeoutMS: 50})
	elapsed := time.Since(start)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", code)
	}
	if elapsed > 250*time.Millisecond {
		t.Errorf("504 delivered after %v; the member deadline must not wait out the batch", elapsed)
	}
	// The worker survived the timed-out member.
	code, _, _ = postInfer(t, ts.URL, inferRequest{Model: "GCN", Vertices: []int{0}})
	if code != http.StatusOK {
		t.Fatalf("follow-up status %d; worker wedged?", code)
	}
}

// TestBreakerTripsAndRecovers drives the full breaker lifecycle with
// injected kernel panics: closed (failures surface) → open (degraded
// service with reference-correct outputs) → half-open probe → closed.
func TestBreakerTripsAndRecovers(t *testing.T) {
	defer faultinject.Reset()
	s, ts := newTestServer(t, Config{
		Models: []string{"GCN"}, BreakerThreshold: 2, BreakerCooldown: 150 * time.Millisecond,
	})
	h := s.hosts["gcn"]
	want := referenceLogits(t, "GCN", "CO", 16, 8)

	// Every primary-backend run panics; the reference interpreter (the
	// resilient ladder's fallback rung) is untouched by KernelPanicLoad.
	faultinject.Arm(faultinject.KernelPanicLoad, faultinject.Spec{After: 1, Every: 1})

	// Failures below the threshold surface as 500s from the closed breaker.
	for i := 0; i < 2; i++ {
		code, _, e := postInfer(t, ts.URL, inferRequest{Model: "GCN", Vertices: []int{3}})
		if code != http.StatusInternalServerError {
			t.Fatalf("request %d: status %d (%s), want 500 while breaker closed", i, code, e.Error)
		}
	}
	if got := h.br.current(); got != breakerOpen {
		t.Fatalf("breaker %v after %d kernel failures, want open", got, 2)
	}

	// Open: requests succeed on the degraded program, outputs ≡ reference.
	code, resp, _ := postInfer(t, ts.URL, inferRequest{Model: "GCN", Vertices: []int{3, 42}})
	if code != http.StatusOK {
		t.Fatalf("degraded request: status %d", code)
	}
	if !resp.Degraded {
		t.Error("open breaker served degraded=false")
	}
	for i, v := range []int{3, 42} {
		row := want.Data[v*want.Cols : (v+1)*want.Cols]
		if d := maxAbsDiff(resp.Logits[i], row); d > 1e-4 {
			t.Errorf("degraded vertex %d: maxdiff %g vs reference", v, d)
		}
	}
	if h.resilient.Fallbacks() == 0 {
		t.Error("degraded batch recorded no resilient fallbacks")
	}

	// Heal the backend, wait out the cooldown: the half-open probe runs on
	// the primary, succeeds, and closes the breaker.
	faultinject.Reset()
	time.Sleep(200 * time.Millisecond)
	code, resp, _ = postInfer(t, ts.URL, inferRequest{Model: "GCN", Vertices: []int{3}})
	if code != http.StatusOK {
		t.Fatalf("probe request: status %d", code)
	}
	if resp.Degraded {
		t.Error("probe request served degraded; it should run the primary")
	}
	if got := h.br.current(); got != breakerClosed {
		t.Errorf("breaker %v after successful probe, want closed", got)
	}
}

// TestBreakerReopensOnFailedProbe: a probe that still fails sends the
// breaker straight back to open.
func TestBreakerReopensOnFailedProbe(t *testing.T) {
	defer faultinject.Reset()
	s, ts := newTestServer(t, Config{
		Models: []string{"GCN"}, BreakerThreshold: 1, BreakerCooldown: 100 * time.Millisecond,
	})
	h := s.hosts["gcn"]

	faultinject.Arm(faultinject.KernelPanicLoad, faultinject.Spec{After: 1, Every: 1})
	if code, _, _ := postInfer(t, ts.URL, inferRequest{Model: "GCN", Vertices: []int{0}}); code != http.StatusInternalServerError {
		t.Fatalf("trip request: status %d", code)
	}
	if got := h.br.current(); got != breakerOpen {
		t.Fatalf("breaker %v, want open", got)
	}
	time.Sleep(150 * time.Millisecond)
	// Cooldown elapsed, faults still armed: the probe fails on the
	// primary, the batch is re-served... no — the probe batch itself
	// errors; the breaker re-opens and the member gets the error.
	if code, _, _ := postInfer(t, ts.URL, inferRequest{Model: "GCN", Vertices: []int{0}}); code != http.StatusInternalServerError {
		t.Fatalf("failed probe: status %d, want 500", code)
	}
	if got := h.br.current(); got != breakerOpen {
		t.Errorf("breaker %v after failed probe, want open", got)
	}
	// And while open, service continues degraded.
	if code, resp, _ := postInfer(t, ts.URL, inferRequest{Model: "GCN", Vertices: []int{0}}); code != http.StatusOK || !resp.Degraded {
		t.Errorf("post-probe request: status %d degraded=%v, want degraded 200", code, resp.Degraded)
	}
}

// TestDrain: readyz flips unready, new requests get 503, in-flight
// requests complete, and the workers exit.
func TestDrain(t *testing.T) {
	defer faultinject.Reset()
	s, err := New(Config{Models: []string{"GCN"}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Hold one request in flight across the drain start.
	faultinject.Arm(faultinject.QueueStall, faultinject.Spec{After: 1, Limit: 1, Delay: 300 * time.Millisecond})
	inflightCode := make(chan int, 1)
	go func() {
		code, _, _ := postInfer(t, ts.URL, inferRequest{Model: "GCN", Vertices: []int{5}})
		inflightCode <- code
	}()
	time.Sleep(100 * time.Millisecond) // the worker is now stalled holding the request

	drainErr := make(chan error, 1)
	go func() { drainErr <- s.Drain(5 * time.Second) }()
	// Readiness flips immediately, before the drain completes.
	deadline := time.Now().Add(time.Second)
	for {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never flipped unready during drain")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// New work is refused while draining.
	if code, _, _ := postInfer(t, ts.URL, inferRequest{Model: "GCN", Vertices: []int{0}}); code != http.StatusServiceUnavailable {
		t.Errorf("infer during drain: status %d, want 503", code)
	}
	// The in-flight request still completes, and the drain finishes.
	if code := <-inflightCode; code != http.StatusOK {
		t.Errorf("in-flight request during drain: status %d, want 200", code)
	}
	if err := <-drainErr; err != nil {
		t.Errorf("drain: %v", err)
	}
	select {
	case <-s.hosts["gcn"].done:
	case <-time.After(time.Second):
		t.Error("worker still running after drain")
	}
	// healthz keeps answering after drain (liveness is the process).
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz after drain: %d", resp.StatusCode)
	}
}

// TestProgramCacheSingleflight: concurrent Gets for one key build once;
// distinct keys build separately.
func TestProgramCacheSingleflight(t *testing.T) {
	c := newProgramCache()
	var builds int32
	var mu sync.Mutex
	build := func() (*program.CompiledProgram, error) {
		mu.Lock()
		builds++
		mu.Unlock()
		time.Sleep(20 * time.Millisecond)
		return nil, fmt.Errorf("sentinel")
	}
	key := cacheKey{Model: "GCN", Dataset: "CO", Backend: "parallel", Shards: 1}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Get(key, build); err == nil {
				t.Error("sentinel error lost")
			}
		}()
	}
	wg.Wait()
	if builds != 1 {
		t.Errorf("%d builds for one key, want 1 (singleflight)", builds)
	}
	other := key
	other.Shards = 4
	if _, err := c.Get(other, build); err == nil {
		t.Error("sentinel error lost")
	}
	if builds != 2 {
		t.Errorf("%d builds after a second key, want 2", builds)
	}
	if c.Len() != 2 {
		t.Errorf("cache len %d, want 2", c.Len())
	}
}

// TestMetricsEndpoint: the Prometheus snapshot carries the serving series,
// including the per-window fallback gauge backed by Snapshot/Reset.
func TestMetricsEndpoint(t *testing.T) {
	defer faultinject.Reset()
	s, ts := newTestServer(t, Config{Models: []string{"GCN"}, BreakerThreshold: 1})
	h := s.hosts["gcn"]

	// Trip the breaker so a degraded batch records resilient fallbacks.
	faultinject.Arm(faultinject.KernelPanicLoad, faultinject.Spec{After: 1, Every: 1})
	postInfer(t, ts.URL, inferRequest{Model: "GCN", Vertices: []int{0}}) // trips
	code, _, _ := postInfer(t, ts.URL, inferRequest{Model: "GCN", Vertices: []int{0}})
	if code != http.StatusOK {
		t.Fatalf("degraded request: status %d", code)
	}
	window := h.resilient.Snapshot()
	if window == 0 {
		t.Fatal("no fallbacks in window before scrape")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, series := range []string{
		`ugrapher_serve_requests_total{model="GCN"}`,
		`ugrapher_serve_rejected_total{model="GCN"}`,
		`ugrapher_serve_batches_total{model="GCN"}`,
		`ugrapher_serve_degraded_total{model="GCN"}`,
		`ugrapher_serve_queue_depth{model="GCN"}`,
		`ugrapher_serve_breaker_state{model="GCN"}`,
		`ugrapher_fallbacks_total`,
	} {
		if !bytes.Contains(body, []byte(series)) {
			t.Errorf("metrics snapshot missing %s", series)
		}
	}
	if want := fmt.Sprintf(`ugrapher_serve_fallback_window{model="GCN"} %d`, window); !bytes.Contains(body, []byte(want)) {
		t.Errorf("metrics snapshot missing %q\n(snapshot contains: %.300s...)", want, text)
	}
	// The scrape consumed the window; the lifetime counter is untouched.
	if h.resilient.Snapshot() != 0 {
		t.Error("scrape did not reset the fallback window")
	}
	if h.resilient.Fallbacks() != window {
		t.Errorf("lifetime fallbacks %d changed by scrape, want %d", h.resilient.Fallbacks(), window)
	}
}

// TestCustomFeaturesRunSolo: a request carrying its own feature matrix
// computes on those features (not the stored ones) and never coalesces
// with other requests.
func TestCustomFeaturesRunSolo(t *testing.T) {
	s, ts := newTestServer(t, Config{Models: []string{"GCN"}})

	// Oracle on custom features: all-ones input.
	g := s.Graph()
	x := tensor.NewDense(g.NumVertices(), 16)
	x.Fill(1)
	m, err := models.ByName("GCN")
	if err != nil {
		t.Fatal(err)
	}
	eng := models.NewTunedEngine(gpu.V100())
	eng.Compute = core.ReferenceBackend()
	want, err := m.Forward(g, x, 8, eng)
	if err != nil {
		t.Fatal(err)
	}

	feats := make([][]float32, g.NumVertices())
	for i := range feats {
		row := make([]float32, 16)
		for j := range row {
			row[j] = 1
		}
		feats[i] = row
	}
	code, resp, e := postInfer(t, ts.URL, inferRequest{Model: "GCN", Vertices: []int{17}, Features: feats})
	if code != http.StatusOK {
		t.Fatalf("status %d (%s)", code, e.Error)
	}
	if resp.Batched != 1 {
		t.Errorf("feature-bearing request batched %d, want 1 (solo)", resp.Batched)
	}
	row := want.Data[17*want.Cols : 18*want.Cols]
	if d := maxAbsDiff(resp.Logits[0], row); d > 1e-4 {
		t.Errorf("custom-features output maxdiff %g vs reference", d)
	}
}
