package serve

import (
	"net/http"

	"repro/internal/telemetry"
)

// Serving-layer metric names, exported through the telemetry registry's
// Prometheus writer alongside the execution-layer series
// (ugrapher_fallbacks_total, kernel histograms, ...). Counters are updated
// at the event site; gauges are refreshed at scrape time by the /metrics
// handler, which is the one consumer that needs a consistent snapshot.
const (
	// metricRequests counts admitted inference requests, per model.
	metricRequests = "ugrapher_serve_requests_total"
	// metricRejected counts fast-rejected requests (bounded queue full),
	// per model — the backpressure signal.
	metricRejected = "ugrapher_serve_rejected_total"
	// metricTimeouts counts requests that hit their server-enforced
	// deadline before their batch delivered, per model.
	metricTimeouts = "ugrapher_serve_timeouts_total"
	// metricBatches counts executed batches, per model; requests_total /
	// batches_total is the realized coalescing factor.
	metricBatches = "ugrapher_serve_batches_total"
	// metricDegraded counts batches served by the degraded (resilient)
	// program while the breaker was open, per model.
	metricDegraded = "ugrapher_serve_degraded_total"
	// metricBreakerTransitions counts breaker state transitions, labelled
	// by model and target state.
	metricBreakerTransitions = "ugrapher_serve_breaker_transitions_total"
	// metricQueueDepth gauges the per-model queue occupancy at scrape time.
	metricQueueDepth = "ugrapher_serve_queue_depth"
	// metricBreakerState gauges the breaker state at scrape time
	// (0 = closed, 1 = open, 2 = half-open).
	metricBreakerState = "ugrapher_serve_breaker_state"
	// metricFallbackWindow gauges the resilient-ladder fallbacks since the
	// previous scrape (core.ResilientBackend.Reset per window), per model.
	// The monotonic total stays in ugrapher_fallbacks_total.
	metricFallbackWindow = "ugrapher_serve_fallback_window"
	// metricRequestSeconds is the admitted-request latency histogram
	// (admission to response delivery), per model.
	metricRequestSeconds = "ugrapher_serve_request_seconds"
	// metricCompiles counts compile-cache misses (programs actually
	// compiled); hits are requests_total-free cache lookups.
	metricCompiles = "ugrapher_serve_compiles_total"
	// metricStageSeconds is the per-stage latency attribution histogram,
	// labelled by model and stage (admission, queue_wait, batch_wait,
	// compile, kernel, respond) — the aggregate view of the per-request
	// timing breakdown (DESIGN.md §8).
	metricStageSeconds = "ugrapher_serve_stage_seconds"
	// metricBatchSize is the realized coalescing distribution per model;
	// requests_total/batches_total only yields the mean, and the shape is
	// what says whether -batch is sized right.
	metricBatchSize = "ugrapher_serve_batch_size"
)

// hostMetrics resolves one model's counter/histogram series once, so the
// request path never takes the registry map lock.
type hostMetrics struct {
	requests  *telemetry.Counter
	rejected  *telemetry.Counter
	timeouts  *telemetry.Counter
	batches   *telemetry.Counter
	degraded  *telemetry.Counter
	latency   *telemetry.Histogram
	batchSize *telemetry.Histogram

	// Stage-attribution histograms (one per stage; observed in ns like
	// every latency series). Registered eagerly so /metrics carries every
	// stage series from the first scrape, observations or not.
	stageAdmission *telemetry.Histogram
	stageQueueWait *telemetry.Histogram
	stageBatchWait *telemetry.Histogram
	stageKernel    *telemetry.Histogram
	stageRespond   *telemetry.Histogram
	stageCompile   *telemetry.Histogram
}

func newHostMetrics(model string) hostMetrics {
	r := telemetry.Default()
	stage := func(name string) *telemetry.Histogram {
		return r.Histogram(telemetry.Series2(metricStageSeconds, "model", model, "stage", name),
			telemetry.DefaultLatencyBuckets)
	}
	return hostMetrics{
		requests: r.Counter(telemetry.Series1(metricRequests, "model", model)),
		rejected: r.Counter(telemetry.Series1(metricRejected, "model", model)),
		timeouts: r.Counter(telemetry.Series1(metricTimeouts, "model", model)),
		batches:  r.Counter(telemetry.Series1(metricBatches, "model", model)),
		degraded: r.Counter(telemetry.Series1(metricDegraded, "model", model)),
		latency: r.Histogram(telemetry.Series1(metricRequestSeconds, "model", model),
			telemetry.DefaultLatencyBuckets),
		batchSize: r.Histogram(telemetry.Series1(metricBatchSize, "model", model),
			telemetry.BatchSizeBuckets),
		stageAdmission: stage("admission"),
		stageQueueWait: stage("queue_wait"),
		stageBatchWait: stage("batch_wait"),
		stageKernel:    stage("kernel"),
		stageRespond:   stage("respond"),
		stageCompile:   stage("compile"),
	}
}

// handleMetrics refreshes the scrape-time gauges and writes the Prometheus
// snapshot.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := telemetry.Default()
	for _, h := range s.hosts {
		reg.Gauge(telemetry.Series1(metricQueueDepth, "model", h.name)).Set(float64(len(h.queue)))
		reg.Gauge(telemetry.Series1(metricBreakerState, "model", h.name)).Set(float64(h.br.current()))
		// One fallback window per scrape: the gauge carries this window's
		// ladder activations, the monotonic ugrapher_fallbacks_total keeps
		// the lifetime count.
		reg.Gauge(telemetry.Series1(metricFallbackWindow, "model", h.name)).Set(float64(h.resilient.Reset()))
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := reg.WritePrometheus(w); err != nil {
		// The connection failed mid-write; nothing recoverable.
		return
	}
}
