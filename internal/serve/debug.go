package serve

// /debug/requests: the tail-sampled exemplar view. Where /metrics answers
// "how slow is p99", this endpoint answers "what did the slowest requests
// actually spend their time on" — each retained request renders its stage
// breakdown and its full causal span tree (children nested under parents),
// reconstructed from the TraceState's span records.

import (
	"fmt"
	"net/http"
	"sort"

	"repro/internal/telemetry"
)

// debugStage is one stage of a request's breakdown, in milliseconds.
type debugStage struct {
	Stage string  `json:"stage"`
	MS    float64 `json:"ms"`
}

// debugSpan is one span of the causal tree, children nested.
type debugSpan struct {
	Name     string       `json:"name"`
	Cat      string       `json:"cat"`
	Track    string       `json:"track"`
	StartNs  int64        `json:"start_ns"`
	DurNs    int64        `json:"dur_ns"`
	SpanID   string       `json:"span_id"`
	ParentID string       `json:"parent_id,omitempty"`
	Err      string       `json:"error,omitempty"`
	Children []*debugSpan `json:"children,omitempty"`
}

// debugRequest is one retained request exemplar.
type debugRequest struct {
	TraceID        string       `json:"trace_id"`
	Model          string       `json:"model"`
	Status         string       `json:"status"`
	WallMS         float64      `json:"wall_ms"`
	Err            string       `json:"error,omitempty"`
	Stages         []debugStage `json:"stages,omitempty"`
	TruncatedSpans int          `json:"truncated_spans,omitempty"`
	Spans          []*debugSpan `json:"spans,omitempty"`
}

// buildSpanTree nests span records by parent link. Spans whose parent is
// unknown (an adopted remote parent, or a parent past the truncation cap)
// surface as roots rather than vanish.
func buildSpanTree(spans []telemetry.SpanRecord, tracks []string) []*debugSpan {
	nodes := make(map[uint64]*debugSpan, len(spans))
	ordered := make([]*debugSpan, 0, len(spans))
	for _, sp := range spans {
		track := ""
		if sp.Track >= 0 && sp.Track < len(tracks) {
			track = tracks[sp.Track]
		}
		n := &debugSpan{
			Name: sp.Name, Cat: sp.Cat, Track: track,
			StartNs: sp.Start, DurNs: sp.Dur,
			SpanID: fmt.Sprintf("%x", sp.SpanID),
			Err:    sp.Err,
		}
		if sp.ParentID != 0 {
			n.ParentID = fmt.Sprintf("%x", sp.ParentID)
		}
		nodes[sp.SpanID] = n
		ordered = append(ordered, n)
	}
	var roots []*debugSpan
	for i, sp := range spans {
		if parent, ok := nodes[sp.ParentID]; ok && sp.ParentID != sp.SpanID {
			parent.Children = append(parent.Children, ordered[i])
		} else {
			roots = append(roots, ordered[i])
		}
	}
	var sortByStart func(ns []*debugSpan)
	sortByStart = func(ns []*debugSpan) {
		sort.SliceStable(ns, func(i, j int) bool { return ns[i].StartNs < ns[j].StartNs })
		for _, n := range ns {
			sortByStart(n.Children)
		}
	}
	sortByStart(roots)
	return roots
}

func renderExemplar(ex telemetry.RequestExemplar, tracks []string) debugRequest {
	out := debugRequest{
		TraceID: fmt.Sprintf("%016x", ex.TraceID),
		Model:   ex.Model, Status: ex.Status,
		WallMS: float64(ex.WallNs) / 1e6, Err: ex.Err,
		TruncatedSpans: ex.Truncated,
		Spans:          buildSpanTree(ex.Spans, tracks),
	}
	for _, st := range ex.Stages {
		out.Stages = append(out.Stages, debugStage{Stage: st.Stage, MS: float64(st.Ns) / 1e6})
	}
	return out
}

// handleDebugRequests renders the exemplar store: the slowest retained
// requests (slowest first) and the most recent errored ones, each with its
// stage breakdown and span tree.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	slow, errs := s.exemplars.Snapshot()
	tracks := telemetry.Default().TrackNames()
	out := struct {
		RequestsSeen int64          `json:"requests_seen"`
		Slowest      []debugRequest `json:"slowest"`
		Errors       []debugRequest `json:"errors"`
	}{RequestsSeen: s.exemplars.Seen()}
	for _, ex := range slow {
		out.Slowest = append(out.Slowest, renderExemplar(ex, tracks))
	}
	for _, ex := range errs {
		out.Errors = append(out.Errors, renderExemplar(ex, tracks))
	}
	writeJSON(w, http.StatusOK, out)
}
