package serve

// Request-trace plumbing for the serving layer (DESIGN.md §8): identity
// adoption from standard headers, the wire-format timing breakdown, and the
// span-record helpers the /debug/requests endpoint and exemplar store share.
//
// The serving layer is the one place traces are *minted*; every layer below
// (program, core) only adopts the trace from ctx — the repo linter's
// trace-propagation rule enforces that split.

import (
	"hash/fnv"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/telemetry"
)

// traceIdentity derives the request's trace identity from its headers:
// a W3C traceparent ("00-<32 hex trace>-<16 hex span>-<2 hex flags>") adopts
// the low 64 bits of the remote trace id plus the remote span as parent; an
// X-Request-ID falls back to a stable FNV-1a hash so retries of the same id
// land in the same trace. (0, 0) means mint a fresh id.
func traceIdentity(r *http.Request) (trace, parent uint64) {
	if tp := r.Header.Get("traceparent"); tp != "" {
		parts := strings.Split(strings.TrimSpace(tp), "-")
		if len(parts) == 4 && len(parts[1]) == 32 && len(parts[2]) == 16 {
			if lo, err := strconv.ParseUint(parts[1][16:], 16, 64); err == nil && lo != 0 {
				if ps, err := strconv.ParseUint(parts[2], 16, 64); err == nil {
					parent = ps
				}
				return lo, parent
			}
		}
	}
	if id := r.Header.Get("X-Request-ID"); id != "" {
		h := fnv.New64a()
		_, _ = h.Write([]byte(id))
		if v := h.Sum64(); v != 0 {
			return v, 0
		}
	}
	return 0, 0
}

// timingBreakdown is the per-stage latency attribution object returned in
// the inference response while telemetry is enabled. Stages are disjoint and
// sum (within clock skew) to total: admission (handler entry → enqueue),
// queue_wait (enqueue → worker pickup), batch_wait (pickup → forward-pass
// start), kernel (the forward pass), respond (pass end → response write).
type timingBreakdown struct {
	TraceID     string  `json:"trace_id"`
	AdmissionMS float64 `json:"admission_ms"`
	QueueWaitMS float64 `json:"queue_wait_ms"`
	BatchWaitMS float64 `json:"batch_wait_ms"`
	KernelMS    float64 `json:"kernel_ms"`
	RespondMS   float64 `json:"respond_ms"`
	TotalMS     float64 `json:"total_ms"`
}

// msBetween converts a span-clock interval to milliseconds, clamping
// negatives (a stage that never ran reads as 0, not garbage).
func msBetween(from, to int64) float64 {
	if to <= from {
		return 0
	}
	return float64(to-from) / 1e6
}

// stagePoints extracts the stage breakdown from a request's span records.
func stagePoints(spans []telemetry.SpanRecord) []telemetry.StagePoint {
	var out []telemetry.StagePoint
	for _, sp := range spans {
		if sp.Cat == "stage" {
			out = append(out, telemetry.StagePoint{Stage: sp.Name, Ns: sp.Dur})
		}
	}
	return out
}
