package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

// Request-scoped tracing through the serving pipeline: identity adoption from
// inbound headers, the per-request timing breakdown, the connected span tree
// behind /debug/requests, and the fan-in flow links a coalesced batch emits.

func TestTraceIdentityAdoption(t *testing.T) {
	mk := func(hdr map[string]string) *http.Request {
		r := httptest.NewRequest(http.MethodPost, "/v1/infer", nil)
		for k, v := range hdr {
			r.Header.Set(k, v)
		}
		return r
	}

	// W3C traceparent: the low 64 bits of the trace id and the parent span id
	// are adopted verbatim.
	trace, parent := traceIdentity(mk(map[string]string{
		"traceparent": "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
	}))
	if trace != 0x8448eb211c80319c || parent != 0xb7ad6b7169203331 {
		t.Errorf("traceparent adopted as %x/%x, want 8448eb211c80319c/b7ad6b7169203331", trace, parent)
	}

	// Malformed traceparent falls through (here: to nothing).
	for _, bad := range []string{
		"not-a-traceparent",
		"00-short-b7ad6b7169203331-01",
		"00-0af7651916cd43dd8448eb211c80319c-xxxx-01",
	} {
		if tr, _ := traceIdentity(mk(map[string]string{"traceparent": bad})); tr != 0 {
			t.Errorf("malformed traceparent %q yielded trace %x, want 0", bad, tr)
		}
	}

	// X-Request-ID hashes deterministically: same header, same trace id.
	a, p1 := traceIdentity(mk(map[string]string{"X-Request-ID": "req-123"}))
	b, _ := traceIdentity(mk(map[string]string{"X-Request-ID": "req-123"}))
	c, _ := traceIdentity(mk(map[string]string{"X-Request-ID": "req-124"}))
	if a == 0 || a != b || a == c || p1 != 0 {
		t.Errorf("X-Request-ID mapping: %x/%x/%x parent=%x", a, b, c, p1)
	}

	// No headers: mint locally (0,0).
	if tr, pa := traceIdentity(mk(nil)); tr != 0 || pa != 0 {
		t.Errorf("headerless request yielded %x/%x, want 0/0", tr, pa)
	}
}

// TestTracedRequestBreakdownAndDebugEndpoint drives one traced request
// through the live pipeline and checks the three request-scoped outputs: the
// X-Trace-Id header, the timing breakdown in the JSON body, and the span tree
// retained behind /debug/requests — with every stage attributed and every
// parent link resolving.
func TestTracedRequestBreakdownAndDebugEndpoint(t *testing.T) {
	telemetry.Reset()
	t.Cleanup(telemetry.Reset)
	telemetry.SetEnabled(true)

	_, ts := newTestServer(t, Config{Models: []string{"GCN"}})
	code, resp, _ := postInfer(t, ts.URL, inferRequest{Model: "GCN", Vertices: []int{0, 7}})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.Timing == nil {
		t.Fatal("traced 200 carries no timing breakdown")
	}
	tb := resp.Timing
	if tb.TraceID == "" || len(tb.TraceID) != 16 {
		t.Errorf("timing trace_id %q, want 16 hex chars", tb.TraceID)
	}
	if tb.TotalMS <= 0 {
		t.Errorf("total_ms %v, want > 0", tb.TotalMS)
	}
	sum := tb.AdmissionMS + tb.QueueWaitMS + tb.BatchWaitMS + tb.KernelMS + tb.RespondMS
	if sum > tb.TotalMS+0.5 {
		t.Errorf("stage sum %.3fms exceeds total %.3fms", sum, tb.TotalMS)
	}
	if tb.KernelMS <= 0 {
		t.Errorf("kernel_ms %v, want > 0 (the forward pass ran)", tb.KernelMS)
	}

	// /debug/requests retains the request with a connected tree.
	r2, err := http.Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(r2.Body)
	r2.Body.Close()
	var dbg struct {
		RequestsSeen int64          `json:"requests_seen"`
		Slowest      []debugRequest `json:"slowest"`
	}
	if err := json.Unmarshal(raw, &dbg); err != nil {
		t.Fatalf("debug endpoint not JSON: %v\n%s", err, raw)
	}
	if dbg.RequestsSeen != 1 || len(dbg.Slowest) != 1 {
		t.Fatalf("debug store: seen=%d slowest=%d, want 1 and 1", dbg.RequestsSeen, len(dbg.Slowest))
	}
	ex := dbg.Slowest[0]
	if ex.TraceID != tb.TraceID || ex.Model != "GCN" || ex.Status != "ok" {
		t.Errorf("exemplar identity %s/%s/%s, want %s/GCN/ok", ex.TraceID, ex.Model, ex.Status, tb.TraceID)
	}
	stages := map[string]bool{}
	for _, st := range ex.Stages {
		stages[st.Stage] = true
	}
	for _, want := range []string{"admission", "queue_wait", "batch_wait", "kernel", "respond"} {
		if !stages[want] {
			t.Errorf("exemplar missing stage %q (got %v)", want, ex.Stages)
		}
	}
	// One root (the request span) and the whole pipeline nested under it:
	// batch → program run → steps → kernels all resolve as descendants.
	if len(ex.Spans) != 1 {
		t.Fatalf("span tree has %d roots, want 1 connected tree:\n%s", len(ex.Spans), raw)
	}
	var cats []string
	var walk func(n *debugSpan)
	walk = func(n *debugSpan) {
		cats = append(cats, n.Cat)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(ex.Spans[0])
	seen := map[string]bool{}
	for _, c := range cats {
		seen[c] = true
	}
	for _, want := range []string{"request", "stage", "batch", "run", "step", "kernel"} {
		if !seen[want] {
			t.Errorf("span tree missing a %q span (categories: %v)", want, cats)
		}
	}
}

// TestBatchFanInFlowLinks wedges the worker so several requests coalesce,
// then checks the fan-in contract: one batch span joins the lead member's
// trace, and every other member is linked to it by a paired flow arrow.
func TestBatchFanInFlowLinks(t *testing.T) {
	telemetry.Reset()
	t.Cleanup(telemetry.Reset)
	telemetry.SetEnabled(true)
	defer faultinject.Reset()

	_, ts := newTestServer(t, Config{Models: []string{"GCN"}, MaxBatch: 16, QueueDepth: 16})
	faultinject.Arm(faultinject.QueueStall, faultinject.Spec{After: 1, Limit: 1, Delay: 300 * time.Millisecond})

	const n = 5
	var wg sync.WaitGroup
	batched := make(chan int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			code, resp, _ := postInfer(t, ts.URL, inferRequest{Model: "GCN", Vertices: []int{v}})
			if code == http.StatusOK {
				batched <- resp.Batched
			}
		}(i)
	}
	wg.Wait()
	close(batched)
	maxBatch := 0
	for b := range batched {
		if b > maxBatch {
			maxBatch = b
		}
	}
	if maxBatch < 2 {
		t.Skip("no coalescing this run; fan-in links need a real batch")
	}

	// Find the biggest batch span and count flow pairs targeting it.
	events := telemetry.Default().Events()
	var batchSpan *telemetry.TraceEvent
	for i := range events {
		ev := &events[i]
		if ev.Cat == "batch" && ev.TraceID != 0 {
			if batchSpan == nil || ev.Dur > batchSpan.Dur {
				batchSpan = ev
			}
		}
	}
	if batchSpan == nil {
		t.Fatal("no traced batch span recorded")
	}
	flowStarts := map[uint64]telemetry.TraceEvent{}
	flowEndsToBatch := 0
	for _, ev := range events {
		if ev.FlowID == 0 {
			continue
		}
		if !ev.FlowEnd {
			flowStarts[ev.FlowID] = ev
			continue
		}
		if ev.SpanID != batchSpan.SpanID {
			continue
		}
		flowEndsToBatch++
		from, ok := flowStarts[ev.FlowID]
		if !ok {
			t.Errorf("flow finish %d has no matching start", ev.FlowID)
			continue
		}
		if from.TraceID == batchSpan.TraceID {
			t.Error("flow arrow starts in the lead trace; only non-lead members get arrows")
		}
		if from.TraceID == 0 || from.SpanID == 0 {
			t.Error("flow start lost its member identity")
		}
	}
	if flowEndsToBatch != maxBatch-1 {
		t.Errorf("batch of %d produced %d fan-in flow links, want %d (every non-lead member)",
			maxBatch, flowEndsToBatch, maxBatch-1)
	}
	// The batch span hangs off the lead member's root span.
	if batchSpan.ParentID == 0 {
		t.Error("batch span has no parent; it must join the lead member's tree")
	}
}

// TestErrorRequestsLandInExemplarErrors: a failed request is retained in the
// error ring with its status, not competing with the slow set.
func TestErrorRequestsLandInExemplarErrors(t *testing.T) {
	telemetry.Reset()
	t.Cleanup(telemetry.Reset)
	telemetry.SetEnabled(true)

	s, ts := newTestServer(t, Config{Models: []string{"GCN"}})
	if code, _, _ := postInfer(t, ts.URL, inferRequest{Model: "nope", Vertices: []int{0}}); code != http.StatusNotFound {
		t.Fatalf("status %d, want 404", code)
	}
	_, errs := s.exemplars.Snapshot()
	if len(errs) != 1 || errs[0].Status != "error" || errs[0].Err == "" {
		t.Fatalf("error ring %+v, want one error exemplar with text", errs)
	}
}

// TestUntracedPathUnchanged: with telemetry disabled the response carries no
// timing block, no X-Trace-Id header, and the exemplar store stays empty —
// the disabled path does no tracing work.
func TestUntracedPathUnchanged(t *testing.T) {
	telemetry.Reset()
	t.Cleanup(telemetry.Reset)

	s, ts := newTestServer(t, Config{Models: []string{"GCN"}})
	resp, err := http.Post(ts.URL+"/v1/infer", "application/json",
		strings.NewReader(`{"model":"GCN","vertices":[0]}`))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Trace-Id") != "" {
		t.Error("untraced response carries X-Trace-Id")
	}
	var out map[string]json.RawMessage
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if _, ok := out["timing"]; ok {
		t.Error("untraced response carries a timing block")
	}
	if s.exemplars.Seen() != 0 {
		t.Error("untraced request offered to the exemplar store")
	}
}
