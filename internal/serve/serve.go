// Package serve is the inference daemon behind cmd/ugrapher-serve: an HTTP
// JSON front end over compiled model programs (DESIGN.md §13).
//
// The pipeline per request is admission → queue → batcher → compiled
// program, with four failure-containment mechanisms layered on:
//
//   - admission control: each model has a bounded queue; when it is full
//     the handler rejects immediately with 429 + Retry-After instead of
//     letting latency grow without bound (reject-fast backpressure).
//   - batching with deadline propagation: concurrent same-model requests
//     coalesce into one forward pass; the batch context carries the latest
//     member deadline, and every member's handler enforces its own earlier
//     deadline independently, so one slow batch cannot wedge a worker or
//     starve a fast client.
//   - graceful degradation: a per-model circuit breaker counts consecutive
//     *core.KernelError failures and, once open, routes traffic through a
//     program compiled on core.ResilientBackend — the per-kernel fallback
//     ladder onto the reference interpreter — until a half-open probe
//     proves the primary healthy again.
//   - graceful drain: Drain stops admission (readyz flips unready first),
//     lets in-flight batches finish under a deadline, and shuts the
//     workers down.
//
// A CompiledProgram is not safe for concurrent use (one shared arena), so
// each model is owned by exactly one worker goroutine; concurrency scales
// through batching, not through parallel runs of one program.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/faultinject"
	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/program"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// Config is the daemon's startup configuration.
type Config struct {
	// Dataset is the graph every model serves (Table 3 code, e.g. "CO").
	Dataset string
	// Models lists the model names to load (see models.All).
	Models []string
	// Feat and Classes shape the compiled forward pass.
	Feat    int
	Classes int
	// Backend selects the host compute backend ("" = parallel). The
	// degraded path always wraps the same backend in a resilient ladder.
	Backend string
	// Shards is the graph shard count (-1 = core.DefaultShards()).
	Shards int
	// Workers sizes the parallel backend's pool (0 = $UGRAPHER_WORKERS /
	// NumCPU).
	Workers int
	// QueueDepth bounds each model's request queue; a full queue
	// fast-rejects with 429.
	QueueDepth int
	// MaxBatch caps how many requests coalesce into one forward pass.
	MaxBatch int
	// DefaultTimeout applies when a request carries no timeout_ms;
	// MaxTimeout clamps what a request may ask for.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// BreakerThreshold is the consecutive kernel-failure count that trips
	// a model's breaker; BreakerCooldown is the open → half-open delay.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// DrainTimeout bounds how long Drain waits for in-flight work.
	DrainTimeout time.Duration
	// ExemplarSlow and ExemplarErrors bound the tail-sampled request
	// exemplar store behind /debug/requests: the N slowest and the N most
	// recent errored requests keep their full span trees.
	ExemplarSlow   int
	ExemplarErrors int
	// TraceSpanCap bounds the span records retained per request trace
	// (beyond it, spans still export to the global buffer but drop from the
	// request's own tree).
	TraceSpanCap int
}

// applyDefaults fills zero fields with serving defaults.
func (c *Config) applyDefaults() {
	if c.Dataset == "" {
		c.Dataset = "CO"
	}
	if len(c.Models) == 0 {
		c.Models = []string{"GCN"}
	}
	if c.Feat <= 0 {
		c.Feat = 16
	}
	if c.Classes <= 0 {
		c.Classes = 8
	}
	if c.Shards < 0 {
		c.Shards = core.DefaultShards()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.ExemplarSlow <= 0 {
		c.ExemplarSlow = 16
	}
	if c.ExemplarErrors <= 0 {
		c.ExemplarErrors = 16
	}
	if c.TraceSpanCap <= 0 {
		c.TraceSpanCap = 192
	}
}

// Server is the daemon: per-model hosts behind an HTTP mux.
type Server struct {
	cfg   Config
	g     *graph.Graph
	hosts map[string]*modelHost // key: lower-cased model name
	order []string              // canonical names, load order
	cache *programCache
	mux   *http.ServeMux
	// exemplars is the tail-sampled request store behind /debug/requests.
	exemplars *telemetry.ExemplarStore

	ready atomic.Bool
	// gate serializes admission against drain: handlers take the read
	// side to check draining and join inflight; Drain takes the write side
	// to flip draining, so no request can slip in after the drain barrier.
	gate     sync.RWMutex
	draining bool
	inflight sync.WaitGroup
}

// New loads the dataset, compiles every model's primary and degraded
// programs through the cache, and returns a ready server.
func New(cfg Config) (*Server, error) {
	cfg.applyDefaults()
	g, _, err := datasets.Load(cfg.Dataset)
	if err != nil {
		return nil, err
	}
	// The stored feature matrix all vertex queries read from, seeded
	// exactly like cmd/ugrapher's -model path so results are comparable
	// across tools (and precomputable by black-box tests).
	x := tensor.NewDense(g.NumVertices(), cfg.Feat)
	x.FillRandom(rand.New(rand.NewSource(42)), 1)

	s := &Server{
		cfg:       cfg,
		g:         g,
		hosts:     make(map[string]*modelHost),
		cache:     newProgramCache(),
		exemplars: telemetry.NewExemplarStore(cfg.ExemplarSlow, cfg.ExemplarErrors),
	}
	for _, name := range cfg.Models {
		m, err := models.ByName(name)
		if err != nil {
			return nil, err
		}
		key := strings.ToLower(m.Name())
		if _, dup := s.hosts[key]; dup {
			continue
		}
		h, err := s.newHost(m, x)
		if err != nil {
			return nil, fmt.Errorf("model %s: %w", m.Name(), err)
		}
		s.hosts[key] = h
		s.order = append(s.order, m.Name())
		go h.run()
	}
	s.buildMux()
	s.ready.Store(true)
	return s, nil
}

// backend builds the configured primary compute backend.
func (s *Server) backend() (core.ExecBackend, error) {
	switch s.cfg.Backend {
	case "", "parallel":
		return core.NewShardedParallelBackend(s.cfg.Workers, s.cfg.Shards), nil
	default:
		return core.Backend(s.cfg.Backend)
	}
}

// newHost compiles m's primary and degraded programs and assembles the
// host around them.
func (s *Server) newHost(m models.Model, x *tensor.Dense) (*modelHost, error) {
	b, err := s.backend()
	if err != nil {
		return nil, err
	}
	dev := gpu.V100()
	// Compile time is a stage like any other: cache misses below record into
	// the per-model stage histogram so a cold start is attributable.
	compileStart := time.Now()
	primary, err := s.cache.Get(
		cacheKey{Model: m.Name(), Dataset: s.cfg.Dataset, Backend: b.Name(), Shards: s.cfg.Shards},
		func() (*program.CompiledProgram, error) {
			eng := models.NewTunedEngine(dev)
			eng.Compute = b
			return models.CompileModel(m, s.g, s.cfg.Feat, s.cfg.Classes, eng)
		})
	if err != nil {
		return nil, err
	}
	// The degraded program wraps the same backend in the resilient ladder:
	// kernels that keep failing on the primary backend rerun on the
	// reference interpreter, per kernel, inside one compiled program.
	rb := core.NewResilientBackend(b, nil)
	fallback, err := s.cache.Get(
		cacheKey{Model: m.Name(), Dataset: s.cfg.Dataset, Backend: rb.Name(), Shards: s.cfg.Shards},
		func() (*program.CompiledProgram, error) {
			eng := models.NewTunedEngine(dev)
			eng.Compute = rb
			return models.CompileModel(m, s.g, s.cfg.Feat, s.cfg.Classes, eng)
		})
	if err != nil {
		return nil, err
	}
	hm := newHostMetrics(m.Name())
	hm.stageCompile.Observe(int64(time.Since(compileStart)))
	return &modelHost{
		name:      m.Name(),
		queue:     make(chan *request, s.cfg.QueueDepth),
		primary:   primary,
		fallback:  fallback,
		resilient: rb,
		features:  x,
		classes:   s.cfg.Classes,
		maxBatch:  s.cfg.MaxBatch,
		br:        newBreaker(m.Name(), s.cfg.BreakerThreshold, s.cfg.BreakerCooldown),
		m:         hm,
		done:      make(chan struct{}),
	}, nil
}

func (s *Server) buildMux() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/infer", s.handleInfer)
	s.mux.HandleFunc("/v1/models", s.handleModels)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/requests", s.handleDebugRequests)
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Graph exposes the served graph (tests compute reference outputs on it).
func (s *Server) Graph() *graph.Graph { return s.g }

// Drain performs graceful shutdown of the serving layer: flip unready,
// stop admitting, wait out in-flight requests under the deadline, then
// stop the workers. The HTTP listener itself is the caller's to close
// (after Drain returns, so /healthz and /readyz stay reachable while
// draining). Returns an error if in-flight work outlived the deadline.
func (s *Server) Drain(timeout time.Duration) error {
	s.ready.Store(false)
	s.gate.Lock()
	alreadyDraining := s.draining
	s.draining = true
	s.gate.Unlock()
	if alreadyDraining {
		return nil
	}

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		// Queues may still hold requests whose handlers could race a
		// close; leave them open — the process is exiting anyway.
		return fmt.Errorf("serve: drain timed out after %v with requests in flight", timeout)
	}
	for _, name := range s.order {
		close(s.hosts[strings.ToLower(name)].queue)
	}
	for _, name := range s.order {
		h := s.hosts[strings.ToLower(name)]
		select {
		case <-h.done:
		case <-time.After(timeout):
			return fmt.Errorf("serve: worker %s did not exit within %v", h.name, timeout)
		}
	}
	return nil
}

// The wire format.

type inferRequest struct {
	Model    string `json:"model"`
	Vertices []int  `json:"vertices"`
	// TimeoutMS is the caller's deadline in milliseconds (0 = server
	// default; clamped to the server maximum).
	TimeoutMS int `json:"timeout_ms"`
	// Features optionally replaces the stored feature matrix for this one
	// request (|V| × feat); such requests run unbatched.
	Features [][]float32 `json:"features,omitempty"`
}

type inferResponse struct {
	Model    string      `json:"model"`
	Logits   [][]float32 `json:"logits"`
	Batched  int         `json:"batched"`
	Degraded bool        `json:"degraded"`
	// Timing is the per-stage latency breakdown, present while telemetry is
	// enabled.
	Timing *timingBreakdown `json:"timing,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the connection failed mid-write; nothing recoverable
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// handleInfer is admission control plus the request half of batching: queue
// with a non-blocking send (full queue → fast 429), then wait for the
// worker's response or this request's own deadline, whichever is first.
func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	// The trace context is minted (or adopted from traceparent /
	// X-Request-ID) before anything else can stall the handler, so a
	// middleware-style delay — the slow-handler fault below — lands inside
	// the admission stage of this request's own span tree.
	var (
		ts      *telemetry.TraceState
		root    telemetry.Span
		arrived int64
	)
	if telemetry.Enabled() {
		arrived = telemetry.Now()
		id, parent := traceIdentity(r)
		ts = telemetry.NewTraceState(id, parent, s.cfg.TraceSpanCap)
		root = telemetry.StartTraceSpan(ts, "serve", "request", "infer")
		root.MakeCurrent()
		w.Header().Set("X-Trace-Id", fmt.Sprintf("%016x", ts.TraceID()))
	}
	status, errText, model := "error", "", ""
	defer func() {
		if ts == nil {
			return
		}
		if status == "ok" {
			root.End()
		} else {
			root.EndErr(errText)
		}
		spans, truncated := ts.Snapshot()
		s.exemplars.Offer(telemetry.RequestExemplar{
			TraceID: ts.TraceID(), Model: model, Status: status,
			Start: arrived, WallNs: telemetry.Now() - arrived,
			Err: errText, Stages: stagePoints(spans),
			Spans: spans, Truncated: truncated,
		})
	}()
	fail := func(code int, format string, args ...any) {
		errText = fmt.Sprintf(format, args...)
		writeError(w, code, "%s", errText)
	}

	// SlowHandler models a stalled handler (e.g. slow TLS termination or
	// middleware); armed only by tests and -faults.
	faultinject.MaybeSleep(faultinject.SlowHandler)
	if r.Method != http.MethodPost {
		fail(http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req inferRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 32<<20))
	if err := dec.Decode(&req); err != nil {
		fail(http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	h, ok := s.hosts[strings.ToLower(req.Model)]
	if !ok {
		fail(http.StatusNotFound, "unknown model %q (serving: %s)",
			req.Model, strings.Join(s.order, ", "))
		return
	}
	model = h.name
	if err := h.validate(req.Vertices, s.g.NumVertices()); err != nil {
		fail(http.StatusBadRequest, "%v", err)
		return
	}
	var features *tensor.Dense
	if req.Features != nil {
		var err error
		features, err = denseFromRows(req.Features, s.g.NumVertices(), s.cfg.Feat)
		if err != nil {
			fail(http.StatusBadRequest, "%v", err)
			return
		}
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}

	// Admission: drain wins races against new arrivals (see gate).
	s.gate.RLock()
	if s.draining {
		s.gate.RUnlock()
		fail(http.StatusServiceUnavailable, "draining")
		return
	}
	s.inflight.Add(1)
	s.gate.RUnlock()
	defer s.inflight.Done()

	start := time.Now()
	rq := &request{
		vertices: req.Vertices,
		features: features,
		deadline: start.Add(timeout),
		resp:     make(chan response, 1),
	}
	if ts != nil {
		enqueued := telemetry.Now()
		telemetry.RecordSpan(ts, "serve", "stage", "admission", arrived, enqueued, root.SpanID())
		h.m.stageAdmission.Observe(enqueued - arrived)
		rq.ts, rq.rootSpan, rq.enqueued = ts, root.SpanID(), enqueued
	}
	select {
	case h.queue <- rq:
		h.m.requests.Inc()
	default:
		// Reject-fast backpressure: no blocking, no queueing beyond the
		// bound. Retry-After steers well-behaved clients off the spike.
		status = "rejected"
		h.m.rejected.Inc()
		w.Header().Set("Retry-After", "1")
		fail(http.StatusTooManyRequests, "model %s queue full (depth %d)", h.name, s.cfg.QueueDepth)
		return
	}

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case resp := <-rq.resp:
		h.m.latency.Observe(int64(time.Since(start)))
		switch {
		case resp.err == nil:
			status = "ok"
			out := inferResponse{
				Model: h.name, Logits: resp.logits,
				Batched: resp.batched, Degraded: resp.degraded,
			}
			if ts != nil {
				done := telemetry.Now()
				telemetry.RecordSpan(ts, "serve", "stage", "respond", resp.runEnd, done, root.SpanID())
				h.m.stageRespond.Observe(done - resp.runEnd)
				out.Timing = &timingBreakdown{
					TraceID:     fmt.Sprintf("%016x", ts.TraceID()),
					AdmissionMS: msBetween(arrived, rq.enqueued),
					QueueWaitMS: msBetween(rq.enqueued, rq.dequeued),
					BatchWaitMS: msBetween(rq.dequeued, resp.runStart),
					KernelMS:    msBetween(resp.runStart, resp.runEnd),
					RespondMS:   msBetween(resp.runEnd, done),
					TotalMS:     msBetween(arrived, done),
				}
			}
			writeJSON(w, http.StatusOK, out)
		case errors.Is(resp.err, context.DeadlineExceeded):
			status = "timeout"
			h.m.timeouts.Inc()
			fail(http.StatusGatewayTimeout, "deadline exceeded in batch: %v", resp.err)
		default:
			fail(http.StatusInternalServerError, "inference failed: %v", resp.err)
		}
	case <-timer.C:
		// This member's own deadline passed while its batch was still
		// running (or queued). The batch carries on for members with more
		// budget; the buffered response channel absorbs our late result.
		status = "timeout"
		h.m.timeouts.Inc()
		fail(http.StatusGatewayTimeout, "deadline exceeded after %v", timeout)
	}
}

// handleModels lists what the daemon serves.
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	type modelInfo struct {
		Name    string `json:"name"`
		Breaker string `json:"breaker"`
		Queue   int    `json:"queue"`
	}
	out := struct {
		Dataset  string      `json:"dataset"`
		Vertices int         `json:"vertices"`
		Feat     int         `json:"feat"`
		Classes  int         `json:"classes"`
		Models   []modelInfo `json:"models"`
	}{
		Dataset: s.cfg.Dataset, Vertices: s.g.NumVertices(),
		Feat: s.cfg.Feat, Classes: s.cfg.Classes,
	}
	for _, name := range s.order {
		h := s.hosts[strings.ToLower(name)]
		out.Models = append(out.Models, modelInfo{
			Name: h.name, Breaker: h.br.current().String(), Queue: len(h.queue),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleHealthz reports liveness: the process is up.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports readiness: flips unready the moment a drain starts,
// before any listener teardown, so load balancers stop routing first.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

// denseFromRows validates and copies a caller-supplied feature matrix.
func denseFromRows(rows [][]float32, wantRows, wantCols int) (*tensor.Dense, error) {
	if len(rows) != wantRows {
		return nil, fmt.Errorf("features must have %d rows (one per vertex), got %d", wantRows, len(rows))
	}
	d := tensor.NewDense(wantRows, wantCols)
	for i, row := range rows {
		if len(row) != wantCols {
			return nil, fmt.Errorf("features row %d has %d columns, want %d", i, len(row), wantCols)
		}
		copy(d.Data[i*wantCols:(i+1)*wantCols], row)
	}
	return d, nil
}
