package serve

import (
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// The per-model circuit breaker (DESIGN.md §13). Kernel panics surface as
// *core.KernelError; a run of them in a row means the primary compiled
// program is reliably failing, and retrying it on every request would burn
// a worker on panic-recover cycles. The breaker counts consecutive kernel
// failures and, at the threshold, routes the model's traffic to the
// degraded program (compiled on core.ResilientBackend, whose per-kernel
// ladder lands on the reference interpreter) until a cooldown passes. Then
// one probe batch tries the primary again: success closes the breaker,
// another kernel failure re-opens it.
//
// All mutation happens on the model host's single worker goroutine, so the
// counters and timestamps are plain fields; only the state cell is atomic,
// because handlers and the metrics scraper read it concurrently.

// breakerState enumerates the classic three states.
type breakerState int32

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// String renders the state for logs and trace events.
func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "state-" + strconv.Itoa(int(s))
	}
}

// breaker is one model's circuit breaker.
type breaker struct {
	model     string
	threshold int           // consecutive kernel failures that trip it
	cooldown  time.Duration // open → half-open delay

	state atomic.Int32 // breakerState; read by handlers and /metrics

	// Worker-goroutine-only fields.
	consecutive int
	openedAt    time.Time
}

func newBreaker(model string, threshold int, cooldown time.Duration) *breaker {
	return &breaker{model: model, threshold: threshold, cooldown: cooldown}
}

// current reads the state (any goroutine).
func (b *breaker) current() breakerState { return breakerState(b.state.Load()) }

// transition moves to next and records the move as a telemetry instant
// event on the "serve" track plus a transition counter, so breaker history
// is visible in both the trace and the metrics snapshot.
func (b *breaker) transition(next breakerState, reason string) {
	prev := breakerState(b.state.Swap(int32(next)))
	if prev == next {
		return
	}
	telemetry.Default().Counter(telemetry.Series2(
		metricBreakerTransitions, "model", b.model, "to", next.String())).Inc()
	telemetry.Default().Instant("serve", "breaker", b.model, map[string]string{
		"model": b.model, "from": prev.String(), "to": next.String(), "reason": reason,
	})
}

// route decides which program the next batch runs on: primary (true) or
// degraded (false). When the cooldown has passed it flips open → half-open
// and lets exactly one probe batch through to the primary (single worker:
// no second probe can race in). Worker goroutine only.
func (b *breaker) route(now time.Time) (usePrimary, probe bool) {
	switch b.current() {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if now.Sub(b.openedAt) >= b.cooldown {
			b.transition(breakerHalfOpen, "cooldown elapsed, probing primary")
			return true, true
		}
		return false, false
	default: // half-open: the in-flight probe's batch
		return true, true
	}
}

// onSuccess records a primary-program success. Worker goroutine only.
func (b *breaker) onSuccess(probe bool) {
	b.consecutive = 0
	if probe {
		b.transition(breakerClosed, "probe succeeded")
	}
}

// onFailure records a primary-program kernel failure; returns true when
// this failure tripped the breaker. Worker goroutine only.
func (b *breaker) onFailure(probe bool, now time.Time) bool {
	if probe {
		b.openedAt = now
		b.consecutive = 0
		b.transition(breakerOpen, "probe failed")
		return true
	}
	b.consecutive++
	if b.consecutive >= b.threshold && b.current() == breakerClosed {
		b.openedAt = now
		b.consecutive = 0
		b.transition(breakerOpen, "consecutive kernel failures reached threshold")
		return true
	}
	return false
}

// onInconclusive records a probe whose batch failed for reasons unrelated
// to the primary program (e.g. the batch deadline expired mid-run): the
// probe proved nothing, so the breaker re-opens and waits out another
// cooldown. Worker goroutine only.
func (b *breaker) onInconclusive(now time.Time) {
	if b.current() == breakerHalfOpen {
		b.openedAt = now
		b.transition(breakerOpen, "probe inconclusive")
	}
}
