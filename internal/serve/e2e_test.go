// Black-box end-to-end tests: build the real ugrapher-serve binary with
// the race detector enabled, run it as a child process, and prove the
// serving-layer guarantees from the outside — fast 429 backpressure with
// healthy traffic unaffected, breaker-gated degradation with
// reference-correct outputs, and SIGTERM drain ordering. Faults are armed
// in the child via its -faults flag; expected outputs are computed
// in-process from the same deterministic seeds the daemon uses.
package serve_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/gpu"
	"repro/internal/models"
	"repro/internal/tensor"
)

// buildOnce builds the race-instrumented daemon binary a single time for
// the whole suite.
var buildOnce struct {
	sync.Once
	bin string
	err error
}

func serveBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "ugrapher-serve-e2e-*")
		if err != nil {
			buildOnce.err = err
			return
		}
		bin := filepath.Join(dir, "ugrapher-serve")
		cmd := exec.Command("go", "build", "-race", "-o", bin, "repro/cmd/ugrapher-serve")
		out, err := cmd.CombinedOutput()
		if err != nil {
			buildOnce.err = fmt.Errorf("go build -race: %v\n%s", err, out)
			return
		}
		buildOnce.bin = bin
	})
	if buildOnce.err != nil {
		t.Fatal(buildOnce.err)
	}
	return buildOnce.bin
}

// daemon is one running child process.
type daemon struct {
	cmd    *exec.Cmd
	addr   string
	stdout *bytes.Buffer // lines after the handshake, for assertions
	mu     sync.Mutex
	waited chan error
}

// startDaemon launches the binary with args (plus -addr 127.0.0.1:0) and
// waits for the "listening on" handshake.
func startDaemon(t *testing.T, args ...string) *daemon {
	t.Helper()
	bin := serveBinary(t)
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = io.Discard // resilient-fallback logging is expected noise here
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, stdout: &bytes.Buffer{}, waited: make(chan error, 1)}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if a, ok := strings.CutPrefix(line, "listening on "); ok {
				addrc <- a
				continue
			}
			d.mu.Lock()
			fmt.Fprintln(d.stdout, line)
			d.mu.Unlock()
		}
	}()
	go func() { d.waited <- cmd.Wait() }()
	select {
	case a := <-addrc:
		d.addr = a
	case err := <-d.waited:
		t.Fatalf("daemon exited before listening: %v\n%s", err, d.output())
	case <-time.After(3 * time.Minute):
		_ = cmd.Process.Kill()
		t.Fatal("daemon did not print the listening handshake in time")
	}
	t.Cleanup(func() {
		if d.cmd.ProcessState == nil {
			_ = d.cmd.Process.Kill()
			<-d.waited
		}
	})
	return d
}

func (d *daemon) output() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stdout.String()
}

func (d *daemon) url(path string) string { return "http://" + d.addr + path }

// e2e wire types mirror the daemon's JSON contract.
type e2eInferRequest struct {
	Model     string `json:"model"`
	Vertices  []int  `json:"vertices"`
	TimeoutMS int    `json:"timeout_ms,omitempty"`
}

type e2eInferResponse struct {
	Model    string      `json:"model"`
	Logits   [][]float32 `json:"logits"`
	Batched  int         `json:"batched"`
	Degraded bool        `json:"degraded"`
}

// infer posts one request; decode failures report via Errorf so callers
// may run in goroutines.
func infer(t *testing.T, d *daemon, req e2eInferRequest) (int, e2eInferResponse, http.Header) {
	t.Helper()
	var out e2eInferResponse
	body, _ := json.Marshal(req)
	resp, err := http.Post(d.url("/v1/infer"), "application/json", bytes.NewReader(body))
	if err != nil {
		t.Errorf("post: %v", err)
		return 0, out, nil
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Errorf("read: %v", err)
		return 0, out, nil
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Errorf("bad 200 body %q: %v", raw, err)
			return 0, out, nil
		}
	}
	return resp.StatusCode, out, resp.Header
}

func getStatus(t *testing.T, d *daemon, path string) int {
	t.Helper()
	resp, err := http.Get(d.url(path))
	if err != nil {
		t.Errorf("get %s: %v", path, err)
		return 0
	}
	resp.Body.Close()
	return resp.StatusCode
}

// oracleLogits recomputes, in this process, what the daemon must serve:
// the reference interpreter's Forward with the daemon's seeds (features
// 42, model weights 1234) on the same dataset/shape defaults.
func oracleLogits(t *testing.T, model string) *tensor.Dense {
	t.Helper()
	g, _, err := datasets.Load("CO")
	if err != nil {
		t.Fatal(err)
	}
	m, err := models.ByName(model)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewDense(g.NumVertices(), 16)
	x.FillRandom(rand.New(rand.NewSource(42)), 1)
	eng := models.NewTunedEngine(gpu.V100())
	eng.Compute = core.ReferenceBackend()
	want, err := m.Forward(g, x, 8, eng)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// TestE2EQueueFullFastReject: acceptance (a) — with one model's worker
// stalled and its bounded queue full, overflow requests are rejected 429
// within 10ms, while a second model's traffic completes normally.
func TestE2EQueueFullFastReject(t *testing.T) {
	d := startDaemon(t, "-models", "GCN,GIN", "-queue", "2",
		"-faults", "queue-stall:after=1,limit=1,delay=2s")

	// First GCN request: its worker picks it up and stalls 2s (limit=1, so
	// GIN's worker is never affected). Everything else sent to GCN during
	// the stall sits in — or overflows — the depth-2 queue.
	stalled := make(chan int, 3)
	go func() {
		code, _, _ := infer(t, d, e2eInferRequest{Model: "GCN", Vertices: []int{0}, TimeoutMS: 10000})
		stalled <- code
	}()
	time.Sleep(300 * time.Millisecond) // worker is now inside the stall
	for i := 0; i < 2; i++ {           // fill the queue
		go func() {
			code, _, _ := infer(t, d, e2eInferRequest{Model: "GCN", Vertices: []int{1}, TimeoutMS: 10000})
			stalled <- code
		}()
	}
	time.Sleep(300 * time.Millisecond)

	// Overflow: 429, and fast — rejection is a non-blocking channel probe,
	// not a wait on the stalled worker.
	best := time.Hour
	rejections := 0
	for i := 0; i < 5; i++ {
		start := time.Now()
		code, _, hdr := infer(t, d, e2eInferRequest{Model: "GCN", Vertices: []int{2}})
		lat := time.Since(start)
		if code != http.StatusTooManyRequests {
			t.Fatalf("overflow request %d: status %d, want 429 (daemon output:\n%s)", i, code, d.output())
		}
		if hdr.Get("Retry-After") == "" {
			t.Error("429 without Retry-After")
		}
		rejections++
		if lat < best {
			best = lat
		}
	}
	if best > 10*time.Millisecond {
		t.Errorf("fastest of %d rejections took %v, want < 10ms", rejections, best)
	}

	// Healthy traffic on the other model completes while GCN is wedged.
	code, resp, _ := infer(t, d, e2eInferRequest{Model: "GIN", Vertices: []int{0, 1}})
	if code != http.StatusOK || resp.Degraded {
		t.Errorf("healthy model during stall: status %d degraded=%v, want clean 200", code, resp.Degraded)
	}

	// The stalled/queued GCN requests all complete once the stall passes.
	for i := 0; i < 3; i++ {
		if code := <-stalled; code != http.StatusOK {
			t.Errorf("queued request %d: status %d, want 200", i, code)
		}
	}
}

// TestE2EBreakerDegradesToReference: acceptance (b) — sustained injected
// kernel panics trip the breaker; subsequent requests succeed via the
// resilient fallback with outputs matching the reference oracle to 1e-4.
func TestE2EBreakerDegradesToReference(t *testing.T) {
	d := startDaemon(t, "-models", "GCN", "-breaker-threshold", "2",
		"-breaker-cooldown", "5m", "-faults", "kernel-panic-load:every=1")
	want := oracleLogits(t, "GCN")

	// Below the threshold the breaker is closed and failures surface.
	for i := 0; i < 2; i++ {
		code, _, _ := infer(t, d, e2eInferRequest{Model: "GCN", Vertices: []int{3}})
		if code != http.StatusInternalServerError {
			t.Fatalf("request %d: status %d, want 500 while breaker closed", i, code)
		}
	}
	// Tripped: service continues, degraded, and numerically correct.
	vertices := []int{3, 42, 2707}
	for i := 0; i < 3; i++ {
		code, resp, _ := infer(t, d, e2eInferRequest{Model: "GCN", Vertices: vertices})
		if code != http.StatusOK {
			t.Fatalf("degraded request %d: status %d, want 200 (output:\n%s)", i, code, d.output())
		}
		if !resp.Degraded {
			t.Error("open breaker served degraded=false")
		}
		for j, v := range vertices {
			row := want.Data[v*want.Cols : (v+1)*want.Cols]
			diff := 0.0
			for k := range row {
				if dv := math.Abs(float64(resp.Logits[j][k]) - float64(row[k])); dv > diff {
					diff = dv
				}
			}
			if diff > 1e-4 {
				t.Errorf("degraded vertex %d: maxdiff %g vs reference", v, diff)
			}
		}
	}
	// The breaker state and the degradation are visible to operators.
	resp, err := http.Get(d.url("/metrics"))
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, series := range []string{
		`ugrapher_serve_breaker_transitions_total{model="GCN",to="open"} 1`,
		`ugrapher_serve_degraded_total{model="GCN"} 3`,
	} {
		if !bytes.Contains(metrics, []byte(series)) {
			t.Errorf("metrics missing %q", series)
		}
	}
	if !bytes.Contains(metrics, []byte(`ugrapher_fallbacks_total`)) {
		t.Error("metrics missing ugrapher_fallbacks_total")
	}
}

// TestE2EDrainOnSIGTERM: acceptance (c) — SIGTERM flips /readyz unready
// while the listener still answers, refuses new work, completes the
// in-flight batch, and exits 0.
func TestE2EDrainOnSIGTERM(t *testing.T) {
	d := startDaemon(t, "-models", "GCN", "-drain-timeout", "10s",
		"-faults", "queue-stall:after=1,limit=1,delay=1500ms")

	if code := getStatus(t, d, "/readyz"); code != http.StatusOK {
		t.Fatalf("readyz before drain: %d", code)
	}

	// Put one request in flight; its worker stalls 1.5s.
	inflight := make(chan int, 1)
	go func() {
		code, _, _ := infer(t, d, e2eInferRequest{Model: "GCN", Vertices: []int{5}, TimeoutMS: 10000})
		inflight <- code
	}()
	time.Sleep(300 * time.Millisecond)

	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// readyz flips unready before the listener closes: the endpoint must
	// answer 503 (a closed listener would refuse the connection instead).
	flipped := false
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(d.url("/readyz"))
		if err != nil {
			t.Fatalf("readyz unreachable during drain (listener closed early?): %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			flipped = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !flipped {
		t.Fatal("readyz never flipped unready after SIGTERM")
	}
	// New work is refused during the drain window.
	if code, _, _ := infer(t, d, e2eInferRequest{Model: "GCN", Vertices: []int{0}}); code != http.StatusServiceUnavailable {
		t.Errorf("infer during drain: status %d, want 503", code)
	}
	// The in-flight batch completes rather than being dropped.
	select {
	case code := <-inflight:
		if code != http.StatusOK {
			t.Errorf("in-flight request during drain: status %d, want 200", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	// And the process exits 0 under the drain budget.
	select {
	case err := <-d.waited:
		if err != nil {
			t.Fatalf("daemon exit: %v (want clean exit 0)\n%s", err, d.output())
		}
	case <-time.After(20 * time.Second):
		t.Fatal("daemon did not exit after drain")
	}
	if out := d.output(); !strings.Contains(out, "drained; exiting") {
		t.Errorf("daemon output missing drain confirmation:\n%s", out)
	}
}
