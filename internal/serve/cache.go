package serve

import (
	"sync"

	"repro/internal/program"
	"repro/internal/telemetry"
)

// The compile cache: a model forward pass is compiled once per
// (model × dataset × backend × shards) and the CompiledProgram reused for
// every request thereafter. Compilation is the expensive step (record →
// fuse → schedule → buffer-plan, ~100ms per model on CO) and the compiled
// artifact is immutable apart from its arena, so the cache is the boundary
// between "startup cost" and "steady state". Concurrent Get calls for the
// same key singleflight: one caller compiles, the rest block on the entry's
// once and share the result (including a compile error, which is sticky —
// a program that failed to compile will fail identically on retry).

// cacheKey identifies one compiled program.
type cacheKey struct {
	Model   string
	Dataset string
	Backend string
	Shards  int
}

type cacheEntry struct {
	once sync.Once
	prog *program.CompiledProgram
	err  error
}

// programCache memoises compiled programs by key.
type programCache struct {
	mu sync.Mutex
	m  map[cacheKey]*cacheEntry
}

func newProgramCache() *programCache {
	return &programCache{m: make(map[cacheKey]*cacheEntry)}
}

// Get returns the cached program for key, compiling it with build on first
// use. Exactly one build runs per key regardless of concurrency.
func (c *programCache) Get(key cacheKey, build func() (*program.CompiledProgram, error)) (*program.CompiledProgram, error) {
	c.mu.Lock()
	e, ok := c.m[key]
	if !ok {
		e = &cacheEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		telemetry.Default().Counter(metricCompiles).Inc()
		e.prog, e.err = build()
	})
	return e.prog, e.err
}

// Len reports how many keys the cache holds (compiled or failed).
func (c *programCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
