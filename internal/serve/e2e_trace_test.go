// End-to-end tracing tests: run the real daemon and prove the observability
// guarantees from the outside — an injected handler stall shows up in the
// right stage of the request's own breakdown, the Prometheus snapshot carries
// every serving series, pprof lives only on the -debug-addr listener, and the
// -trace file written after drain holds one connected span tree per request.
package serve_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

type e2eTiming struct {
	TraceID     string  `json:"trace_id"`
	AdmissionMS float64 `json:"admission_ms"`
	QueueWaitMS float64 `json:"queue_wait_ms"`
	BatchWaitMS float64 `json:"batch_wait_ms"`
	KernelMS    float64 `json:"kernel_ms"`
	RespondMS   float64 `json:"respond_ms"`
	TotalMS     float64 `json:"total_ms"`
}

// inferTimed posts one request and decodes the timing block too.
func inferTimed(t *testing.T, d *daemon, req e2eInferRequest) (int, e2eTiming, http.Header) {
	t.Helper()
	var out struct {
		Timing *e2eTiming `json:"timing"`
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(d.url("/v1/infer"), "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("bad 200 body %q: %v", raw, err)
		}
		if out.Timing == nil {
			t.Fatalf("daemon response carries no timing block: %s", raw)
		}
		return resp.StatusCode, *out.Timing, resp.Header
	}
	return resp.StatusCode, e2eTiming{}, resp.Header
}

// TestE2ESlowHandlerAttributedToAdmission: a 300ms stall injected into the
// HTTP handler — before the queue, before any kernel — must land in the
// admission stage of that request's own breakdown and span tree, not smear
// into queue_wait or kernel time.
func TestE2ESlowHandlerAttributedToAdmission(t *testing.T) {
	d := startDaemon(t, "-models", "GCN",
		"-faults", "slow-handler:delay=300ms,limit=1")

	code, tb, hdr := inferTimed(t, d, e2eInferRequest{Model: "GCN", Vertices: []int{0}, TimeoutMS: 10000})
	if code != http.StatusOK {
		t.Fatalf("status %d (output:\n%s)", code, d.output())
	}
	if got := hdr.Get("X-Trace-Id"); len(got) != 16 || got != tb.TraceID {
		t.Errorf("X-Trace-Id %q vs timing trace_id %q; must match", got, tb.TraceID)
	}
	if tb.AdmissionMS < 280 {
		t.Errorf("admission_ms = %.1f, want >= 280 (the 300ms stall fires inside admission)", tb.AdmissionMS)
	}
	for stage, ms := range map[string]float64{
		"queue_wait": tb.QueueWaitMS, "kernel": tb.KernelMS, "respond": tb.RespondMS,
	} {
		if ms > 200 {
			t.Errorf("%s_ms = %.1f; the handler stall leaked out of admission", stage, ms)
		}
	}
	if tb.TotalMS < tb.AdmissionMS {
		t.Errorf("total_ms %.1f < admission_ms %.1f", tb.TotalMS, tb.AdmissionMS)
	}

	// The same attribution is visible to operators via /debug/requests.
	resp, err := http.Get(d.url("/debug/requests"))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var dbg struct {
		Slowest []struct {
			TraceID string `json:"trace_id"`
			Stages  []struct {
				Stage string  `json:"stage"`
				MS    float64 `json:"ms"`
			} `json:"stages"`
		} `json:"slowest"`
	}
	if err := json.Unmarshal(raw, &dbg); err != nil {
		t.Fatalf("debug endpoint not JSON: %v\n%s", err, raw)
	}
	if len(dbg.Slowest) == 0 {
		t.Fatalf("debug store retained nothing:\n%s", raw)
	}
	found := false
	for _, ex := range dbg.Slowest {
		if ex.TraceID != tb.TraceID {
			continue
		}
		found = true
		for _, st := range ex.Stages {
			if st.Stage == "admission" && st.MS < 280 {
				t.Errorf("exemplar admission stage %.1fms, want >= 280", st.MS)
			}
		}
	}
	if !found {
		t.Errorf("trace %s not retained in /debug/requests:\n%s", tb.TraceID, raw)
	}
}

// TestE2EMetricsCarryTracingSeries: after traffic, one scrape holds every
// serving series this PR added — the six stage histograms, the batch-size
// distribution, build info and the trace-drop counter.
func TestE2EMetricsCarryTracingSeries(t *testing.T) {
	d := startDaemon(t, "-models", "GCN", "-backend", "parallel")
	if code, _, _ := infer(t, d, e2eInferRequest{Model: "GCN", Vertices: []int{0, 1, 2}}); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}

	resp, err := http.Get(d.url("/metrics"))
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, series := range []string{
		`ugrapher_serve_stage_seconds_bucket{model="GCN",stage="admission",le="+Inf"}`,
		`ugrapher_serve_stage_seconds_bucket{model="GCN",stage="queue_wait",le="+Inf"}`,
		`ugrapher_serve_stage_seconds_bucket{model="GCN",stage="batch_wait",le="+Inf"}`,
		`ugrapher_serve_stage_seconds_bucket{model="GCN",stage="kernel",le="+Inf"}`,
		`ugrapher_serve_stage_seconds_bucket{model="GCN",stage="respond",le="+Inf"}`,
		`ugrapher_serve_stage_seconds_count{model="GCN",stage="compile"} 1`,
		`ugrapher_serve_batch_size_bucket{model="GCN",le="1"}`,
		`ugrapher_serve_batch_size_count{model="GCN"}`,
		`ugrapher_serve_request_seconds_bucket{model="GCN",le="+Inf"} 1`,
		`ugrapher_build_info{version=`,
		`backend="parallel"} 1`,
		`ugrapher_trace_events_dropped_total`,
	} {
		if !bytes.Contains(metrics, []byte(series)) {
			t.Errorf("metrics missing %q", series)
		}
	}
	// The kernel stage saw the one request.
	if !bytes.Contains(metrics, []byte(`ugrapher_serve_stage_seconds_count{model="GCN",stage="kernel"} 1`)) {
		t.Errorf("kernel stage count wrong:\n%.2000s", metrics)
	}
}

// TestE2EPprofOnlyOnDebugListener: -debug-addr opens a second listener
// carrying net/http/pprof; the serving port must not expose it.
func TestE2EPprofOnlyOnDebugListener(t *testing.T) {
	d := startDaemon(t, "-models", "GCN", "-debug-addr", "127.0.0.1:0")

	// The debug handshake line lands in the captured output after startup.
	var debugAddr string
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && debugAddr == "" {
		for _, line := range strings.Split(d.output(), "\n") {
			if a, ok := strings.CutPrefix(line, "debug listening on "); ok {
				debugAddr = a
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if debugAddr == "" {
		t.Fatalf("daemon never printed the debug handshake:\n%s", d.output())
	}

	resp, err := http.Get("http://" + debugAddr + "/debug/pprof/")
	if err != nil {
		t.Fatalf("pprof index on debug listener: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("goroutine")) {
		t.Errorf("pprof index: status %d, body %.200q", resp.StatusCode, body)
	}

	// Never on the serving port.
	if code := getStatus(t, d, "/debug/pprof/"); code != http.StatusNotFound {
		t.Errorf("serving port answers /debug/pprof/ with %d, want 404", code)
	}
	// But the request-exemplar debug view is part of the service surface.
	if code := getStatus(t, d, "/debug/requests"); code != http.StatusOK {
		t.Errorf("/debug/requests on serving port: %d, want 200", code)
	}
}

// TestE2ETraceFileConnectedSpanTrees: the acceptance criterion for the
// tentpole — run traced traffic (including a coalesced batch), drain via
// SIGTERM, and verify the written Chrome trace: valid JSON, every traced
// span's parent resolving within its trace, flow arrows in bound pairs, and
// async shadow pairs grouping each request.
func TestE2ETraceFileConnectedSpanTrees(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "serve-trace.json")
	// The stall fires on the second batch: the adopted request runs clean,
	// then the first burst member stalls its worker long enough for the
	// remaining members to coalesce behind it.
	d := startDaemon(t, "-models", "GCN", "-trace", tracePath,
		"-faults", "queue-stall:after=2,limit=1,delay=300ms")

	// A traced request with an adopted W3C identity...
	body := []byte(`{"model":"GCN","vertices":[0]}`)
	req, _ := http.NewRequest(http.MethodPost, d.url("/v1/infer"), bytes.NewReader(body))
	req.Header.Set("traceparent", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	adopted := resp.Header.Get("X-Trace-Id")
	if adopted != "8448eb211c80319c" {
		t.Fatalf("X-Trace-Id %q, want adopted 8448eb211c80319c", adopted)
	}
	// ...then a burst that coalesces behind the stalled worker.
	done := make(chan int, 4)
	for i := 0; i < 4; i++ {
		go func(v int) {
			code, _, _ := infer(t, d, e2eInferRequest{Model: "GCN", Vertices: []int{v}, TimeoutMS: 10000})
			done <- code
		}(i)
	}
	for i := 0; i < 4; i++ {
		if code := <-done; code != http.StatusOK {
			t.Fatalf("burst request: status %d", code)
		}
	}

	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-d.waited:
		if err != nil {
			t.Fatalf("daemon exit: %v\n%s", err, d.output())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("trace file not written: %v\n%s", err, d.output())
	}
	var trace struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Cat  string            `json:"cat"`
			Ph   string            `json:"ph"`
			ID   string            `json:"id"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}

	// Index every span id per trace, then check every parent link resolves
	// in the same trace (parents recorded as span args by the exporter).
	spanIDs := map[string]map[string]bool{} // trace_id -> span_id set
	for _, ev := range trace.TraceEvents {
		if ev.Ph != "X" || ev.Args["trace_id"] == "" {
			continue
		}
		tr := ev.Args["trace_id"]
		if spanIDs[tr] == nil {
			spanIDs[tr] = map[string]bool{}
		}
		spanIDs[tr][ev.Args["span_id"]] = true
	}
	if len(spanIDs) < 5 { // adopted + 4 burst members
		t.Fatalf("trace holds %d traced requests, want >= 5", len(spanIDs))
	}
	if spanIDs[strings.TrimLeft(adopted, "0")] == nil && spanIDs[adopted] == nil {
		t.Errorf("adopted trace %s missing from the file (traces: %v)", adopted, len(spanIDs))
	}
	cats := map[string]bool{}
	for _, ev := range trace.TraceEvents {
		if ev.Ph != "X" || ev.Args["trace_id"] == "" {
			continue
		}
		cats[ev.Cat] = true
		parent := ev.Args["parent_id"]
		if parent == "" {
			continue // a root span
		}
		if ids := spanIDs[ev.Args["trace_id"]]; !ids[parent] && parent != "b7ad6b7169203331" {
			t.Errorf("span %q (trace %s) parent %s resolves nowhere — tree disconnected",
				ev.Name, ev.Args["trace_id"], parent)
		}
	}
	for _, want := range []string{"request", "stage", "batch", "run", "step", "kernel"} {
		if !cats[want] {
			t.Errorf("trace missing %q spans (got %v)", want, cats)
		}
	}

	// Flow arrows come in bound pairs (the coalesced batch fan-in), and every
	// traced span has its async shadow pair.
	flows := map[string][2]int{}
	async := map[string][2]int{}
	for _, ev := range trace.TraceEvents {
		switch ev.Ph {
		case "s":
			c := flows[ev.ID]
			c[0]++
			flows[ev.ID] = c
		case "f":
			c := flows[ev.ID]
			c[1]++
			flows[ev.ID] = c
		case "b":
			c := async[ev.ID]
			c[0]++
			async[ev.ID] = c
		case "e":
			c := async[ev.ID]
			c[1]++
			async[ev.ID] = c
		}
	}
	if len(flows) == 0 {
		t.Error("no flow arrows in the trace despite a coalesced batch")
	}
	for id, c := range flows {
		if c[0] != c[1] {
			t.Errorf("flow %s has %d starts and %d finishes", id, c[0], c[1])
		}
	}
	if len(async) < 5 {
		t.Errorf("async request groups: %d, want >= 5 (one per traced request)", len(async))
	}
	for id, c := range async {
		if c[0] != c[1] {
			t.Errorf("async group %s has %d begins and %d ends", id, c[0], c[1])
		}
	}
}
