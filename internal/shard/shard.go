// Package shard partitions a graph into K cache-sized shards for
// partition-aware kernel execution: each shard is a self-contained sub-CSR
// over the vertices it owns, with an explicit halo set (boundary vertices
// owned by other shards whose features the shard reads) and stable
// global<->local id maps.
//
// Edges are assigned by destination ownership: the shard that owns a
// vertex owns all of its incoming edges. Every output row therefore has
// exactly one producing shard, which is what makes the backend's two-level
// reduction deterministic — intra-shard reductions land in disjoint
// shard-local partials, and the cross-shard merge folds them in canonical
// shard order with no write conflicts possible. Cross-shard *reads* (a local
// edge whose source lives elsewhere) are exactly the halo set; the verifier
// proves the halo covers all of them.
//
// The partitioner is locality-aware, not just size-aware: it scores block
// partitions of three candidate orderings — the graph's own id order,
// reorder.BFS and reorder.DegreeSort — with reorder.EdgeCut and keeps the
// cheapest, so community structure recoverable by a reordering becomes low
// communication volume. Every plan is verified by analysis.VerifyShardPlan
// before it is returned; a wrong plan is unrepresentable as a successful
// Partition. The paired faultinject.CorruptShardPlan point corrupts only
// the verified view (never the plan itself) to prove each rule fires.
package shard

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/analysis"
	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/reorder"
	"repro/internal/telemetry"
)

// MaxShards bounds the shard count a plan may request; beyond it per-shard
// bookkeeping dwarfs any locality gain.
const MaxShards = 4096

// Auto-sizing targets for Partition(g, 0): a shard's owned working set is
// capped at ~8Ki vertices (one float32 feature row of width 64 per vertex is
// then ~2 MiB — an L2-slice-sized partial buffer) and ~128Ki edges so
// skewed graphs still split by traffic, not just by vertex count.
const (
	autoShardVertices = 1 << 13
	autoShardEdges    = 1 << 17
)

// Shard is one partition element: the sub-CSR over its owned vertices plus
// the id maps kernels use to resolve global feature rows.
type Shard struct {
	// ID is the shard's index in its plan.
	ID int
	// Owned lists the global vertex ids this shard owns, ascending. The
	// shard produces exactly the output rows of these vertices.
	Owned []int32
	// Halo lists the global vertex ids this shard reads but does not own
	// (sources of its edges living in other shards), ascending and disjoint
	// from Owned.
	Halo []int32
	// Ptr is the local incoming-CSR row pointer: the edges of Owned[i] are
	// slots Ptr[i]..Ptr[i+1].
	Ptr []int32
	// Src holds the local source id of each edge slot: an index into L2G.
	Src []int32
	// Edge holds the global edge id of each slot, so edge-feature tensors
	// stay addressable from inside a shard.
	Edge []int32
	// L2G is the local->global vertex id map: Owned followed by Halo.
	L2G []int32
}

// NumOwned reports how many vertices the shard owns.
func (s *Shard) NumOwned() int { return len(s.Owned) }

// NumHalo reports the halo size.
func (s *Shard) NumHalo() int { return len(s.Halo) }

// NumEdges reports how many edges the shard covers.
func (s *Shard) NumEdges() int { return len(s.Edge) }

// GlobalOf maps a local vertex id back to its global id.
func (s *Shard) GlobalOf(local int32) int32 { return s.L2G[local] }

// LocalOf maps a global vertex id to the shard's local id space: owned
// vertices map to [0, NumOwned), halo vertices to [NumOwned, NumOwned+
// NumHalo). The second result is false when the vertex is neither owned nor
// in the halo.
func (s *Shard) LocalOf(global int32) (int32, bool) {
	if i, ok := searchInt32(s.Owned, global); ok {
		return int32(i), true
	}
	if i, ok := searchInt32(s.Halo, global); ok {
		return int32(len(s.Owned) + i), true
	}
	return 0, false
}

// OwnsLocal reports whether a local id refers to an owned vertex (as
// opposed to a halo entry).
func (s *Shard) OwnsLocal(local int32) bool { return int(local) < len(s.Owned) }

// searchInt32 binary-searches an ascending slice for v.
func searchInt32(xs []int32, v int32) (int, bool) {
	i := sort.Search(len(xs), func(i int) bool { return xs[i] >= v })
	return i, i < len(xs) && xs[i] == v
}

// Plan is a verified partition of one graph into K shards.
type Plan struct {
	// NumVertices / NumEdges describe the partitioned graph.
	NumVertices int
	NumEdges    int
	// K is the shard count (== len(Shards); trailing shards may be empty
	// when K exceeds the vertex count).
	K int
	// Shards are the partition elements, indexed by shard id.
	Shards []Shard
	// Owner maps each global vertex id to its owning shard.
	Owner []int32
	// MergeOrder is the canonical order shard partials fold into the
	// output: ascending shard id, pinned by the shard-merge-order rule.
	MergeOrder []int32
	// EdgeCut is the fraction of edges whose endpoints live in different
	// shards (reorder.EdgeCut of the chosen partition).
	EdgeCut float64
	// HaloTotal is the summed halo size across shards — the replicated
	// read volume the partition costs.
	HaloTotal int
	// Seed names the ordering that won the partition-seed selection
	// ("identity", "bfs" or "degree").
	Seed string
}

// OwnerOf returns the shard owning global vertex v.
func (p *Plan) OwnerOf(v int32) int32 { return p.Owner[v] }

// seedCandidate is one ordering the partitioner scores.
type seedCandidate struct {
	name string
	perm func(g *graph.Graph) []int32
}

var seedCandidates = []seedCandidate{
	{"identity", func(g *graph.Graph) []int32 { return reorder.Identity(g.NumVertices()) }},
	{"bfs", reorder.BFS},
	{"degree", reorder.DegreeSort},
}

// AutoShards returns the shard count Partition picks for k == 0: enough
// shards that each holds at most ~8Ki owned vertices and ~128Ki edges,
// clamped to [1, MaxShards].
func AutoShards(g *graph.Graph) int {
	byV := (g.NumVertices() + autoShardVertices - 1) / autoShardVertices
	byE := (g.NumEdges() + autoShardEdges - 1) / autoShardEdges
	k := byV
	if byE > k {
		k = byE
	}
	if k < 1 {
		k = 1
	}
	if k > MaxShards {
		k = MaxShards
	}
	return k
}

// Partition splits g into k shards. k == 0 auto-sizes from the cache
// budget (AutoShards); k == 1 yields the trivial single-shard plan; k may
// exceed the vertex count, leaving trailing shards empty. The returned plan
// has passed analysis.VerifyShardPlan — a plan violating the shard rules is
// returned as an error, never as a value.
func Partition(g *graph.Graph, k int) (*Plan, error) {
	if k < 0 || k > MaxShards {
		return nil, fmt.Errorf("shard: shard count %d out of range [0, %d]", k, MaxShards)
	}
	if k == 0 {
		k = AutoShards(g)
	}
	numV := g.NumVertices()

	// Seed selection: block-partition each candidate ordering and keep the
	// one that cuts the fewest edges. Ties keep the earlier (cheaper)
	// candidate; a single shard cuts nothing by construction.
	var owner []int32
	seed := seedCandidates[0].name
	if k == 1 || numV == 0 {
		owner = make([]int32, numV)
	} else {
		bestCut := math.Inf(1)
		for _, cand := range seedCandidates {
			o := reorder.BlockOwners(cand.perm(g), k)
			if cut := reorder.EdgeCut(g, o); cut < bestCut {
				bestCut, owner, seed = cut, o, cand.name
			}
		}
	}

	p := buildPlan(g, k, owner, seed)
	if err := verifyPlan(p, g); err != nil {
		return nil, err
	}
	recordStats(p)
	return p, nil
}

// buildPlan assembles the per-shard sub-CSRs from a vertex->shard owner map.
func buildPlan(g *graph.Graph, k int, owner []int32, seed string) *Plan {
	numV, numE := g.NumVertices(), g.NumEdges()
	p := &Plan{
		NumVertices: numV, NumEdges: numE, K: k,
		Shards: make([]Shard, k),
		Owner:  owner,
		Seed:   seed,
	}
	p.MergeOrder = make([]int32, k)
	for s := range p.MergeOrder {
		p.MergeOrder[s] = int32(s)
	}

	// Owned lists, ascending by construction of the walk.
	for v := int32(0); v < int32(numV); v++ {
		s := &p.Shards[owner[v]]
		s.Owned = append(s.Owned, v)
	}

	cutEdges := 0
	for si := range p.Shards {
		s := &p.Shards[si]
		s.ID = si

		// Halo: foreign sources of the shard's edges, sorted + deduplicated.
		for _, v := range s.Owned {
			srcs, _ := g.InEdges(v)
			for _, u := range srcs {
				if owner[u] != int32(si) {
					s.Halo = append(s.Halo, u)
					cutEdges++
				}
			}
		}
		sort.Slice(s.Halo, func(a, b int) bool { return s.Halo[a] < s.Halo[b] })
		s.Halo = dedupSorted(s.Halo)

		s.L2G = make([]int32, 0, len(s.Owned)+len(s.Halo))
		s.L2G = append(s.L2G, s.Owned...)
		s.L2G = append(s.L2G, s.Halo...)

		// Local incoming CSR over the owned vertices, preserving the global
		// CSR's slot order inside each row.
		s.Ptr = make([]int32, len(s.Owned)+1)
		for i, v := range s.Owned {
			s.Ptr[i+1] = s.Ptr[i] + g.InDegree(v)
		}
		n := int(s.Ptr[len(s.Owned)])
		s.Src = make([]int32, n)
		s.Edge = make([]int32, n)
		for i, v := range s.Owned {
			srcs, eids := g.InEdges(v)
			base := int(s.Ptr[i])
			for j, u := range srcs {
				local, ok := s.LocalOf(u)
				if !ok {
					// Invariant, not input-reachable: u is owned here or was
					// just added to the halo, so the id map must resolve it.
					panic("shard: source vertex missing from the shard id map")
				}
				s.Src[base+j] = local
				s.Edge[base+j] = eids[j]
			}
		}
		p.HaloTotal += len(s.Halo)
	}
	if numE > 0 {
		p.EdgeCut = float64(cutEdges) / float64(numE)
	}
	return p
}

// dedupSorted removes adjacent duplicates in place.
func dedupSorted(xs []int32) []int32 {
	if len(xs) == 0 {
		return xs
	}
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// verifyPlan runs the mandatory shard-plan verification. The facts are a
// view of the plan; the CorruptShardPlan fault mutates only that view (fresh
// slices replace the corrupted parts), so an armed corruption proves a rule
// fires without ever producing a broken plan object.
func verifyPlan(p *Plan, g *graph.Graph) error {
	facts := factsOf(p, g)
	if faultinject.Fire(faultinject.CorruptShardPlan) {
		corruptFacts(&facts, faultinject.SpecOf(faultinject.CorruptShardPlan).Seed)
	}
	if err := analysis.VerifyShardPlan(facts); err != nil {
		return fmt.Errorf("shard: plan for %d shards rejected: %w", p.K, err)
	}
	return nil
}

// factsOf builds the verifier's view of a plan. Slices alias the plan
// except MergeOrder, which corruption variant 3 mutates in place.
func factsOf(p *Plan, g *graph.Graph) analysis.ShardFacts {
	f := analysis.ShardFacts{
		NumVertices: p.NumVertices,
		NumEdges:    p.NumEdges,
		EdgeSrc:     g.EdgeSrcs(),
		EdgeDst:     g.EdgeDsts(),
		Owner:       p.Owner,
		Shards:      make([]analysis.ShardView, len(p.Shards)),
		MergeOrder:  append([]int32(nil), p.MergeOrder...),
	}
	for i := range p.Shards {
		s := &p.Shards[i]
		f.Shards[i] = analysis.ShardView{
			Owned: s.Owned, Halo: s.Halo, Ptr: s.Ptr,
			Src: s.Src, Edge: s.Edge, L2G: s.L2G,
		}
	}
	return f
}

// corruptFacts applies one deliberate inconsistency to the verified view.
// Every mutation builds a fresh slice first — the plan the facts alias is
// never touched.
func corruptFacts(f *analysis.ShardFacts, seed uint64) {
	switch seed {
	case 0: // duplicate an edge: breaks exactly-once coverage
		for i := range f.Shards {
			if e := f.Shards[i].Edge; len(e) >= 2 {
				bad := append([]int32(nil), e...)
				bad[0] = bad[len(bad)-1]
				f.Shards[i].Edge = bad
				return
			}
		}
		for i := range f.Shards {
			if e := f.Shards[i].Edge; len(e) == 1 {
				f.Shards[i].Edge = []int32{int32(f.NumEdges)}
				return
			}
		}
	case 1: // point a halo entry at a self-owned vertex
		for i := range f.Shards {
			if len(f.Shards[i].Halo) >= 1 && len(f.Shards[i].Owned) >= 1 {
				bad := append([]int32(nil), f.Shards[i].Halo...)
				bad[0] = f.Shards[i].Owned[0]
				f.Shards[i].Halo = bad
				return
			}
		}
	case 2: // double-own a vertex across two shards
		first := -1
		for i := range f.Shards {
			if len(f.Shards[i].Owned) == 0 {
				continue
			}
			if first < 0 {
				first = i
				continue
			}
			v := f.Shards[first].Owned[0]
			bad := append([]int32{v}, f.Shards[i].Owned...)
			sort.Slice(bad, func(a, b int) bool { return bad[a] < bad[b] })
			f.Shards[i].Owned = bad
			return
		}
	default: // scramble the merge order
		if len(f.MergeOrder) >= 2 {
			f.MergeOrder[0], f.MergeOrder[1] = f.MergeOrder[1], f.MergeOrder[0]
		} else if len(f.MergeOrder) == 1 {
			f.MergeOrder[0] = 1
		}
	}
}

// Partition-quality counters, surfaced so tooling (ugrapher-bench -json)
// can report the partition behind a result without replaying it.
var (
	partitions    atomic.Int64
	lastShards    atomic.Int64
	lastEdgeCut   atomic.Uint64 // float64 bits
	lastHaloTotal atomic.Int64
)

// PartitionStats snapshots the package counters.
type PartitionStats struct {
	// Partitions is how many plans Partition built (and verified).
	Partitions int64
	// LastShards / LastEdgeCut / LastHaloTotal describe the most recent plan.
	LastShards    int
	LastEdgeCut   float64
	LastHaloTotal int
}

// Stats reads the partition counters.
func Stats() PartitionStats {
	return PartitionStats{
		Partitions:    partitions.Load(),
		LastShards:    int(lastShards.Load()),
		LastEdgeCut:   math.Float64frombits(lastEdgeCut.Load()),
		LastHaloTotal: int(lastHaloTotal.Load()),
	}
}

// Telemetry gauge names for the most recent partition.
const (
	GaugeShardCount = "ugrapher_shard_count"
	GaugeEdgeCut    = "ugrapher_shard_edgecut_fraction"
	GaugeHaloTotal  = "ugrapher_shard_halo_total"
)

// recordStats publishes a verified plan's shape to the package counters and,
// when telemetry is armed, the shard gauges.
func recordStats(p *Plan) {
	partitions.Add(1)
	lastShards.Store(int64(p.K))
	lastEdgeCut.Store(math.Float64bits(p.EdgeCut))
	lastHaloTotal.Store(int64(p.HaloTotal))
	if telemetry.Enabled() {
		r := telemetry.Default()
		r.Gauge(GaugeShardCount).Set(float64(p.K))
		r.Gauge(GaugeEdgeCut).Set(p.EdgeCut)
		r.Gauge(GaugeHaloTotal).Set(float64(p.HaloTotal))
	}
}
