package shard

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/analysis"
	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/reorder"
	"repro/internal/telemetry"
)

// clustered builds a community-structured graph with scrambled ids, the
// fixture family the reorder tests use, so the seed selection has real
// locality to recover.
func clustered(t *testing.T, n, clusterSize, edgesPer int) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(97))
	scramble := rng.Perm(n)
	b := graph.NewBuilder(n)
	for c := 0; c < n/clusterSize; c++ {
		base := c * clusterSize
		for i := 0; i < clusterSize*edgesPer; i++ {
			u := base + rng.Intn(clusterSize)
			v := base + rng.Intn(clusterSize)
			b.AddEdge(int32(scramble[u]), int32(scramble[v]))
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mustPartition(t *testing.T, g *graph.Graph, k int) *Plan {
	t.Helper()
	p, err := Partition(g, k)
	if err != nil {
		t.Fatalf("Partition(%d): %v", k, err)
	}
	return p
}

// checkRoundTrips exercises the id maps both ways on every shard: local ->
// global -> local is the identity, owned locals report OwnsLocal, halo
// locals do not, and ownership agrees with the plan's owner map.
func checkRoundTrips(t *testing.T, p *Plan) {
	t.Helper()
	for si := range p.Shards {
		s := &p.Shards[si]
		if s.ID != si {
			t.Fatalf("shard %d carries id %d", si, s.ID)
		}
		for l := int32(0); int(l) < s.NumOwned()+s.NumHalo(); l++ {
			g := s.GlobalOf(l)
			back, ok := s.LocalOf(g)
			if !ok || back != l {
				t.Fatalf("shard %d: local %d -> global %d -> local %d (ok=%v)", si, l, g, back, ok)
			}
			owns := s.OwnsLocal(l)
			if owns != (p.OwnerOf(g) == int32(si)) {
				t.Fatalf("shard %d: vertex %d ownership disagrees with owner map", si, g)
			}
		}
		for _, h := range s.Halo {
			if p.OwnerOf(h) == int32(si) {
				t.Fatalf("shard %d: halo vertex %d is self-owned", si, h)
			}
		}
		if _, ok := s.LocalOf(int32(p.NumVertices) + 5); ok {
			t.Fatalf("shard %d resolved a vertex outside the graph", si)
		}
	}
}

// checkEdgeCover asserts every global edge id appears in exactly one shard,
// under its destination's owner, with the local source resolving to the
// edge's true global source.
func checkEdgeCover(t *testing.T, g *graph.Graph, p *Plan) {
	t.Helper()
	seen := make([]bool, g.NumEdges())
	for si := range p.Shards {
		s := &p.Shards[si]
		for i := range s.Owned {
			for x := s.Ptr[i]; x < s.Ptr[i+1]; x++ {
				e := s.Edge[x]
				if seen[e] {
					t.Fatalf("edge %d covered twice", e)
				}
				seen[e] = true
				src, dst := g.EdgeEndpoints(e)
				if dst != s.Owned[i] {
					t.Fatalf("edge %d filed under %d, dst is %d", e, s.Owned[i], dst)
				}
				if got := s.L2G[s.Src[x]]; got != src {
					t.Fatalf("edge %d local src resolves to %d, want %d", e, got, src)
				}
			}
		}
	}
	for e, ok := range seen {
		if !ok {
			t.Fatalf("edge %d covered by no shard", e)
		}
	}
}

func TestPartitionRoundTrips(t *testing.T) {
	g := clustered(t, 400, 40, 4)
	for _, k := range []int{2, 3, 7} {
		p := mustPartition(t, g, k)
		if p.K != k || len(p.Shards) != k {
			t.Fatalf("k=%d: plan has %d shards", k, p.K)
		}
		checkRoundTrips(t, p)
		checkEdgeCover(t, g, p)
	}
}

func TestPartitionIsolatedVertices(t *testing.T) {
	// Vertices 3..9 are isolated; they must still each have exactly one
	// owner and zero local edges.
	g, err := graph.FromCOO(10, []int32{0, 1, 2}, []int32{1, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	p := mustPartition(t, g, 4)
	checkRoundTrips(t, p)
	checkEdgeCover(t, g, p)
	owned := 0
	for i := range p.Shards {
		owned += p.Shards[i].NumOwned()
	}
	if owned != 10 {
		t.Fatalf("shards own %d of 10 vertices", owned)
	}
}

func TestPartitionMoreShardsThanVertices(t *testing.T) {
	g, err := graph.FromCOO(5, []int32{0, 1, 2, 3}, []int32{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	p := mustPartition(t, g, 9)
	if p.K != 9 {
		t.Fatalf("plan has %d shards, want 9", p.K)
	}
	empty := 0
	for i := range p.Shards {
		if p.Shards[i].NumOwned() == 0 {
			empty++
			if p.Shards[i].NumEdges() != 0 || p.Shards[i].NumHalo() != 0 {
				t.Fatalf("empty shard %d carries edges or halo", i)
			}
		}
	}
	if empty != 4 {
		t.Fatalf("%d empty shards, want 4", empty)
	}
	checkRoundTrips(t, p)
	checkEdgeCover(t, g, p)
}

func TestPartitionEmptyGraph(t *testing.T) {
	g, err := graph.FromCOO(0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := mustPartition(t, g, 3)
	if p.K != 3 || p.HaloTotal != 0 || p.EdgeCut != 0 {
		t.Fatalf("empty graph plan: K=%d halo=%d cut=%v", p.K, p.HaloTotal, p.EdgeCut)
	}
}

func TestPartitionSingleShardTrivial(t *testing.T) {
	g := clustered(t, 100, 20, 3)
	p := mustPartition(t, g, 1)
	if p.K != 1 || p.EdgeCut != 0 || p.HaloTotal != 0 {
		t.Fatalf("single shard must cut nothing: K=%d cut=%v halo=%d", p.K, p.EdgeCut, p.HaloTotal)
	}
	if p.Shards[0].NumOwned() != 100 || p.Shards[0].NumEdges() != g.NumEdges() {
		t.Fatal("single shard must own everything")
	}
}

func TestPartitionRejectsBadCounts(t *testing.T) {
	g := clustered(t, 40, 20, 2)
	for _, k := range []int{-1, MaxShards + 1} {
		if _, err := Partition(g, k); err == nil {
			t.Errorf("Partition(%d) should fail", k)
		}
	}
}

func TestAutoShards(t *testing.T) {
	small := clustered(t, 200, 20, 2)
	if k := AutoShards(small); k != 1 {
		t.Errorf("small graph auto shards = %d, want 1", k)
	}
	p := mustPartition(t, small, 0)
	if p.K != 1 {
		t.Errorf("auto partition of a small graph has %d shards, want 1", p.K)
	}
	big := clustered(t, 3*autoShardVertices, 64, 3)
	if k := AutoShards(big); k < 3 {
		t.Errorf("big graph auto shards = %d, want >= 3", k)
	}
}

// TestPartitionSeedBeatsScrambledBlocks pins the satellite property: the
// seed selection must not do worse than naive contiguous blocks of the
// scrambled id space, because the identity ordering is itself a candidate
// and BFS recovers the planted clusters.
func TestPartitionSeedBeatsScrambledBlocks(t *testing.T) {
	const n, clusterSize = 2000, 50
	g := clustered(t, n, clusterSize, 4)
	k := n / clusterSize
	p := mustPartition(t, g, k)
	identityCut := reorder.EdgeCut(g, reorder.BlockOwners(reorder.Identity(n), k))
	if p.EdgeCut > identityCut {
		t.Errorf("chosen seed %q cuts %.4f, worse than identity blocks %.4f", p.Seed, p.EdgeCut, identityCut)
	}
	if p.EdgeCut >= identityCut*0.5 {
		t.Errorf("clustered graph: expected the seed search to at least halve the cut (%q: %.4f vs %.4f)",
			p.Seed, p.EdgeCut, identityCut)
	}
}

func TestPartitionDeterministic(t *testing.T) {
	g := clustered(t, 600, 30, 3)
	a := mustPartition(t, g, 5)
	b := mustPartition(t, g, 5)
	if a.Seed != b.Seed || a.EdgeCut != b.EdgeCut || a.HaloTotal != b.HaloTotal {
		t.Fatal("partition must be deterministic")
	}
	for si := range a.Shards {
		sa, sb := &a.Shards[si], &b.Shards[si]
		if sa.NumOwned() != sb.NumOwned() || sa.NumEdges() != sb.NumEdges() {
			t.Fatalf("shard %d differs between runs", si)
		}
		for i := range sa.Owned {
			if sa.Owned[i] != sb.Owned[i] {
				t.Fatalf("shard %d owned list differs", si)
			}
		}
	}
}

func TestPartitionStatsAndGauges(t *testing.T) {
	telemetry.Reset()
	telemetry.SetEnabled(true)
	defer telemetry.Reset()
	g := clustered(t, 500, 50, 3)
	before := Stats().Partitions
	p := mustPartition(t, g, 5)
	st := Stats()
	if st.Partitions != before+1 {
		t.Errorf("partitions counter %d, want %d", st.Partitions, before+1)
	}
	if st.LastShards != 5 || st.LastEdgeCut != p.EdgeCut || st.LastHaloTotal != p.HaloTotal {
		t.Errorf("stats %+v disagree with plan (cut %v, halo %d)", st, p.EdgeCut, p.HaloTotal)
	}
	gauges := telemetry.Default().GaugeValues()
	if gauges[GaugeShardCount] != 5 {
		t.Errorf("shard-count gauge = %v, want 5", gauges[GaugeShardCount])
	}
	if gauges[GaugeEdgeCut] != p.EdgeCut {
		t.Errorf("edge-cut gauge = %v, want %v", gauges[GaugeEdgeCut], p.EdgeCut)
	}
	if gauges[GaugeHaloTotal] != float64(p.HaloTotal) {
		t.Errorf("halo gauge = %v, want %d", gauges[GaugeHaloTotal], p.HaloTotal)
	}
}

// TestCorruptShardPlanFiresEachRule is the paired fault-injection proof:
// each corruption variant makes Partition reject the (corrupted view of
// the) plan with its matching rule, and a clean re-partition of the same
// graph succeeds — the corruption lived only in the verified view.
func TestCorruptShardPlanFiresEachRule(t *testing.T) {
	defer faultinject.Reset()
	g := clustered(t, 300, 30, 3)
	variants := []struct {
		seed uint64
		rule string
	}{
		{0, analysis.RuleShardEdgeCover},
		{1, analysis.RuleShardHaloCover},
		{2, analysis.RuleShardNoAlias},
		{3, analysis.RuleShardMergeOrder},
	}
	for _, v := range variants {
		faultinject.Reset()
		faultinject.Arm(faultinject.CorruptShardPlan, faultinject.Spec{After: 1, Seed: v.seed})
		p, err := Partition(g, 4)
		if err == nil {
			t.Fatalf("seed %d: corrupted plan verified clean", v.seed)
		}
		if p != nil {
			t.Fatalf("seed %d: a rejected plan must not be returned", v.seed)
		}
		if faultinject.Fires(faultinject.CorruptShardPlan) == 0 {
			t.Fatalf("seed %d: corruption point never fired", v.seed)
		}
		var ve *analysis.VerifyError
		if !errors.As(err, &ve) || !ve.HasRule(v.rule) {
			t.Fatalf("seed %d: want rule %s, got %v", v.seed, v.rule, err)
		}
		faultinject.Reset()
		if _, err := Partition(g, 4); err != nil {
			t.Fatalf("seed %d: clean re-partition failed: %v — corruption leaked into the plan", v.seed, err)
		}
	}
}

// TestVerifyShardPlanCleanFixtures proves the rules stay silent on
// well-formed plans of every shape the partitioner can produce.
func TestVerifyShardPlanCleanFixtures(t *testing.T) {
	graphs := []*graph.Graph{clustered(t, 200, 20, 3)}
	if g, err := graph.FromCOO(6, []int32{0, 0, 5}, []int32{0, 5, 0}); err == nil {
		graphs = append(graphs, g) // self-loop + cycle + isolated middle
	} else {
		t.Fatal(err)
	}
	for _, g := range graphs {
		for _, k := range []int{1, 2, 5, 8} {
			if _, err := Partition(g, k); err != nil {
				t.Errorf("clean partition (%dv, k=%d) rejected: %v", g.NumVertices(), k, err)
			}
		}
	}
}
