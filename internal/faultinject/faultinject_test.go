package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestDisarmedHooksAreNoops(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("no point armed, Enabled() = true")
	}
	for p := Point(0); p < numPoints; p++ {
		if Armed(p) {
			t.Errorf("%s armed after Reset", p)
		}
		if Fire(p) {
			t.Errorf("%s fired while disarmed", p)
		}
		MaybePanic(p) // must not panic
		MaybeSleep(p) // must not sleep
		if err := ErrIf(p); err != nil {
			t.Errorf("%s: ErrIf = %v while disarmed", p, err)
		}
		if Calls(p) != 0 {
			t.Errorf("%s: disarmed hooks counted calls", p)
		}
	}
}

func TestCounterModeAfterEvery(t *testing.T) {
	defer Reset()
	// Fire on call 3 and every 2nd call after: 3, 5, 7, 9, ...
	Arm(KernelPanic, Spec{After: 3, Every: 2})
	var fired []int
	for i := 1; i <= 10; i++ {
		if Fire(KernelPanic) {
			fired = append(fired, i)
		}
	}
	want := []int{3, 5, 7, 9}
	if len(fired) != len(want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fired, want)
		}
	}
	if Calls(KernelPanic) != 10 || Fires(KernelPanic) != 4 {
		t.Errorf("Calls=%d Fires=%d, want 10 and 4",
			Calls(KernelPanic), Fires(KernelPanic))
	}
}

func TestCounterModeFireOnce(t *testing.T) {
	defer Reset()
	// Every == 0: exactly one firing, on the After-th call.
	Arm(NaNPoke, Spec{After: 2})
	hits := 0
	for i := 0; i < 20; i++ {
		if Fire(NaNPoke) {
			hits++
		}
	}
	if hits != 1 || Fires(NaNPoke) != 1 {
		t.Errorf("fire-once spec hit %d times (Fires=%d), want 1", hits, Fires(NaNPoke))
	}
	// After == 0 means the first call.
	Arm(NaNPoke, Spec{})
	if !Fire(NaNPoke) {
		t.Error("Spec{} should fire on the first call")
	}
	if Fire(NaNPoke) {
		t.Error("Spec{} should fire exactly once")
	}
}

func TestSeededModeIsDeterministic(t *testing.T) {
	defer Reset()
	run := func(seed uint64) []int64 {
		Arm(SlowChunk, Spec{Rate: 0.25, Seed: seed})
		var fired []int64
		for i := 0; i < 400; i++ {
			if Fire(SlowChunk) {
				fired = append(fired, Calls(SlowChunk))
			}
		}
		return fired
	}
	a, b := run(99), run(99)
	if len(a) != len(b) {
		t.Fatalf("same seed, different firing counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different firing pattern at %d: %d vs %d", i, a[i], b[i])
		}
	}
	// Sanity: a 25% rate over 400 calls should fire a plausible number of
	// times (the hash is fixed, so this is a regression check, not a
	// statistical one).
	if len(a) < 50 || len(a) > 150 {
		t.Errorf("rate 0.25 over 400 calls fired %d times", len(a))
	}
	c := run(100)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical firing patterns")
	}
}

func TestArmResetsCountersDisarmKeepsThem(t *testing.T) {
	defer Reset()
	Arm(LowerFail, Spec{After: 1})
	Fire(LowerFail)
	Fire(LowerFail)
	Disarm(LowerFail)
	if Armed(LowerFail) {
		t.Error("still armed after Disarm")
	}
	// Counters survive Disarm so tests can read them post-run.
	if Calls(LowerFail) != 2 || Fires(LowerFail) != 1 {
		t.Errorf("after Disarm: Calls=%d Fires=%d, want 2 and 1",
			Calls(LowerFail), Fires(LowerFail))
	}
	Arm(LowerFail, Spec{After: 1})
	if Calls(LowerFail) != 0 || Fires(LowerFail) != 0 {
		t.Error("Arm did not reset counters")
	}
}

func TestMaybePanicCarriesPanicValue(t *testing.T) {
	defer Reset()
	Arm(KernelPanic, Spec{After: 1})
	defer func() {
		r := recover()
		p, ok := r.(Panic)
		if !ok {
			t.Fatalf("recovered %T (%v), want faultinject.Panic", r, r)
		}
		if p.Point != KernelPanic || p.Call != 1 {
			t.Errorf("Panic = %+v, want {KernelPanic 1}", p)
		}
		if p.Error() == "" {
			t.Error("Panic.Error() empty")
		}
	}()
	MaybePanic(KernelPanic)
	t.Fatal("MaybePanic did not panic")
}

func TestErrIfWrapsSentinel(t *testing.T) {
	defer Reset()
	Arm(LowerFail, Spec{After: 1})
	err := ErrIf(LowerFail)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("ErrIf = %v, want wrap of ErrInjected", err)
	}
	if err := ErrIf(LowerFail); err != nil {
		t.Errorf("second call after fire-once spec returned %v", err)
	}
}

func TestMaybeSleepDelays(t *testing.T) {
	defer Reset()
	Arm(SlowChunk, Spec{After: 1, Delay: 30 * time.Millisecond})
	start := time.Now()
	MaybeSleep(SlowChunk)
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("MaybeSleep slept %v, want >= ~30ms", d)
	}
	start = time.Now()
	MaybeSleep(SlowChunk) // fire-once: second call must not sleep
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Errorf("disfired MaybeSleep slept %v", d)
	}
}

func TestPointString(t *testing.T) {
	if KernelPanic.String() != "kernel-panic" || LowerFail.String() != "lower-fail" {
		t.Errorf("point names wrong: %s %s", KernelPanic, LowerFail)
	}
	if Point(200).String() == "" {
		t.Error("out-of-range point has empty name")
	}
}
