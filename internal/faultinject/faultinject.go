// Package faultinject provides deterministic, seedable fault-injection
// points for the execution layer. Production code calls the cheap hook
// functions (MaybePanic, MaybeSleep, ErrIf) at well-defined sites — kernel
// chunk bodies, lowering entry points, post-run output hand-off — and tests
// arm the points to prove each hardening guard actually catches the fault it
// claims to: a worker panic surfaces as a typed *core.KernelError, a poked
// NaN trips the numeric scan, a slow chunk trips a context deadline, a
// lowering failure exercises the fallback ladder.
//
// The package is dependency-free (standard library only), so every layer may
// call into it without import cycles, and it needs no build tags: when no
// point is armed, every hook is a single atomic load — cheap enough to keep
// in release binaries and on zero-allocation hot paths.
//
// Firing is deterministic. A point armed with Spec{After: n, Every: m} fires
// on its n-th eligible call and every m-th call after that; Spec{Rate, Seed}
// instead hashes the call counter with a seeded splitmix64, so a "random"
// 1% fault schedule replays identically for a fixed seed.
package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Point identifies one injection site class.
type Point uint8

const (
	// KernelPanic makes a kernel worker panic mid-chunk.
	KernelPanic Point = iota
	// NaNPoke poisons the first element of a kernel's output with NaN.
	NaNPoke
	// SlowChunk delays a worker chunk by the armed Spec's Delay.
	SlowChunk
	// LowerFail makes backend plan lowering return an injected error.
	LowerFail
	// CorruptOperandKind corrupts the typing of the view the static verifier
	// checks, proving the operand-type rules fire. The armed Spec's Seed
	// selects the variant: 0 flips a graph operand's addressing class
	// (operand-type), 1 points a node at a value outside the table
	// (ssa-form).
	CorruptOperandKind
	// CorruptFusion mislabels a fusion decision in the verified IR, proving
	// the fusion-legality rules fire. Seed selects the variant: 0 toggles a
	// Fused marker (fusion-pair), 1 declares a fused intermediate to be the
	// program output (fusion-single-consumer), 2 drops a live node from the
	// compiled view (dce-soundness).
	CorruptFusion
	// CorruptBufferPlan corrupts the verified buffer plan, proving the
	// buffer rules fire. Seed selects the variant: 0 aliases two
	// simultaneously-live values onto one arena slot (buffer-alias), 1
	// shrinks a slot below its hosted value (buffer-capacity), 2 marks a
	// non-elementwise node in-place (inplace-elementwise).
	CorruptBufferPlan
	// CorruptAtomicFlag flips the plan's atomic-need bit in the verified
	// facts, proving the write-conflict rule fires.
	CorruptAtomicFlag
	// CorruptFusionRegion corrupts a fusion region's recorded metadata in the
	// verified IR, proving the fusion-region rules fire. Seed selects the
	// variant: 0 inflates the region's claimed saved-traffic bytes
	// (fusion-region-cost), 1 rewrites the absorbed post-epilogue chain so it
	// no longer matches the recorded unary node (fusion-region), 2 appends a
	// phantom consumer of an erased interior value to the pre-fusion view
	// (fusion-region).
	CorruptFusionRegion
	// CorruptShardPlan corrupts the verified view of a shard plan, proving
	// the shard rules fire. Seed selects the variant: 0 duplicates an edge in
	// one shard's edge list (shard-edge-cover), 1 points a halo entry at a
	// vertex the shard itself owns (shard-halo-cover), 2 makes two shards own
	// one vertex (shard-no-alias), 3 scrambles the cross-shard merge order
	// (shard-merge-order).
	CorruptShardPlan
	// SlowHandler delays the serving layer's HTTP handler before admission
	// by the armed Spec's Delay, simulating a slow ingress path so drain and
	// per-request deadline guarantees can be proven under handler latency.
	SlowHandler
	// QueueStall delays a serve batch worker before it collects the next
	// batch, so the bounded per-model queue fills and the admission
	// controller's fast 429 rejection can be proven under load.
	QueueStall
	// KernelPanicLoad is KernelPanic restricted to the parallel host
	// backend's workers (the sharded path included, the reference
	// interpreter excluded). Sustained-failure scenarios — the serve layer's
	// circuit breaker tripping under load — arm it with Every: 1 so every
	// primary-path run panics while the reference fallback keeps producing
	// correct outputs; the shared KernelPanic point cannot express that,
	// because the fallback rung fires it too.
	KernelPanicLoad
	// CorruptWaveSchedule corrupts the verified view of the step-dependence
	// DAG and wave schedule, proving the wave rules fire. Seed selects the
	// variant: 0 drops a hazard edge from the DAG view (step-deps-sound), 1
	// hoists a dependent step into its producer's wave (wave-legal), 2 makes
	// two same-wave steps share a scratch block in the view (wave-legal, and
	// step-deps-sound for the now-missing scratch edge).
	CorruptWaveSchedule

	numPoints
)

var pointNames = [numPoints]string{
	"kernel-panic", "nan-poke", "slow-chunk", "lower-fail",
	"corrupt-operand-kind", "corrupt-fusion", "corrupt-buffer-plan", "corrupt-atomic-flag",
	"corrupt-fusion-region", "corrupt-shard-plan",
	"slow-handler", "queue-stall", "kernel-panic-load",
	"corrupt-wave-schedule",
}

// String names the point.
func (p Point) String() string {
	if int(p) < len(pointNames) {
		return pointNames[p]
	}
	return fmt.Sprintf("Point(%d)", uint8(p))
}

// Spec configures when an armed point fires.
//
// Counter mode (Rate == 0): the point fires on its After-th call (1-based;
// 0 means the first call) and, when Every > 0, on every Every-th call after
// that. Every == 0 fires exactly once.
//
// Seeded mode (Rate > 0): each call fires independently with probability
// Rate, decided by splitmix64(Seed, callIndex) — deterministic for a fixed
// seed, so failures found by a randomized run replay exactly.
type Spec struct {
	After int
	Every int
	Rate  float64
	Seed  uint64
	// Delay is how long SlowChunk sleeps per firing (default 10ms).
	Delay time.Duration
	// Limit caps the total number of fires (0 = unlimited): after Limit
	// fires the point stays armed but silent. Long-running scenarios use it
	// to inject a bounded burst of faults and then let the system recover.
	Limit int
}

type pointState struct {
	mu    sync.Mutex
	spec  Spec
	calls int64
	fires int64
}

var (
	// armedMask has bit p set while point p is armed; the disarmed fast path
	// of every hook is one load of it.
	armedMask atomic.Uint32
	states    [numPoints]pointState
)

// ErrInjected is the sentinel all injected errors wrap.
var ErrInjected = errors.New("faultinject: injected fault")

// Panic is the value injected panics carry, so tests (and recover sites)
// can distinguish an injection from a genuine bug.
type Panic struct {
	Point Point
	// Call is the 1-based call index that fired.
	Call int64
}

// Error makes Panic usable as an error when recovered and wrapped.
func (p Panic) Error() string {
	return fmt.Sprintf("faultinject: injected %s at call %d", p.Point, p.Call)
}

// Arm activates p with spec. Arming resets the point's call/fire counters.
func Arm(p Point, spec Spec) {
	if int(p) >= int(numPoints) {
		return
	}
	st := &states[p]
	st.mu.Lock()
	st.spec = spec
	st.calls = 0
	st.fires = 0
	st.mu.Unlock()
	for {
		old := armedMask.Load()
		if armedMask.CompareAndSwap(old, old|uint32(1)<<p) {
			return
		}
	}
}

// Disarm deactivates p. Counters are kept until the next Arm so tests can
// still read Fires after disarming.
func Disarm(p Point) {
	if int(p) >= int(numPoints) {
		return
	}
	for {
		old := armedMask.Load()
		if armedMask.CompareAndSwap(old, old&^(uint32(1)<<p)) {
			return
		}
	}
}

// Reset disarms every point and clears all counters.
func Reset() {
	armedMask.Store(0)
	for i := range states {
		st := &states[i]
		st.mu.Lock()
		st.spec = Spec{}
		st.calls = 0
		st.fires = 0
		st.mu.Unlock()
	}
}

// Armed reports whether p is armed. One atomic load.
func Armed(p Point) bool {
	return armedMask.Load()&(uint32(1)<<p) != 0
}

// Enabled reports whether any point is armed.
func Enabled() bool { return armedMask.Load() != 0 }

// Fire counts one call of point p and reports whether the fault fires now.
// Disarmed points return false after a single atomic load.
func Fire(p Point) bool {
	if !Armed(p) {
		return false
	}
	fired, _ := states[p].fire()
	return fired
}

func (st *pointState) fire() (bool, int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.calls++
	call := st.calls
	if st.spec.Limit > 0 && st.fires >= int64(st.spec.Limit) {
		return false, call
	}
	var hit bool
	if st.spec.Rate > 0 {
		// Map the hash to [0,1) with 53 bits of precision.
		u := float64(splitmix64(st.spec.Seed, uint64(call))>>11) / (1 << 53)
		hit = u < st.spec.Rate
	} else {
		after := int64(st.spec.After)
		if after <= 0 {
			after = 1
		}
		switch {
		case call < after:
		case call == after:
			hit = true
		case st.spec.Every > 0:
			hit = (call-after)%int64(st.spec.Every) == 0
		}
	}
	if hit {
		st.fires++
	}
	return hit, call
}

// SpecOf returns the Spec p was last armed with (the zero Spec after
// Reset). The plan-corruption points read their variant selector from it.
func SpecOf(p Point) Spec {
	st := &states[p]
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.spec
}

// Calls reports how many times p's hook has been evaluated since arming.
func Calls(p Point) int64 {
	st := &states[p]
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.calls
}

// Fires reports how many times p actually fired since arming.
func Fires(p Point) int64 {
	st := &states[p]
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.fires
}

// MaybePanic fires p and, if it hits, panics with a Panic value.
func MaybePanic(p Point) {
	if !Armed(p) {
		return
	}
	if fired, call := states[p].fire(); fired {
		//lint:allow panic-justification -- deliberate fault injection: the armed test asked for this panic
		panic(Panic{Point: p, Call: call})
	}
}

// MaybeSleep fires p and, if it hits, sleeps the armed Delay (default 10ms).
func MaybeSleep(p Point) {
	if !Armed(p) {
		return
	}
	st := &states[p]
	if fired, _ := st.fire(); fired {
		st.mu.Lock()
		d := st.spec.Delay
		st.mu.Unlock()
		if d <= 0 {
			d = 10 * time.Millisecond
		}
		time.Sleep(d)
	}
}

// ErrIf fires p and, if it hits, returns an error wrapping ErrInjected;
// otherwise nil.
func ErrIf(p Point) error {
	if !Armed(p) {
		return nil
	}
	if fired, call := states[p].fire(); fired {
		return fmt.Errorf("%w: %s at call %d", ErrInjected, p, call)
	}
	return nil
}

// splitmix64 is the standard 64-bit mix, keyed by seed and counter.
func splitmix64(seed, x uint64) uint64 {
	z := seed + x*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
