package faultinject

import (
	"strings"
	"testing"
	"time"
)

func TestParseAndArm(t *testing.T) {
	defer Reset()
	err := ParseAndArm("kernel-panic-load:every=1;queue-stall:delay=250ms,after=2;slow-handler")
	if err != nil {
		t.Fatal(err)
	}
	if !Armed(KernelPanicLoad) || !Armed(QueueStall) || !Armed(SlowHandler) {
		t.Fatalf("points not armed: load=%v stall=%v handler=%v",
			Armed(KernelPanicLoad), Armed(QueueStall), Armed(SlowHandler))
	}
	if got := SpecOf(QueueStall); got.Delay != 250*time.Millisecond || got.After != 2 {
		t.Errorf("QueueStall spec = %+v, want Delay=250ms After=2", got)
	}
	if got := SpecOf(KernelPanicLoad); got.Every != 1 {
		t.Errorf("KernelPanicLoad spec = %+v, want Every=1", got)
	}
}

func TestParseAndArmRejectsBadInput(t *testing.T) {
	defer Reset()
	for _, s := range []string{
		"no-such-point:every=1",
		"queue-stall:bogus=3",
		"queue-stall:delay",
		"queue-stall:after=x",
	} {
		if err := ParseAndArm(s); err == nil {
			t.Errorf("ParseAndArm(%q) = nil, want error", s)
		}
	}
	// Validation is atomic: the valid half of a half-bad string must not arm.
	if err := ParseAndArm("slow-handler;no-such-point"); err == nil {
		t.Fatal("ParseAndArm with unknown point = nil, want error")
	} else if !strings.Contains(err.Error(), "valid:") {
		t.Errorf("error %q does not list valid points", err)
	}
	if Armed(SlowHandler) {
		t.Error("SlowHandler armed despite parse error later in the string")
	}
}

// TestSpecLimit: a Limit-capped point fires exactly Limit times and then
// stays silent while still counting calls.
func TestSpecLimit(t *testing.T) {
	defer Reset()
	Arm(KernelPanicLoad, Spec{After: 1, Every: 1, Limit: 3})
	fired := 0
	for i := 0; i < 10; i++ {
		if Fire(KernelPanicLoad) {
			fired++
		}
	}
	if fired != 3 {
		t.Errorf("fired %d times, want 3 (Limit)", fired)
	}
	if Calls(KernelPanicLoad) != 10 {
		t.Errorf("calls = %d, want 10", Calls(KernelPanicLoad))
	}
	if Fires(KernelPanicLoad) != 3 {
		t.Errorf("Fires = %d, want 3", Fires(KernelPanicLoad))
	}
}

// TestKernelPanicLoadName pins the point's printed name: the serve -faults
// flag and the e2e suite both address it by this string.
func TestKernelPanicLoadName(t *testing.T) {
	if KernelPanicLoad.String() != "kernel-panic-load" {
		t.Errorf("KernelPanicLoad.String() = %q", KernelPanicLoad.String())
	}
	if p, ok := PointByName("kernel-panic-load"); !ok || p != KernelPanicLoad {
		t.Errorf("PointByName round-trip failed: %v %v", p, ok)
	}
}
