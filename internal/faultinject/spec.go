package faultinject

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Spec-string parsing: the serve daemon (and any other long-running binary)
// exposes a test-only flag that arms injection points from a compact string,
// so black-box suites can fault a real process without sharing its address
// space. The format is
//
//	point[:key=value[,key=value...]][;point...]
//
// with the point names of Point.String and the Spec fields as keys:
// after, every, limit, rate, seed, delay (a time.ParseDuration string).
// A bare point name arms the fire-once default. Examples:
//
//	kernel-panic-load:every=1
//	queue-stall:delay=250ms,every=1;slow-handler:delay=50ms
//	nan-poke:rate=0.01,seed=7,limit=3

// PointByName resolves a point name as printed by Point.String.
func PointByName(name string) (Point, bool) {
	for i, n := range pointNames {
		if n == name {
			return Point(i), true
		}
	}
	return 0, false
}

// PointNames lists every injection point name, in declaration order.
func PointNames() []string {
	out := make([]string, len(pointNames))
	copy(out, pointNames[:])
	return out
}

// ParseAndArm parses a spec string and arms every point it names. On a parse
// error nothing is armed (the whole string is validated first) and the error
// names the valid points or keys.
func ParseAndArm(s string) error {
	type armReq struct {
		p    Point
		spec Spec
	}
	var reqs []armReq
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, kvs, _ := strings.Cut(part, ":")
		p, ok := PointByName(strings.TrimSpace(name))
		if !ok {
			return fmt.Errorf("faultinject: unknown point %q (valid: %s)",
				name, strings.Join(PointNames(), ", "))
		}
		spec, err := parseSpec(kvs)
		if err != nil {
			return fmt.Errorf("faultinject: point %s: %w", name, err)
		}
		reqs = append(reqs, armReq{p: p, spec: spec})
	}
	for _, r := range reqs {
		Arm(r.p, r.spec)
	}
	return nil
}

// parseSpec parses the comma-separated key=value list of one point.
func parseSpec(kvs string) (Spec, error) {
	var spec Spec
	if strings.TrimSpace(kvs) == "" {
		return spec, nil
	}
	for _, kv := range strings.Split(kvs, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return spec, fmt.Errorf("malformed option %q (want key=value)", kv)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "after":
			spec.After, err = strconv.Atoi(val)
		case "every":
			spec.Every, err = strconv.Atoi(val)
		case "limit":
			spec.Limit, err = strconv.Atoi(val)
		case "rate":
			spec.Rate, err = strconv.ParseFloat(val, 64)
		case "seed":
			spec.Seed, err = strconv.ParseUint(val, 10, 64)
		case "delay":
			spec.Delay, err = time.ParseDuration(val)
		default:
			return spec, fmt.Errorf("unknown option %q (valid: after, every, limit, rate, seed, delay)", key)
		}
		if err != nil {
			return spec, fmt.Errorf("option %s: %v", key, err)
		}
	}
	return spec, nil
}
