package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gpu"
)

// Fig. 2 (workload imbalance under a fixed mapping) and Table 8 (the
// experimental setup — here, the simulated device configurations).

func init() {
	register("fig2", "Workload imbalance under a fixed vertex-to-thread mapping", runFig2)
	register("table8", "Simulated device configurations (the paper's V100/A100 testbeds)", runTable8)
}

func runFig2(o Options) (*Table, error) {
	// The paper's Fig. 2 illustrates that mapping one vertex per thread
	// makes a warp wait for its heaviest lane. Measure exactly that: for
	// each dataset, the mean over warps of (max lane degree / mean lane
	// degree) under the thread-vertex mapping, and the fraction of lane
	// cycles wasted idling.
	codes := o.pick(allDatasetCodes(), []string{"CO", "PR", "AR", "SB"})
	graphs, err := loadGraphs(codes)
	if err != nil {
		return nil, err
	}
	const warpSize = 32
	t := &Table{
		ID:     "fig2",
		Title:  "Thread-vertex warp imbalance: lanes idle while the heaviest lane drains",
		Header: []string{"dataset", "std_nnz", "mean(warp max/mean degree)", "idle lane-cycles %"},
	}
	for _, code := range codes {
		h := graphs[code]
		st := h.g.ComputeStats()
		n := h.g.NumVertices()
		var ratioSum float64
		var warps int
		var busy, total float64
		for base := 0; base < n; base += warpSize {
			end := base + warpSize
			if end > n {
				end = n
			}
			var maxDeg, sumDeg float64
			lanes := 0
			for v := base; v < end; v++ {
				d := float64(h.g.InDegree(int32(v)))
				sumDeg += d
				if d > maxDeg {
					maxDeg = d
				}
				lanes++
			}
			if sumDeg == 0 {
				continue
			}
			mean := sumDeg / float64(lanes)
			ratioSum += maxDeg / mean
			warps++
			busy += sumDeg
			total += maxDeg * float64(lanes)
		}
		idle := 0.0
		if total > 0 {
			idle = (1 - busy/total) * 100
		}
		t.Rows = append(t.Rows, []string{
			code, f2(st.StdInDegree), f2(ratioSum / float64(warps)), f2(idle),
		})
	}
	t.Notes = append(t.Notes,
		"paper's shape: skewed graphs waste most lane cycles under the fixed mapping")
	return t, nil
}

func runTable8(o Options) (*Table, error) {
	t := &Table{
		ID:     "table8",
		Title:  "Simulated device configurations (DESIGN.md documents the substitution)",
		Header: []string{"parameter", "V100", "A100"},
	}
	v, a := gpu.V100(), gpu.A100()
	rows := []struct {
		label string
		get   func(*gpu.Device) string
	}{
		{"SMs", func(d *gpu.Device) string { return fmt.Sprintf("%d", d.NumSMs) }},
		{"warp size", func(d *gpu.Device) string { return fmt.Sprintf("%d", d.WarpSize) }},
		{"max warps/SM", func(d *gpu.Device) string { return fmt.Sprintf("%d", d.MaxWarpsPerSM) }},
		{"threads/block", func(d *gpu.Device) string { return fmt.Sprintf("%d", d.ThreadsPerBlock) }},
		{"L1 per SM", func(d *gpu.Device) string { return fmt.Sprintf("%d KiB", d.L1Bytes>>10) }},
		{"L2", func(d *gpu.Device) string { return fmt.Sprintf("%d MiB", d.L2Bytes>>20) }},
		{"DRAM B/cycle", func(d *gpu.Device) string { return fmt.Sprintf("%.0f", d.DRAMBytesPerCycle) }},
		{"L2 B/cycle", func(d *gpu.Device) string { return fmt.Sprintf("%.0f", d.L2BytesPerCycle) }},
		{"FP32/cycle", func(d *gpu.Device) string { return fmt.Sprintf("%.0f", d.FP32PerCycle) }},
		{"tensor-core GEMM", func(d *gpu.Device) string { return fmt.Sprintf("%.0fx", d.TensorCoreSpeedup) }},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.label, r.get(v), r.get(a)})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("schedule notation: strategy in %v, grouping and tiling as _G<g>_T<t>",
			[]string{core.ThreadVertex.Code(), core.ThreadEdge.Code(), core.WarpVertex.Code(), core.WarpEdge.Code()}))
	return t, nil
}
