package bench

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestTableRenderAlignment(t *testing.T) {
	tab := &Table{
		ID: "x", Title: "alignment",
		Header: []string{"a", "long-header", "c"},
		Rows: [][]string{
			{"1", "2", "3"},
			{"wide-cell-value", "2", "3"},
		},
		Notes: []string{"a note"},
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	// Header + 2 rows + note + title line.
	if len(lines) != 5 {
		t.Fatalf("got %d lines: %q", len(lines), lines)
	}
	// Columns align: "2" starts at the same offset in both data rows.
	r1, r2 := lines[2], lines[3]
	if strings.Index(r1, " 2 ") < 0 && strings.Index(r2, " 2 ") < 0 {
		t.Skip("alignment heuristic not applicable")
	}
	if !strings.HasPrefix(lines[4], "note: ") {
		t.Errorf("note line missing: %q", lines[4])
	}
}

type failingWriter struct{ after int }

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.after <= 0 {
		return 0, errors.New("disk full")
	}
	w.after--
	return len(p), nil
}

func TestTableRenderWriteErrors(t *testing.T) {
	tab := &Table{
		ID: "x", Title: "t", Header: []string{"a"},
		Rows: [][]string{{"1"}}, Notes: []string{"n"},
	}
	for after := 0; after < 4; after++ {
		if err := tab.Render(&failingWriter{after: after}); err == nil {
			t.Errorf("Render should propagate write error (after %d writes)", after)
		}
	}
	if err := tab.RenderCSV(&failingWriter{}); err == nil {
		t.Error("RenderCSV should propagate write error")
	}
}

func TestOrderKey(t *testing.T) {
	if !(orderKey("fig1") < orderKey("table2")) {
		t.Error("fig1 before table2")
	}
	if !(orderKey("table2") < orderKey("fig3")) {
		t.Error("table2 before fig3")
	}
	if !(orderKey("fig19") < orderKey("ablation-space")) {
		t.Error("ablations last")
	}
	if orderKey("ext-training") != orderKey("ablation-sim") {
		t.Error("extras share the tail bucket")
	}
}

func TestGeomean(t *testing.T) {
	got := geomean([]float64{1, 4})
	if got < 1.99 || got > 2.01 {
		t.Errorf("geomean(1,4) = %v, want 2", got)
	}
	if g := geomean(nil); g == g { // NaN check
		t.Error("geomean of empty should be NaN")
	}
}

func TestDeviceResolver(t *testing.T) {
	if device("A100").Name != "A100" || device("V100").Name != "V100" {
		t.Error("device resolution wrong")
	}
	if device("anything-else").Name != "V100" {
		t.Error("default should be V100")
	}
}
