package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/models"
	"repro/internal/tensor"
)

// ext-compile: an extension experiment measuring the compile-once model
// path. The interpreter re-resolves schedules and re-lowers kernels on every
// forward pass; the compiled path records the model as a whole-model
// program, fuses message-creation/aggregation pairs, assigns schedules and
// plans a reusable buffer arena once, then serves repeated runs with zero
// steady-state allocations. The table reports measured HOST wall clock (not
// simulated cycles): the two paths execute identical kernels, so the delta
// is pure host overhead removed by compilation.

func init() {
	register("ext-compile", "Compile-once model programs: steady-state run time vs the interpreter", runExtCompile)
}

func runExtCompile(o Options) (*Table, error) {
	codes := o.pick([]string{"CO", "PU", "CI"}, []string{"CO"})
	graphs, err := loadGraphs(codes)
	if err != nil {
		return nil, err
	}
	dev := device("V100")
	backend, err := o.ComputeBackend()
	if err != nil {
		return nil, err
	}
	modelNames := []string{"GCN", "GAT"}
	if o.Quick {
		modelNames = []string{"GCN"}
	}
	reps := 10
	if o.Quick {
		reps = 3
	}
	t := &Table{
		ID:    "ext-compile",
		Title: "Compiled vs interpreted forward pass (host wall clock)",
		Header: []string{"dataset", "model", "graph kernels", "fused pairs",
			"arena MiB", "compile ms", "interp ms/run", "compiled ms/run", "speedup"},
	}
	for _, code := range codes {
		h := graphs[code]
		for _, mn := range modelNames {
			m, err := models.ByName(mn)
			if err != nil {
				return nil, err
			}
			eng := models.NewTunedEngine(dev)
			eng.Compute = backend
			x := tensor.NewDense(h.g.NumVertices(), h.spec.Feat)
			x.FillRandom(rand.New(rand.NewSource(42)), 1)

			// Interpreter steady state (schedule tuning is cached in the
			// engine after the warm-up, so this times re-lowering and
			// per-stage allocation, not the grid search).
			if _, err := m.Forward(h.g, x, h.spec.Class, eng); err != nil {
				return nil, err
			}
			start := time.Now()
			for i := 0; i < reps; i++ {
				if _, err := m.Forward(h.g, x, h.spec.Class, eng); err != nil {
					return nil, err
				}
			}
			interp := time.Since(start) / time.Duration(reps)

			// Compile once, then time steady-state runs.
			start = time.Now()
			cp, err := models.CompileModel(m, h.g, h.spec.Feat, h.spec.Class, eng)
			if err != nil {
				return nil, err
			}
			compile := time.Since(start)
			if _, err := cp.Run(x); err != nil {
				return nil, err
			}
			start = time.Now()
			for i := 0; i < reps; i++ {
				if _, err := cp.Run(x); err != nil {
					return nil, err
				}
			}
			compiled := time.Since(start) / time.Duration(reps)

			s := cp.Stats()
			t.Rows = append(t.Rows, []string{
				code, mn,
				fmt.Sprintf("%d", s.GraphKernels),
				fmt.Sprintf("%d", s.FusedPairs),
				f2(float64(s.ArenaFloats) * 4 / (1 << 20)),
				f2(float64(compile.Microseconds()) / 1e3),
				f2(float64(interp.Microseconds()) / 1e3),
				f2(float64(compiled.Microseconds()) / 1e3),
				fmt.Sprintf("%sx", f2(float64(interp)/float64(compiled))),
			})
		}
	}
	t.Notes = append(t.Notes,
		"compile = record + fuse + schedule + buffer-plan, paid once per (model, graph, engine);",
		"steady-state compiled runs allocate nothing: intermediates live in a planned arena")
	return t, nil
}
