package bench

import (
	"strconv"
	"testing"
)

func TestExtCompile(t *testing.T) {
	tab := runQuick(t, "ext-compile")
	for _, row := range tab.Rows {
		kernels, err := strconv.Atoi(row[2])
		if err != nil || kernels <= 0 {
			t.Errorf("bad graph-kernel count %q: %v", row[2], row)
		}
		pairs, err := strconv.Atoi(row[3])
		if err != nil || pairs <= 0 {
			t.Errorf("fusion produced no pairs: %v", row)
		}
		arena, err := strconv.ParseFloat(row[4], 64)
		if err != nil || arena <= 0 {
			t.Errorf("bad arena size %q: %v", row[4], row)
		}
		// Wall-clock columns must parse; the speedup ratio is hardware- and
		// load-dependent, so only sanity-check it is positive.
		for _, col := range []int{5, 6, 7} {
			if v, err := strconv.ParseFloat(row[col], 64); err != nil || v <= 0 {
				t.Errorf("bad timing cell %q: %v", row[col], row)
			}
		}
	}
}
