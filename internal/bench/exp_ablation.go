package bench

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/gbdt"
	"repro/internal/gpu"
	"repro/internal/predictor"
	"repro/internal/schedule"
)

// Ablations beyond the paper's figures, probing the design choices
// DESIGN.md calls out: how much each schedule-space dimension contributes,
// how the simulator's sampling fidelity affects tuning decisions, and which
// Table 7 features the predictor actually needs.

func init() {
	register("ablation-space", "Schedule-space ablation: strategies alone vs +grouping vs +tiling vs full", runAblationSpace)
	register("ablation-sim", "Simulator fidelity ablation: tuning stability vs sampled blocks", runAblationSim)
	register("ablation-predictor", "Predictor feature ablation: Table 7 feature groups", runAblationPredictor)
}

// subspace builds restricted schedule spaces.
func subspace(groups, tiles []int) []core.Schedule {
	var out []core.Schedule
	for _, s := range core.Strategies {
		for _, g := range groups {
			for _, ti := range tiles {
				out = append(out, core.Schedule{Strategy: s, Group: g, Tile: ti})
			}
		}
	}
	return out
}

func runAblationSpace(o Options) (*Table, error) {
	codes := o.pick([]string{"CO", "PU", "AR", "DD", "TW"}, []string{"CO", "AR"})
	graphs, err := loadGraphs(codes)
	if err != nil {
		return nil, err
	}
	dev := device("V100")
	spaces := []struct {
		label string
		space []core.Schedule
	}{
		{"basic", subspace([]int{1}, []int{1})},
		{"+grouping", subspace(schedule.GroupValues, []int{1})},
		{"+tiling", subspace([]int{1}, schedule.TileValues)},
		{"full", subspace(schedule.GroupValues, schedule.TileValues)},
	}
	t := &Table{
		ID:     "ablation-space",
		Title:  "Best time by schedule subspace, normalized to the full space (GIN_L1_Aggr, V100)",
		Header: []string{"dataset", "basic", "+grouping", "+tiling", "full"},
	}
	n := table9Ops[2] // GIN_L1_Aggr at input width
	for _, code := range codes {
		h := graphs[code]
		task := taskFor(h, n, dev)
		row := []string{code}
		var fullBest float64
		vals := make([]float64, len(spaces))
		for i, sp := range spaces {
			best, ok := schedule.Best(task, sp.space, o.simOpts()...)
			if !ok {
				return nil, fmt.Errorf("bench: empty subspace %s", sp.label)
			}
			vals[i] = best.Metrics.Cycles
			if sp.label == "full" {
				fullBest = best.Metrics.Cycles
			}
		}
		for _, v := range vals {
			row = append(row, f2(v/fullBest))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"both knobs contribute: neither grouping-only nor tiling-only matches the full space everywhere")
	return t, nil
}

func runAblationSim(o Options) (*Table, error) {
	codes := o.pick([]string{"PU", "AR", "DD"}, []string{"PU", "AR"})
	graphs, err := loadGraphs(codes)
	if err != nil {
		return nil, err
	}
	dev := device("V100")
	fidelities := []int{8, 32, 96, 192}
	n := table9Ops[1] // GAT_L1_Aggr
	t := &Table{
		ID:     "ablation-sim",
		Title:  "Tuning decisions vs simulator trace fidelity (GAT_L1_Aggr, V100)",
		Header: []string{"dataset", "blocks=8", "blocks=32", "blocks=96", "blocks=192", "winner stable"},
	}
	for _, code := range codes {
		h := graphs[code]
		task := taskFor(h, n, dev)
		row := []string{code}
		var winners []core.Schedule
		for _, fid := range fidelities {
			best, ok := schedule.Best(task, schedule.PrunedSpace(task), gpu.WithMaxSampledBlocks(fid))
			if !ok {
				return nil, fmt.Errorf("bench: tuning failed")
			}
			winners = append(winners, best.Schedule)
			row = append(row, best.Schedule.String())
		}
		// Stability check: re-evaluate each fidelity's winner at the highest
		// fidelity; stable if within 15% of the high-fidelity winner.
		ref, err := schedule.Evaluate(task, winners[len(winners)-1], gpu.WithMaxSampledBlocks(192))
		if err != nil {
			return nil, err
		}
		stable := true
		for _, w := range winners {
			c, err := schedule.Evaluate(task, w, gpu.WithMaxSampledBlocks(192))
			if err != nil {
				return nil, err
			}
			if c.Metrics.Cycles > ref.Metrics.Cycles*1.15 {
				stable = false
			}
		}
		row = append(row, fmt.Sprintf("%v", stable))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"low-fidelity winners should stay within ~15% of high-fidelity cost — sampling is safe for tuning")
	return t, nil
}

// featureMasks groups the Table 7 features for ablation. Indices follow
// predictor.FeatureNames.
var featureMasks = []struct {
	label string
	keep  func(i int) bool
}{
	{"all", func(i int) bool { return true }},
	{"no-graph-info", func(i int) bool { return i >= 4 }},
	{"no-op-info", func(i int) bool { return i < 4 || i >= 11 }},
	{"no-schedule", func(i int) bool { return i < 11 }},
}

func runAblationPredictor(o Options) (*Table, error) {
	// Train small models with masked features, then score each on how close
	// its picks come to grid search over held-out tasks.
	dev := device("V100")
	rng := rand.New(rand.NewSource(17))

	// Shared training data: measure once.
	numGraphs := 16
	if !o.Quick {
		numGraphs = 48
	}
	var X [][]float64
	var y []float64
	for gi := 0; gi < numGraphs; gi++ {
		spec := datasets.RandomSpec(rng, gi+1000)
		if spec.V > 12000 {
			spec.V, spec.E = 12000, 12000*spec.E/spec.V
		}
		g := spec.Generate()
		st := g.ComputeStats()
		trainOps := predictor.DefaultTrainOps()
		top := trainOps[gi%len(trainOps)]
		task := schedule.Task{Graph: g, Op: top.Op, Feat: []int{8, 32, 128}[gi%3], Device: dev}.Widths(top.WidthOneB)
		space := schedule.PrunedSpace(task)
		for i, s := range space {
			if i%2 == 1 {
				continue // thin the space to keep the ablation fast
			}
			c, err := schedule.Evaluate(task, s, gpu.WithMaxSampledBlocks(24))
			if err != nil {
				continue
			}
			X = append(X, predictor.Features(st, task, s))
			y = append(y, math.Log(c.Metrics.Cycles))
		}
	}

	// Held-out evaluation tasks.
	holdCodes := o.pick([]string{"CO", "PU", "PR"}, []string{"CO", "PR"})
	graphs, err := loadGraphs(holdCodes)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "ablation-predictor",
		Title:  "Predictor pick quality (geomean pick/optimal) with feature groups removed",
		Header: []string{"features", "rows", "pick/optimal"},
	}
	params := gbdt.DefaultParams()
	params.Rounds = 80
	for _, mask := range featureMasks {
		// Mask features by zeroing the dropped columns (trees then cannot
		// split on them).
		Xm := make([][]float64, len(X))
		for i, row := range X {
			r := make([]float64, len(row))
			for j, v := range row {
				if mask.keep(j) {
					r[j] = v
				}
			}
			Xm[i] = r
		}
		model, err := gbdt.Fit(Xm, y, params)
		if err != nil {
			return nil, err
		}
		p := &predictor.Predictor{Model: model}

		var ratios []float64
		for _, code := range holdCodes {
			h := graphs[code]
			task := schedule.Task{Graph: h.g, Op: table9Ops[2].op, Feat: 32, Device: dev}.Widths(false)
			cands := schedule.GridSearch(task, schedule.PrunedSpace(task), gpu.WithMaxSampledBlocks(24))
			if len(cands) == 0 {
				continue
			}
			// Mask the prediction features the same way.
			space := schedule.PrunedSpace(task)
			st := h.g.ComputeStats()
			bestPred := math.Inf(1)
			var pick core.Schedule
			for _, s := range space {
				f := predictor.Features(st, task, s)
				for j := range f {
					if !mask.keep(j) {
						f[j] = 0
					}
				}
				if v := p.Model.Predict(f); v < bestPred {
					bestPred = v
					pick = s
				}
			}
			picked, err := schedule.Evaluate(task, pick, gpu.WithMaxSampledBlocks(24))
			if err != nil {
				return nil, err
			}
			ratios = append(ratios, picked.Metrics.Cycles/cands[0].Metrics.Cycles)
		}
		t.Rows = append(t.Rows, []string{
			mask.label, fmt.Sprintf("%d", len(X)), f2(geomean(ratios)),
		})
	}
	t.Notes = append(t.Notes,
		"dropping the schedule features must destroy selection (the model can no longer rank);",
		"graph and operator features each contribute (Table 7's feature choice)")
	return t, nil
}
