package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func quickOpts() Options {
	return Options{Quick: true}
}

// runQuick executes an experiment in quick mode and sanity-checks the table.
func runQuick(t *testing.T, id string) *Table {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := e.Run(quickOpts())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if tab.ID != id {
		t.Errorf("%s: table id %q", id, tab.ID)
	}
	if len(tab.Rows) == 0 {
		t.Fatalf("%s: empty table", id)
	}
	for i, row := range tab.Rows {
		if len(row) != len(tab.Header) && len(row) > len(tab.Header) {
			t.Errorf("%s row %d: %d cells vs %d headers", id, i, len(row), len(tab.Header))
		}
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatalf("%s render: %v", id, err)
	}
	if !strings.Contains(buf.String(), id) {
		t.Errorf("%s render missing id", id)
	}
	return tab
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig3", "fig7", "fig12", "fig13", "fig14", "fig15",
		"fig16", "fig17", "fig18", "fig19", "fig2", "table8",
		"table2", "table3", "table4", "table6", "table9",
		"ablation-space", "ablation-sim", "ablation-predictor", "ext-training",
		"ext-compile", "ext-fusion", "ext-waves",
	}
	have := map[string]bool{}
	for _, e := range All() {
		have[e.ID] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(All()), len(want))
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("unknown id should fail")
	}
}

func TestOrderInterleaves(t *testing.T) {
	ids := []string{}
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	// table2 and table3 precede fig7; fig13 precedes table9.
	pos := map[string]int{}
	for i, id := range ids {
		pos[id] = i
	}
	if !(pos["fig1"] < pos["table2"] && pos["table2"] < pos["fig3"] && pos["fig3"] < pos["fig7"]) {
		t.Errorf("ordering wrong: %v", ids)
	}
}

func TestTable2Exact(t *testing.T) {
	tab := runQuick(t, "table2")
	last := tab.Rows[len(tab.Rows)-1]
	if last[0] != "TOTAL" || last[3] != "160" {
		t.Errorf("census total row = %v", last)
	}
}

func TestTable3TargetsHit(t *testing.T) {
	tab := runQuick(t, "table3")
	if len(tab.Rows) != 3 {
		t.Fatalf("quick mode should cover 3 datasets, got %d", len(tab.Rows))
	}
}

func TestTable4AllValid(t *testing.T) {
	tab := runQuick(t, "table4")
	for _, row := range tab.Rows {
		if !strings.HasPrefix(row[6], "true") {
			t.Errorf("representation row invalid: %v", row)
		}
	}
}

func TestTable6NoFreeLunch(t *testing.T) {
	tab := runQuick(t, "table6")
	// No strategy row may improve locality, parallelism and work-efficiency
	// simultaneously (the paper's impossible triangle).
	for _, row := range tab.Rows[1:] { // skip the thread-edge reference row
		ups := 0
		for _, c := range row[4:7] {
			if c == "up" {
				ups++
			}
		}
		if ups == 3 {
			t.Errorf("strategy %q improves all three metrics: %v", row[0], row)
		}
	}
}

func TestFig1NoUniversalBaseline(t *testing.T) {
	tab := runQuick(t, "fig1")
	// uGrapher (last column) should be at or near 1.00 everywhere; every
	// baseline column should exceed 1.05 somewhere.
	ncols := len(tab.Header)
	worstUG := 0.0
	baselineWorst := make([]float64, ncols-2)
	for _, row := range tab.Rows {
		for i, cell := range row[2:] {
			if cell == "-" {
				continue
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatalf("bad cell %q", cell)
			}
			if i == ncols-3 { // uGrapher column
				if v > worstUG {
					worstUG = v
				}
			} else if v > baselineWorst[i] {
				baselineWorst[i] = v
			}
		}
	}
	if worstUG > 1.10 {
		t.Errorf("uGrapher normalized latency up to %.2f; should stay near 1.00", worstUG)
	}
	for i, w := range baselineWorst[:3] {
		if w < 1.05 {
			t.Errorf("baseline %s never loses (worst %.2f); heatmap shape broken", tab.Header[2+i], w)
		}
	}
}

func TestFig3Shapes(t *testing.T) {
	tab := runQuick(t, "fig3")
	cells := map[string]map[string]float64{}
	for _, row := range tab.Rows {
		key := row[0] + "|" + row[1]
		occ, _ := strconv.ParseFloat(row[3], 64)
		sme, _ := strconv.ParseFloat(row[4], 64)
		l2, _ := strconv.ParseFloat(row[5], 64)
		cells[key] = map[string]float64{"occ": occ, "sme": sme, "l2": l2}
	}
	for _, op := range []string{"weighted-aggr-sum", "unweighted-aggr-max"} {
		if cells[op+"|AR"]["occ"] >= cells[op+"|PR"]["occ"] {
			t.Errorf("%s: imbalanced AR occupancy %.2f should be below balanced PR %.2f",
				op, cells[op+"|AR"]["occ"], cells[op+"|PR"]["occ"])
		}
		if cells[op+"|CO"]["l2"] <= cells[op+"|SW"]["l2"] {
			t.Errorf("%s: small CO L2 hit %.2f should exceed large SW %.2f",
				op, cells[op+"|CO"]["l2"], cells[op+"|SW"]["l2"])
		}
		if cells[op+"|CO"]["sme"] >= cells[op+"|SW"]["sme"] {
			t.Errorf("%s: small CO SM efficiency %.2f should be below large SW %.2f",
				op, cells[op+"|CO"]["sme"], cells[op+"|SW"]["sme"])
		}
	}
}

func TestFig7WinnersVary(t *testing.T) {
	tab := runQuick(t, "fig7")
	winners := map[string]bool{}
	for _, row := range tab.Rows {
		winners[row[6]] = true
	}
	if len(winners) < 2 {
		t.Errorf("optimal basic strategy should vary, got only %v", winners)
	}
}

func TestFig17BasicLeavesGap(t *testing.T) {
	tab := runQuick(t, "fig17")
	anyGap := false
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(row[7], 64)
		if err != nil {
			t.Fatalf("bad best-basic cell %q", row[7])
		}
		if v < 0.999 {
			t.Errorf("basic strategy beats tuned optimum: %v", row)
		}
		if v > 1.05 {
			anyGap = true
		}
	}
	if !anyGap {
		t.Error("expected at least one dataset where tuning beats all basic strategies by >5%")
	}
}

func TestFig18KnobsMatter(t *testing.T) {
	tab := runQuick(t, "fig18")
	lo, hi := 1e18, 0.0
	for _, row := range tab.Rows {
		for _, cell := range row[2:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatalf("bad cell %q", cell)
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if hi/lo < 1.5 {
		t.Errorf("grouping/tiling sweep spread %.2fx; expected meaningful variation", hi/lo)
	}
}

func TestTable9AllStrategiesAppear(t *testing.T) {
	tab := runQuick(t, "table9")
	strategies := map[string]bool{}
	for _, row := range tab.Rows {
		for _, cell := range row[2:] {
			if len(cell) >= 2 {
				strategies[cell[:2]] = true
			}
		}
	}
	if len(strategies) < 2 {
		t.Errorf("table9 winners too uniform: %v", strategies)
	}
}
