package bench

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/ops"
	"repro/internal/schedule"
)

// Experiments behind the paper's §1-2 motivation: Fig. 1 (no framework wins
// everywhere), Fig. 3 (DGL's static kernels leave metrics on the table),
// Tables 2-4 (operator census, dataset census, unified representation).

func init() {
	register("fig1", "Normalized end-to-end latency heatmap, 4 systems (V100)", runFig1)
	register("fig3", "DGL static-kernel limitations: occupancy / SM efficiency / L2 hit", runFig3)
	register("table2", "Graph operator classification census (DGL's 160 operators)", runTable2)
	register("table3", "Dataset statistics (synthetic stand-ins vs paper targets)", runTable3)
	register("table4", "Unified abstraction coverage of all operator classes", runTable4)
	register("table6", "Measured trade-offs of the parallelization strategies", runTable6)
}

// fig1Models are the representative models of the heatmap.
var fig1Models = []string{"GCN", "GIN", "GAT", "SSum"}

func runFig1(o Options) (*Table, error) {
	codes := o.pick(allDatasetCodes(), []string{"CO", "PR", "AR"})
	graphs, err := loadGraphs(codes)
	if err != nil {
		return nil, err
	}
	dev := device("V100")
	engines := enginesFor(dev, o)

	t := &Table{
		ID:     "fig1",
		Title:  "Normalized latency (1.00 = fastest system for that cell); rows dataset x model",
		Header: append([]string{"dataset", "model"}, engineNames(engines)...),
	}
	for _, code := range codes {
		h := graphs[code]
		for _, mname := range fig1Models {
			m, err := models.ByName(mname)
			if err != nil {
				return nil, err
			}
			cells := make([]float64, len(engines))
			best := 0.0
			for i, eng := range engines {
				if !baselineSupports(eng.Name(), mname) {
					cells[i] = -1
					continue
				}
				rep, err := m.InferenceCost(h.g, h.spec.Feat, h.spec.Class, eng)
				if err != nil {
					return nil, err
				}
				cells[i] = rep.Total
				if best == 0 || rep.Total < best {
					best = rep.Total
				}
			}
			row := []string{code, mname}
			for _, c := range cells {
				if c < 0 {
					row = append(row, "-")
				} else {
					row = append(row, f2(c/best))
				}
			}
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		"paper's shape: every baseline is >1.00 somewhere; uGrapher at or near 1.00 everywhere")
	return t, nil
}

func runFig3(o Options) (*Table, error) {
	// The paper contrasts imbalanced (AR, SB) vs balanced (PR, DD) graphs on
	// occupancy, and small (CO, CI) vs large (SW, OV) graphs on SM
	// efficiency and L2 hit rate, under DGL's static kernels, feature 32.
	imbalancePair := o.pick([]string{"AR", "SB", "PR", "DD"}, []string{"AR", "PR"})
	sizePair := o.pick([]string{"CO", "CI", "SW", "OV"}, []string{"CO", "SW"})
	if len(o.Datasets) > 0 {
		imbalancePair, sizePair = o.Datasets, o.Datasets
	}
	dev := device("V100")
	// DGL's static fused-aggregation kernel.
	dglSched := core.Schedule{Strategy: core.WarpVertex, Group: 1, Tile: 1}

	opsUnder := []struct {
		label     string
		op        ops.OpInfo
		widthOneB bool
	}{
		{"weighted-aggr-sum", ops.WeightedAggrSum, true},
		{"unweighted-aggr-max", ops.AggrMax, false},
	}
	t := &Table{
		ID:     "fig3",
		Title:  "DGL static kernel metrics, feature size 32 (V100)",
		Header: []string{"operator", "dataset", "group", "occupancy", "sm_efficiency", "l2_hit"},
	}
	seen := map[string]bool{}
	runSet := func(codes []string, group string) error {
		graphs, err := loadGraphs(codes)
		if err != nil {
			return err
		}
		for _, code := range codes {
			for _, ou := range opsUnder {
				key := ou.label + code
				if seen[key] {
					continue
				}
				seen[key] = true
				h := graphs[code]
				feat, aCols, bCols := core.OperandWidths(ou.op, 32, ou.widthOneB)
				m, err := core.Estimate(h.g, ou.op, feat, aCols, bCols, dglSched, dev, o.simOpts()...)
				if err != nil {
					return err
				}
				t.Rows = append(t.Rows, []string{
					ou.label, code, group,
					f2(m.Occupancy), f2(m.SMEfficiency), f2(m.L2HitRate),
				})
			}
		}
		return nil
	}
	if err := runSet(imbalancePair, "imbalance-vs-balance"); err != nil {
		return nil, err
	}
	if err := runSet(sizePair, "small-vs-large"); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"paper's shape: imbalanced graphs (AR,SB) show lower occupancy than balanced (PR,DD);",
		"small graphs (CO,CI) show higher L2 hit but lower SM efficiency than large (SW,OV)")
	return t, nil
}

func runTable2(o Options) (*Table, error) {
	t := &Table{
		ID:     "table2",
		Title:  "Operator census by class and tensor types (paper totals: 11/1/20/4/44/80 = 160)",
		Header: []string{"class", "input", "output", "count"},
	}
	total := 0
	for _, row := range ops.Census() {
		t.Rows = append(t.Rows, []string{
			row.Class.String(), row.InputKinds, row.OutputKind, fmt.Sprintf("%d", row.Count),
		})
		total += row.Count
	}
	t.Rows = append(t.Rows, []string{"TOTAL", "", "", fmt.Sprintf("%d", total)})
	return t, nil
}

func runTable3(o Options) (*Table, error) {
	codes := o.pick(allDatasetCodes(), []string{"CO", "PR", "AR"})
	graphs, err := loadGraphs(codes)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "table3",
		Title:  "Dataset statistics: synthetic graphs vs paper targets",
		Header: []string{"dataset", "#vertex", "#edge", "std_nnz(target)", "std_nnz(ours)", "gini", "#feature", "#class"},
	}
	for _, code := range codes {
		h := graphs[code]
		st := h.g.ComputeStats()
		t.Rows = append(t.Rows, []string{
			h.spec.Name,
			fmt.Sprintf("%d", st.NumVertices),
			fmt.Sprintf("%d", st.NumEdges),
			f2(h.spec.Std), f2(st.StdInDegree), f2(st.GiniInDegree),
			fmt.Sprintf("%d", h.spec.Feat), fmt.Sprintf("%d", h.spec.Class),
		})
	}
	return t, nil
}

func runTable4(o Options) (*Table, error) {
	t := &Table{
		ID:     "table4",
		Title:  "op_info coverage: every registry operator validates and round-trips its class",
		Header: []string{"class", "edge_op", "gather_op", "A", "B", "C", "valid"},
	}
	type key struct{ cls, a, b, c string }
	groups := map[key]map[string]bool{}
	gathers := map[key]map[string]bool{}
	counts := map[key]int{}
	allValid := map[key]bool{}
	for _, e := range ops.Registry() {
		k := key{e.Class.String(), e.Info.AKind.String(), e.Info.BKind.String(), e.Info.CKind.String()}
		if groups[k] == nil {
			groups[k] = map[string]bool{}
			gathers[k] = map[string]bool{}
			allValid[k] = true
		}
		groups[k][e.Info.EdgeOp.String()] = true
		gathers[k][e.Info.GatherOp.String()] = true
		counts[k]++
		if e.Info.Validate() != nil {
			allValid[k] = false
		}
	}
	keys := make([]key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.cls != b.cls {
			return a.cls < b.cls
		}
		if a.a != b.a {
			return a.a < b.a
		}
		if a.b != b.b {
			return a.b < b.b
		}
		return a.c < b.c
	})
	for _, k := range keys {
		t.Rows = append(t.Rows, []string{
			k.cls, setString(groups[k]), setString(gathers[k]), k.a, k.b, k.c,
			fmt.Sprintf("%v (%d ops)", allValid[k], counts[k]),
		})
	}
	return t, nil
}

func runTable6(o Options) (*Table, error) {
	// Measure the trade-off directions on a representative task:
	// aggregation-sum, PU dataset, feature 64, V100. Directions are
	// relative to the thread-edge row, as in the paper's Table 6.
	code := "PU"
	if len(o.Datasets) > 0 {
		code = o.Datasets[0]
	}
	graphs, err := loadGraphs([]string{code})
	if err != nil {
		return nil, err
	}
	h := graphs[code]
	dev := device("V100")
	task := schedule.Task{Graph: h.g, Op: ops.AggrSum, Feat: 64, ACols: 64, Device: dev}

	rows := []struct {
		label string
		sched core.Schedule
	}{
		{"Thread-Edge", core.Schedule{Strategy: core.ThreadEdge, Group: 1, Tile: 1}},
		{"Warp-Edge", core.Schedule{Strategy: core.WarpEdge, Group: 1, Tile: 1}},
		{"Warp-Vertex", core.Schedule{Strategy: core.WarpVertex, Group: 1, Tile: 1}},
		{"Thread-Vertex", core.Schedule{Strategy: core.ThreadVertex, Group: 1, Tile: 1}},
		{"V/E-Grouping (TE,G8)", core.Schedule{Strategy: core.ThreadEdge, Group: 8, Tile: 1}},
		{"Feature Tiling (WE,T2)", core.Schedule{Strategy: core.WarpEdge, Group: 1, Tile: 2}},
	}
	t := &Table{
		ID:     "table6",
		Title:  fmt.Sprintf("Measured trade-offs, aggregation-sum on %s feat=64 (V100); arrows vs Thread-Edge", code),
		Header: []string{"strategy", "locality(L1+L2 hit)", "parallelism(blocks)", "work-eff(1/insts)", "L", "P", "W"},
	}
	var base [3]float64
	for i, r := range rows {
		c, err := schedule.Evaluate(task, r.sched, o.simOpts()...)
		if err != nil {
			return nil, err
		}
		m := c.Metrics
		locality := m.L1HitRate + (1-m.L1HitRate)*m.L2HitRate
		parallelism := float64(m.NumBlocks)
		workEff := 1 / m.Insts
		if i == 0 {
			base = [3]float64{locality, parallelism, workEff}
		}
		arrow := func(v, b float64) string {
			switch {
			case v > b*1.15:
				return "up"
			case v < b*0.85:
				return "down"
			default:
				return "-"
			}
		}
		t.Rows = append(t.Rows, []string{
			r.label, f2(locality), fmt.Sprintf("%.0f", parallelism),
			fmt.Sprintf("%.3g", workEff),
			arrow(locality, base[0]), arrow(parallelism, base[1]), arrow(workEff, base[2]),
		})
	}
	t.Notes = append(t.Notes,
		"paper's Table 6 shape: no row improves all three columns at once")
	return t, nil
}

// --- small shared helpers for this file ---

func allDatasetCodes() []string {
	return []string{"CO", "CI", "PU", "PR", "AR", "PP", "SB", "CA", "DD", "AM06", "AM05", "TW", "YE", "SW", "OV"}
}

func engineNames(engs []models.Engine) []string {
	out := make([]string, len(engs))
	for i, e := range engs {
		out[i] = e.Name()
	}
	return out
}

func setString(s map[string]bool) string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sortStrings(keys)
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += "/"
		}
		out += k
	}
	return out
}
