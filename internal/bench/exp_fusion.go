package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/models"
	"repro/internal/program"
	"repro/internal/tensor"
)

// ext-fusion: an extension experiment measuring cost-modeled fusion regions
// against classic pair fusion. Both arms compile the same model with the same
// fixed schedules and host backend; the only difference is the RegionPolicy
// switch, so the kernel-count and wall-clock deltas isolate what region
// growth (epilogue/prologue absorption plus the blocked GEMM path shared by
// both arms) buys on top of materialise+scatter merging.

func init() {
	register("ext-fusion", "Fusion regions vs pair fusion: kernel launches and steady-state run time", runExtFusion)
}

// fusionEngine builds one arm: a fusing fixed-schedule engine with region
// growth on or off.
func fusionEngine(dev *gpu.Device, backend core.ExecBackend, pairOnly bool) *models.FixedEngine {
	return &models.FixedEngine{
		EngineName:     "fusion-bench",
		Dev:            dev,
		AggrSchedule:   core.DefaultSchedule,
		MsgCSchedule:   core.DefaultSchedule,
		Fuses:          true,
		PairFusionOnly: pairOnly,
		Compute:        backend,
	}
}

func runExtFusion(o Options) (*Table, error) {
	codes := o.pick([]string{"AR", "PR"}, []string{"AR", "PR"})
	graphs, err := loadGraphs(codes)
	if err != nil {
		return nil, err
	}
	dev := device("V100")
	backend, err := o.ComputeBackend()
	if err != nil {
		return nil, err
	}
	reps := 10
	if o.Quick {
		reps = 3
	}
	t := &Table{
		ID:    "ext-fusion",
		Title: "Fusion regions vs pair fusion (host wall clock)",
		Header: []string{"dataset", "model", "pair kernels", "region kernels",
			"regions", "saved KiB", "blocked gemms", "pair ms/run", "region ms/run", "speedup"},
	}
	timeRuns := func(cp *program.CompiledProgram, x *tensor.Dense) (time.Duration, error) {
		if _, err := cp.Run(x); err != nil { // warm-up
			return 0, err
		}
		start := time.Now()
		for i := 0; i < reps; i++ {
			if _, err := cp.Run(x); err != nil {
				return 0, err
			}
		}
		return time.Since(start) / time.Duration(reps), nil
	}
	for _, code := range codes {
		h := graphs[code]
		x := tensor.NewDense(h.g.NumVertices(), h.spec.Feat)
		x.FillRandom(rand.New(rand.NewSource(42)), 1)
		for _, m := range models.All() {
			pair, err := models.CompileModel(m, h.g, h.spec.Feat, h.spec.Class, fusionEngine(dev, backend, true))
			if err != nil {
				return nil, err
			}
			region, err := models.CompileModel(m, h.g, h.spec.Feat, h.spec.Class, fusionEngine(dev, backend, false))
			if err != nil {
				return nil, err
			}
			pairPer, err := timeRuns(pair, x)
			if err != nil {
				return nil, err
			}
			regionPer, err := timeRuns(region, x)
			if err != nil {
				return nil, err
			}
			ps, rs := pair.Stats(), region.Stats()
			t.Rows = append(t.Rows, []string{
				code, m.Name(),
				fmt.Sprintf("%d", ps.Steps),
				fmt.Sprintf("%d", rs.Steps),
				fmt.Sprintf("%d", rs.FusedRegions),
				f2(float64(rs.RegionSavedBytes) / (1 << 10)),
				fmt.Sprintf("%d", rs.GemmBlocked),
				f2(float64(pairPer.Microseconds()) / 1e3),
				f2(float64(regionPer.Microseconds()) / 1e3),
				fmt.Sprintf("%sx", f2(float64(pairPer)/float64(regionPer))),
			})
		}
	}
	t.Notes = append(t.Notes,
		"both arms fuse materialise+scatter pairs and use the blocked GEMM path;",
		"the region arm additionally absorbs cost-accepted elementwise prologues/epilogues into graph kernels")
	return t, nil
}
