package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/models"
	"repro/internal/program"
	"repro/internal/tensor"
)

// ext-waves: an extension experiment measuring proved-safe cross-step
// parallel execution against the sequential step loop. Both arms run the
// SAME compiled program — the wave schedule is built and verified at compile
// time either way — so the wall-clock delta isolates what dispatching
// provably independent steps concurrently buys. Models whose dependence DAG
// is a pure chain (max wave width 1) are the control group: the wave arm
// falls back to the sequential loop there and must cost nothing.

func init() {
	register("ext-waves", "Wave-parallel vs sequential step execution: verified schedule width and steady-state run time", runExtWaves)
}

// wavesEngine builds the single engine both arms share: fixed schedules,
// region fusion on, the chosen host backend.
func wavesEngine(dev *gpu.Device, backend core.ExecBackend) *models.FixedEngine {
	return &models.FixedEngine{
		EngineName:   "waves-bench",
		Dev:          dev,
		AggrSchedule: core.DefaultSchedule,
		MsgCSchedule: core.DefaultSchedule,
		Fuses:        true,
		Compute:      backend,
	}
}

func runExtWaves(o Options) (*Table, error) {
	codes := o.pick([]string{"AR", "PR"}, []string{"AR", "PR"})
	graphs, err := loadGraphs(codes)
	if err != nil {
		return nil, err
	}
	dev := device("V100")
	backend, err := o.ComputeBackend()
	if err != nil {
		return nil, err
	}
	// Even -quick keeps a healthy rep count here: the experiment's claim is
	// "wave dispatch costs nothing when it cannot help", and distinguishing
	// ~0 overhead from host noise needs enough best-of samples.
	reps := 15
	if o.Quick {
		reps = 7
	}
	t := &Table{
		ID:    "ext-waves",
		Title: "Wave-parallel vs sequential step execution (host wall clock)",
		Header: []string{"dataset", "model", "steps", "waves", "max width",
			"seq ms/run", "wave ms/run", "speedup"},
	}
	// The two arms are interleaved rep by rep so slow drift on a shared host
	// hits both equally, and each arm reports its best rep: scheduler noise
	// only ever adds time, so the minimum single-run time is the stable
	// estimate of what an arm costs.
	timeArms := func(cp *program.CompiledProgram, x *tensor.Dense) (seq, wave time.Duration, err error) {
		oneRun := func(parallel bool) (time.Duration, error) {
			program.SetParallelSteps(parallel)
			start := time.Now()
			if _, err := cp.Run(x); err != nil {
				return 0, err
			}
			return time.Since(start), nil
		}
		for _, p := range []bool{false, true} { // warm-up (spawns the pool once)
			if _, err := oneRun(p); err != nil {
				return 0, 0, err
			}
		}
		for i := 0; i < reps; i++ {
			d, err := oneRun(false)
			if err != nil {
				return 0, 0, err
			}
			if seq == 0 || d < seq {
				seq = d
			}
			if d, err = oneRun(true); err != nil {
				return 0, 0, err
			}
			if wave == 0 || d < wave {
				wave = d
			}
		}
		return seq, wave, nil
	}
	prev := program.ParallelSteps()
	defer program.SetParallelSteps(prev)
	for _, code := range codes {
		h := graphs[code]
		x := tensor.NewDense(h.g.NumVertices(), h.spec.Feat)
		x.FillRandom(rand.New(rand.NewSource(42)), 1)
		for _, m := range models.All() {
			cp, err := models.CompileModel(m, h.g, h.spec.Feat, h.spec.Class, wavesEngine(dev, backend))
			if err != nil {
				return nil, err
			}
			seqPer, wavePer, err := timeArms(cp, x)
			if err != nil {
				return nil, err
			}
			s := cp.Stats()
			t.Rows = append(t.Rows, []string{
				code, m.Name(),
				fmt.Sprintf("%d", s.Steps),
				fmt.Sprintf("%d", s.Waves),
				fmt.Sprintf("%d", s.MaxWaveWidth),
				f2(float64(seqPer.Microseconds()) / 1e3),
				f2(float64(wavePer.Microseconds()) / 1e3),
				fmt.Sprintf("%sx", f2(float64(seqPer)/float64(wavePer))),
			})
		}
	}
	t.Notes = append(t.Notes,
		"both arms execute the same compiled program under the same verified wave schedule;",
		"width-1 schedules take the sequential path in both arms, so their speedup pins the dispatch overhead at ~1x")
	return t, nil
}
