// Package bench regenerates every table and figure of the paper's
// evaluation (§2 motivation and §7 evaluation) on the simulator substrate.
// Each experiment is registered by its paper id ("fig13", "table9", ...) and
// produces a Table of rows mirroring what the paper plots; EXPERIMENTS.md
// records the measured outputs against the paper's claims.
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/predictor"
)

// Options configure an experiment run.
type Options struct {
	// Datasets restricts the dataset codes swept (nil = experiment default).
	Datasets []string
	// Quick shrinks sweeps for tests: fewer datasets, smaller spaces,
	// coarser simulation.
	Quick bool
	// SampleBlocks overrides simulator trace fidelity (0 = default).
	SampleBlocks int
	// Backend names the host compute backend functional execution uses
	// ("reference", "parallel", "sim"; empty = process default). Tables
	// report *simulated cycles* either way — the backend only changes how
	// fast the host produces the functional tensors.
	Backend string
}

// ComputeBackend resolves the options' backend name, falling back to the
// process default on empty.
func (o Options) ComputeBackend() (core.ExecBackend, error) {
	return core.Backend(o.Backend)
}

// simOpts converts options to simulator options.
func (o Options) simOpts() []gpu.Option {
	n := o.SampleBlocks
	if n == 0 {
		if o.Quick {
			n = 32
		} else {
			n = 96
		}
	}
	return []gpu.Option{gpu.WithMaxSampledBlocks(n)}
}

// pick returns the dataset codes for an experiment, honouring the option
// filter and Quick mode.
func (o Options) pick(def []string, quick []string) []string {
	if len(o.Datasets) > 0 {
		return o.Datasets
	}
	if o.Quick && quick != nil {
		return quick
	}
	return def
}

// Table is one regenerated table or figure.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderCSV writes the table as CSV (id and title as comment lines).
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if _, err := fmt.Fprintf(w, "# %s: %s\n", t.ID, t.Title); err != nil {
		return err
	}
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Experiment is one registered table/figure generator.
type Experiment struct {
	ID    string
	Title string
	Run   func(o Options) (*Table, error)
}

var registry []Experiment

func register(id, title string, run func(o Options) (*Table, error)) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// All lists the registered experiments in paper order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool { return orderKey(out[i].ID) < orderKey(out[j].ID) })
	return out
}

// orderKey sorts table2 < fig3 < fig7 < ... by the numeric suffix, figures
// and tables interleaved as in the paper.
func orderKey(id string) int {
	num := 0
	for _, c := range id {
		if c >= '0' && c <= '9' {
			num = num*10 + int(c-'0')
		}
	}
	if num == 0 {
		return 1 << 20 // ablations and other extras sort after the paper's ids
	}
	if strings.HasPrefix(id, "table") {
		return num*10 + 1
	}
	return num * 10
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (run `list`)", id)
}

// --- shared helpers ---

func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// device resolves a device name.
func device(name string) *gpu.Device {
	if name == "A100" {
		return gpu.A100()
	}
	return gpu.V100()
}

// enginesFor returns the four compared systems for a device: the three
// fixed baselines plus tuned uGrapher, in the paper's plotting order.
// A fresh uGrapher engine per call keeps its tuning cache device-scoped.
// The options' compute backend is installed on every engine so functional
// passes (and only those — tables stay simulated-cycles) run on it.
func enginesFor(dev *gpu.Device, o Options) []models.Engine {
	compute, err := o.ComputeBackend()
	if err != nil {
		// Options are validated by the CLI before experiments run; fall
		// back to the process default rather than plumbing errors through
		// every experiment.
		compute = core.DefaultBackend()
	}
	tuned := models.NewTunedEngine(dev)
	tuned.Compute = compute
	engines := []models.Engine{
		baselines.NewDGL(dev), baselines.NewPyG(dev), baselines.NewGNNAdvisor(dev),
		tuned,
	}
	for _, eng := range engines[:3] {
		eng.(*models.FixedEngine).Compute = compute
	}
	return engines
}

// trainedPredictor lazily trains the strategy predictor once per process
// (used by fig12; the CLI can persist it).
var (
	predOnce sync.Once
	pred     *predictor.Predictor
	predErr  error
)

// Predictor returns the process-wide trained predictor.
func Predictor(quick bool) (*predictor.Predictor, error) {
	predOnce.Do(func() {
		cfg := predictor.DefaultTrainConfig(gpu.V100())
		if quick {
			cfg.NumGraphs = 24
			cfg.MaxVertices = 8000
			cfg.SchedulesPerTask = 12
			cfg.GBDT.Rounds = 60
		}
		pred, _, predErr = predictor.Train(cfg)
	})
	return pred, predErr
}

func sortStrings(s []string) { sort.Strings(s) }

// baselineSupports reports whether the named engine implements the model
// (uGrapher and the test engines support everything).
func baselineSupports(engine, model string) bool {
	return baselines.SupportsModel(engine, model)
}

// graphHandle pairs a loaded dataset graph with its spec.
type graphHandle struct {
	g    *graph.Graph
	spec datasets.Spec
}

// loadGraphs loads the named datasets.
func loadGraphs(codes []string) (map[string]graphHandle, error) {
	graphs := map[string]graphHandle{}
	for _, c := range codes {
		g, spec, err := datasets.Load(c)
		if err != nil {
			return nil, err
		}
		graphs[c] = graphHandle{g: g, spec: spec}
	}
	return graphs, nil
}
