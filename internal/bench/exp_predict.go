package bench

import (
	"fmt"
	"time"

	"repro/internal/ops"
	"repro/internal/schedule"
)

// Fig. 12: the learned strategy selector (§5.4) reaches performance close
// to exhaustive grid search, at negligible selection cost.

func init() {
	register("fig12", "Predictor vs grid search for the GCN layer-1 aggregation", runFig12)
}

func runFig12(o Options) (*Table, error) {
	codes := o.pick(allDatasetCodes(), []string{"CO", "PR", "AR"})
	graphs, err := loadGraphs(codes)
	if err != nil {
		return nil, err
	}
	p, err := Predictor(o.Quick)
	if err != nil {
		return nil, err
	}
	dev := device("V100")
	t := &Table{
		ID:     "fig12",
		Title:  "GCN L1 fused aggregation (V100): time normalized to grid-search optimum",
		Header: []string{"dataset", "grid-best", "grid-schedule", "predicted", "pred-schedule", "worst"},
	}
	var ratios []float64
	var predMillis float64
	for _, code := range codes {
		h := graphs[code]
		// GCN layer 1: u_mul_e + sum at hidden width 16.
		task := schedule.Task{Graph: h.g, Op: ops.WeightedAggrSum, Feat: 16, Device: dev}.Widths(true)
		cands := schedule.GridSearch(task, schedule.PrunedSpace(task), o.simOpts()...)
		if len(cands) == 0 {
			return nil, fmt.Errorf("bench: empty schedule space for %s", code)
		}
		best := cands[0]
		worst := cands[len(cands)-1]

		start := time.Now()
		pick := p.Pick(task, schedule.PrunedSpace(task))
		predMillis += float64(time.Since(start).Microseconds()) / 1000

		picked, err := schedule.Evaluate(task, pick, o.simOpts()...)
		if err != nil {
			return nil, err
		}
		ratio := picked.Metrics.Cycles / best.Metrics.Cycles
		ratios = append(ratios, ratio)
		t.Rows = append(t.Rows, []string{
			code, "1.00", best.Schedule.String(),
			f2(ratio), pick.String(),
			f2(worst.Metrics.Cycles / best.Metrics.Cycles),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("geomean predicted/optimal = %s (paper: predictor close to grid search)", f2(geomean(ratios))),
		fmt.Sprintf("mean prediction latency %.2f ms per operator (paper reports < 0.2 ms with LightGBM on CPU)", predMillis/float64(len(codes))))
	return t, nil
}
