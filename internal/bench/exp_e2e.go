package bench

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/reorder"
	"repro/internal/schedule"
)

// End-to-end experiments: Fig. 13 (normalized inference time, all systems,
// both GPUs), Figs. 14-15 (per-model / per-dataset speedup summaries),
// Fig. 16 (hardware metrics behind the gains), Fig. 19 (orthogonality to
// node renumbering).

func init() {
	register("fig13", "End-to-end inference time, 2 GPUs x 6 models x datasets x 4 systems", runFig13)
	register("fig14", "Per-model speedup of uGrapher over each baseline (geomean across datasets)", runFig14)
	register("fig15", "Per-dataset speedup of uGrapher over each baseline (geomean across models)", runFig15)
	register("fig16", "GPU metrics for the SageMax layer-2 aggregation: DGL vs uGrapher", runFig16)
	register("fig19", "Node renumbering (Rabbit-style) composes with uGrapher's gains", runFig19)
}

// e2eCell is one (device, model, dataset, engine) measurement.
type e2eCell struct {
	Device  string
	Model   string
	Dataset string
	Engine  string
	Cycles  float64
}

// e2eCache memoises the expensive full sweep per option signature so fig13,
// fig14 and fig15 share one run.
var (
	e2eMu    sync.Mutex
	e2eCache = map[string][]e2eCell{}
)

func e2eKey(o Options, codes []string) string {
	return fmt.Sprintf("q=%v sb=%d ds=%s", o.Quick, o.SampleBlocks, strings.Join(codes, ","))
}

func e2eModelNames(o Options) []string {
	if o.Quick {
		return []string{"GCN", "GAT", "SMax"}
	}
	return []string{"GCN", "GIN", "GAT", "SMax", "SSum", "SMean"}
}

func e2eDevices(o Options) []string {
	if o.Quick {
		return []string{"V100"}
	}
	return []string{"V100", "A100"}
}

// runE2E performs (or retrieves) the full sweep.
func runE2E(o Options) ([]e2eCell, []string, error) {
	codes := o.pick(allDatasetCodes(), []string{"CO", "PR", "AR"})
	key := e2eKey(o, codes)
	e2eMu.Lock()
	cached, ok := e2eCache[key]
	e2eMu.Unlock()
	if ok {
		return cached, codes, nil
	}

	graphs, err := loadGraphs(codes)
	if err != nil {
		return nil, nil, err
	}
	var cells []e2eCell
	for _, devName := range e2eDevices(o) {
		dev := device(devName)
		engines := enginesFor(dev, o)
		for _, code := range codes {
			h := graphs[code]
			for _, mname := range e2eModelNames(o) {
				m, err := models.ByName(mname)
				if err != nil {
					return nil, nil, err
				}
				for _, eng := range engines {
					if !baselineSupports(eng.Name(), mname) {
						continue
					}
					rep, err := m.InferenceCost(h.g, h.spec.Feat, h.spec.Class, eng)
					if err != nil {
						return nil, nil, err
					}
					cells = append(cells, e2eCell{
						Device: devName, Model: mname, Dataset: code,
						Engine: eng.Name(), Cycles: rep.Total,
					})
				}
			}
		}
	}
	e2eMu.Lock()
	e2eCache[key] = cells
	e2eMu.Unlock()
	return cells, codes, nil
}

func runFig13(o Options) (*Table, error) {
	cells, _, err := runE2E(o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig13",
		Title:  "End-to-end inference time normalized to the fastest system per cell",
		Header: []string{"gpu", "dataset", "model", "DGL", "PyG", "GNNAdvisor", "uGrapher"},
	}
	type key struct{ dev, ds, model string }
	group := map[key]map[string]float64{}
	var order []key
	for _, c := range cells {
		k := key{c.Device, c.Dataset, c.Model}
		if group[k] == nil {
			group[k] = map[string]float64{}
			order = append(order, k)
		}
		group[k][c.Engine] = c.Cycles
	}
	for _, k := range order {
		vals := group[k]
		best := 0.0
		for _, v := range vals {
			if best == 0 || v < best {
				best = v
			}
		}
		row := []string{k.dev, k.ds, k.model}
		for _, eng := range []string{"DGL", "PyG", "GNNAdvisor", "uGrapher"} {
			if v, ok := vals[eng]; ok {
				row = append(row, f2(v/best))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper's headline: geomean speedups of uGrapher over DGL/PyG/GNNAdvisor of 3.04/3.75/1.76 (V100) and 4.07/5.13/2.04 (A100); see fig14/fig15 for the aggregates")
	return t, nil
}

// speedups computes uGrapher's speedup over each baseline per (device, groupBy).
func speedups(cells []e2eCell, groupBy func(e2eCell) string) map[string]map[string][]float64 {
	// device|group -> baseline -> ratios
	type key struct{ dev, ds, model string }
	ug := map[key]float64{}
	for _, c := range cells {
		if c.Engine == "uGrapher" {
			ug[key{c.Device, c.Dataset, c.Model}] = c.Cycles
		}
	}
	out := map[string]map[string][]float64{}
	for _, c := range cells {
		if c.Engine == "uGrapher" {
			continue
		}
		u, ok := ug[key{c.Device, c.Dataset, c.Model}]
		if !ok || u == 0 {
			continue
		}
		gk := c.Device + "|" + groupBy(c)
		if out[gk] == nil {
			out[gk] = map[string][]float64{}
		}
		out[gk][c.Engine] = append(out[gk][c.Engine], c.Cycles/u)
	}
	return out
}

func speedupTable(id, title, groupLabel string, o Options, groupBy func(e2eCell) string) (*Table, error) {
	cells, _, err := runE2E(o)
	if err != nil {
		return nil, err
	}
	sp := speedups(cells, groupBy)
	t := &Table{
		ID:     id,
		Title:  title,
		Header: []string{"gpu", groupLabel, "vs DGL", "vs PyG", "vs GNNAdvisor"},
	}
	keys := make([]string, 0, len(sp))
	for k := range sp {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		parts := strings.SplitN(k, "|", 2)
		row := []string{parts[0], parts[1]}
		for _, eng := range []string{"DGL", "PyG", "GNNAdvisor"} {
			if rs := sp[k][eng]; len(rs) > 0 {
				row = append(row, f2(geomean(rs))+"x")
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	// Overall geomeans per device.
	overall := speedups(cells, func(e2eCell) string { return "ALL" })
	okeys := make([]string, 0, len(overall))
	for k := range overall {
		okeys = append(okeys, k)
	}
	sort.Strings(okeys)
	for _, k := range okeys {
		parts := strings.SplitN(k, "|", 2)
		row := []string{parts[0], "GEOMEAN"}
		for _, eng := range []string{"DGL", "PyG", "GNNAdvisor"} {
			if rs := overall[k][eng]; len(rs) > 0 {
				row = append(row, f2(geomean(rs))+"x")
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func runFig14(o Options) (*Table, error) {
	return speedupTable("fig14",
		"uGrapher speedup per model (geomean over datasets)", "model",
		o, func(c e2eCell) string { return c.Model })
}

func runFig15(o Options) (*Table, error) {
	return speedupTable("fig15",
		"uGrapher speedup per dataset (geomean over models)", "dataset",
		o, func(c e2eCell) string { return c.Dataset })
}

func runFig16(o Options) (*Table, error) {
	// SageMax layer-2 aggregation (aggr-max at hidden width 256): DGL's
	// static kernel vs uGrapher's tuned schedule, nvprof-style metrics.
	codes := o.pick([]string{"CO", "PR", "AR", "DD", "TW", "OV"}, []string{"CO", "PR", "AR"})
	graphs, err := loadGraphs(codes)
	if err != nil {
		return nil, err
	}
	dev := device("V100")
	tuner := schedule.NewTuner(o.simOpts()...)
	dglSched := core.Schedule{Strategy: core.WarpVertex, Group: 1, Tile: 1}
	n := table9Ops[6] // SageMax_L2_Aggr
	t := &Table{
		ID:     "fig16",
		Title:  "SageMax L2 aggregation metrics (V100): DGL static kernel vs uGrapher tuned",
		Header: []string{"dataset", "system", "schedule", "sm_efficiency", "l2_hit", "occupancy", "cycles"},
	}
	for _, code := range codes {
		h := graphs[code]
		task := taskFor(h, n, dev)
		dglCand, err := schedule.Evaluate(task, dglSched, o.simOpts()...)
		if err != nil {
			return nil, err
		}
		best, ok := tuner.Tune(task)
		if !ok {
			return nil, fmt.Errorf("bench: tuning failed for %s", code)
		}
		for _, r := range []struct {
			system string
			c      schedule.Candidate
		}{{"DGL", dglCand}, {"uGrapher", best}} {
			m := r.c.Metrics
			t.Rows = append(t.Rows, []string{
				code, r.system, r.c.Schedule.String(),
				f2(m.SMEfficiency), f2(m.L2HitRate), f2(m.Occupancy),
				fmt.Sprintf("%.0f", m.Cycles),
			})
		}
	}
	t.Notes = append(t.Notes,
		"paper's shape: uGrapher improves SM utilization, L2 hit rate and achieved occupancy")
	return t, nil
}

func runFig19(o Options) (*Table, error) {
	// GCN on V100 with and without Rabbit-style renumbering, DGL vs
	// uGrapher: reordering helps both, and uGrapher keeps its edge —
	// scheduling and data layout are orthogonal.
	codes := o.pick([]string{"CO", "PU", "AR", "CA", "AM06"}, []string{"CO", "AR"})
	graphs, err := loadGraphs(codes)
	if err != nil {
		return nil, err
	}
	dev := device("V100")
	m := models.NewGCN()
	t := &Table{
		ID:     "fig19",
		Title:  "GCN inference (V100), original vs renumbered vertex ids, normalized per dataset to the best cell",
		Header: []string{"dataset", "DGL", "DGL+reorder", "uGrapher", "uGrapher+reorder"},
	}
	for _, code := range codes {
		h := graphs[code]
		reordered, err := reorder.Apply(h.g, reorder.BFS(h.g))
		if err != nil {
			return nil, err
		}
		layouts := []struct {
			name string
			g    *graph.Graph
		}{{"orig", h.g}, {"reord", reordered}}
		vals := map[string]float64{}
		best := 0.0
		for _, layout := range layouts {
			for _, eng := range []models.Engine{enginesFor(dev, o)[0], models.NewTunedEngine(dev)} {
				rep, err := m.InferenceCost(layout.g, h.spec.Feat, h.spec.Class, eng)
				if err != nil {
					return nil, err
				}
				vals[eng.Name()+"/"+layout.name] = rep.Total
				if best == 0 || rep.Total < best {
					best = rep.Total
				}
			}
		}
		t.Rows = append(t.Rows, []string{
			code,
			f2(vals["DGL/orig"] / best), f2(vals["DGL/reord"] / best),
			f2(vals["uGrapher/orig"] / best), f2(vals["uGrapher/reord"] / best),
		})
	}
	t.Notes = append(t.Notes,
		"paper's shape: uGrapher retains a substantial improvement with renumbering enabled")
	return t, nil
}
