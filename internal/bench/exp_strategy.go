package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/gpu"
	"repro/internal/ops"
	"repro/internal/schedule"
)

// Experiments over the schedule space itself: Fig. 7 (the optimal basic
// strategy varies), Table 9 (optimal schedules per operator/dataset/GPU),
// Fig. 17 (basic strategies leave a gap to the tuned optimum), Fig. 18
// (grouping x tiling sensitivity).

func init() {
	register("fig7", "Optimal basic strategy varies by dataset and feature size", runFig7)
	register("table9", "Optimal schedules per operator, dataset and GPU", runTable9)
	register("fig17", "Best basic strategy vs tuned optimum", runFig17)
	register("fig18", "Grouping x tiling sweep for GIN L1 on TWITTER-Partial", runFig18)
}

// namedOp is a profiled graph operator of the paper's Table 9, labelled
// model-layer-type. feat derives the operator's feature width from the
// dataset spec (layer-1 operators see raw input features).
type namedOp struct {
	label     string
	op        ops.OpInfo
	feat      func(spec datasets.Spec) int
	widthOneB bool
}

func fixedFeat(f int) func(datasets.Spec) int {
	return func(datasets.Spec) int { return f }
}

func inputFeat(spec datasets.Spec) int { return spec.Feat }

// table9Ops lists the seven profiled operators. GIN_L2 and GIN_L5 run the
// same (operator, width) — on real hardware they differ only by measurement
// noise, and the simulator is deterministic, so their rows coincide here.
var table9Ops = []namedOp{
	{"GAT_L1_MsgC", ops.UAddV, fixedFeat(8), false},
	{"GAT_L1_Aggr", ops.WeightedAggrSum, fixedFeat(64), true},
	{"GIN_L1_Aggr", ops.AggrSum, inputFeat, false},
	{"GIN_L2_Aggr", ops.AggrSum, fixedFeat(64), false},
	{"GIN_L5_Aggr", ops.AggrSum, fixedFeat(64), false},
	{"SageMax_L1_Aggr", ops.AggrMax, inputFeat, false},
	{"SageMax_L2_Aggr", ops.AggrMax, fixedFeat(256), false},
}

func taskFor(h graphHandle, n namedOp, dev *gpu.Device) schedule.Task {
	return schedule.Task{
		Graph: h.g, Op: n.op, Feat: n.feat(h.spec), Device: dev,
	}.Widths(n.widthOneB)
}

func runFig7(o Options) (*Table, error) {
	codes := o.pick(allDatasetCodes(), []string{"CO", "PR", "AR", "DD"})
	graphs, err := loadGraphs(codes)
	if err != nil {
		return nil, err
	}
	dev := device("V100")
	t := &Table{
		ID:     "fig7",
		Title:  "Normalized time of the four basic strategies, aggregation-sum (V100)",
		Header: []string{"dataset", "feat", "TV", "TE", "WV", "WE", "winner"},
	}
	winners := map[string]bool{}
	for _, code := range codes {
		h := graphs[code]
		for _, feat := range []int{8, 16} {
			task := schedule.Task{Graph: h.g, Op: ops.AggrSum, Feat: feat, ACols: feat, Device: dev}
			times := map[core.Strategy]float64{}
			best := 0.0
			var winner core.Strategy
			for _, s := range core.Strategies {
				c, err := schedule.Evaluate(task, core.Schedule{Strategy: s, Group: 1, Tile: 1}, o.simOpts()...)
				if err != nil {
					return nil, err
				}
				times[s] = c.Metrics.Cycles
				if best == 0 || c.Metrics.Cycles < best {
					best = c.Metrics.Cycles
					winner = s
				}
			}
			winners[winner.Code()] = true
			t.Rows = append(t.Rows, []string{
				code, fmt.Sprintf("%d", feat),
				f2(times[core.ThreadVertex] / best),
				f2(times[core.ThreadEdge] / best),
				f2(times[core.WarpVertex] / best),
				f2(times[core.WarpEdge] / best),
				winner.Code(),
			})
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"distinct winning strategies across cells: %d (paper: no single strategy wins everywhere)",
		len(winners)))
	return t, nil
}

func runTable9(o Options) (*Table, error) {
	codes := o.pick(
		[]string{"CO", "CI", "PR", "AR", "SB", "DD", "TW", "YE", "OV"},
		[]string{"CO", "PR", "AR"})
	graphs, err := loadGraphs(codes)
	if err != nil {
		return nil, err
	}
	devices := []string{"V100", "A100"}
	opsUnder := table9Ops
	if o.Quick {
		opsUnder = table9Ops[:3]
	}
	header := []string{"dataset", "gpu"}
	for _, n := range opsUnder {
		header = append(header, n.label)
	}
	t := &Table{
		ID:     "table9",
		Title:  "Optimal schedule (strategy_Ggroup_Ttile) per operator, dataset and GPU",
		Header: header,
	}
	tuners := map[string]*schedule.Tuner{}
	for _, d := range devices {
		tuners[d] = schedule.NewTuner(o.simOpts()...)
	}
	strategyUse := map[string]int{}
	for _, code := range codes {
		h := graphs[code]
		for _, devName := range devices {
			dev := device(devName)
			row := []string{code, devName}
			for _, n := range opsUnder {
				task := taskFor(h, n, dev)
				best, ok := tuners[devName].Tune(task)
				if !ok {
					row = append(row, "-")
					continue
				}
				row = append(row, best.Schedule.String())
				strategyUse[best.Schedule.Strategy.Code()]++
			}
			t.Rows = append(t.Rows, row)
		}
	}
	note := "strategy usage across cells:"
	for _, s := range core.Strategies {
		note += fmt.Sprintf(" %s=%d", s.Code(), strategyUse[s.Code()])
	}
	t.Notes = append(t.Notes, note,
		"paper's shape: all four strategies appear as optima; choices differ across datasets and GPUs")
	return t, nil
}

func runFig17(o Options) (*Table, error) {
	codes := o.pick(allDatasetCodes(), []string{"CO", "PR", "AR"})
	graphs, err := loadGraphs(codes)
	if err != nil {
		return nil, err
	}
	dev := device("V100")
	tuner := schedule.NewTuner(o.simOpts()...)
	opsUnder := []namedOp{table9Ops[0], table9Ops[2]} // GAT_L1_MsgC, GIN_L1_Aggr
	t := &Table{
		ID:     "fig17",
		Title:  "Normalized time of basic strategies vs tuned optimum (V100)",
		Header: []string{"operator", "dataset", "TV", "TE", "WV", "WE", "optimal", "best-basic/opt"},
	}
	for _, n := range opsUnder {
		for _, code := range codes {
			h := graphs[code]
			task := taskFor(h, n, dev)
			opt, ok := tuner.Tune(task)
			if !ok {
				return nil, fmt.Errorf("bench: no optimum for %s on %s", n.label, code)
			}
			row := []string{n.label, code}
			bestBasic := 0.0
			for _, s := range core.Strategies {
				c, err := schedule.Evaluate(task, core.Schedule{Strategy: s, Group: 1, Tile: 1}, o.simOpts()...)
				if err != nil {
					return nil, err
				}
				ratio := c.Metrics.Cycles / opt.Metrics.Cycles
				if bestBasic == 0 || ratio < bestBasic {
					bestBasic = ratio
				}
				row = append(row, f2(ratio))
			}
			row = append(row, opt.Schedule.String(), f2(bestBasic))
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		"paper's shape: basic-only schedules leave a gap (ratios > 1) that grouping/tiling closes")
	return t, nil
}

func runFig18(o Options) (*Table, error) {
	code := "TW"
	if len(o.Datasets) > 0 {
		code = o.Datasets[0]
	}
	graphs, err := loadGraphs([]string{code})
	if err != nil {
		return nil, err
	}
	h := graphs[code]
	dev := device("V100")
	n := table9Ops[2] // GIN_L1_Aggr at the dataset's input width
	task := taskFor(h, n, dev)

	groupVals := schedule.GroupValues
	tileVals := schedule.TileValues
	if o.Quick {
		groupVals = []int{1, 4, 16}
		tileVals = []int{1, 4, 16}
	}
	strategies := core.Strategies
	if o.Quick {
		strategies = []core.Strategy{core.WarpEdge}
	}

	t := &Table{
		ID:     "fig18",
		Title:  fmt.Sprintf("GIN_L1_Aggr on %s (feat %d, V100): time vs grouping (rows) and tiling (cols), normalized to sweep best", code, task.Feat),
		Header: append([]string{"strategy", "group\\tile"}, intHeaders(tileVals)...),
	}
	type cell struct {
		strategy core.Strategy
		group    int
		vals     []float64
	}
	var cells []cell
	best := 0.0
	for _, s := range strategies {
		for _, g := range groupVals {
			c := cell{strategy: s, group: g}
			for _, ti := range tileVals {
				cand, err := schedule.Evaluate(task,
					core.Schedule{Strategy: s, Group: g, Tile: ti}, o.simOpts()...)
				if err != nil {
					return nil, err
				}
				c.vals = append(c.vals, cand.Metrics.Cycles)
				if best == 0 || cand.Metrics.Cycles < best {
					best = cand.Metrics.Cycles
				}
			}
			cells = append(cells, c)
		}
	}
	for _, c := range cells {
		row := []string{c.strategy.Code(), fmt.Sprintf("G%d", c.group)}
		for _, v := range c.vals {
			row = append(row, f2(v/best))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper's shape: the knobs matter — cells vary by multiples within one basic strategy")
	return t, nil
}

func intHeaders(vals []int) []string {
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = fmt.Sprintf("T%d", v)
	}
	return out
}
