package bench

import (
	"strconv"
	"strings"
	"testing"
)

func parseSpeedup(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "x"), 64)
	if err != nil {
		t.Fatalf("bad speedup cell %q", cell)
	}
	return v
}

func TestFig13UGrapherNearBest(t *testing.T) {
	tab := runQuick(t, "fig13")
	for _, row := range tab.Rows {
		ug, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			t.Fatalf("bad uGrapher cell %q", row[len(row)-1])
		}
		if ug > 1.10 {
			t.Errorf("uGrapher normalized time %.2f on %v; should be at or near 1.00", ug, row[:3])
		}
	}
}

func TestFig14SpeedupsPositive(t *testing.T) {
	tab := runQuick(t, "fig14")
	var geoRow []string
	smaxVsDGL, gcnVsDGL := 0.0, 0.0
	for _, row := range tab.Rows {
		if row[1] == "GEOMEAN" {
			geoRow = row
		}
		if row[1] == "SMax" {
			smaxVsDGL = parseSpeedup(t, row[2])
		}
		if row[1] == "GCN" {
			gcnVsDGL = parseSpeedup(t, row[2])
		}
	}
	if geoRow == nil {
		t.Fatal("missing GEOMEAN row")
	}
	for _, cell := range geoRow[2:] {
		if cell == "-" {
			continue
		}
		if v := parseSpeedup(t, cell); v < 1.0 {
			t.Errorf("overall speedup %v < 1", cell)
		}
	}
	// Paper: SageMax's speedup is smaller than GCN's (GEMM-heavy model).
	if smaxVsDGL == 0 || gcnVsDGL == 0 {
		t.Fatal("missing per-model rows")
	}
	if smaxVsDGL >= gcnVsDGL {
		t.Errorf("SMax speedup %.2f should be below GCN's %.2f (GEMM share)", smaxVsDGL, gcnVsDGL)
	}
}

func TestFig15PerDataset(t *testing.T) {
	tab := runQuick(t, "fig15")
	found := 0
	for _, row := range tab.Rows {
		if row[1] == "GEOMEAN" {
			continue
		}
		found++
		for _, cell := range row[2:] {
			if cell == "-" {
				continue
			}
			if v := parseSpeedup(t, cell); v < 0.9 {
				t.Errorf("dataset %s: uGrapher materially slower than a baseline (%v)", row[1], cell)
			}
		}
	}
	if found < 3 {
		t.Errorf("expected per-dataset rows, got %d", found)
	}
}

func TestFig16UGrapherImprovesMetrics(t *testing.T) {
	tab := runQuick(t, "fig16")
	// Rows come in DGL/uGrapher pairs per dataset; uGrapher must win on
	// cycles and not regress all three metrics at once.
	for i := 0; i+1 < len(tab.Rows); i += 2 {
		dgl, ug := tab.Rows[i], tab.Rows[i+1]
		if dgl[1] != "DGL" || ug[1] != "uGrapher" {
			t.Fatalf("unexpected row order: %v / %v", dgl[1], ug[1])
		}
		dglCycles, _ := strconv.ParseFloat(dgl[6], 64)
		ugCycles, _ := strconv.ParseFloat(ug[6], 64)
		if ugCycles > dglCycles*1.01 {
			t.Errorf("%s: uGrapher cycles %v worse than DGL %v", dgl[0], ugCycles, dglCycles)
		}
	}
}

func TestFig19ReorderOrthogonal(t *testing.T) {
	tab := runQuick(t, "fig19")
	for _, row := range tab.Rows {
		dglO, _ := strconv.ParseFloat(row[1], 64)
		ugO, _ := strconv.ParseFloat(row[3], 64)
		ugR, _ := strconv.ParseFloat(row[4], 64)
		if ugO > dglO {
			t.Errorf("%s: uGrapher (%.2f) should beat DGL (%.2f) without reordering", row[0], ugO, dglO)
		}
		if ugR > 1.05 {
			t.Errorf("%s: uGrapher+reorder %.2f should be at/near the best cell", row[0], ugR)
		}
	}
}

func TestFig12PredictorCloseToGrid(t *testing.T) {
	tab := runQuick(t, "fig12")
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("bad predicted cell %q", row[3])
		}
		w, _ := strconv.ParseFloat(row[5], 64)
		if v > 3.0 {
			t.Errorf("%s: predictor pick %.2fx off optimum", row[0], v)
		}
		if w < 1.0 {
			t.Errorf("%s: worst schedule %.2f below best?", row[0], w)
		}
	}
}
