package bench

import (
	"fmt"

	"repro/internal/models"
)

// ext-training: an extension experiment beyond the paper (which evaluates
// inference only). A training step runs every graph operator twice more —
// the input gradient on the reversed graph and, for binary operators, a
// per-edge gradient kernel — so uGrapher's adaptive scheduling applies to
// strictly more graph work. The experiment checks the gains carry over.

func init() {
	register("ext-training", "Training-step cost: uGrapher's gains extend to forward+backward", runExtTraining)
}

func runExtTraining(o Options) (*Table, error) {
	codes := o.pick([]string{"CO", "PU", "AR", "DD"}, []string{"CO", "AR"})
	graphs, err := loadGraphs(codes)
	if err != nil {
		return nil, err
	}
	dev := device("V100")
	engines := enginesFor(dev, o)
	dgl, ug := engines[0], engines[3]
	modelNames := []string{"GCN", "GIN"}
	if o.Quick {
		modelNames = []string{"GCN"}
	}
	t := &Table{
		ID:     "ext-training",
		Title:  "Training step (fwd+bwd) cycles, normalized per row to uGrapher",
		Header: []string{"dataset", "model", "DGL train", "uGrapher train", "train speedup", "bwd/fwd (uGrapher)"},
	}
	for _, code := range codes {
		h := graphs[code]
		for _, mn := range modelNames {
			m, err := models.ByName(mn)
			if err != nil {
				return nil, err
			}
			dglTrain, err := models.TrainingCost(m, h.g, h.spec.Feat, h.spec.Class, dgl)
			if err != nil {
				return nil, err
			}
			ugTrain, err := models.TrainingCost(m, h.g, h.spec.Feat, h.spec.Class, ug)
			if err != nil {
				return nil, err
			}
			ugFwd, err := m.InferenceCost(h.g, h.spec.Feat, h.spec.Class, ug)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				code, mn,
				f2(dglTrain.Total / ugTrain.Total),
				"1.00",
				fmt.Sprintf("%sx", f2(dglTrain.Total/ugTrain.Total)),
				f2((ugTrain.Total - ugFwd.Total) / ugFwd.Total),
			})
		}
	}
	t.Notes = append(t.Notes,
		"backward graph operators run on the reversed graph and are tuned independently;",
		"adaptive scheduling therefore helps training at least as much as inference")
	return t, nil
}
