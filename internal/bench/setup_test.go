package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestFig2ImbalanceTracksSkew(t *testing.T) {
	tab := runQuick(t, "fig2")
	byCode := map[string][]string{}
	for _, row := range tab.Rows {
		byCode[row[0]] = row
	}
	get := func(code string, col int) float64 {
		row, ok := byCode[code]
		if !ok {
			t.Fatalf("missing dataset %s", code)
		}
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			t.Fatalf("bad cell %q", row[col])
		}
		return v
	}
	// The imbalanced graphs waste far more lane-cycles than the balanced one.
	if get("AR", 3) <= get("PR", 3) {
		t.Errorf("AR idle %% (%.1f) should exceed PR (%.1f)", get("AR", 3), get("PR", 3))
	}
	if get("SB", 2) <= get("PR", 2) {
		t.Errorf("SB max/mean ratio (%.2f) should exceed PR (%.2f)", get("SB", 2), get("PR", 2))
	}
}

func TestTable8Specs(t *testing.T) {
	tab := runQuick(t, "table8")
	var sawSMs bool
	for _, row := range tab.Rows {
		if row[0] == "SMs" {
			sawSMs = true
			if row[1] != "80" || row[2] != "108" {
				t.Errorf("SM counts = %v, want 80/108", row[1:])
			}
		}
	}
	if !sawSMs {
		t.Error("missing SMs row")
	}
}

func TestRenderCSV(t *testing.T) {
	tab := &Table{
		ID: "x", Title: "t",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}, {"3", "with,comma"}},
	}
	var buf bytes.Buffer
	if err := tab.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "# x: t\n") {
		t.Errorf("missing comment header: %q", out)
	}
	if !strings.Contains(out, "\"with,comma\"") {
		t.Errorf("comma not quoted: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("want 4 lines, got %d", len(lines))
	}
}
