package bench

import (
	"strconv"
	"testing"
)

func TestAblationSpace(t *testing.T) {
	tab := runQuick(t, "ablation-space")
	for _, row := range tab.Rows {
		// Every restricted subspace is at best equal to the full space.
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatalf("bad cell %q", cell)
			}
			if v < 0.999 {
				t.Errorf("subspace beats the full space: %v", row)
			}
		}
		full, _ := strconv.ParseFloat(row[4], 64)
		if full != 1.00 {
			t.Errorf("full-space column must normalize to 1.00: %v", row)
		}
	}
}

func TestAblationSim(t *testing.T) {
	tab := runQuick(t, "ablation-sim")
	stable := 0
	for _, row := range tab.Rows {
		if row[len(row)-1] == "true" {
			stable++
		}
	}
	if stable == 0 {
		t.Error("no dataset had fidelity-stable tuning; sampling design broken")
	}
}

func TestAblationPredictor(t *testing.T) {
	tab := runQuick(t, "ablation-predictor")
	vals := map[string]float64{}
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("bad cell %q", row[2])
		}
		vals[row[0]] = v
	}
	if vals["all"] > 2.5 {
		t.Errorf("full-featured predictor pick/optimal = %.2f; too weak", vals["all"])
	}
	if vals["no-schedule"] < vals["all"]*1.02 {
		t.Errorf("removing schedule features should hurt ranking: all=%.2f no-schedule=%.2f",
			vals["all"], vals["no-schedule"])
	}
}

func TestExtTraining(t *testing.T) {
	tab := runQuick(t, "ext-training")
	for _, row := range tab.Rows {
		sp, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("bad cell %q", row[2])
		}
		if sp < 1.0 {
			t.Errorf("%s/%s: uGrapher training slower than DGL (%.2f)", row[0], row[1], sp)
		}
		bwd, _ := strconv.ParseFloat(row[5], 64)
		if bwd <= 0 {
			t.Errorf("%s/%s: backward share %.2f should be positive", row[0], row[1], bwd)
		}
	}
}
