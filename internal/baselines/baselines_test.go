package baselines

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/ops"
	"repro/internal/schedule"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	b := graph.NewBuilder(1000)
	for i := 0; i < 12000; i++ {
		dst := int32(rng.Intn(1000))
		if rng.Float64() < 0.6 {
			dst = int32(rng.Intn(50)) // skew
		}
		b.AddEdge(int32(rng.Intn(1000)), dst)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBaselineIdentities(t *testing.T) {
	dev := gpu.V100()
	engines := All(dev)
	if len(engines) != 3 {
		t.Fatalf("want 3 baselines, got %d", len(engines))
	}
	names := map[string]bool{}
	for _, e := range engines {
		names[e.Name()] = true
		if e.Device() != dev {
			t.Errorf("%s device wrong", e.Name())
		}
	}
	for _, want := range []string{"DGL", "PyG", "GNNAdvisor"} {
		if !names[want] {
			t.Errorf("missing baseline %s", want)
		}
	}
	if !NewDGL(dev).Fused() || NewPyG(dev).Fused() || !NewGNNAdvisor(dev).Fused() {
		t.Error("fusion properties: DGL and GNNAdvisor fuse, PyG does not")
	}
}

func TestBaselineSchedulesAreStatic(t *testing.T) {
	dev := gpu.V100()
	g := testGraph(t)
	aggr := schedule.Task{Graph: g, Op: ops.AggrSum, Feat: 32, ACols: 32, Device: dev}
	aggrBig := aggr
	aggrBig.Feat = 256
	for _, e := range All(dev) {
		s1 := e.ScheduleFor(aggr)
		s2 := e.ScheduleFor(aggrBig)
		if s1 != s2 {
			t.Errorf("%s schedule should not adapt to input: %v vs %v", e.Name(), s1, s2)
		}
	}
}

func TestDGLUsesDifferentKernelsPerOpClass(t *testing.T) {
	dev := gpu.V100()
	g := testGraph(t)
	dgl := NewDGL(dev)
	aggr := dgl.ScheduleFor(schedule.Task{Graph: g, Op: ops.AggrSum, Feat: 32, Device: dev})
	msg := dgl.ScheduleFor(schedule.Task{Graph: g, Op: ops.UAddV, Feat: 8, Device: dev})
	if aggr.Strategy != core.WarpVertex {
		t.Errorf("DGL aggregation kernel = %v, want warp-vertex", aggr)
	}
	if msg.Strategy != core.ThreadEdge {
		t.Errorf("DGL apply_edges kernel = %v, want thread-edge", msg)
	}
}

func TestSupportsModel(t *testing.T) {
	if SupportsModel("GNNAdvisor", "GAT") || SupportsModel("GNNAdvisor", "SMax") {
		t.Error("GNNAdvisor must not support GAT/Sage")
	}
	if !SupportsModel("GNNAdvisor", "GCN") || !SupportsModel("GNNAdvisor", "GIN") {
		t.Error("GNNAdvisor supports GCN and GIN")
	}
	if !SupportsModel("DGL", "GAT") || !SupportsModel("PyG", "SMean") {
		t.Error("DGL/PyG support all models")
	}
}

// TestUGrapherBeatsBaselinesOnGraphCycles is the end-to-end headline at
// small scale: tuned uGrapher's graph-operator cycles are never worse than
// any fixed baseline on the same model and dataset.
func TestUGrapherBeatsBaselinesOnGraphCycles(t *testing.T) {
	dev := gpu.V100()
	g := testGraph(t)
	tuned := models.NewTunedEngine(dev)
	for _, m := range []models.Model{models.NewGCN(), models.NewGIN()} {
		repT, err := m.InferenceCost(g, 64, 8, tuned)
		if err != nil {
			t.Fatal(err)
		}
		for _, base := range All(dev) {
			repB, err := m.InferenceCost(g, 64, 8, base)
			if err != nil {
				t.Fatal(err)
			}
			// Allow 5% slack for simulator sampling noise between runs.
			if repT.Graph > repB.Graph*1.05 {
				t.Errorf("%s: uGrapher graph cycles %.0f worse than %s's %.0f",
					m.Name(), repT.Graph, base.Name(), repB.Graph)
			}
		}
	}
}

func TestPyGMaterialisesMessages(t *testing.T) {
	dev := gpu.V100()
	g := testGraph(t)
	dgl := NewDGL(dev)
	pyg := NewPyG(dev)
	m := models.NewGCN()
	repD, err := m.InferenceCost(g, 64, 8, dgl)
	if err != nil {
		t.Fatal(err)
	}
	repP, err := m.InferenceCost(g, 64, 8, pyg)
	if err != nil {
		t.Fatal(err)
	}
	if len(repP.PerOp) <= len(repD.PerOp) {
		t.Error("PyG should run more kernels than DGL (materialised messages)")
	}
}
