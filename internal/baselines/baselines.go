// Package baselines models the three systems the paper compares against
// (§6 "Baselines") as fixed-schedule engines over the same simulator:
//
//   - DGL: fused message passing with static handwritten kernels — a
//     feature-parallel (warp-per-vertex) CSR kernel for aggregations and an
//     edge-parallel kernel for apply_edges.
//   - PyG: gather/scatter execution that always materialises per-edge
//     messages (no fusion), with thread-per-edge kernels.
//   - GNNAdvisor: warp-edge kernels with fixed neighbour grouping and
//     dimension tiling (its 2D workload management), tuned once, not per
//     input; supports only GCN and GIN.
//
// What makes them baselines is precisely what the paper criticises: the
// schedule never adapts to the operator or the dataset.
package baselines

import (
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/models"
)

// NewDGL returns the DGL-like engine.
func NewDGL(dev *gpu.Device) models.Engine {
	return &models.FixedEngine{
		EngineName:   "DGL",
		Dev:          dev,
		AggrSchedule: core.Schedule{Strategy: core.WarpVertex, Group: 1, Tile: 1},
		MsgCSchedule: core.Schedule{Strategy: core.ThreadEdge, Group: 1, Tile: 1},
		Fuses:        true,
		// DGL's update_all path goes through Python message-passing
		// dispatch: ~45 us per graph operator at V100 clocks.
		HostOverheadCycles: 62000,
		// Baselines differ from uGrapher in schedule choice, never in
		// functional semantics, so they compute on the shared default host
		// backend (overridable per engine for A/B runs).
		Compute: core.DefaultBackend(),
	}
}

// NewPyG returns the PyG-like engine. PyG's scatter-based execution always
// materialises edge messages, so Fuses is false: every fused aggregation
// becomes a message-creation kernel plus a scatter kernel.
func NewPyG(dev *gpu.Device) models.Engine {
	return &models.FixedEngine{
		EngineName:   "PyG",
		Dev:          dev,
		AggrSchedule: core.Schedule{Strategy: core.ThreadEdge, Group: 1, Tile: 1},
		MsgCSchedule: core.Schedule{Strategy: core.ThreadEdge, Group: 1, Tile: 1},
		Fuses:        false,
		// PyG's gather/scatter path allocates and dispatches per edge-op in
		// Python: ~55 us per graph operator.
		HostOverheadCycles: 76000,
		Compute:            core.DefaultBackend(),
	}
}

// NewGNNAdvisor returns the GNNAdvisor-like engine: warp-edge with its
// default neighbour-group size (its neighbor_group=16 style workload
// mapping) and dimension tiling fixed at 2 — static parameters regardless of
// input (the paper keeps GNNAdvisor's defaults and disables renumbering for
// fairness).
func NewGNNAdvisor(dev *gpu.Device) models.Engine {
	return &models.FixedEngine{
		EngineName:   "GNNAdvisor",
		Dev:          dev,
		AggrSchedule: core.Schedule{Strategy: core.WarpEdge, Group: 16, Tile: 2},
		MsgCSchedule: core.Schedule{Strategy: core.WarpEdge, Group: 16, Tile: 1},
		Fuses:        true,
		// GNNAdvisor's thin C++ runtime: ~10 us per operator.
		HostOverheadCycles: 14000,
		Compute:            core.DefaultBackend(),
	}
}

// SupportsModel reports whether a baseline can run the model: GNNAdvisor
// only implements GCN and GIN (the paper's Fig. 13 leaves those cells
// empty).
func SupportsModel(engineName, modelName string) bool {
	if engineName == "GNNAdvisor" {
		return modelName == "GCN" || modelName == "GIN"
	}
	return true
}

// All returns the three baseline engines for a device.
func All(dev *gpu.Device) []models.Engine {
	return []models.Engine{NewDGL(dev), NewPyG(dev), NewGNNAdvisor(dev)}
}
