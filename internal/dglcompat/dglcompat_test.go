package dglcompat

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/schedule"
	"repro/internal/tensor"
)

func testWrap(t *testing.T, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(200)
	for i := 0; i < 1500; i++ {
		b.AddEdge(int32(rng.Intn(200)), int32(rng.Intn(200)))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return Wrap(g, nil)
}

func fillND(t *testing.T, w *Graph, name string, cols int, seed int64) *tensor.Dense {
	t.Helper()
	d := tensor.NewDense(w.Structure().NumVertices(), cols)
	d.FillRandom(rand.New(rand.NewSource(seed)), 1)
	if err := w.SetNData(name, d); err != nil {
		t.Fatal(err)
	}
	return d
}

func fillED(t *testing.T, w *Graph, name string, cols int, seed int64) *tensor.Dense {
	t.Helper()
	d := tensor.NewDense(w.Structure().NumEdges(), cols)
	d.FillRandom(rand.New(rand.NewSource(seed)), 1)
	if err := w.SetEData(name, d); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestGCNLayerViaUpdateAll reproduces the paper's Fig. 11 usage: GCN's
// aggregation as update_all(u_mul_e('h','w','m'), sum('m','rst')).
func TestGCNLayerViaUpdateAll(t *testing.T) {
	w := testWrap(t, 1)
	h := fillND(t, w, "h", 16, 2)
	ew := fillED(t, w, "w", 1, 3)

	msg, err := Binary("u_mul_e", "h", "w", "m")
	if err != nil {
		t.Fatal(err)
	}
	red, err := Reduce("sum", "m", "rst")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := w.UpdateAll(msg, red)
	if err != nil {
		t.Fatal(err)
	}
	if metrics.Cycles <= 0 {
		t.Error("no metrics reported")
	}
	rst, ok := w.NData("rst")
	if !ok {
		t.Fatal("rst not stored in node data")
	}

	// Reference via the core API directly.
	ref := tensor.NewDense(w.Structure().NumVertices(), 16)
	err = core.Reference(w.Structure(), ops.WeightedAggrSum, core.Operands{
		A: tensor.Src(h), B: tensor.Edge(ew), C: tensor.Dst(ref),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rst.AllClose(ref, 1e-4, 1e-4) {
		t.Errorf("update_all result differs from reference (maxdiff %v)", rst.MaxDiff(ref))
	}
}

// TestGATMsgCViaApplyEdges: apply_edges(u_add_v) produces per-edge sums.
func TestGATMsgCViaApplyEdges(t *testing.T) {
	w := testWrap(t, 4)
	x := fillND(t, w, "el", 8, 5)

	msg, err := Binary("u_add_v", "el", "el", "e")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.ApplyEdges(msg); err != nil {
		t.Fatal(err)
	}
	e, ok := w.EData("e")
	if !ok {
		t.Fatal("edge output missing")
	}
	// Spot-check edge 0.
	src, dst := w.Structure().EdgeEndpoints(0)
	for j := 0; j < 8; j++ {
		want := x.At(int(src), j) + x.At(int(dst), j)
		if got := e.At(0, j); got != want {
			t.Fatalf("edge 0 col %d = %v, want %v", j, got, want)
		}
	}
}

func TestCopyUAndCopyE(t *testing.T) {
	w := testWrap(t, 6)
	fillND(t, w, "h", 4, 7)
	red, err := Reduce("max", "m", "pooled")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.UpdateAll(CopyU("h", "m"), red); err != nil {
		t.Fatal(err)
	}
	if _, ok := w.NData("pooled"); !ok {
		t.Fatal("pooled missing")
	}

	fillED(t, w, "ew", 4, 8)
	redSum, err := Reduce("mean", "m", "meaned")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.UpdateAll(CopyE("ew", "m"), redSum); err != nil {
		t.Fatal(err)
	}
	if _, ok := w.NData("meaned"); !ok {
		t.Fatal("meaned missing")
	}
}

func TestBinaryNameParsing(t *testing.T) {
	good := []string{"u_add_v", "v_sub_u", "u_mul_e", "e_div_v", "u_div_e"}
	for _, name := range good {
		if _, err := Binary(name, "a", "b", "m"); err != nil {
			t.Errorf("Binary(%q): %v", name, err)
		}
	}
	bad := []string{"", "u_mul", "x_mul_e", "u_pow_e", "u_copy_lhs_e", "u_mul_q"}
	for _, name := range bad {
		if _, err := Binary(name, "a", "b", "m"); err == nil {
			t.Errorf("Binary(%q) should fail", name)
		}
	}
}

func TestReduceNameParsing(t *testing.T) {
	for _, name := range []string{"sum", "max", "min", "mean"} {
		if _, err := Reduce(name, "m", "o"); err != nil {
			t.Errorf("Reduce(%q): %v", name, err)
		}
	}
	for _, name := range []string{"", "prod", "copy_rhs", "null"} {
		if _, err := Reduce(name, "m", "o"); err == nil {
			t.Errorf("Reduce(%q) should fail", name)
		}
	}
}

func TestMissingFieldErrors(t *testing.T) {
	w := testWrap(t, 9)
	msg, _ := Binary("u_mul_e", "h", "w", "m")
	red, _ := Reduce("sum", "m", "rst")
	if _, err := w.UpdateAll(msg, red); err == nil {
		t.Error("missing fields should fail")
	}
	fillND(t, w, "h", 4, 10)
	if _, err := w.UpdateAll(msg, red); err == nil {
		t.Error("missing edge field should fail")
	}
}

func TestFrameShapeValidation(t *testing.T) {
	w := testWrap(t, 11)
	if err := w.SetNData("h", tensor.NewDense(3, 4)); err == nil {
		t.Error("wrong ndata rows should fail")
	}
	if err := w.SetEData("w", tensor.NewDense(3, 1)); err == nil {
		t.Error("wrong edata rows should fail")
	}
	if _, ok := w.NData("nope"); ok {
		t.Error("missing field lookup should report false")
	}
	if _, ok := w.EData("nope"); ok {
		t.Error("missing edge field lookup should report false")
	}
}

func TestScheduleChooserOverride(t *testing.T) {
	w := testWrap(t, 12)
	fillND(t, w, "h", 8, 13)
	var sawTask bool
	forced := core.Schedule{Strategy: core.ThreadVertex, Group: 1, Tile: 1}
	w.SetScheduleChooser(func(task schedule.Task) core.Schedule {
		sawTask = task.Feat == 8
		return forced
	})
	red, _ := Reduce("sum", "m", "rst")
	if _, err := w.UpdateAll(CopyU("h", "m"), red); err != nil {
		t.Fatal(err)
	}
	if !sawTask {
		t.Error("chooser did not receive the task")
	}
}

// TestBroadcastWeights: scalar edge weights broadcast across wide features,
// exactly as GCN uses them.
func TestBroadcastWeights(t *testing.T) {
	w := testWrap(t, 14)
	fillND(t, w, "h", 12, 15)
	ew := tensor.NewDense(w.Structure().NumEdges(), 1)
	ew.Fill(2)
	if err := w.SetEData("w", ew); err != nil {
		t.Fatal(err)
	}
	msg, _ := Binary("u_mul_e", "h", "w", "m")
	red, _ := Reduce("sum", "m", "rst")
	if _, err := w.UpdateAll(msg, red); err != nil {
		t.Fatal(err)
	}
	// Against unweighted sum: doubling weights doubles output.
	redPlain, _ := Reduce("sum", "m", "plain")
	if _, err := w.UpdateAll(CopyU("h", "m"), redPlain); err != nil {
		t.Fatal(err)
	}
	rst, _ := w.NData("rst")
	plain, _ := w.NData("plain")
	scaled := plain.Clone()
	tensor.Scale(scaled, 2)
	if !rst.AllClose(scaled, 1e-3, 1e-3) {
		t.Errorf("broadcast weighting wrong (maxdiff %v)", rst.MaxDiff(scaled))
	}
}

// TestCompileUpdateAll: the compiled handle matches the one-shot UpdateAll,
// reruns see in-place input mutations, and the steady state allocates
// nothing.
func TestCompileUpdateAll(t *testing.T) {
	w := testWrap(t, 30)
	if err := w.SetBackend("reference"); err != nil {
		t.Fatal(err)
	}
	h := fillND(t, w, "h", 8, 31)
	fillED(t, w, "w", 1, 32)

	msg, err := Binary("u_mul_e", "h", "w", "m")
	if err != nil {
		t.Fatal(err)
	}
	red, err := Reduce("sum", "m", "rst")
	if err != nil {
		t.Fatal(err)
	}

	// Oracle: the one-shot path on a second wrapper with identical frames.
	w2 := Wrap(w.Structure(), nil)
	if err := w2.SetBackend("reference"); err != nil {
		t.Fatal(err)
	}
	fillND(t, w2, "h", 8, 31)
	fillED(t, w2, "w", 1, 32)
	if _, err := w2.UpdateAll(msg, red); err != nil {
		t.Fatal(err)
	}
	want, _ := w2.NData("rst")

	c, err := w.CompileUpdateAll(msg, red)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	got, ok := w.NData("rst")
	if !ok {
		t.Fatal("rst field not registered")
	}
	if got != c.Output() {
		t.Error("output field does not alias the handle's tensor")
	}
	if !got.AllClose(want, 1e-5, 1e-5) {
		t.Fatalf("compiled result diverges from UpdateAll (maxdiff %v)", got.MaxDiff(want))
	}

	// In-place input mutation is visible to the next Run.
	for i := range h.Data {
		h.Data[i] *= 2
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	want2 := want.Clone()
	for i := range want2.Data {
		want2.Data[i] *= 2
	}
	if !got.AllClose(want2, 1e-5, 1e-5) {
		t.Fatalf("rerun after input mutation diverges (maxdiff %v)", got.MaxDiff(want2))
	}

	// Steady state: the handle's Run allocates nothing.
	allocs := testing.AllocsPerRun(10, func() {
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("compiled Run allocates %.1f objects/run, want 0", allocs)
	}
}

// TestCompileUpdateAllMissingField: compilation fails fast on unresolved
// frames instead of deferring the error to Run.
func TestCompileUpdateAllMissingField(t *testing.T) {
	w := testWrap(t, 33)
	msg, err := Binary("u_mul_e", "h", "w", "m")
	if err != nil {
		t.Fatal(err)
	}
	red, err := Reduce("sum", "m", "rst")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.CompileUpdateAll(msg, red); err == nil {
		t.Fatal("expected missing-field error")
	}
}
