package dglcompat

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// TestCompileUpdateAllRejectsUnknownPair: a message/reduce combination that
// is not in the §5.3 switching table fails at CompileUpdateAll with the pair
// named, instead of misassembling an operator downstream.
func TestCompileUpdateAllRejectsUnknownPair(t *testing.T) {
	w := testWrap(t, 31)
	fillND(t, w, "h", 8, 32)

	// A zero-valued MessageFn has no DGL name, so the pair resolves to
	// ".sum", which is not registered.
	red, err := Reduce("sum", "m", "rst")
	if err != nil {
		t.Fatal(err)
	}
	_, err = w.CompileUpdateAll(MessageFn{}, red)
	if err == nil {
		t.Fatal("CompileUpdateAll accepted a zero-valued message function")
	}
	if !strings.Contains(err.Error(), "operator registry") {
		t.Errorf("error = %v, want a registry-miss report", err)
	}
	if !strings.Contains(err.Error(), `".sum"`) {
		t.Errorf("error = %v, want the pair named", err)
	}

	// A registered pair still compiles, runs, and honours cancellation.
	msg := CopyU("h", "m")
	c, err := w.CompileUpdateAll(msg, red)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.RunCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("RunCtx(cancelled) = %v, want context.Canceled", err)
	}
}
