// Package dglcompat implements the paper's §5.3 framework integration: a
// drop-in analogue of DGL's message-passing interface whose graph operators
// execute through uGrapher instead of DGL's static kernels.
//
// DGL programs call update_all(message_fn, reduce_fn) and
// apply_edges(message_fn), passing built-in functions by name ("u_mul_e",
// "sum", ...). The integration layer (paper Fig. 10/11) recognises those
// names, translates them to op_info, and dispatches to the uGrapher
// interface — "the program development burden ... is limited only to the
// implementation of pattern recognition and switching table". This package
// is that switching table, in Go: user code keeps DGL's shape while every
// graph operator gains adaptive schedules.
package dglcompat

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/schedule"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// Graph mirrors DGL's DGLGraph surface: a structure plus named feature
// frames on sources, destinations and edges (srcdata/dstdata/edata).
type Graph struct {
	g *graph.Graph

	// SrcData / DstData / EData are the feature frames. In DGL a homogeneous
	// graph shares one node frame; here srcdata and dstdata alias the same
	// map, as DGL's do for non-bipartite graphs.
	nodeData map[string]*tensor.Dense
	edgeData map[string]*tensor.Dense

	dev *gpu.Device
	// chooser picks the schedule per operator; defaults to a cached tuner
	// (the paper's automatic mode when no parallel_info is given).
	chooser func(schedule.Task) core.Schedule
	tuner   *schedule.Tuner
	// backend computes the functional outputs (schedule cost still comes
	// from the simulator); defaults to core.DefaultBackend().
	backend core.ExecBackend
}

// Wrap adapts a structural graph into the message-passing interface,
// targeting dev (defaults to V100).
func Wrap(g *graph.Graph, dev *gpu.Device) *Graph {
	if dev == nil {
		dev = gpu.V100()
	}
	w := &Graph{
		g:        g,
		nodeData: map[string]*tensor.Dense{},
		edgeData: map[string]*tensor.Dense{},
		dev:      dev,
		tuner:    schedule.NewTuner(gpu.WithMaxSampledBlocks(64)),
		backend:  core.DefaultBackend(),
	}
	w.chooser = func(t schedule.Task) core.Schedule {
		if best, ok := w.tuner.Tune(t); ok {
			return best.Schedule
		}
		return core.DefaultSchedule
	}
	return w
}

// Structure returns the underlying graph.
func (w *Graph) Structure() *graph.Graph { return w.g }

// SetScheduleChooser overrides automatic tuning (the explicit parallel_info
// path of the uGrapher API).
func (w *Graph) SetScheduleChooser(f func(schedule.Task) core.Schedule) { w.chooser = f }

// SetBackend selects the host compute backend by name ("reference",
// "parallel", "sim"; empty = process default).
func (w *Graph) SetBackend(name string) error {
	b, err := core.Backend(name)
	if err != nil {
		return err
	}
	w.backend = b
	return nil
}

// SetNData stores a per-vertex feature tensor under name (DGL:
// g.srcdata[name] = x).
func (w *Graph) SetNData(name string, t *tensor.Dense) error {
	if t.Rows != w.g.NumVertices() {
		return fmt.Errorf("dglcompat: ndata %q has %d rows, graph has %d vertices",
			name, t.Rows, w.g.NumVertices())
	}
	w.nodeData[name] = t
	return nil
}

// SetEData stores a per-edge feature tensor under name (DGL: g.edata[name]).
func (w *Graph) SetEData(name string, t *tensor.Dense) error {
	if t.Rows != w.g.NumEdges() {
		return fmt.Errorf("dglcompat: edata %q has %d rows, graph has %d edges",
			name, t.Rows, w.g.NumEdges())
	}
	w.edgeData[name] = t
	return nil
}

// NData fetches a vertex frame.
func (w *Graph) NData(name string) (*tensor.Dense, bool) {
	t, ok := w.nodeData[name]
	return t, ok
}

// EData fetches an edge frame.
func (w *Graph) EData(name string) (*tensor.Dense, bool) {
	t, ok := w.edgeData[name]
	return t, ok
}

// MessageFn is a DGL built-in message function: binary ("u_mul_e") or copy
// ("copy_u", "copy_e"), with the field names it reads and the message field
// it writes. Build one with the constructors below, mirroring dgl.function.
type MessageFn struct {
	op       ops.EdgeOp
	aKind    tensor.Kind
	bKind    tensor.Kind
	aField   string
	bField   string
	outField string
	name     string
}

// ReduceFn is a DGL built-in reduce function ("sum", "max", ...): the
// message field it consumes and the vertex field it writes.
type ReduceFn struct {
	op       ops.GatherOp
	msgField string
	outField string
	name     string
}

func operandLetterKind(letter string) (tensor.Kind, error) {
	switch letter {
	case "u":
		return tensor.SrcV, nil
	case "v":
		return tensor.DstV, nil
	case "e":
		return tensor.EdgeK, nil
	default:
		return 0, fmt.Errorf("dglcompat: unknown operand %q (want u, v or e)", letter)
	}
}

// Binary builds a binary message function by DGL name, e.g.
// Binary("u_mul_e", "h", "w", "m"): message m = h[src] * w[edge].
func Binary(name, aField, bField, outField string) (MessageFn, error) {
	parts := strings.Split(name, "_")
	if len(parts) != 3 {
		return MessageFn{}, fmt.Errorf("dglcompat: bad binary message name %q", name)
	}
	aKind, err := operandLetterKind(parts[0])
	if err != nil {
		return MessageFn{}, err
	}
	bKind, err := operandLetterKind(parts[2])
	if err != nil {
		return MessageFn{}, err
	}
	eop, err := ops.ParseEdgeOp(parts[1])
	if err != nil || !eop.IsBinary() {
		return MessageFn{}, fmt.Errorf("dglcompat: %q is not a binary op", parts[1])
	}
	return MessageFn{
		op: eop, aKind: aKind, bKind: bKind,
		aField: aField, bField: bField, outField: outField, name: name,
	}, nil
}

// CopyU builds copy_u(field, out): message = source feature.
func CopyU(field, outField string) MessageFn {
	return MessageFn{op: ops.CopyLHS, aKind: tensor.SrcV, aField: field, outField: outField, name: "copy_u"}
}

// CopyE builds copy_e(field, out): message = edge feature.
func CopyE(field, outField string) MessageFn {
	return MessageFn{op: ops.CopyRHS, bKind: tensor.EdgeK, bField: field, outField: outField, name: "copy_e"}
}

// Reduce builds a reduce function by DGL name ("sum", "max", "min", "mean").
func Reduce(name, msgField, outField string) (ReduceFn, error) {
	gop, err := ops.ParseGatherOp(name)
	if err != nil || !gop.IsReduction() {
		return ReduceFn{}, fmt.Errorf("dglcompat: %q is not a reduce op", name)
	}
	return ReduceFn{op: gop, msgField: msgField, outField: outField, name: name}, nil
}

// field resolves an operand tensor by kind and name.
func (w *Graph) field(kind tensor.Kind, name string) (*tensor.Dense, error) {
	var frame map[string]*tensor.Dense
	if kind == tensor.EdgeK {
		frame = w.edgeData
	} else {
		frame = w.nodeData
	}
	t, ok := frame[name]
	if !ok {
		return nil, fmt.Errorf("dglcompat: missing field %q", name)
	}
	return t, nil
}

// opInfoFor assembles the op_info for a message(+reduce) pair — the
// "pattern recognition and switching table" of the paper's §5.3.
func (w *Graph) opInfoFor(msg MessageFn, reduce *ReduceFn) (ops.OpInfo, core.Operands, int, error) {
	info := ops.OpInfo{
		EdgeOp: msg.op,
		AKind:  msg.aKind,
		BKind:  msg.bKind,
	}
	operands := core.Operands{A: tensor.NullTensor, B: tensor.NullTensor}
	feat := 0
	if msg.aKind != tensor.Null {
		t, err := w.field(msg.aKind, msg.aField)
		if err != nil {
			return ops.OpInfo{}, core.Operands{}, 0, err
		}
		operands.A = tensor.Typed{Kind: msg.aKind, T: t}
		if t.Cols > feat {
			feat = t.Cols
		}
	}
	if msg.bKind != tensor.Null {
		t, err := w.field(msg.bKind, msg.bField)
		if err != nil {
			return ops.OpInfo{}, core.Operands{}, 0, err
		}
		operands.B = tensor.Typed{Kind: msg.bKind, T: t}
		if t.Cols > feat {
			feat = t.Cols
		}
	}
	if reduce == nil {
		info.GatherOp = ops.GatherCopyRHS
		info.CKind = tensor.EdgeK
		info.Name = msg.name
		out := tensor.NewDense(w.g.NumEdges(), feat)
		operands.C = tensor.Typed{Kind: tensor.EdgeK, T: out}
		return info, operands, feat, nil
	}
	info.GatherOp = reduce.op
	info.CKind = tensor.DstV
	info.Name = msg.name + "." + reduce.name
	out := tensor.NewDense(w.g.NumVertices(), feat)
	operands.C = tensor.Typed{Kind: tensor.DstV, T: out}
	return info, operands, feat, nil
}

// runOp compiles, schedules and executes, storing the output field.
func (w *Graph) runOp(info ops.OpInfo, operands core.Operands, feat int, outField string) (gpu.Metrics, error) {
	cols := func(t tensor.Typed) int {
		if t.T == nil {
			return 0
		}
		return t.T.Cols
	}
	task := schedule.Task{
		Graph: w.g, Op: info, Feat: feat,
		ACols: cols(operands.A), BCols: cols(operands.B),
		Device: w.dev,
	}
	sched := w.chooser(task)
	if telemetry.Enabled() {
		telemetry.RecordScheduleChoice(info.Name, sched.Strategy.Code(), sched.String())
	}
	sp := telemetry.StartSpan("dglcompat", "op", info.Name)
	// RunWith lowers once through the backend abstraction: operand
	// validation happens at lowering, not per execution.
	res, err := core.RunWith(w.backend, w.g, info, operands, sched, w.dev)
	if err != nil {
		sp.EndErr(err.Error())
		return gpu.Metrics{}, err
	}
	sp.End()
	if info.CKind == tensor.EdgeK {
		w.edgeData[outField] = operands.C.T
	} else {
		w.nodeData[outField] = operands.C.T
	}
	return res.Metrics, nil
}

// UpdateAll is DGL's update_all(message_fn, reduce_fn): a fused aggregation
// through uGrapher. The result lands in dstdata[reduce.outField].
func (w *Graph) UpdateAll(msg MessageFn, reduce ReduceFn) (gpu.Metrics, error) {
	info, operands, feat, err := w.opInfoFor(msg, &reduce)
	if err != nil {
		return gpu.Metrics{}, err
	}
	return w.runOp(info, operands, feat, reduce.outField)
}

// ApplyEdges is DGL's apply_edges(message_fn): message creation. The result
// lands in edata[msg.outField].
func (w *Graph) ApplyEdges(msg MessageFn) (gpu.Metrics, error) {
	info, operands, feat, err := w.opInfoFor(msg, nil)
	if err != nil {
		return gpu.Metrics{}, err
	}
	return w.runOp(info, operands, feat, msg.outField)
}

// CompiledUpdateAll is a reusable handle for one update_all call: field
// resolution, schedule choice and kernel lowering happened once at
// CompileUpdateAll time, so each Run only executes the kernel — no lookup,
// no tuning, no allocation. It reads the SAME operand tensors it captured
// at compile time (mutate them in place to change inputs; replacing a frame
// with SetNData/SetEData requires recompiling) and writes the same output
// tensor, registered under the reduce function's output field.
type CompiledUpdateAll struct {
	kern  core.CompiledKernel
	sched core.Schedule
	info  ops.OpInfo
	out   *tensor.Dense
}

// CompileUpdateAll resolves and lowers update_all(msg, reduce) once,
// returning a handle whose Run re-executes the kernel against the captured
// frames. This is the epoch-loop shape: DGL programs call update_all with
// identical arguments every layer of every epoch, and all the work besides
// the kernel itself is loop-invariant.
func (w *Graph) CompileUpdateAll(msg MessageFn, reduce ReduceFn) (*CompiledUpdateAll, error) {
	// Recognise the pair against the §5.3 switching table up front: an
	// unknown combination (e.g. a zero-valued MessageFn) must surface as an
	// error here, not as a panic or a misassembled op downstream.
	pair := msg.name + "." + reduce.name
	if _, ok := ops.Lookup(pair); !ok {
		return nil, fmt.Errorf("dglcompat: update_all pair %q is not in the operator registry", pair)
	}
	info, operands, feat, err := w.opInfoFor(msg, &reduce)
	if err != nil {
		return nil, err
	}
	cols := func(t tensor.Typed) int {
		if t.T == nil {
			return 0
		}
		return t.T.Cols
	}
	task := schedule.Task{
		Graph: w.g, Op: info, Feat: feat,
		ACols: cols(operands.A), BCols: cols(operands.B),
		Device: w.dev,
	}
	sched := w.chooser(task)
	if telemetry.Enabled() {
		telemetry.RecordScheduleChoice(info.Name, sched.Strategy.Code(), sched.String())
	}
	plan, err := core.Compile(info, sched)
	if err != nil {
		return nil, err
	}
	kern, err := w.backend.Lower(plan, w.g, operands)
	if err != nil {
		return nil, err
	}
	w.nodeData[reduce.outField] = operands.C.T
	return &CompiledUpdateAll{kern: kern, sched: sched, info: info, out: operands.C.T}, nil
}

// Run executes the compiled kernel, refreshing the output field in place.
func (c *CompiledUpdateAll) Run() error { return c.kern.Run() }

// RunCtx is Run with cancellation, honoured at the backend's granularity.
func (c *CompiledUpdateAll) RunCtx(ctx context.Context) error { return c.kern.RunCtx(ctx) }

// Output returns the destination tensor the kernel writes (aliased by the
// graph's output field).
func (c *CompiledUpdateAll) Output() *tensor.Dense { return c.out }

// Schedule reports the schedule resolved at compile time.
func (c *CompiledUpdateAll) Schedule() core.Schedule { return c.sched }

// OpInfo reports the operator the handle executes.
func (c *CompiledUpdateAll) OpInfo() ops.OpInfo { return c.info }
