package reorder

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// clusteredButScrambled builds a graph with strong community structure whose
// vertex ids are randomly scrambled, so a locality reorder has something to
// recover.
func clusteredButScrambled(t *testing.T, n, clusterSize, edgesPer int) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	scramble := rng.Perm(n)
	b := graph.NewBuilder(n)
	for c := 0; c < n/clusterSize; c++ {
		base := c * clusterSize
		for i := 0; i < clusterSize*edgesPer; i++ {
			u := base + rng.Intn(clusterSize)
			v := base + rng.Intn(clusterSize)
			b.AddEdge(int32(scramble[u]), int32(scramble[v]))
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func validPerm(t *testing.T, perm []int32, n int) {
	t.Helper()
	if len(perm) != n {
		t.Fatalf("perm length %d != %d", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || int(p) >= n || seen[p] {
			t.Fatalf("not a permutation")
		}
		seen[p] = true
	}
}

func TestBFSIsPermutation(t *testing.T) {
	g := clusteredButScrambled(t, 1000, 50, 4)
	perm := BFS(g)
	validPerm(t, perm, 1000)
}

func TestBFSImprovesLocality(t *testing.T) {
	g := clusteredButScrambled(t, 2000, 50, 4)
	before := Locality(g)
	g2, err := Apply(g, BFS(g))
	if err != nil {
		t.Fatal(err)
	}
	after := Locality(g2)
	if after >= before*0.5 {
		t.Errorf("BFS reorder should halve the mean edge gap: before %.4f after %.4f", before, after)
	}
}

func TestBFSDeterministic(t *testing.T) {
	g := clusteredButScrambled(t, 500, 25, 3)
	p1 := BFS(g)
	p2 := BFS(g)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("BFS reorder must be deterministic")
		}
	}
}

func TestBFSCoversIsolatedVertices(t *testing.T) {
	// Vertices 3 and 4 are isolated.
	g, err := graph.FromCOO(5, []int32{0, 1}, []int32{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	validPerm(t, BFS(g), 5)
}

func TestDegreeSort(t *testing.T) {
	// Star at vertex 7 of 10: vertex 7 should get new id 0.
	b := graph.NewBuilder(10)
	for v := int32(0); v < 10; v++ {
		if v != 7 {
			b.AddEdge(v, 7)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	perm := DegreeSort(g)
	validPerm(t, perm, 10)
	if perm[7] != 0 {
		t.Errorf("hub should be renumbered to 0, got %d", perm[7])
	}
}

func TestLocalityEdgeCases(t *testing.T) {
	g, err := graph.FromCOO(0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if Locality(g) != 0 {
		t.Error("empty graph locality should be 0")
	}
	ring := graph.NewBuilder(10)
	for v := int32(0); v < 10; v++ {
		ring.AddEdge(v, (v+1)%10)
	}
	rg, err := ring.Build()
	if err != nil {
		t.Fatal(err)
	}
	if l := Locality(rg); l <= 0 {
		t.Errorf("ring locality = %v, want > 0", l)
	}
}
