package reorder

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// clusteredButScrambled builds a graph with strong community structure whose
// vertex ids are randomly scrambled, so a locality reorder has something to
// recover.
func clusteredButScrambled(t *testing.T, n, clusterSize, edgesPer int) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	scramble := rng.Perm(n)
	b := graph.NewBuilder(n)
	for c := 0; c < n/clusterSize; c++ {
		base := c * clusterSize
		for i := 0; i < clusterSize*edgesPer; i++ {
			u := base + rng.Intn(clusterSize)
			v := base + rng.Intn(clusterSize)
			b.AddEdge(int32(scramble[u]), int32(scramble[v]))
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func validPerm(t *testing.T, perm []int32, n int) {
	t.Helper()
	if len(perm) != n {
		t.Fatalf("perm length %d != %d", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || int(p) >= n || seen[p] {
			t.Fatalf("not a permutation")
		}
		seen[p] = true
	}
}

func TestBFSIsPermutation(t *testing.T) {
	g := clusteredButScrambled(t, 1000, 50, 4)
	perm := BFS(g)
	validPerm(t, perm, 1000)
}

func TestBFSImprovesLocality(t *testing.T) {
	g := clusteredButScrambled(t, 2000, 50, 4)
	before := Locality(g)
	g2, err := Apply(g, BFS(g))
	if err != nil {
		t.Fatal(err)
	}
	after := Locality(g2)
	if after >= before*0.5 {
		t.Errorf("BFS reorder should halve the mean edge gap: before %.4f after %.4f", before, after)
	}
}

func TestBFSDeterministic(t *testing.T) {
	g := clusteredButScrambled(t, 500, 25, 3)
	p1 := BFS(g)
	p2 := BFS(g)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("BFS reorder must be deterministic")
		}
	}
}

func TestBFSCoversIsolatedVertices(t *testing.T) {
	// Vertices 3 and 4 are isolated.
	g, err := graph.FromCOO(5, []int32{0, 1}, []int32{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	validPerm(t, BFS(g), 5)
}

func TestDegreeSort(t *testing.T) {
	// Star at vertex 7 of 10: vertex 7 should get new id 0.
	b := graph.NewBuilder(10)
	for v := int32(0); v < 10; v++ {
		if v != 7 {
			b.AddEdge(v, 7)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	perm := DegreeSort(g)
	validPerm(t, perm, 10)
	if perm[7] != 0 {
		t.Errorf("hub should be renumbered to 0, got %d", perm[7])
	}
}

func TestEdgeCutRange(t *testing.T) {
	g := clusteredButScrambled(t, 1000, 50, 4)
	for _, k := range []int{1, 2, 7, 20, 1000, 2000} {
		cut := EdgeCut(g, BlockOwners(Identity(g.NumVertices()), k))
		if cut < 0 || cut > 1 {
			t.Errorf("k=%d: edge cut %v outside [0,1]", k, cut)
		}
	}
}

func TestEdgeCutSinglePartIsZero(t *testing.T) {
	g := clusteredButScrambled(t, 500, 25, 3)
	if cut := EdgeCut(g, BlockOwners(Identity(g.NumVertices()), 1)); cut != 0 {
		t.Errorf("one part must cut nothing, got %v", cut)
	}
}

// TestEdgeCutRecoversClusters is the property the partition-seed selection
// rests on: on a clustered-but-scrambled graph, block-partitioning the BFS
// ordering must cut far fewer edges than block-partitioning the scrambled
// identity ordering, because BFS re-groups each cluster into one block.
func TestEdgeCutRecoversClusters(t *testing.T) {
	const n, clusterSize = 2000, 50
	g := clusteredButScrambled(t, n, clusterSize, 4)
	k := n / clusterSize // one block per cluster
	scrambled := EdgeCut(g, BlockOwners(Identity(n), k))
	bfs := EdgeCut(g, BlockOwners(BFS(g), k))
	if bfs >= scrambled*0.5 {
		t.Errorf("BFS blocks should halve the edge cut: scrambled %.4f bfs %.4f", scrambled, bfs)
	}
}

func TestEdgeCutDeterministic(t *testing.T) {
	g := clusteredButScrambled(t, 800, 40, 3)
	owner := BlockOwners(BFS(g), 10)
	if EdgeCut(g, owner) != EdgeCut(g, owner) {
		t.Fatal("EdgeCut must be deterministic")
	}
}

func TestBlockOwnersShapes(t *testing.T) {
	perm := Identity(10)
	for _, tc := range []struct {
		k       int
		maxPart int32
	}{{1, 0}, {3, 2}, {10, 9}, {25, 9}} {
		owner := BlockOwners(perm, tc.k)
		if len(owner) != 10 {
			t.Fatalf("k=%d: owner length %d", tc.k, len(owner))
		}
		var hi int32
		for _, p := range owner {
			if p < 0 {
				t.Fatalf("k=%d: negative part %d", tc.k, p)
			}
			if p > hi {
				hi = p
			}
		}
		if hi != tc.maxPart {
			t.Errorf("k=%d: max part %d, want %d", tc.k, hi, tc.maxPart)
		}
	}
	if got := BlockOwners(nil, 4); len(got) != 0 {
		t.Errorf("empty perm should give empty owners")
	}
}

func TestLocalityEdgeCases(t *testing.T) {
	g, err := graph.FromCOO(0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if Locality(g) != 0 {
		t.Error("empty graph locality should be 0")
	}
	ring := graph.NewBuilder(10)
	for v := int32(0); v < 10; v++ {
		ring.AddEdge(v, (v+1)%10)
	}
	rg, err := ring.Build()
	if err != nil {
		t.Fatal(err)
	}
	if l := Locality(rg); l <= 0 {
		t.Errorf("ring locality = %v, want > 0", l)
	}
}
