// Package reorder implements locality-improving node renumbering, the
// stand-in for Rabbit Order in the paper's Fig. 19 orthogonality study
// (§7.4): renumbering clusters connected vertices into nearby ids, which
// improves cache behaviour for any schedule; uGrapher's scheduling gains
// compose with it rather than competing.
package reorder

import (
	"sort"

	"repro/internal/graph"
)

// BFS returns a permutation (old id -> new id) from breadth-first traversal
// of the undirected view of g, seeded repeatedly from the lowest-degree
// unvisited vertex (Cuthill-McKee style). Neighbouring vertices receive
// nearby ids, concentrating each block's working set.
func BFS(g *graph.Graph) []int32 {
	n := g.NumVertices()
	perm := make([]int32, n)
	visited := make([]bool, n)

	// Seeds in ascending total-degree order.
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		da := g.InDegree(order[a]) + g.OutDegree(order[a])
		db := g.InDegree(order[b]) + g.OutDegree(order[b])
		if da != db {
			return da < db
		}
		return order[a] < order[b]
	})

	next := int32(0)
	queue := make([]int32, 0, n)
	neigh := make([]int32, 0, 64)
	for _, seed := range order {
		if visited[seed] {
			continue
		}
		visited[seed] = true
		queue = append(queue[:0], seed)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			perm[v] = next
			next++
			// Collect undirected neighbours in ascending id order for
			// determinism.
			neigh = neigh[:0]
			srcs, _ := g.InEdges(v)
			neigh = append(neigh, srcs...)
			dsts, _ := g.OutEdges(v)
			neigh = append(neigh, dsts...)
			sort.Slice(neigh, func(a, b int) bool { return neigh[a] < neigh[b] })
			for _, u := range neigh {
				if !visited[u] {
					visited[u] = true
					queue = append(queue, u)
				}
			}
		}
	}
	return perm
}

// DegreeSort returns a permutation placing high-in-degree vertices first —
// a simpler reordering that groups hub traffic (GNNAdvisor-style degree
// binning).
func DegreeSort(g *graph.Graph) []int32 {
	n := g.NumVertices()
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := g.InDegree(order[a]), g.InDegree(order[b])
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	perm := make([]int32, n)
	for newID, oldID := range order {
		perm[oldID] = int32(newID)
	}
	return perm
}

// Apply relabels g with the given permutation (old id -> new id).
func Apply(g *graph.Graph, perm []int32) (*graph.Graph, error) {
	return g.Relabel(perm)
}

// EdgeCut scores a partition: the fraction of edges whose endpoints lie in
// different parts of owner (vertex id -> part id), in [0, 1]. It is the
// companion metric to Locality for partitioned execution — Locality measures
// how tight an ordering is, EdgeCut how little a partition communicates.
// Vertices with an owner outside any part still count: only owner[src] ==
// owner[dst] keeps an edge internal.
func EdgeCut(g *graph.Graph, owner []int32) float64 {
	m := g.NumEdges()
	if m == 0 || len(owner) < g.NumVertices() {
		return 0
	}
	cut := 0
	for e := int32(0); e < int32(m); e++ {
		s, d := g.EdgeEndpoints(e)
		if owner[s] != owner[d] {
			cut++
		}
	}
	return float64(cut) / float64(m)
}

// BlockOwners turns an ordering permutation (old id -> new id) into a
// k-part partition by cutting the new-id space into contiguous blocks of
// ceil(n/k) vertices: owner[v] = block of perm[v]. A locality-improving
// permutation therefore yields a locality-improving partition — the shard
// partitioner scores candidate orderings this way with EdgeCut. k > n
// produces trailing empty parts; k <= 0 is treated as 1.
func BlockOwners(perm []int32, k int) []int32 {
	n := len(perm)
	owner := make([]int32, n)
	if n == 0 {
		return owner
	}
	if k <= 0 {
		k = 1
	}
	block := (n + k - 1) / k
	for v, p := range perm {
		owner[v] = p / int32(block)
	}
	return owner
}

// Identity returns the identity permutation over n vertices, the "no
// reordering" candidate partition seeds compare against.
func Identity(n int) []int32 {
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	return perm
}

// Locality scores an ordering: the mean |src - dst| gap over edges,
// normalised by vertex count (lower is better). Used to verify a reorder
// actually tightened the graph.
func Locality(g *graph.Graph) float64 {
	m := g.NumEdges()
	if m == 0 || g.NumVertices() == 0 {
		return 0
	}
	var sum float64
	for e := int32(0); e < int32(m); e++ {
		s, d := g.EdgeEndpoints(e)
		gap := float64(s - d)
		if gap < 0 {
			gap = -gap
		}
		sum += gap
	}
	return sum / float64(m) / float64(g.NumVertices())
}
