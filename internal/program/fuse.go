package program

import (
	"strings"

	"repro/internal/ops"
	"repro/internal/tensor"
)

// The fusion pass (paper §5.2): recorded programs always spell aggregations
// as the decomposed two-kernel form — an explicit message-creation operator
// that materialises |E| x F edge messages, followed by a pure scatter that
// reduces them — because that form is the common denominator every engine
// can run (PyG never fuses). Engines that do fuse get the single-kernel form
// back here, at compile time, by pattern-matching materialise+scatter pairs
// and merging them into one fused-aggregation operator. The merged operator
// reads the original vertex/edge operands directly during the reduction, so
// the |E| x F intermediate never exists — the "redundant accesses" of §2.

// fuseCandidate reports whether node n materialises edge messages in the
// canonical decomposed shape: a non-reducing gather writing an edge tensor.
func fuseCandidate(n *Node) bool {
	return n.Op == OpGraph &&
		n.GOp.CKind == tensor.EdgeK &&
		n.GOp.GatherOp == ops.GatherCopyRHS
}

// fuseScatter reports whether node n is the canonical pure scatter: copy the
// edge tensor through and reduce per destination.
func fuseScatter(n *Node) bool {
	return n.Op == OpGraph &&
		n.GOp.EdgeOp == ops.CopyRHS &&
		n.GOp.GatherOp.IsReduction() &&
		n.GOp.AKind == tensor.Null &&
		n.GOp.BKind == tensor.EdgeK &&
		n.GOp.CKind == tensor.DstV
}

// mergedName strips the decomposition suffixes so the fused operator carries
// the stage name the interpreter would use ("GCN_L1_Aggr_materialize" +
// "GCN_L1_Aggr_scatter" -> "GCN_L1_Aggr"). Pairs outside the canonical
// naming convention get a bounded fallback — the materialise name truncated
// plus a "_fused" marker — so merged labels stay stable and short instead of
// concatenating two arbitrary stage names.
func mergedName(mat, scat string) string {
	if base := strings.TrimSuffix(mat, "_materialize"); base != mat && base == strings.TrimSuffix(scat, "_scatter") {
		return base
	}
	const maxBase = 24
	if len(mat) > maxBase {
		mat = mat[:maxBase]
	}
	return mat + "_fused"
}

// Fuse merges every materialise+scatter pair whose intermediate edge tensor
// has exactly one consumer into a single fused-aggregation graph operator.
// It returns a new Program (sharing the value table — ValueIDs stay stable)
// and the number of pairs fused. Programs without matching pairs come back
// unchanged (same node slice contents, new Program header).
func Fuse(p *Program) (*Program, int) {
	uses := useCounts(p)
	// scatterFor[v] = index of the unique scatter consuming value v, when v is
	// produced by a fuse candidate and consumed exactly once.
	fused := 0
	consumed := make(map[int]bool) // scatter node indices folded away
	replace := make(map[int]Node)  // materialise node index -> merged node

	for i := range p.Nodes {
		mat := &p.Nodes[i]
		if !fuseCandidate(mat) || uses[mat.Out] != 1 || mat.Out == p.Output {
			continue
		}
		// Find the single consumer; it must be a canonical scatter reading the
		// messages as operand B.
		for j := i + 1; j < len(p.Nodes); j++ {
			scat := &p.Nodes[j]
			if !readsValue(scat, mat.Out) {
				continue
			}
			if !fuseScatter(scat) || scat.Y != mat.Out || consumed[j] {
				break
			}
			merged := Node{
				Op:    OpGraph,
				Name:  mergedName(mat.Name, scat.Name),
				X:     mat.X,
				Y:     mat.Y,
				Out:   scat.Out,
				Fused: true,
				GOp: ops.OpInfo{
					EdgeOp:   mat.GOp.EdgeOp,
					GatherOp: scat.GOp.GatherOp,
					AKind:    mat.GOp.AKind,
					BKind:    mat.GOp.BKind,
					CKind:    tensor.DstV,
				},
			}
			if merged.GOp.Validate() != nil {
				break // not a legal fused form; keep the pair
			}
			replace[i] = merged
			consumed[j] = true
			fused++
			break
		}
	}

	out := &Program{
		Model: p.Model, InCols: p.InCols, Classes: p.Classes,
		Values: p.Values, Input: p.Input, Output: p.Output,
	}
	out.Nodes = make([]Node, 0, len(p.Nodes)-fused)
	for i := range p.Nodes {
		if consumed[i] {
			continue
		}
		if m, ok := replace[i]; ok {
			out.Nodes = append(out.Nodes, m)
			continue
		}
		out.Nodes = append(out.Nodes, p.Nodes[i])
	}
	return out, fused
}

// EliminateDead removes nodes whose result is transitively unused (the
// orphaned constants and stages fusion can leave behind). The input node is
// always kept — Run binds caller data to it. Returns the pruned program and
// the number of nodes removed.
func EliminateDead(p *Program) (*Program, int) {
	live := make([]bool, len(p.Values))
	live[p.Output] = true
	live[p.Input] = true
	// Nodes are in topological order, so one reverse sweep settles liveness.
	keep := make([]bool, len(p.Nodes))
	for i := len(p.Nodes) - 1; i >= 0; i-- {
		n := &p.Nodes[i]
		if !live[n.Out] && n.Op != OpInput {
			continue
		}
		keep[i] = true
		if n.X != NoValue {
			live[n.X] = true
		}
		if n.Y != NoValue {
			live[n.Y] = true
		}
	}
	removed := 0
	out := &Program{
		Model: p.Model, InCols: p.InCols, Classes: p.Classes,
		Values: p.Values, Input: p.Input, Output: p.Output,
	}
	out.Nodes = make([]Node, 0, len(p.Nodes))
	for i := range p.Nodes {
		if !keep[i] {
			removed++
			continue
		}
		out.Nodes = append(out.Nodes, p.Nodes[i])
	}
	return out, removed
}

// useCounts tallies how many node operands read each value.
func useCounts(p *Program) []int {
	uses := make([]int, len(p.Values))
	for i := range p.Nodes {
		n := &p.Nodes[i]
		if n.X != NoValue {
			uses[n.X]++
		}
		if n.Y != NoValue {
			uses[n.Y]++
		}
	}
	return uses
}

// readsValue reports whether node n reads v.
func readsValue(n *Node, v ValueID) bool { return n.X == v || n.Y == v }
