package program

import (
	"errors"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// The bridge to the static verifier: Compile hands the analysis layer its
// own view of the pre-fusion program, the compiled program and the buffer
// plan, and aborts on any violation. The faultinject corruption points
// mutate ONLY that view (freshly copied slices), never the real compile
// artifacts — so the fault-injection suite can prove every rule fires while
// a corrupted compilation still fails safely.

// kindOf maps a NodeOp to the verifier's coarser node classification.
func kindOf(op NodeOp) analysis.NodeKind {
	switch op {
	case OpInput:
		return analysis.KindInput
	case OpConst:
		return analysis.KindConst
	case OpUnary:
		return analysis.KindUnary
	case OpAddScaled:
		return analysis.KindAddScaled
	case OpGraph:
		return analysis.KindGraph
	default:
		return analysis.KindOther
	}
}

// irOf converts a Program into the verifier's exchange form. The slices are
// fresh, so corruption passes may mutate them freely.
func irOf(p *Program) *analysis.ProgramIR {
	ir := &analysis.ProgramIR{
		Values: make([]analysis.IRValue, len(p.Values)),
		Nodes:  make([]analysis.IRNode, len(p.Nodes)),
		Input:  int(p.Input),
		Output: int(p.Output),
	}
	for i, v := range p.Values {
		rows := analysis.VertexRows
		if v.Rows == EdgeRows {
			rows = analysis.EdgeRows
		}
		ir.Values[i] = analysis.IRValue{Rows: rows, Cols: v.Cols, Const: v.Const}
	}
	for i := range p.Nodes {
		n := &p.Nodes[i]
		in := analysis.IRNode{
			Name: n.Name, Kind: kindOf(n.Op),
			X: int(n.X), Y: int(n.Y), Out: int(n.Out),
			Op: n.GOp, Fused: n.Fused,
			Chain: elemsOf(n.Chain),
		}
		if r := n.Region; r != nil {
			in.HasRegion = true
			in.PreX = elemsOf(r.PreX)
			in.PreY = elemsOf(r.PreY)
			in.Post = elemsOf(r.Post)
			in.RegionSavedBytes = r.SavedBytes
		}
		ir.Nodes[i] = in
	}
	return ir
}

// elemsOf converts a unary chain into the verifier's primitive mirror. The
// slice is fresh, so corruption passes may mutate it freely.
func elemsOf(chain []Unary) []analysis.Elem {
	if len(chain) == 0 {
		return nil
	}
	es := make([]analysis.Elem, len(chain))
	for i, u := range chain {
		es[i] = analysis.Elem{Kind: uint8(u.Kind), Alpha: u.Alpha}
	}
	return es
}

// factsOf converts a buffer plan into the verifier's exchange form, copying
// the plan slices so corruption never reaches the real plan.
func factsOf(plan *BufferPlan, numV, numE int) *analysis.BufferFacts {
	return &analysis.BufferFacts{
		Assign:      append([]int(nil), plan.Assign...),
		InPlace:     append([]bool(nil), plan.InPlace...),
		SlotFloats:  append([]int(nil), plan.SlotFloats...),
		NumVertices: numV,
		NumEdges:    numE,
	}
}

// verifyCompilation runs the mandatory program-level verification for one
// compilation: pre is the recorded program, post the fused+pruned one.
func verifyCompilation(pre, post *Program, plan *BufferPlan, numV, numE int) error {
	c := analysis.ProgramCheck{
		Subject:     post.Model,
		Pre:         irOf(pre),
		Post:        irOf(post),
		Plan:        factsOf(plan, numV, numE),
		NumVertices: numV,
		NumEdges:    numE,
	}
	corruptCheck(&c)
	return analysis.VerifyProgram(c)
}

// verifyStepLowerings cross-checks each lowered graph kernel's declared
// write-conflict discipline against the re-derived analysis, collecting
// diagnostics instead of failing fast (used by both Compile and Verify).
func verifyStepLowerings(cp *CompiledProgram) []analysis.Diagnostic {
	var diags []analysis.Diagnostic
	for i := range cp.steps {
		st := &cp.steps[i]
		if st.kern == nil {
			continue
		}
		cr, ok := st.kern.(core.ConflictReporter)
		if !ok {
			continue
		}
		p := st.kern.Plan()
		err := analysis.VerifyLowering(analysis.PlanFacts{
			Op:             p.Op,
			Schedule:       p.Schedule.Strategy.Code(),
			VertexParallel: p.Schedule.Strategy.VertexParallel(),
			NeedsAtomic:    p.NeedsAtomic,
		}, cr.ConflictHandling())
		var ve *analysis.VerifyError
		if errors.As(err, &ve) {
			diags = append(diags, ve.Diags...)
		}
	}
	return diags
}

// waveFactsOf builds the wave verifier's view of the compiled schedule.
// Effects, edges and waves are all fresh copies, so the corruption point
// mutates only the view — the compiled artifacts stay intact.
func (cp *CompiledProgram) waveFactsOf() analysis.WaveFacts {
	f := analysis.WaveFacts{
		Subject: cp.prog.Model,
		Steps:   cp.stepEffects(),
		Edges:   append([]analysis.DepEdge(nil), cp.depEdges...),
		Waves:   make([][]int, len(cp.waves)),
	}
	for i, w := range cp.waves {
		f.Waves[i] = append([]int(nil), w...)
	}
	return f
}

// verifyWaveSchedule runs the mandatory wave rules (step-deps-sound,
// wave-legal) over the compiled dependence DAG and wave schedule.
func (cp *CompiledProgram) verifyWaveSchedule() error {
	f := cp.waveFactsOf()
	if faultinject.Fire(faultinject.CorruptWaveSchedule) {
		corruptWaves(&f, faultinject.SpecOf(faultinject.CorruptWaveSchedule).Seed)
	}
	return analysis.VerifyWaves(f)
}

// Verify re-runs the full static analysis over the compiled program — the
// program-level rules, the per-kernel lowering cross-check, and the wave
// rules — and returns a structured report. Compilation already ran the same
// checks and failed on violations, so a clean compile reports clean here
// unless a corruption point is armed.
func (cp *CompiledProgram) Verify() analysis.Report {
	rep := analysis.Report{
		Subject: cp.prog.Model,
		RulesChecked: append(append(append([]string(nil), analysis.ProgramRules...),
			analysis.RuleWriteConflict), analysis.WaveRules...),
	}
	err := verifyCompilation(cp.pre, cp.prog, cp.plan, cp.g.NumVertices(), cp.g.NumEdges())
	var ve *analysis.VerifyError
	if errors.As(err, &ve) {
		rep.Diags = append(rep.Diags, ve.Diags...)
	}
	rep.Diags = append(rep.Diags, verifyStepLowerings(cp)...)
	if errors.As(cp.verifyWaveSchedule(), &ve) {
		rep.Diags = append(rep.Diags, ve.Diags...)
	}
	return rep
}

// corruptCheck applies any armed plan-corruption faults to the verifier's
// view. Each point's Spec.Seed selects the corrupted rule variant (see the
// faultinject.Corrupt* docs).
func corruptCheck(c *analysis.ProgramCheck) {
	if faultinject.Fire(faultinject.CorruptOperandKind) {
		corruptOperand(c, faultinject.SpecOf(faultinject.CorruptOperandKind).Seed)
	}
	if faultinject.Fire(faultinject.CorruptFusion) {
		corruptFusion(c, faultinject.SpecOf(faultinject.CorruptFusion).Seed)
	}
	if faultinject.Fire(faultinject.CorruptFusionRegion) {
		corruptRegion(c, faultinject.SpecOf(faultinject.CorruptFusionRegion).Seed)
	}
	if faultinject.Fire(faultinject.CorruptBufferPlan) {
		corruptBuffers(c, faultinject.SpecOf(faultinject.CorruptBufferPlan).Seed)
	}
}

// firstGraphNode returns the index of the first graph node in ir, or -1.
func firstGraphNode(ir *analysis.ProgramIR) int {
	for i := range ir.Nodes {
		if ir.Nodes[i].Kind == analysis.KindGraph {
			return i
		}
	}
	return -1
}

// corruptOperand corrupts the compiled view's typing. Seed 0 flips a graph
// operand's addressing class; seed 1 points a node outside the value table.
func corruptOperand(c *analysis.ProgramCheck, seed uint64) {
	i := firstGraphNode(c.Post)
	if i < 0 {
		return
	}
	n := &c.Post.Nodes[i]
	if seed == 1 {
		n.Out = len(c.Post.Values) + 7
		return
	}
	flip := func(k tensor.Kind) tensor.Kind {
		if k == tensor.EdgeK {
			return tensor.SrcV
		}
		return tensor.EdgeK
	}
	if n.Op.AKind != tensor.Null {
		n.Op.AKind = flip(n.Op.AKind)
	} else {
		n.Op.BKind = flip(n.Op.BKind)
	}
}

// corruptFusion corrupts the fusion bookkeeping. Seed 0 mis-merges a fused
// operator (or toggles a Fused marker when no pair fused); seed 1 declares a
// fused intermediate to be the program output; seed 2 drops a live node from
// the compiled view.
func corruptFusion(c *analysis.ProgramCheck, seed uint64) {
	switch seed {
	case 1:
		if c.Pre == nil {
			return
		}
		// Find the recorded scatter: its Y operand is the intermediate the
		// fusion pass erased. (Looked up in the pre view directly, since a
		// fused node's output may have moved past an absorbed epilogue.)
		for j := range c.Pre.Nodes {
			d := &c.Pre.Nodes[j]
			if d.Kind == analysis.KindGraph && d.Op.EdgeOp == ops.CopyRHS &&
				d.Op.GatherOp.IsReduction() && d.Op.BKind == tensor.EdgeK &&
				d.Op.CKind == tensor.DstV {
				c.Pre.Output = d.Y
				return
			}
		}
	case 2:
		i := firstGraphNode(c.Post)
		if i < 0 {
			return
		}
		c.Post.Nodes = append(c.Post.Nodes[:i:i], c.Post.Nodes[i+1:]...)
		if c.Plan != nil && i < len(c.Plan.InPlace) {
			c.Plan.InPlace = append(c.Plan.InPlace[:i:i], c.Plan.InPlace[i+1:]...)
		}
	default:
		// Mis-merge the fused operator's reduction: the op-composition check
		// fires fusion-pair whether the node is a bare pair or a region head.
		for i := range c.Post.Nodes {
			n := &c.Post.Nodes[i]
			if !n.Fused {
				continue
			}
			if n.Op.GatherOp == ops.GatherSum {
				n.Op.GatherOp = ops.GatherMax
			} else {
				n.Op.GatherOp = ops.GatherSum
			}
			return
		}
		for i := range c.Post.Nodes {
			n := &c.Post.Nodes[i]
			if n.Kind == analysis.KindGraph && n.Op.CKind == tensor.DstV {
				n.Fused = true
				return
			}
		}
	}
}

// corruptRegion corrupts a fusion region's verified metadata. Seed 0
// inflates the claimed saved bytes past any recomputable bound; seed 1
// rewrites the absorbed epilogue chain so it no longer matches the recorded
// unary node; seed 2 appends a phantom consumer of the region's erased
// interior value to the pre-fusion view.
func corruptRegion(c *analysis.ProgramCheck, seed uint64) {
	ri := -1
	for i := range c.Post.Nodes {
		n := &c.Post.Nodes[i]
		if n.HasRegion && len(n.Post) > 0 {
			ri = i
			break
		}
	}
	if ri < 0 {
		return
	}
	n := &c.Post.Nodes[ri]
	switch seed {
	case 1:
		n.Post[0].Kind = 255
	case 2:
		if c.Pre == nil {
			return
		}
		// The pre node defining the region output is the absorbed epilogue
		// unary; its X operand is the erased interior value. A phantom
		// second consumer of that value makes the absorption illegal.
		for j := range c.Pre.Nodes {
			d := &c.Pre.Nodes[j]
			if d.Out != n.Out || d.Kind != analysis.KindUnary {
				continue
			}
			c.Pre.Values = append(c.Pre.Values, c.Pre.Values[d.X])
			c.Pre.Nodes = append(c.Pre.Nodes, analysis.IRNode{
				Name: "phantom", Kind: analysis.KindUnary,
				X: d.X, Y: analysis.NoValue, Out: len(c.Pre.Values) - 1,
				Chain: append([]analysis.Elem(nil), d.Chain...),
			})
			return
		}
	default:
		n.RegionSavedBytes = 1 << 50
	}
}

// corruptWaves corrupts the wave verifier's view. Seed 0 drops the last
// hazard edge from the DAG (step-deps-sound); seed 1 hoists a dependent
// step into its producer's wave (wave-legal); seed 2 makes the first two
// steps share a phantom scratch block and a wave (wave-legal, plus
// step-deps-sound for the now-missing scratch edge).
func corruptWaves(f *analysis.WaveFacts, seed uint64) {
	switch seed {
	case 1:
		if len(f.Edges) == 0 {
			return
		}
		e := f.Edges[0]
		var wFrom int
		for w, wave := range f.Waves {
			for _, s := range wave {
				if s == e.From {
					wFrom = w
				}
			}
		}
		for w, wave := range f.Waves {
			for k, s := range wave {
				if s == e.To && w != wFrom {
					f.Waves[w] = append(wave[:k:k], wave[k+1:]...)
					f.Waves[wFrom] = append(f.Waves[wFrom], e.To)
					return
				}
			}
		}
	case 2:
		if len(f.Steps) < 2 {
			return
		}
		f.Steps[0].ScratchID = 7777
		f.Steps[1].ScratchID = 7777
		var w0 int
		for w, wave := range f.Waves {
			for _, s := range wave {
				if s == 0 {
					w0 = w
				}
			}
		}
		for w, wave := range f.Waves {
			for k, s := range wave {
				if s == 1 && w != w0 {
					f.Waves[w] = append(wave[:k:k], wave[k+1:]...)
					f.Waves[w0] = append(f.Waves[w0], 1)
					return
				}
			}
		}
	default:
		if n := len(f.Edges); n > 0 {
			f.Edges = f.Edges[:n-1]
		}
	}
}

// corruptBuffers corrupts the verified buffer plan. Seed 0 aliases a
// node's output onto a live operand's slot; seed 1 shrinks the output
// value's slot; seed 2 marks a non-elementwise node in-place.
func corruptBuffers(c *analysis.ProgramCheck, seed uint64) {
	if c.Plan == nil {
		return
	}
	switch seed {
	case 1:
		out := c.Post.Output
		if out >= 0 && out < len(c.Plan.Assign) {
			if s := c.Plan.Assign[out]; s >= 0 && s < len(c.Plan.SlotFloats) {
				c.Plan.SlotFloats[s] = 0
			}
		}
	case 2:
		for i := range c.Post.Nodes {
			n := &c.Post.Nodes[i]
			if !n.Kind.Elementwise() && n.Kind != analysis.KindConst && n.Kind != analysis.KindInput &&
				n.X != analysis.NoValue && i < len(c.Plan.InPlace) {
				c.Plan.InPlace[i] = true
				return
			}
		}
	default:
		for i := range c.Post.Nodes {
			n := &c.Post.Nodes[i]
			if n.Kind.Elementwise() || n.X == analysis.NoValue {
				continue
			}
			if n.X >= len(c.Plan.Assign) || n.Out >= len(c.Plan.Assign) {
				continue
			}
			sx, so := c.Plan.Assign[n.X], c.Plan.Assign[n.Out]
			if sx >= 0 && so >= 0 && sx != so {
				c.Plan.Assign[n.Out] = sx
				return
			}
		}
	}
}
