package program

import (
	"errors"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/ops"
	"repro/internal/tensor"
)

func TestVerifyCleanCompile(t *testing.T) {
	g := testGraph(t, 11, 60, 400)
	p, _, _ := toyProgram(t, g, 4, 3)
	for _, fuse := range []bool{true, false} {
		cp, err := Compile(p, g, stubScheduler{sched: core.DefaultSchedule, fuse: fuse}, core.ReferenceBackend())
		if err != nil {
			t.Fatalf("fuse=%v: %v", fuse, err)
		}
		rep := cp.Verify()
		if !rep.OK() {
			t.Errorf("fuse=%v: clean compile reports violations: %v", fuse, rep.Diags)
		}
		if len(rep.RulesChecked) == 0 || rep.Subject != "toy" {
			t.Errorf("fuse=%v: report incomplete: %+v", fuse, rep)
		}
	}
}

// TestCorruptionFiresEachRule arms every plan-corruption point/seed variant
// and proves the matching verifier rule rejects the compilation. The
// corruption mutates only the verified view, so a firing rule must abort
// Compile — silence would mean the rule cannot catch the bug it claims to.
func TestCorruptionFiresEachRule(t *testing.T) {
	g := testGraph(t, 12, 60, 400)
	p, _, _ := toyProgram(t, g, 4, 3)
	cases := []struct {
		point faultinject.Point
		seed  uint64
		rule  string
	}{
		{faultinject.CorruptOperandKind, 0, analysis.RuleOperandType},
		{faultinject.CorruptOperandKind, 1, analysis.RuleSSAForm},
		{faultinject.CorruptFusion, 0, analysis.RuleFusionPair},
		{faultinject.CorruptFusion, 1, analysis.RuleFusionSingleConsumer},
		{faultinject.CorruptFusion, 2, analysis.RuleDCESoundness},
		{faultinject.CorruptFusionRegion, 0, analysis.RuleFusionRegionCost},
		{faultinject.CorruptFusionRegion, 1, analysis.RuleFusionRegion},
		{faultinject.CorruptFusionRegion, 2, analysis.RuleFusionRegion},
		{faultinject.CorruptBufferPlan, 0, analysis.RuleBufferAlias},
		{faultinject.CorruptBufferPlan, 1, analysis.RuleBufferCapacity},
		{faultinject.CorruptBufferPlan, 2, analysis.RuleInPlace},
		{faultinject.CorruptAtomicFlag, 0, analysis.RuleWriteConflict},
	}
	for _, tc := range cases {
		t.Run(tc.rule, func(t *testing.T) {
			t.Cleanup(faultinject.Reset)
			faultinject.Arm(tc.point, faultinject.Spec{Every: 1, Seed: tc.seed})
			_, err := Compile(p, g, stubScheduler{sched: core.DefaultSchedule, fuse: true}, core.ReferenceBackend())
			if err == nil {
				t.Fatalf("corrupted compile succeeded; %s rule never fired", tc.rule)
			}
			var ve *analysis.VerifyError
			if !errors.As(err, &ve) {
				t.Fatalf("want *analysis.VerifyError, got %T: %v", err, err)
			}
			if !ve.HasRule(tc.rule) {
				t.Fatalf("want rule %s, got: %v", tc.rule, ve.Diags)
			}
			if faultinject.Fires(tc.point) == 0 {
				t.Fatalf("point %s never fired", tc.point)
			}
		})
	}
}

// readAfterScatterProgram builds the GAT-softmax shape where the edge
// intermediate is read again after its scatter: mat feeds both the sum
// scatter and a later normalisation that divides mat by that sum.
func readAfterScatterProgram(t *testing.T, numEdges int) *Program {
	t.Helper()
	b := NewBuilder("ras", 4, 4)
	in := b.Input(4)
	ew := tensor.NewDense(numEdges, 1)
	ew.Fill(1)
	ewv := b.Const("ew", ew, EdgeRows)
	mat := b.GraphOp("att_materialize", ops.OpInfo{
		EdgeOp: ops.EdgeMul, GatherOp: ops.GatherCopyRHS,
		AKind: tensor.SrcV, BKind: tensor.EdgeK, CKind: tensor.EdgeK,
	}, in, ewv, 4)
	denom := b.GraphOp("att_scatter", ops.OpInfo{
		EdgeOp: ops.CopyRHS, GatherOp: ops.GatherSum,
		AKind: tensor.Null, BKind: tensor.EdgeK, CKind: tensor.DstV,
	}, NoValue, mat, 4)
	norm := b.GraphOp("att_normalize", ops.OpInfo{
		EdgeOp: ops.EdgeDiv, GatherOp: ops.GatherCopyRHS,
		AKind: tensor.EdgeK, BKind: tensor.DstV, CKind: tensor.EdgeK,
	}, mat, denom, 4)
	out := b.GraphOp("out_scatter", ops.OpInfo{
		EdgeOp: ops.CopyRHS, GatherOp: ops.GatherSum,
		AKind: tensor.Null, BKind: tensor.EdgeK, CKind: tensor.DstV,
	}, NoValue, norm, 4)
	b.SetOutput(out)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestFuseSkipsReadAfterScatter: the materialise whose output is re-read
// after its scatter must not merge into it; only the tail pair (normalise +
// final scatter) is a legal fusion.
func TestFuseSkipsReadAfterScatter(t *testing.T) {
	g := testGraph(t, 13, 40, 200)
	p := readAfterScatterProgram(t, g.NumEdges())
	fp, pairs := Fuse(p)
	if pairs != 1 {
		t.Fatalf("fused pairs = %d, want 1 (only the tail pair is single-consumer)", pairs)
	}
	if got := fp.GraphOpCount(); got != 3 {
		t.Fatalf("post-fusion graph ops = %d, want 3", got)
	}
	// The shared intermediate's producer and its scatter must both survive.
	names := map[string]bool{}
	for i := range fp.Nodes {
		names[fp.Nodes[i].Name] = true
	}
	for _, want := range []string{"att_materialize", "att_scatter"} {
		if !names[want] {
			t.Errorf("node %q was fused away despite its multi-consumer intermediate", want)
		}
	}
	// End to end, the legal fusion must verify clean.
	cp, err := Compile(p, g, stubScheduler{sched: core.DefaultSchedule, fuse: true}, core.ReferenceBackend())
	if err != nil {
		t.Fatal(err)
	}
	if rep := cp.Verify(); !rep.OK() {
		t.Errorf("legal compile reports violations: %v", rep.Diags)
	}
}

// TestVerifierRejectsIllegalHandFusion merges the read-after-scatter pair by
// hand — the rewrite Fuse correctly refuses — and proves the verifier
// rejects it.
func TestVerifierRejectsIllegalHandFusion(t *testing.T) {
	g := testGraph(t, 14, 40, 200)
	p := readAfterScatterProgram(t, g.NumEdges())
	pre := irOf(p)

	// Build the illegal post program: drop the materialise and its scatter,
	// replace them with one fused node, leaving the normalise reading an
	// erased intermediate.
	var matOut, scatOut, matX, matY int
	post := &analysis.ProgramIR{Values: pre.Values, Input: pre.Input, Output: pre.Output}
	for _, n := range pre.Nodes {
		switch n.Name {
		case "att_materialize":
			matOut, matX, matY = n.Out, n.X, n.Y
		case "att_scatter":
			scatOut = n.Out
		default:
			post.Nodes = append(post.Nodes, n)
		}
	}
	post.Nodes = append(post.Nodes, analysis.IRNode{
		Name: "att", Kind: analysis.KindGraph, X: matX, Y: matY, Out: scatOut, Fused: true,
		Op: ops.OpInfo{EdgeOp: ops.EdgeMul, GatherOp: ops.GatherSum,
			AKind: tensor.SrcV, BKind: tensor.EdgeK, CKind: tensor.DstV},
	})
	_ = matOut

	err := analysis.VerifyProgram(analysis.ProgramCheck{Subject: "ras", Pre: pre, Post: post})
	if err == nil {
		t.Fatal("illegal hand-fusion verified clean")
	}
	var ve *analysis.VerifyError
	if !errors.As(err, &ve) {
		t.Fatalf("want *analysis.VerifyError, got %T", err)
	}
	if !ve.HasRule(analysis.RuleFusionSingleConsumer) {
		t.Fatalf("want %s, got: %v", analysis.RuleFusionSingleConsumer, ve.Diags)
	}
}

// TestCoreCompileRejectsCorruptAtomicFlag exercises the plan-level hook
// directly: core.Compile must fail when the verified atomic bit is flipped,
// for both parallelism classes.
func TestCoreCompileRejectsCorruptAtomicFlag(t *testing.T) {
	op := ops.AggrSum
	for _, s := range core.Strategies {
		t.Run(s.Code(), func(t *testing.T) {
			t.Cleanup(faultinject.Reset)
			sched := core.Schedule{Strategy: s, Group: 1, Tile: 1}
			if _, err := core.Compile(op, sched); err != nil {
				t.Fatalf("clean compile failed: %v", err)
			}
			faultinject.Arm(faultinject.CorruptAtomicFlag, faultinject.Spec{Every: 1})
			_, err := core.Compile(op, sched)
			var ve *analysis.VerifyError
			if !errors.As(err, &ve) || !ve.HasRule(analysis.RuleWriteConflict) {
				t.Fatalf("want write-conflict violation, got %v", err)
			}
		})
	}
}
