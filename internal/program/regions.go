package program

import (
	"fmt"
)

// Fusion regions generalise the pair rewrite of fuse.go: instead of only
// merging materialise+scatter pairs, the compiler grows each graph operator
// into a maximal legal *region* — the operator plus the single-consumer
// elementwise chains feeding its operands (prologues, staged at launch) and
// the single-consumer elementwise chain consuming its output (the epilogue,
// applied in place after the reduction) — and lowers the whole region as one
// composed kernel (core.ComposeRegion). The pair rewrite falls out as the
// degenerate region with no absorbed chains.
//
// Growth is cost-modeled, not unconditional. Absorbing an epilogue always
// wins (the interior tensor's write+read round trip disappears and a kernel
// launch is saved), but absorbing a prologue only trades a launch for a
// staging copy — worth it for small operands, a loss for large ones. The
// CostModel quantifies both; the static verifier re-derives an independent
// upper bound on every claimed saving (analysis.RuleFusionRegionCost), so a
// cost-model bug cannot silently mis-shape compiled programs.

// CostModel prices fusion-region decisions in bytes of saved memory traffic.
type CostModel struct {
	// LaunchOverheadBytes is the traffic-equivalent cost of one kernel
	// launch: absorbing a node always saves one launch, worth this many
	// bytes of avoided traffic.
	LaunchOverheadBytes int64
	// StagingPenalty scales the staging-copy cost of prologue absorption:
	// staging re-reads and re-writes the operand, so absorbing a prologue
	// over a value of b bytes costs StagingPenalty*b against the saved
	// launch.
	StagingPenalty float64
}

// DefaultCostModel is the model Compile uses: a launch is worth 16 KiB of
// traffic (a host parallel-dispatch round trip), and a staging copy costs
// half the staged bytes (one write plus a cache-warm re-read).
func DefaultCostModel() CostModel {
	return CostModel{LaunchOverheadBytes: 1 << 14, StagingPenalty: 0.5}
}

// RegionInfo annotates a graph node that heads a fusion region. The static
// verifier decomposes the region back into the recorded program using
// exactly these fields (analysis.RuleFusionRegion), so they are part of the
// verified compile contract, not just bookkeeping.
type RegionInfo struct {
	// Name is the bounded region label ("<base>_region<N>") used for the
	// composed kernel's telemetry site.
	Name string
	// PreX and PreY are elementwise chains absorbed into the operand reads:
	// the region stages chain(operand) into a compile-time buffer before the
	// graph kernel runs. Ordered producer-first (the verifier peels from the
	// tail).
	PreX, PreY []Unary
	// Post is the epilogue chain applied in place to the region output after
	// the graph kernel runs.
	Post []Unary
	// Absorbed counts the recorded nodes folded into the region beyond the
	// materialise+scatter pair itself.
	Absorbed int
	// SavedBytes is the cost model's claimed traffic saving for the whole
	// region (pair intermediate plus absorbed chains).
	SavedBytes int64
}

// RegionStats summarises what FuseRegions did.
type RegionStats struct {
	// Pairs is how many materialise+scatter pairs merged (same as Fuse).
	Pairs int
	// Regions is how many regions absorbed at least one node beyond the
	// pair rewrite.
	Regions int
	// Absorbed is the total count of absorbed prologue/epilogue nodes.
	Absorbed int
	// SavedBytes is the cost model's total claimed traffic saving.
	SavedBytes int64
}

// RegionPolicy is an optional Scheduler extension: schedulers that implement
// it control whether Compile grows fusion regions beyond pair fusion.
// Schedulers without it get regions whenever they fuse at all.
type RegionPolicy interface {
	// FusionRegions reports whether cost-modeled region growth is enabled.
	FusionRegions() bool
}

// regionName builds the bounded region label: the head node's name truncated
// to keep telemetry labels short, plus a stable per-program sequence number.
func regionName(base string, seq int) string {
	const maxBase = 24
	if len(base) > maxBase {
		base = base[:maxBase]
	}
	return fmt.Sprintf("%s_region%d", base, seq)
}

// FuseRegions runs pair fusion and then grows cost-accepted fusion regions
// around every graph operator: single-consumer elementwise epilogues are
// absorbed into the output, and single-consumer elementwise prologues into
// the operand reads when the cost model accepts the trade. Every fused pair
// is annotated with a RegionInfo (the degenerate region) so the verifier's
// region rules cover the whole fusion surface. Returns the rewritten
// program (value table shared, like Fuse) and the region statistics.
func FuseRegions(p *Program, numV, numE int, cm CostModel) (*Program, RegionStats) {
	var stats RegionStats
	work, pairs := Fuse(p)
	stats.Pairs = pairs

	bytesOf := func(v ValueID) int64 {
		val := work.Values[v]
		rows := int64(numV)
		if val.Rows == EdgeRows {
			rows = int64(numE)
		}
		return 4 * rows * int64(val.Cols)
	}

	nodes := append([]Node(nil), work.Nodes...)
	removed := make([]bool, len(nodes))
	defIdx := make(map[ValueID]int, len(nodes))
	uses := make([]int, len(work.Values))
	for i := range nodes {
		defIdx[nodes[i].Out] = i
		if x := nodes[i].X; x != NoValue {
			uses[x]++
		}
		if y := nodes[i].Y; y != NoValue {
			uses[y]++
		}
	}
	// consumerOf finds the unique node reading v (valid only when uses[v]==1).
	consumerOf := func(v ValueID) int {
		for j := range nodes {
			if !removed[j] && readsValue(&nodes[j], v) {
				return j
			}
		}
		return -1
	}

	regionSeq := 0
	for i := range nodes {
		n := &nodes[i]
		if removed[i] || n.Op != OpGraph {
			continue
		}
		ensure := func() *RegionInfo {
			if n.Region == nil {
				n.Region = &RegionInfo{Name: regionName(n.Name, regionSeq)}
				regionSeq++
			}
			return n.Region
		}
		if n.Fused {
			// The degenerate region: the pair rewrite already erased the
			// |E| x F intermediate, whose width equals the fused output's.
			ensure().SavedBytes += 2 * 4 * int64(numE) * int64(work.Values[n.Out].Cols)
		}

		// Epilogue absorption: while the region output has exactly one
		// consumer and it is an elementwise chain, fold the chain in. The
		// erased interior's round trip plus a launch always beats the
		// in-place epilogue's cost, so no gate is needed.
		for {
			out := n.Out
			if out == work.Output || uses[out] != 1 {
				break
			}
			ci := consumerOf(out)
			if ci < 0 {
				break
			}
			u := &nodes[ci]
			if u.Op != OpUnary || u.X != out {
				break
			}
			info := ensure()
			info.Post = append(info.Post, u.Chain...)
			info.Absorbed++
			info.SavedBytes += bytesOf(out) + cm.LaunchOverheadBytes
			removed[ci] = true
			uses[out]--
			delete(defIdx, out)
			n.Out = u.Out
			defIdx[n.Out] = i
		}

		// Prologue absorption: fold single-consumer elementwise chains
		// feeding an operand into a staged read, when the saved launch
		// outweighs the staging copy. Chains are prepended so the slice
		// stays producer-first.
		absorbOperand := func(opnd *ValueID, dst func(*RegionInfo) *[]Unary) {
			for {
				v := *opnd
				if v == NoValue || v == work.Output || uses[v] != 1 {
					return
				}
				di, ok := defIdx[v]
				if !ok || removed[di] {
					return
				}
				d := &nodes[di]
				if d.Op != OpUnary {
					return
				}
				gain := cm.LaunchOverheadBytes - int64(cm.StagingPenalty*float64(bytesOf(v)))
				if gain <= 0 {
					return
				}
				info := ensure()
				chain := dst(info)
				*chain = append(append([]Unary(nil), d.Chain...), *chain...)
				info.Absorbed++
				info.SavedBytes += gain
				removed[di] = true
				uses[v]--
				delete(defIdx, v)
				*opnd = d.X
			}
		}
		absorbOperand(&n.X, func(r *RegionInfo) *[]Unary { return &r.PreX })
		absorbOperand(&n.Y, func(r *RegionInfo) *[]Unary { return &r.PreY })
	}

	out := &Program{
		Model: work.Model, InCols: work.InCols, Classes: work.Classes,
		Values: work.Values, Input: work.Input, Output: work.Output,
	}
	out.Nodes = make([]Node, 0, len(nodes))
	for i := range nodes {
		if removed[i] {
			continue
		}
		if r := nodes[i].Region; r != nil {
			stats.Absorbed += r.Absorbed
			stats.SavedBytes += r.SavedBytes
			if r.Absorbed > 0 {
				stats.Regions++
			}
		}
		out.Nodes = append(out.Nodes, nodes[i])
	}
	return out, stats
}
