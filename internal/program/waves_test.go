package program

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// wideProgram records input -> {GEMM w1, GEMM w2} -> concat -> relu: the two
// GEMMs read only the input, so the wave scheduler must prove them
// independent and place them in one wave.
func wideProgram(t *testing.T, cols int) (*Program, *tensor.Dense, *tensor.Dense) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	w1 := tensor.NewDense(cols, cols)
	w1.FillRandom(rng, 0.5)
	w2 := tensor.NewDense(cols, cols)
	w2.FillRandom(rng, 0.5)
	b := NewBuilder("wide", cols, 2*cols)
	in := b.Input(cols)
	wv1 := b.Const("w1", w1, VertexRows)
	wv2 := b.Const("w2", w2, VertexRows)
	h1 := b.GEMM("xw1", in, wv1, cols)
	h2 := b.GEMM("xw2", in, wv2, cols)
	cat := b.Concat("cat", h1, h2)
	out := b.Unary("relu", cat, []Unary{{Kind: UnaryReLU}})
	b.SetOutput(out)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return p, w1, w2
}

// twoChainProgram records input -> GEMM -> two independent
// materialise+scatter chains -> add: with fusion on, the two fused
// aggregations share a wave, so wave execution runs two graph kernels
// concurrently.
func twoChainProgram(t *testing.T, g interface{ NumEdges() int }, cols int) *Program {
	t.Helper()
	rng := rand.New(rand.NewSource(8))
	w := tensor.NewDense(cols, cols)
	w.FillRandom(rng, 0.5)
	ew1 := tensor.NewDense(g.NumEdges(), 1)
	ew1.FillRandom(rng, 1)
	ew2 := tensor.NewDense(g.NumEdges(), 1)
	ew2.FillRandom(rng, 1)

	b := NewBuilder("twochain", cols, cols)
	in := b.Input(cols)
	wv := b.Const("w", w, VertexRows)
	h := b.GEMM("xw", in, wv, cols)
	mk := func(tag string, ewv ValueID) ValueID {
		mat := b.GraphOp("mat_"+tag, ops.OpInfo{
			EdgeOp: ops.EdgeMul, GatherOp: ops.GatherCopyRHS,
			AKind: tensor.SrcV, BKind: tensor.EdgeK, CKind: tensor.EdgeK,
		}, h, ewv, cols)
		return b.GraphOp("agg_"+tag, ops.OpInfo{
			EdgeOp: ops.CopyRHS, GatherOp: ops.GatherSum,
			AKind: tensor.Null, BKind: tensor.EdgeK, CKind: tensor.DstV,
		}, NoValue, mat, cols)
	}
	a1 := mk("a", b.Const("ew1", ew1, EdgeRows))
	a2 := mk("b", b.Const("ew2", ew2, EdgeRows))
	out := b.AddScaled("add", a1, a2, 1)
	b.SetOutput(out)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestWaveScheduleChain: a straight-line program schedules as a chain of
// width-1 waves covering every step exactly once.
func TestWaveScheduleChain(t *testing.T) {
	g := testGraph(t, 21, 60, 400)
	p, _, _ := toyProgram(t, g, 4, 3)
	cp, err := Compile(p, g, stubScheduler{sched: core.DefaultSchedule, fuse: true}, core.ReferenceBackend())
	if err != nil {
		t.Fatal(err)
	}
	s := cp.Stats()
	if s.MaxWaveWidth != 1 {
		t.Errorf("chain program MaxWaveWidth = %d, want 1", s.MaxWaveWidth)
	}
	if s.Waves != s.Steps {
		t.Errorf("chain program Waves = %d, want one per step (%d)", s.Waves, s.Steps)
	}
	assertWavePartition(t, cp)
}

// TestWaveScheduleWide: two GEMMs reading only the input are proved
// independent and share a wave.
func TestWaveScheduleWide(t *testing.T) {
	g := testGraph(t, 22, 60, 400)
	p, _, _ := wideProgram(t, 4)
	cp, err := Compile(p, g, stubScheduler{sched: core.DefaultSchedule, fuse: true}, core.ReferenceBackend())
	if err != nil {
		t.Fatal(err)
	}
	s := cp.Stats()
	if s.MaxWaveWidth < 2 {
		t.Fatalf("wide program MaxWaveWidth = %d, want >= 2 (waves: %v)", s.MaxWaveWidth, cp.Waves())
	}
	if s.Waves >= s.Steps {
		t.Errorf("wide program should have fewer waves (%d) than steps (%d)", s.Waves, s.Steps)
	}
	assertWavePartition(t, cp)
}

// assertWavePartition checks the schedule invariants directly: every step in
// exactly one wave, and every dependence edge crossing to a later wave.
func assertWavePartition(t *testing.T, cp *CompiledProgram) {
	t.Helper()
	waveOf := make(map[int]int)
	for w, wave := range cp.Waves() {
		for _, s := range wave {
			if prev, dup := waveOf[s]; dup {
				t.Fatalf("step %d in waves %d and %d", s, prev, w)
			}
			waveOf[s] = w
		}
	}
	if len(waveOf) != len(cp.steps) {
		t.Fatalf("waves cover %d steps, program has %d", len(waveOf), len(cp.steps))
	}
	for _, e := range cp.depEdges {
		if waveOf[e.From] >= waveOf[e.To] {
			t.Fatalf("edge %d->%d (%s) not respected: waves %d -> %d", e.From, e.To, e.Kind, waveOf[e.From], waveOf[e.To])
		}
	}
}

// TestWaveParallelMatchesSequential: wave execution computes the same
// outputs as the sequential loop and as a direct dense oracle.
func TestWaveParallelMatchesSequential(t *testing.T) {
	g := testGraph(t, 23, 60, 400)
	p, w1, w2 := wideProgram(t, 4)
	cp, err := Compile(p, g, stubScheduler{sched: core.DefaultSchedule, fuse: true}, core.ReferenceBackend())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	x := tensor.NewDense(g.NumVertices(), 4)
	x.FillRandom(rng, 1)

	seq, err := cp.Run(x)
	if err != nil {
		t.Fatal(err)
	}
	seqC := seq.Clone()

	SetParallelSteps(true)
	defer SetParallelSteps(false)
	par, err := cp.Run(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range par.Data {
		if diff := par.Data[i] - seqC.Data[i]; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("parallel[%d] = %g, sequential = %g", i, par.Data[i], seqC.Data[i])
		}
	}

	h1 := tensor.NewDense(g.NumVertices(), 4)
	h2 := tensor.NewDense(g.NumVertices(), 4)
	tensor.MatMulInto(h1, x, w1)
	tensor.MatMulInto(h2, x, w2)
	want := tensor.NewDense(g.NumVertices(), 8)
	tensor.ConcatInto(want, h1, h2)
	for i, v := range want.Data {
		if v < 0 {
			want.Data[i] = 0
		}
	}
	for i := range par.Data {
		if diff := par.Data[i] - want.Data[i]; diff > 1e-4 || diff < -1e-4 {
			t.Fatalf("parallel[%d] = %g, oracle = %g", i, par.Data[i], want.Data[i])
		}
	}
}

// TestWaveParallelGraphKernels runs two independent fused aggregations
// concurrently (one wave) and checks against the sequential result.
func TestWaveParallelGraphKernels(t *testing.T) {
	g := testGraph(t, 24, 80, 600)
	p := twoChainProgram(t, g, 4)
	for _, backend := range []core.ExecBackend{core.ReferenceBackend(), core.NewParallelBackend(2)} {
		cp, err := Compile(p, g, stubScheduler{sched: core.DefaultSchedule, fuse: true}, backend)
		if err != nil {
			t.Fatal(err)
		}
		if cp.Stats().MaxWaveWidth < 2 {
			t.Fatalf("two-chain program MaxWaveWidth = %d, want >= 2 (waves: %v)", cp.Stats().MaxWaveWidth, cp.Waves())
		}
		rng := rand.New(rand.NewSource(3))
		x := tensor.NewDense(g.NumVertices(), 4)
		x.FillRandom(rng, 1)
		seq, err := cp.Run(x)
		if err != nil {
			t.Fatal(err)
		}
		seqC := seq.Clone()
		SetParallelSteps(true)
		par, err := cp.Run(x)
		SetParallelSteps(false)
		if err != nil {
			t.Fatal(err)
		}
		for i := range par.Data {
			if diff := par.Data[i] - seqC.Data[i]; diff > 1e-5 || diff < -1e-5 {
				t.Fatalf("parallel[%d] = %g, sequential = %g", i, par.Data[i], seqC.Data[i])
			}
		}
	}
}

// TestWaveCorruptionFiresEachRule arms every CorruptWaveSchedule seed and
// proves the matching wave rule rejects the compilation, mirroring
// TestCorruptionFiresEachRule for the plan-corruption points.
func TestWaveCorruptionFiresEachRule(t *testing.T) {
	g := testGraph(t, 25, 60, 400)
	p, _, _ := wideProgram(t, 4)
	cases := []struct {
		seed uint64
		rule string
	}{
		{0, analysis.RuleStepDeps},
		{1, analysis.RuleWaveLegal},
		{2, analysis.RuleWaveLegal},
	}
	for _, tc := range cases {
		t.Run(tc.rule, func(t *testing.T) {
			t.Cleanup(faultinject.Reset)
			faultinject.Arm(faultinject.CorruptWaveSchedule, faultinject.Spec{Every: 1, Seed: tc.seed})
			_, err := Compile(p, g, stubScheduler{sched: core.DefaultSchedule, fuse: true}, core.ReferenceBackend())
			if err == nil {
				t.Fatalf("corrupted compile succeeded; %s rule never fired", tc.rule)
			}
			var ve *analysis.VerifyError
			if !errors.As(err, &ve) {
				t.Fatalf("want *analysis.VerifyError, got %T: %v", err, err)
			}
			if !ve.HasRule(tc.rule) {
				t.Fatalf("seed %d: want rule %s, got: %v", tc.seed, tc.rule, ve.Diags)
			}
			if faultinject.Fires(faultinject.CorruptWaveSchedule) == 0 {
				t.Fatal("corrupt-wave-schedule never fired")
			}
		})
	}
}

// TestWaveParallelCancellation: a pre-cancelled context aborts a
// wave-parallel run between waves.
func TestWaveParallelCancellation(t *testing.T) {
	g := testGraph(t, 26, 60, 400)
	p, _, _ := wideProgram(t, 4)
	cp, err := Compile(p, g, stubScheduler{sched: core.DefaultSchedule, fuse: true}, core.ReferenceBackend())
	if err != nil {
		t.Fatal(err)
	}
	SetParallelSteps(true)
	defer SetParallelSteps(false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	x := tensor.NewDense(g.NumVertices(), 4)
	if _, err := cp.RunCtx(ctx, x); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The program stays usable after a cancelled run.
	if _, err := cp.Run(x); err != nil {
		t.Fatalf("run after cancellation: %v", err)
	}
}

// TestWaveParallelPanicIsolation: a panic inside a dispatched step is
// recovered on the worker and surfaced as the run's error instead of
// killing the process (or deadlocking the wave barrier).
func TestWaveParallelPanicIsolation(t *testing.T) {
	g := testGraph(t, 27, 60, 400)
	p, _, _ := wideProgram(t, 4)
	cp, err := Compile(p, g, stubScheduler{sched: core.DefaultSchedule, fuse: true}, core.ReferenceBackend())
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage one of the same-wave GEMM steps: a nil operand passes
	// revalidate (nil tensors are skipped) but panics inside the kernel.
	broke := false
	for i := range cp.steps {
		if cp.steps[i].op == OpGEMM {
			cp.steps[i].x = nil
			broke = true
			break
		}
	}
	if !broke {
		t.Fatal("no GEMM step to sabotage")
	}
	SetParallelSteps(true)
	defer SetParallelSteps(false)
	x := tensor.NewDense(g.NumVertices(), 4)
	_, err = cp.Run(x)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("want recovered panic error, got %v", err)
	}
}
