package program

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// pairProgram records the bare materialise+scatter pair with an optional
// prologue unary on the vertex operand, no epilogue. numE sizes the edge
// constant (FuseRegions itself never touches a graph, only row counts).
func pairProgram(t *testing.T, numE, cols int, withPrologue bool) *Program {
	t.Helper()
	b := NewBuilder("pair", cols, cols)
	in := b.Input(cols)
	x := in
	if withPrologue {
		x = b.Unary("pre", in, []Unary{{Kind: UnaryReLU}})
	}
	ew := tensor.NewDense(numE, 1)
	ew.Fill(1)
	ewv := b.Const("ew", ew, EdgeRows)
	mat := b.GraphOp("a_materialize", ops.OpInfo{
		EdgeOp: ops.EdgeMul, GatherOp: ops.GatherCopyRHS,
		AKind: tensor.SrcV, BKind: tensor.EdgeK, CKind: tensor.EdgeK,
	}, x, ewv, cols)
	out := b.GraphOp("a_scatter", ops.OpInfo{
		EdgeOp: ops.CopyRHS, GatherOp: ops.GatherSum,
		AKind: tensor.Null, BKind: tensor.EdgeK, CKind: tensor.DstV,
	}, NoValue, mat, cols)
	b.SetOutput(out)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func regionOf(t *testing.T, p *Program) *Node {
	t.Helper()
	for i := range p.Nodes {
		if p.Nodes[i].Op == OpGraph && p.Nodes[i].Region != nil {
			return &p.Nodes[i]
		}
	}
	t.Fatal("no region-annotated graph node in program")
	return nil
}

// TestFuseRegionsAbsorbsEpilogue: the toy program's trailing relu folds into
// the fused aggregation as a Post chain, the relu node disappears, and the
// region head now produces the program output.
func TestFuseRegionsAbsorbsEpilogue(t *testing.T) {
	g := testGraph(t, 21, 50, 300)
	p, _, _ := toyProgram(t, g, 4, 3)
	rp, stats := FuseRegions(p, g.NumVertices(), g.NumEdges(), DefaultCostModel())
	if stats.Pairs != 1 {
		t.Fatalf("pairs = %d, want 1", stats.Pairs)
	}
	if stats.Regions != 1 || stats.Absorbed != 1 {
		t.Fatalf("regions=%d absorbed=%d, want 1/1", stats.Regions, stats.Absorbed)
	}
	// Pair fusion removes one node, epilogue absorption another.
	if got, want := len(rp.Nodes), len(p.Nodes)-2; got != want {
		t.Fatalf("nodes = %d, want %d", got, want)
	}
	n := regionOf(t, rp)
	if n.Out != rp.Output {
		t.Errorf("region head out = %d, program output = %d", n.Out, rp.Output)
	}
	r := n.Region
	if len(r.Post) != 1 || r.Post[0].Kind != UnaryReLU {
		t.Errorf("post chain = %+v, want single relu", r.Post)
	}
	if len(r.PreX) != 0 || len(r.PreY) != 0 {
		t.Errorf("unexpected prologue chains: %+v / %+v", r.PreX, r.PreY)
	}
	// Saved bytes: pair intermediate round trip + interior output + launch.
	wantSaved := int64(2*4*g.NumEdges()*3) + int64(4*g.NumVertices()*3) + DefaultCostModel().LaunchOverheadBytes
	if r.SavedBytes != wantSaved {
		t.Errorf("saved bytes = %d, want %d", r.SavedBytes, wantSaved)
	}
	if stats.SavedBytes != wantSaved {
		t.Errorf("stats saved bytes = %d, want %d", stats.SavedBytes, wantSaved)
	}
}

// TestFuseRegionsDegeneratePair: with nothing to absorb, FuseRegions is
// exactly Fuse plus a degenerate RegionInfo claiming only the pair's saving.
func TestFuseRegionsDegeneratePair(t *testing.T) {
	const numV, numE, cols = 40, 200, 4
	p := pairProgram(t, numE, cols, false)
	rp, stats := FuseRegions(p, numV, numE, DefaultCostModel())
	fp, pairs := Fuse(p)
	if stats.Pairs != pairs || pairs != 1 {
		t.Fatalf("pairs = %d/%d, want 1", stats.Pairs, pairs)
	}
	if stats.Regions != 0 || stats.Absorbed != 0 {
		t.Fatalf("degenerate pair grew: regions=%d absorbed=%d", stats.Regions, stats.Absorbed)
	}
	if len(rp.Nodes) != len(fp.Nodes) {
		t.Fatalf("node count %d differs from Fuse's %d", len(rp.Nodes), len(fp.Nodes))
	}
	n := regionOf(t, rp)
	r := n.Region
	if len(r.PreX)+len(r.PreY)+len(r.Post) != 0 {
		t.Errorf("degenerate region has chains: %+v", r)
	}
	if want := int64(2 * 4 * numE * cols); r.SavedBytes != want {
		t.Errorf("saved bytes = %d, want pair-only %d", r.SavedBytes, want)
	}
	// Region annotation aside, the rewrite matches Fuse node for node.
	for i := range rp.Nodes {
		a, b := rp.Nodes[i], fp.Nodes[i]
		a.Region = nil
		if a.Name != b.Name || a.Op != b.Op || a.X != b.X || a.Y != b.Y || a.Out != b.Out {
			t.Errorf("node %d diverges from Fuse: %+v vs %+v", i, a, b)
		}
	}
}

// TestFuseRegionsPrologueCost: a small operand's feeding unary is staged into
// the region; past the cost threshold (StagingPenalty*bytes >= launch
// overhead) the same shape is left alone.
func TestFuseRegionsPrologueCost(t *testing.T) {
	const numE, cols = 200, 4
	cm := DefaultCostModel()
	// gain = LaunchOverheadBytes - 0.5*4*numV*cols: positive at numV=100,
	// negative at numV=8192.
	t.Run("small operand staged", func(t *testing.T) {
		p := pairProgram(t, numE, cols, true)
		rp, stats := FuseRegions(p, 100, numE, cm)
		if stats.Absorbed != 1 {
			t.Fatalf("absorbed = %d, want 1 (prologue)", stats.Absorbed)
		}
		n := regionOf(t, rp)
		if len(n.Region.PreX) != 1 || n.Region.PreX[0].Kind != UnaryReLU {
			t.Fatalf("PreX = %+v, want single relu", n.Region.PreX)
		}
		// The operand now reads the un-activated input directly.
		if n.X != rp.Input {
			t.Errorf("region X = %d, want program input %d", n.X, rp.Input)
		}
	})
	t.Run("large operand rejected", func(t *testing.T) {
		p := pairProgram(t, numE, cols, true)
		rp, stats := FuseRegions(p, 8192, numE, cm)
		if stats.Absorbed != 0 {
			t.Fatalf("absorbed = %d, want 0 (staging too expensive)", stats.Absorbed)
		}
		n := regionOf(t, rp)
		if len(n.Region.PreX) != 0 {
			t.Errorf("PreX = %+v, want empty", n.Region.PreX)
		}
		// The prologue unary survives as its own node.
		found := false
		for i := range rp.Nodes {
			if rp.Nodes[i].Name == "pre" {
				found = true
			}
		}
		if !found {
			t.Error("rejected prologue node was removed")
		}
	})
}

// TestFuseRegionsSkipsMultiConsumerEpilogue: an epilogue whose input is read
// by a second node must stay a separate kernel.
func TestFuseRegionsSkipsMultiConsumerEpilogue(t *testing.T) {
	const numE, cols = 200, 4
	b := NewBuilder("multi", cols, cols)
	in := b.Input(cols)
	ew := tensor.NewDense(numE, 1)
	ew.Fill(1)
	ewv := b.Const("ew", ew, EdgeRows)
	mat := b.GraphOp("a_materialize", ops.OpInfo{
		EdgeOp: ops.EdgeMul, GatherOp: ops.GatherCopyRHS,
		AKind: tensor.SrcV, BKind: tensor.EdgeK, CKind: tensor.EdgeK,
	}, in, ewv, cols)
	agg := b.GraphOp("a_scatter", ops.OpInfo{
		EdgeOp: ops.CopyRHS, GatherOp: ops.GatherSum,
		AKind: tensor.Null, BKind: tensor.EdgeK, CKind: tensor.DstV,
	}, NoValue, mat, cols)
	relu := b.Unary("relu", agg, []Unary{{Kind: UnaryReLU}})
	out := b.AddScaled("mix", agg, relu, 1) // second consumer of agg
	b.SetOutput(out)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rp, stats := FuseRegions(p, 40, numE, DefaultCostModel())
	if stats.Pairs != 1 {
		t.Fatalf("pairs = %d, want 1", stats.Pairs)
	}
	if stats.Absorbed != 0 {
		t.Fatalf("absorbed = %d, want 0 (interior has two consumers)", stats.Absorbed)
	}
	n := regionOf(t, rp)
	if len(n.Region.Post) != 0 {
		t.Errorf("post = %+v, want empty", n.Region.Post)
	}
}

// TestFuseRegionsCompileVerifies: a region-grown program passes the mandatory
// static verifier end to end and still matches the interpreter bit for bit in
// kernel count terms (one graph kernel, no standalone epilogue step).
func TestFuseRegionsCompileVerifies(t *testing.T) {
	g := testGraph(t, 22, 60, 400)
	p, _, _ := toyProgram(t, g, 4, 3)
	cp, err := Compile(p, g, stubScheduler{sched: core.DefaultSchedule, fuse: true}, core.ReferenceBackend())
	if err != nil {
		t.Fatal(err)
	}
	if rep := cp.Verify(); !rep.OK() {
		t.Fatalf("region compile reports violations: %v", rep.Diags)
	}
	st := cp.Stats()
	if st.FusedRegions != 1 {
		t.Errorf("fused regions = %d, want 1", st.FusedRegions)
	}
	if st.RegionSavedBytes <= 0 {
		t.Errorf("region saved bytes = %d, want > 0", st.RegionSavedBytes)
	}
	if st.GraphKernels != 1 {
		t.Errorf("graph kernels = %d, want 1", st.GraphKernels)
	}
}

// TestMergedNameFallback pins the bounded fallback for pairs outside the
// canonical "_materialize"/"_scatter" naming convention.
func TestMergedNameFallback(t *testing.T) {
	if got := mergedName("a_materialize", "a_scatter"); got != "a" {
		t.Errorf("canonical pair: got %q, want %q", got, "a")
	}
	if got := mergedName("weird", "other"); got != "weird_fused" {
		t.Errorf("non-canonical: got %q, want %q", got, "weird_fused")
	}
	long := strings.Repeat("x", 60)
	got := mergedName(long, "other")
	want := strings.Repeat("x", 24) + "_fused"
	if got != want {
		t.Errorf("long name: got %q (len %d), want %q", got, len(got), want)
	}
	// Mismatched canonical suffixes also take the fallback.
	if got := mergedName("a_materialize", "b_scatter"); got != "a_materialize_fused" {
		t.Errorf("mismatched bases: got %q", got)
	}
}

// TestRegionNameBounded pins the telemetry label shape for region heads.
func TestRegionNameBounded(t *testing.T) {
	if got := regionName("aggr", 0); got != "aggr_region0" {
		t.Errorf("got %q, want aggr_region0", got)
	}
	long := strings.Repeat("y", 50)
	got := regionName(long, 3)
	want := strings.Repeat("y", 24) + "_region3"
	if got != want {
		t.Errorf("long base: got %q, want %q", got, want)
	}
}
