// Package program implements whole-model compilation: GNN models are
// *recorded* as a typed operator DAG (dense GEMMs, elementwise stages and
// uGrapher graph operators over vertex/edge tensors) instead of being
// interpreted op by op. A recorded Program is then compiled once for a
// (graph, engine, backend) triple — fusion, schedule assignment and buffer
// planning run at compile time — and the resulting CompiledProgram can be
// executed many times with zero steady-state allocations.
//
// This is the model-level counterpart of the paper's operator-level split
// between computation and schedule (§3-§5): the per-operator abstraction
// decides *how each kernel runs*; the program layer decides *when schedules
// are chosen* (once, before serving) and *where intermediates live* (a
// planned arena instead of per-call tensors). The op-by-op interpreter in
// internal/models stays available as the semantic oracle the compiled path
// is tested against.
package program

import (
	"fmt"

	"repro/internal/ops"
	"repro/internal/tensor"
)

// ValueID names one SSA value of the DAG: every value is defined by exactly
// one node and consumed by zero or more later nodes.
type ValueID int32

// NoValue marks an absent operand.
const NoValue ValueID = -1

// RowsClass says which graph dimension sizes a value's row count: vertex
// tensors have |V| rows, edge tensors |E|. (The SrcV/DstV distinction is an
// addressing role of graph-operator operands, not a storage property, so it
// lives in the per-node ops.OpInfo, not here.)
type RowsClass uint8

const (
	// VertexRows marks a per-vertex tensor (|V| rows).
	VertexRows RowsClass = iota
	// EdgeRows marks a per-edge tensor (|E| rows).
	EdgeRows
)

// String names the class.
func (r RowsClass) String() string {
	if r == EdgeRows {
		return "edge"
	}
	return "vertex"
}

// Value describes one SSA value's storage shape.
type Value struct {
	Rows RowsClass
	Cols int
	// Const marks record-time constants (weights, edge scalars): they carry
	// their own persistent tensor and are exempt from buffer planning.
	Const bool
}

// NodeOp enumerates the node kinds of the program IR.
type NodeOp uint8

const (
	// OpInput is the caller-provided feature matrix (one per program).
	OpInput NodeOp = iota
	// OpConst is a record-time constant (weight matrix, edge scalars).
	OpConst
	// OpGEMM is out = X @ W with W a constant (Y).
	OpGEMM
	// OpUnary applies a chain of elementwise unary ops to X.
	OpUnary
	// OpAddScaled is out = X + Scale*Y, elementwise.
	OpAddScaled
	// OpHeadMerge reduces X's columns to one per-row mean (GAT head merge).
	OpHeadMerge
	// OpConcat is the column-wise concatenation [X | Y].
	OpConcat
	// OpGraph is a uGrapher graph operator described by GOp.
	OpGraph
)

var nodeOpNames = [...]string{"input", "const", "gemm", "unary", "add_scaled", "head_merge", "concat", "graph"}

// String names the node kind.
func (op NodeOp) String() string {
	if int(op) < len(nodeOpNames) {
		return nodeOpNames[op]
	}
	return fmt.Sprintf("NodeOp(%d)", uint8(op))
}

// UnaryKind enumerates the elementwise unary ops models use between graph
// and dense stages.
type UnaryKind uint8

const (
	// UnaryReLU is max(0, x).
	UnaryReLU UnaryKind = iota
	// UnaryLeakyReLU is x>=0 ? x : Alpha*x.
	UnaryLeakyReLU
	// UnaryExp is e^x.
	UnaryExp
)

// Unary is one elementwise unary op; OpUnary nodes hold a chain of them
// (e.g. GAT's leaky-relu-then-exp) applied in order, in place.
type Unary struct {
	Kind  UnaryKind
	Alpha float32
}

// Apply runs the op over d in place.
func (u Unary) Apply(d *tensor.Dense) {
	switch u.Kind {
	case UnaryReLU:
		tensor.ReLU(d)
	case UnaryLeakyReLU:
		tensor.LeakyReLU(d, u.Alpha)
	case UnaryExp:
		tensor.Exp(d)
	default:
		// Invariant, not input-reachable: UnaryKind values are produced only
		// by the model recorders in internal/models, never parsed from user
		// input, so an unknown kind is a recorder bug.
		panic(fmt.Sprintf("program: invalid unary kind %d", u.Kind))
	}
}

// Node is one operation of the DAG. X and Y are the operand values (NoValue
// when absent); Out is the defined value.
type Node struct {
	Op   NodeOp
	Name string
	X, Y ValueID
	Out  ValueID

	// Chain is the unary op sequence of OpUnary nodes.
	Chain []Unary
	// Scale is the Y coefficient of OpAddScaled nodes.
	Scale float32
	// GOp is the operator descriptor of OpGraph nodes: X binds to operand A,
	// Y to operand B (each NoValue iff the corresponding kind is Null).
	GOp ops.OpInfo
	// Const is the payload of OpConst nodes.
	Const *tensor.Dense
	// Fused marks graph nodes the fusion pass created by merging a
	// materialise+scatter pair; the static verifier uses it to match each
	// fused operator back to the recorded pair it replaced.
	Fused bool
	// Region annotates graph nodes that head a fusion region (regions.go):
	// the absorbed prologue/epilogue chains and the cost model's claimed
	// saving. Nil for nodes outside any region.
	Region *RegionInfo
}

// Program is a recorded model forward pass: nodes in topological (recording)
// order over an SSA value table. Programs are graph-shape-typed (vertex vs
// edge rows) but graph-instance-independent except for recorded constants
// sized to the recording graph.
type Program struct {
	// Model labels the recorded model ("GCN", ...).
	Model string
	// InCols and Classes are the input feature width and output width.
	InCols, Classes int
	Values          []Value
	Nodes           []Node
	// Input and Output are the program's boundary values.
	Input, Output ValueID
}

// value returns the value descriptor.
func (p *Program) value(v ValueID) Value { return p.Values[v] }

// RowsOf resolves a value's row count on a concrete graph.
func (p *Program) RowsOf(v ValueID, numVertices, numEdges int) int {
	if p.Values[v].Rows == EdgeRows {
		return numEdges
	}
	return numVertices
}

// GraphOpCount counts graph-operator nodes (the kernels a forward pass
// launches).
func (p *Program) GraphOpCount() int {
	n := 0
	for i := range p.Nodes {
		if p.Nodes[i].Op == OpGraph {
			n++
		}
	}
	return n
}

// Builder records a Program. All append methods validate their operands and
// latch the first error; Finish reports it.
type Builder struct {
	p   Program
	err error
}

// NewBuilder starts recording a program for the named model.
func NewBuilder(model string, inCols, classes int) *Builder {
	return &Builder{p: Program{Model: model, InCols: inCols, Classes: classes, Input: NoValue, Output: NoValue}}
}

func (b *Builder) errf(format string, args ...interface{}) ValueID {
	if b.err == nil {
		b.err = fmt.Errorf("program: "+format, args...)
	}
	return NoValue
}

// newValue appends a value descriptor.
func (b *Builder) newValue(rows RowsClass, cols int, isConst bool) ValueID {
	b.p.Values = append(b.p.Values, Value{Rows: rows, Cols: cols, Const: isConst})
	return ValueID(len(b.p.Values) - 1)
}

// check validates an operand reference.
func (b *Builder) check(v ValueID, what string) bool {
	if v < 0 || int(v) >= len(b.p.Values) {
		b.errf("%s references undefined value %d", what, v)
		return false
	}
	return true
}

func (b *Builder) push(n Node) ValueID {
	b.p.Nodes = append(b.p.Nodes, n)
	return n.Out
}

// Input declares the caller-provided vertex feature matrix. A program has
// exactly one input.
func (b *Builder) Input(cols int) ValueID {
	if b.err != nil {
		return NoValue
	}
	if b.p.Input != NoValue {
		return b.errf("program already has an input")
	}
	if cols <= 0 {
		return b.errf("input width must be positive, got %d", cols)
	}
	out := b.newValue(VertexRows, cols, false)
	b.p.Input = out
	return b.push(Node{Op: OpInput, Name: "input", X: NoValue, Y: NoValue, Out: out})
}

// Const records a persistent constant tensor (a weight matrix or
// materialised edge scalars). rows classifies graph-shaped constants; for
// weight matrices (graph-independent shapes) the class is ignored by the
// planner, which never pools constants.
func (b *Builder) Const(name string, d *tensor.Dense, rows RowsClass) ValueID {
	if b.err != nil {
		return NoValue
	}
	if d == nil {
		return b.errf("const %q has no data", name)
	}
	out := b.newValue(rows, d.Cols, true)
	return b.push(Node{Op: OpConst, Name: name, X: NoValue, Y: NoValue, Out: out, Const: d})
}

// GEMM records out = x @ w, where w is a Const weight of shape
// cols(x) x n.
func (b *Builder) GEMM(name string, x, w ValueID, n int) ValueID {
	if b.err != nil {
		return NoValue
	}
	if !b.check(x, name) || !b.check(w, name) {
		return NoValue
	}
	wv := b.p.value(w)
	if !wv.Const {
		return b.errf("%s: GEMM weight must be a const", name)
	}
	xv := b.p.value(x)
	wd := b.nodeDefining(w).Const
	if wd.Rows != xv.Cols || wd.Cols != n {
		return b.errf("%s: weight shape %dx%d incompatible with input width %d and output width %d",
			name, wd.Rows, wd.Cols, xv.Cols, n)
	}
	out := b.newValue(xv.Rows, n, false)
	return b.push(Node{Op: OpGEMM, Name: name, X: x, Y: w, Out: out})
}

// Unary records an in-place elementwise chain over x.
func (b *Builder) Unary(name string, x ValueID, chain []Unary) ValueID {
	if b.err != nil {
		return NoValue
	}
	if !b.check(x, name) {
		return NoValue
	}
	if len(chain) == 0 {
		return b.errf("%s: empty unary chain", name)
	}
	xv := b.p.value(x)
	out := b.newValue(xv.Rows, xv.Cols, false)
	return b.push(Node{Op: OpUnary, Name: name, X: x, Y: NoValue, Out: out, Chain: chain})
}

// AddScaled records out = x + scale*y elementwise (same shapes).
func (b *Builder) AddScaled(name string, x, y ValueID, scale float32) ValueID {
	if b.err != nil {
		return NoValue
	}
	if !b.check(x, name) || !b.check(y, name) {
		return NoValue
	}
	xv, yv := b.p.value(x), b.p.value(y)
	if xv.Rows != yv.Rows || xv.Cols != yv.Cols {
		return b.errf("%s: add_scaled operand shapes differ (%s x %d vs %s x %d)",
			name, xv.Rows, xv.Cols, yv.Rows, yv.Cols)
	}
	out := b.newValue(xv.Rows, xv.Cols, false)
	return b.push(Node{Op: OpAddScaled, Name: name, X: x, Y: y, Out: out, Scale: scale})
}

// HeadMerge records the per-row column mean of x (width becomes 1).
func (b *Builder) HeadMerge(name string, x ValueID) ValueID {
	if b.err != nil {
		return NoValue
	}
	if !b.check(x, name) {
		return NoValue
	}
	xv := b.p.value(x)
	out := b.newValue(xv.Rows, 1, false)
	return b.push(Node{Op: OpHeadMerge, Name: name, X: x, Y: NoValue, Out: out})
}

// Concat records the column-wise concatenation [x | y].
func (b *Builder) Concat(name string, x, y ValueID) ValueID {
	if b.err != nil {
		return NoValue
	}
	if !b.check(x, name) || !b.check(y, name) {
		return NoValue
	}
	xv, yv := b.p.value(x), b.p.value(y)
	if xv.Rows != yv.Rows {
		return b.errf("%s: concat row classes differ (%s vs %s)", name, xv.Rows, yv.Rows)
	}
	out := b.newValue(xv.Rows, xv.Cols+yv.Cols, false)
	return b.push(Node{Op: OpConcat, Name: name, X: x, Y: y, Out: out})
}

// GraphOp records a uGrapher graph operator. a and bv bind to operands A and
// B; pass NoValue for Null kinds. outCols is the output feature width.
func (b *Builder) GraphOp(name string, op ops.OpInfo, a, bv ValueID, outCols int) ValueID {
	if b.err != nil {
		return NoValue
	}
	if err := op.Validate(); err != nil {
		return b.errf("%s: %v", name, err)
	}
	checkOperand := func(v ValueID, kind tensor.Kind, what string) bool {
		if kind == tensor.Null {
			if v != NoValue {
				b.errf("%s: operand %s must be absent for Null kind", name, what)
				return false
			}
			return true
		}
		if v == NoValue {
			b.errf("%s: operand %s missing for kind %s", name, what, kind)
			return false
		}
		if !b.check(v, name) {
			return false
		}
		want := VertexRows
		if kind == tensor.EdgeK {
			want = EdgeRows
		}
		if b.p.value(v).Rows != want {
			b.errf("%s: operand %s is %s-rows, kind %s needs %s-rows",
				name, what, b.p.value(v).Rows, kind, want)
			return false
		}
		return true
	}
	if !checkOperand(a, op.AKind, "A") || !checkOperand(bv, op.BKind, "B") {
		return NoValue
	}
	outRows := VertexRows
	if op.CKind == tensor.EdgeK {
		outRows = EdgeRows
	}
	out := b.newValue(outRows, outCols, false)
	return b.push(Node{Op: OpGraph, Name: name, X: a, Y: bv, Out: out, GOp: op})
}

// SetOutput marks the program's result value.
func (b *Builder) SetOutput(v ValueID) {
	if b.err != nil {
		return
	}
	if !b.check(v, "output") {
		return
	}
	b.p.Output = v
}

// nodeDefining returns the node that defines v (values are SSA).
func (b *Builder) nodeDefining(v ValueID) *Node {
	for i := range b.p.Nodes {
		if b.p.Nodes[i].Out == v {
			return &b.p.Nodes[i]
		}
	}
	return nil
}

// Finish validates and returns the recorded program.
func (b *Builder) Finish() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.p.Input == NoValue {
		return nil, fmt.Errorf("program: no input recorded")
	}
	if b.p.Output == NoValue {
		return nil, fmt.Errorf("program: no output set")
	}
	p := b.p
	return &p, nil
}
