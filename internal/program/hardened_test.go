package program

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/tensor"
)

// Hardening tests for the compiled-program runtime: cancellation between
// steps, Run-time operand revalidation, and kernel-fault propagation with
// the failing step's name attached.

func TestRunCtxCancelledBetweenSteps(t *testing.T) {
	g := testGraph(t, 6, 60, 300)
	p, _, _ := toyProgram(t, g, 4, 2)
	cp, err := Compile(p, g, stubScheduler{sched: core.DefaultSchedule, fuse: true}, core.ReferenceBackend())
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewDense(g.NumVertices(), 4)
	x.FillRandom(rand.New(rand.NewSource(1)), 1)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cp.RunCtx(ctx, x); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx(cancelled) = %v, want context.Canceled", err)
	}

	// After a cancelled run the program stays usable: arena intermediates
	// are overwritten by the next (uncancelled) run.
	out, err := cp.Run(x)
	if err != nil {
		t.Fatal(err)
	}
	want := out.Clone()
	if out2, err := cp.Run(x); err != nil || !out2.Equal(want) {
		t.Fatalf("run after cancellation not reproducible: %v", err)
	}
}

func TestRevalidateCatchesReshapedView(t *testing.T) {
	g := testGraph(t, 7, 40, 200)
	p, _, _ := toyProgram(t, g, 4, 2)
	cp, err := Compile(p, g, stubScheduler{sched: core.DefaultSchedule, fuse: true}, core.ReferenceBackend())
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewDense(g.NumVertices(), 4)
	if _, err := cp.Run(x); err != nil {
		t.Fatal(err)
	}

	// A caller holding the output view reshapes it in place — the step loop
	// indexes raw Data by Rows*Cols, so the next Run must refuse instead of
	// reading out of bounds.
	cp.output.Rows = cp.output.Rows * 2
	_, err = cp.Run(x)
	if err == nil {
		t.Fatal("Run accepted a reshaped arena view")
	}
	if !strings.Contains(err.Error(), "inconsistent") {
		t.Errorf("error = %v, want a shape/storage inconsistency report", err)
	}
	// Restoring the shape restores the program.
	cp.output.Rows = cp.output.Rows / 2
	if _, err := cp.Run(x); err != nil {
		t.Fatalf("restored program still failing: %v", err)
	}
}

func TestRunCtxNamesFailingKernelStep(t *testing.T) {
	defer faultinject.Reset()
	g := testGraph(t, 8, 50, 250)
	p, _, _ := toyProgram(t, g, 4, 2)
	cp, err := Compile(p, g, stubScheduler{sched: core.DefaultSchedule, fuse: true}, core.ReferenceBackend())
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewDense(g.NumVertices(), 4)

	faultinject.Arm(faultinject.KernelPanic, faultinject.Spec{After: 1})
	_, err = cp.Run(x)
	var ke *core.KernelError
	if !errors.As(err, &ke) {
		t.Fatalf("Run with injected kernel panic = %v (%T), want wrapped *core.KernelError", err, err)
	}
	// The program wrapper names the step so one bad kernel is locatable in
	// a multi-layer model.
	if !strings.Contains(err.Error(), "program: ") {
		t.Errorf("error %q does not carry the program step prefix", err)
	}
}
