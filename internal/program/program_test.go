package program

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/schedule"
	"repro/internal/tensor"
)

func testGraph(t testing.TB, seed int64, n, m int) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// stubScheduler pins one schedule for every task.
type stubScheduler struct {
	sched core.Schedule
	fuse  bool
}

func (s stubScheduler) Device() *gpu.Device                       { return gpu.V100() }
func (s stubScheduler) ScheduleFor(t schedule.Task) core.Schedule { return s.sched }
func (s stubScheduler) Fused() bool                               { return s.fuse }

// toyProgram records input -> GEMM -> materialise -> scatter -> relu, the
// minimal shape exercising constants, a fusable pair and an activation.
// Returns the program plus the raw weight/edge-scalar tensors for oracles.
func toyProgram(t *testing.T, g *graph.Graph, inCols, outCols int) (*Program, *tensor.Dense, *tensor.Dense) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	w := tensor.NewDense(inCols, outCols)
	w.FillRandom(rng, 0.5)
	ew := tensor.NewDense(g.NumEdges(), 1)
	ew.FillRandom(rng, 1)

	b := NewBuilder("toy", inCols, outCols)
	in := b.Input(inCols)
	wv := b.Const("w", w, VertexRows)
	ewv := b.Const("ew", ew, EdgeRows)
	h := b.GEMM("xw", in, wv, outCols)
	mat := b.GraphOp("aggr_materialize", ops.OpInfo{
		EdgeOp: ops.EdgeMul, GatherOp: ops.GatherCopyRHS,
		AKind: tensor.SrcV, BKind: tensor.EdgeK, CKind: tensor.EdgeK,
	}, h, ewv, outCols)
	agg := b.GraphOp("aggr_scatter", ops.OpInfo{
		EdgeOp: ops.CopyRHS, GatherOp: ops.GatherSum,
		AKind: tensor.Null, BKind: tensor.EdgeK, CKind: tensor.DstV,
	}, NoValue, mat, outCols)
	out := b.Unary("relu", agg, []Unary{{Kind: UnaryReLU}})
	b.SetOutput(out)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return p, w, ew
}

func TestBuilderValidation(t *testing.T) {
	cases := []struct {
		name  string
		build func(b *Builder)
	}{
		{"no input", func(b *Builder) {
			w := b.Const("w", tensor.NewDense(2, 2), VertexRows)
			b.SetOutput(w)
		}},
		{"double input", func(b *Builder) {
			b.Input(4)
			v := b.Input(4)
			b.SetOutput(v)
		}},
		{"no output", func(b *Builder) {
			b.Input(4)
		}},
		{"gemm weight not const", func(b *Builder) {
			in := b.Input(4)
			v := b.GEMM("xw", in, in, 4)
			b.SetOutput(v)
		}},
		{"gemm shape mismatch", func(b *Builder) {
			in := b.Input(4)
			w := b.Const("w", tensor.NewDense(3, 2), VertexRows)
			v := b.GEMM("xw", in, w, 2)
			b.SetOutput(v)
		}},
		{"empty unary chain", func(b *Builder) {
			in := b.Input(4)
			v := b.Unary("relu", in, nil)
			b.SetOutput(v)
		}},
		{"add_scaled shape mismatch", func(b *Builder) {
			in := b.Input(4)
			w := b.Const("w", tensor.NewDense(4, 2), VertexRows)
			h := b.GEMM("xw", in, w, 2)
			v := b.AddScaled("add", in, h, 1)
			b.SetOutput(v)
		}},
		{"graph op operand present for null kind", func(b *Builder) {
			in := b.Input(4)
			v := b.GraphOp("agg", ops.OpInfo{
				EdgeOp: ops.CopyRHS, GatherOp: ops.GatherSum,
				AKind: tensor.Null, BKind: tensor.EdgeK, CKind: tensor.DstV,
			}, in, in, 4)
			b.SetOutput(v)
		}},
		{"graph op rows class mismatch", func(b *Builder) {
			in := b.Input(4)
			// in has vertex rows but is bound to an Edge-kind operand.
			v := b.GraphOp("agg", ops.OpInfo{
				EdgeOp: ops.CopyRHS, GatherOp: ops.GatherSum,
				AKind: tensor.Null, BKind: tensor.EdgeK, CKind: tensor.DstV,
			}, NoValue, in, 4)
			b.SetOutput(v)
		}},
		{"invalid op info", func(b *Builder) {
			in := b.Input(4)
			v := b.GraphOp("agg", ops.OpInfo{
				EdgeOp: ops.CopyLHS, GatherOp: ops.GatherSum,
				AKind: tensor.SrcV, BKind: tensor.SrcV, CKind: tensor.DstV,
			}, in, in, 4)
			b.SetOutput(v)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder("bad", 4, 4)
			tc.build(b)
			if _, err := b.Finish(); err == nil {
				t.Fatalf("expected Finish to fail")
			}
		})
	}
}

func TestFuseMergesPairs(t *testing.T) {
	g := testGraph(t, 1, 50, 300)
	p, _, _ := toyProgram(t, g, 4, 3)
	if got := p.GraphOpCount(); got != 2 {
		t.Fatalf("recorded graph ops = %d, want 2", got)
	}
	fp, pairs := Fuse(p)
	if pairs != 1 {
		t.Fatalf("fused pairs = %d, want 1", pairs)
	}
	if got := fp.GraphOpCount(); got != 1 {
		t.Fatalf("post-fusion graph ops = %d, want 1", got)
	}
	var merged *Node
	for i := range fp.Nodes {
		if fp.Nodes[i].Op == OpGraph {
			merged = &fp.Nodes[i]
		}
	}
	if merged.Name != "aggr" {
		t.Errorf("merged name = %q, want %q", merged.Name, "aggr")
	}
	want := ops.OpInfo{
		EdgeOp: ops.EdgeMul, GatherOp: ops.GatherSum,
		AKind: tensor.SrcV, BKind: tensor.EdgeK, CKind: tensor.DstV,
	}
	if merged.GOp != want {
		t.Errorf("merged op = %+v, want %+v", merged.GOp, want)
	}
	// Fusion must not orphan live nodes: DCE afterwards only removes the
	// materialise op's leftovers (here: nothing — operands are shared).
	if _, removed := EliminateDead(fp); removed != 0 {
		t.Errorf("unexpected dead nodes after fusion: %d", removed)
	}
}

func TestFuseSkipsMultiConsumerIntermediate(t *testing.T) {
	g := testGraph(t, 2, 40, 200)
	b := NewBuilder("multi", 4, 4)
	in := b.Input(4)
	ew := tensor.NewDense(g.NumEdges(), 1)
	ew.Fill(1)
	ewv := b.Const("ew", ew, EdgeRows)
	mat := b.GraphOp("x_materialize", ops.OpInfo{
		EdgeOp: ops.EdgeMul, GatherOp: ops.GatherCopyRHS,
		AKind: tensor.SrcV, BKind: tensor.EdgeK, CKind: tensor.EdgeK,
	}, in, ewv, 4)
	s1 := b.GraphOp("x_scatter", ops.OpInfo{
		EdgeOp: ops.CopyRHS, GatherOp: ops.GatherSum,
		AKind: tensor.Null, BKind: tensor.EdgeK, CKind: tensor.DstV,
	}, NoValue, mat, 4)
	s2 := b.GraphOp("y_scatter", ops.OpInfo{
		EdgeOp: ops.CopyRHS, GatherOp: ops.GatherMax,
		AKind: tensor.Null, BKind: tensor.EdgeK, CKind: tensor.DstV,
	}, NoValue, mat, 4)
	sum := b.AddScaled("mix", s1, s2, 1)
	b.SetOutput(sum)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	fp, pairs := Fuse(p)
	if pairs != 0 {
		t.Fatalf("fused %d pairs across a shared intermediate, want 0", pairs)
	}
	if got := fp.GraphOpCount(); got != 3 {
		t.Fatalf("graph ops = %d, want 3", got)
	}
}

// checkPlan asserts the two planner invariants of the issue: values sharing
// a slot never overlap in time (except planner-sanctioned in-place aliases),
// and the slot count equals the maximum live set, recomputed here
// independently from the intervals.
func checkPlan(t *testing.T, p *Program, plan *BufferPlan) {
	t.Helper()
	// Invariant 1: no two live intervals share a buffer.
	bySlot := make(map[int][]ValueID)
	for v := range p.Values {
		if s := plan.Assign[v]; s != NoSlot {
			bySlot[s] = append(bySlot[s], ValueID(v))
		}
	}
	for s, vals := range bySlot {
		for i := 0; i < len(vals); i++ {
			for j := i + 1; j < len(vals); j++ {
				a, b := vals[i], vals[j]
				if plan.Def[a] > plan.Def[b] {
					a, b = b, a
				}
				lu := plan.LastUse[a]
				if lu < 0 {
					lu = plan.Def[a]
				}
				switch {
				case lu < plan.Def[b]:
					// disjoint: fine
				case lu == plan.Def[b] && plan.InPlace[plan.Def[b]] && p.Nodes[plan.Def[b]].X == a:
					// sanctioned in-place alias: fine
				default:
					t.Errorf("slot %d: values %d [%d,%d] and %d [%d,%d] overlap",
						s, a, plan.Def[a], plan.LastUse[a], b, plan.Def[b], plan.LastUse[b])
				}
			}
		}
	}
	// Invariant 2: slot count == peak live set. Recompute the live set per
	// node: values whose interval covers the node, minus one per in-place
	// alias (input and output share storage at the handoff node).
	maxLive := 0
	for i := range p.Nodes {
		live := 0
		for v := range p.Values {
			if plan.Assign[v] == NoSlot {
				continue
			}
			lu := plan.LastUse[v]
			if lu < 0 {
				lu = plan.Def[v]
			}
			if plan.Def[v] <= i && i <= lu {
				live++
			}
		}
		if plan.InPlace[i] {
			live--
		}
		if live > maxLive {
			maxLive = live
		}
	}
	if len(plan.SlotFloats) != maxLive {
		t.Errorf("slots = %d, peak live set = %d", len(plan.SlotFloats), maxLive)
	}
	if plan.PeakLive != len(plan.SlotFloats) {
		t.Errorf("PeakLive = %d, slots = %d", plan.PeakLive, len(plan.SlotFloats))
	}
}

func TestPlanBuffersToy(t *testing.T) {
	g := testGraph(t, 3, 60, 400)
	p, _, _ := toyProgram(t, g, 4, 3)
	for _, fuse := range []bool{false, true} {
		work := p
		if fuse {
			work, _ = Fuse(p)
		}
		plan, err := PlanBuffers(work, g.NumVertices(), g.NumEdges())
		if err != nil {
			t.Fatal(err)
		}
		checkPlan(t, work, plan)
		// The final relu must run in place on the dying aggregation output.
		last := len(work.Nodes) - 1
		if !plan.InPlace[last] {
			t.Errorf("fuse=%v: final unary should alias its input", fuse)
		}
		// Constants stay out of the plan.
		for i := range work.Nodes {
			if work.Nodes[i].Op == OpConst && plan.Assign[work.Nodes[i].Out] != NoSlot {
				t.Errorf("constant %q got a slot", work.Nodes[i].Name)
			}
		}
	}
}

func TestCompileRunMatchesOracle(t *testing.T) {
	g := testGraph(t, 4, 80, 600)
	const inCols, outCols = 5, 3
	p, w, ew := toyProgram(t, g, inCols, outCols)

	x := tensor.NewDense(g.NumVertices(), inCols)
	x.FillRandom(rand.New(rand.NewSource(9)), 1)

	// Oracle: dense transform, fused weighted aggregation via the reference
	// interpreter, relu.
	h := tensor.MatMul(x, w)
	want := tensor.NewDense(g.NumVertices(), outCols)
	err := core.Reference(g, ops.OpInfo{
		EdgeOp: ops.EdgeMul, GatherOp: ops.GatherSum,
		AKind: tensor.SrcV, BKind: tensor.EdgeK, CKind: tensor.DstV,
	}, core.Operands{A: tensor.Src(h), B: tensor.Edge(ew), C: tensor.Dst(want)})
	if err != nil {
		t.Fatal(err)
	}
	tensor.ReLU(want)

	for _, fuse := range []bool{true, false} {
		for _, backend := range []core.ExecBackend{core.ReferenceBackend(), core.NewParallelBackend(2)} {
			cp, err := Compile(p, g, stubScheduler{sched: core.DefaultSchedule, fuse: fuse}, backend)
			if err != nil {
				t.Fatal(err)
			}
			wantKernels := 2
			if fuse {
				wantKernels = 1
			}
			if cp.Stats().GraphKernels != wantKernels {
				t.Errorf("fuse=%v: graph kernels = %d, want %d", fuse, cp.Stats().GraphKernels, wantKernels)
			}
			var first *tensor.Dense
			for rep := 0; rep < 3; rep++ {
				out, err := cp.Run(x)
				if err != nil {
					t.Fatal(err)
				}
				if !out.AllClose(want, 1e-4, 1e-4) {
					t.Fatalf("fuse=%v backend=%s rep=%d: output mismatch (maxdiff %v)",
						fuse, backend.Name(), rep, out.MaxDiff(want))
				}
				if first == nil {
					first = out.Clone()
				} else if !out.Equal(first) {
					t.Fatalf("fuse=%v backend=%s: rerun not bit-identical", fuse, backend.Name())
				}
			}
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	g := testGraph(t, 5, 30, 100)
	p, _, _ := toyProgram(t, g, 4, 2)
	cp, err := Compile(p, g, stubScheduler{sched: core.DefaultSchedule, fuse: true}, core.ReferenceBackend())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cp.Run(nil); err == nil {
		t.Error("nil input should fail")
	}
	if _, err := cp.Run(tensor.NewDense(g.NumVertices(), 7)); err == nil {
		t.Error("wrong width should fail")
	}
	if _, err := cp.Run(tensor.NewDense(g.NumVertices()+1, 4)); err == nil {
		t.Error("wrong rows should fail")
	}
}

func TestEliminateDeadRemovesOrphans(t *testing.T) {
	b := NewBuilder("dead", 4, 4)
	in := b.Input(4)
	w := b.Const("w", tensor.NewDense(4, 4), VertexRows)
	_ = b.GEMM("unused", in, w, 4) // dead: nothing consumes it
	out := b.Unary("relu", in, []Unary{{Kind: UnaryReLU}})
	b.SetOutput(out)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	pruned, removed := EliminateDead(p)
	// The dead GEMM and its now-orphaned weight constant both go.
	if removed != 2 {
		t.Fatalf("removed = %d, want 2", removed)
	}
	if len(pruned.Nodes) != len(p.Nodes)-2 {
		t.Fatalf("pruned nodes = %d, want %d", len(pruned.Nodes), len(p.Nodes)-2)
	}
}
