package program

import "fmt"

// Buffer planning: a liveness analysis over the (post-fusion) DAG that maps
// every intermediate value onto a small pool of reusable arena slots, so a
// compiled program's steady-state Run allocates nothing. Nodes are already
// in topological order, so each value's live interval is simply
// [defining node, last reading node] and a linear scan with a free list
// achieves the optimal slot count (= peak number of simultaneously live
// values).
//
// Two wrinkles beyond textbook linear scan:
//
//   - In-place aliasing. The interpreter applies activations in place; the
//     planner recovers that by letting a unary/add-scaled node write into
//     its dying input's slot (the float operations are element-independent,
//     so reading x[i] and writing out[i] to the same address is safe).
//   - Read-while-write hazards. Every other node kind (GEMM, concat,
//     head-merge, graph operators) reads whole operand rows while streaming
//     the output, so the output slot must never overlap a live operand: the
//     scan allocates the output BEFORE freeing operands that die at the same
//     node.

// NoSlot marks values without an arena slot (constants, unused values).
const NoSlot = -1

// BufferPlan is the result of liveness analysis and slot assignment.
type BufferPlan struct {
	// Assign maps each value to its arena slot (NoSlot for constants and
	// values no surviving node defines).
	Assign []int
	// InPlace marks nodes that write into their X operand's slot.
	InPlace []bool
	// SlotFloats is each slot's capacity in float32 elements — the max
	// rows*cols over the values it hosts on the planning graph.
	SlotFloats []int
	// Def and LastUse are each value's live interval in node indices
	// (LastUse == len(nodes) for the program output, which is never freed;
	// both are -1 for constants and undefined values).
	Def, LastUse []int
	// PeakLive is the maximum number of simultaneously held slots — equal to
	// len(SlotFloats) for this allocator, recorded separately so tests can
	// cross-check the invariant.
	PeakLive int
	// TotalFloats is the arena size: the sum of slot capacities.
	TotalFloats int
}

// aliasable reports whether node n may legally write into its X operand's
// storage: elementwise kinds whose element i depends only on operand
// elements i.
func aliasable(n *Node) bool {
	return (n.Op == OpUnary || n.Op == OpAddScaled) && n.X != n.Y
}

// PlanBuffers runs liveness analysis and linear-scan slot assignment over p
// for a graph with the given vertex/edge counts.
func PlanBuffers(p *Program, numVertices, numEdges int) (*BufferPlan, error) {
	nv := len(p.Values)
	plan := &BufferPlan{
		Assign:  make([]int, nv),
		InPlace: make([]bool, len(p.Nodes)),
		Def:     make([]int, nv),
		LastUse: make([]int, nv),
	}
	for v := 0; v < nv; v++ {
		plan.Assign[v] = NoSlot
		plan.Def[v] = -1
		plan.LastUse[v] = -1
	}

	// Liveness: definition and last-use indices. Constants own their storage
	// and stay out of the plan entirely.
	for i := range p.Nodes {
		n := &p.Nodes[i]
		if n.Op != OpConst {
			if plan.Def[n.Out] >= 0 {
				return nil, fmt.Errorf("program: value %d defined twice (node %d and %d)", n.Out, plan.Def[n.Out], i)
			}
			plan.Def[n.Out] = i
		}
		if n.X != NoValue && !p.Values[n.X].Const {
			plan.LastUse[n.X] = i
		}
		if n.Y != NoValue && !p.Values[n.Y].Const {
			plan.LastUse[n.Y] = i
		}
	}
	if plan.Def[p.Output] < 0 {
		return nil, fmt.Errorf("program: output value %d has no defining node", p.Output)
	}
	// The output survives the whole program: sentinel past the last node.
	plan.LastUse[p.Output] = len(p.Nodes)

	// Linear scan. freeSlots is a LIFO of released slot ids; held counts
	// slots currently bound to live values.
	var freeSlots []int
	nextSlot := 0
	held := 0
	alloc := func() int {
		if n := len(freeSlots); n > 0 {
			s := freeSlots[n-1]
			freeSlots = freeSlots[:n-1]
			held++
			return s
		}
		s := nextSlot
		nextSlot++
		held++
		return s
	}
	free := func(s int) {
		freeSlots = append(freeSlots, s)
		held--
	}

	for i := range p.Nodes {
		n := &p.Nodes[i]
		if n.Op == OpConst {
			continue
		}
		// Dying operands: values whose last read is this node. Deduplicated in
		// case X == Y.
		var dying [2]ValueID
		nd := 0
		for _, v := range [2]ValueID{n.X, n.Y} {
			if v != NoValue && plan.Assign[v] != NoSlot && plan.LastUse[v] == i {
				if nd == 1 && dying[0] == v {
					continue
				}
				dying[nd] = v
				nd++
			}
		}

		// In-place aliasing: reuse the dying X slot directly.
		if aliasable(n) && n.X != NoValue && plan.Assign[n.X] != NoSlot && plan.LastUse[n.X] == i {
			plan.Assign[n.Out] = plan.Assign[n.X]
			plan.InPlace[i] = true
			// X's slot transfers to Out; free any *other* dying operand.
			for k := 0; k < nd; k++ {
				if dying[k] != n.X {
					free(plan.Assign[dying[k]])
				}
			}
			if held > plan.PeakLive {
				plan.PeakLive = held
			}
			continue
		}

		// Hazard-safe order: the output takes a slot no dying operand still
		// occupies, then the dead operands release theirs.
		plan.Assign[n.Out] = alloc()
		if held > plan.PeakLive {
			plan.PeakLive = held
		}
		for k := 0; k < nd; k++ {
			free(plan.Assign[dying[k]])
		}
		// A value nothing reads (only possible without dead-code elimination)
		// releases its slot immediately: later definitions may overwrite it.
		if plan.LastUse[n.Out] < 0 {
			free(plan.Assign[n.Out])
		}
	}

	// Slot capacities: max footprint over hosted values.
	plan.SlotFloats = make([]int, nextSlot)
	for v := 0; v < nv; v++ {
		s := plan.Assign[v]
		if s == NoSlot {
			continue
		}
		rows := numVertices
		if p.Values[v].Rows == EdgeRows {
			rows = numEdges
		}
		if f := rows * p.Values[v].Cols; f > plan.SlotFloats[s] {
			plan.SlotFloats[s] = f
		}
	}
	for _, f := range plan.SlotFloats {
		plan.TotalFloats += f
	}
	return plan, nil
}
