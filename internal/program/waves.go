package program

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/telemetry"
)

// Step-effect dependence analysis: every compiled step's reads and writes
// resolve to arena intervals at compile time (the buffer plan fixed the slot
// of every value, and the arena fixed the offset of every slot), so the
// compiler can build the step-dependence DAG — true, anti and output deps
// from interval overlap, plus scratch-conflict edges between kernels bound
// to the same sharded-scratch block — and schedule the steps into waves:
// topological levels whose members are provably independent and may execute
// concurrently. The schedule is verified mandatorily (analysis.VerifyWaves,
// rules step-deps-sound and wave-legal) before Compile returns, extending
// the "an illegal plan is unrepresentable as a successful compile"
// discipline to the parallel schedule itself.
//
// Run-time: when SetParallelSteps(true) is in effect and the program has at
// least one wave wider than one step, RunCtx dispatches each wave onto a
// bounded, pre-spawned, process-wide step-worker pool and barriers between
// waves. Programs whose every wave has width 1 (a pure chain) keep the
// sequential loop — the schedule proves there is nothing to overlap.

// maxShardScratchBlocks caps how many copies of the shared sharded-scratch
// block a program allocates to let same-wave sharded kernels run
// concurrently. Scratch users beyond the cap in one wave share a block and
// are serialized by scratch-conflict edges instead.
const maxShardScratchBlocks = 4

// maxStepWorkers bounds the process-wide step-worker pool.
const maxStepWorkers = 8

// parallelSteps is the process-wide wave-execution default, set by the
// CLIs' -parallel-steps flag. Off by default: sequential execution remains
// the baseline; the wave schedule is computed and verified either way.
var parallelSteps atomic.Bool

// SetParallelSteps enables or disables wave-parallel step execution for
// subsequently started runs (compiled programs always carry their verified
// wave schedule; the flag only selects the execution strategy).
func SetParallelSteps(on bool) { parallelSteps.Store(on) }

// ParallelSteps reports whether wave-parallel step execution is enabled.
func ParallelSteps() bool { return parallelSteps.Load() }

// valueInterval resolves value v to its arena effect interval. Constants
// (which own their recorded storage), absent operands and unplanned values
// have no interval — they cannot carry a step hazard.
func (cp *CompiledProgram) valueInterval(v ValueID) (analysis.Interval, bool) {
	if v == NoValue || int(v) >= len(cp.prog.Values) {
		return analysis.Interval{}, false
	}
	val := cp.prog.Values[v]
	if val.Const {
		return analysis.Interval{}, false
	}
	s := cp.plan.Assign[v]
	if s < 0 || s >= len(cp.slotOffsets) {
		return analysis.Interval{}, false
	}
	rows := cp.prog.RowsOf(v, cp.g.NumVertices(), cp.g.NumEdges())
	return analysis.Interval{Off: cp.slotOffsets[s], Len: rows * val.Cols}, true
}

// stepEffects derives every step's read/write/scratch effect sets. The
// slices are fresh on every call, so the verification bridge can hand them
// to corruption points without exposing the compiled artifacts.
func (cp *CompiledProgram) stepEffects() []analysis.StepEffects {
	effs := make([]analysis.StepEffects, len(cp.steps))
	for i := range cp.steps {
		st := &cp.steps[i]
		e := analysis.StepEffects{Name: st.name, ScratchID: int(st.scratch)}
		if iv, ok := cp.valueInterval(st.vx); ok {
			e.Reads = append(e.Reads, iv)
		}
		if iv, ok := cp.valueInterval(st.vy); ok {
			e.Reads = append(e.Reads, iv)
		}
		if iv, ok := cp.valueInterval(st.vout); ok {
			e.Writes = append(e.Writes, iv)
		}
		effs[i] = e
	}
	return effs
}

// intervalsOverlap reports whether any range of a intersects any of b.
func intervalsOverlap(a, b []analysis.Interval) bool {
	for _, x := range a {
		for _, y := range b {
			if x.Len > 0 && y.Len > 0 && x.Off < y.Off+y.Len && y.Off < x.Off+x.Len {
				return true
			}
		}
	}
	return false
}

// buildStepDeps constructs the step-dependence DAG over the effect sets:
// for every ordered pair, a true dep where j reads what i wrote, an anti
// dep where j overwrites what i reads, an output dep where both write the
// same storage, and a scratch edge where both kernels share a scratch
// block. All hazard edges are kept (no transitive reduction) so the
// verifier's edge-presence rule is exact.
func buildStepDeps(effs []analysis.StepEffects) []analysis.DepEdge {
	var edges []analysis.DepEdge
	for i := range effs {
		for j := i + 1; j < len(effs); j++ {
			a, b := &effs[i], &effs[j]
			if intervalsOverlap(a.Writes, b.Reads) {
				edges = append(edges, analysis.DepEdge{From: i, To: j, Kind: analysis.DepTrue})
			}
			if intervalsOverlap(a.Reads, b.Writes) {
				edges = append(edges, analysis.DepEdge{From: i, To: j, Kind: analysis.DepAnti})
			}
			if intervalsOverlap(a.Writes, b.Writes) {
				edges = append(edges, analysis.DepEdge{From: i, To: j, Kind: analysis.DepOutput})
			}
			if a.ScratchID >= 0 && a.ScratchID == b.ScratchID {
				edges = append(edges, analysis.DepEdge{From: i, To: j, Kind: analysis.DepScratch})
			}
		}
	}
	return edges
}

// computeWaves assigns each step its longest-path level in the DAG and
// groups steps by level: wave w holds every step whose deepest dependence
// chain has length w. Steps are in execution order, and every edge points
// forward, so one pass in index order finalizes the levels.
func computeWaves(n int, edges []analysis.DepEdge) [][]int {
	if n == 0 {
		return nil
	}
	preds := make([][]int, n)
	for _, e := range edges {
		preds[e.To] = append(preds[e.To], e.From)
	}
	level := make([]int, n)
	maxLevel := 0
	for j := 0; j < n; j++ {
		for _, f := range preds[j] {
			if level[f]+1 > level[j] {
				level[j] = level[f] + 1
			}
		}
		if level[j] > maxLevel {
			maxLevel = level[j]
		}
	}
	waves := make([][]int, maxLevel+1)
	for j := 0; j < n; j++ {
		waves[level[j]] = append(waves[level[j]], j)
	}
	return waves
}

// assignShardScratch replaces the former single shared sharded-scratch
// block with the analyzer's verdict: scratch-using kernels scheduled into
// the same data-dependence wave get distinct scratch blocks (duplicated, up
// to maxShardScratchBlocks copies) so they may run concurrently; users
// sharing a block — different waves, or same-wave overflow past the cap —
// are serialized by the scratch-conflict edges buildStepDeps derives from
// the block ids. Sequential execution is unaffected either way: distinct
// blocks are always safe, and the kernels re-initialise their scratch each
// Run, so the zero-alloc steady state is untouched.
func (cp *CompiledProgram) assignShardScratch(scratchFloats int) {
	dataWaves := computeWaves(len(cp.steps), buildStepDeps(cp.stepEffects()))
	waveOf := make([]int, len(cp.steps))
	for w, wave := range dataWaves {
		for _, s := range wave {
			waveOf[s] = w
		}
	}
	perWave := make(map[int]int)
	blocks := 0
	for i := range cp.steps {
		sl, ok := cp.steps[i].kern.(core.ShardedLowering)
		if !ok || sl.ShardScratchFloats() == 0 {
			continue
		}
		c := perWave[waveOf[i]]
		perWave[waveOf[i]] = c + 1
		b := c % maxShardScratchBlocks
		cp.steps[i].scratch = int32(b)
		if b+1 > blocks {
			blocks = b + 1
		}
	}
	if blocks == 0 {
		return
	}
	cp.stats.ShardScratchFloats = scratchFloats * blocks
	scratch := make([][]float32, blocks)
	for i := range scratch {
		scratch[i] = make([]float32, scratchFloats)
	}
	for i := range cp.steps {
		if cp.steps[i].scratch < 0 {
			continue
		}
		cp.steps[i].kern.(core.ShardedLowering).BindShardScratch(scratch[cp.steps[i].scratch])
	}
}

// buildWaveSchedule computes the authoritative dependence DAG and wave
// schedule from the final effect sets (scratch blocks included) and folds
// the shape into the stats.
func (cp *CompiledProgram) buildWaveSchedule() {
	cp.depEdges = buildStepDeps(cp.stepEffects())
	cp.waves = computeWaves(len(cp.steps), cp.depEdges)
	cp.stats.Waves = len(cp.waves)
	for _, w := range cp.waves {
		if len(w) > cp.stats.MaxWaveWidth {
			cp.stats.MaxWaveWidth = len(w)
		}
	}
}

// Waves exposes the verified wave schedule (step indices per wave) for
// inspection and tests.
func (cp *CompiledProgram) Waves() [][]int {
	out := make([][]int, len(cp.waves))
	for i, w := range cp.waves {
		out[i] = append([]int(nil), w...)
	}
	return out
}

// waveTask is one step-execution request dispatched to the shared pool.
type waveTask struct {
	cp  *CompiledProgram
	idx int32
}

var (
	stepPoolOnce sync.Once
	stepTasks    chan waveTask
)

// stepWorkerPool lazily spawns the bounded, process-wide step-worker set.
// The workers live for the process (spawned exactly once), so steady-state
// wave dispatch allocates nothing.
func stepWorkerPool() chan<- waveTask {
	stepPoolOnce.Do(func() {
		n := runtime.NumCPU()
		if n > maxStepWorkers {
			n = maxStepWorkers
		}
		if n < 2 {
			n = 2
		}
		stepTasks = make(chan waveTask, 4*maxStepWorkers)
		for i := 0; i < n; i++ {
			//lint:allow goroutine-accounting -- bounded process-lifetime pool worker, spawned once; every dispatched step is tracked by its run's WaitGroup
			go stepWorker()
		}
	})
	return stepTasks
}

// stepWorker drains the shared task channel for the life of the process.
func stepWorker() {
	for t := range stepTasks {
		t.cp.execStep(t.idx)
	}
}

// execStep runs one dispatched step of the current wave, converting a step
// panic into the run's first error so a crashing kernel cannot take the
// pool (or the process) down with it.
func (cp *CompiledProgram) execStep(idx int32) {
	defer cp.waveStepDone(idx)
	st := &cp.steps[idx]
	sp := telemetry.StartSpanCtx(cp.wctx, "program", "step", st.label)
	if err := cp.runStep(cp.wctx, st); err != nil {
		cp.failWave(err)
		sp.EndErr(err.Error())
		return
	}
	sp.End()
}

// waveStepDone recovers a step panic into the run error and releases the
// wave barrier. Deferred by execStep, so Done runs on every exit path.
func (cp *CompiledProgram) waveStepDone(idx int32) {
	if r := recover(); r != nil {
		cp.failWave(fmt.Errorf("program: step %s panicked: %v", cp.steps[idx].name, r))
	}
	cp.wwg.Done()
}

// failWave records the wave's first error.
func (cp *CompiledProgram) failWave(err error) {
	cp.wmu.Lock()
	if cp.werr == nil {
		cp.werr = err
	}
	cp.wmu.Unlock()
}

// runWaves executes the verified wave schedule: width-1 waves run inline on
// this goroutine, wider waves dispatch onto the shared step-worker pool and
// barrier before the next wave starts. Step spans are siblings parented to
// the run span (the trace's current parent is left at the run span —
// concurrent steps cannot take turns mutating it), and ctx is checked
// between waves with kernels honouring it inside a wave. Steady state
// allocates nothing: tasks are value structs on a pre-made channel, and the
// barrier is the program's reusable WaitGroup.
func (cp *CompiledProgram) runWaves(ctx context.Context) error {
	tasks := stepWorkerPool()
	cp.wctx = ctx
	cp.werr = nil
	done := ctx.Done()
	for _, wave := range cp.waves {
		if done != nil {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		if len(wave) == 1 {
			st := &cp.steps[wave[0]]
			sp := telemetry.StartSpanCtx(ctx, "program", "step", st.label)
			if err := cp.runStep(ctx, st); err != nil {
				sp.EndErr(err.Error())
				return err
			}
			sp.End()
			continue
		}
		cp.wwg.Add(len(wave))
		for _, idx := range wave {
			tasks <- waveTask{cp: cp, idx: int32(idx)}
		}
		cp.wwg.Wait()
		cp.wmu.Lock()
		err := cp.werr
		cp.wmu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}
