package program

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/schedule"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// Compilation: bind a recorded Program to a concrete (graph, scheduler,
// backend) triple. Three passes run once, here, instead of on every forward
// call:
//
//  1. fusion (fuse.go) — if the scheduler fuses, materialise+scatter pairs
//     merge into fused-aggregation operators;
//  2. schedule assignment — every graph operator's schedule is resolved
//     through the engine (tuner / predictor / fixed baseline) and lowered
//     once to a backend CompiledKernel bound to its arena operands;
//  3. buffer planning (buffers.go) — intermediates map onto arena slots.
//
// The resulting CompiledProgram.Run is a flat step loop over prebound
// tensors: no scheduling, no validation, no allocation.

// Scheduler decides graph-operator schedules at compile time. It is the
// schedule-assignment subset of models.Engine, declared structurally here so
// internal/models can pass its engines in without an import cycle.
type Scheduler interface {
	// Device is the simulated device schedules are chosen for.
	Device() *gpu.Device
	// ScheduleFor returns the schedule for one graph-operator task.
	ScheduleFor(t schedule.Task) core.Schedule
	// Fused reports whether message creation should fuse into aggregation.
	Fused() bool
}

// ScheduledOp records one graph operator's compile-time schedule decision.
type ScheduledOp struct {
	Name     string
	Op       ops.OpInfo
	Schedule core.Schedule
}

// Stats summarises what compilation did.
type Stats struct {
	// GraphKernels is the number of graph-operator kernels the compiled
	// program launches per Run (after fusion).
	GraphKernels int
	// FusedPairs is how many materialise+scatter pairs the fusion pass merged.
	FusedPairs int
	// FusedRegions is how many fusion regions absorbed at least one node
	// beyond the pair rewrite (regions.go).
	FusedRegions int
	// RegionSavedBytes is the cost model's claimed traffic saving across all
	// fusion regions.
	RegionSavedBytes int64
	// GemmBlocked is how many GEMM steps compile onto the packed
	// column-panel kernel (tensor.GemmPackedInto) instead of the naive loop.
	GemmBlocked int
	// Steps is the number of runtime steps the compiled program executes per
	// Run (kernel launches plus dense/elementwise stages).
	Steps int
	// RemovedNodes is how many nodes dead-code elimination dropped.
	RemovedNodes int
	// BufferSlots and PeakLive describe the buffer plan (equal by
	// construction for the linear-scan allocator).
	BufferSlots int
	PeakLive    int
	// ArenaFloats is the shared intermediate storage in float32 elements.
	ArenaFloats int
	// Shards is the shard count the backend lowered graph kernels over
	// (1 when sharding is off or the backend has no sharded path).
	Shards int
	// ShardEdgeCut is the cross-shard edge fraction of the partition behind
	// the sharded kernels (0 when unsharded).
	ShardEdgeCut float64
	// ShardScratchFloats is the program-wide shard-partial scratch in
	// float32 elements: blocks sized for the largest kernel, duplicated per
	// the wave analyzer's verdict (waves.go) so same-wave sharded kernels
	// never share one. Total across all blocks.
	ShardScratchFloats int
	// Waves is the number of topological levels in the verified wave
	// schedule (waves.go); every step in one wave is provably independent
	// of its wave-mates.
	Waves int
	// MaxWaveWidth is the widest wave. 1 means the program is a pure chain:
	// wave execution would add nothing, and RunCtx keeps the sequential
	// loop even with -parallel-steps on.
	MaxWaveWidth int
}

// step is one executable operation of the compiled program, with all tensors
// resolved to arena views or constants at compile time.
type step struct {
	op      NodeOp
	name    string
	label   string // precomputed span label, so Run-time tracing allocates nothing
	x, y    *tensor.Dense
	out     *tensor.Dense
	chain   []Unary
	scale   float32
	inPlace bool
	kern    core.CompiledKernel
	// pb is the packed weight panel of blocked GEMM steps (nil = naive loop).
	pb *tensor.PackedB
	// vx, vy, vout are the operand/output value ids, kept so the wave
	// analyzer (waves.go) can resolve the step's arena effect intervals.
	vx, vy, vout ValueID
	// scratch is the shared sharded-scratch block this step's kernel is
	// bound to (-1 = none); same-block steps are serialized by the wave
	// schedule's scratch-conflict edges.
	scratch int32
}

// regionsEnabled reports whether s opts into cost-modeled fusion regions:
// schedulers implementing RegionPolicy decide; everyone else gets regions
// whenever they fuse at all.
func regionsEnabled(s Scheduler) bool {
	if rp, ok := s.(RegionPolicy); ok {
		return rp.FusionRegions()
	}
	return true
}

// regionCopyStage builds the prologue stage of a composed region: copy the
// live operand into the compile-time staging buffer and apply the absorbed
// chain. Runs on the zero-allocation path — the closure captures only
// pre-sized tensors.
func regionCopyStage(dst, src *tensor.Dense, chain []Unary) core.RegionStage {
	return func() {
		copy(dst.Data, src.Data)
		for _, u := range chain {
			u.Apply(dst)
		}
	}
}

// regionInPlaceStage builds the epilogue stage of a composed region: apply
// the absorbed chain to the region output in place.
func regionInPlaceStage(t *tensor.Dense, chain []Unary) core.RegionStage {
	return func() {
		for _, u := range chain {
			u.Apply(t)
		}
	}
}

// ErrConcurrentRun reports two goroutines calling Run/RunCtx on the same
// CompiledProgram at once. The program's intermediates live in one shared
// arena, so overlapping runs would silently corrupt each other's buffers;
// the guard turns that data race into a loud, immediate error. Callers that
// need concurrency compile one program per goroutine or serialize calls
// (e.g. through a single worker, as internal/serve does).
var ErrConcurrentRun = errors.New("program: concurrent Run on a CompiledProgram (not safe for concurrent use; compile one program per goroutine or serialize calls)")

// CompiledProgram is a model forward pass compiled for one graph, scheduler
// and backend. Run may be called repeatedly; it is not safe for concurrent
// use (all intermediates live in one shared arena) — overlapping calls fail
// fast with ErrConcurrentRun.
type CompiledProgram struct {
	pre    *Program // recorded program, kept for re-verification
	prog   *Program
	g      *graph.Graph
	plan   *BufferPlan
	arena  *tensor.Arena
	input  *tensor.Dense
	output *tensor.Dense
	steps  []step
	stats  Stats
	scheds []ScheduledOp
	// slotOffsets is each arena slot's float offset, kept so the wave
	// analyzer can turn slot assignments into effect intervals.
	slotOffsets []int
	// depEdges and waves are the verified step-dependence DAG and wave
	// schedule (waves.go).
	depEdges []analysis.DepEdge
	waves    [][]int
	// running guards against concurrent Run calls (0 = idle, 1 = running).
	running atomic.Int32
	// Wave-run state (waves.go): the active run's context, the per-wave
	// barrier, and the mutex-guarded first step error.
	wctx context.Context
	wwg  sync.WaitGroup
	wmu  sync.Mutex
	werr error
}

// Compile lowers p onto graph g with schedules chosen by s and kernels
// executed by backend (nil = core.DefaultBackend()).
func Compile(p *Program, g *graph.Graph, s Scheduler, backend core.ExecBackend) (cp *CompiledProgram, err error) {
	if backend == nil {
		backend = core.DefaultBackend()
	}
	csp := telemetry.StartSpan("program", "compile", "compile")
	defer func() {
		if err != nil {
			csp.EndErr(err.Error())
		} else {
			csp.End()
		}
	}()
	var stats Stats
	numV, numE := g.NumVertices(), g.NumEdges()

	// Pass 1: fusion (engines that fuse) + dead-code elimination. Fusing
	// schedulers get cost-modeled region growth unless they implement
	// RegionPolicy and turn it off; regions subsume pair fusion (the pair is
	// the degenerate region), so exactly one of the two passes runs.
	work := p
	if s.Fused() {
		if regionsEnabled(s) {
			var rstats RegionStats
			work, rstats = FuseRegions(work, numV, numE, DefaultCostModel())
			stats.FusedPairs = rstats.Pairs
			stats.FusedRegions = rstats.Regions
			stats.RegionSavedBytes = rstats.SavedBytes
		} else {
			work, stats.FusedPairs = Fuse(work)
		}
	}
	work, stats.RemovedNodes = EliminateDead(work)
	stats.GraphKernels = work.GraphOpCount()

	// Pass 3 runs before 2 in code: kernels lower against planned storage.
	plan, err := PlanBuffers(work, numV, numE)
	if err != nil {
		return nil, err
	}
	stats.BufferSlots = len(plan.SlotFloats)
	stats.PeakLive = plan.PeakLive
	stats.ArenaFloats = plan.TotalFloats

	// Mandatory static verification (internal/analysis): SSA form, Table-4
	// operand typing, fusion legality against the recorded program, and
	// buffer-plan alias safety. A violation aborts compilation — an illegal
	// plan is never lowered.
	if err := verifyCompilation(p, work, plan, numV, numE); err != nil {
		return nil, fmt.Errorf("program: %s: %w", work.Model, err)
	}

	// Carve one arena view per planned value; constants keep their own
	// recorded storage.
	arena := tensor.NewArena(plan.TotalFloats)
	offsets := make([]int, len(plan.SlotFloats))
	off := 0
	for i, f := range plan.SlotFloats {
		offsets[i] = off
		off += f
	}
	views := make([]*tensor.Dense, len(work.Values))
	for i := range work.Nodes {
		n := &work.Nodes[i]
		if n.Op == OpConst {
			views[n.Out] = n.Const
			continue
		}
		v := work.Values[n.Out]
		views[n.Out] = arena.View(offsets[plan.Assign[n.Out]], work.RowsOf(n.Out, numV, numE), v.Cols)
	}

	cp = &CompiledProgram{
		pre: p, prog: work, g: g, plan: plan, arena: arena,
		input:       views[work.Input],
		output:      views[work.Output],
		steps:       make([]step, 0, len(work.Nodes)),
		stats:       stats,
		slotOffsets: offsets,
	}

	// Pass 2: schedule assignment + one-time kernel lowering, interleaved
	// with step construction.
	for i := range work.Nodes {
		n := &work.Nodes[i]
		st := step{op: n.Op, name: n.Name, label: stepLabel(n.Op, n.Name), out: views[n.Out], scale: n.Scale, chain: n.Chain, inPlace: plan.InPlace[i],
			vx: n.X, vy: n.Y, vout: n.Out, scratch: -1}
		if n.X != NoValue {
			st.x = views[n.X]
		}
		if n.Y != NoValue {
			st.y = views[n.Y]
		}
		switch n.Op {
		case OpInput, OpConst:
			continue // no runtime work; input copy happens in Run
		case OpGEMM:
			// GEMM weights are record-time constants (builder-enforced), so
			// the column-panel pack amortises over every Run; the packed
			// kernel is bit-identical to the naive loop (tensor/gemm.go).
			st.pb = tensor.PackB(views[n.Y])
			cp.stats.GemmBlocked++
		case OpGraph:
			// The task carries the nameless op so schedule lookups hit the
			// same tuner cache entries the interpreter populates.
			task := schedule.Task{Graph: g, Op: n.GOp, Feat: work.Values[n.Out].Cols, Device: s.Device()}
			if n.GOp.AKind != tensor.Null {
				task.ACols = work.Values[n.X].Cols
			}
			if n.GOp.BKind != tensor.Null {
				task.BCols = work.Values[n.Y].Cols
			}
			sched := s.ScheduleFor(task)
			if telemetry.Enabled() { // guard keeps sched.String() off the disabled path
				telemetry.RecordScheduleChoice(n.Name, sched.Strategy.Code(), sched.String())
			}
			op := n.GOp
			op.Name = n.Name
			plan2, err := core.Compile(op, sched)
			if err != nil {
				return nil, fmt.Errorf("program: %s: %w", n.Name, err)
			}
			// Region composition: absorbed operand chains read through a
			// compile-time staging buffer (pre stages fill it each Run), and
			// the epilogue chain runs in place over the output — all inside
			// one composed kernel, on every backend.
			ax, ay := st.x, st.y
			var pre, post []core.RegionStage
			if r := n.Region; r != nil && r.Absorbed > 0 {
				if len(r.PreX) > 0 {
					staging := tensor.NewDense(ax.Rows, ax.Cols)
					pre = append(pre, regionCopyStage(staging, st.x, r.PreX))
					ax = staging
				}
				if len(r.PreY) > 0 {
					staging := tensor.NewDense(ay.Rows, ay.Cols)
					pre = append(pre, regionCopyStage(staging, st.y, r.PreY))
					ay = staging
				}
				if len(r.Post) > 0 {
					post = append(post, regionInPlaceStage(st.out, r.Post))
				}
			}
			operands := core.Operands{
				A: tensor.Typed{Kind: op.AKind, T: ax},
				B: tensor.Typed{Kind: op.BKind, T: ay},
				C: tensor.Typed{Kind: op.CKind, T: st.out},
			}
			kern, err := backend.Lower(plan2, g, operands)
			if err != nil {
				return nil, fmt.Errorf("program: %s: %w", n.Name, err)
			}
			if len(pre) > 0 || len(post) > 0 {
				kern = core.ComposeRegion(kern, pre, post, n.Region.Name, g)
			}
			st.kern = kern
			cp.scheds = append(cp.scheds, ScheduledOp{Name: n.Name, Op: op, Schedule: sched})
		}
		cp.steps = append(cp.steps, st)
	}

	// Sharded kernels: fold the partition shape into the stats and rebind
	// per-shard partials onto program-owned blocks sized for the largest
	// kernel. Which kernels may share a block is the wave analyzer's call
	// (assignShardScratch, waves.go): same-wave users get distinct blocks
	// so they can overlap, everyone else shares, and the program's shard
	// scratch stops scaling with kernel count either way. The kernels
	// re-initialise the scratch each Run, so the zero-alloc steady state is
	// untouched.
	cp.stats.Shards = 1
	scratchFloats := 0
	for i := range cp.steps {
		sl, ok := cp.steps[i].kern.(core.ShardedLowering)
		if !ok {
			continue
		}
		if n := sl.ShardCount(); n > cp.stats.Shards {
			cp.stats.Shards = n
		}
		if cut := sl.ShardEdgeCut(); cut > cp.stats.ShardEdgeCut {
			cp.stats.ShardEdgeCut = cut
		}
		if f := sl.ShardScratchFloats(); f > scratchFloats {
			scratchFloats = f
		}
	}
	if scratchFloats > 0 {
		cp.assignShardScratch(scratchFloats)
	}

	// Cross-check what the backend actually lowered: each kernel's declared
	// write-conflict discipline must satisfy the re-derived atomic-need
	// analysis for its (operator, strategy) pair.
	if diags := verifyStepLowerings(cp); len(diags) > 0 {
		return nil, fmt.Errorf("program: %s: %w", work.Model, &analysis.VerifyError{Diags: diags})
	}

	// Step-effect dependence analysis (waves.go): derive the dependence DAG
	// and wave schedule from the final effect sets (scratch blocks
	// included), then prove them with the mandatory wave rules — a schedule
	// that would race is unrepresentable as a successful compile.
	cp.buildWaveSchedule()
	if err := cp.verifyWaveSchedule(); err != nil {
		return nil, fmt.Errorf("program: %s: %w", work.Model, err)
	}

	cp.stats.Steps = len(cp.steps)
	fusedRegionsTotal.Add(int64(cp.stats.FusedRegions))
	gemmBlockedTotal.Add(int64(cp.stats.GemmBlocked))
	wavesScheduledTotal.Add(int64(cp.stats.Waves))
	return cp, nil
}

// Process-wide compile counters, surfaced so tooling (ugrapher-bench -json)
// can report fusion-region and blocked-GEMM activity without threading every
// CompiledProgram through.
var (
	fusedRegionsTotal   atomic.Int64
	gemmBlockedTotal    atomic.Int64
	wavesScheduledTotal atomic.Int64
)

// GlobalCounters is a snapshot of the process-wide compile counters.
type GlobalCounters struct {
	// FusedRegions is the total count of compiled fusion regions that
	// absorbed nodes beyond pair fusion.
	FusedRegions int64
	// GemmBlocked is the total count of GEMM steps compiled onto the packed
	// column-panel kernel.
	GemmBlocked int64
	// WavesScheduled is the total count of verified wave levels across all
	// compiled programs.
	WavesScheduled int64
}

// GlobalStats snapshots the process-wide compile counters.
func GlobalStats() GlobalCounters {
	return GlobalCounters{
		FusedRegions:   fusedRegionsTotal.Load(),
		GemmBlocked:    gemmBlockedTotal.Load(),
		WavesScheduled: wavesScheduledTotal.Load(),
	}
}

// stepLabel names a step for its trace span, computed once at compile time
// so the Run-time tracing path performs no string building.
func stepLabel(op NodeOp, name string) string {
	if name == "" {
		return op.String()
	}
	return op.String() + " " + name
}

// Run executes the compiled forward pass on input features x (|V| rows,
// InCols columns). The returned tensor is the program's arena-resident
// output view: it stays valid until the next Run, which overwrites it.
// Clone it to keep results across calls.
func (cp *CompiledProgram) Run(x *tensor.Dense) (*tensor.Dense, error) {
	return cp.RunCtx(context.Background(), x)
}

// revalidate re-checks the step tensors' shape/storage consistency at Run
// time. The views were correct at Compile time, but they alias one shared
// arena: code holding the returned output (or Input/Output accessors) could
// have reshaped a view in place, and the step loop below indexes raw Data
// by Rows*Cols. Allocation-free.
func (cp *CompiledProgram) revalidate() error {
	for i := range cp.steps {
		st := &cp.steps[i]
		for _, d := range [...]*tensor.Dense{st.x, st.y, st.out} {
			if d == nil {
				continue
			}
			if d.Rows < 0 || d.Cols < 0 || len(d.Data) != d.Rows*d.Cols {
				return fmt.Errorf("program: step %d (%s %s): tensor shape %dx%d inconsistent with storage length %d",
					i, st.op, st.name, d.Rows, d.Cols, len(d.Data))
			}
		}
	}
	return nil
}

// RunCtx is Run with cancellation: ctx is checked between steps and passed
// through to graph kernels, which honour it at their backend's granularity.
// After a cancelled run the arena holds partial intermediates; the next Run
// overwrites them, so the program remains usable.
func (cp *CompiledProgram) RunCtx(ctx context.Context, x *tensor.Dense) (*tensor.Dense, error) {
	if !cp.running.CompareAndSwap(0, 1) {
		return nil, ErrConcurrentRun
	}
	defer cp.running.Store(0)
	if x == nil || x.Rows != cp.input.Rows || x.Cols != cp.input.Cols {
		got := "nil"
		if x != nil {
			got = fmt.Sprintf("%dx%d", x.Rows, x.Cols)
		}
		return nil, fmt.Errorf("program: input must be %dx%d, got %s", cp.input.Rows, cp.input.Cols, got)
	}
	if err := cp.revalidate(); err != nil {
		return nil, err
	}
	// StartSpanCtx adopts the request trace from ctx when one is present
	// (minted at serving admission, DESIGN.md §8); the run span becomes the
	// causal parent of the step spans, and each step span of the kernel
	// spans below it, via the trace's mutation-based current pointer — no
	// per-span context derivation, so the steady state stays zero-alloc.
	run := telemetry.StartSpanCtx(ctx, "program", "run", "forward")
	prevRun := run.MakeCurrent()
	copy(cp.input.Data, x.Data)
	var err error
	if parallelSteps.Load() && cp.stats.MaxWaveWidth > 1 {
		err = cp.runWaves(ctx)
	} else {
		err = cp.runSequential(ctx)
	}
	run.RestoreCurrent(prevRun)
	if err != nil {
		msg := err.Error()
		if err == ctx.Err() {
			msg = "cancelled"
		}
		run.EndErr(msg)
		return nil, err
	}
	run.End()
	telemetry.CountProgramRun()
	return cp.output, nil
}

// runSequential is the classic step loop: one step at a time, each step
// span made the trace's current parent so kernel spans nest below it.
func (cp *CompiledProgram) runSequential(ctx context.Context) error {
	done := ctx.Done()
	for i := range cp.steps {
		if done != nil {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		st := &cp.steps[i]
		sp := telemetry.StartSpanCtx(ctx, "program", "step", st.label)
		prevStep := sp.MakeCurrent()
		if err := cp.runStep(ctx, st); err != nil {
			sp.RestoreCurrent(prevStep)
			sp.EndErr(err.Error())
			return err
		}
		sp.RestoreCurrent(prevStep)
		sp.End()
	}
	return nil
}

// runStep executes one compiled step against its prebound tensors.
func (cp *CompiledProgram) runStep(ctx context.Context, st *step) error {
	switch st.op {
	case OpGEMM:
		if st.pb != nil {
			tensor.GemmPackedInto(st.out, st.x, st.pb)
		} else {
			tensor.MatMulInto(st.out, st.x, st.y)
		}
	case OpUnary:
		if !st.inPlace {
			copy(st.out.Data, st.x.Data)
		}
		for _, u := range st.chain {
			u.Apply(st.out)
		}
	case OpAddScaled:
		tensor.AddScaledInto(st.out, st.x, st.y, st.scale)
	case OpHeadMerge:
		tensor.RowMeanInto(st.out, st.x)
	case OpConcat:
		tensor.ConcatInto(st.out, st.x, st.y)
	case OpGraph:
		if err := st.kern.RunCtx(ctx); err != nil {
			return fmt.Errorf("program: %s: %w", st.name, err)
		}
	default:
		return fmt.Errorf("program: unexpected step op %s", st.op)
	}
	return nil
}

// Stats reports what compilation did.
func (cp *CompiledProgram) Stats() Stats { return cp.stats }

// Schedules lists the compile-time schedule decision of every graph
// operator, in execution order.
func (cp *CompiledProgram) Schedules() []ScheduledOp { return cp.scheds }

// Program returns the compiled (post-fusion) program.
func (cp *CompiledProgram) Program() *Program { return cp.prog }

// BufferPlan exposes the liveness/slot assignment for inspection and tests.
func (cp *CompiledProgram) BufferPlan() *BufferPlan { return cp.plan }
