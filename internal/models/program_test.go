package models

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/gpu"
	"repro/internal/predictor"
	"repro/internal/program"
	"repro/internal/tensor"
)

var (
	predOnce sync.Once
	predP    *predictor.Predictor
	predErr  error
)

// smallPredictor trains a reduced predictor once, shared across tests (same
// configuration the predictor package's own tests use).
func smallPredictor(t *testing.T) *predictor.Predictor {
	t.Helper()
	predOnce.Do(func() {
		cfg := predictor.DefaultTrainConfig(gpu.V100())
		cfg.NumGraphs = 24
		cfg.MaxVertices = 8000
		cfg.SchedulesPerTask = 12
		cfg.GBDT.Rounds = 60
		predP, _, predErr = predictor.Train(cfg)
	})
	if predErr != nil {
		t.Fatal(predErr)
	}
	return predP
}

// TestCompiledMatchesForward is the golden equivalence suite: for every
// model, the compiled program must reproduce the interpreter's Forward
// within 1e-4, across both uGrapher engines (tuned and predicted) and both
// host backends (reference and parallel).
func TestCompiledMatchesForward(t *testing.T) {
	g := smallGraph(t, 21)
	const inFeat, classes = 12, 5
	x := tensor.NewDense(g.NumVertices(), inFeat)
	x.FillRandom(rand.New(rand.NewSource(77)), 1)

	backends := []core.ExecBackend{
		core.ReferenceBackend(),
		core.NewParallelBackend(2),
		core.NewShardedParallelBackend(2, 4),
	}
	engines := []struct {
		name string
		mk   func(b core.ExecBackend) Engine
	}{
		{"tuned", func(b core.ExecBackend) Engine {
			eng := NewTunedEngine(gpu.V100())
			eng.Compute = b
			return eng
		}},
		{"predicted", func(b core.ExecBackend) Engine {
			eng := NewPredictedEngine(gpu.V100(), smallPredictor(t))
			eng.Compute = b
			return eng
		}},
	}

	for _, m := range All() {
		for _, ec := range engines {
			for _, b := range backends {
				eng := ec.mk(b)
				want, err := m.Forward(g, x, classes, eng)
				if err != nil {
					t.Fatalf("%s/%s/%s: Forward: %v", m.Name(), ec.name, b.Name(), err)
				}
				cp, err := CompileModel(m, g, inFeat, classes, eng)
				if err != nil {
					t.Fatalf("%s/%s/%s: CompileModel: %v", m.Name(), ec.name, b.Name(), err)
				}
				got, err := cp.Run(x)
				if err != nil {
					t.Fatalf("%s/%s/%s: Run: %v", m.Name(), ec.name, b.Name(), err)
				}
				if got.Rows != g.NumVertices() || got.Cols != classes {
					t.Fatalf("%s/%s/%s: output %dx%d, want %dx%d",
						m.Name(), ec.name, b.Name(), got.Rows, got.Cols, g.NumVertices(), classes)
				}
				if !got.AllClose(want, 1e-4, 1e-4) {
					t.Errorf("%s/%s/%s: compiled != interpreted (maxdiff %v)",
						m.Name(), ec.name, b.Name(), got.MaxDiff(want))
				}
			}
		}
	}
}

// TestCompiledMatchesForwardUnfused covers the decomposed path: an engine
// that does not fuse must still match, with the materialise+scatter pairs
// left as separate kernels.
func TestCompiledMatchesForwardUnfused(t *testing.T) {
	g := smallGraph(t, 22)
	const inFeat, classes = 8, 4
	x := tensor.NewDense(g.NumVertices(), inFeat)
	x.FillRandom(rand.New(rand.NewSource(5)), 1)

	for _, fuses := range []bool{true, false} {
		eng := &FixedEngine{
			EngineName:   "fixed-test",
			Dev:          gpu.V100(),
			AggrSchedule: core.DefaultSchedule,
			MsgCSchedule: core.DefaultSchedule,
			Fuses:        fuses,
			Compute:      core.ReferenceBackend(),
		}
		for _, m := range All() {
			want, err := m.Forward(g, x, classes, eng)
			if err != nil {
				t.Fatal(err)
			}
			cp, err := CompileModel(m, g, inFeat, classes, eng)
			if err != nil {
				t.Fatal(err)
			}
			got, err := cp.Run(x)
			if err != nil {
				t.Fatal(err)
			}
			if !got.AllClose(want, 1e-4, 1e-4) {
				t.Errorf("%s fuses=%v: compiled != interpreted (maxdiff %v)",
					m.Name(), fuses, got.MaxDiff(want))
			}
			if fuses && cp.Stats().FusedPairs == 0 {
				t.Errorf("%s: fusing engine produced no fused pairs", m.Name())
			}
			if !fuses && cp.Stats().FusedPairs != 0 {
				t.Errorf("%s: non-fusing engine fused %d pairs", m.Name(), cp.Stats().FusedPairs)
			}
		}
	}
}

// TestGCNFusionReducesGraphOps pins the acceptance criterion: the fusion
// pass provably shrinks GCN's graph-operator count. GCN records one
// materialise+scatter pair per layer (4 graph nodes), which fuse to 2
// kernels.
func TestGCNFusionReducesGraphOps(t *testing.T) {
	g := smallGraph(t, 23)
	p, err := Record(NewGCN(), g, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.GraphOpCount(); got != 4 {
		t.Fatalf("recorded graph ops = %d, want 4", got)
	}
	eng := fixedTestEngine{dev: gpu.V100(), sched: core.DefaultSchedule, fused: true}
	cp, err := CompileModel(NewGCN(), g, 16, 7, eng)
	if err != nil {
		t.Fatal(err)
	}
	st := cp.Stats()
	if st.FusedPairs != 2 {
		t.Errorf("fused pairs = %d, want 2", st.FusedPairs)
	}
	if st.GraphKernels != 2 {
		t.Errorf("graph kernels = %d, want 2", st.GraphKernels)
	}
	if st.GraphKernels >= p.GraphOpCount() {
		t.Errorf("fusion did not reduce graph ops: %d -> %d", p.GraphOpCount(), st.GraphKernels)
	}
}

// TestCompiledRunZeroAllocs pins the steady-state guarantee: after compile,
// Run allocates nothing — intermediates live in the arena, kernels reuse
// their scratch, and sharded lowerings run from the scratch block the
// program bound at compile time. A single-worker parallel backend keeps the
// run on this goroutine so AllocsPerRun observes everything.
func TestCompiledRunZeroAllocs(t *testing.T) {
	g := smallGraph(t, 24)
	const inFeat, classes = 16, 7
	x := tensor.NewDense(g.NumVertices(), inFeat)
	x.FillRandom(rand.New(rand.NewSource(3)), 1)

	defer program.SetParallelSteps(false)
	for _, parallel := range []bool{false, true} {
		program.SetParallelSteps(parallel)
		for _, shards := range []int{1, 4} {
			eng := &FixedEngine{
				EngineName:   "fixed-test",
				Dev:          gpu.V100(),
				AggrSchedule: core.DefaultSchedule,
				MsgCSchedule: core.DefaultSchedule,
				Fuses:        true,
				Compute:      core.NewShardedParallelBackend(1, shards),
			}
			for _, m := range All() {
				cp, err := CompileModel(m, g, inFeat, classes, eng)
				if err != nil {
					t.Fatal(err)
				}
				if shards > 1 && cp.Stats().Shards < 2 {
					t.Fatalf("%s: shards=%d compiled without a sharded lowering (stats: %d)",
						m.Name(), shards, cp.Stats().Shards)
				}
				if _, err := cp.Run(x); err != nil { // warm up
					t.Fatal(err)
				}
				allocs := testing.AllocsPerRun(10, func() {
					if _, err := cp.Run(x); err != nil {
						t.Fatal(err)
					}
				})
				if allocs != 0 {
					t.Errorf("%s shards=%d parallel=%v: steady-state Run allocates %.1f objects/run, want 0",
						m.Name(), shards, parallel, allocs)
				}
			}
		}
	}
}

// TestCompiledRunConcurrentGuard pins the documented concurrency contract:
// a CompiledProgram's intermediates share one arena, so two goroutines must
// never run it at once — and when they try, the loser fails loudly with
// program.ErrConcurrentRun instead of silently corrupting the arena. A
// SlowChunk injection holds one run inside its first graph kernel long
// enough that the second call deterministically overlaps; run under -race
// this also proves the guard itself is race-free.
func TestCompiledRunConcurrentGuard(t *testing.T) {
	defer faultinject.Reset()
	g := smallGraph(t, 27)
	const inFeat, classes = 8, 3
	eng := &FixedEngine{
		EngineName:   "fixed-test",
		Dev:          gpu.V100(),
		AggrSchedule: core.DefaultSchedule,
		MsgCSchedule: core.DefaultSchedule,
		Fuses:        true,
		Compute:      core.NewParallelBackend(1),
	}
	cp, err := CompileModel(NewGCN(), g, inFeat, classes, eng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewDense(g.NumVertices(), inFeat)
	x.FillRandom(rand.New(rand.NewSource(9)), 1)
	want, err := cp.Run(x) // warm, fault-free baseline
	if err != nil {
		t.Fatal(err)
	}
	snap := want.Clone()

	// Whichever run reaches a graph kernel first sleeps 150ms (fire-once);
	// the other call lands inside that window and must be rejected.
	faultinject.Arm(faultinject.SlowChunk, faultinject.Spec{After: 1, Limit: 1, Delay: 150 * time.Millisecond})
	started := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		close(started)
		_, err := cp.Run(x)
		errc <- err
	}()
	<-started
	time.Sleep(20 * time.Millisecond)
	_, err2 := cp.Run(x)
	err1 := <-errc

	rejected := 0
	for _, e := range []error{err1, err2} {
		switch {
		case e == nil:
		case errors.Is(e, program.ErrConcurrentRun):
			rejected++
		default:
			t.Fatalf("unexpected error from overlapping Run: %v", e)
		}
	}
	if rejected != 1 {
		t.Fatalf("overlapping runs rejected = %d, want exactly 1 ErrConcurrentRun (err1=%v, err2=%v)", rejected, err1, err2)
	}

	// The program stays usable after a rejected call, and the guard released.
	faultinject.Reset()
	out, err := cp.Run(x)
	if err != nil {
		t.Fatalf("Run after rejected overlap: %v", err)
	}
	if !out.Equal(snap) {
		t.Error("post-overlap run differs from baseline")
	}
}

// TestCompiledRunRepeatStability: rerunning a compiled program with the same
// input is bit-identical — buffer reuse must not leak state across runs.
func TestCompiledRunRepeatStability(t *testing.T) {
	g := smallGraph(t, 25)
	const inFeat, classes = 10, 3
	eng := fixedTestEngine{dev: gpu.V100(), sched: core.DefaultSchedule, fused: true}
	x := tensor.NewDense(g.NumVertices(), inFeat)
	x.FillRandom(rand.New(rand.NewSource(11)), 1)

	for _, m := range All() {
		cp, err := CompileModel(m, g, inFeat, classes, eng)
		if err != nil {
			t.Fatal(err)
		}
		first, err := cp.Run(x)
		if err != nil {
			t.Fatal(err)
		}
		snap := first.Clone()
		for rep := 0; rep < 3; rep++ {
			out, err := cp.Run(x)
			if err != nil {
				t.Fatal(err)
			}
			if !out.Equal(snap) {
				t.Fatalf("%s: rep %d differs from first run", m.Name(), rep)
			}
		}
	}
}

// TestTrainer exercises the compile-once epoch loop.
func TestTrainer(t *testing.T) {
	g := smallGraph(t, 26)
	const inFeat, classes = 12, 4
	eng := fixedTestEngine{dev: gpu.V100(), sched: core.DefaultSchedule, fused: true}
	m := NewGCN()

	tr, err := NewTrainer(m, g, inFeat, classes, eng)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Forward(g, tensorOnes(g.NumVertices(), inFeat), classes, eng)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 3; e++ {
		logits, err := tr.Epoch(tensorOnes(g.NumVertices(), inFeat))
		if err != nil {
			t.Fatal(err)
		}
		if !logits.AllClose(want, 1e-4, 1e-4) {
			t.Fatalf("epoch %d logits diverge from Forward (maxdiff %v)", e, logits.MaxDiff(want))
		}
	}
	if tr.Epochs() != 3 {
		t.Errorf("Epochs() = %d, want 3", tr.Epochs())
	}
	if tr.StepCost().Total <= 0 {
		t.Errorf("StepCost total = %v, want > 0", tr.StepCost().Total)
	}
	if tr.Compiled() == nil || tr.Compiled().Stats().GraphKernels == 0 {
		t.Error("Compiled() should expose a program with graph kernels")
	}
}

func tensorOnes(rows, cols int) *tensor.Dense {
	d := tensor.NewDense(rows, cols)
	d.Fill(1)
	return d
}
