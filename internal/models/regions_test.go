package models

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/tensor"
)

// regionEngine builds a fusing FixedEngine, pair-only or region-growing.
func regionEngine(pairOnly bool) *FixedEngine {
	return &FixedEngine{
		EngineName:     "region-test",
		Dev:            gpu.V100(),
		AggrSchedule:   core.DefaultSchedule,
		MsgCSchedule:   core.DefaultSchedule,
		Fuses:          true,
		PairFusionOnly: pairOnly,
		Compute:        core.ReferenceBackend(),
	}
}

// TestRegionFusionReducesSteps pins the tentpole acceptance criterion: on
// GCN and GAT, region growth launches strictly fewer kernels than pair-only
// fusion — the per-layer activation epilogues fold into the aggregation
// kernels — while the graph-kernel count and the numeric output both stay
// identical.
func TestRegionFusionReducesSteps(t *testing.T) {
	g := smallGraph(t, 31)
	const inFeat, classes = 16, 7
	x := tensor.NewDense(g.NumVertices(), inFeat)
	x.FillRandom(rand.New(rand.NewSource(19)), 1)

	for _, m := range []Model{NewGCN(), NewGAT()} {
		pair, err := CompileModel(m, g, inFeat, classes, regionEngine(true))
		if err != nil {
			t.Fatalf("%s pair-only: %v", m.Name(), err)
		}
		region, err := CompileModel(m, g, inFeat, classes, regionEngine(false))
		if err != nil {
			t.Fatalf("%s regions: %v", m.Name(), err)
		}
		ps, rs := pair.Stats(), region.Stats()
		if ps.FusedRegions != 0 {
			t.Errorf("%s: pair-only engine grew %d regions", m.Name(), ps.FusedRegions)
		}
		if rs.FusedRegions == 0 {
			t.Errorf("%s: region engine grew no regions", m.Name())
		}
		if rs.Steps >= ps.Steps {
			t.Errorf("%s: regions did not reduce kernel launches: %d -> %d",
				m.Name(), ps.Steps, rs.Steps)
		}
		if rs.GraphKernels != ps.GraphKernels {
			t.Errorf("%s: graph kernels changed %d -> %d (regions must only absorb elementwise nodes)",
				m.Name(), ps.GraphKernels, rs.GraphKernels)
		}
		if rs.RegionSavedBytes <= 0 {
			t.Errorf("%s: region saved bytes = %d, want > 0", m.Name(), rs.RegionSavedBytes)
		}
		a, err := pair.Run(x)
		if err != nil {
			t.Fatal(err)
		}
		b, err := region.Run(x)
		if err != nil {
			t.Fatal(err)
		}
		if !b.AllClose(a, 1e-4, 1e-4) {
			t.Errorf("%s: region output diverges from pair-only (maxdiff %v)", m.Name(), b.MaxDiff(a))
		}
	}
}

// TestRegionFusionAcrossModels: every model compiles and verifies with
// regions on, across all backends, matching the pair-only output.
func TestRegionFusionAcrossModels(t *testing.T) {
	g := smallGraph(t, 32)
	const inFeat, classes = 12, 5
	x := tensor.NewDense(g.NumVertices(), inFeat)
	x.FillRandom(rand.New(rand.NewSource(23)), 1)

	backends := []core.ExecBackend{
		core.ReferenceBackend(),
		core.NewParallelBackend(2),
		core.NewShardedParallelBackend(2, 4),
	}
	for _, m := range All() {
		pairEng := regionEngine(true)
		pair, err := CompileModel(m, g, inFeat, classes, pairEng)
		if err != nil {
			t.Fatal(err)
		}
		want, err := pair.Run(x)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range backends {
			eng := regionEngine(false)
			eng.Compute = b
			cp, err := CompileModel(m, g, inFeat, classes, eng)
			if err != nil {
				t.Fatalf("%s/%s: %v", m.Name(), b.Name(), err)
			}
			if rep := cp.Verify(); !rep.OK() {
				t.Fatalf("%s/%s: region compile reports violations: %v", m.Name(), b.Name(), rep.Diags)
			}
			got, err := cp.Run(x)
			if err != nil {
				t.Fatal(err)
			}
			if !got.AllClose(want, 1e-4, 1e-4) {
				t.Errorf("%s/%s: regions diverge from pair-only (maxdiff %v)",
					m.Name(), b.Name(), got.MaxDiff(want))
			}
		}
	}
}
