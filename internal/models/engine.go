package models

import (
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/predictor"
	"repro/internal/schedule"
)

// TunedEngine is uGrapher with grid-search tuning: every graph operator gets
// the best schedule found by searching the pruned space on the simulator
// (the paper's exhaustive baseline for predictor validation, Fig. 12).
// Results are memoised per (graph, op, feat, device).
type TunedEngine struct {
	Dev   *gpu.Device
	Tuner *schedule.Tuner
	// Compute is the host backend functional execution runs on
	// (nil = core.DefaultBackend()). Schedule cost always comes from the
	// simulator regardless of this choice.
	Compute core.ExecBackend
}

// NewTunedEngine builds a grid-search engine for dev.
func NewTunedEngine(dev *gpu.Device) *TunedEngine {
	return &TunedEngine{
		Dev:   dev,
		Tuner: schedule.NewTuner(gpu.WithMaxSampledBlocks(96)),
	}
}

// ComputeBackend implements BackendProvider.
func (e *TunedEngine) ComputeBackend() core.ExecBackend { return e.Compute }

// Name implements Engine.
func (e *TunedEngine) Name() string { return "uGrapher" }

// Device implements Engine.
func (e *TunedEngine) Device() *gpu.Device { return e.Dev }

// Fused implements Engine: uGrapher supports fused aggregation.
func (e *TunedEngine) Fused() bool { return true }

// GraphOpOverheadCycles implements Engine: uGrapher dispatches generated
// kernels through a compiled binding (~5 us at V100 clocks).
func (e *TunedEngine) GraphOpOverheadCycles() float64 { return 8000 }

// ScheduleFor implements Engine via cached grid search.
func (e *TunedEngine) ScheduleFor(t schedule.Task) core.Schedule {
	best, ok := e.Tuner.Tune(t)
	if !ok {
		return core.DefaultSchedule
	}
	return best.Schedule
}

// PredictedEngine is uGrapher with the learned strategy selector (§5.4): a
// trained GBDT ranks the schedule space per operator, eliminating the
// grid-search cost.
type PredictedEngine struct {
	Dev *gpu.Device
	P   *predictor.Predictor
	// Compute is the host backend functional execution runs on
	// (nil = core.DefaultBackend()).
	Compute core.ExecBackend
}

// NewPredictedEngine wraps a trained predictor.
func NewPredictedEngine(dev *gpu.Device, p *predictor.Predictor) *PredictedEngine {
	return &PredictedEngine{Dev: dev, P: p}
}

// ComputeBackend implements BackendProvider.
func (e *PredictedEngine) ComputeBackend() core.ExecBackend { return e.Compute }

// Name implements Engine.
func (e *PredictedEngine) Name() string { return "uGrapher-pred" }

// Device implements Engine.
func (e *PredictedEngine) Device() *gpu.Device { return e.Dev }

// Fused implements Engine.
func (e *PredictedEngine) Fused() bool { return true }

// GraphOpOverheadCycles implements Engine (same dispatch path as the tuned
// engine; the one-off prediction happens before inference).
func (e *PredictedEngine) GraphOpOverheadCycles() float64 { return 8000 }

// ScheduleFor implements Engine via model prediction.
func (e *PredictedEngine) ScheduleFor(t schedule.Task) core.Schedule {
	return e.P.Pick(t, nil)
}

// FixedEngine runs every operator with static schedules — the baseline
// frameworks' defining property (Table 1: "Parallelization Strategy:
// Static"). Aggregations and message creations may use different (but
// fixed) kernels, as the real systems do.
type FixedEngine struct {
	EngineName string
	Dev        *gpu.Device
	// AggrSchedule is used for operators producing vertex tensors.
	AggrSchedule core.Schedule
	// MsgCSchedule is used for operators producing edge tensors.
	MsgCSchedule core.Schedule
	// Fuses reports whether the system fuses message creation into
	// aggregation (PyG does not).
	Fuses bool
	// PairFusionOnly restricts a fusing engine to the classic
	// materialise+scatter pair rewrite, disabling cost-modeled fusion
	// regions. Real baselines that fuse (DGL) still only fuse the pair, so
	// experiments compare pair-only against region fusion with this switch.
	PairFusionOnly bool
	// HostOverheadCycles is the per-graph-operator dispatch cost of the
	// framework's host path.
	HostOverheadCycles float64
	// Compute is the host backend functional execution runs on
	// (nil = core.DefaultBackend()). Baselines differ in *schedule*, not in
	// functional semantics, so they share whatever backend computes
	// outputs.
	Compute core.ExecBackend
}

// ComputeBackend implements BackendProvider.
func (e *FixedEngine) ComputeBackend() core.ExecBackend { return e.Compute }

// Name implements Engine.
func (e *FixedEngine) Name() string { return e.EngineName }

// Device implements Engine.
func (e *FixedEngine) Device() *gpu.Device { return e.Dev }

// Fused implements Engine.
func (e *FixedEngine) Fused() bool { return e.Fuses }

// FusionRegions implements program.RegionPolicy: region growth is on unless
// the engine is pinned to pair-only fusion.
func (e *FixedEngine) FusionRegions() bool { return !e.PairFusionOnly }

// GraphOpOverheadCycles implements Engine.
func (e *FixedEngine) GraphOpOverheadCycles() float64 { return e.HostOverheadCycles }

// ScheduleFor implements Engine with the fixed mapping.
func (e *FixedEngine) ScheduleFor(t schedule.Task) core.Schedule {
	if t.Op.CKind.IsVertex() {
		return e.AggrSchedule
	}
	return e.MsgCSchedule
}
