package models

import (
	"context"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/program"
	"repro/internal/schedule"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// Training-step cost estimation — an extension beyond the paper (which
// evaluates inference only). The backward pass of every graph operator is
// itself a graph operator on the REVERSED graph: an aggregation's input
// gradient gathers output gradients along transposed edges, and a binary
// operator additionally needs a message-creation kernel for its second
// operand's per-edge gradient. uGrapher's abstraction therefore covers
// training with no new kernels — backward ops go through the same engine
// and get their own tuned schedules (on a graph whose degree distribution
// is the transpose's).

// enableTraining switches the context to also charge backward costs.
func (e *exec) enableTraining() {
	e.training = true
}

// reversedGraph lazily materialises the transpose.
func (e *exec) reversedGraph() *graph.Graph {
	if e.reversed == nil {
		e.reversed = e.g.Reverse()
	}
	return e.reversed
}

// chargeGEMMBackward adds dX = dY @ W^T and dW = X^T @ dY.
func (e *exec) chargeGEMMBackward(name string, rows, k, n int) {
	dx := gpu.GEMMCycles(e.dev, rows, n, k)
	dw := gpu.GEMMCycles(e.dev, k, rows, n)
	e.report.PerOp = append(e.report.PerOp,
		OpCost{Name: name + "_bwd_dx", Kind: "dense", Cycles: dx},
		OpCost{Name: name + "_bwd_dw", Kind: "dense", Cycles: dw},
	)
	e.report.Dense += dx + dw
}

// chargeGraphBackward estimates the backward kernels of a graph operator:
// the primary gradient runs the operator's dataflow on the reversed graph;
// binary operators add a per-edge gradient (message creation).
func (e *exec) chargeGraphBackward(name string, op ops.OpInfo, feat, aCols, bCols int) {
	rg := e.reversedGraph()

	// Primary gradient: gradients of the output flow back to the A operand.
	// For an aggregation (C = Dst_V) that is an aggregation over reversed
	// edges; for message creation (C = Edge) it is an edge-to-vertex
	// reduction of the per-edge gradients.
	bwd := ops.OpInfo{
		Name:     name + "_bwd",
		EdgeOp:   op.EdgeOp,
		GatherOp: ops.GatherSum,
		AKind:    tensor.SrcV,
		BKind:    op.BKind,
		CKind:    tensor.DstV,
	}
	if !bwd.EdgeOp.IsBinary() {
		bwd.EdgeOp = ops.CopyLHS
		bwd.BKind = tensor.Null
		bCols = 0
	} else if bwd.BKind == tensor.Null {
		bwd.EdgeOp = ops.CopyLHS
	}
	e.estimateAux(bwd, rg, feat, feat, bCols)

	// Secondary gradient for binary operators: per-edge gradient of the B
	// operand (a message-creation kernel on the forward graph).
	if op.EdgeOp.IsBinary() && op.BKind != tensor.Null {
		edgeGrad := ops.OpInfo{
			Name:     name + "_bwd_db",
			EdgeOp:   ops.EdgeMul,
			GatherOp: ops.GatherCopyRHS,
			AKind:    tensor.SrcV,
			BKind:    tensor.DstV,
			CKind:    tensor.EdgeK,
		}
		e.estimateAux(edgeGrad, e.g, feat, feat, feat)
	}
}

// estimateAux runs one auxiliary (backward) operator through the engine on
// graph g, recording its cost.
func (e *exec) estimateAux(op ops.OpInfo, g *graph.Graph, feat, aCols, bCols int) {
	if e.err != nil {
		return
	}
	task := schedule.Task{Graph: g, Op: op, Feat: feat, ACols: aCols, BCols: bCols, Device: e.dev}
	sched := e.eng.ScheduleFor(task)
	metrics, err := core.Estimate(g, op, feat, aCols, bCols, sched, e.dev,
		gpu.WithMaxSampledBlocks(96))
	if err != nil {
		e.err = err
		return
	}
	metrics.Cycles += e.eng.GraphOpOverheadCycles()
	e.report.PerOp = append(e.report.PerOp, OpCost{
		Name: op.Name, Kind: "graph", Cycles: metrics.Cycles, Schedule: sched, Metrics: metrics,
	})
	e.report.Graph += metrics.Cycles
}

// Trainer serves an epoch loop from one compile: the model's program is
// recorded, fused, scheduled and buffer-planned once in NewTrainer, and
// every Epoch after that reuses the compiled kernels and arena — the
// rebuild-per-epoch overhead the interpreter pays (re-tuning lookups,
// re-lowering, fresh tensors per stage) is gone from the steady state.
type Trainer struct {
	model    Model
	compiled *program.CompiledProgram
	stepCost CostReport
	epochs   int
}

// NewTrainer compiles m once for (g, eng) and estimates the per-step
// training cost (forward + backward) through the same engine.
func NewTrainer(m Model, g *graph.Graph, inFeat, classes int, eng Engine) (*Trainer, error) {
	cp, err := CompileModel(m, g, inFeat, classes, eng)
	if err != nil {
		return nil, err
	}
	cost, err := TrainingCost(m, g, inFeat, classes, eng)
	if err != nil {
		return nil, err
	}
	return &Trainer{model: m, compiled: cp, stepCost: cost}, nil
}

// Epoch runs one functional forward pass over the compiled program. The
// returned logits alias the program's arena and stay valid until the next
// Epoch. (Backward execution is cost-modelled, not computed — see
// TrainingCost; the forward pass is the part every epoch repeats.)
func (t *Trainer) Epoch(x *tensor.Dense) (*tensor.Dense, error) {
	return t.EpochCtx(context.Background(), x)
}

// EpochCtx is Epoch with cancellation: a fired deadline interrupts the
// forward pass between steps and inside graph kernels. The trainer stays
// usable after a cancelled epoch (the next run overwrites the arena).
func (t *Trainer) EpochCtx(ctx context.Context, x *tensor.Dense) (*tensor.Dense, error) {
	sp := telemetry.StartSpan("trainer", "epoch", "epoch")
	out, err := t.compiled.RunCtx(ctx, x)
	if err != nil {
		sp.EndErr(err.Error())
		return nil, err
	}
	t.epochs++
	sp.End()
	telemetry.CountTrainerEpoch()
	return out, nil
}

// Epochs reports how many epochs ran.
func (t *Trainer) Epochs() int { return t.epochs }

// StepCost returns the simulated cost of one training step.
func (t *Trainer) StepCost() CostReport { return t.stepCost }

// Compiled exposes the underlying compiled program (schedules, stats).
func (t *Trainer) Compiled() *program.CompiledProgram { return t.compiled }

// TrainingCost estimates one training step (forward + backward) of a model
// through an engine. Optimiser update cost (elementwise over parameters) is
// negligible for GNN-sized weights and not charged.
func TrainingCost(m Model, g *graph.Graph, inFeat, classes int, eng Engine) (CostReport, error) {
	type trainer interface {
		trainingCost(g *graph.Graph, inFeat, classes int, eng Engine) (CostReport, error)
	}
	tm, ok := m.(trainer)
	if !ok {
		// Generic fallback: forward cost plus a conservative 2x for the
		// backward pass.
		rep, err := m.InferenceCost(g, inFeat, classes, eng)
		if err != nil {
			return CostReport{}, err
		}
		rep.Total *= 3
		rep.Graph *= 3
		rep.Dense *= 3
		return rep, nil
	}
	return tm.trainingCost(g, inFeat, classes, eng)
}
