package models

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/program"
	"repro/internal/tensor"
)

// TestWaveParallelMatchesReference is the wave-execution equivalence suite:
// for every model, wave-parallel execution must match both the sequential
// compiled run and the interpreter's reference Forward within 1e-4, across
// the tuned and predicted engines and the reference/parallel/sharded
// backends at 1 and 4 shards.
func TestWaveParallelMatchesReference(t *testing.T) {
	g := smallGraph(t, 31)
	const inFeat, classes = 12, 5
	x := tensor.NewDense(g.NumVertices(), inFeat)
	x.FillRandom(rand.New(rand.NewSource(41)), 1)

	backends := []core.ExecBackend{
		core.ReferenceBackend(),
		core.NewParallelBackend(2),
		core.NewShardedParallelBackend(2, 1),
		core.NewShardedParallelBackend(2, 4),
	}
	engines := []struct {
		name string
		mk   func(b core.ExecBackend) Engine
	}{
		{"tuned", func(b core.ExecBackend) Engine {
			eng := NewTunedEngine(gpu.V100())
			eng.Compute = b
			return eng
		}},
		{"predicted", func(b core.ExecBackend) Engine {
			eng := NewPredictedEngine(gpu.V100(), smallPredictor(t))
			eng.Compute = b
			return eng
		}},
	}

	defer program.SetParallelSteps(false)
	for _, m := range All() {
		for _, ec := range engines {
			for _, b := range backends {
				eng := ec.mk(b)
				ref, err := m.Forward(g, x, classes, eng)
				if err != nil {
					t.Fatalf("%s/%s/%s: Forward: %v", m.Name(), ec.name, b.Name(), err)
				}
				cp, err := CompileModel(m, g, inFeat, classes, eng)
				if err != nil {
					t.Fatalf("%s/%s/%s: CompileModel: %v", m.Name(), ec.name, b.Name(), err)
				}
				program.SetParallelSteps(false)
				seq, err := cp.Run(x)
				if err != nil {
					t.Fatalf("%s/%s/%s: sequential Run: %v", m.Name(), ec.name, b.Name(), err)
				}
				seqC := seq.Clone()
				program.SetParallelSteps(true)
				par, err := cp.Run(x)
				if err != nil {
					t.Fatalf("%s/%s/%s: wave-parallel Run: %v", m.Name(), ec.name, b.Name(), err)
				}
				if !par.AllClose(seqC, 1e-4, 1e-4) {
					t.Errorf("%s/%s/%s: wave-parallel != sequential (maxdiff %v)",
						m.Name(), ec.name, b.Name(), par.MaxDiff(seqC))
				}
				if !par.AllClose(ref, 1e-4, 1e-4) {
					t.Errorf("%s/%s/%s: wave-parallel != reference (maxdiff %v)",
						m.Name(), ec.name, b.Name(), par.MaxDiff(ref))
				}
			}
		}
	}
}

// TestGATWaveWidth pins the headline win: GAT's per-layer attention chains
// (attn_l and attn_r both read the projected features independently) must
// be proved independent, giving a wave schedule wider than one step.
func TestGATWaveWidth(t *testing.T) {
	g := smallGraph(t, 32)
	eng := &FixedEngine{
		EngineName:   "fixed-test",
		Dev:          gpu.V100(),
		AggrSchedule: core.DefaultSchedule,
		MsgCSchedule: core.DefaultSchedule,
		Fuses:        true,
		Compute:      core.ReferenceBackend(),
	}
	cp, err := CompileModel(NewGAT(), g, 12, 5, eng)
	if err != nil {
		t.Fatal(err)
	}
	s := cp.Stats()
	if s.MaxWaveWidth < 2 {
		t.Fatalf("GAT MaxWaveWidth = %d, want >= 2", s.MaxWaveWidth)
	}
	if s.Waves <= 0 || s.Waves >= s.Steps {
		t.Fatalf("GAT Waves = %d with %d steps: a wider-than-one schedule must have fewer waves than steps", s.Waves, s.Steps)
	}
}
