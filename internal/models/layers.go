package models

import (
	"repro/internal/ops"
	"repro/internal/tensor"
)

// Shared layer building blocks.

// edgeScalar materialises a deterministic per-edge scalar tensor (edge
// weights, attention coefficients) in functional mode.
func (e *exec) edgeScalar() vt {
	out := vt{kind: tensor.EdgeK, cols: 1}
	if e.functional {
		d := tensor.NewDense(e.g.NumEdges(), 1)
		d.FillRandom(e.rng, 1)
		// Keep weights positive so max-aggregations stay well-behaved.
		for i := range d.Data {
			if d.Data[i] < 0 {
				d.Data[i] = -d.Data[i]
			}
			d.Data[i] += 0.1
		}
		out.data = d
	}
	return out
}

// fusedAggr runs a fused-aggregation operator through the engine. Engines
// that do not fuse (PyG) decompose it into an explicit message-creation
// kernel that materialises the edge messages, followed by a pure
// aggregation — the extra traffic the paper's §2 calls "redundant accesses".
func (e *exec) fusedAggr(name string, edgeOp ops.EdgeOp, gatherOp ops.GatherOp, a, b vt, outCols int) vt {
	op := ops.OpInfo{
		EdgeOp: edgeOp, GatherOp: gatherOp,
		AKind: a.kind, BKind: b.kind, CKind: tensor.DstV,
	}
	if e.eng.Fused() {
		return e.graphOp(name, op, a, b, outCols)
	}
	msg := ops.OpInfo{
		EdgeOp: edgeOp, GatherOp: ops.GatherCopyRHS,
		AKind: a.kind, BKind: b.kind, CKind: tensor.EdgeK,
	}
	edgeMsgs := e.graphOp(name+"_materialize", msg, a, b, outCols)
	aggr := ops.OpInfo{
		EdgeOp: ops.CopyRHS, GatherOp: gatherOp,
		AKind: tensor.Null, BKind: tensor.EdgeK, CKind: tensor.DstV,
	}
	return e.graphOp(name+"_scatter", aggr, vt{}, edgeMsgs, outCols)
}

// unweightedAggr is fusedAggr for copy-from-source operators (SageSum etc.),
// where the A operand is the source feature and B is absent.
func (e *exec) unweightedAggr(name string, gatherOp ops.GatherOp, h vt, outCols int) vt {
	src := asKind(h, tensor.SrcV)
	op := ops.OpInfo{
		EdgeOp: ops.CopyLHS, GatherOp: gatherOp,
		AKind: tensor.SrcV, BKind: tensor.Null, CKind: tensor.DstV,
	}
	if e.eng.Fused() {
		return e.graphOp(name, op, src, vt{}, outCols)
	}
	msg := ops.OpInfo{
		EdgeOp: ops.CopyLHS, GatherOp: ops.GatherCopyRHS,
		AKind: tensor.SrcV, BKind: tensor.Null, CKind: tensor.EdgeK,
	}
	edgeMsgs := e.graphOp(name+"_materialize", msg, src, vt{}, outCols)
	aggr := ops.OpInfo{
		EdgeOp: ops.CopyRHS, GatherOp: gatherOp,
		AKind: tensor.Null, BKind: tensor.EdgeK, CKind: tensor.DstV,
	}
	return e.graphOp(name+"_scatter", aggr, vt{}, edgeMsgs, outCols)
}
