package models

import (
	"math/rand"

	"repro/internal/ops"
	"repro/internal/tensor"
)

// Shared layer building blocks, written against the stage interface so the
// interpreter (exec) and the program recorder drive identical pipelines.

// fusedAggr runs a fused-aggregation operator through the stage. Stages
// that do not fuse — engines like PyG, and the recorder (which defers the
// fusion decision to program compile time) — decompose it into an explicit
// message-creation kernel that materialises the edge messages, followed by a
// pure aggregation: the extra traffic the paper's §2 calls "redundant
// accesses".
func fusedAggr(st stage, name string, edgeOp ops.EdgeOp, gatherOp ops.GatherOp, a, b vt, outCols int) vt {
	if st.fused() {
		op := ops.OpInfo{
			EdgeOp: edgeOp, GatherOp: gatherOp,
			AKind: a.kind, BKind: b.kind, CKind: tensor.DstV,
		}
		return st.graphOp(name, op, a, b, outCols)
	}
	msg := ops.OpInfo{
		EdgeOp: edgeOp, GatherOp: ops.GatherCopyRHS,
		AKind: a.kind, BKind: b.kind, CKind: tensor.EdgeK,
	}
	edgeMsgs := st.graphOp(name+"_materialize", msg, a, b, outCols)
	aggr := ops.OpInfo{
		EdgeOp: ops.CopyRHS, GatherOp: gatherOp,
		AKind: tensor.Null, BKind: tensor.EdgeK, CKind: tensor.DstV,
	}
	return st.graphOp(name+"_scatter", aggr, vt{}, edgeMsgs, outCols)
}

// unweightedAggr is fusedAggr for copy-from-source operators (SageSum etc.),
// where the A operand is the source feature and B is absent.
func unweightedAggr(st stage, name string, gatherOp ops.GatherOp, h vt, outCols int) vt {
	src := asKind(h, tensor.SrcV)
	if st.fused() {
		op := ops.OpInfo{
			EdgeOp: ops.CopyLHS, GatherOp: gatherOp,
			AKind: tensor.SrcV, BKind: tensor.Null, CKind: tensor.DstV,
		}
		return st.graphOp(name, op, src, vt{}, outCols)
	}
	msg := ops.OpInfo{
		EdgeOp: ops.CopyLHS, GatherOp: ops.GatherCopyRHS,
		AKind: tensor.SrcV, BKind: tensor.Null, CKind: tensor.EdgeK,
	}
	edgeMsgs := st.graphOp(name+"_materialize", msg, src, vt{}, outCols)
	aggr := ops.OpInfo{
		EdgeOp: ops.CopyRHS, GatherOp: gatherOp,
		AKind: tensor.Null, BKind: tensor.EdgeK, CKind: tensor.DstV,
	}
	return st.graphOp(name+"_scatter", aggr, vt{}, edgeMsgs, outCols)
}

// edgeScalar (stage method on exec) materialises a deterministic per-edge
// scalar tensor (edge weights, attention coefficients) in functional mode.
func (e *exec) edgeScalar() vt {
	out := vt{kind: tensor.EdgeK, cols: 1}
	if e.functional {
		out.data = edgeScalarData(e.g.NumEdges(), e.rng)
	}
	return out
}

// edgeScalarData draws deterministic positive per-edge scalars; both the
// interpreter and the recorder call it with the same rng state, so compiled
// and interpreted runs see identical edge weights. Kept positive so
// max-aggregations stay well-behaved.
func edgeScalarData(numEdges int, rng *rand.Rand) *tensor.Dense {
	d := tensor.NewDense(numEdges, 1)
	d.FillRandom(rng, 1)
	for i := range d.Data {
		if d.Data[i] < 0 {
			d.Data[i] = -d.Data[i]
		}
		d.Data[i] += 0.1
	}
	return d
}
