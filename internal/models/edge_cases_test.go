package models

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// Edge-case and failure-injection tests for the model layer.

func TestModelsOnEdgelessGraph(t *testing.T) {
	g, err := graph.FromCOO(50, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := fixedTestEngine{dev: gpu.V100(), sched: core.DefaultSchedule, fused: true}
	for _, m := range All() {
		rep, err := m.InferenceCost(g, 16, 4, eng)
		if err != nil {
			t.Fatalf("%s cost on edgeless graph: %v", m.Name(), err)
		}
		if rep.Total <= 0 {
			t.Errorf("%s: zero cost", m.Name())
		}
		x := tensor.NewDense(50, 16)
		x.Fill(1)
		out, err := m.Forward(g, x, 4, eng)
		if err != nil {
			t.Fatalf("%s forward on edgeless graph: %v", m.Name(), err)
		}
		for _, v := range out.Data {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("%s: non-finite output on edgeless graph", m.Name())
			}
		}
	}
}

func TestModelsOnSelfLoopGraph(t *testing.T) {
	// Every vertex points only at itself: aggregation is an identity-like
	// gather, and nothing should blow up.
	b := graph.NewBuilder(20)
	for v := int32(0); v < 20; v++ {
		b.AddEdge(v, v)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng := fixedTestEngine{dev: gpu.V100(), sched: core.Schedule{Strategy: core.WarpEdge, Group: 1, Tile: 1}, fused: true}
	x := tensor.NewDense(20, 8)
	x.FillRandom(newRand(1), 1)
	for _, m := range All() {
		if _, err := m.Forward(g, x.Clone(), 3, eng); err != nil {
			t.Fatalf("%s on self-loop graph: %v", m.Name(), err)
		}
	}
}

func TestSingleVertexGraph(t *testing.T) {
	g, err := graph.FromCOO(1, []int32{0}, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	eng := fixedTestEngine{dev: gpu.V100(), sched: core.DefaultSchedule, fused: true}
	x := tensor.NewDense(1, 4)
	x.Fill(2)
	out, err := NewGCN().Forward(g, x, 2, eng)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows != 1 || out.Cols != 2 {
		t.Fatalf("shape %dx%d", out.Rows, out.Cols)
	}
}

func TestGINEpsInfluencesOutput(t *testing.T) {
	g := smallGraph(t, 21)
	eng := fixedTestEngine{dev: gpu.V100(), sched: core.DefaultSchedule, fused: true}
	x := tensor.NewDense(g.NumVertices(), 8)
	x.FillRandom(newRand(2), 1)

	m1 := &GIN{Hidden: 16, Layers: 2, Eps: 0}
	m2 := &GIN{Hidden: 16, Layers: 2, Eps: 5}
	o1, err := m1.Forward(g, x.Clone(), 3, eng)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := m2.Forward(g, x.Clone(), 3, eng)
	if err != nil {
		t.Fatal(err)
	}
	if o1.AllClose(o2, 1e-3, 1e-3) {
		t.Error("epsilon should change GIN's output")
	}
}

func TestCostDoesNotAllocateOutputs(t *testing.T) {
	// Cost-only mode must work on graphs whose functional tensors would be
	// enormous — verify it completes fast on a million-edge shape.
	b := graph.NewBuilder(200000)
	r := newRand(3)
	for i := 0; i < 1000000; i++ {
		b.AddEdge(int32(r.Intn(200000)), int32(r.Intn(200000)))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng := fixedTestEngine{dev: gpu.V100(), sched: core.DefaultSchedule, fused: true}
	rep, err := NewGCN().InferenceCost(g, 512, 16, eng)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total <= 0 {
		t.Error("no cost")
	}
}

// newRand is a local helper mirroring rand.New(rand.NewSource(seed)).
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
