package models

import (
	"errors"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/gpu"
)

// backendEngine pins both the schedule and the compute backend.
type backendEngine struct {
	fixedTestEngine
	backend core.ExecBackend
}

func (e backendEngine) ComputeBackend() core.ExecBackend { return e.backend }

// TestVerifierSilentAcrossMatrix compiles every benchmark model under every
// strategy on both host backends and asserts the mandatory static analysis
// never fires on a legal compilation — the "no false positives" half of the
// verifier's contract (the corruption tests prove the "no false negatives"
// half).
func TestVerifierSilentAcrossMatrix(t *testing.T) {
	g := smallGraph(t, 21)
	backends := []core.ExecBackend{core.ReferenceBackend(), core.NewParallelBackend(2)}
	for _, mdl := range All() {
		for _, s := range core.Strategies {
			for _, be := range backends {
				eng := backendEngine{
					fixedTestEngine: fixedTestEngine{
						dev:   gpu.V100(),
						sched: core.Schedule{Strategy: s, Group: 1, Tile: 1},
						fused: true,
					},
					backend: be,
				}
				cp, err := CompileModel(mdl, g, 12, 5, eng)
				if err != nil {
					t.Fatalf("%s/%s/%s: compile: %v", mdl.Name(), s.Code(), be.Name(), err)
				}
				if rep := cp.Verify(); !rep.OK() {
					t.Errorf("%s/%s/%s: violations on legal compile: %v",
						mdl.Name(), s.Code(), be.Name(), rep.Diags)
				}
			}
		}
	}
}

// TestCorruptionCaughtOnRealModels arms each plan-corruption point against a
// full model compilation: the verifier must catch the corruption on real
// programs, not just on toys.
func TestCorruptionCaughtOnRealModels(t *testing.T) {
	g := smallGraph(t, 22)
	cases := []struct {
		point faultinject.Point
		seed  uint64
		rule  string
	}{
		{faultinject.CorruptOperandKind, 0, analysis.RuleOperandType},
		{faultinject.CorruptFusion, 0, analysis.RuleFusionPair},
		{faultinject.CorruptBufferPlan, 0, analysis.RuleBufferAlias},
		{faultinject.CorruptAtomicFlag, 0, analysis.RuleWriteConflict},
	}
	mdl, err := ByName("GAT")
	if err != nil {
		t.Fatal(err)
	}
	eng := fixedTestEngine{dev: gpu.V100(), sched: core.DefaultSchedule, fused: true}
	for _, tc := range cases {
		t.Run(tc.rule, func(t *testing.T) {
			t.Cleanup(faultinject.Reset)
			faultinject.Arm(tc.point, faultinject.Spec{Every: 1, Seed: tc.seed})
			_, err := CompileModel(mdl, g, 12, 5, eng)
			if err == nil {
				t.Fatalf("corrupted %s compile succeeded", mdl.Name())
			}
			var ve *analysis.VerifyError
			if !errors.As(err, &ve) || !ve.HasRule(tc.rule) {
				t.Fatalf("want rule %s, got %v", tc.rule, err)
			}
		})
	}
}
