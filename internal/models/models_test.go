package models

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/schedule"
	"repro/internal/tensor"
)

func smallGraph(t testing.TB, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := 300
	b := graph.NewBuilder(n)
	for i := 0; i < 2500; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// fixedTestEngine pins one schedule to keep functional tests deterministic.
type fixedTestEngine struct {
	dev   *gpu.Device
	sched core.Schedule
	fused bool
}

func (e fixedTestEngine) Name() string                              { return "test" }
func (e fixedTestEngine) GraphOpOverheadCycles() float64            { return 0 }
func (e fixedTestEngine) Device() *gpu.Device                       { return e.dev }
func (e fixedTestEngine) Fused() bool                               { return e.fused }
func (e fixedTestEngine) ScheduleFor(t schedule.Task) core.Schedule { return e.sched }

func TestAllAndByName(t *testing.T) {
	all := All()
	if len(all) != 6 {
		t.Fatalf("want 6 benchmark models, got %d", len(all))
	}
	names := map[string]bool{}
	for _, m := range all {
		names[m.Name()] = true
	}
	for _, want := range []string{"GCN", "GIN", "GAT", "SSum", "SMax", "SMean"} {
		if !names[want] {
			t.Errorf("missing model %s", want)
		}
		if _, err := ByName(want); err != nil {
			t.Errorf("ByName(%s): %v", want, err)
		}
	}
	if _, err := ByName("RGCN"); err == nil {
		t.Error("unknown model should fail")
	}
}

func TestInferenceCostAllModels(t *testing.T) {
	g := smallGraph(t, 1)
	eng := fixedTestEngine{dev: gpu.V100(), sched: core.DefaultSchedule, fused: true}
	for _, m := range All() {
		rep, err := m.InferenceCost(g, 64, 7, eng)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if rep.Total <= 0 || rep.Graph <= 0 || rep.Dense <= 0 {
			t.Errorf("%s: degenerate cost report %+v", m.Name(), rep)
		}
		if math.Abs(rep.Total-(rep.Graph+rep.Dense)) > 1e-6 {
			t.Errorf("%s: total != graph + dense", m.Name())
		}
		if len(rep.PerOp) < 3 {
			t.Errorf("%s: suspiciously few ops: %d", m.Name(), len(rep.PerOp))
		}
		if rep.Model != m.Name() || rep.Engine != "test" {
			t.Errorf("%s: report labels wrong: %+v", m.Name(), rep)
		}
	}
}

func TestForwardAllModelsShapes(t *testing.T) {
	g := smallGraph(t, 2)
	eng := fixedTestEngine{dev: gpu.V100(), sched: core.DefaultSchedule, fused: true}
	x := tensor.NewDense(g.NumVertices(), 32)
	x.FillRandom(rand.New(rand.NewSource(3)), 1)
	for _, m := range All() {
		out, err := m.Forward(g, x, 5, eng)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if out.Rows != g.NumVertices() || out.Cols != 5 {
			t.Errorf("%s: output shape %dx%d, want %dx5", m.Name(), out.Rows, out.Cols, g.NumVertices())
		}
		var finite bool
		for _, v := range out.Data {
			if v != 0 {
				finite = true
			}
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("%s: non-finite output", m.Name())
			}
		}
		if !finite {
			t.Errorf("%s: all-zero output", m.Name())
		}
	}
}

// TestForwardScheduleInvariance: the functional result must not depend on
// the engine's schedule choice.
func TestForwardScheduleInvariance(t *testing.T) {
	g := smallGraph(t, 4)
	x := tensor.NewDense(g.NumVertices(), 16)
	x.FillRandom(rand.New(rand.NewSource(5)), 1)
	for _, m := range All() {
		var ref *tensor.Dense
		for _, sched := range []core.Schedule{
			{Strategy: core.ThreadVertex, Group: 1, Tile: 1},
			{Strategy: core.WarpEdge, Group: 4, Tile: 2},
		} {
			eng := fixedTestEngine{dev: gpu.V100(), sched: sched, fused: true}
			out, err := m.Forward(g, x.Clone(), 4, eng)
			if err != nil {
				t.Fatalf("%s/%v: %v", m.Name(), sched, err)
			}
			if ref == nil {
				ref = out
				continue
			}
			if !out.AllClose(ref, 1e-2, 1e-2) {
				t.Errorf("%s: schedule %v changes results (maxdiff %v)",
					m.Name(), sched, out.MaxDiff(ref))
			}
		}
	}
}

// TestFusionDecomposition: an unfused engine must produce the same values
// while running strictly more graph kernels and more graph cycles.
func TestFusionDecomposition(t *testing.T) {
	g := smallGraph(t, 6)
	x := tensor.NewDense(g.NumVertices(), 16)
	x.FillRandom(rand.New(rand.NewSource(7)), 1)
	fused := fixedTestEngine{dev: gpu.V100(), sched: core.DefaultSchedule, fused: true}
	unfused := fixedTestEngine{dev: gpu.V100(), sched: core.DefaultSchedule, fused: false}

	m := NewGCN()
	outF, err := m.Forward(g, x.Clone(), 4, fused)
	if err != nil {
		t.Fatal(err)
	}
	outU, err := m.Forward(g, x.Clone(), 4, unfused)
	if err != nil {
		t.Fatal(err)
	}
	if !outF.AllClose(outU, 1e-2, 1e-2) {
		t.Fatalf("fusion changed values: maxdiff %v", outF.MaxDiff(outU))
	}

	repF, err := m.InferenceCost(g, 16, 4, fused)
	if err != nil {
		t.Fatal(err)
	}
	repU, err := m.InferenceCost(g, 16, 4, unfused)
	if err != nil {
		t.Fatal(err)
	}
	countGraph := func(r CostReport) int {
		n := 0
		for _, op := range r.PerOp {
			if op.Kind == "graph" {
				n++
			}
		}
		return n
	}
	if countGraph(repU) != 2*countGraph(repF) {
		t.Errorf("unfused should double graph kernels: %d vs %d", countGraph(repU), countGraph(repF))
	}
	if repU.Graph <= repF.Graph {
		t.Errorf("materialised messages should cost more: %v vs %v", repU.Graph, repF.Graph)
	}
	// Materialisation names must show up.
	var sawMat bool
	for _, op := range repU.PerOp {
		if strings.Contains(op.Name, "_materialize") {
			sawMat = true
		}
	}
	if !sawMat {
		t.Error("unfused report should contain materialize kernels")
	}
}

func TestSageGEMMShare(t *testing.T) {
	// SageMax (hidden 256) must have a larger dense share than GCN
	// (hidden 16) — the paper's explanation for its smaller speedup. At toy
	// sizes everything is launch-overhead bound, so use a mid-size graph.
	rng := rand.New(rand.NewSource(8))
	b := graph.NewBuilder(20000)
	for i := 0; i < 200000; i++ {
		b.AddEdge(int32(rng.Intn(20000)), int32(rng.Intn(20000)))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng := fixedTestEngine{dev: gpu.V100(), sched: core.DefaultSchedule, fused: true}
	gcn, err := NewGCN().InferenceCost(g, 128, 8, eng)
	if err != nil {
		t.Fatal(err)
	}
	smax, err := NewSage(ops.GatherMax).InferenceCost(g, 128, 8, eng)
	if err != nil {
		t.Fatal(err)
	}
	gcnShare := gcn.Dense / gcn.Total
	smaxShare := smax.Dense / smax.Total
	if smaxShare <= gcnShare {
		t.Errorf("SMax dense share %.2f should exceed GCN's %.2f", smaxShare, gcnShare)
	}
}

func TestTunedEngineBeatsFixedOnCost(t *testing.T) {
	g := smallGraph(t, 9)
	dev := gpu.V100()
	tuned := NewTunedEngine(dev)
	fixed := fixedTestEngine{dev: dev, sched: core.Schedule{Strategy: core.ThreadVertex, Group: 1, Tile: 1}, fused: true}
	m := NewGCN()
	repT, err := m.InferenceCost(g, 64, 8, tuned)
	if err != nil {
		t.Fatal(err)
	}
	repF, err := m.InferenceCost(g, 64, 8, fixed)
	if err != nil {
		t.Fatal(err)
	}
	if repT.Graph > repF.Graph {
		t.Errorf("tuned graph cycles %v should not exceed fixed %v", repT.Graph, repF.Graph)
	}
	if tuned.Fused() != true || tuned.Name() != "uGrapher" || tuned.Device() != dev {
		t.Error("tuned engine metadata wrong")
	}
}

func TestFixedEngineScheduleMapping(t *testing.T) {
	dev := gpu.V100()
	e := &FixedEngine{
		EngineName:   "X",
		Dev:          dev,
		AggrSchedule: core.Schedule{Strategy: core.WarpVertex, Group: 1, Tile: 1},
		MsgCSchedule: core.Schedule{Strategy: core.ThreadEdge, Group: 1, Tile: 1},
		Fuses:        true,
	}
	g := smallGraph(t, 10)
	aggrTask := schedule.Task{Graph: g, Op: ops.AggrSum, Feat: 8, Device: dev}
	msgTask := schedule.Task{Graph: g, Op: ops.UAddV, Feat: 8, Device: dev}
	if e.ScheduleFor(aggrTask).Strategy != core.WarpVertex {
		t.Error("aggregation should use AggrSchedule")
	}
	if e.ScheduleFor(msgTask).Strategy != core.ThreadEdge {
		t.Error("message creation should use MsgCSchedule")
	}
}
