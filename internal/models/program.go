package models

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/program"
	"repro/internal/tensor"
)

// The recorder: the second stage implementation. Where exec interprets a
// model's pipeline op by op, the recorder replays the same run method and
// emits a program.Program — the whole-model IR that Compile then fuses,
// schedules and buffer-plans once per (graph, engine, backend). Weights and
// edge scalars are materialised here with the same seed and draw order as
// exec's functional mode, so a compiled program computes bit-compatible
// results to the interpreter it is tested against.

type recorder struct {
	g   *graph.Graph
	b   *program.Builder
	rng *rand.Rand
}

// fused implements stage: the recorder always records the decomposed
// materialise+scatter form; program.Compile re-fuses it when the engine
// fuses. Recording once per model keeps the IR engine-independent.
func (r *recorder) fused() bool { return false }

// edgeScalar implements stage by recording the scalars as a constant.
func (r *recorder) edgeScalar() vt {
	d := edgeScalarData(r.g.NumEdges(), r.rng)
	v := r.b.Const("edge_weights", d, program.EdgeRows)
	return vt{kind: tensor.EdgeK, cols: 1, val: v}
}

// gemm implements stage, materialising the weight in exec's draw order.
func (r *recorder) gemm(name string, t vt, n int) vt {
	w := tensor.NewDense(t.cols, n)
	w.FillRandom(r.rng, 0.5)
	wv := r.b.Const(name+"_w", w, program.VertexRows)
	return vt{kind: t.kind, cols: n, val: r.b.GEMM(name, t.val, wv, n)}
}

// unary implements stage.
func (r *recorder) unary(name string, t vt, reads int, chain []program.Unary) vt {
	return vt{kind: t.kind, cols: t.cols, val: r.b.Unary(name, t.val, chain)}
}

// addScaled implements stage.
func (r *recorder) addScaled(name string, t, other vt, scale float32) vt {
	return vt{kind: t.kind, cols: t.cols, val: r.b.AddScaled(name, t.val, other.val, scale)}
}

// headMerge implements stage.
func (r *recorder) headMerge(name string, t vt) vt {
	return vt{kind: t.kind, cols: 1, val: r.b.HeadMerge(name, t.val)}
}

// concat implements stage.
func (r *recorder) concat(name string, a, b vt) vt {
	return vt{kind: a.kind, cols: a.cols + b.cols, val: r.b.Concat(name, a.val, b.val)}
}

// graphOp implements stage.
func (r *recorder) graphOp(name string, op ops.OpInfo, a, b vt, outCols int) vt {
	av, bv := program.NoValue, program.NoValue
	if op.AKind != tensor.Null {
		av = a.val
	}
	if op.BKind != tensor.Null {
		bv = b.val
	}
	return vt{kind: op.CKind, cols: outCols, val: r.b.GraphOp(name, op, av, bv, outCols)}
}

// Record replays m's forward pass through a recorder and returns the
// whole-model program for a graph with inCols input features and `classes`
// output classes. The program embeds deterministic weights identical to the
// ones Forward draws.
func Record(m Model, g *graph.Graph, inCols, classes int) (*program.Program, error) {
	type runner interface {
		run(st stage, h vt, classes int) vt
	}
	rm, ok := m.(runner)
	if !ok {
		return nil, fmt.Errorf("models: model %q does not support program recording", m.Name())
	}
	b := program.NewBuilder(m.Name(), inCols, classes)
	r := &recorder{g: g, b: b, rng: rand.New(rand.NewSource(1234))}
	in := b.Input(inCols)
	h := rm.run(r, vt{kind: tensor.SrcV, cols: inCols, val: in}, classes)
	b.SetOutput(h.val)
	return b.Finish()
}

// CompileModel records m and compiles the program for (g, eng): fusion
// follows eng.Fused(), every graph operator's schedule is resolved through
// eng once, and kernels run on the engine's compute backend. The returned
// program serves repeated Run calls with zero steady-state allocations.
func CompileModel(m Model, g *graph.Graph, inCols, classes int, eng Engine) (*program.CompiledProgram, error) {
	p, err := Record(m, g, inCols, classes)
	if err != nil {
		return nil, err
	}
	return program.Compile(p, g, eng, computeBackend(eng))
}
