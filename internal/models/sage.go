package models

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/program"
	"repro/internal/tensor"
)

// Sage is GraphSage (Hamilton et al.) with its original hidden width 256 and
// two layers, parameterised by aggregator — the paper evaluates SageSum,
// SageMax and SageMean as separate benchmarks. Each layer aggregates
// neighbour features (an unweighted aggregation: the §2.2 lightweight
// operator), concatenates with the centre features and applies a linear
// transform. The wide hidden dimension makes the dense GEMM share large,
// which is why the paper's per-model speedups are smallest for SageMax.
type Sage struct {
	Aggregator ops.GatherOp
	Hidden     int
	Layers     int
}

// NewSage returns the default 2-layer, hidden-256 configuration with the
// given aggregator (GatherSum, GatherMax or GatherMean).
func NewSage(agg ops.GatherOp) *Sage {
	return &Sage{Aggregator: agg, Hidden: 256, Layers: 2}
}

// Name implements Model, using the paper's abbreviations: SSum, SMax, SMean.
func (m *Sage) Name() string {
	switch m.Aggregator {
	case ops.GatherMax:
		return "SMax"
	case ops.GatherMean:
		return "SMean"
	default:
		return "SSum"
	}
}

func (m *Sage) run(st stage, h vt, classes int) vt {
	for l := 0; l < m.Layers; l++ {
		out := m.Hidden
		if l == m.Layers-1 {
			out = classes
		}
		tag := fmt.Sprintf("SageL%d", l+1)
		s := unweightedAggr(st, tag+"_Aggr", m.Aggregator, h, h.cols)
		// concat(h, s) @ W: charged as a single GEMM with K = 2 x cols.
		cat := st.concat(tag+"_concat", h, s)
		h = st.gemm(tag+"_w_concat", cat, out)
		h = st.unary(tag+"_relu", h, 0, []program.Unary{{Kind: program.UnaryReLU}})
	}
	return h
}

// InferenceCost implements Model.
func (m *Sage) InferenceCost(g *graph.Graph, inFeat, classes int, eng Engine) (CostReport, error) {
	e := newExec(g, eng, false, m.Name())
	m.run(e, vt{kind: tensor.SrcV, cols: inFeat}, classes)
	return e.finish()
}

// Forward implements Model.
func (m *Sage) Forward(g *graph.Graph, x *tensor.Dense, classes int, eng Engine) (*tensor.Dense, error) {
	e := newExec(g, eng, true, m.Name())
	h := m.run(e, e.input(x, x.Cols), classes)
	if _, err := e.finish(); err != nil {
		return nil, err
	}
	return h.data, nil
}

// trainingCost implements the models.TrainingCost extension: the same stage
// pipeline with backward kernels charged per stage.
func (m *Sage) trainingCost(g *graph.Graph, inFeat, classes int, eng Engine) (CostReport, error) {
	e := newExec(g, eng, false, m.Name())
	e.enableTraining()
	m.run(e, vt{kind: tensor.SrcV, cols: inFeat}, classes)
	return e.finish()
}
