package models

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/tensor"
)

// Hardening tests for the model layer: context-aware forward passes and
// training epochs.

func TestForwardCtxMatchesForward(t *testing.T) {
	g := smallGraph(t, 21)
	eng := fixedTestEngine{dev: gpu.V100(), sched: core.DefaultSchedule, fused: true}
	x := tensor.NewDense(g.NumVertices(), 16)
	x.FillRandom(rand.New(rand.NewSource(4)), 1)
	for _, m := range All() {
		want, err := m.Forward(g, x, 5, eng)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		got, err := ForwardCtx(context.Background(), m, g, x, 5, eng)
		if err != nil {
			t.Fatalf("%s: ForwardCtx: %v", m.Name(), err)
		}
		if !got.AllClose(want, 1e-4, 1e-4) {
			t.Errorf("%s: ForwardCtx differs from Forward (maxdiff %v)", m.Name(), got.MaxDiff(want))
		}
	}
}

func TestForwardCtxCancelled(t *testing.T) {
	g := smallGraph(t, 22)
	eng := fixedTestEngine{dev: gpu.V100(), sched: core.DefaultSchedule, fused: true}
	x := tensor.NewDense(g.NumVertices(), 16)
	x.FillRandom(rand.New(rand.NewSource(5)), 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ForwardCtx(ctx, NewGCN(), g, x, 5, eng)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForwardCtx(cancelled) = %v, want context.Canceled", err)
	}
}

func TestEpochCtxCancelled(t *testing.T) {
	g := smallGraph(t, 23)
	eng := fixedTestEngine{dev: gpu.V100(), sched: core.DefaultSchedule, fused: true}
	tr, err := NewTrainer(NewGCN(), g, 16, 5, eng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewDense(g.NumVertices(), 16)
	x.FillRandom(rand.New(rand.NewSource(6)), 1)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tr.EpochCtx(ctx, x); !errors.Is(err, context.Canceled) {
		t.Fatalf("EpochCtx(cancelled) = %v, want context.Canceled", err)
	}
	// The trainer survives a cancelled epoch: the next epoch runs normally.
	out, err := tr.Epoch(x)
	if err != nil {
		t.Fatalf("epoch after cancellation: %v", err)
	}
	if out.Rows != g.NumVertices() || out.Cols != 5 {
		t.Errorf("epoch output shape %dx%d", out.Rows, out.Cols)
	}
}
