package models

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/ops"
)

func TestTrainingCostAllModels(t *testing.T) {
	g := smallGraph(t, 31)
	eng := fixedTestEngine{dev: gpu.V100(), sched: core.DefaultSchedule, fused: true}
	for _, m := range All() {
		fwd, err := m.InferenceCost(g, 32, 4, eng)
		if err != nil {
			t.Fatal(err)
		}
		train, err := TrainingCost(m, g, 32, 4, eng)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		// A training step strictly exceeds inference and includes both extra
		// dense work (weight gradients) and extra graph work (reversed
		// aggregations).
		if train.Total <= fwd.Total {
			t.Errorf("%s: training %v not above inference %v", m.Name(), train.Total, fwd.Total)
		}
		if train.Graph <= fwd.Graph || train.Dense <= fwd.Dense {
			t.Errorf("%s: backward did not add both graph and dense cost", m.Name())
		}
		var sawBwdGraph, sawBwdDense bool
		for _, op := range train.PerOp {
			if strings.Contains(op.Name, "_bwd") {
				if op.Kind == "graph" {
					sawBwdGraph = true
				} else {
					sawBwdDense = true
				}
			}
		}
		if !sawBwdGraph || !sawBwdDense {
			t.Errorf("%s: missing backward ops in report", m.Name())
		}
	}
}

func TestTrainingBackwardUsesReversedGraph(t *testing.T) {
	// On a strongly asymmetric graph (a star into one hub), the backward
	// aggregation runs on the transpose (hub fans OUT), so its cost profile
	// must differ from a symmetric graph's.
	eng := NewTunedEngine(gpu.V100())
	hub := starGraph(t, 2000)
	rep, err := TrainingCost(NewGIN(), hub, 32, 4, eng)
	if err != nil {
		t.Fatal(err)
	}
	// Find a forward op and its backward counterpart; both must exist and
	// have positive cost.
	var fwdC, bwdC float64
	for _, op := range rep.PerOp {
		if op.Name == "GIN_L1_Aggr" {
			fwdC = op.Cycles
		}
		if op.Name == "GIN_L1_Aggr_bwd" {
			bwdC = op.Cycles
		}
	}
	if fwdC <= 0 || bwdC <= 0 {
		t.Fatalf("missing forward (%v) or backward (%v) aggregation", fwdC, bwdC)
	}
}

func starGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for v := int32(1); v < int32(n); v++ {
		b.AddEdge(v, 0)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTrainingEngineChoiceMayDiffer(t *testing.T) {
	// Backward ops are tuned independently; at minimum they must flow
	// through the engine (covered by the tuned engine's cache count), and
	// the backward of a weighted aggregation must include the per-edge
	// gradient kernel.
	g := smallGraph(t, 33)
	eng := fixedTestEngine{dev: gpu.V100(), sched: core.DefaultSchedule, fused: true}
	rep, err := TrainingCost(NewGCN(), g, 16, 4, eng)
	if err != nil {
		t.Fatal(err)
	}
	var sawEdgeGrad bool
	for _, op := range rep.PerOp {
		if strings.HasSuffix(op.Name, "_bwd_db") {
			sawEdgeGrad = true
		}
	}
	if !sawEdgeGrad {
		t.Error("weighted aggregation backward must emit the edge-gradient kernel")
	}
	_ = ops.WeightedAggrSum
}
