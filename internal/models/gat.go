package models

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/program"
	"repro/internal/tensor"
)

// GAT is the graph attention network of Velickovic et al. with the
// paper-default two layers and 8 heads x 8 hidden units. Each layer runs
// the attention pipeline the paper's Table 9 profiles:
//
//	GAT_L*_MsgC: u_add_v over per-head attention terms (tiny feature width
//	             — the operator for which thread-edge dominates),
//	edge softmax: exp + per-destination sum + e_div_v normalisation,
//	GAT_L*_Aggr: u_mul_e + sum — the computation-heavy weighted aggregation.
//
// Simplification vs. DGL: the final aggregation broadcasts one merged
// attention scalar per edge instead of 8 per-head columns (our abstraction
// broadcasts width-1 or width-F operands; per-head blocks would need 8
// separate operator calls with identical scheduling behaviour).
type GAT struct {
	Heads  int
	Hidden int // per head
	Layers int
}

// NewGAT returns the default 2-layer, 8x8 configuration.
func NewGAT() *GAT { return &GAT{Heads: 8, Hidden: 8, Layers: 2} }

// Name implements Model.
func (m *GAT) Name() string { return "GAT" }

func (m *GAT) run(st stage, h vt, classes int) vt {
	for l := 0; l < m.Layers; l++ {
		out := m.Heads * m.Hidden
		if l == m.Layers-1 {
			out = classes
		}
		tag := fmt.Sprintf("GAT_L%d", l+1)
		z := st.gemm(tag+"_xw", h, out)
		// Per-head attention terms for source and destination roles.
		attnSrc := st.gemm(tag+"_attn_l", z, m.Heads)
		attnDst := st.gemm(tag+"_attn_r", z, m.Heads)
		// Message creation: per-edge attention logits (feature width = heads).
		logits := st.graphOp(tag+"_MsgC", ops.OpInfo{
			EdgeOp: ops.EdgeAdd, GatherOp: ops.GatherCopyRHS,
			AKind: tensor.SrcV, BKind: tensor.DstV, CKind: tensor.EdgeK,
		}, asKind(attnSrc, tensor.SrcV), asKind(attnDst, tensor.DstV), m.Heads)
		logits = st.unary(tag+"_leaky_exp", logits, 0, []program.Unary{
			{Kind: program.UnaryLeakyReLU, Alpha: 0.2},
			{Kind: program.UnaryExp},
		})
		// Softmax denominator: per-destination sum of exponentials.
		denom := st.graphOp(tag+"_softmax_sum", ops.OpInfo{
			EdgeOp: ops.CopyRHS, GatherOp: ops.GatherSum,
			AKind: tensor.Null, BKind: tensor.EdgeK, CKind: tensor.DstV,
		}, vt{}, logits, m.Heads)
		alpha := st.graphOp(tag+"_softmax_div", ops.OpInfo{
			EdgeOp: ops.EdgeDiv, GatherOp: ops.GatherCopyRHS,
			AKind: tensor.EdgeK, BKind: tensor.DstV, CKind: tensor.EdgeK,
		}, logits, asKind(denom, tensor.DstV), m.Heads)
		// Merge heads into one broadcastable scalar per edge.
		alphaScalar := st.headMerge(tag+"_head_merge", alpha)
		// Weighted aggregation of transformed features.
		h = fusedAggr(st, tag+"_Aggr", ops.EdgeMul, ops.GatherSum,
			asKind(z, tensor.SrcV), alphaScalar, out)
		h = st.unary(tag+"_elu", h, 0, []program.Unary{{Kind: program.UnaryLeakyReLU, Alpha: 0.1}})
	}
	return h
}

// InferenceCost implements Model.
func (m *GAT) InferenceCost(g *graph.Graph, inFeat, classes int, eng Engine) (CostReport, error) {
	e := newExec(g, eng, false, m.Name())
	m.run(e, vt{kind: tensor.SrcV, cols: inFeat}, classes)
	return e.finish()
}

// Forward implements Model.
func (m *GAT) Forward(g *graph.Graph, x *tensor.Dense, classes int, eng Engine) (*tensor.Dense, error) {
	e := newExec(g, eng, true, m.Name())
	h := m.run(e, e.input(x, x.Cols), classes)
	if _, err := e.finish(); err != nil {
		return nil, err
	}
	return h.data, nil
}

// trainingCost implements the models.TrainingCost extension: the same stage
// pipeline with backward kernels charged per stage.
func (m *GAT) trainingCost(g *graph.Graph, inFeat, classes int, eng Engine) (CostReport, error) {
	e := newExec(g, eng, false, m.Name())
	e.enableTraining()
	m.run(e, vt{kind: tensor.SrcV, cols: inFeat}, classes)
	return e.finish()
}
