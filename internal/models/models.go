// Package models implements the paper's benchmark GNNs — GCN, GIN, GAT and
// GraphSage with sum/max/mean aggregators (§6 "Benchmarks") — as pipelines
// of dense operators and uGrapher graph operators.
//
// Each model runs through an Engine, which decides the schedule of every
// graph operator: the uGrapher engines tune or predict per operator and
// dataset, while the baseline engines (internal/baselines) use the fixed
// strategies of DGL, PyG and GNNAdvisor. Models execute in two modes:
// functional (real tensors, used by tests and examples) and cost-only
// (shapes only, used by the end-to-end experiments of Figs. 13-15, where
// the large datasets make full dense arithmetic in Go pointless — the
// simulated metrics depend only on shapes and graph structure).
package models

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/program"
	"repro/internal/schedule"
	"repro/internal/tensor"
)

// Engine chooses a schedule for each graph operator. Implementations: the
// uGrapher tuner/predictor engines (this package) and the fixed baselines
// (internal/baselines).
type Engine interface {
	Name() string
	Device() *gpu.Device
	// ScheduleFor returns the schedule this system would run the task with.
	ScheduleFor(t schedule.Task) core.Schedule
	// Fused reports whether the engine fuses message creation into
	// aggregation (DGL and uGrapher do; PyG materialises edge messages).
	Fused() bool
	// GraphOpOverheadCycles is the host-side dispatch cost charged per graph
	// operator launch: Python framework dispatch for DGL/PyG (tens of us),
	// a thin runtime for GNNAdvisor, a compiled call for uGrapher. This is
	// a real and measured component of the paper's end-to-end gaps — on
	// small graphs the kernels themselves are microseconds, so dispatch
	// dominates the baselines' time.
	GraphOpOverheadCycles() float64
}

// BackendProvider is optionally implemented by engines that pin the host
// compute backend functional execution runs on (reference interpreter,
// parallel worker pool, or simulator). Engines without it use
// core.DefaultBackend(). Note the separation: ScheduleFor decides the
// simulated schedule *cost*, the compute backend only decides how the
// functional outputs are produced.
type BackendProvider interface {
	ComputeBackend() core.ExecBackend
}

// computeBackend resolves an engine's compute backend.
func computeBackend(eng Engine) core.ExecBackend {
	if p, ok := eng.(BackendProvider); ok {
		if b := p.ComputeBackend(); b != nil {
			return b
		}
	}
	return core.DefaultBackend()
}

// OpCost records one executed operator in a cost report.
type OpCost struct {
	Name     string
	Kind     string // "graph" or "dense"
	Cycles   float64
	Schedule core.Schedule // zero value for dense ops
	Metrics  gpu.Metrics   // populated for graph ops
}

// CostReport sums the simulated cycles of an inference pass.
type CostReport struct {
	Model  string
	Engine string
	Total  float64
	Graph  float64
	Dense  float64
	PerOp  []OpCost
}

// Model is one benchmark GNN.
type Model interface {
	Name() string
	// InferenceCost estimates end-to-end inference cycles for a graph with
	// the given input feature width and output classes.
	InferenceCost(g *graph.Graph, inFeat, classes int, eng Engine) (CostReport, error)
	// Forward runs real inference on (small) inputs, returning per-vertex
	// logits. Weights are deterministic pseudo-random per model.
	Forward(g *graph.Graph, x *tensor.Dense, classes int, eng Engine) (*tensor.Dense, error)
}

// exec is the shared execution context: it chains tensors through dense and
// graph stages, computing real values only in functional mode, and always
// accumulating simulated cost.
type exec struct {
	g          *graph.Graph
	eng        Engine
	dev        *gpu.Device
	backend    core.ExecBackend
	ctx        context.Context
	functional bool
	training   bool
	reversed   *graph.Graph
	rng        *rand.Rand
	report     CostReport
	err        error
}

func newExec(g *graph.Graph, eng Engine, functional bool, model string) *exec {
	return &exec{
		g: g, eng: eng, dev: eng.Device(), backend: computeBackend(eng),
		ctx:        context.Background(),
		functional: functional,
		rng:        rand.New(rand.NewSource(1234)),
		report:     CostReport{Model: model, Engine: eng.Name()},
	}
}

// stage is the model-building vocabulary: every model's run method drives a
// stage, and two implementations exist — exec (this file), which interprets
// the pipeline op by op, and recorder (program.go), which records it as a
// program.Program for whole-model compilation. Keeping one run method per
// model guarantees the two paths see identical stage sequences, weights and
// edge scalars.
type stage interface {
	// fused reports whether aggregations run as single fused kernels; the
	// recorder always answers false (programs record the decomposed form and
	// re-fuse at compile time when the engine supports it).
	fused() bool
	edgeScalar() vt
	gemm(name string, t vt, n int) vt
	// unary applies an elementwise chain in place; reads counts extra
	// operand streams for the cost model.
	unary(name string, t vt, reads int, chain []program.Unary) vt
	// addScaled computes t + scale*other in place on t.
	addScaled(name string, t, other vt, scale float32) vt
	// headMerge reduces t's columns to their per-row mean (width 1).
	headMerge(name string, t vt) vt
	// concat joins columns [a | b]; charged as part of the following GEMM.
	concat(name string, a, b vt) vt
	graphOp(name string, op ops.OpInfo, a, b vt, outCols int) vt
}

// vt is a virtual tensor: a shape plus, in functional mode, real data, and,
// when recording, the program value it names.
type vt struct {
	kind tensor.Kind // SrcV/DstV for vertex rows, EdgeK for edge rows
	cols int
	data *tensor.Dense
	val  program.ValueID
}

func (e *exec) rows(kind tensor.Kind) int {
	if kind == tensor.EdgeK {
		return e.g.NumEdges()
	}
	return e.g.NumVertices()
}

// input wraps the caller-provided feature matrix.
func (e *exec) input(x *tensor.Dense, cols int) vt {
	return vt{kind: tensor.SrcV, cols: cols, data: x}
}

// weights materialises a deterministic random weight matrix in functional
// mode.
func (e *exec) weights(k, n int) *tensor.Dense {
	if !e.functional {
		return nil
	}
	w := tensor.NewDense(k, n)
	w.FillRandom(e.rng, 0.5)
	return w
}

// gemm applies a dense linear transform t @ W[k x n].
func (e *exec) gemm(name string, t vt, n int) vt {
	if e.err != nil {
		return vt{}
	}
	rows := e.rows(t.kind)
	cycles := gpu.GEMMCycles(e.dev, rows, t.cols, n)
	e.report.PerOp = append(e.report.PerOp, OpCost{Name: name, Kind: "dense", Cycles: cycles})
	e.report.Dense += cycles
	if e.training {
		e.chargeGEMMBackward(name, rows, t.cols, n)
	}
	out := vt{kind: t.kind, cols: n}
	if e.functional {
		w := e.weights(t.cols, n)
		out.data = tensor.MatMul(t.data, w)
	}
	return out
}

// fused implements stage from the engine's fusion capability.
func (e *exec) fused() bool { return e.eng.Fused() }

// chargeElementwise accounts one streaming op over n elements with `reads`
// extra operand streams (plus the backward twin in training mode).
func (e *exec) chargeElementwise(name string, n, reads int) {
	cycles := gpu.ElementwiseCycles(e.dev, n, reads)
	e.report.PerOp = append(e.report.PerOp, OpCost{Name: name, Kind: "dense", Cycles: cycles})
	e.report.Dense += cycles
	if e.training {
		e.report.PerOp = append(e.report.PerOp, OpCost{Name: name + "_bwd", Kind: "dense", Cycles: cycles})
		e.report.Dense += cycles
	}
}

// unary charges a streaming elementwise chain over t (relu, bias+relu,
// leaky-relu+exp, ...), applying it in place in functional mode.
func (e *exec) unary(name string, t vt, reads int, chain []program.Unary) vt {
	if e.err != nil {
		return vt{}
	}
	e.chargeElementwise(name, e.rows(t.kind)*t.cols, reads)
	if e.functional {
		for _, u := range chain {
			u.Apply(t.data)
		}
	}
	return t
}

// addScaled charges and computes t += scale*other in place on t.
func (e *exec) addScaled(name string, t, other vt, scale float32) vt {
	if e.err != nil {
		return vt{}
	}
	e.chargeElementwise(name, e.rows(t.kind)*t.cols, 1)
	if e.functional && other.data != nil {
		tensor.AddScaledInto(t.data, t.data, other.data, scale)
	}
	return t
}

// headMerge charges one read-reduce stream over t and produces its per-row
// column mean as a width-1 tensor.
func (e *exec) headMerge(name string, t vt) vt {
	if e.err != nil {
		return vt{}
	}
	e.chargeElementwise(name, e.rows(t.kind)*t.cols, 1)
	out := vt{kind: t.kind, cols: 1}
	if e.functional {
		out.data = tensor.NewDense(e.rows(t.kind), 1)
		tensor.RowMeanInto(out.data, t.data)
	}
	return out
}

// concat joins [a | b]; no cost is charged — the paper's models fold the
// concatenation into the following GEMM's K dimension.
func (e *exec) concat(name string, a, b vt) vt {
	if e.err != nil {
		return vt{}
	}
	out := vt{kind: a.kind, cols: a.cols + b.cols}
	if e.functional {
		out.data = tensor.Concat(a.data, b.data)
	}
	return out
}

// graphOp runs one graph operator through the engine's schedule.
// a and b become the A/B operands (b may be the zero vt for Null).
func (e *exec) graphOp(name string, op ops.OpInfo, a, b vt, outCols int) vt {
	if e.err != nil {
		return vt{}
	}
	task := schedule.Task{Graph: e.g, Op: op, Feat: outCols, Device: e.dev}
	if op.AKind != tensor.Null {
		task.ACols = a.cols
	}
	if op.BKind != tensor.Null {
		task.BCols = b.cols
	}
	op.Name = name
	sched := e.eng.ScheduleFor(task)
	metrics, err := core.Estimate(e.g, op, outCols, task.ACols, task.BCols, sched, e.dev,
		gpu.WithMaxSampledBlocks(96))
	if err != nil {
		e.err = fmt.Errorf("models: %s: %w", name, err)
		return vt{}
	}
	metrics.Cycles += e.eng.GraphOpOverheadCycles()
	e.report.PerOp = append(e.report.PerOp, OpCost{
		Name: name, Kind: "graph", Cycles: metrics.Cycles, Schedule: sched, Metrics: metrics,
	})
	e.report.Graph += metrics.Cycles
	if e.training {
		e.chargeGraphBackward(name, op, outCols, task.ACols, task.BCols)
	}

	out := vt{kind: op.CKind, cols: outCols}
	if e.functional {
		out.data = tensor.NewDense(e.rows(op.CKind), outCols)
		operands := core.Operands{
			A: tensor.Typed{Kind: op.AKind, T: a.data},
			B: tensor.Typed{Kind: op.BKind, T: b.data},
			C: tensor.Typed{Kind: op.CKind, T: out.data},
		}
		plan, err := core.Compile(op, sched)
		if err != nil {
			e.err = err
			return vt{}
		}
		// Lowering validates the operands once; Run skips re-validation.
		kern, err := e.backend.Lower(plan, e.g, operands)
		if err != nil {
			e.err = err
			return vt{}
		}
		if err := kern.RunCtx(e.ctx); err != nil {
			e.err = err
			return vt{}
		}
	}
	return out
}

// asKind retypes a vertex tensor operand (SrcV <-> DstV) without copying.
func asKind(t vt, kind tensor.Kind) vt {
	t.kind = kind
	return t
}

// finish seals the report.
func (e *exec) finish() (CostReport, error) {
	if e.err != nil {
		return CostReport{}, e.err
	}
	e.report.Total = e.report.Graph + e.report.Dense
	return e.report, nil
}

// All returns the paper's six benchmark models (§6): GCN, GIN, GAT, and the
// three GraphSage aggregator variants.
func All() []Model {
	return []Model{
		NewGCN(), NewGIN(), NewGAT(),
		NewSage(ops.GatherSum), NewSage(ops.GatherMax), NewSage(ops.GatherMean),
	}
}

// ForwardCtx is Model.Forward with cancellation: ctx is checked by every
// graph kernel at its backend's granularity, so a deadline interrupts a
// forward pass mid-model. Models that do not expose their stage pipeline
// fall back to an uncancellable Forward.
func ForwardCtx(ctx context.Context, m Model, g *graph.Graph, x *tensor.Dense, classes int, eng Engine) (*tensor.Dense, error) {
	type runner interface {
		run(st stage, h vt, classes int) vt
	}
	rm, ok := m.(runner)
	if !ok {
		return m.Forward(g, x, classes, eng)
	}
	e := newExec(g, eng, true, m.Name())
	e.ctx = ctx
	h := rm.run(e, e.input(x, x.Cols), classes)
	if _, err := e.finish(); err != nil {
		return nil, err
	}
	return h.data, nil
}

// ByName resolves a model by its benchmark name ("GCN", "SSum", ...).
func ByName(name string) (Model, error) {
	for _, m := range All() {
		if strings.EqualFold(m.Name(), name) {
			return m, nil
		}
	}
	return nil, fmt.Errorf("models: unknown model %q", name)
}
