package models

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/program"
	"repro/internal/tensor"
)

// GCN is the two-layer graph convolutional network of Kipf & Welling, with
// the paper-default hidden width 16. Each layer transforms features densely
// then runs the weighted-aggr-sum graph operator (u_mul_e + sum — the
// paper's §2.2 heavyweight example) with normalised edge weights.
type GCN struct {
	Hidden int
	Layers int
}

// NewGCN returns the default 2-layer, hidden-16 configuration.
func NewGCN() *GCN { return &GCN{Hidden: 16, Layers: 2} }

// Name implements Model.
func (m *GCN) Name() string { return "GCN" }

func (m *GCN) run(st stage, h vt, classes int) vt {
	w := st.edgeScalar()
	for l := 0; l < m.Layers; l++ {
		out := m.Hidden
		if l == m.Layers-1 {
			out = classes
		}
		tag := fmt.Sprintf("GCN_L%d", l+1)
		h = st.gemm(tag+"_xw", h, out)
		h = fusedAggr(st, tag+"_Aggr", ops.EdgeMul, ops.GatherSum,
			asKind(h, tensor.SrcV), w, out)
		h = st.unary(tag+"_bias_relu", h, 1, []program.Unary{{Kind: program.UnaryReLU}})
	}
	return h
}

// InferenceCost implements Model.
func (m *GCN) InferenceCost(g *graph.Graph, inFeat, classes int, eng Engine) (CostReport, error) {
	e := newExec(g, eng, false, m.Name())
	m.run(e, vt{kind: tensor.SrcV, cols: inFeat}, classes)
	return e.finish()
}

// Forward implements Model.
func (m *GCN) Forward(g *graph.Graph, x *tensor.Dense, classes int, eng Engine) (*tensor.Dense, error) {
	e := newExec(g, eng, true, m.Name())
	h := m.run(e, e.input(x, x.Cols), classes)
	if _, err := e.finish(); err != nil {
		return nil, err
	}
	return h.data, nil
}

// trainingCost implements the models.TrainingCost extension: the same stage
// pipeline with backward kernels charged per stage.
func (m *GCN) trainingCost(g *graph.Graph, inFeat, classes int, eng Engine) (CostReport, error) {
	e := newExec(g, eng, false, m.Name())
	e.enableTraining()
	m.run(e, vt{kind: tensor.SrcV, cols: inFeat}, classes)
	return e.finish()
}
