package models

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// TestTraceKernelSpansMatchCompiledProgram pins the acceptance criterion from
// the observability issue: one Run of a compiled program emits exactly one
// kernel span per graph kernel the compiler reports in Stats().
func TestTraceKernelSpansMatchCompiledProgram(t *testing.T) {
	telemetry.Reset()
	t.Cleanup(telemetry.Reset)
	telemetry.SetEnabled(true)

	g := smallGraph(t, 21)
	const inFeat, classes = 12, 5
	eng := &FixedEngine{
		EngineName:   "fixed-test",
		Dev:          gpu.V100(),
		AggrSchedule: core.DefaultSchedule,
		MsgCSchedule: core.DefaultSchedule,
		Fuses:        true,
		Compute:      core.NewParallelBackend(1),
	}
	x := tensor.NewDense(g.NumVertices(), inFeat)
	x.FillRandom(rand.New(rand.NewSource(77)), 1)

	cp, err := CompileModel(NewGCN(), g, inFeat, classes, eng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cp.Run(x); err != nil {
		t.Fatal(err)
	}

	var kernelSpans, stepSpans, runSpans int
	for _, ev := range telemetry.Default().Events() {
		if ev.Instant {
			continue
		}
		switch ev.Cat {
		case "kernel":
			kernelSpans++
		case "step":
			stepSpans++
		case "run":
			runSpans++
		}
	}
	want := cp.Stats().GraphKernels
	if kernelSpans != want {
		t.Errorf("trace has %d kernel spans after one Run, want %d (Stats().GraphKernels)", kernelSpans, want)
	}
	if runSpans != 1 {
		t.Errorf("trace has %d run spans, want 1", runSpans)
	}
	if stepSpans == 0 {
		t.Error("trace has no program step spans")
	}
	if got := telemetry.Default().CounterValues()[telemetry.MetricProgramRuns]; got != 1 {
		t.Errorf("%s = %d, want 1", telemetry.MetricProgramRuns, got)
	}

	// A second Run doubles the kernel spans: spans are per execution, not per
	// lowering.
	if _, err := cp.Run(x); err != nil {
		t.Fatal(err)
	}
	kernelSpans = 0
	for _, ev := range telemetry.Default().Events() {
		if !ev.Instant && ev.Cat == "kernel" {
			kernelSpans++
		}
	}
	if kernelSpans != 2*want {
		t.Errorf("trace has %d kernel spans after two Runs, want %d", kernelSpans, 2*want)
	}
}
