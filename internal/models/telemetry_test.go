package models

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/program"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// TestTraceKernelSpansMatchCompiledProgram pins the acceptance criterion from
// the observability issue: one Run of a compiled program emits exactly one
// kernel span per graph kernel the compiler reports in Stats().
func TestTraceKernelSpansMatchCompiledProgram(t *testing.T) {
	telemetry.Reset()
	t.Cleanup(telemetry.Reset)
	telemetry.SetEnabled(true)

	g := smallGraph(t, 21)
	const inFeat, classes = 12, 5
	eng := &FixedEngine{
		EngineName:   "fixed-test",
		Dev:          gpu.V100(),
		AggrSchedule: core.DefaultSchedule,
		MsgCSchedule: core.DefaultSchedule,
		Fuses:        true,
		Compute:      core.NewParallelBackend(1),
	}
	x := tensor.NewDense(g.NumVertices(), inFeat)
	x.FillRandom(rand.New(rand.NewSource(77)), 1)

	cp, err := CompileModel(NewGCN(), g, inFeat, classes, eng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cp.Run(x); err != nil {
		t.Fatal(err)
	}

	var kernelSpans, stepSpans, runSpans int
	for _, ev := range telemetry.Default().Events() {
		if ev.Instant {
			continue
		}
		switch ev.Cat {
		case "kernel":
			kernelSpans++
		case "step":
			stepSpans++
		case "run":
			runSpans++
		}
	}
	want := cp.Stats().GraphKernels
	if kernelSpans != want {
		t.Errorf("trace has %d kernel spans after one Run, want %d (Stats().GraphKernels)", kernelSpans, want)
	}
	if runSpans != 1 {
		t.Errorf("trace has %d run spans, want 1", runSpans)
	}
	if stepSpans == 0 {
		t.Error("trace has no program step spans")
	}
	if got := telemetry.Default().CounterValues()[telemetry.MetricProgramRuns]; got != 1 {
		t.Errorf("%s = %d, want 1", telemetry.MetricProgramRuns, got)
	}

	// A second Run doubles the kernel spans: spans are per execution, not per
	// lowering.
	if _, err := cp.Run(x); err != nil {
		t.Fatal(err)
	}
	kernelSpans = 0
	for _, ev := range telemetry.Default().Events() {
		if !ev.Instant && ev.Cat == "kernel" {
			kernelSpans++
		}
	}
	if kernelSpans != 2*want {
		t.Errorf("trace has %d kernel spans after two Runs, want %d", kernelSpans, 2*want)
	}
}

// TestTraceCausalParentLinksThroughRun pins the tentpole invariant from the
// tracing issue: when a request's TraceState rides the context into RunCtx,
// every span the layers below emit — the run span, each program step, each
// backend kernel — carries the trace id and a parent link that resolves
// inside the same trace, forming one connected tree.
func TestTraceCausalParentLinksThroughRun(t *testing.T) {
	telemetry.Reset()
	t.Cleanup(telemetry.Reset)
	telemetry.SetEnabled(true)

	g := smallGraph(t, 29)
	const inFeat, classes = 12, 5
	eng := &FixedEngine{
		EngineName:   "fixed-test",
		Dev:          gpu.V100(),
		AggrSchedule: core.DefaultSchedule,
		MsgCSchedule: core.DefaultSchedule,
		Fuses:        true,
		Compute:      core.NewParallelBackend(1),
	}
	x := tensor.NewDense(g.NumVertices(), inFeat)
	x.FillRandom(rand.New(rand.NewSource(78)), 1)

	cp, err := CompileModel(NewGCN(), g, inFeat, classes, eng)
	if err != nil {
		t.Fatal(err)
	}
	ts := telemetry.NewTraceState(0, 0, 128)
	ctx := telemetry.ContextWithTrace(context.Background(), ts)
	if _, err := cp.RunCtx(ctx, x); err != nil {
		t.Fatal(err)
	}

	var runID uint64
	stepIDs := map[uint64]bool{}
	var kernels, steps int
	for _, ev := range telemetry.Default().Events() {
		if ev.Instant || ev.TraceID == 0 {
			continue
		}
		if ev.TraceID != ts.TraceID() {
			t.Errorf("span %q carries trace %x, want %x", ev.Name, ev.TraceID, ts.TraceID())
		}
		if ev.SpanID == 0 {
			t.Errorf("traced span %q has no span id", ev.Name)
		}
		switch ev.Cat {
		case "run":
			runID = ev.SpanID
		case "step":
			stepIDs[ev.SpanID] = true
			steps++
		}
	}
	if runID == 0 || steps == 0 {
		t.Fatalf("trace missing run/step spans (run=%d steps=%d)", runID, steps)
	}
	for _, ev := range telemetry.Default().Events() {
		if ev.Instant || ev.TraceID == 0 {
			continue
		}
		switch ev.Cat {
		case "step":
			if ev.ParentID != runID {
				t.Errorf("step %q parents onto %d, want run span %d", ev.Name, ev.ParentID, runID)
			}
		case "kernel":
			kernels++
			if !stepIDs[ev.ParentID] {
				t.Errorf("kernel %q parents onto %d, not a step span", ev.Name, ev.ParentID)
			}
		}
	}
	if want := cp.Stats().GraphKernels; kernels != want {
		t.Errorf("traced kernel spans = %d, want %d", kernels, want)
	}
	// The TraceState retained the same tree for the exemplar store.
	spans, truncated := ts.Snapshot()
	if truncated != 0 || len(spans) == 0 {
		t.Fatalf("trace state snapshot: %d spans, %d truncated", len(spans), truncated)
	}
}

// TestTracedRunZeroAllocs extends the steady-state guarantee to the traced
// enabled path: with telemetry on and a request TraceState flowing through
// the context, RunCtx still allocates nothing per run. Span identity rides in
// value structs, span records land in the TraceState's pre-sized buffer (or
// bump its truncation count once full), and kernel spans reuse the site's
// precomputed args map.
func TestTracedRunZeroAllocs(t *testing.T) {
	telemetry.Reset()
	t.Cleanup(telemetry.Reset)
	telemetry.SetEnabled(true)
	// Pre-size the global event buffer so appends never reallocate the
	// backing array mid-measurement.
	telemetry.Default().SetMaxEvents(1 << 16)

	g := smallGraph(t, 24)
	const inFeat, classes = 16, 7
	x := tensor.NewDense(g.NumVertices(), inFeat)
	x.FillRandom(rand.New(rand.NewSource(3)), 1)

	defer program.SetParallelSteps(false)
	for _, parallel := range []bool{false, true} {
		program.SetParallelSteps(parallel)
		for _, shards := range []int{1, 4} {
			eng := &FixedEngine{
				EngineName:   "fixed-test",
				Dev:          gpu.V100(),
				AggrSchedule: core.DefaultSchedule,
				MsgCSchedule: core.DefaultSchedule,
				Fuses:        true,
				Compute:      core.NewShardedParallelBackend(1, shards),
			}
			for _, m := range All() {
				cp, err := CompileModel(m, g, inFeat, classes, eng)
				if err != nil {
					t.Fatal(err)
				}
				ts := telemetry.NewTraceState(0, 0, 512)
				ctx := telemetry.ContextWithTrace(context.Background(), ts)
				if _, err := cp.RunCtx(ctx, x); err != nil { // warm up
					t.Fatal(err)
				}
				allocs := testing.AllocsPerRun(10, func() {
					if _, err := cp.RunCtx(ctx, x); err != nil {
						t.Fatal(err)
					}
				})
				if allocs != 0 {
					t.Errorf("%s shards=%d parallel=%v: traced RunCtx allocates %.1f objects/run, want 0",
						m.Name(), shards, parallel, allocs)
				}
			}
		}
	}
}
