package models

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/program"
	"repro/internal/tensor"
)

// GIN is the graph isomorphism network of Xu et al. with the paper-default
// five layers and hidden width 64. Each layer sums neighbour features
// (aggregation-sum — the Table 9 GIN_L*_Aggr operators), mixes in the
// centre vertex with (1+eps), and applies an MLP.
type GIN struct {
	Hidden int
	Layers int
	Eps    float32
}

// NewGIN returns the default 5-layer, hidden-64 configuration.
func NewGIN() *GIN { return &GIN{Hidden: 64, Layers: 5, Eps: 0.1} }

// Name implements Model.
func (m *GIN) Name() string { return "GIN" }

func (m *GIN) run(st stage, h vt, classes int) vt {
	for l := 0; l < m.Layers; l++ {
		out := m.Hidden
		if l == m.Layers-1 {
			out = classes
		}
		tag := fmt.Sprintf("GIN_L%d", l+1)
		s := unweightedAggr(st, tag+"_Aggr", ops.GatherSum, h, h.cols)
		// s + (1+eps)*h, then the MLP.
		h = st.addScaled(tag+"_eps_add", s, h, 1+m.Eps)
		h = st.gemm(tag+"_mlp", h, out)
		h = st.unary(tag+"_relu", h, 0, []program.Unary{{Kind: program.UnaryReLU}})
	}
	return h
}

// InferenceCost implements Model.
func (m *GIN) InferenceCost(g *graph.Graph, inFeat, classes int, eng Engine) (CostReport, error) {
	e := newExec(g, eng, false, m.Name())
	m.run(e, vt{kind: tensor.SrcV, cols: inFeat}, classes)
	return e.finish()
}

// Forward implements Model.
func (m *GIN) Forward(g *graph.Graph, x *tensor.Dense, classes int, eng Engine) (*tensor.Dense, error) {
	e := newExec(g, eng, true, m.Name())
	h := m.run(e, e.input(x, x.Cols), classes)
	if _, err := e.finish(); err != nil {
		return nil, err
	}
	return h.data, nil
}

// trainingCost implements the models.TrainingCost extension: the same stage
// pipeline with backward kernels charged per stage.
func (m *GIN) trainingCost(g *graph.Graph, inFeat, classes int, eng Engine) (CostReport, error) {
	e := newExec(g, eng, false, m.Name())
	e.enableTraining()
	m.run(e, vt{kind: tensor.SrcV, cols: inFeat}, classes)
	return e.finish()
}
