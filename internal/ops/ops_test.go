package ops

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestEdgeOpApply(t *testing.T) {
	cases := []struct {
		op      EdgeOp
		a, b, w float32
	}{
		{CopyLHS, 3, 7, 3},
		{CopyRHS, 3, 7, 7},
		{EdgeNull, 3, 7, 7},
		{EdgeAdd, 3, 7, 10},
		{EdgeSub, 3, 7, -4},
		{EdgeMul, 3, 7, 21},
		{EdgeDiv, 3, 4, 0.75},
	}
	for _, c := range cases {
		if got := c.op.Apply(c.a, c.b); got != c.w {
			t.Errorf("%s.Apply(%v,%v) = %v, want %v", c.op, c.a, c.b, got, c.w)
		}
	}
}

func TestEdgeOpApplyPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EdgeOp(99).Apply(1, 2)
}

func TestEdgeOpMeta(t *testing.T) {
	if !EdgeMul.IsBinary() || CopyLHS.IsBinary() || EdgeNull.IsBinary() {
		t.Error("IsBinary misclassifies")
	}
	if EdgeMul.FLOPs() != 1 || CopyLHS.FLOPs() != 0 {
		t.Error("FLOPs wrong")
	}
	if !EdgeDiv.Valid() || EdgeOp(50).Valid() {
		t.Error("Valid wrong")
	}
	if EdgeOp(50).String() != "EdgeOp(50)" {
		t.Error("unknown edge op string")
	}
}

func TestParseEdgeOpRoundTrip(t *testing.T) {
	for op := EdgeNull; op.Valid(); op++ {
		got, err := ParseEdgeOp(op.String())
		if err != nil || got != op {
			t.Errorf("ParseEdgeOp(%q) = %v, %v", op.String(), got, err)
		}
	}
	if _, err := ParseEdgeOp("nope"); err == nil {
		t.Error("expected error")
	}
}

func TestGatherOpCombine(t *testing.T) {
	if got := GatherSum.Combine(3, 4); got != 7 {
		t.Errorf("sum: %v", got)
	}
	if got := GatherMean.Combine(3, 4); got != 7 {
		t.Errorf("mean accumulates as sum: %v", got)
	}
	if got := GatherMax.Combine(3, 4); got != 4 {
		t.Errorf("max: %v", got)
	}
	if got := GatherMax.Combine(5, 4); got != 5 {
		t.Errorf("max keeps acc: %v", got)
	}
	if got := GatherMin.Combine(3, 4); got != 3 {
		t.Errorf("min: %v", got)
	}
	if got := GatherCopyRHS.Combine(3, 4); got != 4 {
		t.Errorf("copy_rhs: %v", got)
	}
	if got := GatherCopyLHS.Combine(3, 4); got != 3 {
		t.Errorf("copy_lhs: %v", got)
	}
}

func TestGatherIdentity(t *testing.T) {
	if GatherSum.Identity() != 0 || GatherMean.Identity() != 0 {
		t.Error("sum/mean identity")
	}
	if !math.IsInf(float64(GatherMax.Identity()), -1) {
		t.Error("max identity should be -inf")
	}
	if !math.IsInf(float64(GatherMin.Identity()), 1) {
		t.Error("min identity should be +inf")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for copy identity")
		}
	}()
	GatherCopyRHS.Identity()
}

// Property: reductions are commutative and associative over their Combine.
func TestQuickGatherCommutative(t *testing.T) {
	for _, op := range []GatherOp{GatherSum, GatherMax, GatherMin} {
		op := op
		f := func(a, b float32) bool {
			return op.Combine(a, b) == op.Combine(b, a)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%s not commutative: %v", op, err)
		}
	}
}

func TestParseGatherOpRoundTrip(t *testing.T) {
	for op := GatherNull; op.Valid(); op++ {
		got, err := ParseGatherOp(op.String())
		if err != nil || got != op {
			t.Errorf("ParseGatherOp(%q) = %v, %v", op.String(), got, err)
		}
	}
	if _, err := ParseGatherOp("prod"); err == nil {
		t.Error("expected error")
	}
	if GatherOp(50).String() != "GatherOp(50)" {
		t.Error("unknown gather op string")
	}
}

func TestOpInfoValidate(t *testing.T) {
	valid := []OpInfo{AggrSum, AggrMax, AggrMean, WeightedAggrSum, UAddV, CopyU, CopyESum, EDivV}
	for _, oi := range valid {
		if err := oi.Validate(); err != nil {
			t.Errorf("%s should validate: %v", oi, err)
		}
	}
	invalid := []OpInfo{
		// Output Src_V is never legal.
		{EdgeOp: CopyLHS, GatherOp: GatherSum, AKind: tensor.SrcV, CKind: tensor.SrcV},
		// Message creation with a reduction.
		{EdgeOp: CopyLHS, GatherOp: GatherSum, AKind: tensor.SrcV, CKind: tensor.EdgeK},
		// Vertex output without a reduction.
		{EdgeOp: CopyLHS, GatherOp: GatherCopyRHS, AKind: tensor.SrcV, CKind: tensor.DstV},
		// copy_lhs with missing A.
		{EdgeOp: CopyLHS, GatherOp: GatherSum, AKind: tensor.Null, CKind: tensor.DstV},
		// copy_lhs with extra B.
		{EdgeOp: CopyLHS, GatherOp: GatherSum, AKind: tensor.SrcV, BKind: tensor.EdgeK, CKind: tensor.DstV},
		// Binary op with a null operand.
		{EdgeOp: EdgeMul, GatherOp: GatherSum, AKind: tensor.SrcV, CKind: tensor.DstV},
		// Invalid enums.
		{EdgeOp: EdgeOp(99), GatherOp: GatherSum, AKind: tensor.SrcV, CKind: tensor.DstV},
		{EdgeOp: CopyLHS, GatherOp: GatherOp(99), AKind: tensor.SrcV, CKind: tensor.DstV},
	}
	for i, oi := range invalid {
		if err := oi.Validate(); err == nil {
			t.Errorf("case %d (%s) should fail validation", i, oi)
		}
	}
}

func TestOpInfoClass(t *testing.T) {
	cases := []struct {
		oi   OpInfo
		want Class
	}{
		{UAddV, MessageCreation},
		{CopyU, MessageCreation},
		{CopyESum, MessageAggregation},
		{AggrSum, FusedAggregation},
		{WeightedAggrSum, FusedAggregation},
	}
	for _, c := range cases {
		got, err := c.oi.Class()
		if err != nil {
			t.Errorf("%s: %v", c.oi, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s class = %s, want %s", c.oi, got, c.want)
		}
	}
	if _, err := (OpInfo{}).Class(); err == nil {
		t.Error("invalid op should not classify")
	}
}

// TestCensusMatchesTable2 pins the reconstructed operator space to the
// paper's Table 2 counts.
func TestCensusMatchesTable2(t *testing.T) {
	want := map[[3]string]int{
		{"Message Creation", "V", "E"}:    11,
		{"Message Creation", "E", "E"}:    1,
		{"Message Creation", "V&E", "E"}:  20,
		{"Message Aggregation", "E", "V"}: 4,
		{"Fused Aggregation", "V", "V"}:   44,
		{"Fused Aggregation", "V&E", "V"}: 80,
	}
	got := map[[3]string]int{}
	total := 0
	for _, row := range Census() {
		got[[3]string{row.Class.String(), row.InputKinds, row.OutputKind}] = row.Count
		total += row.Count
	}
	if total != 160 {
		t.Errorf("total operators = %d, want 160", total)
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("census %v = %d, want %d", k, got[k], w)
		}
	}
	if len(got) != len(want) {
		t.Errorf("unexpected census rows: %v", got)
	}
}

// TestRegistryAllValid checks every enumerated operator is a legal OpInfo
// and classifies consistently with its registry class.
func TestRegistryAllValid(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Registry() {
		if seen[e.DGLName] {
			t.Errorf("duplicate registry name %s", e.DGLName)
		}
		seen[e.DGLName] = true
		if err := e.Info.Validate(); err != nil {
			t.Errorf("%s: %v", e.DGLName, err)
			continue
		}
		cls, err := e.Info.Class()
		if err != nil {
			t.Errorf("%s: %v", e.DGLName, err)
			continue
		}
		if cls != e.Class {
			t.Errorf("%s: derived class %s != registry class %s", e.DGLName, cls, e.Class)
		}
	}
}

func TestLookup(t *testing.T) {
	e, ok := Lookup("u_mul_e.sum")
	if !ok {
		t.Fatal("u_mul_e.sum should exist")
	}
	if e.Info.EdgeOp != EdgeMul || e.Info.GatherOp != GatherSum {
		t.Errorf("u_mul_e.sum mapped to %s", e.Info)
	}
	if e.Info.AKind != tensor.SrcV || e.Info.BKind != tensor.EdgeK {
		t.Errorf("u_mul_e.sum kinds wrong: %s", e.Info)
	}
	if _, ok := Lookup("no_such_op"); ok {
		t.Error("lookup of missing op should fail")
	}
}

func TestClassString(t *testing.T) {
	if MessageCreation.String() != "Message Creation" ||
		MessageAggregation.String() != "Message Aggregation" ||
		FusedAggregation.String() != "Fused Aggregation" {
		t.Error("class strings wrong")
	}
	if Class(9).String() != "Class(9)" {
		t.Error("unknown class string")
	}
}

func TestOpInfoString(t *testing.T) {
	s := WeightedAggrSum.String()
	want := "weighted_aggr_sum: mul(Src_V,Edge)->sum->Dst_V"
	if s != want {
		t.Errorf("String() = %q, want %q", s, want)
	}
}
