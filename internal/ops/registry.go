package ops

import (
	"fmt"
	"sort"

	"repro/internal/tensor"
)

// This file reconstructs the graph-operator space that the paper's Table 2
// counts (DGL's 160 built-in graph operators) and Table 4 represents.
//
// DGL names message functions u_<op>_v, u_<op>_e, ..., copy_u, copy_e, where
// u = source vertex, v = destination vertex, e = edge, and <op> ranges over
// five binary ops {add, sub, mul, div, dot}; reductions range over
// {sum, max, min, mean}. That yields exactly the Table 2 census:
//
//	message creation:  V->E: u_op_v + v_op_u (10) + copy_u (1)  = 11
//	                   E->E: copy_e                             = 1
//	                   V&E->E: {u,e},{e,u},{v,e},{e,v} x 5 ops  = 20
//	message aggregation E->V: copy_e + 4 reductions             = 4
//	fused aggregation  V->V:  11 creations x 4 reductions       = 44
//	                   V&E->V: 20 creations x 4 reductions      = 80
//	                                                       total 160
//
// Every entry maps to an OpInfo of the unified abstraction. DGL's "dot"
// composes an element-wise multiply with a feature-dimension reduction; its
// traversal, addressing and scheduling behaviour is that of "mul", so its
// OpInfo uses EdgeMul (the feature reduction is a dense epilogue outside the
// graph operator).

// RegistryEntry is one DGL-style built-in graph operator.
type RegistryEntry struct {
	// DGLName is the framework-facing spelling, e.g. "u_mul_e.sum" for
	// update_all(u_mul_e, sum) or "u_add_v" for apply_edges(u_add_v).
	DGLName string
	Class   Class
	// InputKinds lists the distinct non-null input kinds ("V", "E", "V&E").
	InputKinds string
	// OutputKind is "V" or "E".
	OutputKind string
	Info       OpInfo
}

var binaryOps = []struct {
	dgl string
	op  EdgeOp
}{
	{"add", EdgeAdd}, {"sub", EdgeSub}, {"mul", EdgeMul}, {"div", EdgeDiv}, {"dot", EdgeMul},
}

var reduceOps = []struct {
	dgl string
	op  GatherOp
}{
	{"sum", GatherSum}, {"max", GatherMax}, {"min", GatherMin}, {"mean", GatherMean},
}

// operandKind maps a DGL operand letter to a tensor kind.
func operandKind(letter byte) tensor.Kind {
	switch letter {
	case 'u':
		return tensor.SrcV
	case 'v':
		return tensor.DstV
	case 'e':
		return tensor.EdgeK
	default:
		// invariant: letters come from the literal u/v/e loops in
		// registerAll below, never from parsed input.
		panic(fmt.Sprintf("ops: bad operand letter %q", letter))
	}
}

func inputClass(a, b tensor.Kind) string {
	hasV := a.IsVertex() || b.IsVertex()
	hasE := a == tensor.EdgeK || b == tensor.EdgeK
	switch {
	case hasV && hasE:
		return "V&E"
	case hasV:
		return "V"
	default:
		return "E"
	}
}

// messageCreations enumerates the 32 message-creation operators (11 V->E,
// 1 E->E, 20 V&E->E).
func messageCreations() []RegistryEntry {
	var entries []RegistryEntry
	add := func(name string, info OpInfo) {
		info.Name = name
		entries = append(entries, RegistryEntry{
			DGLName:    name,
			Class:      MessageCreation,
			InputKinds: inputClass(info.AKind, info.BKind),
			OutputKind: "E",
			Info:       info,
		})
	}
	// copy_u, copy_e.
	add("copy_u", OpInfo{EdgeOp: CopyLHS, GatherOp: GatherCopyRHS, AKind: tensor.SrcV, CKind: tensor.EdgeK})
	add("copy_e", OpInfo{EdgeOp: CopyRHS, GatherOp: GatherCopyRHS, BKind: tensor.EdgeK, CKind: tensor.EdgeK})
	// Binary pairs: both orders of (u,v) and the four vertex-edge pairings.
	pairs := []struct{ a, b byte }{
		{'u', 'v'}, {'v', 'u'},
		{'u', 'e'}, {'e', 'u'}, {'v', 'e'}, {'e', 'v'},
	}
	for _, p := range pairs {
		for _, b := range binaryOps {
			name := fmt.Sprintf("%c_%s_%c", p.a, b.dgl, p.b)
			add(name, OpInfo{
				EdgeOp:   b.op,
				GatherOp: GatherCopyRHS,
				AKind:    operandKind(p.a),
				BKind:    operandKind(p.b),
				CKind:    tensor.EdgeK,
			})
		}
	}
	return entries
}

// messageAggregations enumerates the 4 pure aggregations (copy_e + reduce).
func messageAggregations() []RegistryEntry {
	var entries []RegistryEntry
	for _, r := range reduceOps {
		name := "copy_e." + r.dgl
		entries = append(entries, RegistryEntry{
			DGLName:    name,
			Class:      MessageAggregation,
			InputKinds: "E",
			OutputKind: "V",
			Info: OpInfo{
				Name:     name,
				EdgeOp:   CopyRHS,
				GatherOp: r.op,
				BKind:    tensor.EdgeK,
				CKind:    tensor.DstV,
			},
		})
	}
	return entries
}

// fusedAggregations enumerates the 124 fused operators: every message
// creation whose inputs include a vertex tensor, times every reduction.
func fusedAggregations() []RegistryEntry {
	var entries []RegistryEntry
	for _, mc := range messageCreations() {
		if mc.DGLName == "copy_e" {
			continue // copy_e.reduce is pure aggregation, counted above
		}
		for _, r := range reduceOps {
			info := mc.Info
			info.GatherOp = r.op
			info.CKind = tensor.DstV
			info.Name = mc.DGLName + "." + r.dgl
			entries = append(entries, RegistryEntry{
				DGLName:    info.Name,
				Class:      FusedAggregation,
				InputKinds: mc.InputKinds,
				OutputKind: "V",
				Info:       info,
			})
		}
	}
	return entries
}

// Registry returns the full reconstructed operator space, deterministically
// ordered.
func Registry() []RegistryEntry {
	var all []RegistryEntry
	all = append(all, messageCreations()...)
	all = append(all, messageAggregations()...)
	all = append(all, fusedAggregations()...)
	sort.Slice(all, func(i, j int) bool {
		if all[i].Class != all[j].Class {
			return all[i].Class < all[j].Class
		}
		return all[i].DGLName < all[j].DGLName
	})
	return all
}

// CensusRow is one column of the paper's Table 2.
type CensusRow struct {
	Class      Class
	InputKinds string
	OutputKind string
	Count      int
}

// Census computes the Table 2 classification counts from the registry.
func Census() []CensusRow {
	counts := map[[3]string]int{}
	for _, e := range Registry() {
		counts[[3]string{e.Class.String(), e.InputKinds, e.OutputKind}]++
	}
	var rows []CensusRow
	for key, c := range counts {
		var cls Class
		switch key[0] {
		case MessageCreation.String():
			cls = MessageCreation
		case MessageAggregation.String():
			cls = MessageAggregation
		default:
			cls = FusedAggregation
		}
		rows = append(rows, CensusRow{Class: cls, InputKinds: key[1], OutputKind: key[2], Count: c})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Class != rows[j].Class {
			return rows[i].Class < rows[j].Class
		}
		return rows[i].InputKinds < rows[j].InputKinds
	})
	return rows
}

// Lookup finds a registry entry by DGL name.
func Lookup(dglName string) (RegistryEntry, bool) {
	for _, e := range Registry() {
		if e.DGLName == dglName {
			return e, true
		}
	}
	return RegistryEntry{}, false
}

// Named operators used throughout the paper's experiments.
var (
	// AggrSum is the unweighted aggregation-sum of Fig. 4 (SageSum):
	// copy source features, reduce by sum.
	AggrSum = OpInfo{Name: "aggr_sum", EdgeOp: CopyLHS, GatherOp: GatherSum,
		AKind: tensor.SrcV, BKind: tensor.Null, CKind: tensor.DstV}
	// AggrMax is SageMax's unweighted-aggr-max.
	AggrMax = OpInfo{Name: "aggr_max", EdgeOp: CopyLHS, GatherOp: GatherMax,
		AKind: tensor.SrcV, BKind: tensor.Null, CKind: tensor.DstV}
	// AggrMean is SageMean's aggregator.
	AggrMean = OpInfo{Name: "aggr_mean", EdgeOp: CopyLHS, GatherOp: GatherMean,
		AKind: tensor.SrcV, BKind: tensor.Null, CKind: tensor.DstV}
	// WeightedAggrSum is GCN/GAT's u_mul_e.sum: multiply source features by
	// edge weights, reduce by sum (the paper's §2.2 "weighted-aggr-sum").
	WeightedAggrSum = OpInfo{Name: "weighted_aggr_sum", EdgeOp: EdgeMul, GatherOp: GatherSum,
		AKind: tensor.SrcV, BKind: tensor.EdgeK, CKind: tensor.DstV}
	// UAddV is GAT's first message-creation operator: per-edge sum of source
	// and destination attention terms.
	UAddV = OpInfo{Name: "u_add_v", EdgeOp: EdgeAdd, GatherOp: GatherCopyRHS,
		AKind: tensor.SrcV, BKind: tensor.DstV, CKind: tensor.EdgeK}
	// CopyU materialises source features onto edges (message creation).
	CopyU = OpInfo{Name: "copy_u", EdgeOp: CopyLHS, GatherOp: GatherCopyRHS,
		AKind: tensor.SrcV, BKind: tensor.Null, CKind: tensor.EdgeK}
	// CopyESum is the pure message aggregation copy_e.sum.
	CopyESum = OpInfo{Name: "copy_e.sum", EdgeOp: CopyRHS, GatherOp: GatherSum,
		AKind: tensor.Null, BKind: tensor.EdgeK, CKind: tensor.DstV}
	// EDivVSum normalises edge values by a destination-vertex scalar then
	// sums (used for softmax normalisation in GAT).
	EDivV = OpInfo{Name: "e_div_v", EdgeOp: EdgeDiv, GatherOp: GatherCopyRHS,
		AKind: tensor.EdgeK, BKind: tensor.DstV, CKind: tensor.EdgeK}
)
