// Package ops defines the operator vocabulary of uGrapher's unified graph
// operator abstraction (paper §3.2, Fig. 5): the element-wise edge_op, the
// edge-to-vertex gather_op, and the OpInfo descriptor that — together with
// three typed tensors — captures the complete semantics of any GNN graph
// operator (Table 4).
package ops

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// EdgeOp is the edge-wise computation ψ applied to the A and B operands for
// each edge (the paper's edge_op_list).
type EdgeOp uint8

const (
	// EdgeNull marks a skipped edge stage; the B operand feeds gather directly.
	EdgeNull EdgeOp = iota
	// CopyLHS forwards the A operand.
	CopyLHS
	// CopyRHS forwards the B operand.
	CopyRHS
	// EdgeAdd computes A + B.
	EdgeAdd
	// EdgeSub computes A - B.
	EdgeSub
	// EdgeMul computes A * B.
	EdgeMul
	// EdgeDiv computes A / B.
	EdgeDiv
)

// edgeOpNames uses the paper's spellings.
var edgeOpNames = [...]string{"null", "copy_lhs", "copy_rhs", "add", "sub", "mul", "div"}

// String returns the paper's name for the op.
func (op EdgeOp) String() string {
	if int(op) < len(edgeOpNames) {
		return edgeOpNames[op]
	}
	return fmt.Sprintf("EdgeOp(%d)", uint8(op))
}

// Valid reports whether op is a defined edge op.
func (op EdgeOp) Valid() bool { return int(op) < len(edgeOpNames) }

// IsBinary reports whether op reads both operands.
func (op EdgeOp) IsBinary() bool { return op >= EdgeAdd }

// Apply evaluates the op on scalar operands.
func (op EdgeOp) Apply(a, b float32) float32 {
	switch op {
	case CopyLHS:
		return a
	case CopyRHS, EdgeNull:
		return b
	case EdgeAdd:
		return a + b
	case EdgeSub:
		return a - b
	case EdgeMul:
		return a * b
	case EdgeDiv:
		return a / b
	default:
		// invariant: ops reaching Apply passed OpInfo.Validate, which rejects
		// undefined edge ops; an unknown value here is memory corruption or a
		// missed case in this switch.
		panic(fmt.Sprintf("ops: invalid edge op %d", op))
	}
}

// FLOPs returns the floating-point operations one application costs; copies
// cost zero arithmetic (they are pure data movement).
func (op EdgeOp) FLOPs() int {
	if op.IsBinary() {
		return 1
	}
	return 0
}

// ParseEdgeOp resolves a paper-spelled name ("mul", "copy_lhs", ...).
func ParseEdgeOp(name string) (EdgeOp, error) {
	for i, n := range edgeOpNames {
		if n == name {
			return EdgeOp(i), nil
		}
	}
	return 0, fmt.Errorf("ops: unknown edge op %q", name)
}

// GatherOp is the edge-to-vertex reduction ρ (the paper's gather_op_list).
// GatherCopyLHS/GatherCopyRHS mark operators whose output is per-edge (no
// reduction), i.e. message-creation operators.
type GatherOp uint8

const (
	// GatherNull marks a skipped gather stage.
	GatherNull GatherOp = iota
	// GatherCopyLHS writes the current accumulator (used when output is per-edge).
	GatherCopyLHS
	// GatherCopyRHS writes the incoming edge value without reduction.
	GatherCopyRHS
	// GatherSum accumulates by addition.
	GatherSum
	// GatherMax keeps the element-wise maximum.
	GatherMax
	// GatherMin keeps the element-wise minimum.
	GatherMin
	// GatherMean accumulates by addition then divides by in-degree.
	GatherMean
)

var gatherOpNames = [...]string{"null", "copy_lhs", "copy_rhs", "sum", "max", "min", "mean"}

// String returns the paper's name for the op.
func (op GatherOp) String() string {
	if int(op) < len(gatherOpNames) {
		return gatherOpNames[op]
	}
	return fmt.Sprintf("GatherOp(%d)", uint8(op))
}

// Valid reports whether op is a defined gather op.
func (op GatherOp) Valid() bool { return int(op) < len(gatherOpNames) }

// IsReduction reports whether op folds many edge values into one vertex value.
func (op GatherOp) IsReduction() bool { return op >= GatherSum }

// Identity returns the reduction identity element (0 for sum/mean, -inf for
// max, +inf for min). Panics for non-reductions.
func (op GatherOp) Identity() float32 {
	switch op {
	case GatherSum, GatherMean:
		return 0
	case GatherMax:
		return float32(math.Inf(-1))
	case GatherMin:
		return float32(math.Inf(1))
	default:
		// invariant: executors call Identity only after IsReduction()
		// returned true, and every reduction op has a case above.
		panic(fmt.Sprintf("ops: %s has no identity", op))
	}
}

// Combine folds the incoming edge value v into accumulator acc.
func (op GatherOp) Combine(acc, v float32) float32 {
	switch op {
	case GatherSum, GatherMean:
		return acc + v
	case GatherMax:
		if v > acc {
			return v
		}
		return acc
	case GatherMin:
		if v < acc {
			return v
		}
		return acc
	case GatherCopyRHS, GatherNull:
		return v
	case GatherCopyLHS:
		return acc
	default:
		// invariant: ops reaching Combine passed OpInfo.Validate, which
		// rejects undefined gather ops.
		panic(fmt.Sprintf("ops: invalid gather op %d", op))
	}
}

// FLOPs returns the arithmetic cost of one Combine.
func (op GatherOp) FLOPs() int {
	if op.IsReduction() {
		return 1
	}
	return 0
}

// ParseGatherOp resolves a paper-spelled name ("sum", "max", ...).
func ParseGatherOp(name string) (GatherOp, error) {
	for i, n := range gatherOpNames {
		if n == name {
			return GatherOp(i), nil
		}
	}
	return 0, fmt.Errorf("ops: unknown gather op %q", name)
}

// Class is the paper's three-way classification of graph operators (Table 2).
type Class uint8

const (
	// MessageCreation produces an edge tensor from vertex/edge tensors.
	MessageCreation Class = iota
	// MessageAggregation reduces an edge tensor into a vertex tensor.
	MessageAggregation
	// FusedAggregation fuses creation into aggregation: vertex/edge inputs,
	// vertex output, no materialised messages.
	FusedAggregation
)

// String names the class as in Table 2.
func (c Class) String() string {
	switch c {
	case MessageCreation:
		return "Message Creation"
	case MessageAggregation:
		return "Message Aggregation"
	case FusedAggregation:
		return "Fused Aggregation"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// OpInfo is the operator descriptor of the uGrapher API (paper Fig. 9):
// edge_op, gather_op, and the graph-semantic kinds of operands A, B and
// output C. It fully determines computation and addressing; no kernel code
// is attached.
type OpInfo struct {
	Name     string // optional human label, e.g. "GAT_L1_MsgC"
	EdgeOp   EdgeOp
	GatherOp GatherOp
	AKind    tensor.Kind
	BKind    tensor.Kind
	CKind    tensor.Kind
}

// Class derives the Table 2 classification from the operand kinds.
func (oi OpInfo) Class() (Class, error) {
	if err := oi.Validate(); err != nil {
		return 0, err
	}
	if oi.CKind == tensor.EdgeK {
		return MessageCreation, nil
	}
	// C is a vertex tensor: aggregation. Fused iff any input is a vertex tensor.
	if oi.AKind.IsVertex() || oi.BKind.IsVertex() {
		return FusedAggregation, nil
	}
	return MessageAggregation, nil
}

// Validate checks that the descriptor is one of the legal combinations of
// Table 4. The rules:
//   - C must be Edge (message creation) or Dst_V (aggregation); never Src_V/Null.
//   - Binary edge ops need both operands; copies need exactly the copied one.
//   - Aggregations need a reducing gather op; message creation must not reduce.
func (oi OpInfo) Validate() error {
	if !oi.EdgeOp.Valid() {
		return fmt.Errorf("ops: invalid edge op %d", oi.EdgeOp)
	}
	if !oi.GatherOp.Valid() {
		return fmt.Errorf("ops: invalid gather op %d", oi.GatherOp)
	}
	switch oi.CKind {
	case tensor.EdgeK:
		if oi.GatherOp.IsReduction() {
			return fmt.Errorf("ops: message creation cannot use reducing gather %s", oi.GatherOp)
		}
	case tensor.DstV:
		if !oi.GatherOp.IsReduction() {
			return fmt.Errorf("ops: vertex output requires a reducing gather, got %s", oi.GatherOp)
		}
	default:
		return fmt.Errorf("ops: output kind must be Edge or Dst_V, got %s", oi.CKind)
	}
	switch oi.EdgeOp {
	case CopyLHS:
		if oi.AKind == tensor.Null {
			return fmt.Errorf("ops: copy_lhs requires operand A")
		}
		if oi.BKind != tensor.Null {
			return fmt.Errorf("ops: copy_lhs must leave operand B null")
		}
	case CopyRHS, EdgeNull:
		if oi.BKind == tensor.Null {
			return fmt.Errorf("ops: %s requires operand B", oi.EdgeOp)
		}
		if oi.AKind != tensor.Null {
			return fmt.Errorf("ops: %s must leave operand A null", oi.EdgeOp)
		}
	default: // binary
		if oi.AKind == tensor.Null || oi.BKind == tensor.Null {
			return fmt.Errorf("ops: binary edge op %s requires both operands", oi.EdgeOp)
		}
	}
	return nil
}

// String renders the descriptor compactly, e.g.
// "mul(Src_V,Edge)->sum->Dst_V".
func (oi OpInfo) String() string {
	label := oi.Name
	if label != "" {
		label += ": "
	}
	return fmt.Sprintf("%s%s(%s,%s)->%s->%s",
		label, oi.EdgeOp, oi.AKind, oi.BKind, oi.GatherOp, oi.CKind)
}
