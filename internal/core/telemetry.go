package core

import (
	"context"
	"errors"

	"repro/internal/graph"
	"repro/internal/telemetry"
)

// Telemetry glue for the execution backends. Each backend creates one
// *telemetry.KernelSite per lowered kernel (compile-time cost only), so the
// per-Run recording path touches no maps and allocates nothing; with
// telemetry disabled a Run pays one atomic load at Begin and one at End.

// kernelSite builds the instrumentation handle one lowered kernel records
// through.
func kernelSite(p *Plan, backendName string, g *graph.Graph) *telemetry.KernelSite {
	//lint:allow hook-discipline -- site registration happens once at Lower time, off the Run hot path
	return telemetry.NewKernelSite(
		opLabel(p), p.Schedule.Strategy.Code(), p.Schedule.String(), backendName,
		int64(g.NumVertices()), int64(g.NumEdges()))
}

// outcomeOf maps the execution layer's error taxonomy (DESIGN.md §7) onto
// telemetry outcomes.
func outcomeOf(err error) (telemetry.Outcome, string) {
	if err == nil {
		return telemetry.OutcomeOK, ""
	}
	var ke *KernelError
	if errors.As(err, &ke) {
		return telemetry.OutcomeKernelError, err.Error()
	}
	var ne *NumericError
	if errors.As(err, &ne) {
		return telemetry.OutcomeNumericError, err.Error()
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return telemetry.OutcomeCancelled, err.Error()
	}
	return telemetry.OutcomeError, err.Error()
}

// lowerSpan opens the compile-time lowering span for one backend. The
// Enabled guard keeps the label concatenation off the disabled path.
func lowerSpan(backendName string, p *Plan) telemetry.Span {
	if !telemetry.Enabled() {
		return telemetry.Span{}
	}
	return telemetry.StartSpan(backendName, "lower", "lower "+opLabel(p))
}

// endLower closes a lowering span with the Lower result.
func endLower(sp telemetry.Span, err error) {
	if err != nil {
		sp.EndErr(err.Error())
		return
	}
	sp.End()
}

// Workers reports b's worker-pool size: the pool size for backends that
// expose one (parallel, resilient-over-parallel), 1 for sequential backends.
func Workers(b ExecBackend) int {
	if w, ok := b.(interface{ Workers() int }); ok {
		return w.Workers()
	}
	return 1
}
