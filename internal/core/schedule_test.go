package core

import (
	"testing"
)

func TestStrategyMeta(t *testing.T) {
	if ThreadVertex.Code() != "TV" || WarpEdge.Code() != "WE" {
		t.Error("codes wrong")
	}
	if ThreadEdge.String() != "thread-edge" || WarpVertex.String() != "warp-vertex" {
		t.Error("names wrong")
	}
	if !ThreadVertex.VertexParallel() || ThreadEdge.VertexParallel() {
		t.Error("VertexParallel wrong")
	}
	if !WarpEdge.WarpMapped() || ThreadVertex.WarpMapped() {
		t.Error("WarpMapped wrong")
	}
	if Strategy(9).Code() != "S9" || Strategy(9).String() != "Strategy(9)" {
		t.Error("unknown strategy formatting")
	}
	if Strategy(9).Valid() {
		t.Error("Valid wrong")
	}
	if len(Strategies) != 4 {
		t.Error("Strategies must list the four basics")
	}
}

func TestParseStrategy(t *testing.T) {
	for _, s := range Strategies {
		byCode, err := ParseStrategy(s.Code())
		if err != nil || byCode != s {
			t.Errorf("ParseStrategy(%q) = %v, %v", s.Code(), byCode, err)
		}
		byName, err := ParseStrategy(s.String())
		if err != nil || byName != s {
			t.Errorf("ParseStrategy(%q) = %v, %v", s.String(), byName, err)
		}
	}
	if _, err := ParseStrategy("warp-block"); err == nil {
		t.Error("expected error")
	}
}

func TestScheduleStringRoundTrip(t *testing.T) {
	cases := []Schedule{
		{ThreadEdge, 1, 1},
		{WarpEdge, 8, 4},
		{ThreadVertex, 64, 32},
		{WarpVertex, 2, 16},
	}
	for _, s := range cases {
		got, err := ParseSchedule(s.String())
		if err != nil {
			t.Errorf("ParseSchedule(%q): %v", s.String(), err)
			continue
		}
		if got != s {
			t.Errorf("round trip %q -> %+v", s.String(), got)
		}
	}
	if (Schedule{WarpEdge, 8, 1}).String() != "WE_G8_T1" {
		t.Error("Table 9 notation wrong")
	}
}

func TestParseScheduleErrors(t *testing.T) {
	bad := []string{"", "WE", "WE_8_1", "XX_G1_T1", "WE_Gx_T1", "WE_G1_Tx", "WE_G0_T1", "WE_G1_T0"}
	for _, text := range bad {
		if _, err := ParseSchedule(text); err == nil {
			t.Errorf("ParseSchedule(%q) should fail", text)
		}
	}
}

func TestScheduleValidate(t *testing.T) {
	if err := (Schedule{ThreadEdge, 1, 1}).Validate(); err != nil {
		t.Error(err)
	}
	if err := (Schedule{Strategy(9), 1, 1}).Validate(); err == nil {
		t.Error("invalid strategy should fail")
	}
	if err := (Schedule{ThreadEdge, 0, 1}).Validate(); err == nil {
		t.Error("zero group should fail")
	}
	if err := (Schedule{ThreadEdge, 1, -1}).Validate(); err == nil {
		t.Error("negative tile should fail")
	}
	if err := DefaultSchedule.Validate(); err != nil {
		t.Error("default schedule must validate")
	}
}
