package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// Property-based tests over the whole (operator x schedule x graph) space.

// randomRegistryOp picks a registry operator, avoiding div by edge values
// near zero (we clamp operand magnitudes instead).
func randomRegistryOp(rng *rand.Rand) ops.OpInfo {
	reg := ops.Registry()
	return reg[rng.Intn(len(reg))].Info
}

func randomSchedule(rng *rand.Rand) Schedule {
	groups := []int{1, 2, 3, 4, 8, 16, 32, 64}
	tiles := []int{1, 2, 3, 4, 8, 16, 32, 64}
	return Schedule{
		Strategy: Strategies[rng.Intn(len(Strategies))],
		Group:    groups[rng.Intn(len(groups))],
		Tile:     tiles[rng.Intn(len(tiles))],
	}
}

// positiveOperands builds operands whose values are bounded away from zero,
// so div operators stay numerically tame for AllClose comparisons.
func positiveOperands(g interface {
	NumVertices() int
	NumEdges() int
}, op ops.OpInfo, feat int, rng *rand.Rand) Operands {
	alloc := func(kind tensor.Kind) tensor.Typed {
		if kind == tensor.Null {
			return tensor.NullTensor
		}
		rows := g.NumVertices()
		if kind == tensor.EdgeK {
			rows = g.NumEdges()
		}
		d := tensor.NewDense(rows, feat)
		for i := range d.Data {
			d.Data[i] = 0.5 + rng.Float32() // in [0.5, 1.5)
		}
		return tensor.Typed{Kind: kind, T: d}
	}
	o := Operands{A: alloc(op.AKind), B: alloc(op.BKind)}
	outRows := g.NumVertices()
	if op.CKind == tensor.EdgeK {
		outRows = g.NumEdges()
	}
	o.C = tensor.Typed{Kind: op.CKind, T: tensor.NewDense(outRows, feat)}
	return o
}

// TestQuickScheduleEquivalence is the wide version of the central property:
// any registry operator under any schedule matches the reference loop.
func TestQuickScheduleEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(100)
		m := rng.Intn(600)
		g := testGraphQuick(rng, n, m)
		op := randomRegistryOp(rng)
		sched := randomSchedule(rng)
		feat := []int{1, 3, 8, 17, 32, 50}[rng.Intn(6)]

		ref := positiveOperands(g, op, feat, rand.New(rand.NewSource(seed+1)))
		if err := Reference(g, op, ref); err != nil {
			t.Logf("reference failed: %v", err)
			return false
		}
		got := positiveOperands(g, op, feat, rand.New(rand.NewSource(seed+1)))
		p, err := Compile(op, sched)
		if err != nil {
			return false
		}
		if err := p.Execute(g, got); err != nil {
			t.Logf("execute failed: %v", err)
			return false
		}
		if !got.C.T.AllClose(ref.C.T, 1e-3, 1e-3) {
			t.Logf("mismatch: op=%s sched=%v feat=%d n=%d m=%d maxdiff=%v",
				op, sched, feat, n, m, got.C.T.MaxDiff(ref.C.T))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelBackendFullRegistry is the exhaustive backend-equivalence
// property: for EVERY (strategy x operator) pair in the reconstructed
// registry, the parallel host backend's output matches the reference
// interpreter within 1e-4. Operands are bounded away from zero so div
// operators stay tame; the worker pool is forced above one worker and the
// graph is sized past the sequential cutoff so the concurrent paths run.
func TestParallelBackendFullRegistry(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := testGraphQuick(rng, 250, 2600)
	par := NewParallelBackend(4)
	feat := 13 // 2600 edges x 13 feats clears the small-work cutoff

	for _, entry := range ops.Registry() {
		op := entry.Info
		ref := positiveOperands(g, op, feat, rand.New(rand.NewSource(101)))
		if err := Reference(g, op, ref); err != nil {
			t.Fatalf("%s: reference: %v", entry.DGLName, err)
		}
		for _, strat := range Strategies {
			got := positiveOperands(g, op, feat, rand.New(rand.NewSource(101)))
			p, err := Compile(op, Schedule{Strategy: strat, Group: 1, Tile: 1})
			if err != nil {
				t.Fatalf("%s/%s: compile: %v", entry.DGLName, strat, err)
			}
			k, err := par.Lower(p, g, got)
			if err != nil {
				t.Fatalf("%s/%s: lower: %v", entry.DGLName, strat, err)
			}
			if err := k.Run(); err != nil {
				t.Fatalf("%s/%s: run: %v", entry.DGLName, strat, err)
			}
			if !got.C.T.AllClose(ref.C.T, 1e-4, 1e-4) {
				t.Errorf("%s/%s: parallel differs from reference (maxdiff %v)",
					entry.DGLName, strat, got.C.T.MaxDiff(ref.C.T))
			}
		}
	}
}

func testGraphQuick(rng *rand.Rand, n, m int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// TestQuickSimulationInvariants: metrics stay sane for arbitrary
// (operator, schedule, graph) combinations.
func TestQuickSimulationInvariants(t *testing.T) {
	dev := gpu.V100()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(300)
		m := rng.Intn(2000)
		g := testGraphQuick(rng, n, m)
		op := randomRegistryOp(rng)
		sched := randomSchedule(rng)
		feat := 1 + rng.Intn(96)
		fa, aCols, bCols := OperandWidths(op, feat, rng.Intn(2) == 0)
		metrics, err := Estimate(g, op, fa, aCols, bCols, sched, dev, gpu.WithMaxSampledBlocks(16))
		if err != nil {
			return false
		}
		ok := metrics.Cycles >= dev.LaunchOverheadCycles &&
			metrics.Occupancy >= 0 && metrics.Occupancy <= 1 &&
			metrics.SMEfficiency >= 0 && metrics.SMEfficiency <= 1 &&
			metrics.L1HitRate >= 0 && metrics.L1HitRate <= 1 &&
			metrics.L2HitRate >= 0 && metrics.L2HitRate <= 1 &&
			metrics.Transactions >= 0 && metrics.Insts >= 0
		if !ok {
			t.Logf("bad metrics: %+v (op=%s sched=%v)", metrics, op, sched)
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAtomicAnalysisSoundness: whenever the plan decides atomics are
// unnecessary, different schedules of the same vertex-output operator still
// agree — i.e. there really are no races that a lock-free execution would
// lose. (Functional execution is sequential, so the real assertion is that
// NeedsAtomic is true exactly for edge-parallel vertex outputs.)
func TestQuickAtomicAnalysisSoundness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		op := randomRegistryOp(rng)
		sched := randomSchedule(rng)
		p, err := Compile(op, sched)
		if err != nil {
			return false
		}
		wantAtomic := op.CKind == tensor.DstV && !sched.Strategy.VertexParallel()
		return p.NeedsAtomic == wantAtomic
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestTileGeometry: tileChunks/tileElems partition the feature dimension
// exactly across tiles, for all widths and tile counts.
func TestTileGeometry(t *testing.T) {
	dev := gpu.V100()
	for _, feat := range []int{1, 5, 31, 32, 33, 64, 100, 127, 128, 1000} {
		for _, tile := range []int{1, 2, 3, 4, 7, 8, 16, 64} {
			p := MustCompile(ops.AggrSum, Schedule{Strategy: WarpVertex, Group: 1, Tile: tile})
			m := newModel(p, smallTestGraph(), feat, feat, 0, dev)
			sumChunks, sumElems := 0, 0
			for tl := 0; tl < tile; tl++ {
				sumChunks += m.tileChunks(tl)
				sumElems += m.tileElems(tl)
			}
			if sumChunks != m.featChunks {
				t.Fatalf("feat=%d tile=%d: chunks sum %d != %d", feat, tile, sumChunks, m.featChunks)
			}
			if sumElems != feat {
				t.Fatalf("feat=%d tile=%d: elems sum %d != %d", feat, tile, sumElems, feat)
			}
		}
	}
}

// TestUnitSplitCoversItems: across all units of one tile, every item is
// covered exactly once.
func TestUnitSplitCoversItems(t *testing.T) {
	dev := gpu.V100()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(500)
		g := testGraphQuick(rng, n, rng.Intn(1000))
		sched := randomSchedule(rng)
		p := MustCompile(ops.AggrSum, sched)
		m := newModel(p, g, 16, 16, 0, dev)

		covered := make([]int, m.items)
		for unit := 0; unit < m.units; unit++ {
			tile, first, count := m.unitSplit(unit)
			if tile != 0 {
				continue // count only tile 0's coverage
			}
			for i := first; i < first+count; i++ {
				covered[i]++
			}
		}
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("trial %d (%v): item %d covered %d times", trial, sched, i, c)
			}
		}
	}
}

// TestFootprintMatchesOperands: the footprint equals the sum of operand and
// index array bytes for a known configuration.
func TestFootprintMatchesOperands(t *testing.T) {
	g := smallTestGraph() // 10 vertices, 20 edges
	dev := gpu.V100()
	v, e := int64(g.NumVertices()), int64(g.NumEdges())

	// Fused aggregation, vertex-parallel: A (V x 8), C (V x 8), inPtr, inSrc.
	p := MustCompile(ops.AggrSum, Schedule{Strategy: WarpVertex, Group: 1, Tile: 1})
	m := newModel(p, g, 8, 8, 0, dev)
	want := v*8*4 + v*8*4 + (v+1+e)*4
	if got := m.Footprint(); got != want {
		t.Errorf("WV footprint = %d, want %d", got, want)
	}

	// Edge-parallel weighted aggregation: A (V x 8), B (E x 1), C (V x 8),
	// edgeSrc+edgeDst.
	p2 := MustCompile(ops.WeightedAggrSum, Schedule{Strategy: WarpEdge, Group: 1, Tile: 1})
	m2 := newModel(p2, g, 8, 8, 1, dev)
	want2 := v*8*4 + e*1*4 + v*8*4 + 2*e*4
	if got := m2.Footprint(); got != want2 {
		t.Errorf("WE footprint = %d, want %d", got, want2)
	}

	// Message creation under vertex-parallel additionally reads inEdges.
	p3 := MustCompile(ops.CopyU, Schedule{Strategy: ThreadVertex, Group: 1, Tile: 1})
	m3 := newModel(p3, g, 8, 8, 0, dev)
	want3 := v*8*4 + e*8*4 + (v+1+e)*4 + e*4
	if got := m3.Footprint(); got != want3 {
		t.Errorf("TV msgc footprint = %d, want %d", got, want3)
	}
}

func smallTestGraph() *graph.Graph {
	rng := rand.New(rand.NewSource(99))
	return testGraphQuick(rng, 10, 20)
}

// TestLog2Ceil pins the helper.
func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 32: 5}
	for n, want := range cases {
		if got := log2ceil(n); got != want {
			t.Errorf("log2ceil(%d) = %d, want %d", n, got, want)
		}
	}
}
