package core

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/faultinject"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// Plan is the compiled form of (operator, schedule): the analogue of the
// CUDA kernel uGrapher's code generator emits (paper §5.2). Compilation runs
// the two generator passes — innermost-statement fusion and atomic-need
// analysis — whose results are recorded here and honoured by both the
// functional executor and the performance model.
type Plan struct {
	Op       ops.OpInfo
	Schedule Schedule

	// Fused is the result of generator pass 1: when edge_op or gather_op is
	// a copy/NULL, the two innermost statements collapse into one, cutting
	// register pressure and read/write overhead.
	Fused bool
	// NeedsAtomic is the result of generator pass 2: true when different
	// threads may race on the same output element, i.e. the output is a
	// destination-vertex tensor under an edge-parallel strategy.
	NeedsAtomic bool
	// EdgeStageFLOPs/GatherStageFLOPs are the arithmetic per element per stage.
	EdgeStageFLOPs   int
	GatherStageFLOPs int
	// InstsPerElement is the issued-instruction estimate for one
	// (edge, feature-element) step, after fusion.
	InstsPerElement float64
}

// Compile validates the operator descriptor against the schedule and runs
// the code-generation analyses. It is cheap; plans may be compiled per call
// or cached by the caller.
func Compile(op ops.OpInfo, sched Schedule) (*Plan, error) {
	if err := op.Validate(); err != nil {
		return nil, err
	}
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	p := &Plan{Op: op, Schedule: sched}

	// Pass 1: fusion. A copy edge_op (or copy gather_op) contributes no
	// arithmetic; the generator merges loads directly into the remaining
	// stage's statement.
	p.Fused = !op.EdgeOp.IsBinary() || !op.GatherOp.IsReduction()
	p.EdgeStageFLOPs = op.EdgeOp.FLOPs()
	p.GatherStageFLOPs = op.GatherOp.FLOPs()

	// Pass 2: atomic analysis. Vertex-parallel strategies give each output
	// row a single owner; edge-parallel strategies race on shared
	// destinations whenever the gather reduces into a vertex tensor.
	p.NeedsAtomic = op.CKind == tensor.DstV && !sched.Strategy.VertexParallel()

	// Mandatory static verification: the analysis layer re-derives the
	// Table-4 typing and the atomic-need bit independently and rejects any
	// disagreement. The fault-injection point corrupts only the verified
	// view (a local copy of the bit), never the plan itself, so tests can
	// prove the write-conflict rule fires without shipping a broken plan.
	needs := p.NeedsAtomic
	if faultinject.Fire(faultinject.CorruptAtomicFlag) {
		needs = !needs
	}
	if err := analysis.VerifyPlan(analysis.PlanFacts{
		Op:             op,
		Schedule:       sched.Strategy.Code(),
		VertexParallel: sched.Strategy.VertexParallel(),
		NeedsAtomic:    needs,
	}); err != nil {
		return nil, err
	}

	// Instruction estimate per innermost element step: operand address math
	// and loads plus the stage arithmetic; fusion saves the intermediate
	// register traffic.
	insts := 2.0 // loop bookkeeping + output address
	if op.AKind != tensor.Null {
		insts += 2 // address + load
	}
	if op.BKind != tensor.Null {
		insts += 2
	}
	insts += float64(p.EdgeStageFLOPs + p.GatherStageFLOPs)
	if !p.Fused {
		insts += 2 // materialise edge_tmp and re-consume it
	}
	if p.NeedsAtomic {
		insts += 2 // atomic RMW sequence overhead
	} else if op.CKind == tensor.DstV && sched.Strategy.VertexParallel() {
		insts += 0.1 // register accumulation; store amortised per chunk
	} else {
		insts += 1 // plain store
	}
	p.InstsPerElement = insts
	return p, nil
}

// MustCompile is Compile for statically-known-good inputs; it panics on
// error. Only for op/schedule literals in tests and examples — code paths
// fed by user input use Compile and handle the error.
func MustCompile(op ops.OpInfo, sched Schedule) *Plan {
	p, err := Compile(op, sched)
	if err != nil {
		// invariant: callers pass literal descriptors known valid at review
		// time; a failure here is a bug in the literal, not a data condition.
		panic(err)
	}
	return p
}

// Operands carries the three typed embedding tensors of the unified
// abstraction (paper Fig. 5). C is the output; its tensor is written by Run.
type Operands struct {
	A, B, C tensor.Typed
}

// featureWidth returns the operator's feature dimension F (the output width)
// and checks operand widths are either F or 1 (a width-1 operand broadcasts,
// e.g. scalar edge weights in GCN's u_mul_e).
func (o Operands) featureWidth() (int, error) {
	if o.C.T == nil {
		return 0, fmt.Errorf("core: output tensor C is required")
	}
	f := o.C.T.Cols
	for _, operand := range []tensor.Typed{o.A, o.B} {
		if operand.Kind == tensor.Null || operand.T == nil {
			continue
		}
		if operand.T.Cols != f && operand.T.Cols != 1 {
			return 0, fmt.Errorf("core: operand width %d incompatible with output width %d",
				operand.T.Cols, f)
		}
	}
	return f, nil
}

// validateOperands checks kinds and shapes against the op and graph sizes.
func (p *Plan) validateOperands(numVertices, numEdges int, o Operands) error {
	if o.A.Kind != p.Op.AKind {
		return fmt.Errorf("core: operand A kind %s != op's %s", o.A.Kind, p.Op.AKind)
	}
	if o.B.Kind != p.Op.BKind {
		return fmt.Errorf("core: operand B kind %s != op's %s", o.B.Kind, p.Op.BKind)
	}
	if o.C.Kind != p.Op.CKind {
		return fmt.Errorf("core: operand C kind %s != op's %s", o.C.Kind, p.Op.CKind)
	}
	f, err := o.featureWidth()
	if err != nil {
		return err
	}
	if err := o.A.Validate(numVertices, numEdges, 0); err != nil {
		return err
	}
	if err := o.B.Validate(numVertices, numEdges, 0); err != nil {
		return err
	}
	if err := o.C.Validate(numVertices, numEdges, f); err != nil {
		return err
	}
	return nil
}
