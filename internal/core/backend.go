package core

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"

	"repro/internal/graph"
	"repro/internal/shard"
)

// This file defines the execution-backend abstraction: the split between
// *lowering* a compiled Plan onto an execution substrate and *running* the
// lowered kernel. The Plan layer (core.go) is the paper's code generator —
// operator semantics plus schedule analyses — while an ExecBackend is one
// way of actually carrying the computation out: the sequential reference
// interpreter, the parallel host backend, or the GPU cycle simulator.
// Decoupling the two mirrors the paper's own thesis (computation vs
// schedule, §3-§5) one level down: one abstraction, many substrates.

// CompiledKernel is a Plan lowered for one backend, graph and operand
// binding. Lowering validates the operands once; Run may then be invoked
// repeatedly (e.g. per training epoch) without re-validation. Run writes
// the output into the C operand bound at lowering time. A CompiledKernel
// is not safe for concurrent Run calls.
type CompiledKernel interface {
	// Plan returns the plan this kernel was lowered from.
	Plan() *Plan
	// Run executes the kernel once, writing into the bound output tensor.
	// A panic inside the kernel is recovered into a *KernelError; with the
	// CheckNumerics guard on, a NaN/Inf output fails with a *NumericError.
	Run() error
	// RunCtx is Run with cancellation: the parallel backend's workers check
	// ctx at chunk-claim granularity and return context.Canceled /
	// context.DeadlineExceeded promptly; sequential backends check at run
	// boundaries. After a cancelled run the output tensor holds partial
	// data, but the kernel remains reusable — every Run re-initialises its
	// output, so the next call produces a complete result.
	RunCtx(ctx context.Context) error
	// Counters reports cumulative execution statistics across Run calls.
	Counters() Counters
}

// Counters are the execution statistics a backend accumulates per kernel.
type Counters struct {
	// Runs is how many times Run completed.
	Runs int64
	// Edges is the total number of edges processed across runs.
	Edges int64
	// Shards is the total number of work shards executed (1 per run for
	// sequential backends, one per worker chunk for the parallel backend).
	Shards int64
	// Workers is the size of the worker pool (1 for sequential backends).
	Workers int
	// SimCycles is the simulated cycle count of the last run, for backends
	// that model cost (zero for pure host backends).
	SimCycles float64
}

// ExecBackend lowers plans into runnable kernels. Implementations:
// the sequential reference interpreter ("reference"), the multi-core host
// executor ("parallel"), and the GPU cycle simulator ("sim").
type ExecBackend interface {
	// Name identifies the backend ("reference", "parallel", "sim").
	Name() string
	// Lower specializes p for graph g and operand binding o, validating the
	// operands against the plan exactly once.
	Lower(p *Plan, g *graph.Graph, o Operands) (CompiledKernel, error)
}

// BackendNames lists the selectable backend names in presentation order.
var BackendNames = []string{"parallel", "resilient", "reference", "sim"}

// Backend resolves a backend by name. The empty string resolves to the
// default backend (see DefaultBackend).
func Backend(name string) (ExecBackend, error) {
	switch name {
	case "":
		return DefaultBackend(), nil
	case "reference":
		return ReferenceBackend(), nil
	case "parallel":
		return NewParallelBackend(0), nil
	case "resilient":
		return NewResilientBackend(nil, nil), nil
	case "sim":
		return NewSimBackend(nil), nil
	default:
		return nil, fmt.Errorf("core: unknown backend %q (valid backends: %s)",
			name, strings.Join(BackendNames, ", "))
	}
}

// ValidateEnvBackend checks the UGRAPHER_BACKEND environment variable
// without instantiating the default backend, so CLIs can fail fast at
// startup with the valid names instead of warning mid-run.
func ValidateEnvBackend() error {
	name := os.Getenv("UGRAPHER_BACKEND")
	if name == "" {
		return nil
	}
	if _, err := Backend(name); err != nil {
		return fmt.Errorf("UGRAPHER_BACKEND: %w", err)
	}
	return nil
}

var (
	defaultBackendMu sync.Mutex
	defaultBackendV  ExecBackend
)

// DefaultBackend returns the process-wide default compute backend: the
// parallel host backend, unless the UGRAPHER_BACKEND environment variable
// names another one or SetDefaultBackend overrode it.
func DefaultBackend() ExecBackend {
	defaultBackendMu.Lock()
	defer defaultBackendMu.Unlock()
	if defaultBackendV == nil {
		b, err := backendForDefault(os.Getenv("UGRAPHER_BACKEND"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "ugrapher: UGRAPHER_BACKEND: %v (using parallel)\n", err)
			b = NewParallelBackend(0)
		}
		defaultBackendV = b
	}
	return defaultBackendV
}

// backendForDefault is Backend without the empty-name recursion into
// DefaultBackend.
func backendForDefault(name string) (ExecBackend, error) {
	if name == "" {
		return NewParallelBackend(0), nil
	}
	return Backend(name)
}

// SetDefaultBackend overrides the process-wide default compute backend by
// name (CLI -backend flags funnel through this).
func SetDefaultBackend(name string) error {
	b, err := backendForDefault(name)
	if err != nil {
		return err
	}
	defaultBackendMu.Lock()
	defaultBackendV = b
	defaultBackendMu.Unlock()
	return nil
}

// Shard-count plumbing, mirroring the backend selection above: CLI -shards
// flags funnel through SetDefaultShards, UGRAPHER_SHARDS covers headless
// runs, and ValidateEnvShards lets CLIs fail fast at startup. 0 means auto
// (size shards from the cache budget, see shard.AutoShards); 1 disables
// sharding — today's single-CSR execution.

var (
	defaultShardsMu sync.Mutex
	defaultShardsV  = -1 // unresolved: fall through to UGRAPHER_SHARDS
)

// parseShards validates a shard-count string against [0, shard.MaxShards].
func parseShards(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 || n > shard.MaxShards {
		return 0, fmt.Errorf("core: invalid shard count %q (valid: 0 (auto) through %d; 1 = unsharded)",
			s, shard.MaxShards)
	}
	return n, nil
}

// ValidateEnvShards checks the UGRAPHER_SHARDS environment variable so CLIs
// can exit with the valid range at startup instead of warning mid-run.
func ValidateEnvShards() error {
	s := os.Getenv("UGRAPHER_SHARDS")
	if s == "" {
		return nil
	}
	if _, err := parseShards(s); err != nil {
		return fmt.Errorf("UGRAPHER_SHARDS: %w", err)
	}
	return nil
}

// SetDefaultShards overrides the process-wide default shard count and
// resets the cached default backend so the next DefaultBackend() call picks
// the new count up.
func SetDefaultShards(n int) error {
	if n < 0 || n > shard.MaxShards {
		return fmt.Errorf("core: invalid shard count %d (valid: 0 (auto) through %d; 1 = unsharded)",
			n, shard.MaxShards)
	}
	defaultShardsMu.Lock()
	defaultShardsV = n
	defaultShardsMu.Unlock()
	defaultBackendMu.Lock()
	defaultBackendV = nil
	defaultBackendMu.Unlock()
	return nil
}

// DefaultShards resolves the process-wide default shard count: the
// SetDefaultShards override, else UGRAPHER_SHARDS, else 1 (unsharded).
func DefaultShards() int {
	defaultShardsMu.Lock()
	defer defaultShardsMu.Unlock()
	if defaultShardsV >= 0 {
		return defaultShardsV
	}
	if s := os.Getenv("UGRAPHER_SHARDS"); s != "" {
		n, err := parseShards(s)
		if err == nil {
			return n
		}
		fmt.Fprintf(os.Stderr, "ugrapher: UGRAPHER_SHARDS: %v (using 1)\n", err)
	}
	return 1
}

// Worker-count plumbing. The worker pool size has always been settable via
// UGRAPHER_WORKERS; like UGRAPHER_BACKEND and UGRAPHER_SHARDS it is now
// validated at CLI startup (exit 2 with the valid range) instead of being
// silently ignored when malformed mid-run.

// MaxWorkers bounds the worker-pool size a single process may configure.
// Far above any host this runs on; it exists so a typo ("10000000") fails
// fast instead of spawning a pathological goroutine count.
const MaxWorkers = 4096

// parseWorkers validates a worker-count string against [1, MaxWorkers].
func parseWorkers(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 || n > MaxWorkers {
		return 0, fmt.Errorf("core: invalid worker count %q (valid: 1 through %d)", s, MaxWorkers)
	}
	return n, nil
}

// ValidateEnvWorkers checks the UGRAPHER_WORKERS environment variable so
// CLIs can exit with the valid range at startup instead of silently falling
// back to runtime.NumCPU() mid-run.
func ValidateEnvWorkers() error {
	s := os.Getenv("UGRAPHER_WORKERS")
	if s == "" {
		return nil
	}
	if _, err := parseWorkers(s); err != nil {
		return fmt.Errorf("UGRAPHER_WORKERS: %w", err)
	}
	return nil
}

// envWorkers resolves UGRAPHER_WORKERS: 0 when unset, the parsed count when
// valid, and 0 with a stderr warning when malformed (mirrors DefaultShards;
// CLIs that called ValidateEnvWorkers never reach the warning).
func envWorkers() int {
	s := os.Getenv("UGRAPHER_WORKERS")
	if s == "" {
		return 0
	}
	n, err := parseWorkers(s)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ugrapher: UGRAPHER_WORKERS: %v (using NumCPU)\n", err)
		return 0
	}
	return n
}

// ExecuteOn is the convenience path compile-once callers use: lower p onto
// backend b for (g, o) and run the kernel once.
func (p *Plan) ExecuteOn(b ExecBackend, g *graph.Graph, o Operands) error {
	return p.ExecuteOnCtx(context.Background(), b, g, o)
}

// ExecuteOnCtx is ExecuteOn with cancellation/deadline support.
func (p *Plan) ExecuteOnCtx(ctx context.Context, b ExecBackend, g *graph.Graph, o Operands) error {
	k, err := b.Lower(p, g, o)
	if err != nil {
		return err
	}
	return k.RunCtx(ctx)
}
