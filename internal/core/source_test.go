package core

import (
	"strings"
	"testing"

	"repro/internal/ops"
)

// TestGenerateSourceAllRegistryOps: every one of the 160 reconstructed
// operators generates kernel source under every strategy, the source names
// the operator, and atomic stores appear exactly when the plan demands them.
func TestGenerateSourceAllRegistryOps(t *testing.T) {
	for _, e := range ops.Registry() {
		for _, strat := range Strategies {
			p, err := Compile(e.Info, Schedule{Strategy: strat, Group: 2, Tile: 2})
			if err != nil {
				t.Fatalf("%s/%s: %v", e.DGLName, strat, err)
			}
			src := p.GenerateSource()
			if len(src) < 100 {
				t.Fatalf("%s/%s: suspiciously short source", e.DGLName, strat)
			}
			if !strings.Contains(src, "__global__") {
				t.Fatalf("%s/%s: missing kernel declaration", e.DGLName, strat)
			}
			hasAtomicStore := strings.Contains(src, "atomicAdd") ||
				strings.Contains(src, "atomicMax") || strings.Contains(src, "atomicMin")
			if hasAtomicStore != p.NeedsAtomic {
				t.Fatalf("%s/%s: atomic store presence %v != NeedsAtomic %v",
					e.DGLName, strat, hasAtomicStore, p.NeedsAtomic)
			}
			if strings.ContainsAny(sourceKernelName(src), ".- ") {
				t.Fatalf("%s/%s: kernel name not an identifier: %q",
					e.DGLName, strat, sourceKernelName(src))
			}
		}
	}
}

// sourceKernelName extracts the identifier after "__global__ void ".
func sourceKernelName(src string) string {
	const marker = "__global__ void "
	i := strings.Index(src, marker)
	if i < 0 {
		return ""
	}
	rest := src[i+len(marker):]
	j := strings.Index(rest, "(")
	if j < 0 {
		return rest
	}
	return rest[:j]
}

func TestGenerateSourceUnnamedOp(t *testing.T) {
	op := ops.OpInfo{
		EdgeOp: ops.CopyLHS, GatherOp: ops.GatherSum,
		AKind: 1, CKind: 2, // SrcV -> DstV
	}
	src := MustCompile(op, DefaultSchedule).GenerateSource()
	if !strings.Contains(src, "graph_op") {
		t.Error("unnamed operator should use the default kernel name")
	}
}

func TestInstsPerElementMonotonic(t *testing.T) {
	// More operands and heavier ops cost more instructions per element.
	light := MustCompile(ops.AggrSum, DefaultSchedule)           // copy + sum, 1 operand
	heavy := MustCompile(ops.WeightedAggrSum, DefaultSchedule)   // mul + sum, 2 operands
	msgc := MustCompile(ops.CopyU, DefaultSchedule)              // copy, plain store
	if heavy.InstsPerElement <= light.InstsPerElement {
		t.Errorf("binary op %v should cost more than copy %v",
			heavy.InstsPerElement, light.InstsPerElement)
	}
	if msgc.NeedsAtomic {
		t.Error("message creation never needs atomics")
	}
}
