package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/telemetry"
)

// The fallback ladder (DESIGN.md §7): a ResilientBackend wraps a fast
// primary backend (normally the parallel host executor) and, when a kernel
// fails with a *KernelError — a recovered panic, i.e. a backend bug rather
// than a property of the inputs — logs the failure and retries the same
// lowered plan on the sequential reference interpreter. The reference
// backend is the semantic oracle the primary is tested against, so the
// retried run produces the answer the primary should have. Only
// *KernelError triggers the ladder: validation errors, *NumericError and
// context cancellation would fail identically on any backend and pass
// through untouched.

// ResilientBackend wraps a primary ExecBackend with a per-kernel fallback
// onto a secondary (reference by default).
type ResilientBackend struct {
	primary   ExecBackend
	secondary ExecBackend
	logw      io.Writer
	fallbacks atomic.Int64
	// window counts fallbacks since the last Reset. Fallbacks stays
	// monotonic for the process lifetime; window supports per-interval rates
	// (a metrics scraper calls Reset each window and reports the delta).
	window atomic.Int64
}

// NewResilientBackend wraps primary (nil = the parallel host backend) with
// a fallback onto secondary (nil = the reference interpreter). Fallbacks
// are logged to stderr; SetLogger redirects or silences them.
func NewResilientBackend(primary, secondary ExecBackend) *ResilientBackend {
	if primary == nil {
		primary = NewParallelBackend(0)
	}
	if secondary == nil {
		secondary = ReferenceBackend()
	}
	return &ResilientBackend{primary: primary, secondary: secondary, logw: os.Stderr}
}

// Name implements ExecBackend.
func (b *ResilientBackend) Name() string { return "resilient" }

// SetLogger redirects fallback logging (nil silences it).
func (b *ResilientBackend) SetLogger(w io.Writer) {
	if w == nil {
		w = io.Discard
	}
	b.logw = w
}

// Fallbacks reports how many times the ladder fell back to the secondary
// backend (lowering failures and run failures both count). The counter is
// monotonic for the backend's lifetime; use Snapshot/Reset for windowed
// rates.
func (b *ResilientBackend) Fallbacks() int64 { return b.fallbacks.Load() }

// Snapshot reports the fallbacks recorded since the last Reset without
// disturbing the window. Together with Reset it supports per-window fallback
// rates (e.g. a serving layer's per-scrape gauge) on top of the monotonic
// Fallbacks counter.
func (b *ResilientBackend) Snapshot() int64 { return b.window.Load() }

// Reset returns the fallbacks recorded since the previous Reset and zeroes
// the window. Fallbacks() is unaffected.
func (b *ResilientBackend) Reset() int64 { return b.window.Swap(0) }

// Workers reports the primary backend's worker-pool size (1 when the
// primary runs sequentially).
func (b *ResilientBackend) Workers() int { return Workers(b.primary) }

func (b *ResilientBackend) logf(format string, args ...any) {
	fmt.Fprintf(b.logw, "ugrapher: resilient: "+format+"\n", args...)
}

// countFallback records one ladder activation in the backend counter and in
// telemetry (ugrapher_fallbacks_total plus an instant event on the
// "resilient" track), and emits a one-line warning the first time the ladder
// fires — the signal that the fast path is misbehaving.
func (b *ResilientBackend) countFallback(op string) {
	//lint:allow hook-discipline -- fallbacks must be counted even with telemetry disabled; this is a cold error path
	telemetry.RecordFallback(op, b.primary.Name(), b.secondary.Name())
	b.window.Add(1)
	if b.fallbacks.Add(1) == 1 {
		b.logf("warning: first fallback from %s to %s — the primary backend is failing kernels; rerun with -trace/-metrics for details",
			b.primary.Name(), b.secondary.Name())
	}
}

// Lower implements ExecBackend. If the primary cannot lower the plan at
// all, the kernel is lowered on the secondary instead (counted as a
// fallback); otherwise the returned kernel runs on the primary and ladders
// down per Run on *KernelError.
func (b *ResilientBackend) Lower(p *Plan, g *graph.Graph, o Operands) (CompiledKernel, error) {
	pk, err := b.primary.Lower(p, g, o)
	if err != nil {
		b.countFallback(opLabel(p))
		b.logf("%s backend failed to lower %s: %v; lowering on %s",
			b.primary.Name(), opLabel(p), err, b.secondary.Name())
		sk, serr := b.secondary.Lower(p, g, o)
		if serr != nil {
			return nil, serr
		}
		return &resilientKernel{b: b, p: p, g: g, o: o, primary: sk, primaryIsFallback: true}, nil
	}
	return &resilientKernel{b: b, p: p, g: g, o: o, primary: pk}, nil
}

type resilientKernel struct {
	b       *ResilientBackend
	p       *Plan
	g       *graph.Graph
	o       Operands
	primary CompiledKernel
	// primaryIsFallback marks a kernel whose "primary" is already the
	// secondary backend (the primary backend could not even lower the plan),
	// so there is no further rung to fall to.
	primaryIsFallback bool
	// fallback is the lazily lowered secondary kernel, cached across runs.
	fallback CompiledKernel
}

// Plan implements CompiledKernel.
func (k *resilientKernel) Plan() *Plan { return k.primary.Plan() }

// Counters implements CompiledKernel: the primary kernel's counters (the
// fallback kernel's runs are folded into the backend-level Fallbacks
// counter instead).
func (k *resilientKernel) Counters() Counters { return k.primary.Counters() }

// Run implements CompiledKernel.
func (k *resilientKernel) Run() error { return k.RunCtx(context.Background()) }

// RunCtx implements CompiledKernel: run the primary; on a *KernelError
// (and only then — see the package comment for why other errors pass
// through), log, count, and rerun the same plan/operands on the secondary.
// The primary kernel is kept: a panic is assumed transient until proven
// otherwise, so the next Run tries the fast path again.
func (k *resilientKernel) RunCtx(ctx context.Context) error {
	err := k.primary.RunCtx(ctx)
	var ke *KernelError
	if err == nil || k.primaryIsFallback || !errors.As(err, &ke) {
		return err
	}
	k.b.countFallback(ke.Op)
	k.b.logf("kernel %s [%s] failed on %s: %v; retrying on %s",
		ke.Op, ke.Strategy, ke.Backend, ke.Err, k.b.secondary.Name())
	if k.fallback == nil {
		fk, lerr := k.b.secondary.Lower(k.p, k.g, k.o)
		if lerr != nil {
			return fmt.Errorf("resilient fallback lowering failed: %w (after %w)", lerr, err)
		}
		k.fallback = fk
	}
	return k.fallback.RunCtx(ctx)
}
