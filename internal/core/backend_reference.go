package core

import (
	"context"

	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// The reference backend: the canonical sequential interpreter of exec.go,
// lowered behind the ExecBackend interface. It is the semantic oracle every
// other backend is tested against; nothing about it is tuned for speed.

type refBackend struct{}

var refBackendInstance = refBackend{}

// ReferenceBackend returns the sequential reference interpreter.
func ReferenceBackend() ExecBackend { return refBackendInstance }

// Name implements ExecBackend.
func (refBackend) Name() string { return "reference" }

// Lower implements ExecBackend: validation happens here, once, so repeated
// Run calls skip it.
func (refBackend) Lower(p *Plan, g *graph.Graph, o Operands) (k CompiledKernel, err error) {
	sp := lowerSpan("reference", p)
	defer func() { endLower(sp, err) }()
	if err := faultinject.ErrIf(faultinject.LowerFail); err != nil {
		return nil, err
	}
	if err := p.validateOperands(g.NumVertices(), g.NumEdges(), o); err != nil {
		return nil, err
	}
	return &refKernel{
		p: p, g: g, o: o, fa: makeFetcher(o.A), fb: makeFetcher(o.B),
		// Scratch for the vertex-centric accumulator, held by the kernel so
		// repeated Run calls allocate nothing.
		acc:  make([]float32, o.C.T.Cols),
		site: kernelSite(p, "reference", g),
	}, nil
}

type refKernel struct {
	p      *Plan
	g      *graph.Graph
	o      Operands
	fa, fb fetcher
	acc    []float32
	runs   int64
	// site is the telemetry handle, resolved at Lower time. Backends that
	// wrap this kernel (sim) null it to keep one record per logical run.
	site *telemetry.KernelSite
}

// Plan implements CompiledKernel.
func (k *refKernel) Plan() *Plan { return k.p }

// Run implements CompiledKernel with the closure-per-element interpreter.
func (k *refKernel) Run() error { return k.RunCtx(context.Background()) }

// RunCtx implements CompiledKernel. The interpreter is sequential, so
// cancellation is checked only at the run boundary; a panic inside the
// interpreted loops is recovered into a *KernelError like the parallel
// backend's.
func (k *refKernel) RunCtx(ctx context.Context) (err error) {
	tstart := k.site.Begin()
	// Registered before the recover defer so it runs after it (LIFO) and
	// observes the panic already converted into err.
	defer func() {
		oc, detail := outcomeOf(err)
		k.site.EndCtx(ctx, tstart, oc, detail, nil)
	}()
	defer func() {
		if r := recover(); r != nil {
			err = newKernelError(k.p, "reference", r, captureStack())
		}
	}()
	if err := ctx.Err(); err != nil {
		return err
	}
	faultinject.MaybePanic(faultinject.KernelPanic)
	faultinject.MaybeSleep(faultinject.SlowChunk)
	p, g, o := k.p, k.g, k.o
	f := o.C.T.Cols
	switch {
	case p.Op.CKind == tensor.EdgeK:
		p.executeMessageCreation(g, o, k.fa, k.fb, f)
	case p.Schedule.Strategy.VertexParallel():
		p.executeVertexCentric(g, o, k.fa, k.fb, f, k.acc)
	default:
		p.executeEdgeCentric(g, o, k.fa, k.fb, f)
	}
	if err := finishRun(k.p, o.C.T); err != nil {
		return err
	}
	k.runs++
	return nil
}

// Counters implements CompiledKernel.
func (k *refKernel) Counters() Counters {
	return Counters{
		Runs:    k.runs,
		Edges:   k.runs * int64(k.g.NumEdges()),
		Shards:  k.runs,
		Workers: 1,
	}
}
