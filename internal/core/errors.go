package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/tensor"
)

// The execution layer's error taxonomy (DESIGN.md §7 "Failure model"):
//
//   - validation errors: plain errors returned before any compute runs
//     (operand kinds/shapes at Lower, graph invariants at construction);
//   - *KernelError: a kernel panicked mid-run — the panic is recovered at
//     the worker or Run boundary and converted into this typed error, so one
//     bad kernel fails its request instead of the process. Recoverable: the
//     fallback ladder (ResilientBackend) retries the same lowered plan on
//     the reference backend;
//   - *NumericError: the opt-in CheckNumerics guard found a NaN/Inf in a
//     graph operator's output, named after the offending op. Not retried —
//     a numeric fault is a data/model property, not a backend one;
//   - context.Canceled / context.DeadlineExceeded: the caller's context
//     fired; workers stop at chunk-claim granularity and the partial output
//     is discarded by convention (every Run re-initialises its output).

// KernelError reports a panic recovered inside a kernel execution, carrying
// enough identity (op, strategy, backend, stack) to triage one bad kernel
// out of a model with dozens.
type KernelError struct {
	// Op is the operator label ("u_mul_e.sum", or the layer-qualified name
	// compiled programs assign).
	Op string
	// Strategy is the schedule the kernel was compiled with.
	Strategy string
	// Backend names the execution backend the panic happened on.
	Backend string
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
	// Err is the recovered panic value as an error.
	Err error
}

// Error implements error.
func (e *KernelError) Error() string {
	return fmt.Sprintf("core: kernel %s [%s] on %s backend: %v", e.Op, e.Strategy, e.Backend, e.Err)
}

// Unwrap exposes the recovered panic value for errors.Is/As.
func (e *KernelError) Unwrap() error { return e.Err }

// opLabel names a plan's operator for error messages.
func opLabel(p *Plan) string {
	if p.Op.Name != "" {
		return p.Op.Name
	}
	return p.Op.String()
}

// recoveredError converts a recovered panic value into an error.
func recoveredError(r any) error {
	if err, ok := r.(error); ok {
		return err
	}
	return fmt.Errorf("panic: %v", r)
}

// newKernelError wraps a recovered panic value (with the stack captured at
// the recovery site) into a *KernelError for plan p on the named backend.
func newKernelError(p *Plan, backend string, r any, stack []byte) *KernelError {
	return &KernelError{
		Op:       opLabel(p),
		Strategy: p.Schedule.String(),
		Backend:  backend,
		Stack:    stack,
		Err:      recoveredError(r),
	}
}

// captureStack snapshots the current goroutine's stack. Called inside a
// deferred recover, the trace still contains the panicking frames.
func captureStack() []byte {
	buf := make([]byte, 16<<10)
	return buf[:runtime.Stack(buf, false)]
}

// panicCell collects the first panic of a worker pool; later panics (e.g.
// several workers tripping over the same corrupt operand) are dropped.
type panicCell struct {
	mu    sync.Mutex
	r     any
	stack []byte
}

// record stores r (and the current stack) if the cell is empty. Must be
// called from the panicking goroutine's deferred recover so the stack shows
// the panic origin.
func (c *panicCell) record(r any) {
	stack := captureStack()
	c.mu.Lock()
	if c.r == nil {
		c.r, c.stack = r, stack
	}
	c.mu.Unlock()
}

// get returns the recorded panic, if any.
func (c *panicCell) get() (any, []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.r, c.stack
}

// NumericError reports the first non-finite value the CheckNumerics guard
// found in a graph operator's output.
type NumericError struct {
	// Op is the operator whose output carried the value.
	Op string
	// Index is the flat element index of the first offender.
	Index int
	// Value is the offending value (NaN or ±Inf).
	Value float32
}

// Error implements error.
func (e *NumericError) Error() string {
	kind := "Inf"
	if e.Value != e.Value {
		kind = "NaN"
	}
	return fmt.Sprintf("core: numeric guard: op %s produced %s at output element %d", e.Op, kind, e.Index)
}

// checkNumericsOn is the process-wide opt-in numeric guard switch. Off by
// default: the scan costs one pass over each graph op's output.
var checkNumericsOn atomic.Bool

// SetCheckNumerics toggles the opt-in numeric guard: when on, every graph
// kernel Run scans its output for NaN/Inf and fails with a *NumericError
// naming the first offending op. CLIs expose it as -check-numerics.
func SetCheckNumerics(on bool) { checkNumericsOn.Store(on) }

// CheckNumerics reports whether the numeric guard is on.
func CheckNumerics() bool { return checkNumericsOn.Load() }

// scanNumerics returns a *NumericError for the first NaN/Inf in out, or nil.
func scanNumerics(op string, out *tensor.Dense) error {
	for i, v := range out.Data {
		if v != v || math.IsInf(float64(v), 0) {
			return &NumericError{Op: op, Index: i, Value: v}
		}
	}
	return nil
}

// finishRun applies the post-compute guards shared by the host kernels: the
// NaN-poke injection point (tests poison outputs through it to prove the
// scan catches real poison) and the opt-in numeric scan. With no faults
// armed and the guard off this is two atomic loads.
func finishRun(p *Plan, out *tensor.Dense) error {
	if faultinject.Fire(faultinject.NaNPoke) && len(out.Data) > 0 {
		out.Data[0] = float32(math.NaN())
	}
	if checkNumericsOn.Load() {
		return scanNumerics(opLabel(p), out)
	}
	return nil
}
