package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/shard"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// The parallel host backend: a multi-core executor that actually runs the
// four schedule strategies on the machine uGrapher itself runs on, instead
// of interpreting them sequentially. Work items (vertices for the
// vertex-parallel strategies, edges for the edge-parallel ones) are dealt
// to a runtime.NumCPU()-sized worker pool; edge-parallel reductions avoid
// atomics by reducing into per-shard partial buffers that a parallel merge
// folds into the output. The inner loops come from kernels_host.go: one
// specialized fused loop per (edge_op x gather_op x operand-kind), so no
// per-element closure calls survive lowering.
//
// Hardening (DESIGN.md §7): workers honour context cancellation at
// chunk-claim granularity, recover panics into typed *KernelError values
// instead of killing the process, and carry the fault-injection hooks the
// test harness uses to prove both properties.

// ParallelBackend executes plans on a host worker pool. The zero worker
// count resolves to UGRAPHER_WORKERS or runtime.NumCPU(). A shard count
// other than 1 routes aggregation kernels through the partition-aware
// lowering path (backend_sharded.go).
type ParallelBackend struct {
	workers int
	shards  int
}

// NewParallelBackend builds a backend with the given worker-pool size
// (0 = UGRAPHER_WORKERS env var, else runtime.NumCPU()) and the
// process-default shard count (DefaultShards).
func NewParallelBackend(workers int) *ParallelBackend {
	return NewShardedParallelBackend(workers, DefaultShards())
}

// NewShardedParallelBackend builds a backend with an explicit shard count:
// 0 auto-sizes shards from the cache budget per graph, 1 disables sharding,
// K > 1 partitions every graph into K shards at Lower time. Counts outside
// [0, shard.MaxShards] clamp to the unsharded default.
func NewShardedParallelBackend(workers, shards int) *ParallelBackend {
	if workers <= 0 {
		workers = envWorkers()
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > MaxWorkers {
		workers = MaxWorkers
	}
	if shards < 0 || shards > shard.MaxShards {
		shards = 1
	}
	return &ParallelBackend{workers: workers, shards: shards}
}

// Name implements ExecBackend.
func (b *ParallelBackend) Name() string { return "parallel" }

// Workers reports the worker-pool size.
func (b *ParallelBackend) Workers() int { return b.workers }

// Shards reports the configured shard count (0 = auto, 1 = unsharded).
func (b *ParallelBackend) Shards() int { return b.shards }

// Lower implements ExecBackend: validate once, resolve operand row
// selectors, and pick the specialized inner loop.
func (b *ParallelBackend) Lower(p *Plan, g *graph.Graph, o Operands) (ck CompiledKernel, err error) {
	sp := lowerSpan(b.Name(), p)
	defer func() { endLower(sp, err) }()
	if err := faultinject.ErrIf(faultinject.LowerFail); err != nil {
		return nil, err
	}
	if err := p.validateOperands(g.NumVertices(), g.NumEdges(), o); err != nil {
		return nil, err
	}
	row, err := lowerRowKernel(p.Op.EdgeOp, p.Op.GatherOp)
	if err != nil {
		return nil, err
	}
	// Partition-aware path: aggregation kernels (Dst_V output) execute over
	// a verified shard plan when sharding is on. Message creation stays on
	// the flat path — per-edge output rows never conflict, so sharding buys
	// it nothing. A plan that resolves to a single shard (auto on a small
	// graph) falls through to the flat path too.
	if b.shards != 1 && p.Op.CKind == tensor.DstV {
		sp, err := shardPlanFor(g, b.shards)
		if err != nil {
			return nil, err
		}
		if sp.K > 1 {
			return b.lowerSharded(p, g, o, sp, row)
		}
	}
	k := &parallelKernel{
		b: b, p: p, g: g, o: o,
		feat: o.C.T.Cols,
		selA: lowerRowSel(o.A),
		selB: lowerRowSel(o.B),
		row:  row,
		site: kernelSite(p, b.Name(), g),
	}
	// Bind the range bodies once: passing a method value per Run would
	// allocate a closure each call and break the zero-steady-state contract.
	k.bodyMsg = k.messageRange
	k.bodyVtx = k.vertexRange
	return k, nil
}

type parallelKernel struct {
	b    *ParallelBackend
	p    *Plan
	g    *graph.Graph
	o    Operands
	feat int
	selA rowSel
	selB rowSel
	row  fusedRow

	// bodyMsg/bodyVtx are the chunk bodies bound at lowering time (see
	// Lower for why they are not method values taken per Run).
	bodyMsg func(lo, hi int32)
	bodyVtx func(lo, hi int32)

	// partials are the per-worker private output buffers of edge-parallel
	// reductions, owned by the kernel and reused across Run calls so the
	// steady state allocates nothing (the kernel-reuse contract compiled
	// model programs rely on). Grown lazily on the first multi-worker run.
	partials [][]float32

	runs   int64
	shards int64

	// site is the telemetry handle, resolved at Lower time.
	site *telemetry.KernelSite
}

// partialBufs returns `workers` buffers of n floats each, reusing previous
// runs' allocations.
func (k *parallelKernel) partialBufs(workers, n int) [][]float32 {
	if len(k.partials) < workers {
		k.partials = append(k.partials, make([][]float32, workers-len(k.partials))...)
	}
	bufs := k.partials[:workers]
	for w := range bufs {
		if cap(bufs[w]) < n {
			bufs[w] = make([]float32, n)
		} else {
			bufs[w] = bufs[w][:n]
		}
	}
	return bufs
}

// Plan implements CompiledKernel.
func (k *parallelKernel) Plan() *Plan { return k.p }

// Counters implements CompiledKernel.
func (k *parallelKernel) Counters() Counters {
	return Counters{
		Runs:    k.runs,
		Edges:   k.runs * int64(k.g.NumEdges()),
		Shards:  k.shards,
		Workers: k.b.workers,
	}
}

// smallWork is the (edges x features) volume below which goroutine fan-out
// costs more than it buys; such kernels run on the calling goroutine.
const smallWork = 1 << 15

// Run implements CompiledKernel.
func (k *parallelKernel) Run() error { return k.RunCtx(context.Background()) }

// RunCtx implements CompiledKernel. Any panic on the calling goroutine
// (single-worker paths, lowered-loop bugs, injected faults) is recovered
// here into a *KernelError; worker-goroutine panics are recovered at the
// worker and surfaced through the same type.
func (k *parallelKernel) RunCtx(ctx context.Context) (err error) {
	tstart := k.site.Begin()
	// Registered before the recover defer so it runs after it (LIFO) and
	// observes the panic already converted into err.
	defer func() {
		oc, detail := outcomeOf(err)
		k.site.EndCtx(ctx, tstart, oc, detail, nil)
	}()
	defer func() {
		if r := recover(); r != nil {
			err = newKernelError(k.p, k.b.Name(), r, captureStack())
		}
	}()
	if err := ctx.Err(); err != nil {
		return err
	}
	workers := k.b.workers
	if int64(k.g.NumEdges())*int64(k.feat) < smallWork {
		workers = 1
	}
	var runErr error
	switch {
	case k.p.Op.CKind == tensor.EdgeK:
		runErr = k.runMessageCreation(ctx, workers)
	case k.p.Schedule.Strategy.VertexParallel():
		runErr = k.runVertexParallel(ctx, workers)
	default:
		runErr = k.runEdgeParallel(ctx, workers)
	}
	if runErr != nil {
		return runErr
	}
	if err := finishRun(k.p, k.o.C.T); err != nil {
		return err
	}
	k.runs++
	return nil
}

// chunkSize picks a dynamic-scheduling chunk: small enough to balance
// skewed degree distributions across workers, large enough to amortize the
// atomic fetch.
func chunkSize(items, workers int) int {
	c := items / (workers * 32)
	if c < 64 {
		c = 64
	}
	if c > 4096 {
		c = 4096
	}
	return c
}

// runChunks runs body over [0, items) in dynamically-claimed chunks,
// accumulating completed chunks into k.shards. Cancellation is checked at
// every chunk claim; worker panics are recovered into a *KernelError. The
// single-worker, no-deadline path is a single direct call so the steady
// state stays allocation-free.
func (k *parallelKernel) runChunks(ctx context.Context, items, workers int, body func(lo, hi int32)) error {
	if items == 0 {
		return nil
	}
	done := ctx.Done()
	if workers <= 1 {
		if done == nil {
			faultinject.MaybeSleep(faultinject.SlowChunk)
			faultinject.MaybePanic(faultinject.KernelPanic)
			faultinject.MaybePanic(faultinject.KernelPanicLoad)
			body(0, int32(items))
			k.shards++
			return nil
		}
		// A deadline is in play: chunk the walk so cancellation is honoured
		// between chunks even without a worker pool.
		chunk := chunkSize(items, 1)
		for lo := 0; lo < items; lo += chunk {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
			hi := lo + chunk
			if hi > items {
				hi = items
			}
			faultinject.MaybeSleep(faultinject.SlowChunk)
			faultinject.MaybePanic(faultinject.KernelPanic)
			faultinject.MaybePanic(faultinject.KernelPanicLoad)
			body(int32(lo), int32(hi))
			k.shards++
		}
		return nil
	}

	chunk := chunkSize(items, workers)
	var cursor atomic.Int64
	var shards atomic.Int64
	var stop atomic.Bool
	var pc panicCell
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					pc.record(r)
					stop.Store(true)
				}
			}()
			for !stop.Load() {
				if done != nil {
					select {
					case <-done:
						stop.Store(true)
						return
					default:
					}
				}
				lo := cursor.Add(int64(chunk)) - int64(chunk)
				if lo >= int64(items) {
					return
				}
				hi := lo + int64(chunk)
				if hi > int64(items) {
					hi = int64(items)
				}
				faultinject.MaybeSleep(faultinject.SlowChunk)
				faultinject.MaybePanic(faultinject.KernelPanic)
			faultinject.MaybePanic(faultinject.KernelPanicLoad)
				body(int32(lo), int32(hi))
				shards.Add(1)
			}
		}()
	}
	wg.Wait()
	k.shards += shards.Load()
	if r, stack := pc.get(); r != nil {
		return newKernelError(k.p, k.b.Name(), r, stack)
	}
	return ctx.Err()
}

// runMessageCreation writes each edge's output row exactly once, so edges
// shard freely regardless of the strategy's traversal order.
func (k *parallelKernel) runMessageCreation(ctx context.Context, workers int) error {
	return k.runChunks(ctx, k.g.NumEdges(), workers, k.bodyMsg)
}

func (k *parallelKernel) messageRange(lo, hi int32) {
	out := k.o.C.T
	edgeSrc, edgeDst := k.g.EdgeSrcs(), k.g.EdgeDsts()
	for e := lo; e < hi; e++ {
		u, v := edgeSrc[e], edgeDst[e]
		k.row(out.Row(int(e)), k.selA(e, u, v), k.selB(e, u, v))
	}
}

// runVertexParallel mirrors the thread-vertex / warp-vertex kernels: one
// owner per output row, register-style accumulation, no synchronization on
// the output.
func (k *parallelKernel) runVertexParallel(ctx context.Context, workers int) error {
	return k.runChunks(ctx, k.g.NumVertices(), workers, k.bodyVtx)
}

func (k *parallelKernel) vertexRange(lo, hi int32) {
	out := k.o.C.T
	gop := k.p.Op.GatherOp
	identity := gop.Identity()
	mean := gop == ops.GatherMean
	for v := lo; v < hi; v++ {
		row := out.Row(int(v))
		srcs, eids := k.g.InEdges(v)
		if len(eids) == 0 {
			for j := range row {
				row[j] = 0 // zero-degree convention (DGL)
			}
			continue
		}
		for j := range row {
			row[j] = identity
		}
		for i, e := range eids {
			u := srcs[i]
			k.row(row, k.selA(e, u, v), k.selB(e, u, v))
		}
		if mean {
			inv := 1 / float32(len(eids))
			for j := range row {
				row[j] *= inv
			}
		}
	}
}

// edgeBlock is how many edges a phase-1 reduction worker processes between
// stop-flag / cancellation checks.
const edgeBlock = 8192

// runEdgeParallel mirrors the thread-edge / warp-edge kernels. Where the
// GPU kernels use atomics on the shared destination rows, the host backend
// gives each worker shard a private partial output buffer and folds the
// shards into the output with a parallel merge — same associative
// reduction, no contention.
func (k *parallelKernel) runEdgeParallel(ctx context.Context, workers int) error {
	out := k.o.C.T
	g := k.g
	gop := k.p.Op.GatherOp
	identity := gop.Identity()
	mean := gop == ops.GatherMean
	numV, numE := g.NumVertices(), g.NumEdges()
	edgeSrc, edgeDst := g.EdgeSrcs(), g.EdgeDsts()
	feat := k.feat
	done := ctx.Done()

	if workers <= 1 {
		// Sequential shape: reduce straight into the output, in blocks so a
		// deadline can interrupt the walk.
		for i := range out.Data {
			out.Data[i] = identity
		}
		for lo := 0; lo < numE; lo += edgeBlock {
			if done != nil {
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
			faultinject.MaybeSleep(faultinject.SlowChunk)
			faultinject.MaybePanic(faultinject.KernelPanic)
			faultinject.MaybePanic(faultinject.KernelPanicLoad)
			hi := lo + edgeBlock
			if hi > numE {
				hi = numE
			}
			for e := int32(lo); e < int32(hi); e++ {
				u, v := edgeSrc[e], edgeDst[e]
				k.row(out.Row(int(v)), k.selA(e, u, v), k.selB(e, u, v))
			}
		}
		k.shards++
		return k.fixupVertexRows(ctx, 1, mean)
	}

	// Phase 1: each worker reduces a contiguous edge shard into its own
	// partial buffer (identity-filled, owned by the kernel and reused across
	// Run calls). Shards are a prefix of the worker range: with ceil division
	// only trailing workers can come up empty, so exactly nw buffers are live.
	// Cancellation: after a cancelled or panicked run the partials hold
	// arbitrary data, but every run re-fills them with the identity before
	// reducing, so nothing leaks into the next run of the same kernel.
	per := (numE + workers - 1) / workers
	nw := (numE + per - 1) / per
	partials := k.partialBufs(nw, numV*feat)
	var stop atomic.Bool
	var pc panicCell
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		lo := w * per
		hi := lo + per
		if hi > numE {
			hi = numE
		}
		wg.Add(1)
		go func(lo, hi int32, buf []float32) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					pc.record(r)
					stop.Store(true)
				}
			}()
			for i := range buf {
				buf[i] = identity
			}
			for blo := lo; blo < hi; blo += edgeBlock {
				if stop.Load() {
					return
				}
				if done != nil {
					select {
					case <-done:
						stop.Store(true)
						return
					default:
					}
				}
				faultinject.MaybeSleep(faultinject.SlowChunk)
				faultinject.MaybePanic(faultinject.KernelPanic)
			faultinject.MaybePanic(faultinject.KernelPanicLoad)
				bhi := blo + edgeBlock
				if bhi > hi {
					bhi = hi
				}
				for e := blo; e < bhi; e++ {
					u, v := edgeSrc[e], edgeDst[e]
					k.row(buf[int(v)*feat:int(v)*feat+feat], k.selA(e, u, v), k.selB(e, u, v))
				}
			}
		}(int32(lo), int32(hi), partials[w])
		k.shards++
	}
	wg.Wait()
	if r, stack := pc.get(); r != nil {
		return newKernelError(k.p, k.b.Name(), r, stack)
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	// Phase 2: parallel merge over vertex ranges — each output row is
	// folded from the shard partials in shard order (deterministic for a
	// fixed worker count), then mean/zero-degree fixups apply.
	return k.runChunks(ctx, numV, workers, func(lo, hi int32) {
		for v := lo; v < hi; v++ {
			row := out.Row(int(v))
			deg := g.InDegree(v)
			if deg == 0 {
				for j := range row {
					row[j] = 0
				}
				continue
			}
			for j := range row {
				row[j] = identity
			}
			for _, buf := range partials {
				mergeRow(gop, row, buf[int(v)*feat:int(v)*feat+feat])
			}
			if mean {
				inv := 1 / float32(deg)
				for j := range row {
					row[j] *= inv
				}
			}
		}
	})
}

// fixupVertexRows applies the zero-degree and mean post-passes to the
// output, in parallel over vertex ranges.
func (k *parallelKernel) fixupVertexRows(ctx context.Context, workers int, mean bool) error {
	if workers <= 1 && ctx.Done() == nil {
		k.fixupRange(0, int32(k.g.NumVertices()), mean)
		k.shards++
		return nil
	}
	return k.runChunks(ctx, k.g.NumVertices(), workers, func(lo, hi int32) {
		k.fixupRange(lo, hi, mean)
	})
}

func (k *parallelKernel) fixupRange(lo, hi int32, mean bool) {
	out := k.o.C.T
	g := k.g
	for v := lo; v < hi; v++ {
		row := out.Row(int(v))
		deg := g.InDegree(v)
		if deg == 0 {
			for j := range row {
				row[j] = 0
			}
			continue
		}
		if mean {
			inv := 1 / float32(deg)
			for j := range row {
				row[j] *= inv
			}
		}
	}
}

// mergeRow folds one shard's partial row into the output row with the
// gather op's combiner.
func mergeRow(gop ops.GatherOp, dst, src []float32) {
	switch gop {
	case ops.GatherSum, ops.GatherMean:
		src = src[:len(dst)]
		for j := range dst {
			dst[j] += src[j]
		}
	case ops.GatherMax:
		maxCopy(dst, src)
	case ops.GatherMin:
		minCopy(dst, src)
	default:
		// Invariant, not input-reachable: runEdgeParallel is only entered
		// for reducing gathers (message creation routes to runMessageCreation
		// and plans are validated at Compile), so a non-reducing gather here
		// is a programming error in the backend itself.
		panic("core: merge of non-reducing gather")
	}
}
