package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/datasets"
	"repro/internal/faultinject"
	"repro/internal/ops"
)

// The fault-injection suite of DESIGN.md §7: each hardening guard is proven
// to catch the exact fault it claims to, by arming the corresponding
// injection point and asserting the typed error (or the recovery) it
// produces. Points are process-global, so every test disarms on exit; the
// package's tests within one binary run sequentially unless marked parallel,
// and none of these are.

func TestKernelPanicBecomesKernelError(t *testing.T) {
	defer faultinject.Reset()
	g := testGraph(t, 300, 4000, 11)
	ref := makeOperands(g, ops.AggrSum, 16, false, 3)
	if err := Reference(g, ops.AggrSum, ref); err != nil {
		t.Fatal(err)
	}
	o := makeOperands(g, ops.AggrSum, 16, false, 3)
	p := MustCompile(ops.AggrSum, Schedule{Strategy: ThreadEdge, Group: 1, Tile: 1})
	k, err := NewParallelBackend(4).Lower(p, g, o)
	if err != nil {
		t.Fatal(err)
	}

	faultinject.Arm(faultinject.KernelPanic, faultinject.Spec{After: 1})
	err = k.Run()
	var ke *KernelError
	if !errors.As(err, &ke) {
		t.Fatalf("Run with injected panic returned %v (%T), want *KernelError", err, err)
	}
	if ke.Backend != "parallel" {
		t.Errorf("KernelError.Backend = %q, want parallel", ke.Backend)
	}
	if ke.Op == "" || ke.Strategy == "" {
		t.Errorf("KernelError identity incomplete: Op=%q Strategy=%q", ke.Op, ke.Strategy)
	}
	if len(ke.Stack) == 0 {
		t.Error("KernelError.Stack empty; triage needs the panic origin")
	}
	var fp faultinject.Panic
	if !errors.As(err, &fp) || fp.Point != faultinject.KernelPanic {
		t.Errorf("KernelError does not unwrap to the injected Panic value: %v", err)
	}

	// The process survived; after disarming, the same lowered kernel is
	// reusable and correct — the failed run left no poisoned state.
	faultinject.Reset()
	if err := k.Run(); err != nil {
		t.Fatalf("rerun after recovered panic: %v", err)
	}
	if !o.C.T.AllClose(ref.C.T, 1e-4, 1e-4) {
		t.Errorf("rerun output differs from reference (maxdiff %v)", o.C.T.MaxDiff(ref.C.T))
	}
}

// TestKernelPanicSequentialPath: the single-worker fast path recovers at the
// Run boundary (no worker goroutine involved).
func TestKernelPanicSequentialPath(t *testing.T) {
	defer faultinject.Reset()
	g := testGraph(t, 20, 60, 4) // 60 edges x 4 feats << smallWork => 1 worker
	o := makeOperands(g, ops.AggrSum, 4, false, 1)
	p := MustCompile(ops.AggrSum, Schedule{Strategy: ThreadVertex, Group: 1, Tile: 1})
	k, err := NewParallelBackend(4).Lower(p, g, o)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(faultinject.KernelPanic, faultinject.Spec{After: 1})
	var ke *KernelError
	if err := k.Run(); !errors.As(err, &ke) {
		t.Fatalf("sequential path returned %v, want *KernelError", err)
	}
}

func TestReferenceBackendPanicIsolated(t *testing.T) {
	defer faultinject.Reset()
	g := testGraph(t, 50, 200, 2)
	o := makeOperands(g, ops.AggrMean, 8, false, 6)
	p := MustCompile(ops.AggrMean, DefaultSchedule)
	k, err := ReferenceBackend().Lower(p, g, o)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(faultinject.KernelPanic, faultinject.Spec{After: 1})
	var ke *KernelError
	if err := k.Run(); !errors.As(err, &ke) {
		t.Fatalf("reference backend returned %v, want *KernelError", err)
	} else if ke.Backend != "reference" {
		t.Errorf("KernelError.Backend = %q, want reference", ke.Backend)
	}
}

// TestParallelCancellation is the satellite's race test: cancel mid-run on
// the AR-sized graph (1.6M edges, heavy skew), assert the workers return
// promptly, and prove no partial-buffer state leaks into the next run of the
// same lowered kernel.
func TestParallelCancellation(t *testing.T) {
	defer faultinject.Reset()
	g, _, err := datasets.Load("AR")
	if err != nil {
		t.Fatal(err)
	}
	const feat = 16
	o := makeOperands(g, ops.AggrSum, feat, false, 1)
	p := MustCompile(ops.AggrSum, Schedule{Strategy: ThreadEdge, Group: 1, Tile: 1})
	k, err := NewParallelBackend(4).Lower(p, g, o)
	if err != nil {
		t.Fatal(err)
	}

	// A pre-cancelled context is refused before any compute.
	pre, cancelPre := context.WithCancel(context.Background())
	cancelPre()
	if err := k.RunCtx(pre); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled RunCtx = %v, want context.Canceled", err)
	}

	// Slow every chunk so the run reliably outlives the cancel signal
	// (1.6M edges / 8192-edge blocks ≈ 200 sleeps across 4 workers).
	faultinject.Arm(faultinject.SlowChunk, faultinject.Spec{After: 1, Every: 1, Delay: 2 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(15 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err = k.RunCtx(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled mid-run: err = %v, want context.Canceled", err)
	}
	// "Prompt" = bounded by a few chunk bodies, not by finishing the run
	// (which would take the full ~100ms+ of injected sleeps).
	if elapsed > 5*time.Second {
		t.Errorf("cancellation took %v; workers did not stop at chunk claims", elapsed)
	}

	// No partial-buffer leak: the aborted run left arbitrary data in the
	// output and the per-worker partials, and the next run of the same
	// kernel must still match the sequential oracle.
	faultinject.Reset()
	if err := k.Run(); err != nil {
		t.Fatalf("rerun after cancellation: %v", err)
	}
	ref := makeOperands(g, ops.AggrSum, feat, false, 1)
	if err := Reference(g, ops.AggrSum, ref); err != nil {
		t.Fatal(err)
	}
	if !o.C.T.AllClose(ref.C.T, 1e-4, 1e-4) {
		t.Errorf("post-cancel rerun differs from reference (maxdiff %v)", o.C.T.MaxDiff(ref.C.T))
	}
}

// TestDeadlineFiresOnSlowKernel: an injected hang (every chunk sleeping)
// trips the caller's deadline within budget instead of running to
// completion.
func TestDeadlineFiresOnSlowKernel(t *testing.T) {
	defer faultinject.Reset()
	g := testGraph(t, 1000, 20000, 7)
	o := makeOperands(g, ops.AggrSum, 8, false, 9)
	p := MustCompile(ops.AggrSum, Schedule{Strategy: ThreadEdge, Group: 1, Tile: 1})
	k, err := NewParallelBackend(4).Lower(p, g, o)
	if err != nil {
		t.Fatal(err)
	}
	// ~20 sleeping chunks on 4 workers ≈ 150ms+ of injected delay; the
	// 60ms deadline must interrupt that walk.
	faultinject.Arm(faultinject.SlowChunk, faultinject.Spec{After: 1, Every: 1, Delay: 30 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = k.RunCtx(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("slow kernel under deadline: err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("deadline honoured only after %v", elapsed)
	}
}

func TestCheckNumericsNamesOffendingOp(t *testing.T) {
	defer faultinject.Reset()
	SetCheckNumerics(true)
	defer SetCheckNumerics(false)
	if !CheckNumerics() {
		t.Fatal("SetCheckNumerics(true) did not stick")
	}

	g := testGraph(t, 100, 800, 5)
	o := makeOperands(g, ops.AggrMax, 8, false, 2)
	p := MustCompile(ops.AggrMax, Schedule{Strategy: WarpVertex, Group: 1, Tile: 1})
	k, err := NewParallelBackend(4).Lower(p, g, o)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(faultinject.NaNPoke, faultinject.Spec{After: 1})
	err = k.Run()
	var ne *NumericError
	if !errors.As(err, &ne) {
		t.Fatalf("poisoned output returned %v (%T), want *NumericError", err, err)
	}
	if ne.Op != opLabel(p) {
		t.Errorf("NumericError.Op = %q, want %q (the guard must name the op)", ne.Op, opLabel(p))
	}
	if !strings.Contains(err.Error(), "NaN") {
		t.Errorf("error does not say NaN: %v", err)
	}

	// Clean data passes with the guard still on.
	faultinject.Reset()
	if err := k.Run(); err != nil {
		t.Fatalf("clean run with numeric guard on: %v", err)
	}

	// Guard off (the default): the same poison goes unreported — the scan
	// is strictly opt-in so hot paths pay nothing.
	SetCheckNumerics(false)
	faultinject.Arm(faultinject.NaNPoke, faultinject.Spec{After: 1})
	if err := k.Run(); err != nil {
		t.Fatalf("guard off must not scan: %v", err)
	}
}

// TestResilientFallbackMatchesReference is the satellite's golden test: an
// injected parallel-kernel fault makes the ResilientBackend rerun the plan
// on the reference interpreter, transparently, with the oracle's output.
func TestResilientFallbackMatchesReference(t *testing.T) {
	defer faultinject.Reset()
	g := testGraph(t, 300, 4000, 13)
	ref := makeOperands(g, ops.AggrSum, 16, false, 8)
	if err := Reference(g, ops.AggrSum, ref); err != nil {
		t.Fatal(err)
	}

	rb := NewResilientBackend(NewParallelBackend(4), nil)
	rb.SetLogger(nil)
	if rb.Name() != "resilient" {
		t.Fatalf("Name() = %q", rb.Name())
	}
	o := makeOperands(g, ops.AggrSum, 16, false, 8)
	p := MustCompile(ops.AggrSum, Schedule{Strategy: ThreadEdge, Group: 1, Tile: 1})
	k, err := rb.Lower(p, g, o)
	if err != nil {
		t.Fatal(err)
	}

	// Fire-once spec: the panic hits the parallel primary's first chunk;
	// the reference rerun shares the same (global) injection point and must
	// not re-trip it.
	faultinject.Arm(faultinject.KernelPanic, faultinject.Spec{After: 1})
	if err := k.Run(); err != nil {
		t.Fatalf("resilient Run with injected primary fault: %v", err)
	}
	if got := rb.Fallbacks(); got != 1 {
		t.Errorf("Fallbacks() = %d, want 1", got)
	}
	if !o.C.T.AllClose(ref.C.T, 1e-4, 1e-4) {
		t.Errorf("fallback output differs from reference (maxdiff %v)", o.C.T.MaxDiff(ref.C.T))
	}

	// The primary is retried on the next run (panics are assumed
	// transient): with nothing armed it succeeds and no new fallback is
	// counted.
	faultinject.Reset()
	if err := k.Run(); err != nil {
		t.Fatalf("resilient rerun: %v", err)
	}
	if got := rb.Fallbacks(); got != 1 {
		t.Errorf("Fallbacks() after clean rerun = %d, want still 1", got)
	}
	if !o.C.T.AllClose(ref.C.T, 1e-4, 1e-4) {
		t.Error("clean rerun on primary differs from reference")
	}
}

// TestResilientLowerFallback: the ladder also covers lowering failures — if
// the primary cannot lower the plan, the kernel is lowered on the secondary.
func TestResilientLowerFallback(t *testing.T) {
	defer faultinject.Reset()
	g := testGraph(t, 200, 3000, 17)
	ref := makeOperands(g, ops.AggrMean, 8, false, 4)
	if err := Reference(g, ops.AggrMean, ref); err != nil {
		t.Fatal(err)
	}

	rb := NewResilientBackend(NewParallelBackend(4), nil)
	rb.SetLogger(nil)
	o := makeOperands(g, ops.AggrMean, 8, false, 4)
	p := MustCompile(ops.AggrMean, Schedule{Strategy: WarpEdge, Group: 1, Tile: 1})
	// Fire-once: the primary's Lower trips, the secondary's must not.
	faultinject.Arm(faultinject.LowerFail, faultinject.Spec{After: 1})
	k, err := rb.Lower(p, g, o)
	if err != nil {
		t.Fatalf("resilient Lower with injected primary failure: %v", err)
	}
	if got := rb.Fallbacks(); got != 1 {
		t.Errorf("Fallbacks() = %d, want 1", got)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !o.C.T.AllClose(ref.C.T, 1e-4, 1e-4) {
		t.Errorf("lower-fallback output differs from reference (maxdiff %v)", o.C.T.MaxDiff(ref.C.T))
	}
}

// TestResilientPassesThroughNonKernelErrors: only *KernelError ladders.
// Cancellation and numeric faults would fail identically on any backend and
// must pass through without a fallback.
func TestResilientPassesThroughNonKernelErrors(t *testing.T) {
	defer faultinject.Reset()
	g := testGraph(t, 200, 3000, 19)
	rb := NewResilientBackend(NewParallelBackend(4), nil)
	rb.SetLogger(nil)
	o := makeOperands(g, ops.AggrSum, 8, false, 4)
	p := MustCompile(ops.AggrSum, Schedule{Strategy: ThreadEdge, Group: 1, Tile: 1})
	k, err := rb.Lower(p, g, o)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := k.RunCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx(cancelled) = %v, want context.Canceled", err)
	}
	if got := rb.Fallbacks(); got != 0 {
		t.Errorf("cancellation triggered %d fallbacks; must pass through", got)
	}

	SetCheckNumerics(true)
	defer SetCheckNumerics(false)
	faultinject.Arm(faultinject.NaNPoke, faultinject.Spec{After: 1})
	var ne *NumericError
	if err := k.Run(); !errors.As(err, &ne) {
		t.Fatalf("Run with poisoned output = %v, want *NumericError", err)
	}
	if got := rb.Fallbacks(); got != 0 {
		t.Errorf("numeric fault triggered %d fallbacks; a data property is not retried", got)
	}
}

// TestResilientWindowCounter: Snapshot/Reset expose a per-window fallback
// count on top of the monotonic Fallbacks counter.
func TestResilientWindowCounter(t *testing.T) {
	defer faultinject.Reset()
	g := testGraph(t, 200, 3000, 23)
	rb := NewResilientBackend(NewParallelBackend(4), nil)
	rb.SetLogger(nil)
	o := makeOperands(g, ops.AggrSum, 8, false, 4)
	p := MustCompile(ops.AggrSum, Schedule{Strategy: ThreadEdge, Group: 1, Tile: 1})
	k, err := rb.Lower(p, g, o)
	if err != nil {
		t.Fatal(err)
	}
	if got := rb.Snapshot(); got != 0 {
		t.Fatalf("Snapshot() before any fallback = %d", got)
	}
	faultinject.Arm(faultinject.KernelPanic, faultinject.Spec{After: 1})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := rb.Snapshot(); got != 1 {
		t.Errorf("Snapshot() = %d, want 1", got)
	}
	if got := rb.Reset(); got != 1 {
		t.Errorf("Reset() = %d, want 1", got)
	}
	if got := rb.Snapshot(); got != 0 {
		t.Errorf("Snapshot() after Reset = %d, want 0", got)
	}
	if got := rb.Fallbacks(); got != 1 {
		t.Errorf("Fallbacks() after Reset = %d, want 1 (monotonic)", got)
	}
	// A second window accumulates independently.
	faultinject.Arm(faultinject.KernelPanic, faultinject.Spec{After: 1})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got, want := rb.Snapshot(), int64(1); got != want {
		t.Errorf("second window Snapshot() = %d, want %d", got, want)
	}
	if got := rb.Fallbacks(); got != 2 {
		t.Errorf("Fallbacks() = %d, want 2", got)
	}
}

func TestValidateEnvBackend(t *testing.T) {
	t.Setenv("UGRAPHER_BACKEND", "")
	if err := ValidateEnvBackend(); err != nil {
		t.Errorf("empty env: %v", err)
	}
	t.Setenv("UGRAPHER_BACKEND", "resilient")
	if err := ValidateEnvBackend(); err != nil {
		t.Errorf("resilient: %v", err)
	}
	t.Setenv("UGRAPHER_BACKEND", "cuda")
	err := ValidateEnvBackend()
	if err == nil {
		t.Fatal("bad backend name accepted")
	}
	for _, name := range BackendNames {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list valid backend %q", err, name)
		}
	}
}

func TestValidateEnvWorkers(t *testing.T) {
	t.Setenv("UGRAPHER_WORKERS", "")
	if err := ValidateEnvWorkers(); err != nil {
		t.Errorf("empty env: %v", err)
	}
	t.Setenv("UGRAPHER_WORKERS", "8")
	if err := ValidateEnvWorkers(); err != nil {
		t.Errorf("8 workers: %v", err)
	}
	for _, bad := range []string{"0", "-2", "abc", "10000000"} {
		t.Setenv("UGRAPHER_WORKERS", bad)
		err := ValidateEnvWorkers()
		if err == nil {
			t.Errorf("UGRAPHER_WORKERS=%q accepted, want error", bad)
			continue
		}
		// The CLI contract: the error names the valid range.
		if !strings.Contains(err.Error(), "1 through 4096") {
			t.Errorf("error %q does not list the valid range", err)
		}
	}
	// The backend constructor honours a valid env count and survives (with a
	// warning) an invalid one.
	t.Setenv("UGRAPHER_WORKERS", "6")
	if got := NewShardedParallelBackend(0, 1).Workers(); got != 6 {
		t.Errorf("workers = %d, want 6 from env", got)
	}
	t.Setenv("UGRAPHER_WORKERS", "bogus")
	if got := NewShardedParallelBackend(0, 1).Workers(); got < 1 {
		t.Errorf("workers = %d with invalid env, want NumCPU fallback", got)
	}
}

// BenchmarkCheckNumerics quantifies the opt-in numeric guard: the same
// lowered kernel with the post-run NaN/Inf scan off (the default) and on.
// EXPERIMENTS.md records the delta.
func BenchmarkCheckNumerics(b *testing.B) {
	g, _, err := datasets.Load("AR")
	if err != nil {
		b.Fatal(err)
	}
	const feat = 32
	o := makeOperands(g, ops.AggrSum, feat, false, 1)
	p := MustCompile(ops.AggrSum, Schedule{Strategy: ThreadEdge, Group: 1, Tile: 1})
	k, err := NewParallelBackend(0).Lower(p, g, o)
	if err != nil {
		b.Fatal(err)
	}
	for _, guard := range []bool{false, true} {
		name := "guard-off"
		if guard {
			name = "guard-on"
		}
		b.Run(name, func(b *testing.B) {
			SetCheckNumerics(guard)
			defer SetCheckNumerics(false)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := k.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestRunWithCtxCancelled: the top-level API threads the context down to the
// kernel.
func TestRunWithCtxCancelled(t *testing.T) {
	g := testGraph(t, 50, 300, 3)
	o := makeOperands(g, ops.AggrSum, 4, false, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunWithCtx(ctx, NewParallelBackend(2), g, ops.AggrSum, o, DefaultSchedule, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunWithCtx(cancelled) = %v, want context.Canceled", err)
	}
}
