package core

import (
	"strings"
	"testing"

	"repro/internal/gpu"
	"repro/internal/ops"
	"repro/internal/tensor"
)

func TestCompilePasses(t *testing.T) {
	// Pass 1 (fusion): copy ops fuse; binary edge op + reduction does not.
	fused := MustCompile(ops.AggrSum, DefaultSchedule)
	if !fused.Fused {
		t.Error("copy_lhs edge op should fuse")
	}
	unfused := MustCompile(ops.WeightedAggrSum, DefaultSchedule)
	if unfused.Fused {
		t.Error("mul+sum should not fuse")
	}
	if unfused.InstsPerElement <= fused.InstsPerElement {
		t.Error("unfused plan should cost more per element")
	}

	// Pass 2 (atomics): edge-parallel aggregation needs atomics; vertex-
	// parallel does not; message creation never does.
	for _, tc := range []struct {
		op    ops.OpInfo
		strat Strategy
		want  bool
	}{
		{ops.AggrSum, ThreadEdge, true},
		{ops.AggrSum, WarpEdge, true},
		{ops.AggrSum, ThreadVertex, false},
		{ops.AggrSum, WarpVertex, false},
		{ops.UAddV, ThreadEdge, false},
		{ops.CopyU, WarpEdge, false},
	} {
		p := MustCompile(tc.op, Schedule{tc.strat, 1, 1})
		if p.NeedsAtomic != tc.want {
			t.Errorf("%s under %s: NeedsAtomic = %v, want %v",
				tc.op.Name, tc.strat, p.NeedsAtomic, tc.want)
		}
	}
}

func TestCompileRejectsInvalid(t *testing.T) {
	if _, err := Compile(ops.OpInfo{}, DefaultSchedule); err == nil {
		t.Error("invalid op should fail")
	}
	if _, err := Compile(ops.AggrSum, Schedule{ThreadEdge, 0, 1}); err == nil {
		t.Error("invalid schedule should fail")
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustCompile(ops.OpInfo{}, DefaultSchedule)
}

func simulateOp(t *testing.T, op ops.OpInfo, sched Schedule, feat int, widthOneB bool) gpu.Metrics {
	t.Helper()
	g := testGraph(t, 3000, 30000, 11)
	dev := gpu.V100()
	fa, aCols, bCols := OperandWidths(op, feat, widthOneB)
	m, err := Estimate(g, op, fa, aCols, bCols, sched, dev)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestKernelLaunchGeometry(t *testing.T) {
	g := testGraph(t, 1000, 8000, 3)
	dev := gpu.V100()

	build := func(s Schedule) gpu.Kernel {
		p := MustCompile(ops.AggrSum, s)
		return p.Kernel(g, 32, 32, 0, dev)
	}

	tv := build(Schedule{ThreadVertex, 1, 1})
	te := build(Schedule{ThreadEdge, 1, 1})
	wv := build(Schedule{WarpVertex, 1, 1})
	we := build(Schedule{WarpEdge, 1, 1})

	// Thread strategies: ceil(units/256) blocks. Warp strategies: ceil(units/8).
	if got, want := tv.NumBlocks(), (1000+255)/256; got != want {
		t.Errorf("TV blocks = %d, want %d", got, want)
	}
	if got, want := te.NumBlocks(), (8000+255)/256; got != want {
		t.Errorf("TE blocks = %d, want %d", got, want)
	}
	if got, want := wv.NumBlocks(), (1000+7)/8; got != want {
		t.Errorf("WV blocks = %d, want %d", got, want)
	}
	if got, want := we.NumBlocks(), (8000+7)/8; got != want {
		t.Errorf("WE blocks = %d, want %d", got, want)
	}

	// Grouping shrinks the launch; tiling grows it.
	grouped := build(Schedule{ThreadEdge, 8, 1})
	if got, want := grouped.NumBlocks(), (1000+255)/256; got != want {
		t.Errorf("TE G8 blocks = %d, want %d", got, want)
	}
	tiled := build(Schedule{WarpEdge, 1, 2}) // F=32 has 1 chunk; tile 2 still launches 2x
	if got, want := tiled.NumBlocks(), (16000+7)/8; got != want {
		t.Errorf("WE T2 blocks = %d, want %d", got, want)
	}
}

func TestKernelWorkConservation(t *testing.T) {
	// Total instructions across blocks must scale with E x F for edge
	// strategies regardless of grouping/tiling (work is conserved, only
	// redistributed), modulo overhead terms.
	g := testGraph(t, 500, 5000, 5)
	dev := gpu.V100()
	base := 0.0
	for i, sched := range []Schedule{
		{WarpEdge, 1, 1}, {WarpEdge, 4, 1}, {WarpEdge, 1, 2},
	} {
		p := MustCompile(ops.AggrSum, sched)
		k := p.Kernel(g, 64, 64, 0, dev)
		var insts float64
		for b := 0; b < k.NumBlocks(); b++ {
			insts += k.BlockWork(b).Insts
		}
		if i == 0 {
			base = insts
			continue
		}
		if insts < base*0.8 || insts > base*1.6 {
			t.Errorf("%v: insts %v too far from base %v", sched, insts, base)
		}
	}
}

func TestAtomicsOnlyWhereExpected(t *testing.T) {
	for _, tc := range []struct {
		sched  Schedule
		op     ops.OpInfo
		atomic bool
	}{
		{Schedule{ThreadVertex, 1, 1}, ops.AggrSum, false},
		{Schedule{WarpVertex, 1, 1}, ops.AggrSum, false},
		{Schedule{ThreadEdge, 1, 1}, ops.AggrSum, true},
		{Schedule{WarpEdge, 1, 1}, ops.AggrSum, true},
		{Schedule{ThreadEdge, 1, 1}, ops.UAddV, false},
	} {
		m := simulateOp(t, tc.op, tc.sched, 32, false)
		if tc.atomic && m.AtomicTransactions == 0 {
			t.Errorf("%v on %s: expected atomic traffic", tc.sched, tc.op.Name)
		}
		if !tc.atomic && m.AtomicTransactions != 0 {
			t.Errorf("%v on %s: unexpected atomic traffic %v", tc.sched, tc.op.Name, m.AtomicTransactions)
		}
	}
}

func TestCoalescingWarpVsThread(t *testing.T) {
	// Warp-mapped strategies read features coalesced (one LSU request per
	// chunk) while thread-mapped ones replay one request per element: for
	// the same operator, WE must put far less pressure on the L1 port.
	te := simulateOp(t, ops.AggrSum, Schedule{ThreadEdge, 1, 1}, 64, false)
	we := simulateOp(t, ops.AggrSum, Schedule{WarpEdge, 1, 1}, 64, false)
	if we.L1Requests >= te.L1Requests/4 {
		t.Errorf("WE L1 requests %v should be well below TE %v", we.L1Requests, te.L1Requests)
	}
}

func TestParallelismOrdering(t *testing.T) {
	// Table 6: edge strategies launch more parallelism than vertex
	// strategies; warp-mapped more than thread-mapped.
	g := testGraph(t, 2000, 40000, 13)
	dev := gpu.V100()
	blocks := func(s Schedule) int {
		p := MustCompile(ops.AggrSum, s)
		return p.Kernel(g, 64, 64, 0, dev).NumBlocks()
	}
	tv := blocks(Schedule{ThreadVertex, 1, 1})
	te := blocks(Schedule{ThreadEdge, 1, 1})
	wv := blocks(Schedule{WarpVertex, 1, 1})
	we := blocks(Schedule{WarpEdge, 1, 1})
	if !(te > tv && we > wv && wv > tv && we > te) {
		t.Errorf("parallelism ordering violated: tv=%d te=%d wv=%d we=%d", tv, te, wv, we)
	}
}

func TestGroupingImprovesLocalityKnobs(t *testing.T) {
	// V/E grouping trades parallelism for locality: fewer blocks, and the
	// per-step index reads amortise.
	g := testGraph(t, 2000, 40000, 17)
	dev := gpu.V100()
	p1 := MustCompile(ops.AggrSum, Schedule{WarpEdge, 1, 1})
	p8 := MustCompile(ops.AggrSum, Schedule{WarpEdge, 8, 1})
	k1 := p1.Kernel(g, 32, 32, 0, dev)
	k8 := p8.Kernel(g, 32, 32, 0, dev)
	if k8.NumBlocks() >= k1.NumBlocks() {
		t.Error("grouping must shrink the launch")
	}
	if k8.NumBlocks() < k1.NumBlocks()/9 {
		t.Error("grouping by 8 should shrink launch by ~8x")
	}
}

func TestOverTilingWastesUnits(t *testing.T) {
	// Tiling beyond the chunk count launches idle units: occupancy metrics
	// must not crash and active warps should not grow.
	g := testGraph(t, 500, 5000, 19)
	dev := gpu.V100()
	p := MustCompile(ops.AggrSum, Schedule{WarpVertex, 1, 64}) // F=32: 1 chunk, 64 tiles
	k := p.Kernel(g, 32, 32, 0, dev)
	var active int
	for b := 0; b < k.NumBlocks(); b++ {
		active += k.BlockWork(b).ActiveWarps
	}
	// Only tile 0 has work: active warps <= #vertices.
	if active > 500 {
		t.Errorf("over-tiled launch has %d active warps, want <= 500", active)
	}
	m := gpu.Simulate(dev, k)
	if m.Cycles <= 0 {
		t.Error("simulation must still work")
	}
}

func TestTraceDeterministicAndNonEmpty(t *testing.T) {
	g := testGraph(t, 300, 3000, 23)
	dev := gpu.V100()
	for _, strat := range Strategies {
		p := MustCompile(ops.AggrSum, Schedule{strat, 2, 2})
		k := p.Kernel(g, 48, 48, 0, dev)
		count := func() int {
			var lines int
			for b := 0; b < k.NumBlocks(); b++ {
				k.TraceBlock(b, func(a gpu.WarpAccess) { lines += len(a.Lines) })
			}
			return lines
		}
		c1, c2 := count(), count()
		if c1 == 0 {
			t.Errorf("%s: empty trace", strat)
		}
		if c1 != c2 {
			t.Errorf("%s: non-deterministic trace: %d vs %d", strat, c1, c2)
		}
	}
}

func TestTraceVolumeTracksWork(t *testing.T) {
	// The sampled trace's transaction count should be within a reasonable
	// factor of the analytic BlockWork transactions for the same blocks.
	g := testGraph(t, 400, 6000, 29)
	dev := gpu.V100()
	for _, strat := range Strategies {
		p := MustCompile(ops.WeightedAggrSum, Schedule{strat, 1, 1})
		k := p.Kernel(g, 32, 32, 1, dev)
		var traced, analytic float64
		for b := 0; b < k.NumBlocks(); b++ {
			k.TraceBlock(b, func(a gpu.WarpAccess) { traced += float64(len(a.Lines)) })
			w := k.BlockWork(b)
			analytic += w.Transactions
		}
		ratio := traced / analytic
		if ratio < 0.2 || ratio > 5 {
			t.Errorf("%s: trace/analytic transaction ratio %v out of range (traced %v analytic %v)",
				strat, ratio, traced, analytic)
		}
	}
}

func TestDstStats(t *testing.T) {
	d, m := dstStats([]int32{1, 2, 3, 4})
	if d != 4 || m != 1 {
		t.Errorf("all distinct: got (%d,%d)", d, m)
	}
	d, m = dstStats([]int32{5, 5, 5, 5})
	if d != 1 || m != 4 {
		t.Errorf("all same: got (%d,%d)", d, m)
	}
	d, m = dstStats([]int32{1, 2, 1, 3, 1})
	if d != 3 || m != 3 {
		t.Errorf("mixed: got (%d,%d)", d, m)
	}
	d, m = dstStats(nil)
	if d != 0 {
		t.Errorf("empty: got (%d,%d)", d, m)
	}
}

func TestGenerateSource(t *testing.T) {
	te := MustCompile(ops.WeightedAggrSum, Schedule{ThreadEdge, 4, 2}).GenerateSource()
	if !strings.Contains(te, "atomicAdd") {
		t.Error("TE aggregation source must use atomicAdd")
	}
	if !strings.Contains(te, "edge_tmp") {
		t.Error("unfused op should materialise edge_tmp")
	}
	tv := MustCompile(ops.AggrSum, Schedule{ThreadVertex, 1, 1}).GenerateSource()
	if !strings.Contains(tv, "acc[f] +=") {
		t.Error("TV aggregation should accumulate in registers")
	}
	if strings.Contains(tv, "atomicAdd") {
		t.Error("TV must not use atomic stores")
	}
	wv := MustCompile(ops.AggrMax, Schedule{WarpVertex, 1, 1}).GenerateSource()
	if !strings.Contains(wv, "max(") {
		t.Error("max gather should emit max()")
	}
	we := MustCompile(ops.AggrMax, Schedule{WarpEdge, 1, 1}).GenerateSource()
	if !strings.Contains(we, "atomicMax") {
		t.Error("WE max gather should emit atomicMax")
	}
	msgc := MustCompile(ops.UAddV, Schedule{ThreadEdge, 1, 1}).GenerateSource()
	if !strings.Contains(msgc, "C[edge * F + f] =") {
		t.Error("message creation writes per-edge rows")
	}
	minSrc := MustCompile(ops.OpInfo{
		Name: "aggr_min", EdgeOp: ops.CopyLHS, GatherOp: ops.GatherMin,
		AKind: tensor.SrcV, CKind: tensor.DstV,
	}, Schedule{WarpEdge, 1, 1}).GenerateSource()
	if !strings.Contains(minSrc, "atomicMin") {
		t.Error("WE min gather should emit atomicMin")
	}
}

func TestEstimateMatchesKernelFor(t *testing.T) {
	g := testGraph(t, 300, 2400, 31)
	dev := gpu.V100()
	op := ops.WeightedAggrSum
	o := makeOperands(g, op, 32, true, 5)
	p := MustCompile(op, Schedule{WarpEdge, 2, 1})
	k, err := p.KernelFor(g, o, dev)
	if err != nil {
		t.Fatal(err)
	}
	mk := gpu.Simulate(dev, k)
	me, err := Estimate(g, op, 32, 32, 1, Schedule{WarpEdge, 2, 1}, dev)
	if err != nil {
		t.Fatal(err)
	}
	if mk.Cycles != me.Cycles {
		t.Errorf("KernelFor and Estimate disagree: %v vs %v", mk.Cycles, me.Cycles)
	}
}

func TestRunProducesOutputAndMetrics(t *testing.T) {
	g := testGraph(t, 200, 1000, 37)
	dev := gpu.V100()
	o := makeOperands(g, ops.AggrSum, 16, false, 9)
	ref := makeOperands(g, ops.AggrSum, 16, false, 9)
	if err := Reference(g, ops.AggrSum, ref); err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, ops.AggrSum, o, Schedule{WarpEdge, 1, 1}, dev)
	if err != nil {
		t.Fatal(err)
	}
	if !o.C.T.AllClose(ref.C.T, 1e-4, 1e-4) {
		t.Error("Run output wrong")
	}
	if res.Metrics.Cycles <= 0 {
		t.Error("Run must simulate")
	}
	if _, err := Run(g, ops.OpInfo{}, o, DefaultSchedule, dev); err == nil {
		t.Error("invalid op should fail")
	}
}

func TestOperandWidths(t *testing.T) {
	f, a, b := OperandWidths(ops.WeightedAggrSum, 64, true)
	if f != 64 || a != 64 || b != 1 {
		t.Errorf("got (%d,%d,%d)", f, a, b)
	}
	f, a, b = OperandWidths(ops.AggrSum, 32, false)
	if f != 32 || a != 32 || b != 0 {
		t.Errorf("got (%d,%d,%d)", f, a, b)
	}
}
