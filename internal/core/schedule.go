// Package core implements uGrapher's contribution: the unified graph
// operator abstraction (paper §3), the decoupled schedule space (§4), and
// the kernel generator that binds an operator's computation to a
// parallelization strategy (§5).
//
// A graph operator is described by ops.OpInfo (computation) and Schedule
// (parallelization); Compile fuses the two into a Plan, the executable
// analogue of the paper's generated CUDA kernel. Plans execute functionally
// (real outputs) and project themselves as gpu.Kernel for the performance
// simulator.
package core

import (
	"fmt"
	"strconv"
	"strings"
)

// Strategy is one of the four basic parallelization strategies of Fig. 6:
// which hardware unit (thread or warp) owns which work item (vertex or edge).
type Strategy uint8

const (
	// ThreadVertex: one thread per destination vertex; the thread walks the
	// vertex's incoming edges and the full feature vector. Best locality,
	// least parallelism, no atomics (paper Fig. 6b, Table 6).
	ThreadVertex Strategy = iota
	// ThreadEdge: one thread per edge; needs atomic reduction (Fig. 6c).
	ThreadEdge
	// WarpVertex: one warp per destination vertex; lanes split the feature
	// dimension (Fig. 6d).
	WarpVertex
	// WarpEdge: one warp per edge; lanes split features; atomics per feature
	// chunk for vertex outputs (Fig. 6e).
	WarpEdge
)

var strategyCodes = [...]string{"TV", "TE", "WV", "WE"}
var strategyNames = [...]string{"thread-vertex", "thread-edge", "warp-vertex", "warp-edge"}

// Strategies lists the four basic strategies in a stable order.
var Strategies = []Strategy{ThreadVertex, ThreadEdge, WarpVertex, WarpEdge}

// Code returns the Table 9 code ("TV", "TE", "WV", "WE").
func (s Strategy) Code() string {
	if int(s) < len(strategyCodes) {
		return strategyCodes[s]
	}
	return fmt.Sprintf("S%d", uint8(s))
}

// String returns the long name ("thread-vertex", ...).
func (s Strategy) String() string {
	if int(s) < len(strategyNames) {
		return strategyNames[s]
	}
	return fmt.Sprintf("Strategy(%d)", uint8(s))
}

// Valid reports whether s is one of the four strategies.
func (s Strategy) Valid() bool { return int(s) < len(strategyCodes) }

// VertexParallel reports whether work items are destination vertices.
func (s Strategy) VertexParallel() bool { return s == ThreadVertex || s == WarpVertex }

// WarpMapped reports whether the owning unit is a warp (lanes split features).
func (s Strategy) WarpMapped() bool { return s == WarpVertex || s == WarpEdge }

// ParseStrategy accepts either the code ("WE") or the long name ("warp-edge").
func ParseStrategy(text string) (Strategy, error) {
	for i := range strategyCodes {
		if strategyCodes[i] == text || strategyNames[i] == text {
			return Strategy(i), nil
		}
	}
	return 0, fmt.Errorf("core: unknown strategy %q", text)
}

// Schedule is the paper's parallel_info triple: a basic strategy plus the
// two fine-grained knobs, V/E grouping and feature tiling (§4.2).
type Schedule struct {
	Strategy Strategy
	// Group is the V/E grouping parameter: each thread/warp processes Group
	// consecutive work items. Higher values trade parallelism for locality
	// and add loop overhead. Must be >= 1.
	Group int
	// Tile is the feature tiling parameter: the feature dimension is split
	// across Tile units, multiplying launched parallelism and adding address
	// arithmetic. Must be >= 1.
	Tile int
}

// DefaultSchedule is the neutral schedule: thread-edge with no grouping or
// tiling, the configuration most often optimal in the paper's Table 9.
var DefaultSchedule = Schedule{Strategy: ThreadEdge, Group: 1, Tile: 1}

// String renders the Table 9 notation, e.g. "WE_G8_T1".
func (s Schedule) String() string {
	return fmt.Sprintf("%s_G%d_T%d", s.Strategy.Code(), s.Group, s.Tile)
}

// ParseSchedule parses the Table 9 notation produced by String.
func ParseSchedule(text string) (Schedule, error) {
	parts := strings.Split(text, "_")
	if len(parts) != 3 || !strings.HasPrefix(parts[1], "G") || !strings.HasPrefix(parts[2], "T") {
		return Schedule{}, fmt.Errorf("core: bad schedule %q (want e.g. WE_G8_T1)", text)
	}
	strat, err := ParseStrategy(parts[0])
	if err != nil {
		return Schedule{}, err
	}
	group, err := strconv.Atoi(parts[1][1:])
	if err != nil {
		return Schedule{}, fmt.Errorf("core: bad group in %q: %v", text, err)
	}
	tile, err := strconv.Atoi(parts[2][1:])
	if err != nil {
		return Schedule{}, fmt.Errorf("core: bad tile in %q: %v", text, err)
	}
	s := Schedule{Strategy: strat, Group: group, Tile: tile}
	if err := s.Validate(); err != nil {
		return Schedule{}, err
	}
	return s, nil
}

// Validate checks parameter ranges.
func (s Schedule) Validate() error {
	if !s.Strategy.Valid() {
		return fmt.Errorf("core: invalid strategy %d", s.Strategy)
	}
	if s.Group < 1 {
		return fmt.Errorf("core: group must be >= 1, got %d", s.Group)
	}
	if s.Tile < 1 {
		return fmt.Errorf("core: tile must be >= 1, got %d", s.Tile)
	}
	return nil
}
