package core

import (
	"repro/internal/analysis"
	"repro/internal/tensor"
)

// ConflictReporter is implemented by lowered kernels that can declare which
// write-conflict discipline their Run path uses, so the static verifier
// (internal/analysis) can cross-check the backend's actual lowering against
// the re-derived atomic-need analysis instead of trusting the plan bit.
// The vocabulary is the analysis.Conflict* constants.
type ConflictReporter interface {
	// ConflictHandling names the discipline the lowered Run path uses.
	ConflictHandling() string
}

// ConflictHandling implements ConflictReporter: the reference interpreter
// walks edges on a single goroutine, so there is never a second writer.
func (k *refKernel) ConflictHandling() string { return analysis.ConflictSequential }

// ConflictHandling implements ConflictReporter, mirroring the RunCtx
// routing: message creation writes per-edge rows, vertex-parallel
// aggregation gives each output row one owning worker, and edge-parallel
// aggregation reduces into per-worker private partial buffers merged
// deterministically afterwards.
func (k *parallelKernel) ConflictHandling() string {
	switch {
	case k.p.Op.CKind == tensor.EdgeK:
		return analysis.ConflictPerEdgeRows
	case k.p.Schedule.Strategy.VertexParallel():
		return analysis.ConflictOwnerPerRow
	default:
		return analysis.ConflictPrivatePartials
	}
}

// ConflictHandling implements ConflictReporter: destination ownership gives
// every output row exactly one producing shard, and a worker runs a whole
// shard — so vertex-parallel shards write owner-per-row, and the
// edge-parallel two-level reduction lands in shard-private partials merged
// deterministically in canonical shard order.
func (k *shardedKernel) ConflictHandling() string {
	if k.vertexPar {
		return analysis.ConflictOwnerPerRow
	}
	return analysis.ConflictPrivatePartials
}

// ConflictHandling implements ConflictReporter: the functional output comes
// from the wrapped compute kernel, so the discipline is whatever that
// kernel declares (the simulation replay writes no operand data).
func (k *simKernel) ConflictHandling() string {
	if cr, ok := k.compute.(ConflictReporter); ok {
		return cr.ConflictHandling()
	}
	return analysis.ConflictSequential
}

// ConflictHandling implements ConflictReporter by delegating to the primary
// kernel; the fallback path re-lowers on the reference backend, which is
// sequential and therefore never less safe.
func (k *resilientKernel) ConflictHandling() string {
	if cr, ok := k.primary.(ConflictReporter); ok {
		return cr.ConflictHandling()
	}
	return analysis.ConflictSequential
}
